#include "baselines/er.h"

#include <algorithm>

#include "nn/batchnorm.h"
#include "nn/loss.h"

namespace qcore {

ErLearner::ErLearner(QuantizedModel* qm, const LearnerOptions& options,
                     Rng* rng)
    : ContinualLearner(qm, options, rng),
      buffer_(options.buffer_capacity, /*store_logits=*/false, rng) {}

void ErLearner::ObserveBatch(const Dataset& batch) {
  QCORE_CHECK(!batch.empty());
  SetBatchNormFrozen(qm_->model(), true);
  SoftmaxCrossEntropy ce;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    Dataset train = batch;
    if (!buffer_.empty()) {
      train = Dataset::Concat(
          batch, buffer_.Sample(options_.replay_sample, batch.num_classes(),
                                nullptr));
    }
    train = train.Shuffled(rng_);
    for (int start = 0; start < train.size();
         start += options_.batch_size) {
      const int end = std::min(train.size(), start + options_.batch_size);
      std::vector<int> idx(static_cast<size_t>(end - start));
      for (int i = start; i < end; ++i) idx[static_cast<size_t>(i - start)] = i;
      Dataset mb = train.Subset(idx);
      Tensor logits = stepper_.ForwardTrain(mb.x());
      ce.Forward(logits, mb.labels());
      stepper_.Backward(ce.Backward());
      stepper_.Step();
    }
  }
  SetBatchNormFrozen(qm_->model(), false);
  buffer_.AddBatch(batch, nullptr);
}

}  // namespace qcore
