// Experience Replay (Riemer et al. 2019): the canonical rehearsal baseline.
// Each incoming batch is trained jointly with a uniform sample from a
// fixed-capacity reservoir buffer of past examples.
#ifndef QCORE_BASELINES_ER_H_
#define QCORE_BASELINES_ER_H_

#include "baselines/continual_learner.h"
#include "baselines/replay_buffer.h"

namespace qcore {

class ErLearner : public ContinualLearner {
 public:
  ErLearner(QuantizedModel* qm, const LearnerOptions& options, Rng* rng);

  void ObserveBatch(const Dataset& batch) override;
  std::string name() const override { return "ER"; }

  const ReplayBuffer& buffer() const { return buffer_; }

 private:
  ReplayBuffer buffer_;
};

}  // namespace qcore

#endif  // QCORE_BASELINES_ER_H_
