#include "baselines/camel.h"

#include <algorithm>

#include "baselines/coresets.h"
#include "nn/batchnorm.h"
#include "nn/loss.h"

namespace qcore {

CamelLearner::CamelLearner(QuantizedModel* qm, const LearnerOptions& options,
                           Rng* rng)
    : ContinualLearner(qm, options, rng),
      subset_capacity_(std::max(1, options.buffer_capacity / 2)),
      buffer_(std::max(1, options.buffer_capacity - subset_capacity_),
              /*store_logits=*/false, rng) {}

void CamelLearner::ObserveBatch(const Dataset& batch) {
  QCORE_CHECK(!batch.empty());

  // Subset maintenance: k-center coverage over (old subset ∪ new batch).
  Dataset pool = subset_.empty() ? batch : Dataset::Concat(subset_, batch);
  const int target = std::min(subset_capacity_, pool.size());
  Tensor flat =
      pool.x().Reshape({pool.size(), pool.x().size() / pool.size()});
  subset_ = pool.Subset(KCenterGreedy(flat, target, rng_));

  SetBatchNormFrozen(qm_->model(), true);
  SoftmaxCrossEntropy ce;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    Dataset train = subset_;
    if (!buffer_.empty()) {
      train = Dataset::Concat(
          train, buffer_.Sample(options_.replay_sample, batch.num_classes(),
                                nullptr));
    }
    train = train.Shuffled(rng_);
    for (int start = 0; start < train.size();
         start += options_.batch_size) {
      const int end = std::min(train.size(), start + options_.batch_size);
      std::vector<int> idx(static_cast<size_t>(end - start));
      for (int i = start; i < end; ++i) idx[static_cast<size_t>(i - start)] = i;
      Dataset mb = train.Subset(idx);
      Tensor logits = stepper_.ForwardTrain(mb.x());
      ce.Forward(logits, mb.labels());
      stepper_.Backward(ce.Backward());
      stepper_.Step();
    }
  }
  SetBatchNormFrozen(qm_->model(), false);
  buffer_.AddBatch(batch, nullptr);
}

}  // namespace qcore
