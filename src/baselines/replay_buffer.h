// Fixed-capacity rehearsal buffer with reservoir sampling — the data
// structure every replay baseline (ER, DER, DER++, ER-ACE, A-GEM, Camel)
// builds on. Optionally stores the model's logits at insertion time, which
// DER's distillation loss replays.
#ifndef QCORE_BASELINES_REPLAY_BUFFER_H_
#define QCORE_BASELINES_REPLAY_BUFFER_H_

#include <vector>

#include "data/dataset.h"

namespace qcore {

class ReplayBuffer {
 public:
  // `capacity` examples; set store_logits for DER-style buffers.
  ReplayBuffer(int capacity, bool store_logits, Rng* rng);

  int size() const { return static_cast<int>(labels_.size()); }
  int capacity() const { return capacity_; }
  bool empty() const { return labels_.empty(); }

  // Reservoir insertion of one example (x must have a leading axis of 1).
  // `logits` is required iff the buffer stores logits.
  void Add(const Tensor& x, int label, const Tensor* logits);

  // Inserts every example of `batch`. `batch_logits` (one row per example)
  // is required iff the buffer stores logits.
  void AddBatch(const Dataset& batch, const Tensor* batch_logits);

  // Uniformly samples up to `count` buffered examples (without replacement).
  // Returns a dataset; if the buffer stores logits, *logits receives the
  // matching rows.
  Dataset Sample(int count, int num_classes, Tensor* logits) const;

  // Everything currently buffered, in insertion-reservoir order.
  Dataset All(int num_classes, Tensor* logits) const;

 private:
  int capacity_;
  bool store_logits_;
  Rng* rng_;
  int64_t seen_ = 0;  // total examples offered (reservoir denominator)
  std::vector<Tensor> xs_;      // each [1, ...]
  std::vector<int> labels_;
  std::vector<Tensor> logits_;  // each [1, K]
};

}  // namespace qcore

#endif  // QCORE_BASELINES_REPLAY_BUFFER_H_
