#include "baselines/der.h"

#include <algorithm>

#include "nn/batchnorm.h"
#include "nn/loss.h"
#include "nn/training.h"
#include "tensor/tensor_ops.h"

namespace qcore {

DerLearner::DerLearner(QuantizedModel* qm, const LearnerOptions& options,
                       Rng* rng, float alpha, float beta)
    : ContinualLearner(qm, options, rng),
      buffer_(options.buffer_capacity, /*store_logits=*/true, rng),
      alpha_(alpha),
      beta_(beta) {
  QCORE_CHECK_GE(alpha, 0.0f);
  QCORE_CHECK_GE(beta, 0.0f);
}

void DerLearner::ObserveBatch(const Dataset& batch) {
  QCORE_CHECK(!batch.empty());
  SetBatchNormFrozen(qm_->model(), true);
  SoftmaxCrossEntropy ce;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    Dataset shuffled = batch.Shuffled(rng_);
    for (int start = 0; start < shuffled.size();
         start += options_.batch_size) {
      const int end = std::min(shuffled.size(), start + options_.batch_size);
      std::vector<int> idx(static_cast<size_t>(end - start));
      for (int i = start; i < end; ++i) idx[static_cast<size_t>(i - start)] = i;
      Dataset mb = shuffled.Subset(idx);

      stepper_.ZeroGrads();
      // Current-task term.
      Tensor logits = stepper_.ForwardTrain(mb.x());
      ce.Forward(logits, mb.labels());
      stepper_.Backward(ce.Backward());

      // Replay term(s), accumulated into the same gradients.
      if (!buffer_.empty()) {
        Tensor stored_logits;
        Dataset replay = buffer_.Sample(options_.replay_sample,
                                        batch.num_classes(), &stored_logits);
        Tensor replay_logits = stepper_.ForwardTrain(replay.x());
        Tensor mse_grad;
        MseLoss(replay_logits, stored_logits, &mse_grad);
        Tensor grad = MulScalar(mse_grad, alpha_);
        if (beta_ > 0.0f) {
          SoftmaxCrossEntropy replay_ce;
          replay_ce.Forward(replay_logits, replay.labels());
          AxpyInPlace(&grad, beta_, replay_ce.Backward());
        }
        stepper_.Backward(grad);
      }
      stepper_.Step();
    }
  }
  SetBatchNormFrozen(qm_->model(), false);

  // Record logits under the freshly updated model for future replay.
  Tensor batch_logits = qm_->model()->Forward(batch.x(), /*training=*/false);
  buffer_.AddBatch(batch, &batch_logits);
}

}  // namespace qcore
