#include "baselines/agem.h"

#include <algorithm>

#include "nn/batchnorm.h"
#include "nn/loss.h"

namespace qcore {

AgemLearner::AgemLearner(QuantizedModel* qm, const LearnerOptions& options,
                         Rng* rng)
    : ContinualLearner(qm, options, rng),
      buffer_(options.buffer_capacity, /*store_logits=*/false, rng) {}

void AgemLearner::ObserveBatch(const Dataset& batch) {
  QCORE_CHECK(!batch.empty());
  SetBatchNormFrozen(qm_->model(), true);
  SoftmaxCrossEntropy ce;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    Dataset shuffled = batch.Shuffled(rng_);
    for (int start = 0; start < shuffled.size();
         start += options_.batch_size) {
      const int end = std::min(shuffled.size(), start + options_.batch_size);
      std::vector<int> idx(static_cast<size_t>(end - start));
      for (int i = start; i < end; ++i) idx[static_cast<size_t>(i - start)] = i;
      Dataset mb = shuffled.Subset(idx);

      // Gradient on the incoming minibatch.
      stepper_.ZeroGrads();
      Tensor logits = stepper_.ForwardTrain(mb.x());
      ce.Forward(logits, mb.labels());
      stepper_.Backward(ce.Backward());
      std::vector<Tensor> grads = stepper_.SnapshotGrads();

      if (!buffer_.empty()) {
        // Reference gradient on episodic memory.
        stepper_.ZeroGrads();
        Dataset ref = buffer_.Sample(options_.replay_sample,
                                     batch.num_classes(), nullptr);
        Tensor ref_logits = stepper_.ForwardTrain(ref.x());
        ce.Forward(ref_logits, ref.labels());
        stepper_.Backward(ce.Backward());
        std::vector<Tensor> ref_grads = stepper_.SnapshotGrads();

        std::vector<float> g = FlattenGrads(grads);
        const std::vector<float> g_ref = FlattenGrads(ref_grads);
        double dot = 0.0, ref_norm2 = 0.0;
        for (size_t i = 0; i < g.size(); ++i) {
          dot += static_cast<double>(g[i]) * g_ref[i];
          ref_norm2 += static_cast<double>(g_ref[i]) * g_ref[i];
        }
        if (dot < 0.0 && ref_norm2 > 1e-12) {
          const float coef = static_cast<float>(dot / ref_norm2);
          for (size_t i = 0; i < g.size(); ++i) g[i] -= coef * g_ref[i];
        }
        UnflattenGrads(g, &grads);
      }

      stepper_.SetGrads(grads);
      stepper_.Step();
    }
  }
  SetBatchNormFrozen(qm_->model(), false);
  buffer_.AddBatch(batch, nullptr);
}

}  // namespace qcore
