// Common interface of the continual-learning baselines the paper compares
// against (Sec. 4.1.3). Every baseline adjusts a quantized model with
// BP-based (STE) calibration when a stream batch arrives — the expensive
// regime QCore's bit-flipping avoids — and manages rehearsal data to fight
// catastrophic forgetting.
#ifndef QCORE_BASELINES_CONTINUAL_LEARNER_H_
#define QCORE_BASELINES_CONTINUAL_LEARNER_H_

#include <memory>
#include <string>

#include "baselines/ste_stepper.h"
#include "data/dataset.h"
#include "quant/quantized_model.h"

namespace qcore {

struct LearnerOptions {
  // Calibration epochs per incoming batch (baselines need many; Fig. 9(a)).
  int epochs = 60;
  int batch_size = 32;
  SgdOptions sgd = {.lr = 0.01f, .momentum = 0.9f, .weight_decay = 0.0f};
  // Rehearsal memory, kept equal to the QCore size for fair comparison.
  int buffer_capacity = 30;
  // Examples replayed from the buffer per epoch.
  int replay_sample = 32;
};

class ContinualLearner {
 public:
  // `qm` must outlive the learner and keep its shadows.
  ContinualLearner(QuantizedModel* qm, const LearnerOptions& options,
                   Rng* rng);
  virtual ~ContinualLearner() = default;

  // Adapts the model to one incoming stream batch.
  virtual void ObserveBatch(const Dataset& batch) = 0;

  virtual std::string name() const = 0;

  QuantizedModel* model() { return qm_; }

  // Eval-mode accuracy on a test set.
  float Evaluate(const Dataset& test);

 protected:
  QuantizedModel* qm_;
  LearnerOptions options_;
  Rng* rng_;
  SteStepper stepper_;
};

// Factory over baseline names: "A-GEM", "DER", "DER++", "ER", "ER-ACE",
// "Camel", "DeepC". Aborts on unknown names.
std::unique_ptr<ContinualLearner> MakeLearner(const std::string& name,
                                              QuantizedModel* qm,
                                              const LearnerOptions& options,
                                              Rng* rng);

// All baseline names, in the paper's table order.
const std::vector<std::string>& BaselineNames();

}  // namespace qcore

#endif  // QCORE_BASELINES_CONTINUAL_LEARNER_H_
