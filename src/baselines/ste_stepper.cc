#include "baselines/ste_stepper.h"

#include <algorithm>

namespace qcore {

SteStepper::SteStepper(QuantizedModel* qm, SgdOptions options, SteMode mode)
    : qm_(qm), options_(options), mode_(mode), other_sgd_(options) {
  QCORE_CHECK(qm_ != nullptr);
  QCORE_CHECK_MSG(qm_->has_shadows(),
                  "BP baselines require shadow masters (server mode)");
  all_params_ = qm_->model()->Params();
  std::vector<Parameter*> quantized;
  for (int i = 0; i < qm_->num_quantized(); ++i) {
    quantized.push_back(qm_->quantized(i).param);
    shadow_velocity_.emplace_back(qm_->quantized(i).shadow.shape());
  }
  for (Parameter* p : all_params_) {
    if (std::find(quantized.begin(), quantized.end(), p) == quantized.end()) {
      other_params_.push_back(p);
    }
  }
}

Tensor SteStepper::ForwardTrain(const Tensor& x) {
  return qm_->model()->Forward(x, /*training=*/true);
}

void SteStepper::Backward(const Tensor& grad_logits) {
  qm_->model()->Backward(grad_logits);
}

std::vector<Tensor> SteStepper::SnapshotGrads() const {
  std::vector<Tensor> out;
  out.reserve(all_params_.size());
  for (Parameter* p : all_params_) out.push_back(p->grad);
  return out;
}

void SteStepper::SetGrads(const std::vector<Tensor>& grads) {
  QCORE_CHECK_EQ(grads.size(), all_params_.size());
  for (size_t i = 0; i < grads.size(); ++i) {
    QCORE_CHECK(grads[i].SameShape(all_params_[i]->grad));
    all_params_[i]->grad = grads[i];
  }
}

void SteStepper::ZeroGrads() {
  for (Parameter* p : all_params_) p->ZeroGrad();
}

void SteStepper::Step() {
  for (int t = 0; t < qm_->num_quantized(); ++t) {
    auto& qt = qm_->quantized(t);
    Tensor& vel = shadow_velocity_[static_cast<size_t>(t)];
    float* shadow = qt.shadow.data();
    float* pv = vel.data();
    const float* grad = qt.param->grad.data();
    const float* dequant = qt.param->value.data();
    const int64_t count = qt.shadow.size();
    for (int64_t e = 0; e < count; ++e) {
      // Edge mode: no persistent master — the step starts from the current
      // de-quantized value, so updates smaller than half a quantization step
      // are rounded away below.
      if (mode_ == SteMode::kEdgeRequantize) shadow[e] = dequant[e];
      const float g = grad[e] + options_.weight_decay * shadow[e];
      pv[e] = options_.momentum * pv[e] + g;
      shadow[e] -= options_.lr * pv[e];
    }
    qt.param->ZeroGrad();
  }
  if (mode_ == SteMode::kServerShadow) {
    other_sgd_.Step(other_params_);
  } else {
    // Edge mode: auxiliary full-precision parameters (biases, BN affine) are
    // fixed at deployment — only quantized codes can change on the device.
    for (Parameter* p : other_params_) p->ZeroGrad();
  }
  qm_->RequantizeFromShadow();
}

std::vector<float> FlattenGrads(const std::vector<Tensor>& grads) {
  int64_t total = 0;
  for (const Tensor& g : grads) total += g.size();
  std::vector<float> flat;
  flat.reserve(static_cast<size_t>(total));
  for (const Tensor& g : grads) {
    flat.insert(flat.end(), g.data(), g.data() + g.size());
  }
  return flat;
}

void UnflattenGrads(const std::vector<float>& flat,
                    std::vector<Tensor>* grads) {
  QCORE_CHECK(grads != nullptr);
  size_t offset = 0;
  for (Tensor& g : *grads) {
    QCORE_CHECK_LE(offset + static_cast<size_t>(g.size()), flat.size());
    std::copy(flat.begin() + static_cast<long>(offset),
              flat.begin() + static_cast<long>(offset) + g.size(), g.data());
    offset += static_cast<size_t>(g.size());
  }
  QCORE_CHECK_EQ(offset, flat.size());
}

}  // namespace qcore
