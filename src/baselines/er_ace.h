// ER-ACE (Caccia et al. 2022): Experience Replay with Asymmetric
// Cross-Entropy. The loss on incoming examples is computed over the classes
// present in the incoming minibatch only, which prevents new data from
// pushing down the logits of absent (old) classes; buffered examples use the
// full cross-entropy.
#ifndef QCORE_BASELINES_ER_ACE_H_
#define QCORE_BASELINES_ER_ACE_H_

#include "baselines/continual_learner.h"
#include "baselines/replay_buffer.h"

namespace qcore {

class ErAceLearner : public ContinualLearner {
 public:
  ErAceLearner(QuantizedModel* qm, const LearnerOptions& options, Rng* rng);

  void ObserveBatch(const Dataset& batch) override;
  std::string name() const override { return "ER-ACE"; }

 private:
  ReplayBuffer buffer_;
};

// dLoss/dLogits of cross-entropy restricted to the class set present in
// `labels` (softmax over present classes; absent classes receive zero
// gradient). Exposed for testing.
Tensor AsymmetricCeGrad(const Tensor& logits, const std::vector<int>& labels);

}  // namespace qcore

#endif  // QCORE_BASELINES_ER_ACE_H_
