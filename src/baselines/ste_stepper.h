// Low-level STE stepping used by the BP-based continual-learning baselines.
// Unlike SteCalibrate (which owns the whole loop), the stepper exposes
// forward / custom-loss backward / step as separate operations so baselines
// can implement composite losses (DER's logit replay, ER-ACE's asymmetric
// cross-entropy) and gradient surgery (A-GEM's projection).
#ifndef QCORE_BASELINES_STE_STEPPER_H_
#define QCORE_BASELINES_STE_STEPPER_H_

#include <vector>

#include "nn/sgd.h"
#include "quant/quantized_model.h"

namespace qcore {

// How parameter updates interact with quantization.
enum class SteMode {
  // Server-side: a persistent full-precision master accumulates updates and
  // is re-quantized after each step (classic STE / QAT).
  kServerShadow,
  // On-edge: full-precision masters are unavailable after deployment (paper
  // Sec. 1, Sec. 2.3), so each step starts from the de-quantized codes and
  // the update is immediately re-quantized — sub-step-size updates are
  // rounded away, which is exactly why BP-based continual calibration
  // degrades on the edge. Optimizer momentum (transient state) stays float.
  kEdgeRequantize,
};

class SteStepper {
 public:
  // `qm` must outlive the stepper and keep its shadows.
  SteStepper(QuantizedModel* qm, SgdOptions options,
             SteMode mode = SteMode::kEdgeRequantize);

  QuantizedModel* model() { return qm_; }

  // Training-mode forward (caller controls BatchNorm freezing).
  Tensor ForwardTrain(const Tensor& x);

  // Accumulates gradients from dLoss/dLogits through the model.
  void Backward(const Tensor& grad_logits);

  // Copies of all parameter gradients, in Params() order.
  std::vector<Tensor> SnapshotGrads() const;

  // Overwrites all parameter gradients (shapes must match Params() order).
  void SetGrads(const std::vector<Tensor>& grads);

  void ZeroGrads();

  // Applies one STE update: quantized tensors update their shadow masters
  // and re-quantize; other parameters take a plain SGD step. Gradients are
  // cleared afterwards.
  void Step();

 private:
  QuantizedModel* qm_;
  SgdOptions options_;
  SteMode mode_;
  std::vector<Parameter*> all_params_;
  std::vector<Parameter*> other_params_;  // not quantized
  std::vector<Tensor> shadow_velocity_;   // per quantized tensor
  Sgd other_sgd_;
};

// Flattens a gradient snapshot into one vector (for A-GEM's projection).
std::vector<float> FlattenGrads(const std::vector<Tensor>& grads);

// Writes a flat vector back into a gradient snapshot's shapes.
void UnflattenGrads(const std::vector<float>& flat,
                    std::vector<Tensor>* grads);

}  // namespace qcore

#endif  // QCORE_BASELINES_STE_STEPPER_H_
