// Subset/coreset construction strategies compared against QCore's
// miss-distribution sampling (paper Table 8 and Sec. 4.2.4): sampling rules
// (max-entropy, least-confidence, normal-fit), geometric selection (k-means
// / k-center), and gradient-based coresets (GradMatch, CRAIG). All return
// indices into the dataset.
#ifndef QCORE_BASELINES_CORESETS_H_
#define QCORE_BASELINES_CORESETS_H_

#include <vector>

#include "data/dataset.h"
#include "nn/layer.h"

namespace qcore {

// Examples with the highest predictive entropy under `model`.
std::vector<int> SelectMaxEntropy(Layer* model, const Dataset& d, int size);

// Examples with the lowest top-class probability (most uncertain).
std::vector<int> SelectLeastConfidence(Layer* model, const Dataset& d,
                                       int size);

// Samples examples with probability proportional to a normal density fitted
// to the per-example miss counts — the "quantization misses are normal"
// assumption the paper evaluates.
std::vector<int> SelectNormalFit(const std::vector<int>& misses, int size,
                                 Rng* rng);

// Lloyd k-means (k = size) on flattened inputs; returns the example nearest
// to each centroid.
std::vector<int> SelectKMeans(const Dataset& d, int size, Rng* rng);

// k-center greedy (max-min distance) on flattened inputs; also used by the
// Camel baseline's subset maintenance.
std::vector<int> KCenterGreedy(const Tensor& flattened_rows, int size,
                               Rng* rng);

// GradMatch (Killamsetty et al. 2021), simplified: greedy orthogonal-
// matching selection of examples whose mean last-layer gradient best
// approximates the full-data mean gradient.
std::vector<int> SelectGradMatch(Layer* model, const Dataset& d, int size);

// CRAIG (Mirzasoleiman et al. 2020), simplified: greedy facility-location
// maximization of last-layer gradient similarity coverage.
std::vector<int> SelectCraig(Layer* model, const Dataset& d, int size);

// Last-layer gradient proxy per example: softmax(logits) - onehot(label),
// an [N, K] matrix. Shared by the gradient-based strategies (and tested).
Tensor LastLayerGradients(Layer* model, const Dataset& d);

}  // namespace qcore

#endif  // QCORE_BASELINES_CORESETS_H_
