#include "baselines/er_ace.h"

#include <algorithm>
#include <cmath>

#include "nn/batchnorm.h"
#include "nn/loss.h"

namespace qcore {

Tensor AsymmetricCeGrad(const Tensor& logits, const std::vector<int>& labels) {
  QCORE_CHECK_EQ(logits.ndim(), 2);
  QCORE_CHECK_EQ(logits.dim(0), static_cast<int64_t>(labels.size()));
  const int64_t n = logits.dim(0), k = logits.dim(1);
  std::vector<bool> present(static_cast<size_t>(k), false);
  for (int y : labels) {
    QCORE_CHECK(y >= 0 && y < k);
    present[static_cast<size_t>(y)] = true;
  }
  Tensor grad({n, k});
  const float* pl = logits.data();
  float* pg = grad.data();
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    const float* row = pl + i * k;
    // Softmax over present classes only.
    float mx = -1e30f;
    for (int64_t j = 0; j < k; ++j) {
      if (present[static_cast<size_t>(j)]) mx = std::max(mx, row[j]);
    }
    double denom = 0.0;
    for (int64_t j = 0; j < k; ++j) {
      if (present[static_cast<size_t>(j)]) denom += std::exp(row[j] - mx);
    }
    float* grow = pg + i * k;
    const int y = labels[static_cast<size_t>(i)];
    for (int64_t j = 0; j < k; ++j) {
      if (!present[static_cast<size_t>(j)]) {
        grow[j] = 0.0f;  // absent classes are untouched (the asymmetry)
        continue;
      }
      const float p =
          static_cast<float>(std::exp(row[j] - mx) / denom);
      grow[j] = (p - (j == y ? 1.0f : 0.0f)) * inv_n;
    }
  }
  return grad;
}

ErAceLearner::ErAceLearner(QuantizedModel* qm, const LearnerOptions& options,
                           Rng* rng)
    : ContinualLearner(qm, options, rng),
      buffer_(options.buffer_capacity, /*store_logits=*/false, rng) {}

void ErAceLearner::ObserveBatch(const Dataset& batch) {
  QCORE_CHECK(!batch.empty());
  SetBatchNormFrozen(qm_->model(), true);
  SoftmaxCrossEntropy ce;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    Dataset shuffled = batch.Shuffled(rng_);
    for (int start = 0; start < shuffled.size();
         start += options_.batch_size) {
      const int end = std::min(shuffled.size(), start + options_.batch_size);
      std::vector<int> idx(static_cast<size_t>(end - start));
      for (int i = start; i < end; ++i) idx[static_cast<size_t>(i - start)] = i;
      Dataset mb = shuffled.Subset(idx);

      stepper_.ZeroGrads();
      Tensor logits = stepper_.ForwardTrain(mb.x());
      stepper_.Backward(AsymmetricCeGrad(logits, mb.labels()));

      if (!buffer_.empty()) {
        Dataset replay = buffer_.Sample(options_.replay_sample,
                                        batch.num_classes(), nullptr);
        Tensor replay_logits = stepper_.ForwardTrain(replay.x());
        ce.Forward(replay_logits, replay.labels());
        stepper_.Backward(ce.Backward());
      }
      stepper_.Step();
    }
  }
  SetBatchNormFrozen(qm_->model(), false);
  buffer_.AddBatch(batch, nullptr);
}

}  // namespace qcore
