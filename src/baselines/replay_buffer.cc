#include "baselines/replay_buffer.h"

#include "tensor/tensor_ops.h"

namespace qcore {

ReplayBuffer::ReplayBuffer(int capacity, bool store_logits, Rng* rng)
    : capacity_(capacity), store_logits_(store_logits), rng_(rng) {
  QCORE_CHECK_GT(capacity, 0);
  QCORE_CHECK(rng != nullptr);
}

void ReplayBuffer::Add(const Tensor& x, int label, const Tensor* logits) {
  QCORE_CHECK_EQ(x.dim(0), 1);
  QCORE_CHECK(!store_logits_ || logits != nullptr);
  ++seen_;
  if (size() < capacity_) {
    xs_.push_back(x);
    labels_.push_back(label);
    if (store_logits_) logits_.push_back(*logits);
    return;
  }
  // Reservoir: replace a random slot with probability capacity/seen.
  const int64_t j = static_cast<int64_t>(rng_->NextUint64(
      static_cast<uint64_t>(seen_)));
  if (j < capacity_) {
    xs_[static_cast<size_t>(j)] = x;
    labels_[static_cast<size_t>(j)] = label;
    if (store_logits_) logits_[static_cast<size_t>(j)] = *logits;
  }
}

void ReplayBuffer::AddBatch(const Dataset& batch, const Tensor* batch_logits) {
  QCORE_CHECK(!store_logits_ || batch_logits != nullptr);
  for (int i = 0; i < batch.size(); ++i) {
    Tensor x = batch.Example(i);
    if (store_logits_) {
      Tensor row = batch_logits->SliceRows(i, i + 1);
      Add(x, batch.labels()[static_cast<size_t>(i)], &row);
    } else {
      Add(x, batch.labels()[static_cast<size_t>(i)], nullptr);
    }
  }
}

namespace {

Dataset Assemble(const std::vector<Tensor>& xs, const std::vector<int>& labels,
                 const std::vector<Tensor>& logit_rows,
                 const std::vector<int>& indices, int num_classes,
                 bool store_logits, Tensor* logits) {
  QCORE_CHECK(!indices.empty());
  std::vector<int64_t> shape = xs[static_cast<size_t>(indices[0])].shape();
  shape[0] = static_cast<int64_t>(indices.size());
  Tensor x(shape);
  const int64_t row_size = x.size() / x.dim(0);
  std::vector<int> y(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    const Tensor& src = xs[static_cast<size_t>(indices[i])];
    QCORE_CHECK_EQ(src.size(), row_size);
    std::copy(src.data(), src.data() + row_size,
              x.data() + static_cast<int64_t>(i) * row_size);
    y[i] = labels[static_cast<size_t>(indices[i])];
  }
  if (store_logits && logits != nullptr) {
    const int64_t k = logit_rows[static_cast<size_t>(indices[0])].size();
    *logits = Tensor({static_cast<int64_t>(indices.size()), k});
    for (size_t i = 0; i < indices.size(); ++i) {
      const Tensor& src = logit_rows[static_cast<size_t>(indices[i])];
      QCORE_CHECK_EQ(src.size(), k);
      std::copy(src.data(), src.data() + k,
                logits->data() + static_cast<int64_t>(i) * k);
    }
  }
  return Dataset(std::move(x), std::move(y), num_classes);
}

}  // namespace

Dataset ReplayBuffer::Sample(int count, int num_classes,
                             Tensor* logits) const {
  QCORE_CHECK_GT(count, 0);
  QCORE_CHECK(!empty());
  const int take = std::min(count, size());
  const std::vector<int> indices =
      rng_->SampleWithoutReplacement(size(), take);
  return Assemble(xs_, labels_, logits_, indices, num_classes, store_logits_,
                  logits);
}

Dataset ReplayBuffer::All(int num_classes, Tensor* logits) const {
  QCORE_CHECK(!empty());
  std::vector<int> indices(static_cast<size_t>(size()));
  for (int i = 0; i < size(); ++i) indices[static_cast<size_t>(i)] = i;
  return Assemble(xs_, labels_, logits_, indices, num_classes, store_logits_,
                  logits);
}

}  // namespace qcore
