#include "baselines/continual_learner.h"

#include "baselines/agem.h"
#include "baselines/camel.h"
#include "baselines/deepc.h"
#include "baselines/der.h"
#include "baselines/er.h"
#include "baselines/er_ace.h"
#include "nn/training.h"

namespace qcore {

ContinualLearner::ContinualLearner(QuantizedModel* qm,
                                   const LearnerOptions& options, Rng* rng)
    : qm_(qm), options_(options), rng_(rng), stepper_(qm, options.sgd) {
  QCORE_CHECK(qm != nullptr && rng != nullptr);
  QCORE_CHECK_GT(options.epochs, 0);
  QCORE_CHECK_GT(options.batch_size, 0);
  QCORE_CHECK_GT(options.buffer_capacity, 0);
}

float ContinualLearner::Evaluate(const Dataset& test) {
  if (test.empty()) return 0.0f;
  return EvaluateAccuracy(qm_->model(), test.x(), test.labels());
}

std::unique_ptr<ContinualLearner> MakeLearner(const std::string& name,
                                              QuantizedModel* qm,
                                              const LearnerOptions& options,
                                              Rng* rng) {
  if (name == "ER") return std::make_unique<ErLearner>(qm, options, rng);
  if (name == "A-GEM") return std::make_unique<AgemLearner>(qm, options, rng);
  if (name == "DER") {
    return std::make_unique<DerLearner>(qm, options, rng, /*alpha=*/0.5f,
                                        /*beta=*/0.0f);
  }
  if (name == "DER++") {
    return std::make_unique<DerLearner>(qm, options, rng, /*alpha=*/0.5f,
                                        /*beta=*/0.5f);
  }
  if (name == "ER-ACE") {
    return std::make_unique<ErAceLearner>(qm, options, rng);
  }
  if (name == "Camel") return std::make_unique<CamelLearner>(qm, options, rng);
  if (name == "DeepC") return std::make_unique<DeepCLearner>(qm, options, rng);
  QCORE_CHECK_MSG(false, "unknown baseline learner");
  return nullptr;
}

const std::vector<std::string>& BaselineNames() {
  static const std::vector<std::string>* const kNames =
      new std::vector<std::string>{"A-GEM", "DER",   "DER++", "ER",
                                   "ER-ACE", "Camel", "DeepC"};
  return *kNames;
}

}  // namespace qcore
