// Dark Experience Replay (Buzzega et al. 2020). The buffer stores the
// model's logits at insertion time; replay matches current outputs to the
// stored logits (self-distillation):
//   L = CE(batch) + alpha * MSE(f(x_buf), z_buf) + beta * CE(f(x_buf), y_buf)
// beta = 0 gives DER, beta > 0 gives DER++.
#ifndef QCORE_BASELINES_DER_H_
#define QCORE_BASELINES_DER_H_

#include "baselines/continual_learner.h"
#include "baselines/replay_buffer.h"

namespace qcore {

class DerLearner : public ContinualLearner {
 public:
  DerLearner(QuantizedModel* qm, const LearnerOptions& options, Rng* rng,
             float alpha, float beta);

  void ObserveBatch(const Dataset& batch) override;
  std::string name() const override { return beta_ > 0.0f ? "DER++" : "DER"; }

 private:
  ReplayBuffer buffer_;
  float alpha_;
  float beta_;
};

}  // namespace qcore

#endif  // QCORE_BASELINES_DER_H_
