// Camel (Li et al., SIGMOD 2022): efficient data management for stream
// learning. Incoming data is compressed into a small representative training
// subset (k-center coverage over inputs) while a separate reservoir buffer
// preserves older knowledge; the model trains on subset ∪ buffer sample.
// Total memory (subset + buffer) is capped at the learner's buffer capacity
// so the comparison with QCore is storage-fair.
#ifndef QCORE_BASELINES_CAMEL_H_
#define QCORE_BASELINES_CAMEL_H_

#include "baselines/continual_learner.h"
#include "baselines/replay_buffer.h"

namespace qcore {

class CamelLearner : public ContinualLearner {
 public:
  CamelLearner(QuantizedModel* qm, const LearnerOptions& options, Rng* rng);

  void ObserveBatch(const Dataset& batch) override;
  std::string name() const override { return "Camel"; }

  const Dataset& subset() const { return subset_; }

 private:
  int subset_capacity_;
  Dataset subset_;       // compressed incoming-data subset
  ReplayBuffer buffer_;  // rehearsal memory for older batches
};

}  // namespace qcore

#endif  // QCORE_BASELINES_CAMEL_H_
