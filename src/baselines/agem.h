// Averaged Gradient Episodic Memory (Chaudhry et al. 2019): before each
// update, the gradient on the incoming data is projected so it cannot
// increase the loss on a reference sample from episodic memory:
// if g·g_ref < 0, g <- g - (g·g_ref / ||g_ref||^2) g_ref.
#ifndef QCORE_BASELINES_AGEM_H_
#define QCORE_BASELINES_AGEM_H_

#include "baselines/continual_learner.h"
#include "baselines/replay_buffer.h"

namespace qcore {

class AgemLearner : public ContinualLearner {
 public:
  AgemLearner(QuantizedModel* qm, const LearnerOptions& options, Rng* rng);

  void ObserveBatch(const Dataset& batch) override;
  std::string name() const override { return "A-GEM"; }

 private:
  ReplayBuffer buffer_;
};

}  // namespace qcore

#endif  // QCORE_BASELINES_AGEM_H_
