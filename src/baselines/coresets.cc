#include "baselines/coresets.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "nn/training.h"
#include "tensor/tensor_ops.h"

namespace qcore {

namespace {

// Softmax probabilities of `model` on the whole dataset, [N, K].
Tensor Probabilities(Layer* model, const Dataset& d) {
  QCORE_CHECK(model != nullptr);
  Tensor logits = model->Forward(d.x(), /*training=*/false);
  return SoftmaxRows(logits);
}

// Indices of the `size` largest scores.
std::vector<int> TopKByScore(const std::vector<double>& scores, int size) {
  QCORE_CHECK_LE(size, static_cast<int>(scores.size()));
  std::vector<int> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + size, order.end(),
                    [&](int a, int b) {
                      return scores[static_cast<size_t>(a)] >
                             scores[static_cast<size_t>(b)];
                    });
  order.resize(static_cast<size_t>(size));
  return order;
}

double SquaredDistance(const float* a, const float* b, int64_t n) {
  double s = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double diff = static_cast<double>(a[i]) - b[i];
    s += diff * diff;
  }
  return s;
}

}  // namespace

std::vector<int> SelectMaxEntropy(Layer* model, const Dataset& d, int size) {
  const Tensor probs = Probabilities(model, d);
  const int64_t n = probs.dim(0), k = probs.dim(1);
  std::vector<double> entropy(static_cast<size_t>(n), 0.0);
  const float* pp = probs.data();
  for (int64_t i = 0; i < n; ++i) {
    double h = 0.0;
    for (int64_t j = 0; j < k; ++j) {
      const double p = std::max<double>(pp[i * k + j], 1e-12);
      h -= p * std::log(p);
    }
    entropy[static_cast<size_t>(i)] = h;
  }
  return TopKByScore(entropy, size);
}

std::vector<int> SelectLeastConfidence(Layer* model, const Dataset& d,
                                       int size) {
  const Tensor probs = Probabilities(model, d);
  const int64_t n = probs.dim(0), k = probs.dim(1);
  std::vector<double> uncertainty(static_cast<size_t>(n), 0.0);
  const float* pp = probs.data();
  for (int64_t i = 0; i < n; ++i) {
    float mx = 0.0f;
    for (int64_t j = 0; j < k; ++j) mx = std::max(mx, pp[i * k + j]);
    uncertainty[static_cast<size_t>(i)] = 1.0 - mx;  // higher = less confident
  }
  return TopKByScore(uncertainty, size);
}

std::vector<int> SelectNormalFit(const std::vector<int>& misses, int size,
                                 Rng* rng) {
  QCORE_CHECK(rng != nullptr);
  const int n = static_cast<int>(misses.size());
  QCORE_CHECK_LE(size, n);
  double mean = 0.0;
  for (int m : misses) mean += m;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (int m : misses) var += (m - mean) * (m - mean);
  var = var / static_cast<double>(n) + 1e-6;

  // Weighted sampling without replacement proportional to the fitted
  // density.
  std::vector<double> weights(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double z = (misses[static_cast<size_t>(i)] - mean);
    weights[static_cast<size_t>(i)] = std::exp(-z * z / (2.0 * var)) + 1e-9;
  }
  std::vector<int> selected;
  selected.reserve(static_cast<size_t>(size));
  for (int pick = 0; pick < size; ++pick) {
    const int idx = rng->SampleWeighted(weights);
    selected.push_back(idx);
    weights[static_cast<size_t>(idx)] = 0.0;
  }
  return selected;
}

std::vector<int> SelectKMeans(const Dataset& d, int size, Rng* rng) {
  QCORE_CHECK(rng != nullptr);
  const int n = d.size();
  QCORE_CHECK_LE(size, n);
  const Tensor flat = d.x().Reshape({n, d.x().size() / n});
  const int64_t dim = flat.dim(1);
  const float* px = flat.data();

  // Initialize centroids from a random subset.
  std::vector<int> init = rng->SampleWithoutReplacement(n, size);
  std::vector<std::vector<double>> centroids(
      static_cast<size_t>(size), std::vector<double>(static_cast<size_t>(dim)));
  for (int c = 0; c < size; ++c) {
    const float* row = px + static_cast<int64_t>(init[static_cast<size_t>(c)]) * dim;
    for (int64_t j = 0; j < dim; ++j) centroids[static_cast<size_t>(c)][static_cast<size_t>(j)] = row[j];
  }

  std::vector<int> assignment(static_cast<size_t>(n), 0);
  for (int iter = 0; iter < 10; ++iter) {
    // Assign.
    for (int i = 0; i < n; ++i) {
      const float* row = px + static_cast<int64_t>(i) * dim;
      double best = 1e300;
      int best_c = 0;
      for (int c = 0; c < size; ++c) {
        double dist = 0.0;
        const auto& cen = centroids[static_cast<size_t>(c)];
        for (int64_t j = 0; j < dim; ++j) {
          const double diff = row[j] - cen[static_cast<size_t>(j)];
          dist += diff * diff;
        }
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      assignment[static_cast<size_t>(i)] = best_c;
    }
    // Update.
    std::vector<std::vector<double>> sums(
        static_cast<size_t>(size),
        std::vector<double>(static_cast<size_t>(dim), 0.0));
    std::vector<int> counts(static_cast<size_t>(size), 0);
    for (int i = 0; i < n; ++i) {
      const int c = assignment[static_cast<size_t>(i)];
      const float* row = px + static_cast<int64_t>(i) * dim;
      auto& sum = sums[static_cast<size_t>(c)];
      for (int64_t j = 0; j < dim; ++j) sum[static_cast<size_t>(j)] += row[j];
      ++counts[static_cast<size_t>(c)];
    }
    for (int c = 0; c < size; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) continue;  // keep old centroid
      auto& cen = centroids[static_cast<size_t>(c)];
      for (int64_t j = 0; j < dim; ++j) {
        cen[static_cast<size_t>(j)] =
            sums[static_cast<size_t>(c)][static_cast<size_t>(j)] /
            counts[static_cast<size_t>(c)];
      }
    }
  }

  // Nearest example to each centroid, without duplicates.
  std::vector<bool> taken(static_cast<size_t>(n), false);
  std::vector<int> selected;
  selected.reserve(static_cast<size_t>(size));
  for (int c = 0; c < size; ++c) {
    double best = 1e300;
    int best_i = -1;
    const auto& cen = centroids[static_cast<size_t>(c)];
    for (int i = 0; i < n; ++i) {
      if (taken[static_cast<size_t>(i)]) continue;
      const float* row = px + static_cast<int64_t>(i) * dim;
      double dist = 0.0;
      for (int64_t j = 0; j < dim; ++j) {
        const double diff = row[j] - cen[static_cast<size_t>(j)];
        dist += diff * diff;
      }
      if (dist < best) {
        best = dist;
        best_i = i;
      }
    }
    QCORE_CHECK_GE(best_i, 0);
    taken[static_cast<size_t>(best_i)] = true;
    selected.push_back(best_i);
  }
  return selected;
}

std::vector<int> KCenterGreedy(const Tensor& flattened_rows, int size,
                               Rng* rng) {
  QCORE_CHECK(rng != nullptr);
  QCORE_CHECK_EQ(flattened_rows.ndim(), 2);
  const int n = static_cast<int>(flattened_rows.dim(0));
  QCORE_CHECK_LE(size, n);
  const int64_t dim = flattened_rows.dim(1);
  const float* px = flattened_rows.data();

  std::vector<int> selected;
  selected.reserve(static_cast<size_t>(size));
  std::vector<double> min_dist(static_cast<size_t>(n), 1e300);
  int current = rng->NextInt(0, n - 1);
  selected.push_back(current);
  for (int pick = 1; pick < size; ++pick) {
    // Update distances to the newly selected center, then take the farthest.
    const float* crow = px + static_cast<int64_t>(current) * dim;
    double best = -1.0;
    int best_i = -1;
    for (int i = 0; i < n; ++i) {
      const double dist =
          SquaredDistance(px + static_cast<int64_t>(i) * dim, crow, dim);
      if (dist < min_dist[static_cast<size_t>(i)]) {
        min_dist[static_cast<size_t>(i)] = dist;
      }
      if (min_dist[static_cast<size_t>(i)] > best &&
          std::find(selected.begin(), selected.end(), i) == selected.end()) {
        best = min_dist[static_cast<size_t>(i)];
        best_i = i;
      }
    }
    QCORE_CHECK_GE(best_i, 0);
    selected.push_back(best_i);
    current = best_i;
  }
  return selected;
}

Tensor LastLayerGradients(Layer* model, const Dataset& d) {
  const Tensor probs = Probabilities(model, d);
  Tensor grads = probs;
  const int64_t k = grads.dim(1);
  float* pg = grads.data();
  for (int i = 0; i < d.size(); ++i) {
    pg[static_cast<int64_t>(i) * k + d.labels()[static_cast<size_t>(i)]] -=
        1.0f;
  }
  return grads;
}

std::vector<int> SelectGradMatch(Layer* model, const Dataset& d, int size) {
  const Tensor grads = LastLayerGradients(model, d);
  const int n = d.size();
  QCORE_CHECK_LE(size, n);
  const int64_t k = grads.dim(1);
  const float* pg = grads.data();

  // Target: mean gradient over the full set.
  std::vector<double> target(static_cast<size_t>(k), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int64_t j = 0; j < k; ++j) {
      target[static_cast<size_t>(j)] += pg[static_cast<int64_t>(i) * k + j];
    }
  }
  for (auto& t : target) t /= static_cast<double>(n);

  // Greedy OMP-style: add the example that most reduces the residual between
  // the running subset mean and the target.
  std::vector<double> subset_sum(static_cast<size_t>(k), 0.0);
  std::vector<bool> taken(static_cast<size_t>(n), false);
  std::vector<int> selected;
  selected.reserve(static_cast<size_t>(size));
  for (int pick = 0; pick < size; ++pick) {
    double best = 1e300;
    int best_i = -1;
    const double denom = static_cast<double>(pick + 1);
    for (int i = 0; i < n; ++i) {
      if (taken[static_cast<size_t>(i)]) continue;
      double residual = 0.0;
      for (int64_t j = 0; j < k; ++j) {
        const double mean_j =
            (subset_sum[static_cast<size_t>(j)] +
             pg[static_cast<int64_t>(i) * k + j]) /
            denom;
        const double diff = mean_j - target[static_cast<size_t>(j)];
        residual += diff * diff;
      }
      if (residual < best) {
        best = residual;
        best_i = i;
      }
    }
    QCORE_CHECK_GE(best_i, 0);
    taken[static_cast<size_t>(best_i)] = true;
    selected.push_back(best_i);
    for (int64_t j = 0; j < k; ++j) {
      subset_sum[static_cast<size_t>(j)] +=
          pg[static_cast<int64_t>(best_i) * k + j];
    }
  }
  return selected;
}

std::vector<int> SelectCraig(Layer* model, const Dataset& d, int size) {
  const Tensor grads = LastLayerGradients(model, d);
  const int n = d.size();
  QCORE_CHECK_LE(size, n);
  const int64_t k = grads.dim(1);
  const float* pg = grads.data();

  // Similarity: negative Euclidean distance between gradients, shifted so
  // facility-location gains stay non-negative.
  auto similarity = [&](int a, int b) {
    const double dist = std::sqrt(SquaredDistance(
        pg + static_cast<int64_t>(a) * k, pg + static_cast<int64_t>(b) * k,
        k));
    return 1.0 / (1.0 + dist);
  };

  std::vector<double> coverage(static_cast<size_t>(n), 0.0);
  std::vector<bool> taken(static_cast<size_t>(n), false);
  std::vector<int> selected;
  selected.reserve(static_cast<size_t>(size));
  for (int pick = 0; pick < size; ++pick) {
    double best_gain = -1.0;
    int best_i = -1;
    for (int i = 0; i < n; ++i) {
      if (taken[static_cast<size_t>(i)]) continue;
      double gain = 0.0;
      for (int j = 0; j < n; ++j) {
        const double s = similarity(j, i);
        if (s > coverage[static_cast<size_t>(j)]) {
          gain += s - coverage[static_cast<size_t>(j)];
        }
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_i = i;
      }
    }
    QCORE_CHECK_GE(best_i, 0);
    taken[static_cast<size_t>(best_i)] = true;
    selected.push_back(best_i);
    for (int j = 0; j < n; ++j) {
      const double s = similarity(j, best_i);
      if (s > coverage[static_cast<size_t>(j)]) {
        coverage[static_cast<size_t>(j)] = s;
      }
    }
  }
  return selected;
}

}  // namespace qcore
