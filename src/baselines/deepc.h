// Deep Compression (Han et al., ICLR 2016): prune the smallest-magnitude
// weights, quantize the survivors, and Huffman-encode the codes. It is a
// compression pipeline rather than a continual learner, so streaming
// adaptation is naive fine-tuning on each incoming batch with the pruning
// mask enforced — which is exactly why it forgets (paper Tables 5/6).
#ifndef QCORE_BASELINES_DEEPC_H_
#define QCORE_BASELINES_DEEPC_H_

#include <vector>

#include "baselines/continual_learner.h"

namespace qcore {

class DeepCLearner : public ContinualLearner {
 public:
  // `prune_fraction` of each quantized tensor's weights (smallest |w|) are
  // zeroed and frozen.
  DeepCLearner(QuantizedModel* qm, const LearnerOptions& options, Rng* rng,
               float prune_fraction = 0.3f);

  void ObserveBatch(const Dataset& batch) override;
  std::string name() const override { return "DeepC"; }

  // Fraction of quantized weights pruned (diagnostics).
  float pruned_fraction() const;

  // Size in bits of the Huffman-encoded code streams (the three-stage
  // pipeline's final artifact), plus 32 bits per remaining full-precision
  // parameter.
  uint64_t CompressedSizeBits() const;

 private:
  void EnforceMask();

  float prune_fraction_;
  // mask_[t][e] is true when element e of quantized tensor t is pruned.
  std::vector<std::vector<bool>> mask_;
};

}  // namespace qcore

#endif  // QCORE_BASELINES_DEEPC_H_
