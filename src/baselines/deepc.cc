#include "baselines/deepc.h"

#include <algorithm>
#include <cmath>

#include "common/huffman.h"
#include "nn/batchnorm.h"
#include "nn/loss.h"

namespace qcore {

DeepCLearner::DeepCLearner(QuantizedModel* qm, const LearnerOptions& options,
                           Rng* rng, float prune_fraction)
    : ContinualLearner(qm, options, rng), prune_fraction_(prune_fraction) {
  QCORE_CHECK_GE(prune_fraction, 0.0f);
  QCORE_CHECK_LT(prune_fraction, 1.0f);
  // Stage 1: magnitude pruning per quantized tensor.
  mask_.resize(static_cast<size_t>(qm_->num_quantized()));
  for (int t = 0; t < qm_->num_quantized(); ++t) {
    auto& qt = qm_->quantized(t);
    const int64_t count = static_cast<int64_t>(qt.codes.size());
    std::vector<float> magnitudes(static_cast<size_t>(count));
    for (int64_t e = 0; e < count; ++e) {
      magnitudes[static_cast<size_t>(e)] =
          std::fabs(qt.shadow.size() > 0 ? qt.shadow[e] : qt.param->value[e]);
    }
    std::vector<float> sorted = magnitudes;
    std::sort(sorted.begin(), sorted.end());
    const int64_t cut =
        static_cast<int64_t>(prune_fraction_ * static_cast<float>(count));
    const float threshold = cut > 0 ? sorted[static_cast<size_t>(cut - 1)]
                                    : -1.0f;
    mask_[static_cast<size_t>(t)].assign(static_cast<size_t>(count), false);
    int64_t pruned = 0;
    for (int64_t e = 0; e < count && pruned < cut; ++e) {
      if (magnitudes[static_cast<size_t>(e)] <= threshold) {
        mask_[static_cast<size_t>(t)][static_cast<size_t>(e)] = true;
        ++pruned;
      }
    }
  }
  EnforceMask();
}

void DeepCLearner::EnforceMask() {
  for (int t = 0; t < qm_->num_quantized(); ++t) {
    auto& qt = qm_->quantized(t);
    const auto& mask = mask_[static_cast<size_t>(t)];
    for (size_t e = 0; e < qt.codes.size(); ++e) {
      if (!mask[e]) continue;
      qt.codes[e] = 0;
      if (qt.shadow.size() > 0) qt.shadow[static_cast<int64_t>(e)] = 0.0f;
    }
    qm_->SyncParamFromCodes(t);
  }
}

void DeepCLearner::ObserveBatch(const Dataset& batch) {
  QCORE_CHECK(!batch.empty());
  SetBatchNormFrozen(qm_->model(), true);
  SoftmaxCrossEntropy ce;
  // Naive fine-tuning on the incoming batch only — DeepC has no rehearsal.
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    Dataset shuffled = batch.Shuffled(rng_);
    for (int start = 0; start < shuffled.size();
         start += options_.batch_size) {
      const int end = std::min(shuffled.size(), start + options_.batch_size);
      std::vector<int> idx(static_cast<size_t>(end - start));
      for (int i = start; i < end; ++i) idx[static_cast<size_t>(i - start)] = i;
      Dataset mb = shuffled.Subset(idx);
      Tensor logits = stepper_.ForwardTrain(mb.x());
      ce.Forward(logits, mb.labels());
      stepper_.Backward(ce.Backward());
      stepper_.Step();
      EnforceMask();
    }
  }
  SetBatchNormFrozen(qm_->model(), false);
}

float DeepCLearner::pruned_fraction() const {
  int64_t pruned = 0, total = 0;
  for (const auto& mask : mask_) {
    total += static_cast<int64_t>(mask.size());
    for (bool m : mask) pruned += m ? 1 : 0;
  }
  return total > 0 ? static_cast<float>(pruned) / static_cast<float>(total)
                   : 0.0f;
}

uint64_t DeepCLearner::CompressedSizeBits() const {
  uint64_t bits = 0;
  for (int t = 0; t < qm_->num_quantized(); ++t) {
    const auto& qt = qm_->quantized(t);
    auto encoded = HuffmanCoder::Encode(qt.codes);
    QCORE_CHECK(encoded.ok());
    bits += encoded.value().TotalBits();
  }
  const int64_t total = CountParams(qm_->model());
  const int64_t fp = total - qm_->TotalCodeCount();
  return bits + static_cast<uint64_t>(fp) * 32ULL;
}

}  // namespace qcore
