// Uniform symmetric quantization (paper Sec. 2.2, Fig. 2): a float tensor is
// mapped to integer codes in [-qmax, qmax] with a per-tensor scale so that
// value ≈ code * scale. Symmetric quantization keeps zero exactly
// representable and makes the bit-flip update (code ± 1) meaningful at every
// level.
#ifndef QCORE_QUANT_QUANTIZER_H_
#define QCORE_QUANT_QUANTIZER_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace qcore {

struct QuantParams {
  int bits = 8;
  float scale = 1.0f;  // step size between adjacent levels
  int32_t qmin = -127;
  int32_t qmax = 127;

  // Number of representable levels (qmax - qmin + 1).
  int num_levels() const { return qmax - qmin + 1; }
};

// Chooses a symmetric range covering the tensor's absolute maximum:
// qmax = 2^(bits-1) - 1, scale = absmax / qmax. bits must be in [2, 16].
// A zero tensor gets scale 1 (any code maps back to a representable value).
QuantParams ChooseSymmetricParams(const Tensor& t, int bits);

// Rounds a float to its nearest integer code, clamped to [qmin, qmax].
int32_t QuantizeValue(float v, const QuantParams& qp);

// code * scale.
inline float DequantizeValue(int32_t code, const QuantParams& qp) {
  return static_cast<float>(code) * qp.scale;
}

// Quantize-then-dequantize: the "fake quantization" used to simulate a
// quantized forward pass during straight-through-estimator calibration.
Tensor FakeQuantize(const Tensor& t, const QuantParams& qp);

// Element-wise integer codes for the whole tensor.
std::vector<int32_t> QuantizeToCodes(const Tensor& t, const QuantParams& qp);

// Reconstructs a tensor of the given shape from codes.
Tensor DequantizeCodes(const std::vector<int32_t>& codes,
                       const QuantParams& qp, std::vector<int64_t> shape);

// Mean squared quantization error of representing t at the given params.
double QuantizationMse(const Tensor& t, const QuantParams& qp);

}  // namespace qcore

#endif  // QCORE_QUANT_QUANTIZER_H_
