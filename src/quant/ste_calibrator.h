// Straight-through-estimator (STE) calibration: back-propagation-based
// calibration of a quantized model (paper Sec. 2.3, Eq. 1). The forward pass
// uses the quantized weights; the gradient "passes straight through" the
// quantization function and updates the full-precision shadow masters, which
// are then re-quantized. This is the server-side initial calibration in
// Fig. 1(b) and the mechanism every BP-based baseline (ER, DER, ...) uses to
// adjust a quantized model.
//
// The per-step observer exposes the integer code deltas produced by each BP
// step — exactly the training signal the bit-flipping network needs
// (Algorithm 2, line 11).
#ifndef QCORE_QUANT_STE_CALIBRATOR_H_
#define QCORE_QUANT_STE_CALIBRATOR_H_

#include <functional>
#include <vector>

#include "nn/sgd.h"
#include "quant/quantized_model.h"

namespace qcore {

struct SteOptions {
  int epochs = 20;
  int batch_size = 32;
  SgdOptions sgd = {.lr = 0.01f, .momentum = 0.9f, .weight_decay = 0.0f};
  // Freeze BatchNorm running statistics during calibration (recommended:
  // calibration sets are tiny, batch statistics would be destructive).
  bool freeze_bn = true;
};

// Observation handed to the per-step callback after each BP step.
struct SteStepInfo {
  int epoch = 0;
  int step = 0;  // global step counter
  // Codes of every quantized tensor *before* this step. Indexed like
  // QuantizedModel::quantized(). After the callback returns, the model holds
  // the post-step codes.
  const std::vector<std::vector<int32_t>>* prev_codes = nullptr;
  QuantizedModel* model = nullptr;
  float batch_loss = 0.0f;
};

using SteStepObserver = std::function<void(const SteStepInfo&)>;

// Runs STE calibration of `qm` on (x, labels). Requires shadows (server-side
// mode). Returns the mean loss of the final epoch.
float SteCalibrate(QuantizedModel* qm, const Tensor& x,
                   const std::vector<int>& labels, const SteOptions& options,
                   Rng* rng, const SteStepObserver& observer = nullptr);

// Convenience: accuracy of the quantized model on (x, labels) in eval mode.
float QuantizedAccuracy(QuantizedModel* qm, const Tensor& x,
                        const std::vector<int>& labels);

}  // namespace qcore

#endif  // QCORE_QUANT_STE_CALIBRATOR_H_
