#include "quant/ste_calibrator.h"

#include <algorithm>

#include "nn/batchnorm.h"
#include "nn/loss.h"
#include "nn/training.h"

namespace qcore {

float SteCalibrate(QuantizedModel* qm, const Tensor& x,
                   const std::vector<int>& labels, const SteOptions& options,
                   Rng* rng, const SteStepObserver& observer) {
  QCORE_CHECK(qm != nullptr && rng != nullptr);
  QCORE_CHECK_MSG(qm->has_shadows(),
                  "STE calibration requires shadow masters (server mode)");
  QCORE_CHECK_EQ(x.dim(0), static_cast<int64_t>(labels.size()));
  QCORE_CHECK_GT(options.epochs, 0);

  Layer* model = qm->model();
  if (options.freeze_bn) SetBatchNormFrozen(model, true);

  // Split parameters: quantized tensors update their shadows manually;
  // everything else (biases, BN affine) uses a regular SGD instance.
  std::vector<Parameter*> quantized_params;
  for (int i = 0; i < qm->num_quantized(); ++i) {
    quantized_params.push_back(qm->quantized(i).param);
  }
  std::vector<Parameter*> other_params;
  for (Parameter* p : model->Params()) {
    if (std::find(quantized_params.begin(), quantized_params.end(), p) ==
        quantized_params.end()) {
      other_params.push_back(p);
    }
  }
  Sgd other_sgd(options.sgd);

  // Momentum buffers for the shadow masters.
  std::vector<Tensor> velocity;
  velocity.reserve(static_cast<size_t>(qm->num_quantized()));
  for (int i = 0; i < qm->num_quantized(); ++i) {
    velocity.emplace_back(qm->quantized(i).shadow.shape());
  }

  const int n = static_cast<int>(x.dim(0));
  std::vector<int> order(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;

  std::vector<std::vector<int32_t>> prev_codes(
      static_cast<size_t>(qm->num_quantized()));

  SoftmaxCrossEntropy loss;
  float last_epoch_loss = 0.0f;
  int global_step = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng->Shuffle(&order);
    double epoch_loss = 0.0;
    int batches = 0;
    for (int start = 0; start < n; start += options.batch_size) {
      const int end = std::min(n, start + options.batch_size);
      std::vector<int> idx(order.begin() + start, order.begin() + end);
      Tensor bx = x.GatherRows(idx);
      std::vector<int> by(idx.size());
      for (size_t i = 0; i < idx.size(); ++i) {
        by[i] = labels[static_cast<size_t>(idx[i])];
      }

      if (observer) {
        for (int t = 0; t < qm->num_quantized(); ++t) {
          prev_codes[static_cast<size_t>(t)] = qm->quantized(t).codes;
        }
      }

      // Forward at quantized weights (params hold dequant(codes) already).
      Tensor logits = model->Forward(bx, /*training=*/true);
      const float batch_loss = loss.Forward(logits, by);
      model->Backward(loss.Backward());

      // STE: gradient computed at quantized weights is applied to shadows.
      for (int t = 0; t < qm->num_quantized(); ++t) {
        auto& qt = qm->quantized(t);
        Tensor& vel = velocity[static_cast<size_t>(t)];
        float* shadow = qt.shadow.data();
        float* pv = vel.data();
        const float* grad = qt.param->grad.data();
        const int64_t count = qt.shadow.size();
        for (int64_t e = 0; e < count; ++e) {
          const float g =
              grad[e] + options.sgd.weight_decay * shadow[e];
          pv[e] = options.sgd.momentum * pv[e] + g;
          shadow[e] -= options.sgd.lr * pv[e];
        }
        qt.param->ZeroGrad();
      }
      other_sgd.Step(other_params);
      qm->RequantizeFromShadow();

      if (observer) {
        SteStepInfo info;
        info.epoch = epoch;
        info.step = global_step;
        info.prev_codes = &prev_codes;
        info.model = qm;
        info.batch_loss = batch_loss;
        observer(info);
      }
      ++global_step;
      epoch_loss += batch_loss;
      ++batches;
    }
    last_epoch_loss = static_cast<float>(epoch_loss / std::max(batches, 1));
  }

  if (options.freeze_bn) SetBatchNormFrozen(model, false);
  return last_epoch_loss;
}

float QuantizedAccuracy(QuantizedModel* qm, const Tensor& x,
                        const std::vector<int>& labels) {
  QCORE_CHECK(qm != nullptr);
  return EvaluateAccuracy(qm->model(), x, labels);
}

}  // namespace qcore
