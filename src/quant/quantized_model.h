// A classification model whose weight tensors are stored as integer codes
// with per-tensor scales (paper Sec. 2.2). Two operating modes:
//
//  * Server-side: each quantized tensor keeps a full-precision "shadow"
//    master copy so straight-through-estimator calibration (initial
//    calibration with BP, Fig. 1(b)) can run.
//  * Edge-side: DropShadows() discards the masters, after which the only way
//    to change the model is mutating integer codes (ApplyCodeDelta) — the
//    regime the bit-flipping network operates in.
//
// Convention: parameters whose name ends in ".weight" (Dense/Conv kernels)
// are quantized; biases and BatchNorm affine parameters stay full precision
// (standard practice — their cardinality is negligible and quantizing them
// at 2 bits destroys the model for every method equally).
#ifndef QCORE_QUANT_QUANTIZED_MODEL_H_
#define QCORE_QUANT_QUANTIZED_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "nn/layer.h"
#include "quant/quantizer.h"

namespace qcore {

class BinaryReader;
class BinaryWriter;

class QuantizedModel {
 public:
  // Deep-copies `float_model` and quantizes its weight tensors at `bits`.
  QuantizedModel(const Layer& float_model, int bits);

  QuantizedModel(const QuantizedModel&) = delete;
  QuantizedModel& operator=(const QuantizedModel&) = delete;

  std::unique_ptr<QuantizedModel> Clone() const;

  int bits() const { return bits_; }

  // The internal model; its quantized parameter values always equal
  // code * scale. Useable for Forward/Backward like any Layer.
  Layer* model() { return model_.get(); }

  Tensor Forward(const Tensor& x, bool training = false) {
    return model_->Forward(x, training);
  }

  // One quantized weight tensor.
  struct QuantizedTensor {
    Parameter* param = nullptr;  // points into model_
    Layer* owner = nullptr;      // leaf layer owning the parameter
    QuantParams qp;
    std::vector<int32_t> codes;
    Tensor shadow;               // full-precision master; empty after deploy
    bool has_shadow = false;
  };

  int num_quantized() const { return static_cast<int>(tensors_.size()); }
  QuantizedTensor& quantized(int i) {
    QCORE_CHECK(i >= 0 && i < num_quantized());
    return tensors_[static_cast<size_t>(i)];
  }
  const QuantizedTensor& quantized(int i) const {
    QCORE_CHECK(i >= 0 && i < num_quantized());
    return tensors_[static_cast<size_t>(i)];
  }

  // Rewrites the i-th parameter's float values from its codes.
  void SyncParamFromCodes(int i);

  // codes = Quantize(shadow) for every tensor, then syncs params. Requires
  // shadows (server-side mode). Scales stay fixed from construction so code
  // deltas remain comparable across calibration rounds.
  void RequantizeFromShadow();

  // Discards all shadow masters — simulates edge deployment where
  // full-precision values are unavailable.
  void DropShadows();
  bool has_shadows() const;

  // codes[elem] += delta, clamped to [qmin, qmax]; updates the dequantized
  // parameter value. This is the bit-flip primitive; |delta| may exceed 1
  // when the caller scales the ternary flip direction to the precision
  // (see BitFlipCalibrateOptions::StepFor).
  void ApplyCodeDelta(int i, int64_t elem, int delta);

  // Total number of quantized scalar parameters.
  int64_t TotalCodeCount() const;

  // Deployed model size in bits: quantized codes at `bits` each plus
  // full-precision leftovers at 32 bits each.
  uint64_t SizeBits() const;

  // Persistence of the deployed form (codes + scales + fp parameters).
  Status Save(const std::string& path) const;
  // Loads into a model constructed from the same architecture.
  Status Load(const std::string& path);

  // In-memory forms of Save/Load over common/serialize buffers. The serving
  // snapshot registry uses these to publish immutable copy-on-write model
  // versions without touching the filesystem.
  void SerializeTo(BinaryWriter* w) const;
  // Atomic: the whole stream is parsed and validated (including full
  // consumption) before anything is committed, so on any error the model
  // is untouched. Existing Layer*/Parameter* pointers stay valid.
  Status DeserializeFrom(BinaryReader* r);

  // All code tables, indexed like quantized(). Two models with equal
  // results have equal AllCodes() — the equality the serving determinism
  // checks (tests and bench) are built on.
  std::vector<std::vector<int32_t>> AllCodes() const;

  // Batched quantized inference: concatenates `inputs` along axis 0, runs
  // ONE eval-mode forward pass, and scatters per-row argmax labels back to
  // one vector per input. Bit-identical to predicting each input alone:
  // every layer's eval forward is row-independent (Dense/Conv accumulate
  // per row in a fixed order; BatchNorm eval normalizes with running
  // stats; softmax/argmax are row-wise), so rows neither see nor perturb
  // each other. This is the compute entry point of the serving
  // InferenceBatcher.
  std::vector<std::vector<int>> PredictBatched(
      const std::vector<const Tensor*>& inputs);

 private:
  QuantizedModel() = default;

  // Walks model_ and (re)builds tensors_, quantizing weights at bits_.
  void BuildRegistry();

  int bits_ = 8;
  std::unique_ptr<Layer> model_;
  std::vector<QuantizedTensor> tensors_;
};

}  // namespace qcore

#endif  // QCORE_QUANT_QUANTIZED_MODEL_H_
