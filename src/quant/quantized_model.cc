#include "quant/quantized_model.h"

#include <cmath>

#include "common/serialize.h"
#include "tensor/tensor_ops.h"

namespace qcore {

namespace {

bool IsQuantizable(const Parameter& p) {
  // Dense/Conv kernels: rank >= 2 and named "*.weight".
  const std::string& n = p.name;
  const std::string suffix = ".weight";
  return p.value.ndim() >= 2 && n.size() > suffix.size() &&
         n.compare(n.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

QuantizedModel::QuantizedModel(const Layer& float_model, int bits)
    : bits_(bits), model_(float_model.Clone()) {
  QCORE_CHECK_GE(bits, 2);
  QCORE_CHECK_LE(bits, 16);
  BuildRegistry();
}

void QuantizedModel::BuildRegistry() {
  tensors_.clear();
  for (Layer* leaf : FlattenLeafLayers(model_.get())) {
    for (Parameter* p : leaf->Params()) {
      if (!IsQuantizable(*p)) continue;
      QuantizedTensor qt;
      qt.param = p;
      qt.owner = leaf;
      qt.qp = ChooseSymmetricParams(p->value, bits_);
      qt.codes = QuantizeToCodes(p->value, qt.qp);
      qt.shadow = p->value;  // full-precision master
      qt.has_shadow = true;
      tensors_.push_back(std::move(qt));
    }
  }
  for (int i = 0; i < num_quantized(); ++i) SyncParamFromCodes(i);
}

std::unique_ptr<QuantizedModel> QuantizedModel::Clone() const {
  auto copy = std::unique_ptr<QuantizedModel>(new QuantizedModel());
  copy->bits_ = bits_;
  copy->model_ = model_->Clone();
  // Rebuild the registry structure (param/owner pointers into the cloned
  // tree) but copy the exact quantization state rather than re-deriving it:
  // re-quantizing dequantized values can drift, and Clone sits on the
  // serving registration/restore paths where the rederivation is also
  // wasted work.
  copy->tensors_.reserve(tensors_.size());
  size_t i = 0;
  for (Layer* leaf : FlattenLeafLayers(copy->model_.get())) {
    for (Parameter* p : leaf->Params()) {
      if (!IsQuantizable(*p)) continue;
      QCORE_CHECK_LT(i, tensors_.size());
      const QuantizedTensor& src = tensors_[i++];
      QCORE_CHECK_EQ(p->name, src.param->name);
      QuantizedTensor qt;
      qt.param = p;
      qt.owner = leaf;
      qt.qp = src.qp;
      qt.codes = src.codes;
      qt.shadow = src.shadow;
      qt.has_shadow = src.has_shadow;
      copy->tensors_.push_back(std::move(qt));
    }
  }
  QCORE_CHECK_EQ(i, tensors_.size());
  for (int t = 0; t < copy->num_quantized(); ++t) {
    copy->SyncParamFromCodes(t);
  }
  return copy;
}

void QuantizedModel::SyncParamFromCodes(int i) {
  QuantizedTensor& qt = quantized(i);
  QCORE_CHECK_EQ(qt.param->value.size(),
                 static_cast<int64_t>(qt.codes.size()));
  float* p = qt.param->value.data();
  for (size_t e = 0; e < qt.codes.size(); ++e) {
    p[e] = DequantizeValue(qt.codes[e], qt.qp);
  }
}

void QuantizedModel::RequantizeFromShadow() {
  for (int i = 0; i < num_quantized(); ++i) {
    QuantizedTensor& qt = quantized(i);
    QCORE_CHECK_MSG(qt.has_shadow,
                    "RequantizeFromShadow after DropShadows()");
    qt.codes = QuantizeToCodes(qt.shadow, qt.qp);
    SyncParamFromCodes(i);
  }
}

void QuantizedModel::DropShadows() {
  for (auto& qt : tensors_) {
    qt.shadow = Tensor();
    qt.has_shadow = false;
  }
}

bool QuantizedModel::has_shadows() const {
  for (const auto& qt : tensors_) {
    if (!qt.has_shadow) return false;
  }
  return !tensors_.empty();
}

void QuantizedModel::ApplyCodeDelta(int i, int64_t elem, int delta) {
  QuantizedTensor& qt = quantized(i);
  QCORE_CHECK_GE(delta, -qt.qp.num_levels());
  QCORE_CHECK_LE(delta, qt.qp.num_levels());
  QCORE_CHECK(elem >= 0 && elem < static_cast<int64_t>(qt.codes.size()));
  if (delta == 0) return;
  int32_t& code = qt.codes[static_cast<size_t>(elem)];
  int32_t next = code + delta;
  if (next < qt.qp.qmin) next = qt.qp.qmin;
  if (next > qt.qp.qmax) next = qt.qp.qmax;
  code = next;
  qt.param->value[elem] = DequantizeValue(code, qt.qp);
}

std::vector<std::vector<int32_t>> QuantizedModel::AllCodes() const {
  std::vector<std::vector<int32_t>> codes;
  codes.reserve(tensors_.size());
  for (const auto& qt : tensors_) codes.push_back(qt.codes);
  return codes;
}

std::vector<std::vector<int>> QuantizedModel::PredictBatched(
    const std::vector<const Tensor*>& inputs) {
  QCORE_CHECK(!inputs.empty());
  const Tensor batch = ConcatRows(inputs);
  const std::vector<int> labels =
      ArgMaxRows(Forward(batch, /*training=*/false));
  std::vector<std::vector<int>> out;
  out.reserve(inputs.size());
  size_t offset = 0;
  for (const Tensor* x : inputs) {
    const size_t rows = static_cast<size_t>(x->dim(0));
    out.emplace_back(labels.begin() + static_cast<int64_t>(offset),
                     labels.begin() + static_cast<int64_t>(offset + rows));
    offset += rows;
  }
  QCORE_CHECK_EQ(static_cast<int64_t>(offset),
                 static_cast<int64_t>(labels.size()));
  return out;
}

int64_t QuantizedModel::TotalCodeCount() const {
  int64_t n = 0;
  for (const auto& qt : tensors_) n += static_cast<int64_t>(qt.codes.size());
  return n;
}

uint64_t QuantizedModel::SizeBits() const {
  const int64_t quantized = TotalCodeCount();
  const int64_t total = CountParams(model_.get());
  const int64_t fp = total - quantized;
  return static_cast<uint64_t>(quantized) * static_cast<uint64_t>(bits_) +
         static_cast<uint64_t>(fp) * 32ULL;
}

Status QuantizedModel::Save(const std::string& path) const {
  BinaryWriter w;
  SerializeTo(&w);
  return w.ToFile(path);
}

void QuantizedModel::SerializeTo(BinaryWriter* out) const {
  BinaryWriter& w = *out;
  w.WriteI32(bits_);
  w.WriteU64(tensors_.size());
  for (const auto& qt : tensors_) {
    w.WriteString(qt.param->name);
    w.WriteF32(qt.qp.scale);
    w.WriteInts(qt.codes);
  }
  // Non-quantized parameters (biases, BN affine) and buffers, full
  // precision, read in place — serialization must stay cheap because the
  // serving snapshot registry publishes on the calibration path.
  std::vector<Parameter*> fp_params;
  for (Parameter* p : model_->Params()) {
    if (!IsQuantizable(*p)) fp_params.push_back(p);
  }
  w.WriteU64(fp_params.size());
  for (Parameter* p : fp_params) {
    w.WriteString(p->name);
    w.WriteFloats(p->value.data(), p->value.vec().size());
  }
  std::vector<Tensor*> buffers = model_->Buffers();
  w.WriteU64(buffers.size());
  for (Tensor* b : buffers) w.WriteFloats(b->data(), b->vec().size());
}

Status QuantizedModel::Load(const std::string& path) {
  auto reader = BinaryReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  Status s = DeserializeFrom(&reader.value());
  if (!s.ok()) return Status(s.code(), s.message() + " (" + path + ")");
  return s;
}

Status QuantizedModel::DeserializeFrom(BinaryReader* in) {
  // Parse and validate the entire stream into locals first, commit only
  // after everything (including full consumption) checks out: a corrupt or
  // mismatched snapshot must never leave this model half old, half new —
  // a rollback caller keeps serving the current model on error.
  BinaryReader& r = *in;
  auto bits = r.ReadI32();
  if (!bits.ok()) return bits.status();
  if (bits.value() != bits_) {
    return Status::Corruption("bit-width mismatch in snapshot");
  }
  auto count = r.ReadU64();
  if (!count.ok()) return count.status();
  if (count.value() != tensors_.size()) {
    return Status::Corruption("quantized tensor count mismatch in snapshot");
  }
  std::vector<float> new_scales(tensors_.size());
  std::vector<std::vector<int32_t>> new_codes(tensors_.size());
  for (size_t i = 0; i < tensors_.size(); ++i) {
    auto name = r.ReadString();
    if (!name.ok()) return name.status();
    if (name.value() != tensors_[i].param->name) {
      return Status::Corruption("tensor name mismatch: " + name.value());
    }
    auto scale = r.ReadF32();
    if (!scale.ok()) return scale.status();
    if (!std::isfinite(scale.value()) || scale.value() <= 0.0f) {
      // ChooseSymmetricParams never produces scale <= 0 (all-zero tensors
      // fall back to 1.0f), so anything else is corruption.
      return Status::Corruption("invalid scale for " + name.value());
    }
    auto codes = r.ReadInts();
    if (!codes.ok()) return codes.status();
    if (codes.value().size() != tensors_[i].codes.size()) {
      return Status::Corruption("code count mismatch for " + name.value());
    }
    // Payload sanity: structurally valid corruption (bit-rotted values)
    // must not commit — the quantization range is known from bits_.
    for (int32_t c : codes.value()) {
      if (c < tensors_[i].qp.qmin || c > tensors_[i].qp.qmax) {
        return Status::Corruption("code out of range for " + name.value());
      }
    }
    new_scales[i] = scale.value();
    new_codes[i] = std::move(codes).value();
  }

  auto fp_count = r.ReadU64();
  if (!fp_count.ok()) return fp_count.status();
  std::vector<Parameter*> fp_params;
  for (Parameter* p : model_->Params()) {
    if (!IsQuantizable(*p)) fp_params.push_back(p);
  }
  if (fp_count.value() != fp_params.size()) {
    return Status::Corruption("fp parameter count mismatch in snapshot");
  }
  std::vector<std::vector<float>> new_fp(fp_params.size());
  for (size_t i = 0; i < fp_params.size(); ++i) {
    Parameter* p = fp_params[i];
    auto name = r.ReadString();
    if (!name.ok()) return name.status();
    if (name.value() != p->name) {
      return Status::Corruption("fp parameter name mismatch: " + name.value());
    }
    auto values = r.ReadFloats();
    if (!values.ok()) return values.status();
    if (values.value().size() != p->value.vec().size()) {
      return Status::Corruption("fp parameter size mismatch: " + p->name);
    }
    new_fp[i] = std::move(values).value();
  }

  auto buf_count = r.ReadU64();
  if (!buf_count.ok()) return buf_count.status();
  std::vector<Tensor*> buffers = model_->Buffers();
  if (buf_count.value() != buffers.size()) {
    return Status::Corruption("buffer count mismatch in snapshot");
  }
  std::vector<std::vector<float>> new_buffers(buffers.size());
  for (size_t i = 0; i < buffers.size(); ++i) {
    auto values = r.ReadFloats();
    if (!values.ok()) return values.status();
    if (values.value().size() != buffers[i]->vec().size()) {
      return Status::Corruption("buffer size mismatch");
    }
    new_buffers[i] = std::move(values).value();
  }
  if (!r.AtEnd()) {
    // Trailing bytes mean a writer produced fields this reader does not
    // understand (version skew) or the blob is corrupt past the payload.
    return Status::Corruption("trailing bytes after snapshot payload");
  }

  // Commit — nothing below can fail.
  for (size_t i = 0; i < tensors_.size(); ++i) {
    tensors_[i].qp.scale = new_scales[i];
    tensors_[i].codes = std::move(new_codes[i]);
    SyncParamFromCodes(static_cast<int>(i));
  }
  for (size_t i = 0; i < fp_params.size(); ++i) {
    fp_params[i]->value.vec().assign(new_fp[i].begin(), new_fp[i].end());
  }
  for (size_t i = 0; i < buffers.size(); ++i) {
    buffers[i]->vec().assign(new_buffers[i].begin(), new_buffers[i].end());
  }
  return Status::OK();
}

}  // namespace qcore
