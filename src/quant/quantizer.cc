#include "quant/quantizer.h"

#include <cmath>

namespace qcore {

QuantParams ChooseSymmetricParams(const Tensor& t, int bits) {
  QCORE_CHECK_GE(bits, 2);
  QCORE_CHECK_LE(bits, 16);
  QuantParams qp;
  qp.bits = bits;
  qp.qmax = (1 << (bits - 1)) - 1;
  qp.qmin = -qp.qmax;
  const float absmax = t.size() > 0 ? t.AbsMax() : 0.0f;
  qp.scale = absmax > 0.0f ? absmax / static_cast<float>(qp.qmax) : 1.0f;
  return qp;
}

int32_t QuantizeValue(float v, const QuantParams& qp) {
  QCORE_CHECK_GT(qp.scale, 0.0f);
  const float scaled = v / qp.scale;
  int32_t code = static_cast<int32_t>(std::lrintf(scaled));
  if (code < qp.qmin) code = qp.qmin;
  if (code > qp.qmax) code = qp.qmax;
  return code;
}

Tensor FakeQuantize(const Tensor& t, const QuantParams& qp) {
  Tensor out = t;
  float* p = out.data();
  const int64_t n = out.size();
  for (int64_t i = 0; i < n; ++i) {
    p[i] = DequantizeValue(QuantizeValue(p[i], qp), qp);
  }
  return out;
}

std::vector<int32_t> QuantizeToCodes(const Tensor& t, const QuantParams& qp) {
  std::vector<int32_t> codes(static_cast<size_t>(t.size()));
  const float* p = t.data();
  for (size_t i = 0; i < codes.size(); ++i) {
    codes[i] = QuantizeValue(p[i], qp);
  }
  return codes;
}

Tensor DequantizeCodes(const std::vector<int32_t>& codes,
                       const QuantParams& qp, std::vector<int64_t> shape) {
  Tensor out(std::move(shape));
  QCORE_CHECK_EQ(out.size(), static_cast<int64_t>(codes.size()));
  float* p = out.data();
  for (size_t i = 0; i < codes.size(); ++i) {
    QCORE_CHECK(codes[i] >= qp.qmin && codes[i] <= qp.qmax);
    p[i] = DequantizeValue(codes[i], qp);
  }
  return out;
}

double QuantizationMse(const Tensor& t, const QuantParams& qp) {
  if (t.size() == 0) return 0.0;
  const float* p = t.data();
  double mse = 0.0;
  const int64_t n = t.size();
  for (int64_t i = 0; i < n; ++i) {
    const float dq = DequantizeValue(QuantizeValue(p[i], qp), qp);
    const double d = static_cast<double>(p[i]) - dq;
    mse += d * d;
  }
  return mse / static_cast<double>(n);
}

}  // namespace qcore
