#include "models/model_zoo.h"

#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/layers.h"

namespace qcore {

namespace {

// One inception block: bottleneck 1x1 conv feeding parallel kernels
// {9, 5, 3} plus a direct 1x1 branch, concatenated and batch-normalized.
// Output channels: 4 * filters.
std::unique_ptr<Sequential> InceptionBlock(int in_channels, int bottleneck,
                                           int filters, Rng* rng) {
  std::vector<std::unique_ptr<Layer>> branches;
  for (int kernel : {9, 5, 3}) {
    auto branch = std::make_unique<Sequential>();
    branch->Add(std::make_unique<Conv1d>(in_channels, bottleneck, 1, 1, 0,
                                         rng));
    branch->Add(std::make_unique<Conv1d>(bottleneck, filters, kernel, 1,
                                         Conv1d::SamePad(kernel), rng));
    branches.push_back(std::move(branch));
  }
  // The pooling branch of the original is replaced by a 1x1 conv branch to
  // keep all branch lengths identical without padded pooling.
  branches.push_back(
      std::make_unique<Conv1d>(in_channels, filters, 1, 1, 0, rng));

  auto block = std::make_unique<Sequential>();
  block->Add(std::make_unique<ParallelConcat>(std::move(branches)));
  block->Add(std::make_unique<BatchNorm>(4 * filters));
  return block;
}

}  // namespace

std::unique_ptr<Sequential> MakeInceptionTime(int in_channels,
                                              int num_classes, Rng* rng) {
  QCORE_CHECK(rng != nullptr);
  constexpr int kBottleneck = 8;
  constexpr int kFilters = 6;
  constexpr int kBlockOut = 4 * kFilters;

  auto body = std::make_unique<Sequential>();
  auto block1 = InceptionBlock(in_channels, kBottleneck, kFilters, rng);
  block1->Add(std::make_unique<Relu>());
  body->Add(std::move(block1));
  body->Add(InceptionBlock(kBlockOut, kBottleneck, kFilters, rng));

  auto shortcut = std::make_unique<Sequential>();
  shortcut->Add(
      std::make_unique<Conv1d>(in_channels, kBlockOut, 1, 1, 0, rng));
  shortcut->Add(std::make_unique<BatchNorm>(kBlockOut));

  auto model = std::make_unique<Sequential>();
  model->Add(std::make_unique<Residual>(std::move(body), std::move(shortcut)));
  model->Add(std::make_unique<Relu>());
  model->Add(std::make_unique<GlobalAvgPool1d>());
  model->Add(std::make_unique<Dense>(kBlockOut, num_classes, rng));
  return model;
}

std::unique_ptr<Sequential> MakeOmniScaleCnn(int in_channels, int num_classes,
                                             Rng* rng) {
  QCORE_CHECK(rng != nullptr);
  constexpr int kFilters = 5;  // per branch
  const std::vector<int> kKernels = {1, 3, 5, 7};
  const int block_out = kFilters * static_cast<int>(kKernels.size());

  auto os_block = [&](int in_ch) {
    std::vector<std::unique_ptr<Layer>> branches;
    for (int kernel : kKernels) {
      branches.push_back(std::make_unique<Conv1d>(
          in_ch, kFilters, kernel, 1, Conv1d::SamePad(kernel), rng));
    }
    auto block = std::make_unique<Sequential>();
    block->Add(std::make_unique<ParallelConcat>(std::move(branches)));
    block->Add(std::make_unique<BatchNorm>(block_out));
    block->Add(std::make_unique<Relu>());
    return block;
  };

  auto model = std::make_unique<Sequential>();
  model->Add(os_block(in_channels));
  model->Add(os_block(block_out));
  model->Add(std::make_unique<GlobalAvgPool1d>());
  model->Add(std::make_unique<Dense>(block_out, num_classes, rng));
  return model;
}

std::unique_ptr<Sequential> MakeResNetTiny(int in_channels, int num_classes,
                                           Rng* rng) {
  QCORE_CHECK(rng != nullptr);
  constexpr int kStem = 8;
  constexpr int kStage2 = 16;

  auto model = std::make_unique<Sequential>();
  model->Add(std::make_unique<Conv2d>(in_channels, kStem, 3, 1, 1, rng));
  model->Add(std::make_unique<BatchNorm>(kStem));
  model->Add(std::make_unique<Relu>());

  // Identity residual stage.
  auto body1 = std::make_unique<Sequential>();
  body1->Add(std::make_unique<Conv2d>(kStem, kStem, 3, 1, 1, rng));
  body1->Add(std::make_unique<BatchNorm>(kStem));
  body1->Add(std::make_unique<Relu>());
  body1->Add(std::make_unique<Conv2d>(kStem, kStem, 3, 1, 1, rng));
  body1->Add(std::make_unique<BatchNorm>(kStem));
  model->Add(std::make_unique<Residual>(std::move(body1), nullptr));
  model->Add(std::make_unique<Relu>());
  model->Add(std::make_unique<MaxPool2d>(2, 2));

  // Widening residual stage with projection shortcut.
  auto body2 = std::make_unique<Sequential>();
  body2->Add(std::make_unique<Conv2d>(kStem, kStage2, 3, 1, 1, rng));
  body2->Add(std::make_unique<BatchNorm>(kStage2));
  body2->Add(std::make_unique<Relu>());
  body2->Add(std::make_unique<Conv2d>(kStage2, kStage2, 3, 1, 1, rng));
  body2->Add(std::make_unique<BatchNorm>(kStage2));
  auto shortcut2 = std::make_unique<Sequential>();
  shortcut2->Add(std::make_unique<Conv2d>(kStem, kStage2, 1, 1, 0, rng));
  shortcut2->Add(std::make_unique<BatchNorm>(kStage2));
  model->Add(
      std::make_unique<Residual>(std::move(body2), std::move(shortcut2)));
  model->Add(std::make_unique<Relu>());
  model->Add(std::make_unique<MaxPool2d>(2, 2));

  model->Add(std::make_unique<GlobalAvgPool2d>());
  model->Add(std::make_unique<Dense>(kStage2, num_classes, rng));
  return model;
}

std::unique_ptr<Sequential> MakeVggTiny(int in_channels, int height,
                                        int width, int num_classes, Rng* rng) {
  QCORE_CHECK(rng != nullptr);
  QCORE_CHECK_EQ(height % 4, 0);
  QCORE_CHECK_EQ(width % 4, 0);
  constexpr int kC1 = 8;
  constexpr int kC2 = 16;
  constexpr int kHidden = 32;

  auto model = std::make_unique<Sequential>();
  model->Add(std::make_unique<Conv2d>(in_channels, kC1, 3, 1, 1, rng));
  model->Add(std::make_unique<Relu>());
  model->Add(std::make_unique<Conv2d>(kC1, kC1, 3, 1, 1, rng));
  model->Add(std::make_unique<Relu>());
  model->Add(std::make_unique<MaxPool2d>(2, 2));
  model->Add(std::make_unique<Conv2d>(kC1, kC2, 3, 1, 1, rng));
  model->Add(std::make_unique<Relu>());
  model->Add(std::make_unique<Conv2d>(kC2, kC2, 3, 1, 1, rng));
  model->Add(std::make_unique<Relu>());
  model->Add(std::make_unique<MaxPool2d>(2, 2));
  model->Add(std::make_unique<Flatten>());
  model->Add(std::make_unique<Dense>(kC2 * (height / 4) * (width / 4),
                                     kHidden, rng));
  model->Add(std::make_unique<Relu>());
  model->Add(std::make_unique<Dense>(kHidden, num_classes, rng));
  return model;
}

std::unique_ptr<Sequential> MakeTimeSeriesModel(const std::string& name,
                                                int in_channels,
                                                int num_classes, Rng* rng) {
  if (name == "InceptionTime") {
    return MakeInceptionTime(in_channels, num_classes, rng);
  }
  if (name == "OmniScaleCNN") {
    return MakeOmniScaleCnn(in_channels, num_classes, rng);
  }
  QCORE_CHECK_MSG(false, "unknown time-series model");
  return nullptr;
}

std::unique_ptr<Sequential> MakeImageModel(const std::string& name,
                                           int in_channels, int height,
                                           int width, int num_classes,
                                           Rng* rng) {
  if (name == "ResNet18") {
    return MakeResNetTiny(in_channels, num_classes, rng);
  }
  if (name == "VGG16") {
    return MakeVggTiny(in_channels, height, width, num_classes, rng);
  }
  QCORE_CHECK_MSG(false, "unknown image model");
  return nullptr;
}

}  // namespace qcore
