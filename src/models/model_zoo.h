// Scaled-down but architecturally faithful versions of the classifier
// families the paper evaluates (Sec. 4.1.4): InceptionTime and OmniScaleCNN
// for time series, ResNet18-style and VGG16-style nets for images. Sizes are
// chosen so full training runs in seconds on a CPU while keeping each
// family's defining structure (inception multi-kernel branches, omni-scale
// prime kernel sets, residual stages, VGG conv-conv-pool stacks).
#ifndef QCORE_MODELS_MODEL_ZOO_H_
#define QCORE_MODELS_MODEL_ZOO_H_

#include <memory>
#include <string>

#include "nn/composite.h"

namespace qcore {

// InceptionTime (Ismail Fawaz et al. 2020), tiny: two inception blocks
// (bottleneck + parallel kernels 9/5/3 + 1x1 branch, BN) wrapped in a
// residual, GAP head. Input [N, in_channels, L].
std::unique_ptr<Sequential> MakeInceptionTime(int in_channels,
                                              int num_classes, Rng* rng);

// OmniScaleCNN (Tang et al. 2022), tiny: stacked blocks of parallel convs
// with prime kernel sizes {1, 3, 5, 7}, BN + ReLU, GAP head.
std::unique_ptr<Sequential> MakeOmniScaleCnn(int in_channels, int num_classes,
                                             Rng* rng);

// ResNet-style tiny: stem conv + identity residual stage + downsampling
// residual stage + GAP head. Input [N, in_channels, H, W] with H, W >= 8.
std::unique_ptr<Sequential> MakeResNetTiny(int in_channels, int num_classes,
                                           Rng* rng);

// VGG-style tiny: two conv-conv-pool stacks and a two-layer dense head (no
// BatchNorm, like the original VGG16). H and W must be multiples of 4.
std::unique_ptr<Sequential> MakeVggTiny(int in_channels, int height,
                                        int width, int num_classes, Rng* rng);

// Registry lookups used by the bench harness. Aborts on unknown names.
// Time-series names: "InceptionTime", "OmniScaleCNN".
std::unique_ptr<Sequential> MakeTimeSeriesModel(const std::string& name,
                                                int in_channels,
                                                int num_classes, Rng* rng);
// Image names: "ResNet18" (tiny), "VGG16" (tiny).
std::unique_ptr<Sequential> MakeImageModel(const std::string& name,
                                           int in_channels, int height,
                                           int width, int num_classes,
                                           Rng* rng);

}  // namespace qcore

#endif  // QCORE_MODELS_MODEL_ZOO_H_
