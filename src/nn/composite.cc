#include "nn/composite.h"

#include "tensor/tensor_ops.h"

namespace qcore {

// ---------------------------------------------------------------------------
// Sequential
// ---------------------------------------------------------------------------

Sequential& Sequential::Add(std::unique_ptr<Layer> layer) {
  QCORE_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::Forward(const Tensor& x, bool training) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->Forward(h, training);
  return h;
}

Tensor Sequential::Backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::Params() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Sequential::Buffers() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* b : layer->Buffers()) out.push_back(b);
  }
  return out;
}

std::unique_ptr<Layer> Sequential::Clone() const {
  auto copy = std::make_unique<Sequential>();
  for (const auto& layer : layers_) copy->Add(layer->Clone());
  return copy;
}

std::string Sequential::name() const {
  return "sequential[" + std::to_string(layers_.size()) + "]";
}

// ---------------------------------------------------------------------------
// Residual
// ---------------------------------------------------------------------------

Residual::Residual(std::unique_ptr<Layer> body,
                   std::unique_ptr<Layer> shortcut)
    : body_(std::move(body)), shortcut_(std::move(shortcut)) {
  QCORE_CHECK(body_ != nullptr);
}

Tensor Residual::Forward(const Tensor& x, bool training) {
  Tensor main = body_->Forward(x, training);
  Tensor skip = shortcut_ ? shortcut_->Forward(x, training) : x;
  QCORE_CHECK_MSG(main.SameShape(skip),
                  "residual body/shortcut shape mismatch");
  AddInPlace(&main, skip);
  return main;
}

Tensor Residual::Backward(const Tensor& grad_out) {
  Tensor grad_in = body_->Backward(grad_out);
  if (shortcut_) {
    AddInPlace(&grad_in, shortcut_->Backward(grad_out));
  } else {
    AddInPlace(&grad_in, grad_out);
  }
  return grad_in;
}

std::vector<Parameter*> Residual::Params() {
  std::vector<Parameter*> out = body_->Params();
  if (shortcut_) {
    for (Parameter* p : shortcut_->Params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Residual::Buffers() {
  std::vector<Tensor*> out = body_->Buffers();
  if (shortcut_) {
    for (Tensor* b : shortcut_->Buffers()) out.push_back(b);
  }
  return out;
}

std::unique_ptr<Layer> Residual::Clone() const {
  return std::make_unique<Residual>(body_->Clone(),
                                    shortcut_ ? shortcut_->Clone() : nullptr);
}

// ---------------------------------------------------------------------------
// ParallelConcat
// ---------------------------------------------------------------------------

ParallelConcat::ParallelConcat(std::vector<std::unique_ptr<Layer>> branches)
    : branches_(std::move(branches)) {
  QCORE_CHECK(!branches_.empty());
  for (const auto& b : branches_) QCORE_CHECK(b != nullptr);
}

Tensor ParallelConcat::Forward(const Tensor& x, bool training) {
  std::vector<Tensor> outs;
  outs.reserve(branches_.size());
  branch_channels_.clear();
  int64_t total_channels = 0;
  for (auto& branch : branches_) {
    outs.push_back(branch->Forward(x, training));
    QCORE_CHECK_GE(outs.back().ndim(), 3);
    branch_channels_.push_back(outs.back().dim(1));
    total_channels += outs.back().dim(1);
  }
  // Validate non-channel axes agree.
  for (size_t b = 1; b < outs.size(); ++b) {
    QCORE_CHECK_EQ(outs[b].ndim(), outs[0].ndim());
    QCORE_CHECK_EQ(outs[b].dim(0), outs[0].dim(0));
    for (int d = 2; d < outs[0].ndim(); ++d) {
      QCORE_CHECK_EQ(outs[b].dim(d), outs[0].dim(d));
    }
  }

  std::vector<int64_t> out_shape = outs[0].shape();
  out_shape[1] = total_channels;
  Tensor out(out_shape);
  const int64_t n = out_shape[0];
  int64_t spatial = 1;
  for (size_t d = 2; d < out_shape.size(); ++d) spatial *= out_shape[d];

  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    int64_t ch_off = 0;
    for (size_t b = 0; b < outs.size(); ++b) {
      const int64_t bc = branch_channels_[b];
      const float* src = outs[b].data() + i * bc * spatial;
      float* dst = po + (i * total_channels + ch_off) * spatial;
      std::copy(src, src + bc * spatial, dst);
      ch_off += bc;
    }
  }
  return out;
}

Tensor ParallelConcat::Backward(const Tensor& grad_out) {
  QCORE_CHECK_MSG(!branch_channels_.empty(), "Backward before Forward");
  const int64_t n = grad_out.dim(0);
  const int64_t total_channels = grad_out.dim(1);
  int64_t spatial = 1;
  for (int d = 2; d < grad_out.ndim(); ++d) spatial *= grad_out.dim(d);

  Tensor grad_in;
  int64_t ch_off = 0;
  for (size_t b = 0; b < branches_.size(); ++b) {
    const int64_t bc = branch_channels_[b];
    std::vector<int64_t> gshape = grad_out.shape();
    gshape[1] = bc;
    Tensor branch_grad(gshape);
    float* dst = branch_grad.data();
    const float* src = grad_out.data();
    for (int64_t i = 0; i < n; ++i) {
      const float* s = src + (i * total_channels + ch_off) * spatial;
      std::copy(s, s + bc * spatial, dst + i * bc * spatial);
    }
    Tensor g = branches_[b]->Backward(branch_grad);
    if (b == 0) {
      grad_in = std::move(g);
    } else {
      AddInPlace(&grad_in, g);
    }
    ch_off += bc;
  }
  QCORE_CHECK_EQ(ch_off, total_channels);
  return grad_in;
}

std::vector<Parameter*> ParallelConcat::Params() {
  std::vector<Parameter*> out;
  for (auto& b : branches_) {
    for (Parameter* p : b->Params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> ParallelConcat::Buffers() {
  std::vector<Tensor*> out;
  for (auto& b : branches_) {
    for (Tensor* t : b->Buffers()) out.push_back(t);
  }
  return out;
}

std::unique_ptr<Layer> ParallelConcat::Clone() const {
  std::vector<std::unique_ptr<Layer>> copies;
  copies.reserve(branches_.size());
  for (const auto& b : branches_) copies.push_back(b->Clone());
  return std::make_unique<ParallelConcat>(std::move(copies));
}

std::string ParallelConcat::name() const {
  return "parallel_concat[" + std::to_string(branches_.size()) + "]";
}

}  // namespace qcore
