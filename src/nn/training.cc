#include "nn/training.h"

#include <algorithm>

#include "nn/loss.h"
#include "tensor/tensor_ops.h"

namespace qcore {

float TrainStep(Layer* model, const Tensor& batch_x,
                const std::vector<int>& batch_y, Sgd* sgd) {
  QCORE_CHECK(model != nullptr && sgd != nullptr);
  SoftmaxCrossEntropy loss;
  Tensor logits = model->Forward(batch_x, /*training=*/true);
  const float l = loss.Forward(logits, batch_y);
  model->Backward(loss.Backward());
  sgd->Step(model->Params());
  return l;
}

float TrainClassifier(Layer* model, const Tensor& x,
                      const std::vector<int>& labels,
                      const TrainOptions& options, Rng* rng) {
  QCORE_CHECK(model != nullptr && rng != nullptr);
  QCORE_CHECK_EQ(x.dim(0), static_cast<int64_t>(labels.size()));
  QCORE_CHECK_GT(options.epochs, 0);
  QCORE_CHECK_GT(options.batch_size, 0);

  const int n = static_cast<int>(x.dim(0));
  Sgd sgd(options.sgd);
  std::vector<int> order(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;

  float last_epoch_loss = 0.0f;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng->Shuffle(&order);
    double epoch_loss = 0.0;
    int batches = 0;
    for (int start = 0; start < n; start += options.batch_size) {
      const int end = std::min(n, start + options.batch_size);
      std::vector<int> idx(order.begin() + start, order.begin() + end);
      Tensor bx = x.GatherRows(idx);
      std::vector<int> by(idx.size());
      for (size_t i = 0; i < idx.size(); ++i) {
        by[i] = labels[static_cast<size_t>(idx[i])];
      }
      epoch_loss += TrainStep(model, bx, by, &sgd);
      ++batches;
    }
    last_epoch_loss = static_cast<float>(epoch_loss / std::max(batches, 1));
    if (options.on_epoch) options.on_epoch(epoch, last_epoch_loss);
  }
  return last_epoch_loss;
}

std::vector<int> Predict(Layer* model, const Tensor& x, int batch_size) {
  QCORE_CHECK(model != nullptr);
  QCORE_CHECK_GT(batch_size, 0);
  const int64_t n = x.dim(0);
  std::vector<int> preds;
  preds.reserve(static_cast<size_t>(n));
  for (int64_t start = 0; start < n; start += batch_size) {
    const int64_t end = std::min<int64_t>(n, start + batch_size);
    Tensor logits =
        model->Forward(x.SliceRows(start, end), /*training=*/false);
    std::vector<int> batch_preds = ArgMaxRows(logits);
    preds.insert(preds.end(), batch_preds.begin(), batch_preds.end());
  }
  return preds;
}

float EvaluateAccuracy(Layer* model, const Tensor& x,
                       const std::vector<int>& labels, int batch_size) {
  QCORE_CHECK_EQ(x.dim(0), static_cast<int64_t>(labels.size()));
  if (labels.empty()) return 0.0f;
  const std::vector<int> preds = Predict(model, x, batch_size);
  int correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(labels.size());
}

}  // namespace qcore
