#include "nn/conv.h"

#include <algorithm>
#include <cmath>

#include "common/aligned.h"
#include "tensor/kernels.h"

namespace qcore {

// Both conv layers lower onto the blocked GEMM substrate via im2col: each
// sample's input plane is unfolded into a column matrix once, and the
// forward pass / all three backward products become packed GEMM calls
// instead of scalar loops with per-element bounds checks. Samples are
// processed independently in batch order, so per-sample results are
// bit-identical regardless of how rows were batched (the serving batcher's
// bit-identity property), and gradient accumulation order is fixed.

// ---------------------------------------------------------------------------
// Conv1d
// ---------------------------------------------------------------------------

Conv1d::Conv1d(int64_t in_channels, int64_t out_channels, int kernel,
               int stride, int pad, Rng* rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad) {
  QCORE_CHECK_GT(in_channels, 0);
  QCORE_CHECK_GT(out_channels, 0);
  QCORE_CHECK_GT(kernel, 0);
  QCORE_CHECK_GT(stride, 0);
  QCORE_CHECK_GE(pad, 0);
  QCORE_CHECK(rng != nullptr);
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(in_channels * kernel));
  weight_ = Parameter(
      "conv1d.weight",
      Tensor::Randn({out_channels, in_channels, kernel}, rng, stddev));
  bias_ = Parameter("conv1d.bias", Tensor::Zeros({out_channels}));
}

Tensor Conv1d::Forward(const Tensor& x, bool training) {
  QCORE_CHECK_EQ(x.ndim(), 3);
  QCORE_CHECK_EQ(x.dim(1), in_channels_);
  const int64_t n = x.dim(0), c = in_channels_, l = x.dim(2);
  const int64_t lo = (l + 2 * pad_ - kernel_) / stride_ + 1;
  QCORE_CHECK_MSG(lo > 0, "conv1d output length would be non-positive");
  if (training) cached_input_ = x;
  Tensor out({n, out_channels_, lo});
  const float* px = x.data();
  const float* pw = weight_.value.data();
  const float* pb = bias_.value.data();
  float* po = out.data();
  const int64_t ck = c * kernel_;
  const size_t pack_size = static_cast<size_t>(ck * lo);
  if (col_scratch_.size() < pack_size) col_scratch_.resize(pack_size);
  AlignedFloatVec& col = col_scratch_;
  for (int64_t i = 0; i < n; ++i) {
    float* oplane = po + i * out_channels_ * lo;
    for (int64_t f = 0; f < out_channels_; ++f) {
      for (int64_t o = 0; o < lo; ++o) oplane[f * lo + o] = pb[f];
    }
    kernels::Im2Col1d(px + i * c * l, c, l, kernel_, stride_, pad_, lo,
                      col.data());
    // out_i[F, lo] (+)= W[F, C*K] * col[C*K, lo], on top of the bias fill.
    kernels::Gemm(out_channels_, lo, ck, pw, ck, /*trans_a=*/false,
                  col.data(), lo, /*trans_b=*/false, oplane, lo);
  }
  return out;
}

Tensor Conv1d::Backward(const Tensor& grad_out) {
  QCORE_CHECK_MSG(cached_input_.size() > 0, "Backward before Forward");
  const Tensor& x = cached_input_;
  const int64_t n = x.dim(0), c = in_channels_, l = x.dim(2);
  const int64_t lo = grad_out.dim(2);
  QCORE_CHECK_EQ(grad_out.dim(0), n);
  QCORE_CHECK_EQ(grad_out.dim(1), out_channels_);

  Tensor grad_in(x.shape());
  const float* px = x.data();
  const float* pw = weight_.value.data();
  const float* pg = grad_out.data();
  float* pgi = grad_in.data();
  float* pdw = weight_.grad.data();
  float* pdb = bias_.grad.data();

  const int64_t ck = c * kernel_;
  const size_t pack_size = static_cast<size_t>(ck * lo);
  if (col_scratch_.size() < pack_size) col_scratch_.resize(pack_size);
  if (dcol_scratch_.size() < pack_size) dcol_scratch_.resize(pack_size);
  AlignedFloatVec& col = col_scratch_;
  AlignedFloatVec& dcol = dcol_scratch_;
  for (int64_t i = 0; i < n; ++i) {
    const float* gplane = pg + i * out_channels_ * lo;
    // Bias gradient: plain row sums, double accumulator (reduction policy).
    for (int64_t f = 0; f < out_channels_; ++f) {
      double db = 0.0;
      for (int64_t o = 0; o < lo; ++o) db += gplane[f * lo + o];
      pdb[f] += static_cast<float>(db);
    }
    kernels::Im2Col1d(px + i * c * l, c, l, kernel_, stride_, pad_, lo,
                      col.data());
    // dW[F, C*K] += dY_i[F, lo] * col[C*K, lo]^T, on top of running grads.
    kernels::Gemm(out_channels_, ck, lo, gplane, lo, /*trans_a=*/false,
                  col.data(), lo, /*trans_b=*/true, pdw, ck);
    // dcol[C*K, lo] = W[F, C*K]^T * dY_i[F, lo], then fold back into dX_i.
    std::fill(dcol.begin(), dcol.begin() + static_cast<int64_t>(pack_size),
              0.0f);
    kernels::Gemm(ck, lo, out_channels_, pw, ck, /*trans_a=*/true, gplane,
                  lo, /*trans_b=*/false, dcol.data(), lo);
    kernels::Col2Im1d(dcol.data(), c, l, kernel_, stride_, pad_, lo,
                      pgi + i * c * l);
  }
  return grad_in;
}

std::unique_ptr<Layer> Conv1d::Clone() const {
  auto copy = std::unique_ptr<Conv1d>(
      new Conv1d(in_channels_, out_channels_, kernel_, stride_, pad_));
  copy->weight_ = Parameter(weight_.name, weight_.value);
  copy->bias_ = Parameter(bias_.name, bias_.value);
  return copy;
}

std::string Conv1d::name() const {
  return "conv1d(" + std::to_string(in_channels_) + "->" +
         std::to_string(out_channels_) + ",k=" + std::to_string(kernel_) + ")";
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int kernel,
               int stride, int pad, Rng* rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad) {
  QCORE_CHECK_GT(in_channels, 0);
  QCORE_CHECK_GT(out_channels, 0);
  QCORE_CHECK_GT(kernel, 0);
  QCORE_CHECK_GT(stride, 0);
  QCORE_CHECK_GE(pad, 0);
  QCORE_CHECK(rng != nullptr);
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(in_channels * kernel * kernel));
  weight_ = Parameter(
      "conv2d.weight",
      Tensor::Randn({out_channels, in_channels, kernel, kernel}, rng, stddev));
  bias_ = Parameter("conv2d.bias", Tensor::Zeros({out_channels}));
}

Tensor Conv2d::Forward(const Tensor& x, bool training) {
  QCORE_CHECK_EQ(x.ndim(), 4);
  QCORE_CHECK_EQ(x.dim(1), in_channels_);
  const int64_t n = x.dim(0), c = in_channels_, h = x.dim(2), w = x.dim(3);
  const int64_t ho = (h + 2 * pad_ - kernel_) / stride_ + 1;
  const int64_t wo = (w + 2 * pad_ - kernel_) / stride_ + 1;
  QCORE_CHECK_MSG(ho > 0 && wo > 0, "conv2d output would be non-positive");
  if (training) cached_input_ = x;
  Tensor out({n, out_channels_, ho, wo});
  const float* px = x.data();
  const float* pw = weight_.value.data();
  const float* pb = bias_.value.data();
  float* po = out.data();
  const int64_t ckk = c * kernel_ * kernel_;
  const int64_t howo = ho * wo;
  const size_t pack_size = static_cast<size_t>(ckk * howo);
  if (col_scratch_.size() < pack_size) col_scratch_.resize(pack_size);
  AlignedFloatVec& col = col_scratch_;
  for (int64_t i = 0; i < n; ++i) {
    float* oplane = po + i * out_channels_ * howo;
    for (int64_t f = 0; f < out_channels_; ++f) {
      for (int64_t o = 0; o < howo; ++o) oplane[f * howo + o] = pb[f];
    }
    kernels::Im2Col2d(px + i * c * h * w, c, h, w, kernel_, stride_, pad_, ho,
                      wo, col.data());
    // out_i[F, Ho*Wo] (+)= W[F, C*K*K] * col[C*K*K, Ho*Wo].
    kernels::Gemm(out_channels_, howo, ckk, pw, ckk, /*trans_a=*/false,
                  col.data(), howo, /*trans_b=*/false, oplane, howo);
  }
  return out;
}

Tensor Conv2d::Backward(const Tensor& grad_out) {
  QCORE_CHECK_MSG(cached_input_.size() > 0, "Backward before Forward");
  const Tensor& x = cached_input_;
  const int64_t n = x.dim(0), c = in_channels_, h = x.dim(2), w = x.dim(3);
  const int64_t ho = grad_out.dim(2), wo = grad_out.dim(3);
  QCORE_CHECK_EQ(grad_out.dim(0), n);
  QCORE_CHECK_EQ(grad_out.dim(1), out_channels_);

  Tensor grad_in(x.shape());
  const float* px = x.data();
  const float* pw = weight_.value.data();
  const float* pg = grad_out.data();
  float* pgi = grad_in.data();
  float* pdw = weight_.grad.data();
  float* pdb = bias_.grad.data();

  const int64_t ckk = c * kernel_ * kernel_;
  const int64_t howo = ho * wo;
  const size_t pack_size = static_cast<size_t>(ckk * howo);
  if (col_scratch_.size() < pack_size) col_scratch_.resize(pack_size);
  if (dcol_scratch_.size() < pack_size) dcol_scratch_.resize(pack_size);
  AlignedFloatVec& col = col_scratch_;
  AlignedFloatVec& dcol = dcol_scratch_;
  for (int64_t i = 0; i < n; ++i) {
    const float* gplane = pg + i * out_channels_ * howo;
    for (int64_t f = 0; f < out_channels_; ++f) {
      double db = 0.0;
      for (int64_t o = 0; o < howo; ++o) db += gplane[f * howo + o];
      pdb[f] += static_cast<float>(db);
    }
    kernels::Im2Col2d(px + i * c * h * w, c, h, w, kernel_, stride_, pad_, ho,
                      wo, col.data());
    // dW[F, C*K*K] += dY_i[F, Ho*Wo] * col[C*K*K, Ho*Wo]^T.
    kernels::Gemm(out_channels_, ckk, howo, gplane, howo, /*trans_a=*/false,
                  col.data(), howo, /*trans_b=*/true, pdw, ckk);
    // dcol = W^T * dY_i, folded back into dX_i by col2im.
    std::fill(dcol.begin(), dcol.begin() + static_cast<int64_t>(pack_size),
              0.0f);
    kernels::Gemm(ckk, howo, out_channels_, pw, ckk, /*trans_a=*/true,
                  gplane, howo, /*trans_b=*/false, dcol.data(), howo);
    kernels::Col2Im2d(dcol.data(), c, h, w, kernel_, stride_, pad_, ho, wo,
                      pgi + i * c * h * w);
  }
  return grad_in;
}

std::unique_ptr<Layer> Conv2d::Clone() const {
  auto copy = std::unique_ptr<Conv2d>(
      new Conv2d(in_channels_, out_channels_, kernel_, stride_, pad_));
  copy->weight_ = Parameter(weight_.name, weight_.value);
  copy->bias_ = Parameter(bias_.name, bias_.value);
  return copy;
}

std::string Conv2d::name() const {
  return "conv2d(" + std::to_string(in_channels_) + "->" +
         std::to_string(out_channels_) + ",k=" + std::to_string(kernel_) + ")";
}

}  // namespace qcore
