#include "nn/conv.h"

#include <cmath>

namespace qcore {

// ---------------------------------------------------------------------------
// Conv1d
// ---------------------------------------------------------------------------

Conv1d::Conv1d(int64_t in_channels, int64_t out_channels, int kernel,
               int stride, int pad, Rng* rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad) {
  QCORE_CHECK_GT(in_channels, 0);
  QCORE_CHECK_GT(out_channels, 0);
  QCORE_CHECK_GT(kernel, 0);
  QCORE_CHECK_GT(stride, 0);
  QCORE_CHECK_GE(pad, 0);
  QCORE_CHECK(rng != nullptr);
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(in_channels * kernel));
  weight_ = Parameter(
      "conv1d.weight",
      Tensor::Randn({out_channels, in_channels, kernel}, rng, stddev));
  bias_ = Parameter("conv1d.bias", Tensor::Zeros({out_channels}));
}

Tensor Conv1d::Forward(const Tensor& x, bool training) {
  QCORE_CHECK_EQ(x.ndim(), 3);
  QCORE_CHECK_EQ(x.dim(1), in_channels_);
  const int64_t n = x.dim(0), c = in_channels_, l = x.dim(2);
  const int64_t lo = (l + 2 * pad_ - kernel_) / stride_ + 1;
  QCORE_CHECK_MSG(lo > 0, "conv1d output length would be non-positive");
  if (training) cached_input_ = x;
  Tensor out({n, out_channels_, lo});
  const float* px = x.data();
  const float* pw = weight_.value.data();
  const float* pb = bias_.value.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t f = 0; f < out_channels_; ++f) {
      float* orow = po + (i * out_channels_ + f) * lo;
      for (int64_t o = 0; o < lo; ++o) orow[o] = pb[f];
      for (int64_t ch = 0; ch < c; ++ch) {
        const float* xrow = px + (i * c + ch) * l;
        const float* wrow = pw + (f * c + ch) * kernel_;
        for (int k = 0; k < kernel_; ++k) {
          const float wv = wrow[k];
          if (wv == 0.0f) continue;
          for (int64_t o = 0; o < lo; ++o) {
            const int64_t t = o * stride_ + k - pad_;
            if (t >= 0 && t < l) orow[o] += wv * xrow[t];
          }
        }
      }
    }
  }
  return out;
}

Tensor Conv1d::Backward(const Tensor& grad_out) {
  QCORE_CHECK_MSG(cached_input_.size() > 0, "Backward before Forward");
  const Tensor& x = cached_input_;
  const int64_t n = x.dim(0), c = in_channels_, l = x.dim(2);
  const int64_t lo = grad_out.dim(2);
  QCORE_CHECK_EQ(grad_out.dim(0), n);
  QCORE_CHECK_EQ(grad_out.dim(1), out_channels_);

  Tensor grad_in(x.shape());
  const float* px = x.data();
  const float* pw = weight_.value.data();
  const float* pg = grad_out.data();
  float* pgi = grad_in.data();
  float* pdw = weight_.grad.data();
  float* pdb = bias_.grad.data();

  for (int64_t i = 0; i < n; ++i) {
    for (int64_t f = 0; f < out_channels_; ++f) {
      const float* grow = pg + (i * out_channels_ + f) * lo;
      double db = 0.0;
      for (int64_t o = 0; o < lo; ++o) db += grow[o];
      pdb[f] += static_cast<float>(db);
      for (int64_t ch = 0; ch < c; ++ch) {
        const float* xrow = px + (i * c + ch) * l;
        const float* wrow = pw + (f * c + ch) * kernel_;
        float* girow = pgi + (i * c + ch) * l;
        float* dwrow = pdw + (f * c + ch) * kernel_;
        for (int k = 0; k < kernel_; ++k) {
          double dw = 0.0;
          const float wv = wrow[k];
          for (int64_t o = 0; o < lo; ++o) {
            const int64_t t = o * stride_ + k - pad_;
            if (t < 0 || t >= l) continue;
            dw += grow[o] * xrow[t];
            girow[t] += wv * grow[o];
          }
          dwrow[k] += static_cast<float>(dw);
        }
      }
    }
  }
  return grad_in;
}

std::unique_ptr<Layer> Conv1d::Clone() const {
  auto copy = std::unique_ptr<Conv1d>(
      new Conv1d(in_channels_, out_channels_, kernel_, stride_, pad_));
  copy->weight_ = Parameter(weight_.name, weight_.value);
  copy->bias_ = Parameter(bias_.name, bias_.value);
  return copy;
}

std::string Conv1d::name() const {
  return "conv1d(" + std::to_string(in_channels_) + "->" +
         std::to_string(out_channels_) + ",k=" + std::to_string(kernel_) + ")";
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int kernel,
               int stride, int pad, Rng* rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad) {
  QCORE_CHECK_GT(in_channels, 0);
  QCORE_CHECK_GT(out_channels, 0);
  QCORE_CHECK_GT(kernel, 0);
  QCORE_CHECK_GT(stride, 0);
  QCORE_CHECK_GE(pad, 0);
  QCORE_CHECK(rng != nullptr);
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(in_channels * kernel * kernel));
  weight_ = Parameter(
      "conv2d.weight",
      Tensor::Randn({out_channels, in_channels, kernel, kernel}, rng, stddev));
  bias_ = Parameter("conv2d.bias", Tensor::Zeros({out_channels}));
}

Tensor Conv2d::Forward(const Tensor& x, bool training) {
  QCORE_CHECK_EQ(x.ndim(), 4);
  QCORE_CHECK_EQ(x.dim(1), in_channels_);
  const int64_t n = x.dim(0), c = in_channels_, h = x.dim(2), w = x.dim(3);
  const int64_t ho = (h + 2 * pad_ - kernel_) / stride_ + 1;
  const int64_t wo = (w + 2 * pad_ - kernel_) / stride_ + 1;
  QCORE_CHECK_MSG(ho > 0 && wo > 0, "conv2d output would be non-positive");
  if (training) cached_input_ = x;
  Tensor out({n, out_channels_, ho, wo});
  const float* px = x.data();
  const float* pw = weight_.value.data();
  const float* pb = bias_.value.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t f = 0; f < out_channels_; ++f) {
      float* oplane = po + (i * out_channels_ + f) * ho * wo;
      for (int64_t o = 0; o < ho * wo; ++o) oplane[o] = pb[f];
      for (int64_t ch = 0; ch < c; ++ch) {
        const float* xplane = px + (i * c + ch) * h * w;
        const float* wplane = pw + (f * c + ch) * kernel_ * kernel_;
        for (int ky = 0; ky < kernel_; ++ky) {
          for (int kx = 0; kx < kernel_; ++kx) {
            const float wv = wplane[ky * kernel_ + kx];
            if (wv == 0.0f) continue;
            for (int64_t oy = 0; oy < ho; ++oy) {
              const int64_t sy = oy * stride_ + ky - pad_;
              if (sy < 0 || sy >= h) continue;
              float* orow = oplane + oy * wo;
              const float* xrow = xplane + sy * w;
              for (int64_t ox = 0; ox < wo; ++ox) {
                const int64_t sx = ox * stride_ + kx - pad_;
                if (sx >= 0 && sx < w) orow[ox] += wv * xrow[sx];
              }
            }
          }
        }
      }
    }
  }
  return out;
}

Tensor Conv2d::Backward(const Tensor& grad_out) {
  QCORE_CHECK_MSG(cached_input_.size() > 0, "Backward before Forward");
  const Tensor& x = cached_input_;
  const int64_t n = x.dim(0), c = in_channels_, h = x.dim(2), w = x.dim(3);
  const int64_t ho = grad_out.dim(2), wo = grad_out.dim(3);
  QCORE_CHECK_EQ(grad_out.dim(0), n);
  QCORE_CHECK_EQ(grad_out.dim(1), out_channels_);

  Tensor grad_in(x.shape());
  const float* px = x.data();
  const float* pw = weight_.value.data();
  const float* pg = grad_out.data();
  float* pgi = grad_in.data();
  float* pdw = weight_.grad.data();
  float* pdb = bias_.grad.data();

  for (int64_t i = 0; i < n; ++i) {
    for (int64_t f = 0; f < out_channels_; ++f) {
      const float* gplane = pg + (i * out_channels_ + f) * ho * wo;
      double db = 0.0;
      for (int64_t o = 0; o < ho * wo; ++o) db += gplane[o];
      pdb[f] += static_cast<float>(db);
      for (int64_t ch = 0; ch < c; ++ch) {
        const float* xplane = px + (i * c + ch) * h * w;
        const float* wplane = pw + (f * c + ch) * kernel_ * kernel_;
        float* giplane = pgi + (i * c + ch) * h * w;
        float* dwplane = pdw + (f * c + ch) * kernel_ * kernel_;
        for (int ky = 0; ky < kernel_; ++ky) {
          for (int kx = 0; kx < kernel_; ++kx) {
            const float wv = wplane[ky * kernel_ + kx];
            double dw = 0.0;
            for (int64_t oy = 0; oy < ho; ++oy) {
              const int64_t sy = oy * stride_ + ky - pad_;
              if (sy < 0 || sy >= h) continue;
              const float* grow = gplane + oy * wo;
              const float* xrow = xplane + sy * w;
              float* girow = giplane + sy * w;
              for (int64_t ox = 0; ox < wo; ++ox) {
                const int64_t sx = ox * stride_ + kx - pad_;
                if (sx < 0 || sx >= w) continue;
                dw += grow[ox] * xrow[sx];
                girow[sx] += wv * grow[ox];
              }
            }
            dwplane[ky * kernel_ + kx] += static_cast<float>(dw);
          }
        }
      }
    }
  }
  return grad_in;
}

std::unique_ptr<Layer> Conv2d::Clone() const {
  auto copy = std::unique_ptr<Conv2d>(
      new Conv2d(in_channels_, out_channels_, kernel_, stride_, pad_));
  copy->weight_ = Parameter(weight_.name, weight_.value);
  copy->bias_ = Parameter(bias_.name, bias_.value);
  return copy;
}

std::string Conv2d::name() const {
  return "conv2d(" + std::to_string(in_channels_) + "->" +
         std::to_string(out_channels_) + ",k=" + std::to_string(kernel_) + ")";
}

}  // namespace qcore
