#include "nn/layers.h"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.h"
#include "tensor/tensor_ops.h"

namespace qcore {

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

Dense::Dense(int64_t in_features, int64_t out_features, Rng* rng)
    : in_features_(in_features), out_features_(out_features) {
  QCORE_CHECK_GT(in_features, 0);
  QCORE_CHECK_GT(out_features, 0);
  QCORE_CHECK(rng != nullptr);
  // He initialization, appropriate for ReLU networks.
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
  weight_ = Parameter("dense.weight",
                      Tensor::Randn({out_features, in_features}, rng, stddev));
  bias_ = Parameter("dense.bias", Tensor::Zeros({out_features}));
}

Tensor Dense::Forward(const Tensor& x, bool training) {
  QCORE_CHECK_EQ(x.ndim(), 2);
  QCORE_CHECK_EQ(x.dim(1), in_features_);
  if (training) cached_input_ = x;
  const int64_t n = x.dim(0);
  // Broadcast the bias into the output and let the packed GEMM accumulate
  // x * W^T on top — one pass, no separate bias-add sweep.
  Tensor out({n, out_features_});
  float* po = out.data();
  const float* pb = bias_.value.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < out_features_; ++j) {
      po[i * out_features_ + j] = pb[j];
    }
  }
  kernels::Gemm(n, out_features_, in_features_, x.data(), in_features_,
                /*trans_a=*/false, weight_.value.data(), in_features_,
                /*trans_b=*/true, po, out_features_);
  return out;
}

Tensor Dense::Backward(const Tensor& grad_out) {
  QCORE_CHECK_EQ(grad_out.ndim(), 2);
  QCORE_CHECK_EQ(grad_out.dim(1), out_features_);
  QCORE_CHECK_MSG(cached_input_.size() > 0, "Backward before Forward");
  // dW[o,i] = sum_n grad_out[n,o] * x[n,i] => grad_out^T * x, accumulated
  // straight into the running gradient (it is the GEMM's preloaded C).
  kernels::Gemm(out_features_, in_features_, grad_out.dim(0),
                grad_out.data(), out_features_, /*trans_a=*/true,
                cached_input_.data(), in_features_, /*trans_b=*/false,
                weight_.grad.data(), in_features_);
  // db[o] = sum_n grad_out[n,o]
  const float* pg = grad_out.data();
  float* pdb = bias_.grad.data();
  const int64_t n = grad_out.dim(0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < out_features_; ++j) pdb[j] += pg[i * out_features_ + j];
  }
  // dX = grad_out * W
  return MatMul(grad_out, weight_.value);
}

std::unique_ptr<Layer> Dense::Clone() const {
  auto copy =
      std::unique_ptr<Dense>(new Dense(in_features_, out_features_));
  copy->weight_ = Parameter(weight_.name, weight_.value);
  copy->bias_ = Parameter(bias_.name, bias_.value);
  return copy;
}

std::string Dense::name() const {
  return "dense(" + std::to_string(in_features_) + "->" +
         std::to_string(out_features_) + ")";
}

// ---------------------------------------------------------------------------
// Relu
// ---------------------------------------------------------------------------

Tensor Relu::Forward(const Tensor& x, bool training) {
  if (training) cached_input_ = x;
  Tensor out = x;
  float* p = out.data();
  const int64_t n = out.size();
  for (int64_t i = 0; i < n; ++i) p[i] = p[i] > 0.0f ? p[i] : 0.0f;
  return out;
}

Tensor Relu::Backward(const Tensor& grad_out) {
  QCORE_CHECK(grad_out.SameShape(cached_input_));
  Tensor grad_in = grad_out;
  float* pg = grad_in.data();
  const float* px = cached_input_.data();
  const int64_t n = grad_in.size();
  for (int64_t i = 0; i < n; ++i) {
    if (px[i] <= 0.0f) pg[i] = 0.0f;
  }
  return grad_in;
}

std::unique_ptr<Layer> Relu::Clone() const { return std::make_unique<Relu>(); }

// ---------------------------------------------------------------------------
// Flatten
// ---------------------------------------------------------------------------

Tensor Flatten::Forward(const Tensor& x, bool training) {
  QCORE_CHECK_GE(x.ndim(), 2);
  if (training) cached_shape_ = x.shape();
  return x.Reshape({x.dim(0), x.size() / x.dim(0)});
}

Tensor Flatten::Backward(const Tensor& grad_out) {
  QCORE_CHECK(!cached_shape_.empty());
  return grad_out.Reshape(cached_shape_);
}

std::unique_ptr<Layer> Flatten::Clone() const {
  return std::make_unique<Flatten>();
}

// ---------------------------------------------------------------------------
// MaxPool1d
// ---------------------------------------------------------------------------

MaxPool1d::MaxPool1d(int kernel, int stride) : kernel_(kernel), stride_(stride) {
  QCORE_CHECK_GT(kernel, 0);
  QCORE_CHECK_GT(stride, 0);
}

Tensor MaxPool1d::Forward(const Tensor& x, bool training) {
  QCORE_CHECK_EQ(x.ndim(), 3);
  const int64_t n = x.dim(0), c = x.dim(1), l = x.dim(2);
  QCORE_CHECK_GE(l, kernel_);
  const int64_t lo = (l - kernel_) / stride_ + 1;
  Tensor out({n, c, lo});
  if (training) {
    cached_shape_ = x.shape();
    argmax_.assign(static_cast<size_t>(n * c * lo), 0);
  }
  const float* px = x.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* row = px + (i * c + ch) * l;
      for (int64_t o = 0; o < lo; ++o) {
        const int64_t start = o * stride_;
        int64_t best = start;
        float best_v = row[start];
        for (int k = 1; k < kernel_; ++k) {
          if (row[start + k] > best_v) {
            best_v = row[start + k];
            best = start + k;
          }
        }
        po[(i * c + ch) * lo + o] = best_v;
        if (training) {
          argmax_[static_cast<size_t>((i * c + ch) * lo + o)] =
              (i * c + ch) * l + best;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool1d::Backward(const Tensor& grad_out) {
  QCORE_CHECK(!cached_shape_.empty());
  Tensor grad_in(cached_shape_);
  float* pg = grad_in.data();
  const float* po = grad_out.data();
  QCORE_CHECK_EQ(static_cast<size_t>(grad_out.size()), argmax_.size());
  for (size_t i = 0; i < argmax_.size(); ++i) {
    pg[argmax_[i]] += po[i];
  }
  return grad_in;
}

std::unique_ptr<Layer> MaxPool1d::Clone() const {
  return std::make_unique<MaxPool1d>(kernel_, stride_);
}

std::string MaxPool1d::name() const {
  return "maxpool1d(k=" + std::to_string(kernel_) +
         ",s=" + std::to_string(stride_) + ")";
}

// ---------------------------------------------------------------------------
// MaxPool2d
// ---------------------------------------------------------------------------

MaxPool2d::MaxPool2d(int kernel, int stride) : kernel_(kernel), stride_(stride) {
  QCORE_CHECK_GT(kernel, 0);
  QCORE_CHECK_GT(stride, 0);
}

Tensor MaxPool2d::Forward(const Tensor& x, bool training) {
  QCORE_CHECK_EQ(x.ndim(), 4);
  const int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  QCORE_CHECK_GE(h, kernel_);
  QCORE_CHECK_GE(w, kernel_);
  const int64_t ho = (h - kernel_) / stride_ + 1;
  const int64_t wo = (w - kernel_) / stride_ + 1;
  Tensor out({n, c, ho, wo});
  if (training) {
    cached_shape_ = x.shape();
    argmax_.assign(static_cast<size_t>(out.size()), 0);
  }
  const float* px = x.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = px + (i * c + ch) * h * w;
      for (int64_t oy = 0; oy < ho; ++oy) {
        for (int64_t ox = 0; ox < wo; ++ox) {
          const int64_t sy = oy * stride_, sx = ox * stride_;
          int64_t best = sy * w + sx;
          float best_v = plane[best];
          for (int ky = 0; ky < kernel_; ++ky) {
            for (int kx = 0; kx < kernel_; ++kx) {
              const int64_t idx = (sy + ky) * w + (sx + kx);
              if (plane[idx] > best_v) {
                best_v = plane[idx];
                best = idx;
              }
            }
          }
          const int64_t out_idx = ((i * c + ch) * ho + oy) * wo + ox;
          po[out_idx] = best_v;
          if (training) {
            argmax_[static_cast<size_t>(out_idx)] = (i * c + ch) * h * w + best;
          }
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::Backward(const Tensor& grad_out) {
  QCORE_CHECK(!cached_shape_.empty());
  Tensor grad_in(cached_shape_);
  float* pg = grad_in.data();
  const float* po = grad_out.data();
  QCORE_CHECK_EQ(static_cast<size_t>(grad_out.size()), argmax_.size());
  for (size_t i = 0; i < argmax_.size(); ++i) {
    pg[argmax_[i]] += po[i];
  }
  return grad_in;
}

std::unique_ptr<Layer> MaxPool2d::Clone() const {
  return std::make_unique<MaxPool2d>(kernel_, stride_);
}

std::string MaxPool2d::name() const {
  return "maxpool2d(k=" + std::to_string(kernel_) +
         ",s=" + std::to_string(stride_) + ")";
}

// ---------------------------------------------------------------------------
// GlobalAvgPool1d
// ---------------------------------------------------------------------------

Tensor GlobalAvgPool1d::Forward(const Tensor& x, bool training) {
  QCORE_CHECK_EQ(x.ndim(), 3);
  const int64_t n = x.dim(0), c = x.dim(1), l = x.dim(2);
  if (training) cached_shape_ = x.shape();
  Tensor out({n, c});
  const float* px = x.data();
  float* po = out.data();
  const float inv = 1.0f / static_cast<float>(l);
  for (int64_t i = 0; i < n * c; ++i) {
    double s = 0.0;
    for (int64_t t = 0; t < l; ++t) s += px[i * l + t];
    po[i] = static_cast<float>(s) * inv;
  }
  return out;
}

Tensor GlobalAvgPool1d::Backward(const Tensor& grad_out) {
  QCORE_CHECK(!cached_shape_.empty());
  const int64_t l = cached_shape_[2];
  Tensor grad_in(cached_shape_);
  float* pg = grad_in.data();
  const float* po = grad_out.data();
  const float inv = 1.0f / static_cast<float>(l);
  const int64_t rows = grad_out.size();
  for (int64_t i = 0; i < rows; ++i) {
    const float g = po[i] * inv;
    for (int64_t t = 0; t < l; ++t) pg[i * l + t] = g;
  }
  return grad_in;
}

std::unique_ptr<Layer> GlobalAvgPool1d::Clone() const {
  return std::make_unique<GlobalAvgPool1d>();
}

// ---------------------------------------------------------------------------
// GlobalAvgPool2d
// ---------------------------------------------------------------------------

Tensor GlobalAvgPool2d::Forward(const Tensor& x, bool training) {
  QCORE_CHECK_EQ(x.ndim(), 4);
  const int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (training) cached_shape_ = x.shape();
  Tensor out({n, c});
  const float* px = x.data();
  float* po = out.data();
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int64_t i = 0; i < n * c; ++i) {
    double s = 0.0;
    for (int64_t t = 0; t < h * w; ++t) s += px[i * h * w + t];
    po[i] = static_cast<float>(s) * inv;
  }
  return out;
}

Tensor GlobalAvgPool2d::Backward(const Tensor& grad_out) {
  QCORE_CHECK(!cached_shape_.empty());
  const int64_t hw = cached_shape_[2] * cached_shape_[3];
  Tensor grad_in(cached_shape_);
  float* pg = grad_in.data();
  const float* po = grad_out.data();
  const float inv = 1.0f / static_cast<float>(hw);
  const int64_t rows = grad_out.size();
  for (int64_t i = 0; i < rows; ++i) {
    const float g = po[i] * inv;
    for (int64_t t = 0; t < hw; ++t) pg[i * hw + t] = g;
  }
  return grad_in;
}

std::unique_ptr<Layer> GlobalAvgPool2d::Clone() const {
  return std::make_unique<GlobalAvgPool2d>();
}

}  // namespace qcore
