// Model parameter persistence: saves/loads the flattened Params()+Buffers()
// state so server-side preparation and on-edge deployment can be separate
// processes (examples/edge_deployment_sim.cc exercises this round trip).
#ifndef QCORE_NN_MODEL_IO_H_
#define QCORE_NN_MODEL_IO_H_

#include <string>

#include "common/status.h"
#include "nn/layer.h"

namespace qcore {

// Writes parameter names, shapes, values and buffers to `path`.
Status SaveModel(Layer* model, const std::string& path);

// Loads parameters saved by SaveModel into `model`, validating that names
// and shapes match the model's current structure.
Status LoadModel(Layer* model, const std::string& path);

}  // namespace qcore

#endif  // QCORE_NN_MODEL_IO_H_
