#include "nn/model_io.h"

#include "common/serialize.h"

namespace qcore {

Status SaveModel(Layer* model, const std::string& path) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  BinaryWriter w;
  const std::vector<Parameter*> params = model->Params();
  w.WriteU64(params.size());
  for (Parameter* p : params) {
    w.WriteString(p->name);
    w.WriteInt64s(p->value.shape());
    w.WriteFloats(p->value.data(), p->value.vec().size());
  }
  const std::vector<Tensor*> buffers = model->Buffers();
  w.WriteU64(buffers.size());
  for (Tensor* b : buffers) {
    w.WriteInt64s(b->shape());
    w.WriteFloats(b->data(), b->vec().size());
  }
  return w.ToFile(path);
}

Status LoadModel(Layer* model, const std::string& path) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  auto reader = BinaryReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  BinaryReader& r = reader.value();

  auto num_params = r.ReadU64();
  if (!num_params.ok()) return num_params.status();
  const std::vector<Parameter*> params = model->Params();
  if (num_params.value() != params.size()) {
    return Status::Corruption("parameter count mismatch in " + path);
  }
  for (Parameter* p : params) {
    auto name = r.ReadString();
    if (!name.ok()) return name.status();
    if (name.value() != p->name) {
      return Status::Corruption("parameter name mismatch: expected " +
                                p->name + " got " + name.value());
    }
    auto shape = r.ReadInt64s();
    if (!shape.ok()) return shape.status();
    if (shape.value() != p->value.shape()) {
      return Status::Corruption("parameter shape mismatch for " + p->name);
    }
    auto values = r.ReadFloats();
    if (!values.ok()) return values.status();
    if (values.value().size() != p->value.vec().size()) {
      return Status::Corruption("parameter size mismatch for " + p->name);
    }
    const std::vector<float>& pv = values.value();
    p->value.vec().assign(pv.begin(), pv.end());
  }

  auto num_buffers = r.ReadU64();
  if (!num_buffers.ok()) return num_buffers.status();
  const std::vector<Tensor*> buffers = model->Buffers();
  if (num_buffers.value() != buffers.size()) {
    return Status::Corruption("buffer count mismatch in " + path);
  }
  for (Tensor* b : buffers) {
    auto shape = r.ReadInt64s();
    if (!shape.ok()) return shape.status();
    if (shape.value() != b->shape()) {
      return Status::Corruption("buffer shape mismatch");
    }
    auto values = r.ReadFloats();
    if (!values.ok()) return values.status();
    if (values.value().size() != b->vec().size()) {
      return Status::Corruption("buffer size mismatch");
    }
    const std::vector<float>& bv = values.value();
    b->vec().assign(bv.begin(), bv.end());
  }
  return Status::OK();
}

}  // namespace qcore
