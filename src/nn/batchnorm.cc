#include "nn/batchnorm.h"

#include <cmath>

namespace qcore {

namespace {

// Decomposes an input of rank 2/3/4 as [N, C, S]: S spatial elements per
// channel (1 for rank-2).
struct NcsView {
  int64_t n;
  int64_t c;
  int64_t s;
};

NcsView ViewOf(const Tensor& x) {
  QCORE_CHECK_GE(x.ndim(), 2);
  QCORE_CHECK_LE(x.ndim(), 4);
  NcsView v{x.dim(0), x.dim(1), 1};
  for (int i = 2; i < x.ndim(); ++i) v.s *= x.dim(i);
  return v;
}

}  // namespace

BatchNorm::BatchNorm(int64_t channels, float momentum, float eps)
    : channels_(channels), momentum_(momentum), eps_(eps) {
  QCORE_CHECK_GT(channels, 0);
  gamma_ = Parameter("bn.gamma", Tensor::Full({channels}, 1.0f));
  beta_ = Parameter("bn.beta", Tensor::Zeros({channels}));
  running_mean_ = Tensor::Zeros({channels});
  running_var_ = Tensor::Full({channels}, 1.0f);
}

Tensor BatchNorm::Forward(const Tensor& x, bool training) {
  const NcsView v = ViewOf(x);
  QCORE_CHECK_EQ(v.c, channels_);
  Tensor out(x.shape());
  const float* px = x.data();
  float* po = out.data();
  const float* pg = gamma_.value.data();
  const float* pb = beta_.value.data();

  if (training && frozen_) {
    // Normalize with running statistics, caching x-hat so Backward can treat
    // the normalization as a fixed per-channel affine transform.
    cached_shape_ = x.shape();
    cached_frozen_ = true;
    cached_xhat_ = Tensor(x.shape());
    cached_inv_std_.assign(static_cast<size_t>(channels_), 0.0f);
    float* pxh = cached_xhat_.data();
    for (int64_t ch = 0; ch < channels_; ++ch) {
      const float mean = running_mean_[ch];
      const float inv_std = 1.0f / std::sqrt(running_var_[ch] + eps_);
      cached_inv_std_[static_cast<size_t>(ch)] = inv_std;
      for (int64_t i = 0; i < v.n; ++i) {
        const float* row = px + (i * v.c + ch) * v.s;
        float* xhrow = pxh + (i * v.c + ch) * v.s;
        float* orow = po + (i * v.c + ch) * v.s;
        for (int64_t t = 0; t < v.s; ++t) {
          const float xh = (row[t] - mean) * inv_std;
          xhrow[t] = xh;
          orow[t] = pg[ch] * xh + pb[ch];
        }
      }
    }
  } else if (training) {
    cached_shape_ = x.shape();
    cached_frozen_ = false;
    cached_xhat_ = Tensor(x.shape());
    cached_inv_std_.assign(static_cast<size_t>(channels_), 0.0f);
    float* pxh = cached_xhat_.data();
    const double count = static_cast<double>(v.n * v.s);
    for (int64_t ch = 0; ch < channels_; ++ch) {
      double mean = 0.0;
      for (int64_t i = 0; i < v.n; ++i) {
        const float* row = px + (i * v.c + ch) * v.s;
        for (int64_t t = 0; t < v.s; ++t) mean += row[t];
      }
      mean /= count;
      double var = 0.0;
      for (int64_t i = 0; i < v.n; ++i) {
        const float* row = px + (i * v.c + ch) * v.s;
        for (int64_t t = 0; t < v.s; ++t) {
          const double d = row[t] - mean;
          var += d * d;
        }
      }
      var /= count;
      const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
      cached_inv_std_[static_cast<size_t>(ch)] = inv_std;
      running_mean_[ch] =
          (1.0f - momentum_) * running_mean_[ch] +
          momentum_ * static_cast<float>(mean);
      running_var_[ch] = (1.0f - momentum_) * running_var_[ch] +
                         momentum_ * static_cast<float>(var);
      for (int64_t i = 0; i < v.n; ++i) {
        const float* row = px + (i * v.c + ch) * v.s;
        float* xhrow = pxh + (i * v.c + ch) * v.s;
        float* orow = po + (i * v.c + ch) * v.s;
        for (int64_t t = 0; t < v.s; ++t) {
          const float xh = (row[t] - static_cast<float>(mean)) * inv_std;
          xhrow[t] = xh;
          orow[t] = pg[ch] * xh + pb[ch];
        }
      }
    }
  } else {
    for (int64_t ch = 0; ch < channels_; ++ch) {
      const float mean = running_mean_[ch];
      const float inv_std = 1.0f / std::sqrt(running_var_[ch] + eps_);
      const float scale = pg[ch] * inv_std;
      const float shift = pb[ch] - scale * mean;
      for (int64_t i = 0; i < v.n; ++i) {
        const float* row = px + (i * v.c + ch) * v.s;
        float* orow = po + (i * v.c + ch) * v.s;
        for (int64_t t = 0; t < v.s; ++t) orow[t] = scale * row[t] + shift;
      }
    }
  }
  return out;
}

Tensor BatchNorm::Backward(const Tensor& grad_out) {
  QCORE_CHECK_MSG(!cached_shape_.empty(), "Backward before training Forward");
  QCORE_CHECK(grad_out.shape() == cached_shape_);
  const NcsView v = ViewOf(grad_out);
  Tensor grad_in(cached_shape_);
  const float* pg = grad_out.data();
  const float* pxh = cached_xhat_.data();
  float* pgi = grad_in.data();
  float* pdg = gamma_.grad.data();
  float* pdb = beta_.grad.data();
  const double count = static_cast<double>(v.n * v.s);

  for (int64_t ch = 0; ch < channels_; ++ch) {
    // Reductions over the channel slice.
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (int64_t i = 0; i < v.n; ++i) {
      const float* grow = pg + (i * v.c + ch) * v.s;
      const float* xhrow = pxh + (i * v.c + ch) * v.s;
      for (int64_t t = 0; t < v.s; ++t) {
        sum_dy += grow[t];
        sum_dy_xhat += static_cast<double>(grow[t]) * xhrow[t];
      }
    }
    pdg[ch] += static_cast<float>(sum_dy_xhat);
    pdb[ch] += static_cast<float>(sum_dy);

    const float gamma = gamma_.value[ch];
    const float inv_std = cached_inv_std_[static_cast<size_t>(ch)];
    if (cached_frozen_) {
      // Running stats are constants: dL/dx = gamma * inv_std * dy.
      const float scale = gamma * inv_std;
      for (int64_t i = 0; i < v.n; ++i) {
        const float* grow = pg + (i * v.c + ch) * v.s;
        float* girow = pgi + (i * v.c + ch) * v.s;
        for (int64_t t = 0; t < v.s; ++t) girow[t] = scale * grow[t];
      }
      continue;
    }
    const float mean_dy = static_cast<float>(sum_dy / count);
    const float mean_dy_xhat = static_cast<float>(sum_dy_xhat / count);
    for (int64_t i = 0; i < v.n; ++i) {
      const float* grow = pg + (i * v.c + ch) * v.s;
      const float* xhrow = pxh + (i * v.c + ch) * v.s;
      float* girow = pgi + (i * v.c + ch) * v.s;
      for (int64_t t = 0; t < v.s; ++t) {
        girow[t] =
            gamma * inv_std * (grow[t] - mean_dy - xhrow[t] * mean_dy_xhat);
      }
    }
  }
  return grad_in;
}

std::unique_ptr<Layer> BatchNorm::Clone() const {
  auto copy = std::make_unique<BatchNorm>(channels_, momentum_, eps_);
  copy->gamma_ = Parameter(gamma_.name, gamma_.value);
  copy->beta_ = Parameter(beta_.name, beta_.value);
  copy->running_mean_ = running_mean_;
  copy->running_var_ = running_var_;
  copy->frozen_ = frozen_;
  return copy;
}

void SetBatchNormFrozen(Layer* root, bool frozen) {
  QCORE_CHECK(root != nullptr);
  for (Layer* leaf : FlattenLeafLayers(root)) {
    if (auto* bn = dynamic_cast<BatchNorm*>(leaf)) bn->set_frozen(frozen);
  }
}

std::string BatchNorm::name() const {
  return "batchnorm(" + std::to_string(channels_) + ")";
}

}  // namespace qcore
