#include "nn/loss.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace qcore {

float SoftmaxCrossEntropy::Forward(const Tensor& logits,
                                   const std::vector<int>& labels) {
  QCORE_CHECK_EQ(logits.ndim(), 2);
  QCORE_CHECK_EQ(logits.dim(0), static_cast<int64_t>(labels.size()));
  probs_ = SoftmaxRows(logits);
  labels_ = labels;
  const int64_t n = logits.dim(0), k = logits.dim(1);
  double loss = 0.0;
  const float* pp = probs_.data();
  for (int64_t i = 0; i < n; ++i) {
    const int y = labels[static_cast<size_t>(i)];
    QCORE_CHECK(y >= 0 && y < k);
    loss += -std::log(std::max(pp[i * k + y], 1e-12f));
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

Tensor SoftmaxCrossEntropy::Backward() const {
  QCORE_CHECK_MSG(probs_.size() > 0, "Backward before Forward");
  const int64_t n = probs_.dim(0), k = probs_.dim(1);
  Tensor grad = probs_;
  float* pg = grad.data();
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    pg[i * k + labels_[static_cast<size_t>(i)]] -= 1.0f;
    for (int64_t j = 0; j < k; ++j) pg[i * k + j] *= inv_n;
  }
  return grad;
}

float MseLoss(const Tensor& pred, const Tensor& target, Tensor* grad) {
  QCORE_CHECK(pred.SameShape(target));
  const int64_t n = pred.size();
  QCORE_CHECK_GT(n, 0);
  const float* pp = pred.data();
  const float* pt = target.data();
  double loss = 0.0;
  if (grad != nullptr) *grad = Tensor(pred.shape());
  float* pg = grad != nullptr ? grad->data() : nullptr;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    const float d = pp[i] - pt[i];
    loss += static_cast<double>(d) * d;
    if (pg != nullptr) pg[i] = 2.0f * d * inv_n;
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

}  // namespace qcore
