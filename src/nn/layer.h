// Layer abstraction for the from-scratch NN substrate. Rather than a taped
// autograd, each layer implements an explicit Forward/Backward pair and owns
// its parameters. This keeps per-parameter gradients and update deltas
// directly observable, which the bit-flipping trainer (core/bitflip) relies
// on (Algorithm 2 of the paper records the code delta of every parameter
// after each back-propagation step).
#ifndef QCORE_NN_LAYER_H_
#define QCORE_NN_LAYER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace qcore {

// A learnable tensor with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter() = default;
  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  void ZeroGrad() { grad.SetZero(); }
};

class Layer {
 public:
  virtual ~Layer() = default;

  // Computes the layer output. `training` toggles batch-statistics layers
  // (BatchNorm). Implementations cache whatever Backward needs.
  virtual Tensor Forward(const Tensor& x, bool training) = 0;

  // Given dLoss/dOutput, accumulates parameter gradients and returns
  // dLoss/dInput. Must be called after a Forward with training=true on the
  // same input.
  virtual Tensor Backward(const Tensor& grad_out) = 0;

  // All learnable parameters (empty for stateless layers). Pointers remain
  // valid for the lifetime of the layer.
  virtual std::vector<Parameter*> Params() { return {}; }

  // Non-learnable persistent state (e.g. BatchNorm running statistics).
  // Copied by CopyParams alongside parameters.
  virtual std::vector<Tensor*> Buffers() { return {}; }

  // Deep copy including parameter values (not gradients/caches).
  virtual std::unique_ptr<Layer> Clone() const = 0;

  // Diagnostic name, e.g. "conv1d(8->16,k=3)".
  virtual std::string name() const = 0;

  // Invokes `fn` on each direct child (composites only; leaves are no-ops).
  virtual void ForEachChild(const std::function<void(Layer*)>& fn) {
    (void)fn;
  }

  // The input tensor cached by the last training-mode Forward, for layers
  // that keep one (Dense/Conv). Used by the bit-flip feature extractor to
  // observe per-layer activations without changing the forward API.
  virtual const Tensor* cached_input() const { return nullptr; }

  void ZeroGrad() {
    for (Parameter* p : Params()) p->ZeroGrad();
  }
};

// Total number of scalar parameters across a layer tree.
int64_t CountParams(Layer* layer);

// Depth-first list of leaf (non-composite) layers under `root`, in forward
// order. Includes `root` itself if it has no children.
std::vector<Layer*> FlattenLeafLayers(Layer* root);

// Copies parameter values from `src` to `dst`; layer trees must have
// identical structure (names and shapes are checked).
void CopyParams(Layer* dst, const Layer& src);

}  // namespace qcore

#endif  // QCORE_NN_LAYER_H_
