// Basic layers: Dense, ReLU, Flatten, max/global-average pooling.
#ifndef QCORE_NN_LAYERS_H_
#define QCORE_NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace qcore {

// Fully connected layer: x [N, in] -> [N, out]. Weight is [out, in]
// (row-major per output unit), bias is [out].
class Dense : public Layer {
 public:
  Dense(int64_t in_features, int64_t out_features, Rng* rng);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Params() override { return {&weight_, &bias_}; }
  std::unique_ptr<Layer> Clone() const override;
  std::string name() const override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  const Tensor* cached_input() const override {
    return cached_input_.size() > 0 ? &cached_input_ : nullptr;
  }

 private:
  Dense(int64_t in, int64_t out) : in_features_(in), out_features_(out) {}

  int64_t in_features_;
  int64_t out_features_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
};

class Relu : public Layer {
 public:
  Relu() = default;
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> Clone() const override;
  std::string name() const override { return "relu"; }

 private:
  Tensor cached_input_;
};

// [N, d1, d2, ...] -> [N, d1*d2*...].
class Flatten : public Layer {
 public:
  Flatten() = default;
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> Clone() const override;
  std::string name() const override { return "flatten"; }

 private:
  std::vector<int64_t> cached_shape_;
};

// Max pooling over the time axis of [N, C, L]. Output length is
// floor((L - kernel) / stride) + 1 (no padding).
class MaxPool1d : public Layer {
 public:
  MaxPool1d(int kernel, int stride);
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> Clone() const override;
  std::string name() const override;

 private:
  int kernel_;
  int stride_;
  std::vector<int64_t> cached_shape_;
  std::vector<int64_t> argmax_;  // flat input index of each output element
};

// Max pooling over the spatial axes of [N, C, H, W] (square kernel).
class MaxPool2d : public Layer {
 public:
  MaxPool2d(int kernel, int stride);
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> Clone() const override;
  std::string name() const override;

 private:
  int kernel_;
  int stride_;
  std::vector<int64_t> cached_shape_;
  std::vector<int64_t> argmax_;
};

// [N, C, L] -> [N, C]: mean over the time axis.
class GlobalAvgPool1d : public Layer {
 public:
  GlobalAvgPool1d() = default;
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> Clone() const override;
  std::string name() const override { return "gap1d"; }

 private:
  std::vector<int64_t> cached_shape_;
};

// [N, C, H, W] -> [N, C]: mean over the spatial axes.
class GlobalAvgPool2d : public Layer {
 public:
  GlobalAvgPool2d() = default;
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> Clone() const override;
  std::string name() const override { return "gap2d"; }

 private:
  std::vector<int64_t> cached_shape_;
};

}  // namespace qcore

#endif  // QCORE_NN_LAYERS_H_
