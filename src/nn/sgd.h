// Stochastic gradient descent with classical momentum and L2 weight decay —
// the optimizer the paper uses for training and BP-based calibration.
#ifndef QCORE_NN_SGD_H_
#define QCORE_NN_SGD_H_

#include <unordered_map>
#include <vector>

#include "nn/layer.h"

namespace qcore {

struct SgdOptions {
  float lr = 0.01f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
};

class Sgd {
 public:
  explicit Sgd(SgdOptions options) : options_(options) {
    QCORE_CHECK_GT(options.lr, 0.0f);
    QCORE_CHECK_GE(options.momentum, 0.0f);
    QCORE_CHECK_GE(options.weight_decay, 0.0f);
  }

  // Applies one update to every parameter from its accumulated gradient,
  // then zeroes the gradients. Velocity is tracked per Parameter pointer, so
  // an Sgd instance must outlive (and stay bound to) one model instance.
  void Step(const std::vector<Parameter*>& params);

  void set_lr(float lr) {
    QCORE_CHECK_GT(lr, 0.0f);
    options_.lr = lr;
  }
  float lr() const { return options_.lr; }

 private:
  SgdOptions options_;
  std::unordered_map<Parameter*, Tensor> velocity_;
};

}  // namespace qcore

#endif  // QCORE_NN_SGD_H_
