// Softmax cross-entropy loss (fused for numerical stability).
#ifndef QCORE_NN_LOSS_H_
#define QCORE_NN_LOSS_H_

#include <vector>

#include "tensor/tensor.h"

namespace qcore {

class SoftmaxCrossEntropy {
 public:
  // Mean cross-entropy of logits [N, K] against integer labels in [0, K).
  // Caches softmax probabilities for Backward.
  float Forward(const Tensor& logits, const std::vector<int>& labels);

  // dLoss/dLogits = (softmax - onehot) / N.
  Tensor Backward() const;

  // The cached probabilities from the last Forward ([N, K]).
  const Tensor& probabilities() const { return probs_; }

 private:
  Tensor probs_;
  std::vector<int> labels_;
};

// Mean squared error between prediction and target (same shape); used by the
// DER baseline's logit-replay term. Returns the loss; writes dLoss/dPred
// into *grad if non-null.
float MseLoss(const Tensor& pred, const Tensor& target, Tensor* grad);

}  // namespace qcore

#endif  // QCORE_NN_LOSS_H_
