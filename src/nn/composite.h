// Composite layers: Sequential (the model container), Residual (skip
// connections for ResNet/InceptionTime), and ParallelConcat (multi-branch
// blocks with channel concatenation, used by InceptionTime/OmniScaleCNN).
#ifndef QCORE_NN_COMPOSITE_H_
#define QCORE_NN_COMPOSITE_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace qcore {

class Sequential : public Layer {
 public:
  Sequential() = default;

  // Appends a layer; returns *this for fluent building.
  Sequential& Add(std::unique_ptr<Layer> layer);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Params() override;
  std::vector<Tensor*> Buffers() override;
  std::unique_ptr<Layer> Clone() const override;
  std::string name() const override;
  void ForEachChild(const std::function<void(Layer*)>& fn) override {
    for (auto& l : layers_) fn(l.get());
  }

  size_t size() const { return layers_.size(); }
  Layer* layer(size_t i) {
    QCORE_CHECK_LT(i, layers_.size());
    return layers_[i].get();
  }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

// y = body(x) + shortcut(x); shortcut may be null (identity — requires the
// body to preserve shape). The classic pre-activation-free residual block:
// any inner ReLU/BN lives inside `body`.
class Residual : public Layer {
 public:
  Residual(std::unique_ptr<Layer> body, std::unique_ptr<Layer> shortcut);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Params() override;
  std::vector<Tensor*> Buffers() override;
  std::unique_ptr<Layer> Clone() const override;
  std::string name() const override { return "residual"; }
  void ForEachChild(const std::function<void(Layer*)>& fn) override {
    fn(body_.get());
    if (shortcut_) fn(shortcut_.get());
  }

 private:
  std::unique_ptr<Layer> body_;
  std::unique_ptr<Layer> shortcut_;  // may be null
};

// Runs each branch on the same input and concatenates branch outputs along
// the channel axis (axis 1). All branches must produce outputs that agree on
// every axis except channels. Works for [N, C, L] and [N, C, H, W].
class ParallelConcat : public Layer {
 public:
  explicit ParallelConcat(std::vector<std::unique_ptr<Layer>> branches);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Params() override;
  std::vector<Tensor*> Buffers() override;
  std::unique_ptr<Layer> Clone() const override;
  std::string name() const override;
  void ForEachChild(const std::function<void(Layer*)>& fn) override {
    for (auto& b : branches_) fn(b.get());
  }

 private:
  std::vector<std::unique_ptr<Layer>> branches_;
  std::vector<int64_t> branch_channels_;  // channels of each branch output
};

}  // namespace qcore

#endif  // QCORE_NN_COMPOSITE_H_
