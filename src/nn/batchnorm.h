// Batch normalization over the channel axis. Supports [N, C] (dense),
// [N, C, L] (temporal), and [N, C, H, W] (spatial) inputs: statistics are
// computed per channel over all remaining axes.
#ifndef QCORE_NN_BATCHNORM_H_
#define QCORE_NN_BATCHNORM_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace qcore {

class BatchNorm : public Layer {
 public:
  explicit BatchNorm(int64_t channels, float momentum = 0.1f,
                     float eps = 1e-5f);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Params() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> Buffers() override {
    return {&running_mean_, &running_var_};
  }
  std::unique_ptr<Layer> Clone() const override;
  std::string name() const override;

  // Freeze mode: training-mode Forward normalizes with the *running*
  // statistics (treated as constants in Backward) and does not update them.
  // Used during calibration, where batches are tiny (e.g. a 30-example
  // QCore) and batch statistics would be destructively noisy.
  void set_frozen(bool frozen) { frozen_ = frozen; }
  bool frozen() const { return frozen_; }

 private:
  int64_t channels_;
  float momentum_;
  float eps_;
  bool frozen_ = false;
  bool cached_frozen_ = false;
  Parameter gamma_;
  Parameter beta_;
  Tensor running_mean_;
  Tensor running_var_;

  // Backward caches (training forward only).
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
  std::vector<int64_t> cached_shape_;
};

// Sets freeze mode on every BatchNorm in the layer tree under `root`.
void SetBatchNormFrozen(Layer* root, bool frozen);

}  // namespace qcore

#endif  // QCORE_NN_BATCHNORM_H_
