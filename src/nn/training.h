// Minibatch training/evaluation loops over raw (X, y) tensors. Dataset-level
// conveniences live in data/; this header keeps nn/ free of that dependency.
#ifndef QCORE_NN_TRAINING_H_
#define QCORE_NN_TRAINING_H_

#include <functional>
#include <vector>

#include "nn/layer.h"
#include "nn/sgd.h"

namespace qcore {

struct TrainOptions {
  int epochs = 10;
  int batch_size = 64;
  SgdOptions sgd;
  // If set, called after each epoch with (epoch, mean training loss).
  std::function<void(int, float)> on_epoch;
};

// Trains a classifier on x (first axis = examples) with integer labels,
// shuffling each epoch. Returns the mean training loss of the final epoch.
float TrainClassifier(Layer* model, const Tensor& x,
                      const std::vector<int>& labels,
                      const TrainOptions& options, Rng* rng);

// Runs one SGD step on a single minibatch; returns the batch loss.
float TrainStep(Layer* model, const Tensor& batch_x,
                const std::vector<int>& batch_y, Sgd* sgd);

// Argmax predictions in eval mode, chunked to bound activation memory.
std::vector<int> Predict(Layer* model, const Tensor& x, int batch_size = 256);

// Fraction of rows whose argmax prediction matches the label.
float EvaluateAccuracy(Layer* model, const Tensor& x,
                       const std::vector<int>& labels, int batch_size = 256);

}  // namespace qcore

#endif  // QCORE_NN_TRAINING_H_
