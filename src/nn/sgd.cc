#include "nn/sgd.h"

namespace qcore {

void Sgd::Step(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    QCORE_CHECK(p != nullptr);
    auto [it, inserted] = velocity_.try_emplace(p, p->value.shape());
    Tensor& vel = it->second;
    QCORE_CHECK(vel.SameShape(p->value));
    float* pv = vel.data();
    float* pw = p->value.data();
    const float* pg = p->grad.data();
    const int64_t n = p->value.size();
    for (int64_t i = 0; i < n; ++i) {
      float g = pg[i] + options_.weight_decay * pw[i];
      pv[i] = options_.momentum * pv[i] + g;
      pw[i] -= options_.lr * pv[i];
    }
    p->ZeroGrad();
  }
}

}  // namespace qcore
