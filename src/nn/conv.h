// 1-D and 2-D convolution layers, lowered per sample onto the blocked GEMM
// substrate via im2col/col2im (tensor/kernels.h). The scalar direct-loop
// implementations survive as qcore::naive::Conv{1,2}dForward/Backward — the
// oracle for kernels_test and the baseline for the perf CI gate.
#ifndef QCORE_NN_CONV_H_
#define QCORE_NN_CONV_H_

#include <memory>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "nn/layer.h"

namespace qcore {

// Temporal convolution: x [N, C, L] -> [N, F, Lo] with
// Lo = (L + 2*pad - kernel) / stride + 1. Weight is [F, C, K], bias [F].
class Conv1d : public Layer {
 public:
  Conv1d(int64_t in_channels, int64_t out_channels, int kernel, int stride,
         int pad, Rng* rng);

  // Padding that preserves length for stride 1 and odd kernels.
  static int SamePad(int kernel) { return (kernel - 1) / 2; }

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Params() override { return {&weight_, &bias_}; }
  std::unique_ptr<Layer> Clone() const override;
  std::string name() const override;

  int64_t in_channels() const { return in_channels_; }
  int64_t out_channels() const { return out_channels_; }
  int kernel() const { return kernel_; }
  const Tensor* cached_input() const override {
    return cached_input_.size() > 0 ? &cached_input_ : nullptr;
  }

 private:
  Conv1d(int64_t ic, int64_t oc, int k, int s, int p)
      : in_channels_(ic), out_channels_(oc), kernel_(k), stride_(s), pad_(p) {}

  int64_t in_channels_;
  int64_t out_channels_;
  int kernel_;
  int stride_;
  int pad_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
  // im2col pack scratch, persisted across calls on the same layer — the
  // pack buffer is ~20% of a small conv forward, so reallocating it per
  // call is measurable. Grown on demand, never shrunk; every needed entry
  // is rewritten before use (Im2Col writes the full column matrix, dcol is
  // zero-filled), so reuse cannot leak state between calls. Not cloned:
  // layers are not internally synchronized anyway (see serving/session.h),
  // so the scratch adds no new threading constraint.
  AlignedFloatVec col_scratch_;
  AlignedFloatVec dcol_scratch_;
};

// Spatial convolution with square kernels: x [N, C, H, W] -> [N, F, Ho, Wo].
// Weight is [F, C, K, K], bias [F].
class Conv2d : public Layer {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int kernel, int stride,
         int pad, Rng* rng);

  static int SamePad(int kernel) { return (kernel - 1) / 2; }

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Params() override { return {&weight_, &bias_}; }
  std::unique_ptr<Layer> Clone() const override;
  std::string name() const override;
  const Tensor* cached_input() const override {
    return cached_input_.size() > 0 ? &cached_input_ : nullptr;
  }

 private:
  Conv2d(int64_t ic, int64_t oc, int k, int s, int p)
      : in_channels_(ic), out_channels_(oc), kernel_(k), stride_(s), pad_(p) {}

  int64_t in_channels_;
  int64_t out_channels_;
  int kernel_;
  int stride_;
  int pad_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
  // Persistent im2col scratch; see the Conv1d note.
  AlignedFloatVec col_scratch_;
  AlignedFloatVec dcol_scratch_;
};

}  // namespace qcore

#endif  // QCORE_NN_CONV_H_
