#include "nn/layer.h"

namespace qcore {

std::vector<Layer*> FlattenLeafLayers(Layer* root) {
  QCORE_CHECK(root != nullptr);
  std::vector<Layer*> out;
  bool has_children = false;
  root->ForEachChild([&](Layer* child) {
    has_children = true;
    std::vector<Layer*> sub = FlattenLeafLayers(child);
    out.insert(out.end(), sub.begin(), sub.end());
  });
  if (!has_children) out.push_back(root);
  return out;
}

int64_t CountParams(Layer* layer) {
  QCORE_CHECK(layer != nullptr);
  int64_t n = 0;
  for (Parameter* p : layer->Params()) n += p->value.size();
  return n;
}

void CopyParams(Layer* dst, const Layer& src) {
  QCORE_CHECK(dst != nullptr);
  // Params() is non-const by design (callers mutate); clone the source to
  // obtain stable pointers without casting away constness.
  std::unique_ptr<Layer> src_copy = src.Clone();
  std::vector<Parameter*> d = dst->Params();
  std::vector<Parameter*> s = src_copy->Params();
  QCORE_CHECK_EQ(d.size(), s.size());
  for (size_t i = 0; i < d.size(); ++i) {
    QCORE_CHECK_MSG(d[i]->name == s[i]->name, "parameter name mismatch");
    QCORE_CHECK(d[i]->value.SameShape(s[i]->value));
    d[i]->value = s[i]->value;
  }
  std::vector<Tensor*> db = dst->Buffers();
  std::vector<Tensor*> sb = src_copy->Buffers();
  QCORE_CHECK_EQ(db.size(), sb.size());
  for (size_t i = 0; i < db.size(); ++i) {
    QCORE_CHECK(db[i]->SameShape(*sb[i]));
    *db[i] = *sb[i];
  }
}

}  // namespace qcore
