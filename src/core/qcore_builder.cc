#include "core/qcore_builder.h"

#include <algorithm>

#include "core/quant_miss.h"
#include "quant/quantized_model.h"

namespace qcore {

QCoreBuildResult BuildQCore(Sequential* fp_model, const Dataset& train_set,
                            const QCoreBuildOptions& options, Rng* rng) {
  QCORE_CHECK(fp_model != nullptr && rng != nullptr);
  QCORE_CHECK(!options.bit_levels.empty());
  QCORE_CHECK_GT(options.size, 0);
  QCORE_CHECK_LE(options.size, train_set.size());

  const int n = train_set.size();
  const int num_levels = static_cast<int>(options.bit_levels.size());
  // Level index num_levels is the full-precision model itself.
  QuantMissTracker tracker(n, num_levels + 1);

  // Epoch-by-epoch training with per-epoch quantized proxy evaluation
  // (Algorithm 1, lines 5-11). The proxy models are freshly quantized each
  // epoch and discarded — they are never calibrated.
  TrainOptions epoch_opts = options.train;
  epoch_opts.epochs = 1;
  float final_loss = 0.0f;
  for (int epoch = 0; epoch < options.train.epochs; ++epoch) {
    final_loss =
        TrainClassifier(fp_model, train_set.x(), train_set.labels(),
                        epoch_opts, rng);
    for (int j = 0; j < num_levels; ++j) {
      QuantizedModel proxy(*fp_model, options.bit_levels[static_cast<size_t>(j)]);
      const std::vector<int> preds = Predict(proxy.model(), train_set.x());
      std::vector<bool> correct(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        correct[static_cast<size_t>(i)] =
            preds[static_cast<size_t>(i)] ==
            train_set.labels()[static_cast<size_t>(i)];
      }
      tracker.ObserveAll(j, correct);
    }
    {
      const std::vector<int> preds = Predict(fp_model, train_set.x());
      std::vector<bool> correct(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        correct[static_cast<size_t>(i)] =
            preds[static_cast<size_t>(i)] ==
            train_set.labels()[static_cast<size_t>(i)];
      }
      tracker.ObserveAll(num_levels, correct);
    }
  }

  QCoreBuildResult result;
  result.final_train_loss = final_loss;
  result.combined_misses.assign(static_cast<size_t>(n), 0);
  for (int j = 0; j < num_levels; ++j) {
    const std::vector<int>& level_misses = tracker.misses(j);
    result.per_level_misses[options.bit_levels[static_cast<size_t>(j)]] =
        level_misses;
    for (int i = 0; i < n; ++i) {
      result.combined_misses[static_cast<size_t>(i)] +=
          level_misses[static_cast<size_t>(i)];
    }
  }
  result.per_level_misses[32] = tracker.misses(num_levels);

  // Choose the sampling distribution per strategy.
  const std::vector<int>* sampling_misses = nullptr;
  switch (options.strategy) {
    case SubsetStrategy::kCombined:
      sampling_misses = &result.combined_misses;
      break;
    case SubsetStrategy::kSingleLevel: {
      QCORE_CHECK(options.single_level_index >= 0 &&
                  options.single_level_index < num_levels);
      const int bits = options.bit_levels[
          static_cast<size_t>(options.single_level_index)];
      sampling_misses = &result.per_level_misses.at(bits);
      break;
    }
    case SubsetStrategy::kFullPrecision:
      sampling_misses = &result.per_level_misses.at(32);
      break;
    case SubsetStrategy::kRandom:
      break;
  }

  if (options.strategy == SubsetStrategy::kRandom) {
    result.indices = rng->SampleWithoutReplacement(n, options.size);
    result.info_loss = MissInfoLoss(result.combined_misses, result.indices);
  } else {
    result.indices =
        SampleByMissDistribution(*sampling_misses, options.size, rng);
    result.info_loss = MissInfoLoss(*sampling_misses, result.indices);
  }
  std::sort(result.indices.begin(), result.indices.end());
  result.qcore = train_set.Subset(result.indices);
  return result;
}

}  // namespace qcore
