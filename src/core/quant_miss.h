// Quantization-miss accounting (paper Sec. 3.2.2). A quantization miss for
// example x_i at quantization level j occurs when the indicator TP (Eq. 2)
// transitions from correct to incorrect between consecutive observations of
// a j-bit quantized proxy model. The per-example miss counts, aggregated
// into a probability mass function, drive QCore construction (Fig. 4/5).
#ifndef QCORE_CORE_QUANT_MISS_H_
#define QCORE_CORE_QUANT_MISS_H_

#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace qcore {

class QuantMissTracker {
 public:
  // `num_levels` quantization levels observed over `num_examples` examples.
  QuantMissTracker(int num_examples, int num_levels);

  // Records the correctness of example `example` at level `level` for the
  // current step. A miss is counted when the previous observation at the
  // same (level, example) was correct and this one is not. The first
  // observation never counts as a miss.
  void Observe(int level, int example, bool correct);

  // Batch version: `correct` must have one entry per example.
  void ObserveAll(int level, const std::vector<bool>& correct);

  int num_examples() const { return num_examples_; }
  int num_levels() const { return num_levels_; }

  // Per-example miss counts at one level.
  const std::vector<int>& misses(int level) const;

  // Per-example miss counts summed over all levels (Algorithm 1, line 14).
  std::vector<int> CombinedMisses() const;

  // Histogram {k -> N_k}: number of examples with exactly k misses, for
  // k = 0..max. Input is any per-example miss vector.
  static std::vector<int64_t> Distribution(const std::vector<int>& misses);

 private:
  int num_examples_;
  int num_levels_;
  // prev_[level][example]: -1 unknown, 0 incorrect, 1 correct.
  std::vector<std::vector<int8_t>> prev_;
  std::vector<std::vector<int>> misses_;
};

// Samples `size` example indices whose miss histogram replicates the miss
// histogram of the full set (Algorithm 1, line 15; Fig. 5). Buckets get
// round(lambda * N_k) slots (largest-remainder correction to hit `size`
// exactly); members within a bucket are drawn uniformly.
std::vector<int> SampleByMissDistribution(const std::vector<int>& misses,
                                          int size, Rng* rng);

// Information loss epsilon of Eq. 3 with cost(M, x) = miss count of x:
// | mean_misses(all) - mean_misses(selected) |. Bounded by the maximum miss
// level K (Eq. 7).
double MissInfoLoss(const std::vector<int>& misses,
                    const std::vector<int>& selected);

}  // namespace qcore

#endif  // QCORE_CORE_QUANT_MISS_H_
