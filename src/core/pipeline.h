// End-to-end QCore pipeline (paper Fig. 1(b) / Fig. 3): train the
// full-precision model on the source domain while building the QCore,
// quantize at the requested bit-width, run the initial STE calibration on
// the QCore while training the bit-flipping network, then stream the target
// domain through the continual on-edge loop. This is the orchestration every
// experiment bench and example builds on.
#ifndef QCORE_CORE_PIPELINE_H_
#define QCORE_CORE_PIPELINE_H_

#include <memory>
#include <vector>

#include "core/bitflip.h"
#include "core/continual.h"
#include "core/qcore_builder.h"
#include "data/dataset.h"

namespace qcore {

struct PipelineOptions {
  int bits = 4;
  QCoreBuildOptions build;
  BitFlipTrainOptions bf_train;      // includes the initial STE calibration
  ContinualOptions continual;
  int stream_batches = 10;           // paper protocol: 10 batches
};

struct PipelineResult {
  std::vector<BatchStats> per_batch;
  float average_accuracy = 0.0f;
  double total_calibration_seconds = 0.0;
  double seconds_per_calibration = 0.0;
  // Subset construction diagnostics.
  std::vector<int> qcore_indices;
  double info_loss = 0.0;
  // Accuracy of the quantized model right after initial calibration, on the
  // source test set (if provided).
  float post_calibration_source_accuracy = 0.0f;
};

// Runs the full pipeline. `fp_model` is an *untrained* architecture; it is
// trained here on source_train (Algorithm 1 trains and tracks misses in one
// pass). `target_stream` is split into stream_batches batches and
// `target_test` into matching evaluation slices.
PipelineResult RunQCorePipeline(Sequential* fp_model,
                                const Dataset& source_train,
                                const Dataset& source_test,
                                const Dataset& target_stream,
                                const Dataset& target_test,
                                const PipelineOptions& options, Rng* rng);

// Variant for a pre-built subset (used when comparing alternative coreset
// constructions, Tables 4/8): skips Algorithm 1 and uses `subset` as the
// calibration set. `fp_model` must already be trained.
PipelineResult RunPipelineWithSubset(Sequential* fp_model,
                                     const Dataset& subset,
                                     const Dataset& target_stream,
                                     const Dataset& target_test,
                                     const PipelineOptions& options, Rng* rng);

}  // namespace qcore

#endif  // QCORE_CORE_PIPELINE_H_
