// The on-edge continual-calibration loop (paper Fig. 7): for every incoming
// stream batch, the quantized model is calibrated with the bit-flipping
// network on QCore ∪ batch while quantization misses are tracked, and the
// QCore is resampled to absorb the new domain without forgetting the old
// one. The two ablation switches correspond to Table 7 (NoBF / NoUpda).
#ifndef QCORE_CORE_CONTINUAL_H_
#define QCORE_CORE_CONTINUAL_H_

#include <vector>

#include "core/bitflip.h"
#include "data/dataset.h"
#include "quant/quantized_model.h"

namespace qcore {

struct ContinualOptions {
  // Calibration/miss-tracking iterations per batch (E in Alg. 3/4).
  int iterations = 3;
  // Disable for the NoBF ablation: the model stays fixed (no BP on edge).
  bool use_bitflip = true;
  // Disable for the NoUpda ablation: QCore keeps its original contents.
  bool use_qcore_update = true;
  BitFlipCalibrateOptions bf;
};

struct BatchStats {
  float accuracy = 0.0f;       // on the batch's test slice, after calibration
  double calibration_seconds = 0.0;
  int qcore_changed = 0;       // examples replaced by the QCore update
};

class ContinualDriver {
 public:
  // `qm` and `bf` must outlive the driver; `bf` may be null iff
  // options.use_bitflip is false.
  ContinualDriver(QuantizedModel* qm, BitFlipNet* bf, Dataset qcore,
                  const ContinualOptions& options, Rng* rng);

  // Calibrates on one stream batch (Algorithms 3+4 interleaved), then
  // evaluates on the supplied test slice.
  BatchStats ProcessBatch(const Dataset& batch, const Dataset& test_slice);

  // Convenience: processes every batch in order against the matching test
  // slice. Sizes must agree.
  std::vector<BatchStats> RunStream(const std::vector<Dataset>& batches,
                                    const std::vector<Dataset>& test_slices);

  const Dataset& qcore() const { return qcore_; }
  QuantizedModel* model() { return qm_; }

 private:
  QuantizedModel* qm_;
  BitFlipNet* bf_;
  Dataset qcore_;
  ContinualOptions options_;
  Rng* rng_;
};

// Mean accuracy across batch stats.
float AverageAccuracy(const std::vector<BatchStats>& stats);

}  // namespace qcore

#endif  // QCORE_CORE_CONTINUAL_H_
