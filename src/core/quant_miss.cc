#include "core/quant_miss.h"

#include <algorithm>
#include <cmath>

namespace qcore {

QuantMissTracker::QuantMissTracker(int num_examples, int num_levels)
    : num_examples_(num_examples), num_levels_(num_levels) {
  QCORE_CHECK_GT(num_examples, 0);
  QCORE_CHECK_GT(num_levels, 0);
  prev_.assign(static_cast<size_t>(num_levels),
               std::vector<int8_t>(static_cast<size_t>(num_examples), -1));
  misses_.assign(static_cast<size_t>(num_levels),
                 std::vector<int>(static_cast<size_t>(num_examples), 0));
}

void QuantMissTracker::Observe(int level, int example, bool correct) {
  QCORE_CHECK(level >= 0 && level < num_levels_);
  QCORE_CHECK(example >= 0 && example < num_examples_);
  int8_t& prev = prev_[static_cast<size_t>(level)][static_cast<size_t>(example)];
  if (prev == 1 && !correct) {
    ++misses_[static_cast<size_t>(level)][static_cast<size_t>(example)];
  }
  prev = correct ? 1 : 0;
}

void QuantMissTracker::ObserveAll(int level, const std::vector<bool>& correct) {
  QCORE_CHECK_EQ(static_cast<int>(correct.size()), num_examples_);
  for (int i = 0; i < num_examples_; ++i) {
    Observe(level, i, correct[static_cast<size_t>(i)]);
  }
}

const std::vector<int>& QuantMissTracker::misses(int level) const {
  QCORE_CHECK(level >= 0 && level < num_levels_);
  return misses_[static_cast<size_t>(level)];
}

std::vector<int> QuantMissTracker::CombinedMisses() const {
  std::vector<int> combined(static_cast<size_t>(num_examples_), 0);
  for (const auto& level : misses_) {
    for (int i = 0; i < num_examples_; ++i) {
      combined[static_cast<size_t>(i)] += level[static_cast<size_t>(i)];
    }
  }
  return combined;
}

std::vector<int64_t> QuantMissTracker::Distribution(
    const std::vector<int>& misses) {
  int max_miss = 0;
  for (int m : misses) {
    QCORE_CHECK_GE(m, 0);
    max_miss = std::max(max_miss, m);
  }
  std::vector<int64_t> hist(static_cast<size_t>(max_miss) + 1, 0);
  for (int m : misses) ++hist[static_cast<size_t>(m)];
  return hist;
}

std::vector<int> SampleByMissDistribution(const std::vector<int>& misses,
                                          int size, Rng* rng) {
  QCORE_CHECK(rng != nullptr);
  const int n = static_cast<int>(misses.size());
  QCORE_CHECK_GT(n, 0);
  QCORE_CHECK_GT(size, 0);
  QCORE_CHECK_LE(size, n);

  // Bucket example indices by miss count.
  const std::vector<int64_t> hist = QuantMissTracker::Distribution(misses);
  std::vector<std::vector<int>> buckets(hist.size());
  for (size_t k = 0; k < hist.size(); ++k) {
    buckets[k].reserve(static_cast<size_t>(hist[k]));
  }
  for (int i = 0; i < n; ++i) {
    buckets[static_cast<size_t>(misses[static_cast<size_t>(i)])].push_back(i);
  }

  // Proportional allocation with largest-remainder correction.
  const double lambda = static_cast<double>(size) / static_cast<double>(n);
  std::vector<int> alloc(hist.size(), 0);
  std::vector<std::pair<double, size_t>> remainders;
  int allocated = 0;
  for (size_t k = 0; k < hist.size(); ++k) {
    const double exact = lambda * static_cast<double>(hist[k]);
    alloc[k] = static_cast<int>(std::floor(exact));
    alloc[k] = std::min<int>(alloc[k], static_cast<int>(hist[k]));
    allocated += alloc[k];
    remainders.push_back({exact - std::floor(exact), k});
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  // Top up by largest remainder while bucket capacity remains.
  for (size_t r = 0; allocated < size; r = (r + 1) % remainders.size()) {
    const size_t k = remainders[r].second;
    if (alloc[k] < static_cast<int>(hist[k])) {
      ++alloc[k];
      ++allocated;
    }
    // Safety: if every bucket is saturated we would loop forever, but that
    // cannot happen because size <= n.
  }

  std::vector<int> selected;
  selected.reserve(static_cast<size_t>(size));
  for (size_t k = 0; k < buckets.size(); ++k) {
    if (alloc[k] == 0) continue;
    std::vector<int> pick = rng->SampleWithoutReplacement(
        static_cast<int>(buckets[k].size()), alloc[k]);
    for (int p : pick) {
      selected.push_back(buckets[k][static_cast<size_t>(p)]);
    }
  }
  QCORE_CHECK_EQ(static_cast<int>(selected.size()), size);
  return selected;
}

double MissInfoLoss(const std::vector<int>& misses,
                    const std::vector<int>& selected) {
  QCORE_CHECK(!misses.empty());
  QCORE_CHECK(!selected.empty());
  double full = 0.0;
  for (int m : misses) full += m;
  full /= static_cast<double>(misses.size());
  double sub = 0.0;
  for (int i : selected) {
    QCORE_CHECK(i >= 0 && i < static_cast<int>(misses.size()));
    sub += misses[static_cast<size_t>(i)];
  }
  sub /= static_cast<double>(selected.size());
  return std::fabs(full - sub);
}

}  // namespace qcore
