// The bit-flipping network (paper Sec. 3.3): a compact auxiliary model that
// replaces back-propagation for on-edge calibration. It is trained
// server-side (Algorithm 2) by observing, during STE calibration of the main
// quantized model, the relationship between per-parameter activation
// features (delta-a) and the integer code delta the BP step actually applied
// (clipped to {-1, 0, +1}). On the edge (Algorithm 3) it runs inference only:
// features are computed from the current forward pass and predicted deltas
// are applied directly to the quantized codes.
#ifndef QCORE_CORE_BITFLIP_H_
#define QCORE_CORE_BITFLIP_H_

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "nn/composite.h"
#include "nn/training.h"
#include "quant/quantized_model.h"
#include "quant/ste_calibrator.h"

namespace qcore {

// Per-parameter feature vector (Sec. 3.3.2): the activation difference
// delta-a = (w * a_mean - a_mean), the normalized input activation mean and
// spread, the current integer code (normalized by qmax), the weighted
// activation, and the activation magnitude.
inline constexpr int kBitFlipFeatureDim = 6;

// Computes the [num_elements, kBitFlipFeatureDim] feature matrix for one
// quantized tensor. Requires the owner layer to hold a cached input from a
// training-mode forward pass. If `code_override` is non-null it supplies the
// codes to featurize (used during supervision collection, where features
// must reflect the pre-update weights).
Tensor ComputeBitFlipFeatures(const QuantizedModel::QuantizedTensor& qt,
                              const std::vector<int32_t>* code_override);

// The auxiliary network itself: Conv1d over the feature vector + dense head
// with 3 outputs (delta in {-1, 0, +1}). Kept deliberately tiny (~100
// parameters) and quantized at the same bit-width as the main model.
class BitFlipNet {
 public:
  BitFlipNet(int bits, Rng* rng);

  BitFlipNet(const BitFlipNet&) = delete;
  BitFlipNet& operator=(const BitFlipNet&) = delete;
  BitFlipNet(BitFlipNet&&) = default;
  BitFlipNet& operator=(BitFlipNet&&) = default;

  int bits() const { return bits_; }
  bool is_quantized() const { return quantized_ != nullptr; }
  int64_t ParamCount();

  // Deep copy (weights and, if quantized, the code tables). Each serving
  // session owns its own copy because Predict's forward pass mutates layer
  // caches — a shared net would race across pool workers.
  BitFlipNet Clone() const;

  // Trains the full-precision form on features [M, kBitFlipFeatureDim] with
  // labels in {0, 1, 2} (= delta + 1). Returns final epoch loss.
  float Train(const Tensor& features, const std::vector<int>& labels,
              const TrainOptions& options, Rng* rng);

  // Quantizes the net at bits() for edge deployment; subsequent Predict
  // calls run the quantized form (inference only).
  void Quantize();

  // Predicted code delta in {-1, 0, +1} and the softmax confidence of that
  // prediction, per feature row.
  void Predict(const Tensor& features, std::vector<int>* deltas,
               std::vector<float>* confidences);

 private:
  BitFlipNet() = default;

  int bits_ = 0;
  std::unique_ptr<Sequential> float_net_;
  std::unique_ptr<QuantizedModel> quantized_;
};

// Algorithm 2: runs STE calibration of `qm` on the QCore while recording
// (feature, code-delta) pairs, then trains and quantizes a BitFlipNet.
struct BitFlipTrainOptions {
  SteOptions ste;                    // supervision-generating calibration
  int max_samples_per_step = 2000;   // feature rows kept per BP step
  float zero_keep_ratio = 2.0f;      // cap on "no change" rows vs flips
  // Extra supervision episodes: fresh copies of the *pre-calibration*
  // quantized model are calibrated on domain-augmented views of the QCore
  // (per-channel gain/bias jitter), so the network observes how BP repairs a
  // model whose input distribution has shifted — the situation it will face
  // on the edge. Episode 0 is always the real (clean) initial calibration.
  int augment_episodes = 3;
  float augment_strength = 1.0f;
  TrainOptions bf_train = {
      .epochs = 15,
      .batch_size = 128,
      .sgd = {.lr = 0.05f, .momentum = 0.9f, .weight_decay = 1e-4f},
      .on_epoch = nullptr};
};

BitFlipNet TrainBitFlipNet(QuantizedModel* qm, const Dataset& qcore,
                           const BitFlipTrainOptions& options, Rng* rng);

// Algorithm 3: inference-only calibration of the deployed model. Each
// per-tensor flip proposal from the bit-flipping network is validated with a
// forward pass over the calibration data (QCore ∪ stream batch, whose labels
// are available per Sec. 2.1.3) and reverted if it does not reduce the
// cross-entropy — "the process undergoes few iterations to ensure model
// stability" (Sec. 3.3.3). Everything here is inference; no gradients are
// ever computed.
struct BitFlipCalibrateOptions {
  int iterations = 3;                 // E in Algorithm 3 (converges fast)
  float confidence_threshold = 0.5f;  // only act on confident predictions
  float max_flip_fraction = 0.3f;     // per-tensor cap per iteration
  // BF candidates are applied in at most this many chunks per tensor, each
  // validated (and possibly reverted) independently — finer acceptance
  // granularity finds improving moves a monolithic proposal misses.
  int proposal_chunks = 2;
  // Additional random-exploration chunks per tensor (random elements with
  // random ±1), which keep calibration progressing where the BF net is
  // uninformative. Set 0 to use pure BF proposals.
  int explore_chunks = 2;
  int explore_chunk_size = 32;
  // Proposals are validated on at most this many calibration rows (sampled
  // per round); 0 = always the full pool. Subsampling saves time but lets
  // accepted flips drift away from the full-pool optimum, so the cap should
  // cover most of the pool (QCore 30 + stream batch).
  int trial_rows = 64;

  // Step applied per predicted flip direction. A single code step at fine
  // precisions (1/127 of the range at 8 bits) moves the loss by less than
  // the acceptance test can resolve, so the ternary {-1,0,+1} *direction*
  // is scaled to roughly a 4-bit-equivalent magnitude. Documented deviation
  // (DESIGN.md): the paper fixes updates to one unit at every bit-width.
  static int StepFor(const QuantParams& qp) {
    return std::max(1, (qp.qmax + 3) / 7);
  }
};

// Applies one flip round using the activation caches left by the most recent
// training-mode forward pass of qm->model(). Proposals are validated against
// (x, labels); returns the cross-entropy after the round. `rng` drives the
// exploration proposals.
float BitFlipIterationFromCaches(QuantizedModel* qm, BitFlipNet* bf,
                                 const Tensor& x,
                                 const std::vector<int>& labels,
                                 const BitFlipCalibrateOptions& options,
                                 Rng* rng);

// Full loop: for each iteration, forwards `x` (training mode, BatchNorm
// frozen) to populate caches, then proposes and validates flips.
void BitFlipCalibrate(QuantizedModel* qm, BitFlipNet* bf, const Tensor& x,
                      const std::vector<int>& labels,
                      const BitFlipCalibrateOptions& options, Rng* rng);

}  // namespace qcore

#endif  // QCORE_CORE_BITFLIP_H_
