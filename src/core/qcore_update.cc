#include "core/qcore_update.h"

#include <algorithm>

#include "core/quant_miss.h"
#include "nn/training.h"

namespace qcore {

Dataset MakeUpdatePool(const Dataset& qcore, const Dataset& batch, Rng* rng) {
  QCORE_CHECK(rng != nullptr);
  QCORE_CHECK(!qcore.empty());
  if (batch.empty()) return qcore;
  // Algorithm 4 line 4 scales D'_c to exactly |D_t|: replicate when the
  // QCore is smaller, subsample when it is larger. The pool is therefore
  // always balanced between retained and incoming knowledge, independent of
  // the QCore size.
  Dataset scaled =
      qcore.size() <= batch.size()
          ? qcore.ReplicateTo(batch.size(), rng)
          : qcore.Subset(rng->SampleWithoutReplacement(qcore.size(),
                                                       batch.size()));
  return Dataset::Concat(scaled, batch);
}

Dataset ResampleQCore(const Dataset& pool, const std::vector<int>& misses,
                      int size, Rng* rng) {
  QCORE_CHECK(rng != nullptr);
  QCORE_CHECK_EQ(static_cast<int>(misses.size()), pool.size());
  if (size <= pool.size()) {
    return pool.Subset(SampleByMissDistribution(misses, size, rng));
  }
  // QCore larger than the update pool (big memory budget, small stream
  // batches): keep the whole pool and top up with uniform duplicates.
  std::vector<int> indices(static_cast<size_t>(pool.size()));
  for (int i = 0; i < pool.size(); ++i) indices[static_cast<size_t>(i)] = i;
  for (int i = pool.size(); i < size; ++i) {
    indices.push_back(rng->NextInt(0, pool.size() - 1));
  }
  return pool.Subset(indices);
}

Dataset UpdateQCore(QuantizedModel* qm, const Dataset& qcore,
                    const Dataset& batch, const QCoreUpdateOptions& options,
                    Rng* rng) {
  QCORE_CHECK(qm != nullptr && rng != nullptr);
  QCORE_CHECK_GT(options.epochs, 0);
  const Dataset pool = MakeUpdatePool(qcore, batch, rng);
  QuantMissTracker tracker(pool.size(), 1);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    const std::vector<int> preds = Predict(qm->model(), pool.x());
    std::vector<bool> correct(static_cast<size_t>(pool.size()));
    for (int i = 0; i < pool.size(); ++i) {
      correct[static_cast<size_t>(i)] =
          preds[static_cast<size_t>(i)] ==
          pool.labels()[static_cast<size_t>(i)];
    }
    tracker.ObserveAll(0, correct);
  }
  return ResampleQCore(pool, tracker.misses(0), qcore.size(), rng);
}

}  // namespace qcore
