#include "core/pipeline.h"

#include "nn/training.h"
#include "quant/ste_calibrator.h"

namespace qcore {

namespace {

PipelineResult StreamPhase(QuantizedModel* qm, BitFlipNet* bf,
                           const Dataset& qcore, const Dataset& target_stream,
                           const Dataset& target_test,
                           const PipelineOptions& options, Rng* rng) {
  PipelineResult result;
  std::vector<Dataset> batches =
      SplitIntoStreamBatches(target_stream, options.stream_batches, rng);
  std::vector<Dataset> test_slices =
      SplitIntoStreamBatches(target_test, options.stream_batches, rng);

  ContinualDriver driver(qm, bf, qcore, options.continual, rng);
  result.per_batch = driver.RunStream(batches, test_slices);
  result.average_accuracy = AverageAccuracy(result.per_batch);
  for (const auto& s : result.per_batch) {
    result.total_calibration_seconds += s.calibration_seconds;
  }
  result.seconds_per_calibration =
      result.total_calibration_seconds /
      static_cast<double>(result.per_batch.size());
  return result;
}

}  // namespace

PipelineResult RunQCorePipeline(Sequential* fp_model,
                                const Dataset& source_train,
                                const Dataset& source_test,
                                const Dataset& target_stream,
                                const Dataset& target_test,
                                const PipelineOptions& options, Rng* rng) {
  QCORE_CHECK(fp_model != nullptr && rng != nullptr);

  // Phase 1 (server): FP training + QCore construction (Algorithm 1).
  QCoreBuildResult build =
      BuildQCore(fp_model, source_train, options.build, rng);

  // Phase 2 (server): quantization + initial calibration with BP, during
  // which the bit-flipping network is trained (Algorithm 2).
  QuantizedModel qm(*fp_model, options.bits);
  BitFlipNet bf = TrainBitFlipNet(&qm, build.qcore, options.bf_train, rng);

  float source_acc = 0.0f;
  if (!source_test.empty()) {
    source_acc =
        QuantizedAccuracy(&qm, source_test.x(), source_test.labels());
  }

  // Phase 3 (edge): drop full-precision masters and stream.
  qm.DropShadows();
  PipelineResult result = StreamPhase(&qm, &bf, build.qcore, target_stream,
                                      target_test, options, rng);
  result.qcore_indices = build.indices;
  result.info_loss = build.info_loss;
  result.post_calibration_source_accuracy = source_acc;
  return result;
}

PipelineResult RunPipelineWithSubset(Sequential* fp_model,
                                     const Dataset& subset,
                                     const Dataset& target_stream,
                                     const Dataset& target_test,
                                     const PipelineOptions& options,
                                     Rng* rng) {
  QCORE_CHECK(fp_model != nullptr && rng != nullptr);
  QuantizedModel qm(*fp_model, options.bits);
  BitFlipNet bf = TrainBitFlipNet(&qm, subset, options.bf_train, rng);
  qm.DropShadows();
  return StreamPhase(&qm, &bf, subset, target_stream, target_test, options,
                     rng);
}

}  // namespace qcore
