#include "core/bitflip.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "tensor/tensor_ops.h"

namespace qcore {

namespace {

// Mean and standard deviation of the activation per input unit of the layer
// owning `qt`: per input feature for Dense, per input channel for
// convolutions. Also returns the mean absolute activation as a normalizer.
void InputActivationStats(const QuantizedModel::QuantizedTensor& qt,
                          std::vector<float>* a_mean, std::vector<float>* a_std,
                          float* a_scale) {
  const Tensor* input = qt.owner->cached_input();
  QCORE_CHECK_MSG(input != nullptr,
                  "bit-flip features require a training-mode forward pass");
  const Tensor& x = *input;
  const int weight_ndim = qt.param->value.ndim();
  int64_t units = 0;
  if (weight_ndim == 2) {
    // Dense weight [out, in], input [N, in].
    QCORE_CHECK_EQ(x.ndim(), 2);
    units = x.dim(1);
  } else {
    // Conv weight [F, C, K(, K)], input [N, C, spatial...].
    QCORE_CHECK_GE(x.ndim(), 3);
    units = x.dim(1);
  }
  a_mean->assign(static_cast<size_t>(units), 0.0f);
  a_std->assign(static_cast<size_t>(units), 0.0f);
  std::vector<double> sum(static_cast<size_t>(units), 0.0);
  std::vector<double> sum_sq(static_cast<size_t>(units), 0.0);
  const int64_t n = x.dim(0);
  double abs_sum = 0.0;
  int64_t spatial = 1;
  if (weight_ndim != 2) {
    for (int d = 2; d < x.ndim(); ++d) spatial *= x.dim(d);
  }
  const float* px = x.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t u = 0; u < units; ++u) {
      const float* row = px + (i * units + u) * spatial;
      for (int64_t t = 0; t < spatial; ++t) {
        sum[static_cast<size_t>(u)] += row[t];
        sum_sq[static_cast<size_t>(u)] +=
            static_cast<double>(row[t]) * row[t];
        abs_sum += std::fabs(row[t]);
      }
    }
  }
  const double count = static_cast<double>(n * spatial);
  for (int64_t u = 0; u < units; ++u) {
    const double mean = sum[static_cast<size_t>(u)] / count;
    const double var =
        std::max(0.0, sum_sq[static_cast<size_t>(u)] / count - mean * mean);
    (*a_mean)[static_cast<size_t>(u)] = static_cast<float>(mean);
    (*a_std)[static_cast<size_t>(u)] = static_cast<float>(std::sqrt(var));
  }
  *a_scale = static_cast<float>(abs_sum / static_cast<double>(x.size())) +
             1e-6f;
}

// Input unit (feature/channel) of weight element `e`.
int64_t InputUnitOfElement(const Tensor& weight, int64_t e) {
  if (weight.ndim() == 2) {
    return e % weight.dim(1);
  }
  // [F, C, K] or [F, C, K, K]: strip the kernel dims, take the C axis.
  int64_t kernel = 1;
  for (int d = 2; d < weight.ndim(); ++d) kernel *= weight.dim(d);
  return (e / kernel) % weight.dim(1);
}

}  // namespace

Tensor ComputeBitFlipFeatures(const QuantizedModel::QuantizedTensor& qt,
                              const std::vector<int32_t>* code_override) {
  const std::vector<int32_t>& codes =
      code_override != nullptr ? *code_override : qt.codes;
  QCORE_CHECK_EQ(codes.size(), qt.codes.size());

  std::vector<float> a_mean, a_std;
  float a_scale = 1.0f;
  InputActivationStats(qt, &a_mean, &a_std, &a_scale);

  const int64_t count = static_cast<int64_t>(codes.size());
  Tensor features({count, kBitFlipFeatureDim});
  float* pf = features.data();
  const float inv_qmax = 1.0f / static_cast<float>(qt.qp.qmax);
  const float inv_scale = 1.0f / a_scale;
  for (int64_t e = 0; e < count; ++e) {
    const int64_t unit = InputUnitOfElement(qt.param->value, e);
    const float am = a_mean[static_cast<size_t>(unit)];
    const float as = a_std[static_cast<size_t>(unit)];
    const float w = DequantizeValue(codes[static_cast<size_t>(e)], qt.qp);
    float* row = pf + e * kBitFlipFeatureDim;
    row[0] = (w * am - am) * inv_scale;         // delta-a (Alg. 2 line 9)
    row[1] = am * inv_scale;                    // normalized activation mean
    row[2] = as * inv_scale;                    // normalized activation spread
    row[3] = static_cast<float>(codes[static_cast<size_t>(e)]) * inv_qmax;
    row[4] = w * am * inv_scale;                // weighted activation
    row[5] = std::fabs(am) * inv_scale;         // activation magnitude
  }
  return features;
}

// ---------------------------------------------------------------------------
// BitFlipNet
// ---------------------------------------------------------------------------

BitFlipNet::BitFlipNet(int bits, Rng* rng) : bits_(bits) {
  QCORE_CHECK(rng != nullptr);
  QCORE_CHECK_GE(bits, 2);
  float_net_ = std::make_unique<Sequential>();
  // [N, 1, kFeatureDim] -> conv -> [N, 4, kFeatureDim] -> dense head.
  float_net_->Add(std::make_unique<Conv1d>(1, 4, 3, 1, 1, rng));
  float_net_->Add(std::make_unique<Relu>());
  float_net_->Add(std::make_unique<Flatten>());
  float_net_->Add(
      std::make_unique<Dense>(4 * kBitFlipFeatureDim, 3, rng));
}

int64_t BitFlipNet::ParamCount() { return CountParams(float_net_.get()); }

BitFlipNet BitFlipNet::Clone() const {
  BitFlipNet copy;
  copy.bits_ = bits_;
  if (float_net_ != nullptr) {
    copy.float_net_ = std::unique_ptr<Sequential>(
        static_cast<Sequential*>(float_net_->Clone().release()));
  }
  if (quantized_ != nullptr) copy.quantized_ = quantized_->Clone();
  return copy;
}

float BitFlipNet::Train(const Tensor& features, const std::vector<int>& labels,
                        const TrainOptions& options, Rng* rng) {
  QCORE_CHECK_EQ(features.ndim(), 2);
  QCORE_CHECK_EQ(features.dim(1), kBitFlipFeatureDim);
  QCORE_CHECK_MSG(quantized_ == nullptr, "Train after Quantize");
  Tensor x = features.Reshape({features.dim(0), 1, kBitFlipFeatureDim});
  return TrainClassifier(float_net_.get(), x, labels, options, rng);
}

void BitFlipNet::Quantize() {
  QCORE_CHECK_MSG(quantized_ == nullptr, "already quantized");
  quantized_ = std::make_unique<QuantizedModel>(*float_net_, bits_);
  quantized_->DropShadows();  // edge form: inference only
}

void BitFlipNet::Predict(const Tensor& features, std::vector<int>* deltas,
                         std::vector<float>* confidences) {
  QCORE_CHECK(deltas != nullptr && confidences != nullptr);
  QCORE_CHECK_EQ(features.ndim(), 2);
  QCORE_CHECK_EQ(features.dim(1), kBitFlipFeatureDim);
  Layer* net =
      quantized_ != nullptr ? quantized_->model() : float_net_.get();
  Tensor x = features.Reshape({features.dim(0), 1, kBitFlipFeatureDim});
  Tensor logits = net->Forward(x, /*training=*/false);
  Tensor probs = SoftmaxRows(logits);
  const int64_t n = probs.dim(0);
  deltas->resize(static_cast<size_t>(n));
  confidences->resize(static_cast<size_t>(n));
  const float* pp = probs.data();
  for (int64_t i = 0; i < n; ++i) {
    const float* row = pp + i * 3;
    int best = 0;
    for (int k = 1; k < 3; ++k) {
      if (row[k] > row[best]) best = k;
    }
    (*deltas)[static_cast<size_t>(i)] = best - 1;
    (*confidences)[static_cast<size_t>(i)] = row[best];
  }
}

// ---------------------------------------------------------------------------
// Algorithm 2: supervision collection + training
// ---------------------------------------------------------------------------

BitFlipNet TrainBitFlipNet(QuantizedModel* qm, const Dataset& qcore,
                           const BitFlipTrainOptions& options, Rng* rng) {
  QCORE_CHECK(qm != nullptr && rng != nullptr);
  QCORE_CHECK(!qcore.empty());

  std::vector<std::vector<float>> rows;   // feature rows
  std::vector<int> labels;                // delta + 1

  Rng sample_rng = rng->Split();
  SteStepObserver observer = [&](const SteStepInfo& info) {
    // Features are computed at the *pre-update* codes; the label is the code
    // delta the BP step produced (Alg. 2 lines 9-11).
    for (int t = 0; t < info.model->num_quantized(); ++t) {
      const auto& qt = info.model->quantized(t);
      const std::vector<int32_t>& prev =
          (*info.prev_codes)[static_cast<size_t>(t)];
      Tensor features = ComputeBitFlipFeatures(qt, &prev);
      const int64_t count = features.dim(0);
      // Subsample rows to bound the training set size.
      const int keep = static_cast<int>(std::min<int64_t>(
          count, std::max<int64_t>(
                     1, options.max_samples_per_step /
                            std::max(1, info.model->num_quantized()))));
      std::vector<int> pick = sample_rng.SampleWithoutReplacement(
          static_cast<int>(count), keep);
      const float* pf = features.data();
      for (int e : pick) {
        int delta = qt.codes[static_cast<size_t>(e)] -
                    prev[static_cast<size_t>(e)];
        delta = std::clamp(delta, -1, 1);
        rows.emplace_back(pf + e * kBitFlipFeatureDim,
                          pf + (e + 1) * kBitFlipFeatureDim);
        labels.push_back(delta + 1);
      }
    }
  };

  // Snapshot the pre-calibration state so augmented episodes re-experience
  // the repair of a freshly perturbed model.
  std::unique_ptr<QuantizedModel> snapshot =
      options.augment_episodes > 0 ? qm->Clone() : nullptr;

  // Episode 0: the real initial calibration of the deployed model.
  SteCalibrate(qm, qcore.x(), qcore.labels(), options.ste, rng, observer);

  // Augmented episodes: BP repairing the model under synthetic domain shift.
  for (int ep = 0; ep < options.augment_episodes; ++ep) {
    std::unique_ptr<QuantizedModel> episode_model = snapshot->Clone();
    Dataset shifted = AugmentDomain(qcore, options.augment_strength, rng);
    SteCalibrate(episode_model.get(), shifted.x(), shifted.labels(),
                 options.ste, rng, observer);
  }
  QCORE_CHECK(!rows.empty());

  // Rebalance: "no change" dominates; keep at most zero_keep_ratio x the
  // number of actual flips (but never fewer than the flips themselves).
  std::vector<size_t> zero_rows, flip_rows;
  for (size_t i = 0; i < labels.size(); ++i) {
    (labels[i] == 1 ? zero_rows : flip_rows).push_back(i);
  }
  size_t keep_zeros = static_cast<size_t>(
      options.zero_keep_ratio * static_cast<float>(flip_rows.size()));
  keep_zeros = std::max<size_t>(keep_zeros, 16);
  keep_zeros = std::min(keep_zeros, zero_rows.size());
  std::vector<size_t> selected = flip_rows;
  {
    std::vector<int> pick = sample_rng.SampleWithoutReplacement(
        static_cast<int>(zero_rows.size()), static_cast<int>(keep_zeros));
    for (int p : pick) selected.push_back(zero_rows[static_cast<size_t>(p)]);
  }

  Tensor features({static_cast<int64_t>(selected.size()),
                   kBitFlipFeatureDim});
  std::vector<int> selected_labels(selected.size());
  float* pf = features.data();
  for (size_t i = 0; i < selected.size(); ++i) {
    const std::vector<float>& row = rows[selected[i]];
    std::copy(row.begin(), row.end(), pf + i * kBitFlipFeatureDim);
    selected_labels[i] = labels[selected[i]];
  }

  BitFlipNet bf(qm->bits(), rng);
  bf.Train(features, selected_labels, options.bf_train, rng);
  bf.Quantize();
  return bf;
}

// ---------------------------------------------------------------------------
// Algorithm 3: inference-only calibration
// ---------------------------------------------------------------------------

namespace {

// Cross-entropy of the model on (x, labels), inference only.
float InferenceLoss(QuantizedModel* qm, const Tensor& x,
                    const std::vector<int>& labels) {
  SoftmaxCrossEntropy ce;
  Tensor logits = qm->model()->Forward(x, /*training=*/false);
  return ce.Forward(logits, labels);
}

}  // namespace

namespace {

// Applies one proposal (element -> delta) to tensor t, validates it with an
// inference pass, and reverts on failure. Returns the (possibly updated)
// loss.
float TryProposal(QuantizedModel* qm, int t,
                  const std::vector<std::pair<int64_t, int>>& proposal,
                  float current_loss, const Tensor& x,
                  const std::vector<int>& labels) {
  if (proposal.empty()) return current_loss;
  const std::vector<int32_t> saved_codes = qm->quantized(t).codes;
  for (const auto& [e, delta] : proposal) {
    qm->ApplyCodeDelta(t, e, delta);
  }
  const float trial_loss = InferenceLoss(qm, x, labels);
  if (trial_loss < current_loss) return trial_loss;
  qm->quantized(t).codes = saved_codes;
  qm->SyncParamFromCodes(t);
  return current_loss;
}

}  // namespace

float BitFlipIterationFromCaches(QuantizedModel* qm, BitFlipNet* bf,
                                 const Tensor& x,
                                 const std::vector<int>& labels,
                                 const BitFlipCalibrateOptions& options,
                                 Rng* rng) {
  QCORE_CHECK(qm != nullptr && bf != nullptr && rng != nullptr);
  Rng& explore_rng = *rng;

  // Bound the trial-evaluation cost: validate proposals on a per-round
  // subsample of the calibration rows.
  Tensor trial_x = x;
  std::vector<int> trial_labels = labels;
  if (options.trial_rows > 0 &&
      x.dim(0) > static_cast<int64_t>(options.trial_rows)) {
    const std::vector<int> pick = explore_rng.SampleWithoutReplacement(
        static_cast<int>(x.dim(0)), options.trial_rows);
    trial_x = x.GatherRows(pick);
    trial_labels.resize(pick.size());
    for (size_t i = 0; i < pick.size(); ++i) {
      trial_labels[i] = labels[static_cast<size_t>(pick[i])];
    }
  }
  const Tensor& eval_x = trial_x;
  const std::vector<int>& eval_labels = trial_labels;
  float current_loss = InferenceLoss(qm, eval_x, eval_labels);
  for (int t = 0; t < qm->num_quantized(); ++t) {
    const auto& qt = qm->quantized(t);
    const int64_t num_elements = static_cast<int64_t>(qt.codes.size());
    Tensor features = ComputeBitFlipFeatures(qt, nullptr);
    std::vector<int> deltas;
    std::vector<float> confidences;
    bf->Predict(features, &deltas, &confidences);

    // Confident non-zero predictions, strongest first, capped per tensor.
    std::vector<int64_t> candidates;
    for (int64_t e = 0; e < num_elements; ++e) {
      if (deltas[static_cast<size_t>(e)] != 0 &&
          confidences[static_cast<size_t>(e)] >=
              options.confidence_threshold) {
        candidates.push_back(e);
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](int64_t a, int64_t b) {
                return confidences[static_cast<size_t>(a)] >
                       confidences[static_cast<size_t>(b)];
              });
    const size_t cap = static_cast<size_t>(
        options.max_flip_fraction * static_cast<float>(num_elements));
    if (candidates.size() > cap) candidates.resize(cap);

    // BF-guided proposals, validated chunk by chunk. The ternary direction
    // is scaled to a precision-appropriate step (see StepFor).
    const int step = BitFlipCalibrateOptions::StepFor(qt.qp);
    if (!candidates.empty() && options.proposal_chunks > 0) {
      const size_t chunk_size =
          (candidates.size() + options.proposal_chunks - 1) /
          options.proposal_chunks;
      for (size_t start = 0; start < candidates.size(); start += chunk_size) {
        const size_t end =
            std::min(candidates.size(), start + chunk_size);
        std::vector<std::pair<int64_t, int>> proposal;
        proposal.reserve(end - start);
        for (size_t i = start; i < end; ++i) {
          proposal.push_back(
              {candidates[i],
               step * deltas[static_cast<size_t>(candidates[i])]});
        }
        current_loss =
            TryProposal(qm, t, proposal, current_loss, eval_x, eval_labels);
      }
    }

    // Exploration proposals: random elements, random direction. These keep
    // the inference-only search progressing when the learned predictor is
    // uninformative for the current domain shift.
    for (int p = 0; p < options.explore_chunks; ++p) {
      const int take = static_cast<int>(std::min<int64_t>(
          options.explore_chunk_size, num_elements));
      std::vector<int> pick = explore_rng.SampleWithoutReplacement(
          static_cast<int>(num_elements), take);
      std::vector<std::pair<int64_t, int>> proposal;
      proposal.reserve(pick.size());
      for (int e : pick) {
        proposal.push_back({e, explore_rng.NextBool(0.5) ? step : -step});
      }
      current_loss =
          TryProposal(qm, t, proposal, current_loss, eval_x, eval_labels);
    }
  }
  return current_loss;
}

void BitFlipCalibrate(QuantizedModel* qm, BitFlipNet* bf, const Tensor& x,
                      const std::vector<int>& labels,
                      const BitFlipCalibrateOptions& options, Rng* rng) {
  QCORE_CHECK(qm != nullptr && bf != nullptr && rng != nullptr);
  QCORE_CHECK_GT(options.iterations, 0);
  SetBatchNormFrozen(qm->model(), true);
  for (int it = 0; it < options.iterations; ++it) {
    // Training-mode forward populates the activation caches the features
    // need; with BN frozen the outputs equal eval-mode outputs.
    (void)qm->model()->Forward(x, /*training=*/true);
    BitFlipIterationFromCaches(qm, bf, x, labels, options, rng);
  }
  SetBatchNormFrozen(qm->model(), false);
}

}  // namespace qcore
