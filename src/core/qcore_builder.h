// QCore generation (paper Algorithm 1): trains the full-precision model
// while, at every epoch, temporarily quantizing it at each target bit-width
// and recording quantization misses over the whole training set. The
// resulting miss distribution(s) drive stratified sampling of the compressed
// calibration subset.
#ifndef QCORE_CORE_QCORE_BUILDER_H_
#define QCORE_CORE_QCORE_BUILDER_H_

#include <map>
#include <vector>

#include "data/dataset.h"
#include "nn/composite.h"
#include "nn/training.h"

namespace qcore {

// How the subset's sampling distribution is formed (Table 4 variants).
enum class SubsetStrategy {
  kCombined,       // sum of miss distributions over all bit levels (QCore)
  kSingleLevel,    // distribution of one specific bit level (Core j)
  kFullPrecision,  // misses of the full-precision model itself (Core 32)
  kRandom,         // uniform random subset (Random baseline)
};

struct QCoreBuildOptions {
  // Proxy quantization levels evaluated during training (Algorithm 1 line 8).
  std::vector<int> bit_levels = {2, 4, 8};
  // Subset size |D_c| (paper default 30).
  int size = 30;
  SubsetStrategy strategy = SubsetStrategy::kCombined;
  // For kSingleLevel: which entry of bit_levels to use.
  int single_level_index = 0;
  // Full-precision training configuration (the FP <- Train step, line 6).
  TrainOptions train;
};

struct QCoreBuildResult {
  // Indices into the training set, and the materialized subset.
  std::vector<int> indices;
  Dataset qcore;
  // Per-example miss counts summed over bit levels.
  std::vector<int> combined_misses;
  // Per-level miss counts: bit width -> per-example counts. Key 32 holds the
  // full-precision model's own training misses ("Core 32" in Fig. 8).
  std::map<int, std::vector<int>> per_level_misses;
  // Information loss (Eq. 3) of the selected subset w.r.t. the sampling
  // distribution actually used.
  double info_loss = 0.0;
  // Final-epoch full-precision training loss, for diagnostics.
  float final_train_loss = 0.0f;
};

// Trains `fp_model` on `train_set` per options.train, tracking quantization
// misses, then samples the subset. The model is left in its trained state
// (ready for quantization + calibration).
QCoreBuildResult BuildQCore(Sequential* fp_model, const Dataset& train_set,
                            const QCoreBuildOptions& options, Rng* rng);

}  // namespace qcore

#endif  // QCORE_CORE_QCORE_BUILDER_H_
