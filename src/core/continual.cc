#include "core/continual.h"

#include "common/stopwatch.h"
#include "core/qcore_update.h"
#include "core/quant_miss.h"
#include "nn/batchnorm.h"
#include "nn/training.h"
#include "tensor/tensor_ops.h"

namespace qcore {

ContinualDriver::ContinualDriver(QuantizedModel* qm, BitFlipNet* bf,
                                 Dataset qcore,
                                 const ContinualOptions& options, Rng* rng)
    : qm_(qm), bf_(bf), qcore_(std::move(qcore)), options_(options),
      rng_(rng) {
  QCORE_CHECK(qm_ != nullptr && rng_ != nullptr);
  QCORE_CHECK(!qcore_.empty());
  QCORE_CHECK(bf_ != nullptr || !options_.use_bitflip);
  QCORE_CHECK_GT(options_.iterations, 0);
}

BatchStats ContinualDriver::ProcessBatch(const Dataset& batch,
                                         const Dataset& test_slice) {
  BatchStats stats;
  Stopwatch watch;

  const Dataset pool = MakeUpdatePool(qcore_, batch, rng_);
  QuantMissTracker tracker(pool.size(), 1);

  SetBatchNormFrozen(qm_->model(), true);
  for (int it = 0; it < options_.iterations; ++it) {
    // One forward serves both purposes: its logits feed the miss tracker
    // (Alg. 4 lines 6-9) and its activation caches feed the bit-flip
    // features (Alg. 3 line 6). With BN frozen, training-mode outputs equal
    // eval-mode outputs.
    Tensor logits = qm_->model()->Forward(pool.x(), /*training=*/true);
    const std::vector<int> preds = ArgMaxRows(logits);
    std::vector<bool> correct(static_cast<size_t>(pool.size()));
    for (int i = 0; i < pool.size(); ++i) {
      correct[static_cast<size_t>(i)] =
          preds[static_cast<size_t>(i)] ==
          pool.labels()[static_cast<size_t>(i)];
    }
    tracker.ObserveAll(0, correct);

    if (options_.use_bitflip) {
      BitFlipIterationFromCaches(qm_, bf_, pool.x(), pool.labels(),
                                 options_.bf, rng_);
    }
  }
  SetBatchNormFrozen(qm_->model(), false);

  if (options_.use_qcore_update) {
    Dataset updated =
        ResampleQCore(pool, tracker.misses(0), qcore_.size(), rng_);
    stats.qcore_changed = updated.size();
    qcore_ = std::move(updated);
  }
  stats.calibration_seconds = watch.ElapsedSeconds();

  if (!test_slice.empty()) {
    stats.accuracy = EvaluateAccuracy(qm_->model(), test_slice.x(),
                                      test_slice.labels());
  }
  return stats;
}

std::vector<BatchStats> ContinualDriver::RunStream(
    const std::vector<Dataset>& batches,
    const std::vector<Dataset>& test_slices) {
  QCORE_CHECK_EQ(batches.size(), test_slices.size());
  std::vector<BatchStats> out;
  out.reserve(batches.size());
  for (size_t b = 0; b < batches.size(); ++b) {
    out.push_back(ProcessBatch(batches[b], test_slices[b]));
  }
  return out;
}

float AverageAccuracy(const std::vector<BatchStats>& stats) {
  if (stats.empty()) return 0.0f;
  double sum = 0.0;
  for (const auto& s : stats) sum += s.accuracy;
  return static_cast<float>(sum / static_cast<double>(stats.size()));
}

}  // namespace qcore
