// QCore update (paper Algorithm 4): when a stream batch arrives, the current
// QCore is scaled up to the batch size, combined with the batch, and a new
// fixed-size QCore is resampled according to the quantization misses
// observed while the model calibrates. This keeps old and new knowledge in
// one stable-sized structure — no separate rehearsal buffer.
#ifndef QCORE_CORE_QCORE_UPDATE_H_
#define QCORE_CORE_QCORE_UPDATE_H_

#include <vector>

#include "data/dataset.h"
#include "quant/quantized_model.h"

namespace qcore {

// Builds the update pool D'_c ∪ D_t of Algorithm 4 line 4: the QCore
// replicated to (at least) the stream batch size, concatenated with the
// batch.
Dataset MakeUpdatePool(const Dataset& qcore, const Dataset& batch, Rng* rng);

// Resamples a QCore of `size` examples from `pool`, stratified by the given
// per-example miss counts (Algorithm 4 lines 11-12).
Dataset ResampleQCore(const Dataset& pool, const std::vector<int>& misses,
                      int size, Rng* rng);

// Standalone Algorithm 4 (no bit-flip interleaving): runs `epochs` inference
// passes of `qm` over the pool, counting quantization misses, and resamples
// a QCore of qcore.size(). The continual driver uses the interleaved form;
// this variant supports isolated testing and the NoBF ablation.
struct QCoreUpdateOptions {
  int epochs = 3;
};

Dataset UpdateQCore(QuantizedModel* qm, const Dataset& qcore,
                    const Dataset& batch, const QCoreUpdateOptions& options,
                    Rng* rng);

}  // namespace qcore

#endif  // QCORE_CORE_QCORE_UPDATE_H_
