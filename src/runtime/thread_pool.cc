#include "runtime/thread_pool.h"

namespace qcore {

ThreadPool::ThreadPool(int num_threads) {
  QCORE_CHECK(num_threads >= 0);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Schedule(std::function<void()> task, TaskPriority priority) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Scheduling during shutdown is allowed: workers only exit once both
    // queues are empty, so tasks enqueued by in-flight tasks still drain
    // before the destructor's join returns.
    (priority == TaskPriority::kHigh ? high_ : low_).push_back(
        std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this]() { return !HasWork() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this]() { return shutdown_ || HasWork(); });
      if (!HasWork()) return;  // shutdown with drained queues
      std::deque<std::function<void()>>& q = high_.empty() ? low_ : high_;
      task = std::move(q.front());
      q.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (!HasWork() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace qcore
