#include "runtime/thread_pool.h"

#include "testing/fault_injector.h"

namespace qcore {

ThreadPool::ThreadPool(const ThreadPoolOptions& options)
    : aging_us_(options.aging_us) {
  QCORE_CHECK(options.num_threads >= 0);
  workers_.reserve(static_cast<size_t>(options.num_threads));
  for (int i = 0; i < options.num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Schedule(std::function<void()> task, TaskPriority priority) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    MutexLock lock(mu_);
    // Scheduling during shutdown is allowed: workers only exit once both
    // queues are empty, so tasks enqueued by in-flight tasks still drain
    // before the destructor's join returns.
    if (priority == TaskPriority::kHigh) {
      high_.push_back(std::move(task));
    } else {
      low_.push_back(LowTask{std::move(task), Clock::now()});
    }
  }
  work_available_.NotifyOne();
}

void ThreadPool::WaitIdle() {
  if (workers_.empty()) return;
  MutexLock lock(mu_);
  idle_.Wait(mu_, [this]() {
    mu_.AssertHeld();
    return !HasWork() && active_ == 0;
  });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      work_available_.Wait(mu_, [this]() {
        mu_.AssertHeld();
        return shutdown_ || HasWork();
      });
      if (!HasWork()) return;  // shutdown with drained queues
      // Dispatch policy: high first, except when the low queue's head has
      // aged past the threshold — then it goes ahead (the anti-starvation
      // promotion). FIFO within each queue means checking only the head is
      // enough: it is always the oldest low task.
      bool take_low = high_.empty();
      if (!take_low && aging_us_ > 0 && !low_.empty()) {
        const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - low_.front().enqueued);
        if (static_cast<uint64_t>(waited.count()) >= aging_us_) {
          take_low = true;
          aged_promotions_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (take_low) {
        task = std::move(low_.front().fn);
        low_.pop_front();
      } else {
        task = std::move(high_.front());
        high_.pop_front();
      }
      ++active_;
    }
    uint64_t stall_us = 0;
    if (MaybeFault(FaultPoint::kPoolSaturation, &stall_us)) {
      std::this_thread::sleep_for(std::chrono::microseconds(stall_us));
    }
    task();
    {
      MutexLock lock(mu_);
      --active_;
      if (!HasWork() && active_ == 0) idle_.NotifyAll();
    }
  }
}

}  // namespace qcore
