#include "runtime/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace qcore {
namespace {

constexpr int kMaxHelpers = 15;  // caller + helpers <= 16 threads

thread_local bool tls_in_parallel_region = false;

std::atomic<uint64_t> g_wide_calls{0};
std::atomic<uint64_t> g_inline_calls{0};
std::atomic<uint64_t> g_nested_calls{0};
std::atomic<uint64_t> g_busy_calls{0};
std::atomic<uint64_t> g_tasks_run{0};

// The process-wide helper set. One region at a time (region_mu_); helpers
// park on job_ready_ between regions and claim tasks from an atomic cursor
// while engaged. All job state hand-off happens under mu_: a helper's
// engagement (read generation_/body_, increment helpers_running_) and its
// check-out (decrement, notify) are single critical sections, and the
// caller's teardown (wait for helpers_running_ == 0, then clear body_ and
// zero engage_budget_) runs in one critical section too — so a late-waking
// helper can never observe a dangling body: either it engages before the
// teardown (the caller then waits for it) or it finds engage_budget_ == 0
// and goes back to sleep.
class PanelWorkerSet {
 public:
  static PanelWorkerSet& Instance() {
    static PanelWorkerSet* set = new PanelWorkerSet();  // never destroyed:
    // helpers may outlive main()'s static teardown in detached-exit paths,
    // and an intentionally-leaked singleton sidesteps join-at-exit ordering.
    return *set;
  }

  // Runs the region, caller participating, with up to helpers_wanted
  // helpers. Returns false without blocking if another region is in
  // flight (the caller must then run the loop itself).
  bool TryRun(int64_t num_tasks, int helpers_wanted,
              const std::function<void(int64_t)>& body) {
    if (!region_mu_.TryLock()) return false;
    {
      MutexLock lock(mu_);
      EnsureHelpers(helpers_wanted);
      helpers_wanted =
          std::min<int>(helpers_wanted, static_cast<int>(helpers_.size()));
      body_ = &body;
      total_ = num_tasks;
      next_.store(0, std::memory_order_relaxed);
      engage_budget_ = helpers_wanted;
      ++generation_;
      job_ready_.NotifyAll();
    }
    Drain(body, num_tasks);  // caller participates; never parks
    {
      MutexLock lock(mu_);
      job_done_.Wait(mu_, [this] {
        mu_.AssertHeld();
        return helpers_running_ == 0;
      });
      // Still inside the same critical section as the final predicate
      // evaluation: neutralize the job before any sleeping helper can
      // engage it.
      engage_budget_ = 0;
      body_ = nullptr;
      total_ = 0;
    }
    region_mu_.Unlock();
    return true;
  }

 private:
  PanelWorkerSet() = default;

  void EnsureHelpers(int count) QCORE_REQUIRES(mu_) {
    count = std::min(count, kMaxHelpers);
    while (static_cast<int>(helpers_.size()) < count) {
      helpers_.emplace_back([this] { HelperLoop(); });
    }
  }

  void HelperLoop() {
    uint64_t seen_generation = 0;
    MutexLock lock(mu_);
    for (;;) {
      job_ready_.Wait(mu_, [this, seen_generation] {
        mu_.AssertHeld();
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      if (engage_budget_ == 0) continue;  // job already torn down (or full)
      --engage_budget_;
      ++helpers_running_;
      const std::function<void(int64_t)>* body = body_;
      const int64_t total = total_;
      lock.Unlock();
      Drain(*body, total);
      lock.Lock();
      if (--helpers_running_ == 0) job_done_.NotifyAll();
      // mu_ stays held from this check-out through the next Wait, so the
      // caller's teardown cannot interleave between them.
    }
  }

  // Claims tasks until the cursor passes total. Runs on the caller and on
  // every engaged helper; the relaxed fetch_add hands out each index
  // exactly once, and bodies write disjoint outputs, so execution order
  // across threads never affects results.
  void Drain(const std::function<void(int64_t)>& body, int64_t total) {
    const bool saved = tls_in_parallel_region;
    tls_in_parallel_region = true;
    for (;;) {
      const int64_t t = next_.fetch_add(1, std::memory_order_relaxed);
      if (t >= total) break;
      body(t);
    }
    tls_in_parallel_region = saved;
  }

  // Serializes regions. TryLock-only from TryRun: a busy set must never
  // block a submitting thread (the nested-parallelism contract).
  Mutex region_mu_;

  Mutex mu_;
  CondVar job_ready_;
  CondVar job_done_;
  const std::function<void(int64_t)>* body_ QCORE_GUARDED_BY(mu_) = nullptr;
  int64_t total_ QCORE_GUARDED_BY(mu_) = 0;
  int engage_budget_ QCORE_GUARDED_BY(mu_) = 0;
  int helpers_running_ QCORE_GUARDED_BY(mu_) = 0;
  uint64_t generation_ QCORE_GUARDED_BY(mu_) = 0;
  bool shutdown_ QCORE_GUARDED_BY(mu_) = false;
  // Task cursor for the current region. Plain atomic (not guarded): the
  // caller resets it before publishing the region under mu_, and claims
  // only need uniqueness, which fetch_add provides on its own.
  std::atomic<int64_t> next_{0};
  // Appended only in EnsureHelpers (under mu_, serialized further by
  // region_mu_); never shrunk. Not read outside that path.
  std::vector<std::thread> helpers_;
};

void RunSequential(int64_t num_tasks,
                   const std::function<void(int64_t)>& body) {
  for (int64_t t = 0; t < num_tasks; ++t) body(t);
}

}  // namespace

ParallelForStats GetParallelForStats() {
  ParallelForStats s;
  s.wide_calls = g_wide_calls.load(std::memory_order_relaxed);
  s.inline_calls = g_inline_calls.load(std::memory_order_relaxed);
  s.nested_calls = g_nested_calls.load(std::memory_order_relaxed);
  s.busy_calls = g_busy_calls.load(std::memory_order_relaxed);
  s.tasks_run = g_tasks_run.load(std::memory_order_relaxed);
  return s;
}

bool InParallelRegion() { return tls_in_parallel_region; }

int DefaultParallelWorkers() {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return 1;
  return static_cast<int>(std::min<unsigned>(hw, 16));
}

void ParallelFor(int64_t num_tasks, int max_threads,
                 const std::function<void(int64_t)>& body) {
  if (num_tasks <= 0) return;
  if (tls_in_parallel_region) {
    // Nested region: run on the current worker. Going wide here could make
    // a helper wait on helpers, which the no-blocking contract forbids.
    g_nested_calls.fetch_add(1, std::memory_order_relaxed);
    RunSequential(num_tasks, body);
    return;
  }
  if (max_threads <= 1 || num_tasks == 1) {
    g_inline_calls.fetch_add(1, std::memory_order_relaxed);
    RunSequential(num_tasks, body);
    return;
  }
  const int helpers = static_cast<int>(std::min<int64_t>(
      {static_cast<int64_t>(max_threads) - 1, num_tasks - 1, kMaxHelpers}));
  if (!PanelWorkerSet::Instance().TryRun(num_tasks, helpers, body)) {
    g_busy_calls.fetch_add(1, std::memory_order_relaxed);
    RunSequential(num_tasks, body);
    return;
  }
  g_wide_calls.fetch_add(1, std::memory_order_relaxed);
  g_tasks_run.fetch_add(static_cast<uint64_t>(num_tasks),
                        std::memory_order_relaxed);
}

}  // namespace qcore
