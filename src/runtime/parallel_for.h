// ParallelFor: the work-stealing-free data-parallel primitive under the
// deterministic multithreaded GEMM (tensor/kernels.cc) and the conv
// im2col/col2im lowering paths.
//
// Model: ParallelFor(n, t, body) runs body(i) exactly once for every
// i in [0, n), across at most t threads. The caller always participates;
// up to t-1 helpers come from a lazily-grown process-wide worker set.
// Tasks are claimed from a shared atomic cursor (no stealing, no
// per-worker deques): which thread runs which task is timing-dependent,
// but callers only pass bodies whose tasks write disjoint outputs with a
// fixed internal operation order, so results are bit-identical for every
// thread count — the kernel layer's determinism contract.
//
// Nested-parallelism contract (what lets serving-pool workers fan a big
// batched forward out across panels without deadlock):
//   * The caller participates in its own region — it never parks waiting
//     for a queue slot, so a ThreadPool worker calling ParallelFor always
//     makes progress through its own tasks.
//   * At most one region is in flight at a time. A second concurrent
//     caller does NOT block on the first: it runs its loop sequentially
//     on its own thread (a TryLock, never a blocking submit). Results are
//     unchanged either way; only wall-clock differs.
//   * A body that itself calls ParallelFor (a nested region, e.g. a
//     parallel GEMM inside a task) runs the inner loop sequentially on
//     the current worker. No helper ever waits on another helper, so the
//     composition device-level pool x panel-level region cannot cycle.
//
// The worker set uses the annotated common/mutex.h wrappers and spawns
// raw std::threads — permitted only here in src/runtime/ (lint rule
// raw-thread); everything above composes ParallelFor or ThreadPool.
#ifndef QCORE_RUNTIME_PARALLEL_FOR_H_
#define QCORE_RUNTIME_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>

namespace qcore {

// Dispatch counters, process-wide since process start. Every ParallelFor
// call lands in exactly one of the four call buckets; tasks_run counts
// body invocations made by wide calls only (helpers + caller).
struct ParallelForStats {
  uint64_t wide_calls = 0;    // fanned out across the worker set
  uint64_t inline_calls = 0;  // <= 1 thread asked for, or a single task
  uint64_t nested_calls = 0;  // called from inside a region: ran sequential
  uint64_t busy_calls = 0;    // another region in flight: ran sequential
  uint64_t tasks_run = 0;     // tasks executed by wide calls
};

ParallelForStats GetParallelForStats();

// True while the current thread is executing a ParallelFor body (caller
// or helper). Nested ParallelFor calls observe this and run sequentially.
bool InParallelRegion();

// Worker count the host can usefully sustain: hardware_concurrency
// clamped to [1, 16]. The kernel layer's default thread budget.
int DefaultParallelWorkers();

// Runs body(i) for every i in [0, num_tasks), on up to max_threads
// threads including the caller. Returns after every task has finished.
// Never blocks on another region (see the contract above); max_threads
// <= 1 or num_tasks <= 1 runs inline. body must be safe to invoke
// concurrently for distinct i.
void ParallelFor(int64_t num_tasks, int max_threads,
                 const std::function<void(int64_t)>& body);

}  // namespace qcore

#endif  // QCORE_RUNTIME_PARALLEL_FOR_H_
