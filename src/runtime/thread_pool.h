// Fixed-size work-queue thread pool: the execution substrate for the fleet
// serving runtime. Tasks are plain std::function<void()> closures pushed
// onto a mutex-guarded two-level FIFO (high = latency-sensitive serving
// work, low = background work such as calibration); workers drain the high
// queue before touching the low one, which is what lets the FleetServer
// keep inference latency flat while calibration backlogs grow under
// overload. Waiting is supported two ways: per-submission futures (Submit)
// and a whole-pool drain (WaitIdle). Note the FleetServer drains via its
// own in-flight count, not WaitIdle — a task can be queued on a session
// before its pump reaches the pool, which WaitIdle cannot see.
//
// Priority aging: strict priority alone starves the low queue under a
// sustained high load. With aging_us > 0, a low task that has waited at
// least aging_us is promoted — the next free worker runs it even though
// high work is queued. Promotion is checked at each dispatch (workers are
// never idle while work is queued, so dispatch frequency bounds the extra
// wait); aged_promotions() counts dispatches that picked an aged low task
// OVER queued high work, the observable progress guarantee the overload
// tests pin. aging_us == 0 restores strict priority exactly.
//
// num_threads == 0 is a supported degenerate mode: tasks run inline on the
// submitting thread. That mode is what makes "per-session results are
// bit-identical to the single-threaded pipeline" testable — the same code
// drives both executions. Priorities are irrelevant in inline mode (there
// is never more than one runnable task), so the guarantee holds there too.
#ifndef QCORE_RUNTIME_THREAD_POOL_H_
#define QCORE_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace qcore {

// Two-level scheduling class. kHigh is ahead of kLow: a worker never starts
// a low task while a high task is queued, unless the low task has aged past
// the pool's aging threshold (see ThreadPoolOptions::aging_us). Within a
// level, order is FIFO. There is no preemption — a running low task
// finishes before the worker returns to the queues.
enum class TaskPriority { kHigh = 0, kLow = 1 };

struct ThreadPoolOptions {
  // Worker count. 0 = inline execution (no threads).
  int num_threads = 0;
  // Low-priority aging threshold in microseconds. A low task that has been
  // queued at least this long is dispatched ahead of queued high work.
  // 0 disables aging (strict priority, the historical behavior).
  uint64_t aging_us = 0;
};

class ThreadPool {
 public:
  // Spawns `num_threads` workers with aging disabled. 0 = inline execution.
  explicit ThreadPool(int num_threads)
      : ThreadPool(ThreadPoolOptions{num_threads, 0}) {}

  explicit ThreadPool(const ThreadPoolOptions& options);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains both queues, then joins all workers.
  ~ThreadPool();

  int num_threads() const { return static_cast<int>(workers_.size()); }
  uint64_t aging_us() const { return aging_us_; }

  // Enqueues a task. Never blocks (unbounded queues); with 0 workers the
  // task runs before Schedule returns.
  void Schedule(std::function<void()> task,
                TaskPriority priority = TaskPriority::kHigh);

  // Enqueues a callable and returns a future for its result.
  template <typename F>
  auto Submit(F&& f, TaskPriority priority = TaskPriority::kHigh)
      -> std::future<decltype(f())> {
    using R = decltype(f());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    Schedule([task]() { (*task)(); }, priority);
    return result;
  }

  // Blocks until both queues are empty and no task is executing. Tasks may
  // schedule further tasks; WaitIdle waits for those too.
  void WaitIdle();

  // Dispatches where an aged low task jumped ahead of queued high work.
  // Stays 0 with aging disabled, and whenever the high queue was empty
  // anyway (ordinary low dispatch, no priority inverted).
  uint64_t aged_promotions() const {
    return aged_promotions_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct LowTask {
    std::function<void()> fn;
    Clock::time_point enqueued;
  };

  void WorkerLoop();
  bool HasWork() const QCORE_REQUIRES(mu_) {
    return !high_.empty() || !low_.empty();
  }

  mutable Mutex mu_;
  CondVar work_available_;
  CondVar idle_;
  std::deque<std::function<void()>> high_ QCORE_GUARDED_BY(mu_);
  std::deque<LowTask> low_ QCORE_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;  // written only in the constructor
  const uint64_t aging_us_;
  std::atomic<uint64_t> aged_promotions_{0};
  int active_ QCORE_GUARDED_BY(mu_) = 0;  // tasks being executed right now
  bool shutdown_ QCORE_GUARDED_BY(mu_) = false;
};

}  // namespace qcore

#endif  // QCORE_RUNTIME_THREAD_POOL_H_
