// Deterministic, seed-driven fault injection for the serving and durability
// planes. Production code is threaded with named FaultPoints (the catalog
// below); each point calls MaybeFault() at the exact moment the fault would
// strike in the wild — before the bytes hit the WAL, between detach and
// attach of a migrating session, inside the batcher's flusher loop.
//
// Cost discipline: with no injector installed, MaybeFault() is a single
// relaxed atomic load against nullptr — no branch history pollution, no
// lock, nothing allocated — so the hooks are safe to leave in release
// builds (tests/chaos_test.cc pins the hot path bit-identical with and
// without an installed-then-uninstalled injector). When an injector IS
// installed, the pointer is re-read with acquire so every armed script
// written before Install() is visible to the faulting thread (TSan-clean).
//
// Scripts are per-point and composable: fire on exactly the Nth hit,
// fire each hit with a seeded-RNG probability, one-shot (default) or
// sticky. Every firing is recorded into the trace plane as a
// TraceKind::kFaultInjected event carrying the point's interned name and
// the script arg, inheriting the current request span — so a chaos run's
// post-mortem shows exactly which request each fault landed on.
#ifndef QCORE_TESTING_FAULT_INJECTOR_H_
#define QCORE_TESTING_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"

namespace qcore {

// The injection-point catalog. Every point names one precise seam in the
// production code (see the README's chaos section for the per-point
// semantics and the invariant each fault family is tested against).
enum class FaultPoint : uint8_t {
  // DurableSnapshotStore::AppendRecord — flip one payload bit in the frame
  // before it is written, so the record lands CRC-broken on disk while the
  // live process keeps serving (silent media rot, caught at next Open).
  kWalAppendBitRot = 0,
  // AppendRecord — write only half the frame, then fail the append, as if
  // the writer died mid-write (torn tail; next Open truncates + counts it).
  kWalTornAppend,
  // AppendRecord — fail before writing anything, as if fsync returned
  // EIO: nothing durable, nothing visible in memory (log-then-apply).
  kWalFsyncFail,
  // AppendRecord — sleep `arg` microseconds before the write (slow disk).
  kWalAppendDelay,
  // DurableSnapshotStore::RewriteSegment — die mid-segment-write: the
  // partial .compact tmp stays on disk, the old log is untouched.
  kWalCompactionCrash,
  // SnapshotRegistry::ExportDelta — truncate the outgoing delta blob
  // (payload cut in transit; the importer must reject it whole).
  kSnapshotExportTruncate,
  // SnapshotRegistry::ImportDelta — drop the incoming delta entirely
  // (network loss; retrying the same delta is idempotent).
  kSnapshotImportDrop,
  // ShardedFleetServer::MigratePinned — the target shard crashes between
  // DetachSession and AttachSession: the continuation is lost, the device
  // leaves the routing maps, and recovery is a warm re-registration from
  // the barrier snapshot.
  kShardCrashDuringMigration,
  // FleetServer's SimulateDeviceLink — an extra `arg`-microsecond RTT
  // spike on one device round trip (fires even with RTT simulation off).
  kDeviceRttSpike,
  // InferenceBatcher::FlusherLoop — stall the deadline flusher for `arg`
  // microseconds (outside the batcher lock; barriers still flush).
  kBatcherFlusherStall,
  // FleetServer::BarrierFlush — delay the barrier by `arg` microseconds
  // before flushing the pending group.
  kBarrierDelay,
  // ThreadPool::WorkerLoop — stall the worker `arg` microseconds after it
  // pops a task, before running it (every worker slow at once models a
  // saturated pool; the aging clock keeps ticking underneath).
  kPoolSaturation,
  // overload.h OverloadClock::Now — skew the deadline clock forward by
  // `arg` microseconds, making admitted requests look expired early. A
  // latency-only fault: delivered results must stay bit-identical.
  kDeadlineClockSkew,
  // AdmissionLimiter::TryAcquire — refuse the acquisition at the fleet
  // level even though capacity exists (spurious limiter refusal; callers
  // must treat it exactly like a real kResourceExhausted shed).
  kLimiterRefuse,

  kNumFaultPoints,  // count sentinel, not a point
};

// Stable lowerCamel name, e.g. "walTornAppend" — what the kFaultInjected
// trace event's interned arg0 resolves to (prefixed "fault:").
const char* FaultPointName(FaultPoint point);

// What to do when an armed point is hit.
struct FaultScript {
  // Fire on exactly the Nth hit (1-based). 0 = every hit is eligible.
  // With `sticky`, hits >= fire_on_hit all fire.
  uint64_t fire_on_hit = 0;
  // Eligible hits fire with this probability, drawn from the injector's
  // seeded Rng — so a chaos schedule replays exactly from its seed.
  double probability = 1.0;
  // One-shot (default): disarm after the first firing. Sticky: keep firing.
  bool sticky = false;
  // Point-specific payload (microseconds for the delay points, bytes for
  // the truncation point); handed back through MaybeFault's out-param.
  uint64_t arg = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Destruction auto-uninstalls if this injector is the installed one, so
  // a test that forgets Uninstall() cannot leave a dangling global.
  ~FaultInjector();

  // Arms `point` with `script` (replacing any previous script and
  // resetting its fired latch, not its hit count). Thread-safe.
  void Arm(FaultPoint point, FaultScript script);
  // Disarms `point`; its counters survive for post-run assertions.
  void Disarm(FaultPoint point);

  // Times production code reached / actually fired the point.
  uint64_t hits(FaultPoint point) const;
  uint64_t fired(FaultPoint point) const;
  // Sum of fired() over every point.
  uint64_t total_fired() const;

  // Makes this injector the process-wide one MaybeFault() consults /
  // removes it. Install is release-ordered against the hooks' acquire
  // re-read, so scripts armed before Install are visible everywhere.
  void Install();
  static void Uninstall();
  static FaultInjector* installed();

  // The slow path behind MaybeFault(): counts the hit, evaluates the
  // script, records a kFaultInjected trace event on firing, and writes the
  // script arg through `arg` (when non-null). Thread-safe; the internal
  // mutex is a leaf lock (no callbacks run under it).
  bool ShouldFire(FaultPoint point, uint64_t* arg);

 private:
  struct PointState {
    bool armed = false;
    FaultScript script;
    uint64_t hits = 0;
    uint64_t fired = 0;
  };

  mutable Mutex mu_;
  Rng rng_ QCORE_GUARDED_BY(mu_);
  PointState points_[static_cast<size_t>(FaultPoint::kNumFaultPoints)]
      QCORE_GUARDED_BY(mu_);
};

namespace chaos_internal {
// The installed injector. Hooks fast-path on a relaxed null check; the
// acquire re-read in MaybeFault provides the publication ordering.
extern std::atomic<FaultInjector*> g_injector;
}  // namespace chaos_internal

// The hook production code calls at each FaultPoint. Returns true when the
// fault should strike now; `arg` (optional) receives the script payload.
// Free when no injector is installed: one relaxed load, one predictable
// branch.
inline bool MaybeFault(FaultPoint point, uint64_t* arg = nullptr) {
  if (chaos_internal::g_injector.load(std::memory_order_relaxed) == nullptr) {
    return false;
  }
  FaultInjector* injector =
      chaos_internal::g_injector.load(std::memory_order_acquire);
  if (injector == nullptr) return false;  // raced an Uninstall
  return injector->ShouldFire(point, arg);
}

}  // namespace qcore

#endif  // QCORE_TESTING_FAULT_INJECTOR_H_
