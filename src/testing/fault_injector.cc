#include "testing/fault_injector.h"

#include <string>

#include "common/check.h"
#include "obs/trace.h"

namespace qcore {

namespace chaos_internal {
std::atomic<FaultInjector*> g_injector{nullptr};
}  // namespace chaos_internal

const char* FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kWalAppendBitRot: return "walAppendBitRot";
    case FaultPoint::kWalTornAppend: return "walTornAppend";
    case FaultPoint::kWalFsyncFail: return "walFsyncFail";
    case FaultPoint::kWalAppendDelay: return "walAppendDelay";
    case FaultPoint::kWalCompactionCrash: return "walCompactionCrash";
    case FaultPoint::kSnapshotExportTruncate: return "snapshotExportTruncate";
    case FaultPoint::kSnapshotImportDrop: return "snapshotImportDrop";
    case FaultPoint::kShardCrashDuringMigration:
      return "shardCrashDuringMigration";
    case FaultPoint::kDeviceRttSpike: return "deviceRttSpike";
    case FaultPoint::kBatcherFlusherStall: return "batcherFlusherStall";
    case FaultPoint::kBarrierDelay: return "barrierDelay";
    case FaultPoint::kPoolSaturation: return "poolSaturation";
    case FaultPoint::kDeadlineClockSkew: return "deadlineClockSkew";
    case FaultPoint::kLimiterRefuse: return "limiterRefuse";
    case FaultPoint::kNumFaultPoints: break;
  }
  return "unknown";
}

FaultInjector::FaultInjector(uint64_t seed) : rng_(seed) {}

FaultInjector::~FaultInjector() {
  FaultInjector* self = this;
  chaos_internal::g_injector.compare_exchange_strong(
      self, nullptr, std::memory_order_acq_rel);
}

void FaultInjector::Arm(FaultPoint point, FaultScript script) {
  QCORE_CHECK(point < FaultPoint::kNumFaultPoints);
  MutexLock lock(mu_);
  PointState& state = points_[static_cast<size_t>(point)];
  state.armed = true;
  state.script = script;
  state.fired = 0;  // re-arming resets the one-shot latch, not the hits
}

void FaultInjector::Disarm(FaultPoint point) {
  QCORE_CHECK(point < FaultPoint::kNumFaultPoints);
  MutexLock lock(mu_);
  points_[static_cast<size_t>(point)].armed = false;
}

uint64_t FaultInjector::hits(FaultPoint point) const {
  MutexLock lock(mu_);
  return points_[static_cast<size_t>(point)].hits;
}

uint64_t FaultInjector::fired(FaultPoint point) const {
  MutexLock lock(mu_);
  return points_[static_cast<size_t>(point)].fired;
}

uint64_t FaultInjector::total_fired() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const PointState& state : points_) total += state.fired;
  return total;
}

void FaultInjector::Install() {
  chaos_internal::g_injector.store(this, std::memory_order_release);
}

void FaultInjector::Uninstall() {
  chaos_internal::g_injector.store(nullptr, std::memory_order_release);
}

FaultInjector* FaultInjector::installed() {
  return chaos_internal::g_injector.load(std::memory_order_acquire);
}

bool FaultInjector::ShouldFire(FaultPoint point, uint64_t* arg) {
  QCORE_CHECK(point < FaultPoint::kNumFaultPoints);
  uint64_t script_arg = 0;
  bool fire = false;
  {
    MutexLock lock(mu_);
    PointState& state = points_[static_cast<size_t>(point)];
    ++state.hits;
    if (!state.armed) return false;
    if (state.fired > 0 && !state.script.sticky) return false;
    const bool hit_eligible =
        state.script.fire_on_hit == 0 ||
        (state.script.sticky ? state.hits >= state.script.fire_on_hit
                             : state.hits == state.script.fire_on_hit);
    if (!hit_eligible) return false;
    // Drawn even at probability 1.0 so a schedule's RNG consumption — and
    // therefore its replay — does not depend on which points are certain.
    if (!rng_.NextBool(state.script.probability)) return false;
    ++state.fired;
    script_arg = state.script.arg;
    fire = true;
  }
  // Outside mu_: Intern/Record take the trace plane's own locks.
  TraceRing& ring = TraceRing::Global();
  ring.Record(TraceKind::kFaultInjected, TraceRing::CurrentSpan(),
              ring.Intern(std::string("fault:") + FaultPointName(point)),
              script_arg);
  if (arg != nullptr) *arg = script_arg;
  return fire;
}

}  // namespace qcore
