#include "obs/whiteboard.h"

#include <chrono>
#include <sstream>
#include <utility>

#include "common/serialize.h"
#include "common/table_printer.h"

namespace qcore {

namespace {

constexpr uint32_t kWhiteboardMagic = 0x44425751;  // "QWBD"
// v2: WAL row gained torn_tails. v3: per-reason shed breakdown
// (queue-full / deadline / limiter) on shard and device rows. v4: shard
// rows gained the kernel panel-parallelism pair (panel_wide_dispatches,
// panel_tasks).
constexpr uint32_t kWhiteboardVersion = 4;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void WriteStatus(BinaryWriter* w, const Status& status) {
  w->WriteU32(static_cast<uint32_t>(status.code()));
  w->WriteString(status.message());
}

// Result<Status> cannot instantiate (ambiguous constructors), so the
// decoded status comes back through `out`.
Status ReadStatus(BinaryReader* r, Status* out) {
  auto code = r->ReadU32();
  if (!code.ok()) return code.status();
  auto message = r->ReadString();
  if (!message.ok()) return message.status();
  *out = Status(static_cast<StatusCode>(code.value()),
                std::move(message).value());
  return Status::OK();
}

std::vector<uint8_t> EncodeShardRow(const ShardRow& row) {
  BinaryWriter w;
  w.WriteU32(static_cast<uint32_t>(row.shard));
  w.WriteU32(row.retired ? 1 : 0);
  w.WriteU64(row.sessions);
  w.WriteU64(row.inference_requests);
  w.WriteU64(row.calibration_batches);
  w.WriteU64(row.snapshots_published);
  w.WriteU64(row.accepted_inference);
  w.WriteU64(row.accepted_calibration);
  w.WriteU64(row.shed_inference);
  w.WriteU64(row.shed_calibration);
  w.WriteU64(row.shed_queue_full);
  w.WriteU64(row.shed_deadline);
  w.WriteU64(row.shed_limiter);
  w.WriteU64(row.barrier_flushes);
  w.WriteU64(row.panel_wide_dispatches);
  w.WriteU64(row.panel_tasks);
  WriteStatus(&w, row.last_error);
  w.WriteU64(row.last_error_ns);
  return w.TakeBuffer();
}

Result<ShardRow> DecodeShardRow(std::vector<uint8_t> payload) {
  BinaryReader r(std::move(payload));
  ShardRow row;
#define QCORE_WB_READ(field, reader)                      \
  do {                                                    \
    auto v = r.reader();                                  \
    if (!v.ok()) return v.status();                       \
    row.field = std::move(v).value();                     \
  } while (0)
  auto shard = r.ReadU32();
  if (!shard.ok()) return shard.status();
  row.shard = static_cast<int>(shard.value());
  auto retired = r.ReadU32();
  if (!retired.ok()) return retired.status();
  row.retired = retired.value() != 0;
  QCORE_WB_READ(sessions, ReadU64);
  QCORE_WB_READ(inference_requests, ReadU64);
  QCORE_WB_READ(calibration_batches, ReadU64);
  QCORE_WB_READ(snapshots_published, ReadU64);
  QCORE_WB_READ(accepted_inference, ReadU64);
  QCORE_WB_READ(accepted_calibration, ReadU64);
  QCORE_WB_READ(shed_inference, ReadU64);
  QCORE_WB_READ(shed_calibration, ReadU64);
  QCORE_WB_READ(shed_queue_full, ReadU64);
  QCORE_WB_READ(shed_deadline, ReadU64);
  QCORE_WB_READ(shed_limiter, ReadU64);
  QCORE_WB_READ(barrier_flushes, ReadU64);
  QCORE_WB_READ(panel_wide_dispatches, ReadU64);
  QCORE_WB_READ(panel_tasks, ReadU64);
  QCORE_RETURN_NOT_OK(ReadStatus(&r, &row.last_error));
  QCORE_WB_READ(last_error_ns, ReadU64);
  if (!r.AtEnd()) return Status::Corruption("shard row: trailing bytes");
  return row;
}

std::vector<uint8_t> EncodeDeviceRow(const DeviceRow& row) {
  BinaryWriter w;
  w.WriteString(row.device_id);
  w.WriteU32(static_cast<uint32_t>(row.shard));
  w.WriteU32(static_cast<uint32_t>(row.activity));
  w.WriteU32(static_cast<uint32_t>(row.warm_start));
  w.WriteU64(row.queue_inference);
  w.WriteU64(row.queue_calibration);
  w.WriteU64(row.accepted_inference);
  w.WriteU64(row.accepted_calibration);
  w.WriteU64(row.shed_inference);
  w.WriteU64(row.shed_calibration);
  w.WriteU64(row.shed_queue_full);
  w.WriteU64(row.shed_deadline);
  w.WriteU64(row.shed_limiter);
  w.WriteU64(row.last_batch_occupancy);
  w.WriteU64(row.batches_processed);
  w.WriteU64(row.snapshot_version);
  WriteStatus(&w, row.last_error);
  w.WriteU64(row.last_error_ns);
  return w.TakeBuffer();
}

Result<DeviceRow> DecodeDeviceRow(std::vector<uint8_t> payload) {
  BinaryReader r(std::move(payload));
  DeviceRow row;
  auto device = r.ReadString();
  if (!device.ok()) return device.status();
  row.device_id = std::move(device).value();
  auto shard = r.ReadU32();
  if (!shard.ok()) return shard.status();
  row.shard = static_cast<int>(shard.value());
  auto activity = r.ReadU32();
  if (!activity.ok()) return activity.status();
  row.activity = static_cast<SessionActivity>(activity.value());
  auto warm = r.ReadU32();
  if (!warm.ok()) return warm.status();
  row.warm_start = static_cast<WarmStartOrigin>(warm.value());
  QCORE_WB_READ(queue_inference, ReadU64);
  QCORE_WB_READ(queue_calibration, ReadU64);
  QCORE_WB_READ(accepted_inference, ReadU64);
  QCORE_WB_READ(accepted_calibration, ReadU64);
  QCORE_WB_READ(shed_inference, ReadU64);
  QCORE_WB_READ(shed_calibration, ReadU64);
  QCORE_WB_READ(shed_queue_full, ReadU64);
  QCORE_WB_READ(shed_deadline, ReadU64);
  QCORE_WB_READ(shed_limiter, ReadU64);
  QCORE_WB_READ(last_batch_occupancy, ReadU64);
  QCORE_WB_READ(batches_processed, ReadU64);
  QCORE_WB_READ(snapshot_version, ReadU64);
  QCORE_RETURN_NOT_OK(ReadStatus(&r, &row.last_error));
  QCORE_WB_READ(last_error_ns, ReadU64);
#undef QCORE_WB_READ
  if (!r.AtEnd()) return Status::Corruption("device row: trailing bytes");
  return row;
}

std::string ErrorCell(const Status& status) {
  if (status.ok()) return "-";
  // Code name only: messages carry device ids and queue depths that would
  // blow up the column width; the full text is in the binary dump.
  return StatusCodeName(status.code());
}

}  // namespace

const char* WarmStartOriginName(WarmStartOrigin origin) {
  switch (origin) {
    case WarmStartOrigin::kCold: return "cold";
    case WarmStartOrigin::kOwnSnapshot: return "own";
    case WarmStartOrigin::kCohortSnapshot: return "cohort";
  }
  return "unknown";
}

const char* SessionActivityName(SessionActivity activity) {
  switch (activity) {
    case SessionActivity::kIdle: return "idle";
    case SessionActivity::kActive: return "active";
    case SessionActivity::kMigrating: return "migrating";
  }
  return "unknown";
}

// ------------------------------------------------------------ Device / Shard

void Whiteboard::Device::RecordError(const Status& status) {
  if (status.ok()) return;
  MutexLock lock(error_mu_);
  last_error_ = status;
  last_error_ns_ = NowNs();
}

DeviceRow Whiteboard::Device::Snapshot() const {
  DeviceRow row;
  row.device_id = device_id_;
  row.shard = shard_.load(kRelaxed);
  row.warm_start = static_cast<WarmStartOrigin>(warm_start_.load(kRelaxed));
  row.queue_inference = queue_inference_.load(kRelaxed);
  row.queue_calibration = queue_calibration_.load(kRelaxed);
  row.accepted_inference = accepted_inference_.load(kRelaxed);
  row.accepted_calibration = accepted_calibration_.load(kRelaxed);
  row.shed_inference = shed_inference_.load(kRelaxed);
  row.shed_calibration = shed_calibration_.load(kRelaxed);
  row.shed_queue_full = shed_queue_full_.load(kRelaxed);
  row.shed_deadline = shed_deadline_.load(kRelaxed);
  row.shed_limiter = shed_limiter_.load(kRelaxed);
  row.last_batch_occupancy = last_batch_occupancy_.load(kRelaxed);
  row.batches_processed = batches_processed_.load(kRelaxed);
  row.snapshot_version = snapshot_version_.load(kRelaxed);
  if (migrating_.load(kRelaxed)) {
    row.activity = SessionActivity::kMigrating;
  } else if (row.queue_inference + row.queue_calibration > 0) {
    row.activity = SessionActivity::kActive;
  } else {
    row.activity = SessionActivity::kIdle;
  }
  {
    MutexLock lock(error_mu_);
    row.last_error = last_error_;
    row.last_error_ns = last_error_ns_;
  }
  return row;
}

void Whiteboard::Shard::RecordError(const Status& status) {
  if (status.ok()) return;
  MutexLock lock(error_mu_);
  last_error_ = status;
  last_error_ns_ = NowNs();
}

ShardRow Whiteboard::Shard::Snapshot() const {
  ShardRow row;
  row.shard = index_;
  row.retired = retired_.load(kRelaxed);
  row.sessions = sessions_.load(kRelaxed);
  row.inference_requests = inference_requests_.load(kRelaxed);
  row.calibration_batches = calibration_batches_.load(kRelaxed);
  row.snapshots_published = snapshots_.load(kRelaxed);
  row.accepted_inference = accepted_inference_.load(kRelaxed);
  row.accepted_calibration = accepted_calibration_.load(kRelaxed);
  row.shed_inference = shed_inference_.load(kRelaxed);
  row.shed_calibration = shed_calibration_.load(kRelaxed);
  row.shed_queue_full = shed_queue_full_.load(kRelaxed);
  row.shed_deadline = shed_deadline_.load(kRelaxed);
  row.shed_limiter = shed_limiter_.load(kRelaxed);
  row.barrier_flushes = barrier_flushes_.load(kRelaxed);
  row.panel_wide_dispatches = panel_wide_dispatches_.load(kRelaxed);
  row.panel_tasks = panel_tasks_.load(kRelaxed);
  {
    MutexLock lock(error_mu_);
    row.last_error = last_error_;
    row.last_error_ns = last_error_ns_;
  }
  return row;
}

// ---------------------------------------------------------------- Whiteboard

Whiteboard::Device* Whiteboard::UpsertDevice(const std::string& device_id,
                                             int shard,
                                             WarmStartOrigin origin) {
  MutexLock lock(mu_);
  auto it = devices_.find(device_id);
  if (it == devices_.end()) {
    auto device = std::unique_ptr<Device>(new Device(device_id));
    device->set_shard(shard);
    device->set_warm_start(origin);
    it = devices_.emplace(device_id, std::move(device)).first;
  } else {
    // Re-attach after a migration or restart: the row (and its history)
    // persists; only the placement changes.
    it->second->set_shard(shard);
    it->second->set_migrating(false);
  }
  return it->second.get();
}

Whiteboard::Shard* Whiteboard::RegisterShard(int index) {
  MutexLock lock(mu_);
  auto it = shards_.find(index);
  if (it == shards_.end()) {
    it = shards_.emplace(index, std::unique_ptr<Shard>(new Shard(index))).first;
  } else {
    // A shrink-then-grow rebalance can bring a retired index back to life;
    // the revived shard keeps the old row (and its history) but is live.
    it->second->retired_.store(false, Shard::kRelaxed);
  }
  return it->second.get();
}

void Whiteboard::SetWalStatsProvider(std::function<WalRow()> provider) {
  MutexLock lock(mu_);
  wal_provider_ = std::move(provider);
}

WhiteboardImage Whiteboard::Read() const {
  WhiteboardImage image;
  std::function<WalRow()> wal_provider;
  {
    MutexLock lock(mu_);
    image.shards.reserve(shards_.size());
    for (const auto& [index, shard] : shards_) {
      image.shards.push_back(shard->Snapshot());
    }
    image.devices.reserve(devices_.size());
    for (const auto& [id, device] : devices_) {
      image.devices.push_back(device->Snapshot());
    }
    wal_provider = wal_provider_;
  }
  // The provider reaches into the snapshot registry, which takes its own
  // lock — call it outside mu_ to keep lock ordering trivially acyclic.
  if (wal_provider) image.wal = wal_provider();
  return image;
}

// ----------------------------------------------------------- WhiteboardImage

std::string WhiteboardImage::ToTable(size_t max_devices) const {
  std::ostringstream out;
  TablePrinter shard_table({"shard", "state", "sessions", "inf_req",
                            "cal_batches", "snapshots", "shed_q", "shed_dl",
                            "shed_lim", "barrier", "panels", "last_error"});
  for (const ShardRow& row : shards) {
    // panels column: wide dispatches / chunk tasks they fanned out.
    shard_table.AddRow({std::to_string(row.shard),
                        row.retired ? "retired" : "live",
                        std::to_string(row.sessions),
                        std::to_string(row.inference_requests),
                        std::to_string(row.calibration_batches),
                        std::to_string(row.snapshots_published),
                        std::to_string(row.shed_queue_full),
                        std::to_string(row.shed_deadline),
                        std::to_string(row.shed_limiter),
                        std::to_string(row.barrier_flushes),
                        std::to_string(row.panel_wide_dispatches) + "/" +
                            std::to_string(row.panel_tasks),
                        ErrorCell(row.last_error)});
  }
  out << shard_table.ToString();

  TablePrinter device_table({"device", "shard", "state", "warm", "q_inf",
                             "q_cal", "acc_inf", "acc_cal", "shed_q",
                             "shed_dl", "shed_lim", "occ", "batches",
                             "snap_ver", "last_error"});
  size_t shown = 0;
  for (const DeviceRow& row : devices) {
    if (max_devices > 0 && shown == max_devices) break;
    ++shown;
    device_table.AddRow(
        {row.device_id, std::to_string(row.shard),
         SessionActivityName(row.activity),
         WarmStartOriginName(row.warm_start),
         std::to_string(row.queue_inference),
         std::to_string(row.queue_calibration),
         std::to_string(row.accepted_inference),
         std::to_string(row.accepted_calibration),
         std::to_string(row.shed_queue_full),
         std::to_string(row.shed_deadline),
         std::to_string(row.shed_limiter),
         std::to_string(row.last_batch_occupancy),
         std::to_string(row.batches_processed),
         std::to_string(row.snapshot_version), ErrorCell(row.last_error)});
  }
  out << device_table.ToString();
  if (max_devices > 0 && devices.size() > shown) {
    out << "  ... " << (devices.size() - shown) << " more devices\n";
  }
  out << "wal: appends=" << wal.appends << " bytes=" << wal.appended_bytes
      << " fsyncs=" << wal.fsyncs << " compactions=" << wal.compactions
      << " torn_tails=" << wal.torn_tails << "\n";
  return out.str();
}

std::vector<uint8_t> WhiteboardImage::Serialize() const {
  std::vector<uint8_t> out;
  BinaryWriter header;
  header.WriteU32(kWhiteboardMagic);
  header.WriteU32(kWhiteboardVersion);
  header.WriteU32(static_cast<uint32_t>(shards.size()));
  header.WriteU32(static_cast<uint32_t>(devices.size()));
  header.WriteU64(wal.appends);
  header.WriteU64(wal.appended_bytes);
  header.WriteU64(wal.fsyncs);
  header.WriteU64(wal.compactions);
  header.WriteU64(wal.torn_tails);
  AppendFramedRecord(header.TakeBuffer(), &out);
  for (const ShardRow& row : shards) {
    AppendFramedRecord(EncodeShardRow(row), &out);
  }
  for (const DeviceRow& row : devices) {
    AppendFramedRecord(EncodeDeviceRow(row), &out);
  }
  return out;
}

Result<WhiteboardImage> WhiteboardImage::Deserialize(
    const std::vector<uint8_t>& raw) {
  size_t pos = 0;
  auto header_frame = ReadFramedRecord(raw, &pos);
  if (!header_frame.ok()) return header_frame.status();
  BinaryReader header(std::move(header_frame).value());
  auto magic = header.ReadU32();
  if (!magic.ok()) return magic.status();
  if (magic.value() != kWhiteboardMagic) {
    return Status::Corruption("whiteboard dump: bad magic");
  }
  auto version = header.ReadU32();
  if (!version.ok()) return version.status();
  if (version.value() != kWhiteboardVersion) {
    return Status::Corruption("whiteboard dump: unsupported version");
  }
  auto num_shards = header.ReadU32();
  if (!num_shards.ok()) return num_shards.status();
  auto num_devices = header.ReadU32();
  if (!num_devices.ok()) return num_devices.status();

  WhiteboardImage image;
  auto read_u64 = [&header](uint64_t* out_field) -> Status {
    auto v = header.ReadU64();
    if (!v.ok()) return v.status();
    *out_field = v.value();
    return Status::OK();
  };
  QCORE_RETURN_NOT_OK(read_u64(&image.wal.appends));
  QCORE_RETURN_NOT_OK(read_u64(&image.wal.appended_bytes));
  QCORE_RETURN_NOT_OK(read_u64(&image.wal.fsyncs));
  QCORE_RETURN_NOT_OK(read_u64(&image.wal.compactions));
  QCORE_RETURN_NOT_OK(read_u64(&image.wal.torn_tails));

  for (uint32_t i = 0; i < num_shards.value(); ++i) {
    auto frame = ReadFramedRecord(raw, &pos);
    if (!frame.ok()) return frame.status();
    auto row = DecodeShardRow(std::move(frame).value());
    if (!row.ok()) return row.status();
    image.shards.push_back(std::move(row).value());
  }
  for (uint32_t i = 0; i < num_devices.value(); ++i) {
    auto frame = ReadFramedRecord(raw, &pos);
    if (!frame.ok()) return frame.status();
    auto row = DecodeDeviceRow(std::move(frame).value());
    if (!row.ok()) return row.status();
    image.devices.push_back(std::move(row).value());
  }
  if (pos != raw.size()) {
    return Status::Corruption("whiteboard dump: trailing bytes");
  }
  return image;
}

}  // namespace qcore
