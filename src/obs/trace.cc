#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <sstream>

namespace qcore {

namespace {

std::atomic<uint64_t> g_next_span{1};
thread_local uint64_t t_current_span = 0;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSubmitInference: return "submitInference";
    case TraceKind::kSubmitCalibration: return "submitCalibration";
    case TraceKind::kShed: return "shed";
    case TraceKind::kBatchEnqueue: return "batchEnqueue";
    case TraceKind::kBatchFlush: return "batchFlush";
    case TraceKind::kBarrierFlush: return "barrierFlush";
    case TraceKind::kExecStart: return "exec";
    case TraceKind::kExecEnd: return "exec";
    case TraceKind::kComplete: return "complete";
    case TraceKind::kSnapshotPublish: return "snapshotPublish";
    case TraceKind::kWalAppend: return "walAppend";
    case TraceKind::kDetach: return "detach";
    case TraceKind::kAttach: return "attach";
    case TraceKind::kFaultInjected: return "faultInjected";
    case TraceKind::kDeadlineShed: return "deadlineShed";
  }
  return "unknown";
}

TraceRing& TraceRing::Global() {
  // Leaky singleton: serving threads may record during static teardown.
  static TraceRing* ring = new TraceRing();
  return *ring;
}

uint64_t TraceRing::NextSpan() {
  return g_next_span.fetch_add(1, std::memory_order_relaxed);
}

uint64_t TraceRing::CurrentSpan() { return t_current_span; }

TraceRing::Ring* TraceRing::LocalRing() {
  // One ring per (thread, TraceRing) pair, created on first use and kept
  // registered after the thread exits so late Collects still see its
  // events. The shared_ptr keeps the ring alive past thread teardown.
  thread_local std::shared_ptr<Ring> ring;
  if (ring == nullptr) {
    MutexLock lock(registry_mu_);
    ring = std::make_shared<Ring>(static_cast<uint32_t>(rings_.size() + 1),
                                  capacity_.load(std::memory_order_relaxed));
    rings_.push_back(ring);
  }
  return ring.get();
}

void TraceRing::Record(TraceKind kind, uint64_t span, uint64_t arg0,
                       uint64_t arg1) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Ring* ring = LocalRing();
  TraceEvent ev;
  ev.ts_ns = NowNs();
  ev.span = span;
  ev.arg0 = arg0;
  ev.arg1 = arg1;
  ev.ring = ring->id;
  ev.kind = kind;
  MutexLock lock(ring->mu);
  if (ring->buf.size() < ring->capacity) {
    ring->buf.push_back(ev);
  } else {
    ring->buf[ring->total % ring->capacity] = ev;
  }
  ++ring->total;
}

uint32_t TraceRing::Intern(const std::string& name) {
  MutexLock lock(registry_mu_);
  auto it = intern_.find(name);
  if (it != intern_.end()) return it->second;
  names_.push_back(name);
  const uint32_t id = static_cast<uint32_t>(names_.size());
  intern_[name] = id;
  return id;
}

std::string TraceRing::NameOf(uint64_t id) const {
  MutexLock lock(registry_mu_);
  if (id == 0 || id > names_.size()) return "";
  return names_[id - 1];
}

void TraceRing::SetEnabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

bool TraceRing::enabled() const {
  return enabled_.load(std::memory_order_relaxed);
}

void TraceRing::SetCapacityPerThread(size_t capacity) {
  capacity_.store(capacity == 0 ? 1 : capacity, std::memory_order_relaxed);
}

void TraceRing::Clear() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    MutexLock lock(registry_mu_);
    rings = rings_;
  }
  for (const auto& ring : rings) {
    MutexLock lock(ring->mu);
    ring->buf.clear();
    ring->total = 0;
  }
}

std::vector<TraceEvent> TraceRing::Collect() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    MutexLock lock(registry_mu_);
    rings = rings_;
  }
  std::vector<TraceEvent> events;
  for (const auto& ring : rings) {
    MutexLock lock(ring->mu);
    // Oldest-first within the ring: once wrapped, the slot at total %
    // capacity is the oldest surviving event.
    const size_t n = ring->buf.size();
    const size_t start = ring->total > n ? ring->total % ring->capacity : 0;
    for (size_t i = 0; i < n; ++i) {
      events.push_back(ring->buf[(start + i) % n]);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return events;
}

std::vector<TraceEvent> TraceRing::CollectSpan(uint64_t span) const {
  std::vector<TraceEvent> events = Collect();
  events.erase(std::remove_if(events.begin(), events.end(),
                              [span](const TraceEvent& ev) {
                                return ev.span != span;
                              }),
               events.end());
  return events;
}

uint64_t TraceRing::dropped_events() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    MutexLock lock(registry_mu_);
    rings = rings_;
  }
  uint64_t dropped = 0;
  for (const auto& ring : rings) {
    MutexLock lock(ring->mu);
    dropped += ring->total - ring->buf.size();
  }
  return dropped;
}

std::string TraceRing::ToChromeJson() const {
  const std::vector<TraceEvent> events = Collect();
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out << ",";
    first = false;
    const char* ph = ev.kind == TraceKind::kExecStart ? "B"
                     : ev.kind == TraceKind::kExecEnd ? "E"
                                                      : "i";
    out << "{\"name\":\"" << TraceKindName(ev.kind) << "\",\"ph\":\"" << ph
        << "\",\"pid\":1,\"tid\":" << ev.ring << ",\"ts\":"
        << static_cast<double>(ev.ts_ns) / 1000.0;
    if (ph[0] == 'i') out << ",\"s\":\"t\"";
    out << ",\"args\":{\"span\":" << ev.span;
    const std::string device = NameOf(ev.arg0);
    if (!device.empty()) out << ",\"device\":\"" << device << "\"";
    out << ",\"arg\":" << ev.arg1 << "}}";
  }
  out << "]}";
  return out.str();
}

ScopedTraceSpan::ScopedTraceSpan(uint64_t span) : prev_(t_current_span) {
  t_current_span = span;
}

ScopedTraceSpan::~ScopedTraceSpan() { t_current_span = prev_; }

}  // namespace qcore
