// Request-lifecycle tracing for the serving runtime: a fixed-size ring
// buffer of trace events per thread, collected into one ordered timeline on
// demand. The shape follows the always-on profiling managers of production
// storage systems (cf. YTsaurus profiling_manager): writers append to their
// own thread's ring with no cross-thread contention — the only lock a
// Record() takes is that ring's own mutex, uncontended except while a
// reader drains — so tracing is cheap enough to leave enabled in serving
// hot paths (the macro perf gate pins this: tracing on vs off must be
// within the gate's tolerance).
//
// Events carry a request-scoped span id. Every serving submission
// (inference, calibration, snapshot publish, migration) allocates a span at
// entry and threads it through the lifecycle — submit -> batch-enqueue ->
// batch-flush -> forward -> complete for inference, publish -> WAL-append
// for snapshots — so CollectSpan() reconstructs exactly what happened to
// one request, in order, across every thread it touched. Layers that
// cannot be handed a span explicitly (the snapshot WAL under the registry
// lock) read the submitting task's span from a thread-local set by
// ScopedTraceSpan.
//
// Ring wraparound drops the OLDEST events of that thread only (total
// recorded count is kept, so drops are observable); Collect() merges all
// rings and sorts by timestamp. ToChromeJson() exports the merged timeline
// in the chrome://tracing / Perfetto JSON array format.
#ifndef QCORE_OBS_TRACE_H_
#define QCORE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace qcore {

enum class TraceKind : uint8_t {
  kSubmitInference = 0,  // request admitted to the serving plane
  kSubmitCalibration,
  kShed,           // admission refused (queue bound); terminal for the span
  kBatchEnqueue,   // request parked in the batcher's per-device group
  kBatchFlush,     // request's group handed to the session (arg1 = group span)
  kBarrierFlush,   // a model-mutating submission forced the group out early
  kExecStart,      // session task running the forward/calibration started
  kExecEnd,
  kComplete,        // result delivered (promise resolved)
  kSnapshotPublish, // session model being published into the registry
  kWalAppend,       // durable store appended the snapshot record (arg1 = bytes)
  kDetach,          // session serialized off its shard (migration source)
  kAttach,          // session restored on its shard (arg1 = target shard)
  kFaultInjected,   // a chaos FaultPoint fired (arg0 = interned point name,
                    // arg1 = script arg); see testing/fault_injector.h
  kDeadlineShed,    // admitted request expired before its forward pass and
                    // was shed with kDeadlineExceeded; terminal for the span
};

// Stable lowerCamel name, e.g. "batchFlush" — the chrome-trace event name.
const char* TraceKindName(TraceKind kind);

struct TraceEvent {
  uint64_t ts_ns = 0;  // steady-clock nanoseconds (same clock fleet-wide)
  uint64_t span = 0;   // request-scoped id from NextSpan(); 0 = unscoped
  uint64_t arg0 = 0;   // interned name id (device) for serving events
  uint64_t arg1 = 0;   // event-specific: group span, byte count, version...
  uint32_t ring = 0;   // id of the thread ring that recorded it
  TraceKind kind = TraceKind::kSubmitInference;
};

// Process-wide trace domain. One instance (Global()) serves every backend:
// span ids are globally unique, so concurrent servers' events interleave
// without ambiguity and tests filter by span.
class TraceRing {
 public:
  static TraceRing& Global();

  // Allocates a request-scoped span id (monotonic, never reused, never 0).
  static uint64_t NextSpan();

  // The span set by the innermost live ScopedTraceSpan on this thread
  // (0 when none) — how layers below the serving API inherit the
  // submitting request's span without plumbing it through every signature.
  static uint64_t CurrentSpan();

  // Appends one event to the calling thread's ring (dropping that ring's
  // oldest event once full). Near-free when disabled.
  void Record(TraceKind kind, uint64_t span, uint64_t arg0 = 0,
              uint64_t arg1 = 0);

  // Interns `name` into a stable small id carried in TraceEvent::arg0.
  // Callers on hot paths intern once (e.g. at device registration) and
  // cache the id. Id 0 is reserved for "no name".
  uint32_t Intern(const std::string& name);
  // Name for an interned id ("" for 0 or unknown).
  std::string NameOf(uint64_t id) const;

  // Tracing is on by default (the overhead budget is enforced by the macro
  // perf gate). SetEnabled(false) stops recording; existing events stay
  // collectable.
  void SetEnabled(bool enabled);
  bool enabled() const;

  // Ring capacity for rings created AFTER the call (each thread's ring is
  // created on its first Record). Tests shrink this to force wraparound.
  void SetCapacityPerThread(size_t capacity);

  // Drops every buffered event (rings stay registered, interning and span
  // numbering are untouched). The start of a capture window.
  void Clear();

  // Merged snapshot of every ring's live events, sorted by timestamp.
  // Concurrent Records serialize against the copy per ring, so each ring
  // contributes a consistent slice.
  std::vector<TraceEvent> Collect() const;
  // Collect() filtered to one span, still timestamp-ordered: the request's
  // lifecycle timeline.
  std::vector<TraceEvent> CollectSpan(uint64_t span) const;

  // Events lost to wraparound since the last Clear(), across all rings.
  uint64_t dropped_events() const;

  // chrome://tracing / Perfetto JSON: {"traceEvents": [...]}. kExecStart /
  // kExecEnd become paired duration events ("B"/"E"); everything else is a
  // thread-scoped instant with span/device/arg in "args".
  std::string ToChromeJson() const;

 private:
  struct Ring {
    explicit Ring(uint32_t id_, size_t capacity_)
        : id(id_), capacity(capacity_) {}
    const uint32_t id;
    const size_t capacity;
    mutable Mutex mu;
    // Ring storage, index = total % capacity.
    std::vector<TraceEvent> buf QCORE_GUARDED_BY(mu);
    // Events ever recorded (since Clear).
    uint64_t total QCORE_GUARDED_BY(mu) = 0;
  };

  TraceRing() = default;
  Ring* LocalRing();

  // Lock order: registry_mu_ before any ring->mu (Collect/Clear copy the
  // ring list under registry_mu_, release it, then lock rings one at a
  // time; Record only ever takes its own ring's mu).
  mutable Mutex registry_mu_;
  std::vector<std::shared_ptr<Ring>> rings_ QCORE_GUARDED_BY(registry_mu_);
  std::map<std::string, uint32_t> intern_ QCORE_GUARDED_BY(registry_mu_);
  // Interned names, index = id - 1.
  std::vector<std::string> names_ QCORE_GUARDED_BY(registry_mu_);
  std::atomic<bool> enabled_{true};
  std::atomic<size_t> capacity_{8192};
};

// RAII thread-local span context: Record() calls made below the current
// frame (e.g. the WAL append inside a snapshot publish) pick the span up
// via TraceRing::CurrentSpan(). Nests; restores the previous span on exit.
class ScopedTraceSpan {
 public:
  explicit ScopedTraceSpan(uint64_t span);
  ~ScopedTraceSpan();

  ScopedTraceSpan(const ScopedTraceSpan&) = delete;
  ScopedTraceSpan& operator=(const ScopedTraceSpan&) = delete;

 private:
  uint64_t prev_;
};

}  // namespace qcore

#endif  // QCORE_OBS_TRACE_H_
