// Fleet whiteboard: one plain-struct row per shard and per device, kept
// write-through by the serving layers (the node-whiteboard idiom from YDB's
// node_whiteboard.cpp — state is PUSHED by the component that owns it the
// moment it changes, never scraped). Hot-path writers update relaxed
// atomics through a stable row handle they capture once at registration;
// readers take the registry lock and copy every row, so a Read() is a
// snapshot-consistent image of the fleet without stalling admission.
//
// The image renders two ways: ToTable() for humans (common/table_printer)
// and Serialize()/Deserialize() for machines (common/serialize framed
// records), so a whiteboard dump can cross a process boundary exactly like
// a model snapshot does.
#ifndef QCORE_OBS_WHITEBOARD_H_
#define QCORE_OBS_WHITEBOARD_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace qcore {

// How a device's session got its initial model when it registered.
enum class WarmStartOrigin : uint8_t {
  kCold = 0,       // fresh calibrator state, no snapshot found
  kOwnSnapshot,    // restored from this device's own latest snapshot
  kCohortSnapshot  // warm-started from a cohort neighbour's snapshot
};

const char* WarmStartOriginName(WarmStartOrigin origin);

// Derived, not stored: what the device's session is doing right now.
enum class SessionActivity : uint8_t { kIdle = 0, kActive, kMigrating };

const char* SessionActivityName(SessionActivity activity);

// Copied-out view of one device row (what Read() returns).
struct DeviceRow {
  std::string device_id;
  int shard = 0;
  SessionActivity activity = SessionActivity::kIdle;
  WarmStartOrigin warm_start = WarmStartOrigin::kCold;
  uint64_t queue_inference = 0;    // tasks admitted, not yet executed
  uint64_t queue_calibration = 0;
  uint64_t accepted_inference = 0;
  uint64_t accepted_calibration = 0;
  uint64_t shed_inference = 0;
  uint64_t shed_calibration = 0;
  // Shed breakdown by reason (v3). queue_full + limiter covers every
  // admission shed (shed_inference + shed_calibration); deadline counts
  // admitted requests abandoned at flush/exec time, a disjoint population.
  uint64_t shed_queue_full = 0;
  uint64_t shed_deadline = 0;
  uint64_t shed_limiter = 0;
  uint64_t last_batch_occupancy = 0;  // size of the last inference group
  uint64_t batches_processed = 0;     // calibration batches consumed
  uint64_t snapshot_version = 0;      // latest version this device published
  Status last_error;                  // most recent non-OK status, or OK
  uint64_t last_error_ns = 0;         // steady-clock ns of that status
};

// Copied-out view of one shard row.
struct ShardRow {
  int shard = 0;
  bool retired = false;  // the shard's server has been torn down
  uint64_t sessions = 0;
  uint64_t inference_requests = 0;
  uint64_t calibration_batches = 0;
  uint64_t snapshots_published = 0;
  uint64_t accepted_inference = 0;
  uint64_t accepted_calibration = 0;
  uint64_t shed_inference = 0;
  uint64_t shed_calibration = 0;
  // Per-reason shed breakdown, same semantics as the device row's (v3).
  uint64_t shed_queue_full = 0;
  uint64_t shed_deadline = 0;
  uint64_t shed_limiter = 0;
  uint64_t barrier_flushes = 0;  // batches forced out by a barrier
  // Kernel panel parallelism on this shard's forwards (v4): GEMMs that
  // fanned out across panel workers, and the output chunks they submitted.
  uint64_t panel_wide_dispatches = 0;
  uint64_t panel_tasks = 0;
  Status last_error;
  uint64_t last_error_ns = 0;
};

// Aggregate snapshot-WAL health, filled in by the durable store's owner.
struct WalRow {
  uint64_t appends = 0;
  uint64_t appended_bytes = 0;
  uint64_t fsyncs = 0;
  uint64_t compactions = 0;
  uint64_t torn_tails = 0;  // torn tails truncated-and-recovered at Open
};

// The snapshot-consistent image Read() produces.
struct WhiteboardImage {
  std::vector<ShardRow> shards;    // shard-index order
  std::vector<DeviceRow> devices;  // device-id order
  WalRow wal;

  // Human rendering: a shard table, a device table (truncated to
  // `max_devices` rows when non-zero), and a one-line WAL summary.
  std::string ToTable(size_t max_devices = 0) const;

  // Binary dump via common/serialize framing (magic + one framed record per
  // row), round-trippable with Deserialize.
  std::vector<uint8_t> Serialize() const;
  static Result<WhiteboardImage> Deserialize(const std::vector<uint8_t>& raw);
};

class Whiteboard {
 public:
  // Live, internally-synchronized handle to one device's row. Writers are
  // the owning shard's serving threads; all counters are relaxed atomics
  // (each is independently meaningful — cross-field consistency is
  // established by Read() under the registry lock only in the sense that
  // the row set itself is stable).
  class Device {
   public:
    void set_shard(int shard) { shard_.store(shard, kRelaxed); }
    void set_warm_start(WarmStartOrigin origin) {
      warm_start_.store(static_cast<uint8_t>(origin), kRelaxed);
    }
    void set_migrating(bool migrating) { migrating_.store(migrating, kRelaxed); }
    void set_queue_depths(uint64_t inference, uint64_t calibration) {
      queue_inference_.store(inference, kRelaxed);
      queue_calibration_.store(calibration, kRelaxed);
    }
    void add_accepted_inference() { accepted_inference_.fetch_add(1, kRelaxed); }
    void add_accepted_calibration() {
      accepted_calibration_.fetch_add(1, kRelaxed);
    }
    void add_shed_inference() { shed_inference_.fetch_add(1, kRelaxed); }
    void add_shed_calibration() { shed_calibration_.fetch_add(1, kRelaxed); }
    void add_shed_queue_full() { shed_queue_full_.fetch_add(1, kRelaxed); }
    void add_shed_deadline() { shed_deadline_.fetch_add(1, kRelaxed); }
    void add_shed_limiter() { shed_limiter_.fetch_add(1, kRelaxed); }
    void set_last_batch_occupancy(uint64_t n) {
      last_batch_occupancy_.store(n, kRelaxed);
    }
    void add_batches_processed(uint64_t n) {
      batches_processed_.fetch_add(n, kRelaxed);
    }
    void set_snapshot_version(uint64_t version) {
      snapshot_version_.store(version, kRelaxed);
    }
    // Records a non-OK status with a steady-clock timestamp. OK statuses
    // are ignored so a success never erases the last failure.
    void RecordError(const Status& status);

   private:
    friend class Whiteboard;
    static constexpr auto kRelaxed = std::memory_order_relaxed;

    explicit Device(std::string device_id) : device_id_(std::move(device_id)) {}
    DeviceRow Snapshot() const;

    const std::string device_id_;
    std::atomic<int> shard_{0};
    std::atomic<uint8_t> warm_start_{0};
    std::atomic<bool> migrating_{false};
    std::atomic<uint64_t> queue_inference_{0};
    std::atomic<uint64_t> queue_calibration_{0};
    std::atomic<uint64_t> accepted_inference_{0};
    std::atomic<uint64_t> accepted_calibration_{0};
    std::atomic<uint64_t> shed_inference_{0};
    std::atomic<uint64_t> shed_calibration_{0};
    std::atomic<uint64_t> shed_queue_full_{0};
    std::atomic<uint64_t> shed_deadline_{0};
    std::atomic<uint64_t> shed_limiter_{0};
    std::atomic<uint64_t> last_batch_occupancy_{0};
    std::atomic<uint64_t> batches_processed_{0};
    std::atomic<uint64_t> snapshot_version_{0};
    mutable Mutex error_mu_;
    Status last_error_ QCORE_GUARDED_BY(error_mu_);
    uint64_t last_error_ns_ QCORE_GUARDED_BY(error_mu_) = 0;
  };

  // Live handle to one shard's row; same write discipline as Device.
  class Shard {
   public:
    void set_sessions(uint64_t n) { sessions_.store(n, kRelaxed); }
    void add_inference_request() { inference_requests_.fetch_add(1, kRelaxed); }
    void add_calibration_batch() { calibration_batches_.fetch_add(1, kRelaxed); }
    void add_snapshot_published() { snapshots_.fetch_add(1, kRelaxed); }
    void add_accepted_inference() { accepted_inference_.fetch_add(1, kRelaxed); }
    void add_accepted_calibration() {
      accepted_calibration_.fetch_add(1, kRelaxed);
    }
    void add_shed_inference() { shed_inference_.fetch_add(1, kRelaxed); }
    void add_shed_calibration() { shed_calibration_.fetch_add(1, kRelaxed); }
    void add_shed_queue_full() { shed_queue_full_.fetch_add(1, kRelaxed); }
    void add_shed_deadline() { shed_deadline_.fetch_add(1, kRelaxed); }
    void add_shed_limiter() { shed_limiter_.fetch_add(1, kRelaxed); }
    void add_barrier_flush() { barrier_flushes_.fetch_add(1, kRelaxed); }
    void add_panel_dispatches(uint64_t wide, uint64_t tasks) {
      panel_wide_dispatches_.fetch_add(wide, kRelaxed);
      panel_tasks_.fetch_add(tasks, kRelaxed);
    }
    void set_retired() { retired_.store(true, kRelaxed); }
    void RecordError(const Status& status);

   private:
    friend class Whiteboard;
    static constexpr auto kRelaxed = std::memory_order_relaxed;

    explicit Shard(int index) : index_(index) {}
    ShardRow Snapshot() const;

    const int index_;
    std::atomic<bool> retired_{false};
    std::atomic<uint64_t> sessions_{0};
    std::atomic<uint64_t> inference_requests_{0};
    std::atomic<uint64_t> calibration_batches_{0};
    std::atomic<uint64_t> snapshots_{0};
    std::atomic<uint64_t> accepted_inference_{0};
    std::atomic<uint64_t> accepted_calibration_{0};
    std::atomic<uint64_t> shed_inference_{0};
    std::atomic<uint64_t> shed_calibration_{0};
    std::atomic<uint64_t> shed_queue_full_{0};
    std::atomic<uint64_t> shed_deadline_{0};
    std::atomic<uint64_t> shed_limiter_{0};
    std::atomic<uint64_t> barrier_flushes_{0};
    std::atomic<uint64_t> panel_wide_dispatches_{0};
    std::atomic<uint64_t> panel_tasks_{0};
    mutable Mutex error_mu_;
    Status last_error_ QCORE_GUARDED_BY(error_mu_);
    uint64_t last_error_ns_ QCORE_GUARDED_BY(error_mu_) = 0;
  };

  // Returns the row handle for `device_id`, creating it on first sight.
  // Re-upserting (a session re-attaching after migration or restart) keeps
  // the existing counters and warm-start origin — history survives moves —
  // but adopts the new shard. Handles stay valid for the whiteboard's
  // lifetime; rows are never removed, matching the "retired, not erased"
  // shard discipline.
  Device* UpsertDevice(const std::string& device_id, int shard,
                       WarmStartOrigin origin);
  // Row handle for shard `index`, creating it on first sight (idempotent).
  Shard* RegisterShard(int index);

  // Supplies the WAL row for Read() images; the FleetServer owning a
  // durable registry installs a provider over registry->wal_stats().
  void SetWalStatsProvider(std::function<WalRow()> provider);

  // Snapshot-consistent copy of every row.
  WhiteboardImage Read() const;

 private:
  // Lock order: mu_ before a row's error_mu_ (Read snapshots rows under
  // mu_; Snapshot() takes the row's error_mu_). The wal provider runs
  // OUTSIDE mu_ — it reaches back into the snapshot registry's lock.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Device>> devices_
      QCORE_GUARDED_BY(mu_);
  std::map<int, std::unique_ptr<Shard>> shards_ QCORE_GUARDED_BY(mu_);
  std::function<WalRow()> wal_provider_ QCORE_GUARDED_BY(mu_);
};

}  // namespace qcore

#endif  // QCORE_OBS_WHITEBOARD_H_
