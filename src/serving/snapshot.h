// Versioned model-snapshot registry. Publishing serializes a session's
// QuantizedModel (codes + scales + fp leftovers, via common/serialize) into
// an immutable byte blob held by shared_ptr — copy-on-write semantics:
// readers holding an old version keep it alive while new versions land, and
// no reader ever observes a half-written model. This is the hand-off point
// between the serving plane (sessions mutating codes) and everything that
// wants a consistent model: checkpointing, rollback, cross-device warm
// starts, future replication.
#ifndef QCORE_SERVING_SNAPSHOT_H_
#define QCORE_SERVING_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "quant/quantized_model.h"

namespace qcore {

// One immutable published model version.
struct ModelSnapshot {
  uint64_t version = 0;
  std::string device_id;       // session that published it
  uint64_t batches_seen = 0;   // calibration batches absorbed at publish time
  std::vector<uint8_t> bytes;  // QuantizedModel::SerializeTo output
};

class SnapshotRegistry {
 public:
  // Serializes `qm` and registers it as the next version. Thread-safe;
  // returns the assigned version number (monotonic from 1).
  uint64_t Publish(const QuantizedModel& qm, const std::string& device_id,
                   uint64_t batches_seen);

  // Latest version overall / latest published by one device; nullptr if
  // none. The returned snapshot is immutable and safe to hold indefinitely.
  std::shared_ptr<const ModelSnapshot> Latest() const;
  std::shared_ptr<const ModelSnapshot> LatestFor(
      const std::string& device_id) const;
  std::shared_ptr<const ModelSnapshot> Get(uint64_t version) const;

  // Restores a snapshot into a model of the same architecture/bit-width.
  static Status RestoreInto(const ModelSnapshot& snapshot, QuantizedModel* qm);

  size_t size() const;

  // Drops all versions below `min_version` that are not a device's latest
  // (simple retention; holders keep their shared_ptrs alive regardless).
  // Returns the number of versions dropped.
  size_t TrimBelow(uint64_t min_version);

 private:
  mutable std::mutex mu_;
  uint64_t next_version_ = 1;
  std::map<uint64_t, std::shared_ptr<const ModelSnapshot>> by_version_;
  std::map<std::string, std::shared_ptr<const ModelSnapshot>> by_device_;
};

}  // namespace qcore

#endif  // QCORE_SERVING_SNAPSHOT_H_
