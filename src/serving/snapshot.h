// Versioned model-snapshot registry. Publishing serializes a session's
// QuantizedModel (codes + scales + fp leftovers, via common/serialize) into
// an immutable byte blob held by shared_ptr — copy-on-write semantics:
// readers holding an old version keep it alive while new versions land, and
// no reader ever observes a half-written model. This is the hand-off point
// between the serving plane (sessions mutating codes) and everything that
// wants a consistent model: checkpointing, rollback, cross-device warm
// starts, replication.
//
// The registry is a thin versioning facade: it assigns monotonic versions
// and owns the lock, while the snapshots themselves live in a pluggable
// SnapshotStore (serving/snapshot_store.h) — in-memory by default,
// WAL-backed via DurableSnapshotStore so a fleet's calibrated models
// survive the process that produced them. Two distribution primitives ship
// registry contents across process boundaries: ExportDelta serializes every
// version after a watermark into CRC-framed records, and ImportDelta merges
// such records into another registry (idempotently), after which
// RegisterDevice can warm-start new sessions from the cohort-nearest
// imported snapshot.
#ifndef QCORE_SERVING_SNAPSHOT_H_
#define QCORE_SERVING_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "quant/quantized_model.h"

namespace qcore {

class SnapshotStore;

// One immutable published model version.
struct ModelSnapshot {
  uint64_t version = 0;
  std::string device_id;       // session that published it
  uint64_t batches_seen = 0;   // calibration batches absorbed at publish time
  std::vector<uint8_t> bytes;  // QuantizedModel::SerializeTo output
};

// Write-ahead-log health counters, exposed by a durable store (all zero for
// a memory store) and surfaced on the fleet whiteboard's WAL row.
struct WalStats {
  uint64_t appends = 0;         // records appended since open
  uint64_t appended_bytes = 0;  // framed bytes those appends wrote
  uint64_t fsyncs = 0;          // explicit fsyncs (publishes + compactions)
  uint64_t compactions = 0;     // segment rewrites (TrimBelow)
  // Torn tails truncated off the log by Open (1 per recovering open) —
  // the counter that turns silent crash recovery into an assertable,
  // operator-visible event (whiteboard WAL row, chaos tests).
  uint64_t torn_tails_recovered = 0;
};

class SnapshotRegistry {
 public:
  // Over a fresh MemorySnapshotStore — the pre-durability semantics.
  SnapshotRegistry();
  // Over an explicit store. A DurableSnapshotStore that recovered published
  // versions from its log resumes numbering at max recovered version + 1,
  // so versions stay monotonic across a process restart.
  explicit SnapshotRegistry(std::unique_ptr<SnapshotStore> store);
  ~SnapshotRegistry();

  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  // Serializes `qm` and registers it as the next version. Thread-safe;
  // returns the assigned version number (monotonic from 1). A durable
  // store's write failure is fatal (checked): a registry that claimed
  // durability it does not have would corrupt recovery.
  uint64_t Publish(const QuantizedModel& qm, const std::string& device_id,
                   uint64_t batches_seen);

  // Latest version overall / latest published by one device; nullptr if
  // none. The returned snapshot is immutable and safe to hold indefinitely.
  std::shared_ptr<const ModelSnapshot> Latest() const;
  std::shared_ptr<const ModelSnapshot> LatestFor(
      const std::string& device_id) const;
  std::shared_ptr<const ModelSnapshot> Get(uint64_t version) const;

  // Warm-start lookup: the device's own latest snapshot if it has one
  // (restart recovery), else the latest snapshot of the cohort-nearest
  // device — clockwise successor on the same 64-bit ring the sharded
  // router hashes with (serving/hash_ring.h), so "nearest" is
  // deterministic and placement-consistent. nullptr when empty.
  std::shared_ptr<const ModelSnapshot> NearestFor(
      const std::string& device_id) const;

  // Restores a snapshot into a model of the same architecture/bit-width.
  static Status RestoreInto(const ModelSnapshot& snapshot, QuantizedModel* qm);

  size_t size() const;

  // The store's WAL counters (zeros over a memory store) — whiteboard feed.
  WalStats wal_stats() const;

  // Drops all versions below `min_version` that are not a device's latest
  // (simple retention; holders keep their shared_ptrs alive regardless).
  // A durable store compacts its log here. Returns the number of versions
  // dropped.
  size_t TrimBelow(uint64_t min_version);

  // --- Distribution: ship registry contents across a process boundary ----

  // Serializes every snapshot with version > `since_version`, ascending,
  // as CRC-framed records under a small delta header. ExportDelta(0) is a
  // full registry image.
  std::vector<uint8_t> ExportDelta(uint64_t since_version) const;

  // Merges a blob produced by ExportDelta (possibly from another process).
  // Versions already present are skipped, so re-importing is idempotent;
  // the next published version advances past every imported one, keeping
  // monotonicity fleet-wide. Returns the number of snapshots imported. A
  // malformed delta is rejected whole (validated before any mutation); a
  // durable store's write failure mid-import can leave a prefix applied —
  // recover by retrying the same delta, which skips what landed.
  Result<size_t> ImportDelta(const std::vector<uint8_t>& delta);

 private:
  mutable Mutex mu_;
  uint64_t next_version_ QCORE_GUARDED_BY(mu_) = 1;
  // Stores are NOT internally synchronized; the registry serializes every
  // access under mu_ (the pointer itself is set once in the constructor).
  std::unique_ptr<SnapshotStore> store_ QCORE_PT_GUARDED_BY(mu_);
};

}  // namespace qcore

#endif  // QCORE_SERVING_SNAPSHOT_H_
