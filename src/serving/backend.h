// FleetBackend: the serving API v2 surface. Everything that fronts a fleet
// of calibration sessions — the single-pool FleetServer and the
// consistent-hash ShardedFleetServer (serving/router.h) — implements this
// interface, so callers (examples, benches, the serving test suites) are
// written once and run against any backend.
//
// Contract, shared by every implementation:
//   * Per-device submission order is execution order, and results are
//     bit-identical to the single-threaded pipeline for any thread count,
//     shard count, or batching configuration.
//   * TrySubmit* never blocks on model work and sheds with
//     kResourceExhausted under a configured queue bound; the Submit*
//     helpers are the unconditional forms for unbounded servers.
//   * PublishSnapshot is control-plane (never shed) and captures the model
//     in the device's submission order.
//   * Drain() returns only when every previously submitted task (including
//     work pending inside a batcher) has finished.
#ifndef QCORE_SERVING_BACKEND_H_
#define QCORE_SERVING_BACKEND_H_

#include <functional>
#include <future>
#include <string>

#include "common/status.h"
#include "core/continual.h"
#include "data/dataset.h"
#include "obs/whiteboard.h"
#include "serving/batcher.h"
#include "serving/metrics.h"
#include "serving/session.h"
#include "serving/snapshot.h"
#include "tensor/tensor.h"

namespace qcore {

// Per-submission overload-control knobs (serving/overload.h has the plane's
// full semantics).
struct InferenceSubmitOptions {
  // Latency budget in microseconds, measured from submission. 0 (default)
  // = no deadline. A request whose budget expires while parked in the
  // batcher or the session FIFO is shed with kDeadlineExceeded — its
  // future resolves to an InferenceResult whose `status` carries the code
  // and whose predictions are empty; it never reaches a forward pass.
  double latency_budget_us = 0.0;
};

class FleetBackend {
 public:
  virtual ~FleetBackend() = default;

  // Creates the device's session (clone of the backend's base model + net,
  // QCore copy, deterministic per-device seed). Must not already exist.
  virtual void RegisterDevice(const std::string& device_id, Dataset qcore) = 0;

  virtual bool HasDevice(const std::string& device_id) const = 0;
  virtual int num_sessions() const = 0;

  // Admission-controlled async quantized inference on the device's current
  // model. Sheds with kResourceExhausted when an admission bound is hit at
  // any level of the session/shard/fleet tree (never blocks, never
  // deadlocks — the overload fast-fail). `opts` carries the per-request
  // latency budget; a budget that expires post-admission resolves the
  // future with a kDeadlineExceeded result instead.
  virtual Result<std::future<InferenceResult>> TrySubmitInference(
      const std::string& device_id, Tensor x,
      const InferenceSubmitOptions& opts) = 0;

  // Budget-less convenience form (the historical two-argument API).
  Result<std::future<InferenceResult>> TrySubmitInference(
      const std::string& device_id, Tensor x) {
    return TrySubmitInference(device_id, std::move(x),
                              InferenceSubmitOptions{});
  }

  // Admission-controlled async continual-calibration step on one stream
  // batch; the test slice is evaluated after calibration. Sheds like
  // TrySubmitInference under overload.
  virtual Result<std::future<BatchStats>> TrySubmitCalibration(
      const std::string& device_id, Dataset batch, Dataset test_slice) = 0;

  // Unconditional submission forms, for backends without queue bounds. With
  // bounds configured, a shed submission is a programming error here
  // (checked) — overload-aware callers use TrySubmit*.
  std::future<InferenceResult> SubmitInference(const std::string& device_id,
                                               Tensor x);
  std::future<BatchStats> SubmitCalibration(const std::string& device_id,
                                            Dataset batch, Dataset test_slice);

  // Async snapshot publish of the device's current model into snapshots();
  // resolves to the assigned version. Runs in the session's task order (a
  // pending batched inference group is flushed first). Never shed.
  virtual std::future<uint64_t> PublishSnapshot(
      const std::string& device_id) = 0;

  // Blocks until every queued task (including pending batched inference and
  // tasks queued while draining) has finished, across all shards.
  virtual void Drain() = 0;

  // Read-side session access with a safe contract (replaces the v1
  // FleetServer::session() accessor, which handed out a raw pointer that
  // was only valid "after Drain" — unverifiable once a router can move the
  // session between shards). The backend quiesces the owning session:
  // pending batched work for the device is flushed, every queued task runs
  // to completion, and `fn` executes with exclusive access — concurrent
  // submissions for the device simply wait. `fn` must not submit work or
  // call Drain on this backend (it runs under the session's lock).
  virtual void WithSessionQuiesced(
      const std::string& device_id,
      const std::function<void(CalibrationSession&)>& fn) = 0;

  // Fleet-wide observability. For sharded backends, metrics() is the rollup
  // across shards and snapshots() the federated (shared) registry.
  virtual ServingMetrics& metrics() = 0;
  virtual const ServingMetrics& metrics() const = 0;
  virtual SnapshotRegistry& snapshots() = 0;

  // Per-shard/per-device introspection rows, maintained write-through by
  // the serving layers (obs/whiteboard.h). For sharded backends this is the
  // one fleet-wide board every shard writes into; whiteboard().Read() is a
  // snapshot-consistent image at any moment, including mid-rebalance.
  virtual Whiteboard& whiteboard() = 0;
  virtual const Whiteboard& whiteboard() const = 0;
};

}  // namespace qcore

#endif  // QCORE_SERVING_BACKEND_H_
