#include "serving/hash_ring.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace qcore {

namespace {

// FNV-1a over the bytes, finished with a full-avalanche mix — the same
// recipe DeviceSeed uses, so ring positions inherit its dispersion.
uint64_t HashBytes(const std::string& s) {
  uint64_t h = 14695981039346656037ULL;  // FNV offset basis
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;  // FNV prime
  }
  return SplitMix64Mix(h);
}

// A vnode's ring point depends only on (shard, vnode): two mix rounds over
// the pair give well-dispersed, order-independent positions.
uint64_t VnodePoint(int shard, int vnode) {
  return SplitMix64Mix(
      SplitMix64Mix(static_cast<uint64_t>(shard) * 0x9e3779b97f4a7c15ULL) ^
      static_cast<uint64_t>(vnode));
}

}  // namespace

HashRing::HashRing(int num_shards, int vnodes_per_shard)
    : num_shards_(num_shards), vnodes_per_shard_(vnodes_per_shard) {
  QCORE_CHECK_GT(num_shards, 0);
  QCORE_CHECK_GT(vnodes_per_shard, 0);
  ring_.reserve(static_cast<size_t>(num_shards) *
                static_cast<size_t>(vnodes_per_shard));
  for (int s = 0; s < num_shards; ++s) {
    for (int v = 0; v < vnodes_per_shard; ++v) {
      ring_.emplace_back(VnodePoint(s, v), s);
    }
  }
  // Sort by point; break (astronomically unlikely) point collisions by
  // shard index so the map stays deterministic either way.
  std::sort(ring_.begin(), ring_.end());
}

uint64_t HashRing::HashKey(const std::string& key) { return HashBytes(key); }

int HashRing::ShardFor(const std::string& key) const {
  const uint64_t h = HashKey(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(h, 0),
      [](const std::pair<uint64_t, int>& a, const std::pair<uint64_t, int>& b) {
        return a.first < b.first;
      });
  if (it == ring_.end()) it = ring_.begin();  // wrap past the last point
  return it->second;
}

}  // namespace qcore
