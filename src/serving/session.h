// Per-device calibration session: the unit of state in the fleet serving
// runtime. Each session owns an edge-form QuantizedModel clone, its own
// BitFlipNet copy, its own QCore and its own Rng substream, and applies
// Algorithm 3+4 (bit-flip calibration interleaved with QCore resampling)
// incrementally as that device's stream batches arrive — exactly the loop
// ContinualDriver runs in the single-threaded pipeline, which is what makes
// per-session results bit-identical to the offline pipeline under a fixed
// seed.
//
// Sessions are NOT internally synchronized. The FleetServer guarantees that
// at most one task (inference or calibration) runs per session at a time;
// anyone driving a session directly must do the same.
#ifndef QCORE_SERVING_SESSION_H_
#define QCORE_SERVING_SESSION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/continual.h"
#include "core/bitflip.h"
#include "data/dataset.h"
#include "quant/quantized_model.h"
#include "serving/snapshot.h"

namespace qcore {

class BinaryReader;
class BinaryWriter;

class CalibrationSession {
 public:
  // Clones `base_model` (deployed/edge form) and `base_bf` for exclusive
  // ownership. `seed` fixes the session's Rng: two sessions constructed from
  // the same inputs and fed the same batches produce identical models.
  CalibrationSession(std::string device_id, const QuantizedModel& base_model,
                     const BitFlipNet& base_bf, Dataset qcore,
                     const ContinualOptions& options, uint64_t seed);

  // Restore constructor: resumes a session elsewhere (e.g. on another shard)
  // from a published model snapshot plus a continuation blob written by
  // SerializeContinuation. The restored session is bit-identical to the one
  // that was serialized: same model codes (from the snapshot), same QCore
  // contents, same Rng stream position, same batch counter — so the streams
  // it processes next produce exactly the results the original would have.
  // Malformed inputs are programming errors (checked), not statuses: the
  // blob never leaves the process.
  CalibrationSession(std::string device_id, const QuantizedModel& base_model,
                     const BitFlipNet& base_bf,
                     const ContinualOptions& options,
                     const ModelSnapshot& snapshot,
                     BinaryReader* continuation);

  CalibrationSession(const CalibrationSession&) = delete;
  CalibrationSession& operator=(const CalibrationSession&) = delete;

  const std::string& device_id() const { return device_id_; }

  // Quantized inference over a batch [N, ...]; returns per-row argmax
  // labels. Does not consume the session Rng, so interleaving inference
  // requests never perturbs calibration determinism.
  std::vector<int> Predict(const Tensor& x);

  // Coalesced form of Predict: one forward pass over every input's rows,
  // scattered back to one label vector per input (bit-identical to calling
  // Predict per input — see QuantizedModel::PredictBatched). Same no-Rng
  // guarantee as Predict.
  std::vector<std::vector<int>> PredictBatch(
      const std::vector<const Tensor*>& inputs);

  // One continual-calibration step (Algorithms 3+4) on a stream batch,
  // evaluated on `test_slice`. Updates the model codes and resamples the
  // QCore in place.
  BatchStats Calibrate(const Dataset& batch, const Dataset& test_slice);

  // Accuracy of the current model on (x, labels), eval mode.
  float Evaluate(const Tensor& x, const std::vector<int>& labels);

  uint64_t batches_processed() const { return batches_processed_; }
  QuantizedModel* model() { return model_.get(); }
  const QuantizedModel& model() const { return *model_; }
  const Dataset& qcore() const { return driver_->qcore(); }

  // Writes the continuation state that is NOT captured by a model snapshot:
  // the batch counter, the Rng stream position, and the current (resampled)
  // QCore. Together with a snapshot of the model, this is everything a
  // restore constructor needs to continue the session bit-identically. The
  // caller must guarantee the session is quiescent (no task running).
  void SerializeContinuation(BinaryWriter* w) const;

 private:
  void BuildDriver(Dataset qcore);

  std::string device_id_;
  ContinualOptions options_;
  std::unique_ptr<QuantizedModel> model_;
  // Cloned only when the continual options use bit-flipping (the NoBF
  // ablation runs without one).
  std::optional<BitFlipNet> bitflip_;
  Rng rng_;
  std::unique_ptr<ContinualDriver> driver_;
  uint64_t batches_processed_ = 0;
};

// Stable 64-bit device-id hash (FNV-1a), mixed with the fleet seed to derive
// per-session Rng seeds that do not depend on registration order.
uint64_t DeviceSeed(uint64_t fleet_seed, const std::string& device_id);

}  // namespace qcore

#endif  // QCORE_SERVING_SESSION_H_
