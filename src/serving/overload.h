// Overload-control plane for the fleet serving runtime: the pieces that
// decide, under sustained load beyond capacity, WHICH work is refused or
// abandoned and which is protected — so that what the fleet does deliver
// stays bit-identical to an unloaded run of the same admitted set.
//
// Three mechanisms live here; the serving layers thread them through:
//
//  1. Deadline shedding (OverloadClock + Deadline). A submission may carry
//     a latency budget. The budget is converted to an absolute deadline at
//     admission; the batcher's flush path and the session exec path both
//     re-check it, so a request whose budget expired while parked in a
//     queue is resolved with kDeadlineExceeded instead of burning a
//     forward pass on an answer nobody is waiting for. The clock is a
//     chaos seam: kDeadlineClockSkew skews "now" forward, forcing early
//     expiry without touching any model math — a latency-only fault.
//
//  2. Hierarchical admission (AdmissionLimiter). Queue bounds compose down
//     a fleet -> shard -> session tree, in the style of grouped memory
//     limiters in production databases (cf. YDB's grouped memory limiter):
//     admitting one request reserves a slot at every level leaf-to-root,
//     any level can refuse, and a refusal rolls the partial reservation
//     back. Refusals are counted per level, so "who is the bottleneck" is
//     a gauge read, not a log dive. Caps of 0 mean unbounded at that
//     level, which is how single-shard deployments keep their historical
//     flat per-session bounds unchanged.
//
//  3. Retry shaping (RetryPolicy). Shed work is retried by callers, not by
//     the server (retrying inside would invert the point of shedding).
//     RetryWithBackoff gives TrySubmit* callers one canonical
//     seeded-jitter exponential backoff so a thousand shed clients do not
//     re-arrive in lockstep.
#ifndef QCORE_SERVING_OVERLOAD_H_
#define QCORE_SERVING_OVERLOAD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace qcore {

// ------------------------------------------------------------- deadlines

// The deadline clock. All budget/deadline arithmetic in the serving plane
// goes through Now() so the kDeadlineClockSkew fault point can skew every
// expiry check coherently from one seam.
struct OverloadClock {
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  // steady_clock::now(), plus the chaos skew when kDeadlineClockSkew is
  // armed (script arg = microseconds to leap forward).
  static TimePoint Now();

  // Absolute deadline for a budget measured from Now(). A budget of 0 (or
  // negative) means "no deadline" and maps to TimePoint::max(), the value
  // every expiry check treats as never-expiring.
  static TimePoint DeadlineFor(double budget_us);

  static constexpr TimePoint NoDeadline() { return TimePoint::max(); }

  // True when `deadline` has passed. Never true for NoDeadline().
  static bool Expired(TimePoint deadline) {
    return deadline != NoDeadline() && Now() >= deadline;
  }
};

// -------------------------------------------------- hierarchical admission

// Which level of the admission tree refused a reservation. Shed accounting
// and whiteboard rows key off this: a session refusal is the historical
// "queue full" shed; shard/fleet refusals are limiter sheds.
enum class AdmissionLevel : uint8_t {
  kSession = 0,
  kShard,
  kFleet,
  kNone,  // not refused — the reservation succeeded
};

const char* AdmissionLevelName(AdmissionLevel level);

// Per-level queue-depth caps. 0 = unbounded for that axis. `total` bounds
// inference + calibration together; the per-class caps bound each class
// alone (both are checked — a class cap cannot borrow headroom the shared
// cap does not have).
struct AdmissionCaps {
  int total = 0;
  int inference = 0;
  int calibration = 0;
};

// One node of the admission tree. Gauges are atomics written on the
// submit/complete paths; caps are immutable after construction. Nodes are
// created through AdmissionLimiter and live as long as the limiter —
// sessions that migrate away keep their node allocated (gauges at zero),
// so no submit path ever races a node teardown.
class AdmissionNode {
 public:
  AdmissionNode(AdmissionLevel level, AdmissionCaps caps, AdmissionNode* parent)
      : level_(level), caps_(caps), parent_(parent) {}

  AdmissionNode(const AdmissionNode&) = delete;
  AdmissionNode& operator=(const AdmissionNode&) = delete;

  AdmissionLevel level() const { return level_; }
  AdmissionNode* parent() const { return parent_; }
  const AdmissionCaps& caps() const { return caps_; }

  // Live reservations through this node.
  int total_depth() const { return total_.load(std::memory_order_relaxed); }
  int inference_depth() const {
    return inference_.load(std::memory_order_relaxed);
  }
  int calibration_depth() const {
    return calibration_.load(std::memory_order_relaxed);
  }
  // Reservations this node itself refused (not refusals further up).
  uint64_t refusals() const {
    return refusals_.load(std::memory_order_relaxed);
  }

 private:
  friend class AdmissionLimiter;

  // Optimistically takes one slot at THIS node; rolls back and counts a
  // refusal when a cap is exceeded. The fetch_add-then-check pattern
  // matches the historical per-session gauges: transiently overshooting by
  // the number of concurrent submitters is fine, admitting past the cap is
  // not.
  bool TryAcquireLocal(bool is_inference);
  void ReleaseLocal(bool is_inference);

  const AdmissionLevel level_;
  const AdmissionCaps caps_;
  AdmissionNode* const parent_;
  std::atomic<int> total_{0};
  std::atomic<int> inference_{0};
  std::atomic<int> calibration_{0};
  std::atomic<uint64_t> refusals_{0};
};

// The admission tree. One limiter spans one admission domain: a standalone
// FleetServer owns a private limiter (its shard node is the root's only
// child); a ShardedFleetServer owns the limiter and hands each shard its
// node, so fleet-wide caps compose over every shard's sessions.
//
// Thread-safety: node creation takes the limiter mutex; acquire/release
// are lock-free gauge traffic on the nodes themselves.
class AdmissionLimiter {
 public:
  explicit AdmissionLimiter(AdmissionCaps fleet_caps);

  AdmissionLimiter(const AdmissionLimiter&) = delete;
  AdmissionLimiter& operator=(const AdmissionLimiter&) = delete;

  AdmissionNode* fleet() { return root_.get(); }

  // Adds a shard under the fleet root / a session under its shard. Nodes
  // are never removed (see AdmissionNode).
  AdmissionNode* AddShard(AdmissionCaps caps);
  AdmissionNode* AddSession(AdmissionNode* shard, AdmissionCaps caps);

  // Reserves one slot on every node from `leaf` up to the root. On refusal
  // at any level the partial reservation is rolled back and the refusing
  // level is returned; kNone means the reservation held and must later be
  // paired with exactly one Release(leaf). The kLimiterRefuse fault point
  // injects a fleet-level refusal even when capacity exists.
  AdmissionLevel TryAcquire(AdmissionNode* leaf, bool is_inference);
  void Release(AdmissionNode* leaf, bool is_inference);

  // Refusals by level, summed over the whole tree.
  uint64_t refusals(AdmissionLevel level) const;

 private:
  std::unique_ptr<AdmissionNode> root_;
  mutable Mutex mu_;
  // Tree growth only — acquire/release never touch this vector, they walk
  // parent pointers through nodes that are immutable once handed out.
  std::vector<std::unique_ptr<AdmissionNode>> nodes_ QCORE_GUARDED_BY(mu_);
};

// ------------------------------------------------------------ retry policy

// Canonical client-side reaction to a kResourceExhausted shed: capped
// exponential backoff with seeded jitter. Deterministic given the seed, so
// stress tests replay byte-for-byte.
struct RetryPolicy {
  int max_attempts = 5;          // total tries, including the first
  uint64_t base_backoff_us = 100;
  double multiplier = 2.0;
  double jitter = 0.25;          // each wait is scaled by [1-j, 1+j)
  uint64_t seed = 1;
};

// The wait before retry number `attempt` (1 = first retry). Exposed for
// unit tests; RetryWithBackoff is the intended caller.
uint64_t ComputeBackoffUs(const RetryPolicy& policy, int attempt, Rng* rng);

// Runs `op` (a callable returning Status) until it returns anything other
// than kResourceExhausted, or attempts run out. kDeadlineExceeded is NOT
// retried: the budget is gone, a retry would just shed again later.
template <typename Op>
Status RetryWithBackoff(const RetryPolicy& policy, Op&& op) {
  QCORE_CHECK(policy.max_attempts >= 1);
  Rng rng(policy.seed);
  Status status = Status::OK();
  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    status = op();
    if (status.code() != StatusCode::kResourceExhausted) return status;
    if (attempt == policy.max_attempts) break;
    std::this_thread::sleep_for(
        std::chrono::microseconds(ComputeBackoffUs(policy, attempt, &rng)));
  }
  return status;
}

}  // namespace qcore

#endif  // QCORE_SERVING_OVERLOAD_H_
