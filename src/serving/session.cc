#include "serving/session.h"

#include <utility>

#include "quant/ste_calibrator.h"
#include "tensor/tensor_ops.h"

namespace qcore {

CalibrationSession::CalibrationSession(std::string device_id,
                                       const QuantizedModel& base_model,
                                       const BitFlipNet& base_bf,
                                       Dataset qcore,
                                       const ContinualOptions& options,
                                       uint64_t seed)
    : device_id_(std::move(device_id)),
      model_(base_model.Clone()),
      rng_(seed) {
  if (options.use_bitflip) bitflip_.emplace(base_bf.Clone());
  driver_ = std::make_unique<ContinualDriver>(
      model_.get(), bitflip_.has_value() ? &*bitflip_ : nullptr,
      std::move(qcore), options, &rng_);
}

std::vector<int> CalibrationSession::Predict(const Tensor& x) {
  Tensor logits = model_->Forward(x, /*training=*/false);
  return ArgMaxRows(logits);
}

std::vector<std::vector<int>> CalibrationSession::PredictBatch(
    const std::vector<const Tensor*>& inputs) {
  return model_->PredictBatched(inputs);
}

BatchStats CalibrationSession::Calibrate(const Dataset& batch,
                                         const Dataset& test_slice) {
  BatchStats stats = driver_->ProcessBatch(batch, test_slice);
  ++batches_processed_;
  return stats;
}

float CalibrationSession::Evaluate(const Tensor& x,
                                   const std::vector<int>& labels) {
  return QuantizedAccuracy(model_.get(), x, labels);
}

uint64_t DeviceSeed(uint64_t fleet_seed, const std::string& device_id) {
  uint64_t h = 14695981039346656037ULL;  // FNV offset basis
  for (unsigned char c : device_id) {
    h ^= c;
    h *= 1099511628211ULL;  // FNV prime
  }
  // Full-avalanche mix so fleet seeds differing in any single bit give
  // unrelated per-device streams. Any value (including 0) is a valid Rng
  // seed; Rng's constructor handles state expansion.
  return SplitMix64Mix(h ^ fleet_seed);
}

}  // namespace qcore
