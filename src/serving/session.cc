#include "serving/session.h"

#include <utility>

#include "common/serialize.h"
#include "quant/ste_calibrator.h"
#include "tensor/tensor_ops.h"

namespace qcore {

CalibrationSession::CalibrationSession(std::string device_id,
                                       const QuantizedModel& base_model,
                                       const BitFlipNet& base_bf,
                                       Dataset qcore,
                                       const ContinualOptions& options,
                                       uint64_t seed)
    : device_id_(std::move(device_id)),
      options_(options),
      model_(base_model.Clone()),
      rng_(seed) {
  if (options_.use_bitflip) bitflip_.emplace(base_bf.Clone());
  BuildDriver(std::move(qcore));
}

CalibrationSession::CalibrationSession(std::string device_id,
                                       const QuantizedModel& base_model,
                                       const BitFlipNet& base_bf,
                                       const ContinualOptions& options,
                                       const ModelSnapshot& snapshot,
                                       BinaryReader* continuation)
    : device_id_(std::move(device_id)),
      options_(options),
      model_(base_model.Clone()),
      rng_(0) {  // placeholder; the restored state below replaces it
  QCORE_CHECK(continuation != nullptr);
  const Status restored = SnapshotRegistry::RestoreInto(snapshot, model_.get());
  QCORE_CHECK_MSG(restored.ok(), "session restore: bad model snapshot");
  if (options_.use_bitflip) bitflip_.emplace(base_bf.Clone());

  auto batches = continuation->ReadU64();
  QCORE_CHECK_MSG(batches.ok(), "session restore: truncated continuation");
  batches_processed_ = batches.value();
  Rng::State state;
  for (uint64_t& word : state.s) {
    auto s = continuation->ReadU64();
    QCORE_CHECK_MSG(s.ok(), "session restore: truncated Rng state");
    word = s.value();
  }
  auto has_cached = continuation->ReadU32();
  auto cached = continuation->ReadF64();
  QCORE_CHECK_MSG(has_cached.ok() && cached.ok(),
                  "session restore: truncated Rng state");
  state.has_cached_gaussian = has_cached.value() != 0;
  state.cached_gaussian = cached.value();
  rng_.RestoreState(state);

  auto qcore = Dataset::DeserializeFrom(continuation);
  QCORE_CHECK_MSG(qcore.ok(), "session restore: bad QCore record");
  BuildDriver(std::move(qcore).value());
}

void CalibrationSession::BuildDriver(Dataset qcore) {
  driver_ = std::make_unique<ContinualDriver>(
      model_.get(), bitflip_.has_value() ? &*bitflip_ : nullptr,
      std::move(qcore), options_, &rng_);
}

void CalibrationSession::SerializeContinuation(BinaryWriter* w) const {
  w->WriteU64(batches_processed_);
  const Rng::State state = rng_.SaveState();
  for (uint64_t word : state.s) w->WriteU64(word);
  w->WriteU32(state.has_cached_gaussian ? 1 : 0);
  w->WriteF64(state.cached_gaussian);
  driver_->qcore().SerializeTo(w);
}

std::vector<int> CalibrationSession::Predict(const Tensor& x) {
  Tensor logits = model_->Forward(x, /*training=*/false);
  return ArgMaxRows(logits);
}

std::vector<std::vector<int>> CalibrationSession::PredictBatch(
    const std::vector<const Tensor*>& inputs) {
  return model_->PredictBatched(inputs);
}

BatchStats CalibrationSession::Calibrate(const Dataset& batch,
                                         const Dataset& test_slice) {
  BatchStats stats = driver_->ProcessBatch(batch, test_slice);
  ++batches_processed_;
  return stats;
}

float CalibrationSession::Evaluate(const Tensor& x,
                                   const std::vector<int>& labels) {
  return QuantizedAccuracy(model_.get(), x, labels);
}

uint64_t DeviceSeed(uint64_t fleet_seed, const std::string& device_id) {
  uint64_t h = 14695981039346656037ULL;  // FNV offset basis
  for (unsigned char c : device_id) {
    h ^= c;
    h *= 1099511628211ULL;  // FNV prime
  }
  // Full-avalanche mix so fleet seeds differing in any single bit give
  // unrelated per-device streams. Any value (including 0) is a valid Rng
  // seed; Rng's constructor handles state expansion.
  return SplitMix64Mix(h ^ fleet_seed);
}

}  // namespace qcore
