// ShardedFleetServer: the scale-out FleetBackend. N independent FleetServer
// shards — each with its own ThreadPool, session mutex map, and (when
// batching is enabled) its own InferenceBatcher — behind a consistent-hash
// ring mapping device_id -> shard. Sessions never talk across shards, so
// the per-shard pool/mutex pressure that bounded a single FleetServer now
// divides by N, while the API and every determinism property stay exactly
// those of FleetBackend: per-device results are bit-identical to a single
// unsharded server (and to the single-threaded pipeline) for any shard
// count — sessions are seeded by device id, never by placement.
//
// Shared planes:
//   * SnapshotRegistry — ONE federated registry, passed into every shard,
//     so versions are globally monotonic and a snapshot published by any
//     shard is restorable on any other (which is what makes live
//     rebalancing possible).
//   * ServingMetrics — write-through rollup: every shard records each
//     event into its own metrics AND the router's fleet rollup, so
//     metrics() is always consistent to read concurrently (no rebuild or
//     reset anywhere) and totals trivially survive shard retirement.
//     Per-shard views stay available through shard_metrics().
//
// Live rebalancing (MoveDevice / Rebalance): the source shard publishes a
// barrier snapshot for the device (flushing its pending batched inference
// group first, then waiting out its queue), serializes the session's
// continuation state, and drops the session; the target shard restores the
// session from that registry version plus the continuation. Because the
// barrier runs in the device's submission order and the restored session
// resumes the exact model codes, QCore, and Rng position, the device's
// subsequent results are provably bit-identical to never having moved
// (pinned by tests/sharding_test.cc).
//
// Migration is NON-BLOCKING for unrelated devices. The protocol:
//   1. control_mu_ serializes the control plane (one migration, rebalance,
//      or registration at a time).
//   2. A brief EXCLUSIVE routing-lock acquisition records the device in
//      migrating_ — the acquisition itself is the barrier that flushes
//      every in-flight shared-lock submission, so no thread can be
//      mid-route to the source shard once it returns.
//   3. The expensive part — draining the mover's queued backlog and the
//      detach/attach handoff — runs under the SHARED routing lock:
//      submissions for every other device proceed concurrently.
//      Submissions for the migrating device park on a condition variable
//      (WithRoutedShard) and re-route when the pin clears.
//   4. A second brief exclusive acquisition updates the routing map, then
//      the pin is dropped and parked submitters wake.
// Lock order: control_mu_ -> route_mu_ -> migration_mu_.
//
// Overload plane: the router owns the fleet-level admission root
// (serving/overload.h); every shard hangs its shard node under it, so a
// fleet-wide queue bound (max_queue_per_fleet) applies across shards on
// top of the per-shard and per-session bounds.
#ifndef QCORE_SERVING_ROUTER_H_
#define QCORE_SERVING_ROUTER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "serving/backend.h"
#include "serving/hash_ring.h"
#include "serving/overload.h"
#include "serving/server.h"

namespace qcore {

struct ShardedFleetServerOptions {
  // Shard count at construction; Rebalance() can change it live.
  int num_shards = 2;
  // Ring granularity (see serving/hash_ring.h).
  int vnodes_per_shard = HashRing::kDefaultVnodesPerShard;
  // Per-shard configuration: every shard gets its own pool of
  // `shard.num_threads` workers, its own batcher, and the same seed (device
  // seeds depend on the device id only, so placement never affects
  // results).
  FleetServerOptions shard;
  // Fleet-level admission bound: total outstanding tasks across ALL shards
  // (the root of the admission tree). 0 = unbounded. Refusals at this level
  // shed with "admission refused at fleet level".
  int max_queue_per_fleet = 0;
};

class ShardedFleetServer : public FleetBackend {
 public:
  // `shared_registry` (optional) makes every shard publish into an external
  // registry instead of the router's own federated one — e.g. a registry
  // constructed over a DurableSnapshotStore, so the whole sharded fleet's
  // snapshots survive the process and restore on the next construction
  // (the registry must outlive the router).
  ShardedFleetServer(const QuantizedModel& base_model,
                     const BitFlipNet& base_bf,
                     ShardedFleetServerOptions options,
                     SnapshotRegistry* shared_registry = nullptr);

  ShardedFleetServer(const ShardedFleetServer&) = delete;
  ShardedFleetServer& operator=(const ShardedFleetServer&) = delete;

  // Drains every shard (each shard's destructor drains its own pool).
  ~ShardedFleetServer() override;

  // FleetBackend: routing wrappers. Submissions take the routing lock
  // shared, resolve the device's shard, and delegate; registration places
  // the device by ring position.
  void RegisterDevice(const std::string& device_id, Dataset qcore) override;
  bool HasDevice(const std::string& device_id) const override;
  int num_sessions() const override;
  using FleetBackend::TrySubmitInference;
  Result<std::future<InferenceResult>> TrySubmitInference(
      const std::string& device_id, Tensor x,
      const InferenceSubmitOptions& opts) override;
  Result<std::future<BatchStats>> TrySubmitCalibration(
      const std::string& device_id, Dataset batch,
      Dataset test_slice) override;
  std::future<uint64_t> PublishSnapshot(const std::string& device_id) override;
  void Drain() override;
  void WithSessionQuiesced(
      const std::string& device_id,
      const std::function<void(CalibrationSession&)>& fn) override;
  ServingMetrics& metrics() override;
  const ServingMetrics& metrics() const override;
  SnapshotRegistry& snapshots() override { return *snapshots_; }
  // One fleet-wide board: every shard writes its rows here (shard index =
  // position in shards_), so a single Read() images the whole fleet.
  Whiteboard& whiteboard() override { return whiteboard_; }
  const Whiteboard& whiteboard() const override { return whiteboard_; }

  // --- Rebalancing control plane -----------------------------------------

  // Migrates one device to `target_shard` (see the file comment for the
  // barrier-snapshot protocol). Returns the barrier snapshot's registry
  // version. The move records a persistent placement pin: every subsequent
  // Rebalance() keeps the device on the pinned shard instead of re-deriving
  // its placement from the ring, until ClearPin() — unless the pinned shard
  // itself is retired by a shrink, which drops the pin and rehomes the
  // device by ring position.
  uint64_t MoveDevice(const std::string& device_id, int target_shard);

  // Drops the placement pin MoveDevice recorded for `device_id` (no-op if
  // none). The device stays where it is until the next Rebalance(), which
  // re-derives its placement from the ring again.
  void ClearPin(const std::string& device_id);

  // Changes the shard count live: builds the new ring, creates any new
  // shards, migrates exactly the devices whose placement changed — pinned
  // devices stay on their pinned shard; everyone else follows the ring
  // (growth moves devices only onto new shards — the consistent-hash
  // minimal-movement property) — then drains and retires surplus shards
  // (folding their metrics into the rollup). Existing futures stay valid;
  // subsequent submissions route by the new map.
  void Rebalance(int new_shard_count);

  // --- Introspection (benches, tests, reports) ---------------------------

  int num_shards() const;
  // Current shard of a registered device.
  int ShardOf(const std::string& device_id) const;
  int SessionCountOnShard(int shard) const;
  // Per-shard metrics view (the rollup is metrics()). The reference is
  // valid only until the next Rebalance() — a retired shard's metrics die
  // with it (their events remain in the rollup); read, don't retain.
  const ServingMetrics& shard_metrics(int shard) const;

 private:
  // What one barrier-snapshot migration produced. `session_lost` is the
  // chaos path (FaultPoint::kShardCrashDuringMigration): the target shard
  // "crashed" between detach and attach, so the continuation is gone — the
  // caller must drop the device from the routing maps. The barrier version
  // is still valid either way; it is what a warm re-registration restores
  // the device's model from (the documented continuation gap: codes come
  // back bit-identical, Rng/QCore/batch-counter state starts fresh).
  struct MigrationOutcome {
    uint64_t barrier_version = 0;
    bool session_lost = false;
  };

  std::unique_ptr<FleetServer> MakeShard(int index);
  // One barrier-snapshot handoff. Caller holds route_mu_ SHARED plus the
  // device's migration pin (its submissions are parked), with control_mu_
  // serializing against other control-plane work — the detach/attach only
  // touches shard-internal state, so the shared lock suffices.
  MigrationOutcome MigratePinned(const std::string& device_id, int source,
                                 int target) QCORE_REQUIRES_SHARED(route_mu_);
  int ShardIndexFor(const std::string& device_id) const
      QCORE_REQUIRES_SHARED(route_mu_);

  // Routes `device_id` and runs `fn(shard)` under the shared routing lock.
  // If the device is mid-migration, parks (without any lock that would
  // stall other devices) until the pin clears, then re-routes — the
  // non-blocking-migration contract: callers never observe a half-moved
  // device, and never block behind another device's migration.
  template <typename Fn>
  auto WithRoutedShard(const std::string& device_id, Fn&& fn)
      -> decltype(fn(std::declval<FleetServer&>())) {
    for (;;) {
      SharedLock lock(route_mu_);
      const int shard = ShardIndexFor(device_id);
      {
        MutexLock mig(migration_mu_);
        if (migrating_.count(device_id) > 0) {
          lock.Unlock();  // park without holding up the routing plane
          migration_cv_.Wait(migration_mu_, [&]() {
            migration_mu_.AssertHeld();
            return migrating_.count(device_id) == 0;
          });
          continue;  // re-route: the map may now point elsewhere
        }
      }
      return fn(*shards_[static_cast<size_t>(shard)]);
    }
  }

  const QuantizedModel& base_model_;
  const BitFlipNet& base_bf_;
  ShardedFleetServerOptions options_;

  // Root of the fleet admission tree; every shard's node hangs under its
  // fleet() root. Declared before shards_ so the nodes outlive the shards
  // that hold pointers into them.
  AdmissionLimiter limiter_;

  // Federated across shards; declared before shards_ so they outlive them.
  // Used unless the constructor received an external (e.g. durable)
  // registry, which snapshots_ then points at instead.
  SnapshotRegistry owned_snapshots_;
  SnapshotRegistry* snapshots_;
  // Write-through fleet rollup: every shard records each event here as
  // well as in its own metrics (see FleetServer's rollup_metrics). Never
  // reset, so concurrent readers always see consistent, monotone totals.
  ServingMetrics rollup_;
  // Fleet whiteboard, same write-through discipline: shards hold row
  // handles into it, so it must outlive shards_ (declared before it; a
  // retiring shard's destructor still flags its row retired).
  Whiteboard whiteboard_;

  // Serializes the control plane: MoveDevice, Rebalance, RegisterDevice.
  // Always taken before route_mu_ (see the file-comment lock order).
  Mutex control_mu_;

  // Guards ring_/shards_/device_shard_/pinned_. Shared: submissions,
  // queries, and the long drain phase of a migration. Exclusive: only the
  // brief pin-insert and map-update phases, plus registration and shard
  // retirement.
  mutable SharedMutex route_mu_;

  // The migration pin set: devices currently mid-handoff. Guarded by
  // migration_mu_ (taken after route_mu_ when both are held); parked
  // submitters wait on migration_cv_ in WithRoutedShard.
  mutable Mutex migration_mu_;
  CondVar migration_cv_;
  std::set<std::string> migrating_ QCORE_GUARDED_BY(migration_mu_);
  HashRing ring_ QCORE_GUARDED_BY(route_mu_);
  std::vector<std::unique_ptr<FleetServer>> shards_
      QCORE_GUARDED_BY(route_mu_);
  std::map<std::string, int> device_shard_ QCORE_GUARDED_BY(route_mu_);
  // Placement overrides from MoveDevice, consulted before the ring on every
  // Rebalance (the policy layer the ROADMAP asked for).
  std::map<std::string, int> pinned_ QCORE_GUARDED_BY(route_mu_);
};

}  // namespace qcore

#endif  // QCORE_SERVING_ROUTER_H_
