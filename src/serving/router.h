// ShardedFleetServer: the scale-out FleetBackend. N independent FleetServer
// shards — each with its own ThreadPool, session mutex map, and (when
// batching is enabled) its own InferenceBatcher — behind a consistent-hash
// ring mapping device_id -> shard. Sessions never talk across shards, so
// the per-shard pool/mutex pressure that bounded a single FleetServer now
// divides by N, while the API and every determinism property stay exactly
// those of FleetBackend: per-device results are bit-identical to a single
// unsharded server (and to the single-threaded pipeline) for any shard
// count — sessions are seeded by device id, never by placement.
//
// Shared planes:
//   * SnapshotRegistry — ONE federated registry, passed into every shard,
//     so versions are globally monotonic and a snapshot published by any
//     shard is restorable on any other (which is what makes live
//     rebalancing possible).
//   * ServingMetrics — write-through rollup: every shard records each
//     event into its own metrics AND the router's fleet rollup, so
//     metrics() is always consistent to read concurrently (no rebuild or
//     reset anywhere) and totals trivially survive shard retirement.
//     Per-shard views stay available through shard_metrics().
//
// Live rebalancing (MoveDevice / Rebalance): under the exclusive routing
// lock the source shard publishes a barrier snapshot for the device
// (flushing its pending batched inference group first, then waiting out
// its queue), serializes the session's continuation state, and drops the
// session; the target shard restores the session from that registry
// version plus the continuation. Submissions after the lock releases route
// to the new shard. Because the barrier runs in the device's submission
// order and the restored session resumes the exact model codes, QCore, and
// Rng position, the device's subsequent results are provably bit-identical
// to never having moved (pinned by tests/sharding_test.cc). Note the cost:
// while a migration waits out the moving device's queued backlog, the
// exclusive lock holds ALL new submissions (in-flight shard work keeps
// running) — rebalancing is a control-plane pause, sized by the deepest
// moving queue. A per-device migration pin that keeps unrelated devices
// admitting is the known follow-up (ROADMAP).
#ifndef QCORE_SERVING_ROUTER_H_
#define QCORE_SERVING_ROUTER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "serving/backend.h"
#include "serving/hash_ring.h"
#include "serving/server.h"

namespace qcore {

struct ShardedFleetServerOptions {
  // Shard count at construction; Rebalance() can change it live.
  int num_shards = 2;
  // Ring granularity (see serving/hash_ring.h).
  int vnodes_per_shard = HashRing::kDefaultVnodesPerShard;
  // Per-shard configuration: every shard gets its own pool of
  // `shard.num_threads` workers, its own batcher, and the same seed (device
  // seeds depend on the device id only, so placement never affects
  // results).
  FleetServerOptions shard;
};

class ShardedFleetServer : public FleetBackend {
 public:
  // `shared_registry` (optional) makes every shard publish into an external
  // registry instead of the router's own federated one — e.g. a registry
  // constructed over a DurableSnapshotStore, so the whole sharded fleet's
  // snapshots survive the process and restore on the next construction
  // (the registry must outlive the router).
  ShardedFleetServer(const QuantizedModel& base_model,
                     const BitFlipNet& base_bf,
                     ShardedFleetServerOptions options,
                     SnapshotRegistry* shared_registry = nullptr);

  ShardedFleetServer(const ShardedFleetServer&) = delete;
  ShardedFleetServer& operator=(const ShardedFleetServer&) = delete;

  // Drains every shard (each shard's destructor drains its own pool).
  ~ShardedFleetServer() override;

  // FleetBackend: routing wrappers. Submissions take the routing lock
  // shared, resolve the device's shard, and delegate; registration places
  // the device by ring position.
  void RegisterDevice(const std::string& device_id, Dataset qcore) override;
  bool HasDevice(const std::string& device_id) const override;
  int num_sessions() const override;
  Result<std::future<InferenceResult>> TrySubmitInference(
      const std::string& device_id, Tensor x) override;
  Result<std::future<BatchStats>> TrySubmitCalibration(
      const std::string& device_id, Dataset batch,
      Dataset test_slice) override;
  std::future<uint64_t> PublishSnapshot(const std::string& device_id) override;
  void Drain() override;
  void WithSessionQuiesced(
      const std::string& device_id,
      const std::function<void(CalibrationSession&)>& fn) override;
  ServingMetrics& metrics() override;
  const ServingMetrics& metrics() const override;
  SnapshotRegistry& snapshots() override { return *snapshots_; }
  // One fleet-wide board: every shard writes its rows here (shard index =
  // position in shards_), so a single Read() images the whole fleet.
  Whiteboard& whiteboard() override { return whiteboard_; }
  const Whiteboard& whiteboard() const override { return whiteboard_; }

  // --- Rebalancing control plane -----------------------------------------

  // Migrates one device to `target_shard` (see the file comment for the
  // barrier-snapshot protocol). Returns the barrier snapshot's registry
  // version. The move records a persistent placement pin: every subsequent
  // Rebalance() keeps the device on the pinned shard instead of re-deriving
  // its placement from the ring, until ClearPin() — unless the pinned shard
  // itself is retired by a shrink, which drops the pin and rehomes the
  // device by ring position.
  uint64_t MoveDevice(const std::string& device_id, int target_shard);

  // Drops the placement pin MoveDevice recorded for `device_id` (no-op if
  // none). The device stays where it is until the next Rebalance(), which
  // re-derives its placement from the ring again.
  void ClearPin(const std::string& device_id);

  // Changes the shard count live: builds the new ring, creates any new
  // shards, migrates exactly the devices whose placement changed — pinned
  // devices stay on their pinned shard; everyone else follows the ring
  // (growth moves devices only onto new shards — the consistent-hash
  // minimal-movement property) — then drains and retires surplus shards
  // (folding their metrics into the rollup). Existing futures stay valid;
  // subsequent submissions route by the new map.
  void Rebalance(int new_shard_count);

  // --- Introspection (benches, tests, reports) ---------------------------

  int num_shards() const;
  // Current shard of a registered device.
  int ShardOf(const std::string& device_id) const;
  int SessionCountOnShard(int shard) const;
  // Per-shard metrics view (the rollup is metrics()). The reference is
  // valid only until the next Rebalance() — a retired shard's metrics die
  // with it (their events remain in the rollup); read, don't retain.
  const ServingMetrics& shard_metrics(int shard) const;

 private:
  // What one barrier-snapshot migration produced. `session_lost` is the
  // chaos path (FaultPoint::kShardCrashDuringMigration): the target shard
  // "crashed" between detach and attach, so the continuation is gone — the
  // caller must drop the device from the routing maps. The barrier version
  // is still valid either way; it is what a warm re-registration restores
  // the device's model from (the documented continuation gap: codes come
  // back bit-identical, Rng/QCore/batch-counter state starts fresh).
  struct MigrationOutcome {
    uint64_t barrier_version = 0;
    bool session_lost = false;
  };

  std::unique_ptr<FleetServer> MakeShard(int index);
  // Caller holds route_mu_ exclusive.
  MigrationOutcome MigrateLocked(const std::string& device_id, int source,
                                 int target);
  int ShardIndexFor(const std::string& device_id) const;  // shared lock held

  const QuantizedModel& base_model_;
  const BitFlipNet& base_bf_;
  ShardedFleetServerOptions options_;

  // Federated across shards; declared before shards_ so they outlive them.
  // Used unless the constructor received an external (e.g. durable)
  // registry, which snapshots_ then points at instead.
  SnapshotRegistry owned_snapshots_;
  SnapshotRegistry* snapshots_;
  // Write-through fleet rollup: every shard records each event here as
  // well as in its own metrics (see FleetServer's rollup_metrics). Never
  // reset, so concurrent readers always see consistent, monotone totals.
  ServingMetrics rollup_;
  // Fleet whiteboard, same write-through discipline: shards hold row
  // handles into it, so it must outlive shards_ (declared before it; a
  // retiring shard's destructor still flags its row retired).
  Whiteboard whiteboard_;

  // Guards ring_/shards_/device_shard_. Shared: submissions, queries.
  // Exclusive: registration, MoveDevice, Rebalance.
  mutable std::shared_mutex route_mu_;
  HashRing ring_;
  std::vector<std::unique_ptr<FleetServer>> shards_;
  std::map<std::string, int> device_shard_;
  // Placement overrides from MoveDevice, consulted before the ring on every
  // Rebalance (the policy layer the ROADMAP asked for). Guarded by
  // route_mu_ like the rest of the routing state.
  std::map<std::string, int> pinned_;
};

}  // namespace qcore

#endif  // QCORE_SERVING_ROUTER_H_
