#include "serving/router.h"

#include <utility>
#include <vector>

#include "common/check.h"
#include "obs/trace.h"
#include "testing/fault_injector.h"

namespace qcore {

ShardedFleetServer::ShardedFleetServer(const QuantizedModel& base_model,
                                       const BitFlipNet& base_bf,
                                       ShardedFleetServerOptions options,
                                       SnapshotRegistry* shared_registry)
    : base_model_(base_model),
      base_bf_(base_bf),
      options_(std::move(options)),
      limiter_(AdmissionCaps{options_.max_queue_per_fleet, 0, 0}),
      snapshots_(shared_registry != nullptr ? shared_registry
                                            : &owned_snapshots_),
      ring_(options_.num_shards, options_.vnodes_per_shard) {
  QCORE_CHECK_GT(options_.num_shards, 0);
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(MakeShard(s));
  }
}

ShardedFleetServer::~ShardedFleetServer() {
  // Each shard's destructor drains its own pool; nothing shared to tear
  // down first (the registry outlives shards_ by declaration order).
}

std::unique_ptr<FleetServer> ShardedFleetServer::MakeShard(int index) {
  return std::make_unique<FleetServer>(base_model_, base_bf_, options_.shard,
                                       snapshots_, &rollup_, &whiteboard_,
                                       index, &limiter_);
}

int ShardedFleetServer::ShardIndexFor(const std::string& device_id) const {
  auto it = device_shard_.find(device_id);
  QCORE_CHECK_MSG(it != device_shard_.end(),
                  ("unknown device: " + device_id).c_str());
  return it->second;
}

void ShardedFleetServer::RegisterDevice(const std::string& device_id,
                                        Dataset qcore) {
  // Control-plane, like migration: control_mu_ keeps registration from
  // landing a session on a shard a concurrent Rebalance is about to
  // retire, and the clone-heavy session construction runs under the
  // exclusive routing lock (a session on a shard the map does not know
  // about — or vice versa — would break retirement's empty-shard
  // invariant). Fleets register devices up front or at device-arrival
  // rate, not per request.
  MutexLock control(control_mu_);
  WriterLock lock(route_mu_);
  QCORE_CHECK_MSG(device_shard_.count(device_id) == 0,
                  ("device registered twice: " + device_id).c_str());
  const int shard = ring_.ShardFor(device_id);
  shards_[static_cast<size_t>(shard)]->RegisterDevice(device_id,
                                                      std::move(qcore));
  device_shard_[device_id] = shard;
}

bool ShardedFleetServer::HasDevice(const std::string& device_id) const {
  SharedLock lock(route_mu_);
  return device_shard_.count(device_id) > 0;
}

int ShardedFleetServer::num_sessions() const {
  SharedLock lock(route_mu_);
  return static_cast<int>(device_shard_.size());
}

Result<std::future<InferenceResult>> ShardedFleetServer::TrySubmitInference(
    const std::string& device_id, Tensor x, const InferenceSubmitOptions& opts) {
  return WithRoutedShard(device_id, [&](FleetServer& shard) {
    return shard.TrySubmitInference(device_id, std::move(x), opts);
  });
}

Result<std::future<BatchStats>> ShardedFleetServer::TrySubmitCalibration(
    const std::string& device_id, Dataset batch, Dataset test_slice) {
  return WithRoutedShard(device_id, [&](FleetServer& shard) {
    return shard.TrySubmitCalibration(device_id, std::move(batch),
                                      std::move(test_slice));
  });
}

std::future<uint64_t> ShardedFleetServer::PublishSnapshot(
    const std::string& device_id) {
  return WithRoutedShard(device_id, [&](FleetServer& shard) {
    return shard.PublishSnapshot(device_id);
  });
}

void ShardedFleetServer::Drain() {
  // The shared lock keeps the shard list stable (a concurrent Rebalance
  // waits until the drain finishes); shard drains are independent, so
  // sequential order is fine — each one only waits on its own work.
  SharedLock lock(route_mu_);
  for (auto& shard : shards_) shard->Drain();
}

void ShardedFleetServer::WithSessionQuiesced(
    const std::string& device_id,
    const std::function<void(CalibrationSession&)>& fn) {
  WithRoutedShard(device_id, [&](FleetServer& shard) {
    shard.WithSessionQuiesced(device_id, fn);
  });
}

// The rollup is write-through (shards record into it directly), so both
// accessors are plain reads — always consistent, no locks, no rebuild.
ServingMetrics& ShardedFleetServer::metrics() { return rollup_; }

const ServingMetrics& ShardedFleetServer::metrics() const { return rollup_; }

uint64_t ShardedFleetServer::MoveDevice(const std::string& device_id,
                                        int target_shard) {
  // Phase numbering follows the protocol in the file comment.
  MutexLock control(control_mu_);
  int source;
  {
    // Phase 2 — brief exclusive: validate, record the persistent placement
    // pin (an explicit move is an operator decision Rebalance keeps
    // honoring), and mark the device migrating. The exclusive acquisition
    // itself flushes every in-flight shared-lock submission.
    WriterLock lock(route_mu_);
    QCORE_CHECK(target_shard >= 0 &&
                target_shard < static_cast<int>(shards_.size()));
    source = ShardIndexFor(device_id);
    pinned_[device_id] = target_shard;
    MutexLock mig(migration_mu_);
    migrating_.insert(device_id);
  }
  uint64_t version = 0;
  bool session_lost = false;
  if (source == target_shard) {
    // Degenerate move: still publish the barrier (callers rely on getting a
    // version back), but skip the detach/attach. Runs under the shared lock
    // like any submission; control_mu_ keeps shards_ stable.
    SharedLock lock(route_mu_);
    version =
        shards_[static_cast<size_t>(source)]->PublishSnapshot(device_id).get();
  } else {
    // Phase 3 — the expensive drain + handoff, under the SHARED lock:
    // unrelated devices keep submitting throughout.
    SharedLock lock(route_mu_);
    const MigrationOutcome outcome =
        MigratePinned(device_id, source, target_shard);
    version = outcome.barrier_version;
    session_lost = outcome.session_lost;
  }
  {
    // Phase 4 — brief exclusive: publish the new placement.
    WriterLock lock(route_mu_);
    if (session_lost) {
      device_shard_.erase(device_id);
      pinned_.erase(device_id);
    } else if (source != target_shard) {
      device_shard_[device_id] = target_shard;
    }
  }
  {
    // Unpin and wake the device's parked submissions; they re-route to the
    // new shard (or fail FindSession's check if the session was lost).
    MutexLock mig(migration_mu_);
    migrating_.erase(device_id);
  }
  migration_cv_.NotifyAll();
  return version;
}

void ShardedFleetServer::ClearPin(const std::string& device_id) {
  WriterLock lock(route_mu_);
  pinned_.erase(device_id);
}

ShardedFleetServer::MigrationOutcome ShardedFleetServer::MigratePinned(
    const std::string& device_id, int source, int target) {
  SessionHandoff handoff =
      shards_[static_cast<size_t>(source)]->DetachSession(device_id);
  // The fault (and its trace event) rides the migration span, so a chaos
  // post-mortem shows detach -> faultInjected with no matching attach.
  ScopedTraceSpan scope(handoff.trace_span);
  if (MaybeFault(FaultPoint::kShardCrashDuringMigration)) {
    // The target shard dies holding the handoff: its continuation is lost
    // (the barrier snapshot is NOT — it lives in the shared registry).
    // Surface the loss on both whiteboard rows; the caller erases the
    // device from routing so HasDevice() turns false and the operator's
    // recovery is a warm re-registration from the barrier snapshot.
    const Status crash = Status::IoError(
        "shard " + std::to_string(target) +
        " crashed during migration of " + device_id + " (injected)");
    whiteboard_.UpsertDevice(device_id, target, WarmStartOrigin::kCold)
        ->RecordError(crash);
    whiteboard_.RegisterShard(target)->RecordError(crash);
    return {handoff.barrier_version, /*session_lost=*/true};
  }
  shards_[static_cast<size_t>(target)]->AttachSession(handoff);
  return {handoff.barrier_version, /*session_lost=*/false};
}

void ShardedFleetServer::Rebalance(int new_shard_count) {
  MutexLock control(control_mu_);
  QCORE_CHECK_GT(new_shard_count, 0);
  HashRing new_ring(new_shard_count, options_.vnodes_per_shard);
  struct PlannedMove {
    std::string device_id;
    int source;
    int target;
  };
  std::vector<PlannedMove> moves;
  {
    // Brief exclusive: grow the shard vector, plan the moves, and pin
    // every mover at once — the pin set makes their submissions park for
    // the duration while everyone else keeps flowing.
    //
    // Placement: a pin from MoveDevice overrides the ring, unless its
    // target shard is being retired by this shrink — then the pin is
    // dropped and the device rehomes by ring position. The moves are
    // collected first, then executed: a crash-faulted migration erases its
    // device from device_shard_, which must not invalidate a live
    // iterator. Collection is map order (deterministic), so
    // barrier-snapshot versions are too.
    WriterLock lock(route_mu_);
    while (static_cast<int>(shards_.size()) < new_shard_count) {
      shards_.push_back(MakeShard(static_cast<int>(shards_.size())));
    }
    for (const auto& [device_id, shard] : device_shard_) {
      int target;
      auto pin = pinned_.find(device_id);
      if (pin != pinned_.end() && pin->second < new_shard_count) {
        target = pin->second;
      } else {
        if (pin != pinned_.end()) pinned_.erase(pin);
        target = new_ring.ShardFor(device_id);
      }
      if (target != shard) moves.push_back({device_id, shard, target});
    }
    MutexLock mig(migration_mu_);
    for (const PlannedMove& m : moves) migrating_.insert(m.device_id);
  }
  // Per mover: long drain + handoff under the shared lock, brief exclusive
  // map update, then unpin immediately — a device parked behind the first
  // move does not also wait out the rest of the plan.
  for (const PlannedMove& move : moves) {
    MigrationOutcome outcome;
    {
      SharedLock lock(route_mu_);
      outcome = MigratePinned(move.device_id, move.source, move.target);
    }
    {
      WriterLock lock(route_mu_);
      if (outcome.session_lost) {
        device_shard_.erase(move.device_id);
        pinned_.erase(move.device_id);
      } else {
        device_shard_[move.device_id] = move.target;
      }
    }
    {
      MutexLock mig(migration_mu_);
      migrating_.erase(move.device_id);
    }
    migration_cv_.NotifyAll();
  }
  {
    // Final exclusive: retire surplus shards — every session has been
    // migrated off, the updated map routes nothing at them, and the
    // exclusive acquisition has flushed any shared-lock caller still
    // touching one. Drain straggling control work, then destroy; their
    // events already live in the write-through rollup, so fleet totals
    // never regress.
    WriterLock lock(route_mu_);
    while (static_cast<int>(shards_.size()) > new_shard_count) {
      FleetServer* shard = shards_.back().get();
      QCORE_CHECK_MSG(shard->num_sessions() == 0,
                      "Rebalance: retiring a shard that still owns sessions");
      shard->Drain();
      shards_.pop_back();
    }
    ring_ = std::move(new_ring);
    options_.num_shards = new_shard_count;
  }
}

int ShardedFleetServer::num_shards() const {
  SharedLock lock(route_mu_);
  return static_cast<int>(shards_.size());
}

int ShardedFleetServer::ShardOf(const std::string& device_id) const {
  SharedLock lock(route_mu_);
  return ShardIndexFor(device_id);
}

int ShardedFleetServer::SessionCountOnShard(int shard) const {
  SharedLock lock(route_mu_);
  QCORE_CHECK(shard >= 0 && shard < static_cast<int>(shards_.size()));
  return shards_[static_cast<size_t>(shard)]->num_sessions();
}

const ServingMetrics& ShardedFleetServer::shard_metrics(int shard) const {
  SharedLock lock(route_mu_);
  QCORE_CHECK(shard >= 0 && shard < static_cast<int>(shards_.size()));
  return shards_[static_cast<size_t>(shard)]->metrics();
}

}  // namespace qcore
