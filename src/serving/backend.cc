#include "serving/backend.h"

#include <utility>

#include "common/check.h"

namespace qcore {

std::future<InferenceResult> FleetBackend::SubmitInference(
    const std::string& device_id, Tensor x) {
  Result<std::future<InferenceResult>> result =
      TrySubmitInference(device_id, std::move(x));
  QCORE_CHECK_MSG(result.ok(),
                  "SubmitInference shed; use TrySubmitInference with "
                  "bounded queues");
  return std::move(result).value();
}

std::future<BatchStats> FleetBackend::SubmitCalibration(
    const std::string& device_id, Dataset batch, Dataset test_slice) {
  Result<std::future<BatchStats>> result = TrySubmitCalibration(
      device_id, std::move(batch), std::move(test_slice));
  QCORE_CHECK_MSG(result.ok(),
                  "SubmitCalibration shed; use TrySubmitCalibration with "
                  "bounded queues");
  return std::move(result).value();
}

}  // namespace qcore
