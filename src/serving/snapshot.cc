#include "serving/snapshot.h"

#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/serialize.h"
#include "serving/hash_ring.h"
#include "serving/snapshot_store.h"
#include "testing/fault_injector.h"

namespace qcore {

namespace {
// Registry-delta header: magic + format version + record count. The records
// themselves are CRC-framed (common/serialize), so a delta is
// integrity-checked end to end without trusting its transport.
constexpr uint32_t kDeltaMagic = 0x544C4451;  // "QDLT"
constexpr uint32_t kDeltaVersion = 1;
}  // namespace

SnapshotRegistry::SnapshotRegistry()
    : store_(std::make_unique<MemorySnapshotStore>()) {}

SnapshotRegistry::SnapshotRegistry(std::unique_ptr<SnapshotStore> store)
    : store_(std::move(store)) {
  QCORE_CHECK_MSG(store_ != nullptr, "SnapshotRegistry: null store");
  // Resume numbering after whatever the store recovered (1 when empty), so
  // versions stay monotonic across a process restart over the same log.
  next_version_ = store_->MaxVersion() + 1;
}

SnapshotRegistry::~SnapshotRegistry() = default;

uint64_t SnapshotRegistry::Publish(const QuantizedModel& qm,
                                   const std::string& device_id,
                                   uint64_t batches_seen) {
  // Serialize outside the lock: the expensive part (walking the model) must
  // not serialize all publishing sessions behind one mutex.
  BinaryWriter w;
  qm.SerializeTo(&w);
  auto snap = std::make_shared<ModelSnapshot>();
  snap->device_id = device_id;
  snap->batches_seen = batches_seen;
  snap->bytes = w.TakeBuffer();

  MutexLock lock(mu_);
  snap->version = next_version_++;
  std::shared_ptr<const ModelSnapshot> frozen = std::move(snap);
  const uint64_t version = frozen->version;
  const Status put = store_->Put(std::move(frozen));
  QCORE_CHECK_MSG(put.ok(), "SnapshotRegistry: store write failed");
  return version;
}

std::shared_ptr<const ModelSnapshot> SnapshotRegistry::Latest() const {
  MutexLock lock(mu_);
  return store_->Latest();
}

std::shared_ptr<const ModelSnapshot> SnapshotRegistry::LatestFor(
    const std::string& device_id) const {
  MutexLock lock(mu_);
  return store_->LatestFor(device_id);
}

std::shared_ptr<const ModelSnapshot> SnapshotRegistry::Get(
    uint64_t version) const {
  MutexLock lock(mu_);
  return store_->Get(version);
}

std::shared_ptr<const ModelSnapshot> SnapshotRegistry::NearestFor(
    const std::string& device_id) const {
  MutexLock lock(mu_);
  if (auto own = store_->LatestFor(device_id)) return own;
  // Cohort-nearest: clockwise successor on the 64-bit ring, i.e. the device
  // whose hash is the smallest distance (hash(dev) - hash(id)) mod 2^64
  // ahead of ours — the same geometry the router places sessions with, so
  // a warm start picks the neighbor whose shard (and typically cohort) the
  // device would share.
  const uint64_t origin = HashRing::HashKey(device_id);
  std::shared_ptr<const ModelSnapshot> best;
  uint64_t best_distance = 0;
  store_->ForEachDeviceLatest(
      [&](const std::shared_ptr<const ModelSnapshot>& snap) {
        const uint64_t distance =
            HashRing::HashKey(snap->device_id) - origin;  // mod-2^64 wrap
        if (best == nullptr || distance < best_distance) {
          best = snap;
          best_distance = distance;
        }
      });
  return best;
}

Status SnapshotRegistry::RestoreInto(const ModelSnapshot& snapshot,
                                     QuantizedModel* qm) {
  // BinaryReader owns its buffer, so restoring copies the blob once.
  // Acceptable: restores are rollback/warm-start events, not per-batch work
  // like Publish. A non-owning reader view would remove it if that changes.
  BinaryReader r(snapshot.bytes);
  return qm->DeserializeFrom(&r);
}

size_t SnapshotRegistry::size() const {
  MutexLock lock(mu_);
  return store_->size();
}

WalStats SnapshotRegistry::wal_stats() const {
  MutexLock lock(mu_);
  return store_->wal_stats();
}

size_t SnapshotRegistry::TrimBelow(uint64_t min_version) {
  MutexLock lock(mu_);
  auto dropped = store_->TrimBelow(min_version);
  QCORE_CHECK_MSG(dropped.ok(), "SnapshotRegistry: store trim failed");
  return dropped.value();
}

std::vector<uint8_t> SnapshotRegistry::ExportDelta(
    uint64_t since_version) const {
  MutexLock lock(mu_);
  std::vector<std::shared_ptr<const ModelSnapshot>> picked;
  store_->ForEach([&](const std::shared_ptr<const ModelSnapshot>& snap) {
    if (snap->version > since_version) picked.push_back(snap);
  });
  BinaryWriter header;
  header.WriteU32(kDeltaMagic);
  header.WriteU32(kDeltaVersion);
  header.WriteU64(picked.size());
  std::vector<uint8_t> out = header.TakeBuffer();
  const size_t header_bytes = out.size();
  for (const auto& snap : picked) {
    AppendFramedRecord(EncodeSnapshotRecord(*snap), &out);
  }
  uint64_t cut_bytes = 0;
  if (out.size() > header_bytes &&
      MaybeFault(FaultPoint::kSnapshotExportTruncate, &cut_bytes)) {
    // The delta is cut in transit (arg = bytes to drop, default: the last
    // third of the record bytes). The header still promises the full
    // record count, so ANY cut into the records makes ImportDelta reject
    // the blob whole — the documented degradation is "retry with a fresh
    // export", never a half-applied delta.
    const size_t record_bytes = out.size() - header_bytes;
    size_t cut = cut_bytes > 0 ? static_cast<size_t>(cut_bytes)
                               : record_bytes / 3 + 1;
    if (cut > record_bytes) cut = record_bytes;
    out.resize(out.size() - cut);
  }
  return out;
}

Result<size_t> SnapshotRegistry::ImportDelta(
    const std::vector<uint8_t>& delta) {
  if (MaybeFault(FaultPoint::kSnapshotImportDrop)) {
    // The payload never arrived. Nothing was touched, so the recovery path
    // is simply resending the same delta — imports are idempotent.
    return Status::IoError("registry delta: dropped in transit (injected)");
  }
  constexpr size_t kHeaderBytes = 2 * sizeof(uint32_t) + sizeof(uint64_t);
  if (delta.size() < kHeaderBytes) {
    return Status::Corruption("registry delta: short header");
  }
  uint32_t magic = 0, format = 0;
  uint64_t count = 0;
  std::memcpy(&magic, delta.data(), sizeof(magic));
  std::memcpy(&format, delta.data() + sizeof(magic), sizeof(format));
  std::memcpy(&count, delta.data() + 2 * sizeof(uint32_t), sizeof(count));
  if (magic != kDeltaMagic) {
    return Status::Corruption("registry delta: bad magic");
  }
  if (format != kDeltaVersion) {
    return Status::Corruption("registry delta: unsupported version");
  }

  // Decode every record before mutating anything, so a corrupt delta is
  // rejected whole instead of half-applied. (A durable store's WRITE can
  // still fail mid-import — disk full — leaving a prefix applied; that is
  // safe because imports are idempotent: retrying the same delta skips
  // what already landed and completes the rest.)
  std::vector<ModelSnapshot> records;
  size_t pos = kHeaderBytes;
  for (uint64_t i = 0; i < count; ++i) {
    auto frame = ReadFramedRecord(delta, &pos);
    if (!frame.ok()) return frame.status();
    auto snap = DecodeSnapshotRecord(frame.value());
    if (!snap.ok()) return snap.status();
    records.push_back(std::move(snap).value());
  }
  if (pos != delta.size()) {
    return Status::Corruption("registry delta: trailing bytes");
  }

  MutexLock lock(mu_);
  size_t imported = 0;
  for (ModelSnapshot& record : records) {
    if (store_->Has(record.version)) continue;  // idempotent re-import
    const uint64_t version = record.version;
    QCORE_RETURN_NOT_OK(store_->Put(
        std::make_shared<const ModelSnapshot>(std::move(record))));
    if (version >= next_version_) next_version_ = version + 1;
    ++imported;
  }
  return imported;
}

}  // namespace qcore
