#include "serving/snapshot.h"

#include <utility>

#include "common/serialize.h"

namespace qcore {

uint64_t SnapshotRegistry::Publish(const QuantizedModel& qm,
                                   const std::string& device_id,
                                   uint64_t batches_seen) {
  // Serialize outside the lock: the expensive part (walking the model) must
  // not serialize all publishing sessions behind one mutex.
  BinaryWriter w;
  qm.SerializeTo(&w);
  auto snap = std::make_shared<ModelSnapshot>();
  snap->device_id = device_id;
  snap->batches_seen = batches_seen;
  snap->bytes = w.TakeBuffer();

  std::lock_guard<std::mutex> lock(mu_);
  snap->version = next_version_++;
  std::shared_ptr<const ModelSnapshot> frozen = std::move(snap);
  by_version_[frozen->version] = frozen;
  by_device_[device_id] = frozen;
  return frozen->version;
}

std::shared_ptr<const ModelSnapshot> SnapshotRegistry::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (by_version_.empty()) return nullptr;
  return by_version_.rbegin()->second;
}

std::shared_ptr<const ModelSnapshot> SnapshotRegistry::LatestFor(
    const std::string& device_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_device_.find(device_id);
  return it == by_device_.end() ? nullptr : it->second;
}

std::shared_ptr<const ModelSnapshot> SnapshotRegistry::Get(
    uint64_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_version_.find(version);
  return it == by_version_.end() ? nullptr : it->second;
}

Status SnapshotRegistry::RestoreInto(const ModelSnapshot& snapshot,
                                     QuantizedModel* qm) {
  // BinaryReader owns its buffer, so restoring copies the blob once.
  // Acceptable: restores are rollback/warm-start events, not per-batch work
  // like Publish. A non-owning reader view would remove it if that changes.
  BinaryReader r(snapshot.bytes);
  return qm->DeserializeFrom(&r);
}

size_t SnapshotRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_version_.size();
}

size_t SnapshotRegistry::TrimBelow(uint64_t min_version) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = by_version_.begin();
       it != by_version_.end() && it->first < min_version;) {
    auto dev = by_device_.find(it->second->device_id);
    const bool is_device_latest =
        dev != by_device_.end() && dev->second->version == it->first;
    if (is_device_latest) {
      ++it;
    } else {
      it = by_version_.erase(it);
      ++dropped;
    }
  }
  return dropped;
}

}  // namespace qcore
