// Storage plane of the snapshot registry (serving/snapshot.h). The registry
// is the versioning facade — it assigns globally monotonic versions, owns
// the lock, and decides retention policy; a SnapshotStore holds the
// published snapshots and decides what survives the process:
//
//   * MemorySnapshotStore — the mutex-free in-memory maps the registry
//     always had. Nothing outlives the process; semantics are bit-identical
//     to the pre-store registry.
//   * DurableSnapshotStore — MemorySnapshotStore plus an append-only,
//     CRC32-framed write-ahead log (common/serialize framed records over a
//     small file header). Every Put lands in the log before it becomes
//     visible in the maps (optionally fsynced per publish); Open() replays
//     the log, truncating a torn tail left by a crashed writer at the exact
//     failure offset; TrimBelow compacts the log into a rewritten segment
//     holding only the surviving snapshots (atomic rename).
//
// Stores are NOT internally synchronized: the owning SnapshotRegistry
// serializes every call under its own mutex. Reads hand out shared_ptrs to
// immutable snapshots, so the copy-on-write contract of the registry is
// unchanged.
#ifndef QCORE_SERVING_SNAPSHOT_STORE_H_
#define QCORE_SERVING_SNAPSHOT_STORE_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "serving/snapshot.h"

namespace qcore {

// One snapshot as a self-contained byte record — the payload framed into
// WAL entries and registry deltas. Decode rejects truncated or overlong
// payloads with Corruption (the frame CRC catches bit rot; this catches
// logical mismatches).
std::vector<uint8_t> EncodeSnapshotRecord(const ModelSnapshot& snap);
Result<ModelSnapshot> DecodeSnapshotRecord(const std::vector<uint8_t>& payload);

class SnapshotStore {
 public:
  virtual ~SnapshotStore() = default;

  // Records a snapshot. The registry calls this in version order for fresh
  // publishes; imported deltas may arrive out of order, so implementations
  // must keep the device-latest index keyed by version, not call order.
  // `snap->version` must not already be present. A durable store returns a
  // non-OK status when the write cannot be made durable.
  virtual Status Put(std::shared_ptr<const ModelSnapshot> snap) = 0;

  virtual std::shared_ptr<const ModelSnapshot> Latest() const = 0;
  virtual std::shared_ptr<const ModelSnapshot> LatestFor(
      const std::string& device_id) const = 0;
  virtual std::shared_ptr<const ModelSnapshot> Get(uint64_t version) const = 0;
  virtual bool Has(uint64_t version) const = 0;
  virtual size_t size() const = 0;
  // Highest version ever stored (0 when empty) — what the registry resumes
  // numbering from after a reopen.
  virtual uint64_t MaxVersion() const = 0;

  // Applies `fn` to every snapshot in ascending version order (delta
  // export) / to every device's latest snapshot in device order (cohort
  // warm starts).
  virtual void ForEach(
      const std::function<void(const std::shared_ptr<const ModelSnapshot>&)>&
          fn) const = 0;
  virtual void ForEachDeviceLatest(
      const std::function<void(const std::shared_ptr<const ModelSnapshot>&)>&
          fn) const = 0;

  // Drops all versions below `min_version` that are not a device's latest;
  // returns the number dropped. A durable store compacts its log here.
  virtual Result<size_t> TrimBelow(uint64_t min_version) = 0;

  // WAL health counters; all zero for stores without a log.
  virtual WalStats wal_stats() const { return {}; }
};

class MemorySnapshotStore : public SnapshotStore {
 public:
  Status Put(std::shared_ptr<const ModelSnapshot> snap) override;
  std::shared_ptr<const ModelSnapshot> Latest() const override;
  std::shared_ptr<const ModelSnapshot> LatestFor(
      const std::string& device_id) const override;
  std::shared_ptr<const ModelSnapshot> Get(uint64_t version) const override;
  bool Has(uint64_t version) const override;
  size_t size() const override;
  uint64_t MaxVersion() const override;
  void ForEach(
      const std::function<void(const std::shared_ptr<const ModelSnapshot>&)>&
          fn) const override;
  void ForEachDeviceLatest(
      const std::function<void(const std::shared_ptr<const ModelSnapshot>&)>&
          fn) const override;
  Result<size_t> TrimBelow(uint64_t min_version) override;

 protected:
  std::map<uint64_t, std::shared_ptr<const ModelSnapshot>> by_version_;
  std::map<std::string, std::shared_ptr<const ModelSnapshot>> by_device_;
};

struct DurableSnapshotStoreOptions {
  // The log file. Created (with its header) if missing.
  std::string path;
  // fsync after every Put, so a published snapshot survives power loss, not
  // just process death. Off by default: the file write alone already
  // survives a crash of this process, and the durable-publish bench section
  // shows the fsync price.
  bool fsync_on_publish = false;
};

class DurableSnapshotStore : public MemorySnapshotStore {
 public:
  // Opens (or creates) the log at `options.path` and replays it: every
  // complete, checksummed record becomes a live snapshot; a torn tail —
  // an incomplete or checksum-failing record with nothing valid after it,
  // the signature of a writer that died mid-append — is truncated off the
  // file. A bad file header or an undecodable record body is real
  // corruption and fails the open instead.
  static Result<std::unique_ptr<DurableSnapshotStore>> Open(
      DurableSnapshotStoreOptions options);

  ~DurableSnapshotStore() override;

  DurableSnapshotStore(const DurableSnapshotStore&) = delete;
  DurableSnapshotStore& operator=(const DurableSnapshotStore&) = delete;

  // Log-then-apply: the record is appended (and optionally fsynced) before
  // it becomes visible in the in-memory maps.
  Status Put(std::shared_ptr<const ModelSnapshot> snap) override;

  // Trims, then compacts: rewrites a fresh segment holding exactly the
  // surviving snapshots and atomically renames it over the log.
  Result<size_t> TrimBelow(uint64_t min_version) override;

  const std::string& path() const { return options_.path; }
  // Bytes cut off the tail during Open (0 for a clean log) — recovery
  // diagnostics for operators and tests.
  uint64_t truncated_tail_bytes() const { return truncated_tail_bytes_; }

  // Plain counters: the owning registry serializes every store call under
  // its mutex, so no atomics are needed (matching the rest of the store).
  WalStats wal_stats() const override { return wal_; }

 private:
  explicit DurableSnapshotStore(DurableSnapshotStoreOptions options)
      : options_(std::move(options)) {}

  Status AppendRecord(const ModelSnapshot& snap);
  Status RewriteSegment();

  DurableSnapshotStoreOptions options_;
  std::FILE* file_ = nullptr;  // append handle, positioned at the tail
  uint64_t truncated_tail_bytes_ = 0;
  WalStats wal_;
};

}  // namespace qcore

#endif  // QCORE_SERVING_SNAPSHOT_STORE_H_
