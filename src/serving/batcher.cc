#include "serving/batcher.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/check.h"
#include "testing/fault_injector.h"

namespace qcore {

InferenceBatcher::InferenceBatcher(InferenceBatcherOptions options,
                                   FlushSink sink)
    : options_(options), sink_(std::move(sink)) {
  QCORE_CHECK(options_.max_batch >= 1);
  QCORE_CHECK(sink_ != nullptr);
  if (options_.max_delay_us > 0.0) {
    // Predates the raw-thread rule: the deadline flusher is a dedicated
    // timer loop with its own cv-driven shutdown, not pool work — running
    // it on the serving pool would let a full pool starve flush deadlines.
    flusher_ = std::thread([this]() { FlusherLoop(); });  // lint:allow(raw-thread)
  }
}

InferenceBatcher::~InferenceBatcher() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  flusher_cv_.NotifyAll();
  if (flusher_.joinable()) flusher_.join();
  // Resolve stragglers added after the owner's last drain. The flusher is
  // gone, so this is the only remaining path to their promises.
  FlushAll();
}

void InferenceBatcher::Add(const std::string& device_id,
                           PendingInference request) {
  MutexLock lock(mu_);
  DeviceQueue& dq = queues_[device_id];
  if (dq.requests.empty()) {
    dq.oldest_arrival = Clock::now();
    flusher_cv_.NotifyOne();  // a new deadline exists; recompute
  }
  dq.requests.push_back(std::move(request));
  if (static_cast<int>(dq.requests.size()) >= options_.max_batch) {
    FlushLocked(device_id, &dq);
  }
}

bool InferenceBatcher::FlushDevice(const std::string& device_id) {
  MutexLock lock(mu_);
  auto it = queues_.find(device_id);
  if (it == queues_.end()) return false;
  return FlushLocked(device_id, &it->second);
}

void InferenceBatcher::FlushAll() {
  MutexLock lock(mu_);
  // FlushLocked drops the lock around the sink, so one pass can miss
  // requests added meanwhile; repeat until a pass finds nothing to do.
  for (;;) {
    bool flushed_any = false;
    for (auto& entry : queues_) {
      DeviceQueue& dq = entry.second;
      if (!dq.requests.empty() || dq.in_flush) {
        flushed_any = true;
        FlushLocked(entry.first, &dq);
      }
    }
    if (!flushed_any) return;
  }
}

bool InferenceBatcher::FlushLocked(const std::string& device_id,
                                   DeviceQueue* dq) {
  // Serialize flushes per device: never extract a later group while an
  // earlier one is still being handed to the sink, or the session FIFO
  // could receive them out of submission order.
  flush_done_cv_.Wait(mu_, [dq]() { return !dq->in_flush; });
  if (dq->requests.empty()) return false;
  std::vector<PendingInference> group = std::move(dq->requests);
  dq->requests.clear();
  dq->in_flush = true;
  mu_.Unlock();
  sink_(device_id, std::move(group));
  mu_.Lock();
  // in_flush clears only after the sink returns, so barrier callers (and
  // FlushAll inside the owner's Drain) cannot observe "nothing pending"
  // while a group is in limbo between extraction and enqueue.
  dq->in_flush = false;
  flush_done_cv_.NotifyAll();
  return true;
}

void InferenceBatcher::FlusherLoop() {
  const auto delay = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::micro>(options_.max_delay_us));
  MutexLock lock(mu_);
  while (!shutdown_) {
    uint64_t stall_us = 0;
    if (MaybeFault(FaultPoint::kBatcherFlusherStall, &stall_us)) {
      // Deadline flushing goes dark for a while. Sleep OUTSIDE mu_ so
      // submitters and barrier flushes keep running — which is exactly why
      // a stalled flusher delays deadline-triggered groups but can never
      // reorder or lose them (size triggers and barriers still flush).
      lock.Unlock();
      std::this_thread::sleep_for(std::chrono::microseconds(stall_us));
      lock.Lock();
      continue;  // deadlines moved while we slept; recompute
    }
    bool have_deadline = false;
    Clock::time_point earliest{};
    for (const auto& entry : queues_) {
      if (entry.second.requests.empty()) continue;
      const Clock::time_point dl = entry.second.oldest_arrival + delay;
      if (!have_deadline || dl < earliest) {
        earliest = dl;
        have_deadline = true;
      }
    }
    if (!have_deadline) {
      flusher_cv_.Wait(mu_);
      continue;
    }
    if (flusher_cv_.WaitUntil(mu_, earliest) == std::cv_status::no_timeout) {
      continue;  // new group or shutdown; recompute the earliest deadline
    }
    const Clock::time_point now = Clock::now();
    for (auto& entry : queues_) {
      DeviceQueue& dq = entry.second;
      if (!dq.requests.empty() && dq.oldest_arrival + delay <= now) {
        FlushLocked(entry.first, &dq);
      }
    }
  }
}

}  // namespace qcore
