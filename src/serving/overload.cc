#include "serving/overload.h"

#include <algorithm>
#include <cmath>

#include "testing/fault_injector.h"

namespace qcore {

OverloadClock::TimePoint OverloadClock::Now() {
  TimePoint now = Clock::now();
  uint64_t skew_us = 0;
  if (MaybeFault(FaultPoint::kDeadlineClockSkew, &skew_us)) {
    now += std::chrono::microseconds(skew_us);
  }
  return now;
}

OverloadClock::TimePoint OverloadClock::DeadlineFor(double budget_us) {
  if (budget_us <= 0.0) return NoDeadline();
  return Now() + std::chrono::microseconds(
                     static_cast<int64_t>(std::llround(budget_us)));
}

const char* AdmissionLevelName(AdmissionLevel level) {
  switch (level) {
    case AdmissionLevel::kSession: return "session";
    case AdmissionLevel::kShard: return "shard";
    case AdmissionLevel::kFleet: return "fleet";
    case AdmissionLevel::kNone: return "none";
  }
  return "unknown";
}

bool AdmissionNode::TryAcquireLocal(bool is_inference) {
  std::atomic<int>& class_gauge = is_inference ? inference_ : calibration_;
  const int class_cap = is_inference ? caps_.inference : caps_.calibration;
  const int prev_total = total_.fetch_add(1, std::memory_order_relaxed);
  const int prev_class = class_gauge.fetch_add(1, std::memory_order_relaxed);
  const bool over_total = caps_.total > 0 && prev_total >= caps_.total;
  const bool over_class = class_cap > 0 && prev_class >= class_cap;
  if (over_total || over_class) {
    class_gauge.fetch_sub(1, std::memory_order_relaxed);
    total_.fetch_sub(1, std::memory_order_relaxed);
    refusals_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void AdmissionNode::ReleaseLocal(bool is_inference) {
  (is_inference ? inference_ : calibration_)
      .fetch_sub(1, std::memory_order_relaxed);
  total_.fetch_sub(1, std::memory_order_relaxed);
}

AdmissionLimiter::AdmissionLimiter(AdmissionCaps fleet_caps)
    : root_(std::make_unique<AdmissionNode>(AdmissionLevel::kFleet, fleet_caps,
                                            nullptr)) {}

AdmissionNode* AdmissionLimiter::AddShard(AdmissionCaps caps) {
  MutexLock lock(mu_);
  nodes_.push_back(std::make_unique<AdmissionNode>(AdmissionLevel::kShard,
                                                   caps, root_.get()));
  return nodes_.back().get();
}

AdmissionNode* AdmissionLimiter::AddSession(AdmissionNode* shard,
                                            AdmissionCaps caps) {
  QCORE_CHECK(shard != nullptr);
  QCORE_CHECK(shard->level() == AdmissionLevel::kShard);
  MutexLock lock(mu_);
  nodes_.push_back(std::make_unique<AdmissionNode>(AdmissionLevel::kSession,
                                                   caps, shard));
  return nodes_.back().get();
}

AdmissionLevel AdmissionLimiter::TryAcquire(AdmissionNode* leaf,
                                            bool is_inference) {
  QCORE_CHECK(leaf != nullptr);
  for (AdmissionNode* node = leaf; node != nullptr; node = node->parent()) {
    const bool refused_by_fault = node->level() == AdmissionLevel::kFleet &&
                                  MaybeFault(FaultPoint::kLimiterRefuse);
    if (refused_by_fault) {
      node->refusals_.fetch_add(1, std::memory_order_relaxed);
    }
    if (refused_by_fault || !node->TryAcquireLocal(is_inference)) {
      // Roll back the levels already reserved (leaf up to node's child).
      for (AdmissionNode* held = leaf; held != node; held = held->parent()) {
        held->ReleaseLocal(is_inference);
      }
      return node->level();
    }
  }
  return AdmissionLevel::kNone;
}

void AdmissionLimiter::Release(AdmissionNode* leaf, bool is_inference) {
  QCORE_CHECK(leaf != nullptr);
  for (AdmissionNode* node = leaf; node != nullptr; node = node->parent()) {
    node->ReleaseLocal(is_inference);
  }
}

uint64_t AdmissionLimiter::refusals(AdmissionLevel level) const {
  if (level == AdmissionLevel::kFleet) return root_->refusals();
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    if (node->level() == level) total += node->refusals();
  }
  return total;
}

uint64_t ComputeBackoffUs(const RetryPolicy& policy, int attempt, Rng* rng) {
  QCORE_CHECK(attempt >= 1);
  double wait = static_cast<double>(policy.base_backoff_us) *
                std::pow(policy.multiplier, attempt - 1);
  if (policy.jitter > 0.0 && rng != nullptr) {
    wait *= rng->NextDouble(1.0 - policy.jitter, 1.0 + policy.jitter);
  }
  return static_cast<uint64_t>(std::llround(std::max(0.0, wait)));
}

}  // namespace qcore
