// Consistent-hash ring mapping device ids onto shard indices. Each shard
// owns `vnodes_per_shard` pseudo-random points on a 64-bit ring; a device
// routes to the shard owning the first point at or clockwise of the
// device's hash. Properties the sharded router builds on:
//   * Deterministic: point positions depend only on (shard index, vnode
//     index), never on construction order or process state, so every
//     replica computes the same device->shard map.
//   * Stable under growth: ring(N+1) keeps every point of ring(N), so a
//     device either stays put or moves to the NEW shard — Rebalance
//     migrates the minimal set of sessions.
//   * Balanced: with the default vnode count, shard loads concentrate
//     around the mean (pinned by the hash-ring test suite).
#ifndef QCORE_SERVING_HASH_RING_H_
#define QCORE_SERVING_HASH_RING_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace qcore {

class HashRing {
 public:
  static constexpr int kDefaultVnodesPerShard = 64;

  explicit HashRing(int num_shards,
                    int vnodes_per_shard = kDefaultVnodesPerShard);

  // Shard index in [0, num_shards) owning `key`'s ring position.
  int ShardFor(const std::string& key) const;

  int num_shards() const { return num_shards_; }
  int vnodes_per_shard() const { return vnodes_per_shard_; }

  // The ring position hashed for `key` (exposed so tests can pin the
  // clockwise-successor rule independently of ShardFor).
  static uint64_t HashKey(const std::string& key);

 private:
  int num_shards_;
  int vnodes_per_shard_;
  // Sorted (point, shard) pairs; lookup is a binary search for the first
  // point >= hash, wrapping to the smallest point.
  std::vector<std::pair<uint64_t, int>> ring_;
};

}  // namespace qcore

#endif  // QCORE_SERVING_HASH_RING_H_
