// FleetServer: the single-shard FleetBackend — multiplexes many per-device
// CalibrationSessions over one shared ThreadPool, interleaving
// quantized-inference requests with background continual-calibration work
// (the serving-runtime analogue of the paper's single-device loop, scaled
// out). The sharded backend (serving/router.h) composes N of these behind a
// consistent-hash router.
//
// Scheduling model: each session is an actor. Work for a device goes into
// that device's FIFO; a session is "pumped" by at most one pool worker at a
// time, so session state needs no locks and per-session execution order
// equals submission order. Consequences:
//   * sessions never contend — fleet throughput scales with worker count;
//   * a session's results are bit-identical regardless of num_threads
//     (0 = inline, N = pool), because its Rng consumption depends only on
//     its own task order.
//
// On top of the actor layer sit three serving-plane mechanisms:
//   * Batching (opt-in): an InferenceBatcher coalesces inference
//     submissions into per-device grouped forward passes (size- or
//     deadline-triggered), executed as ONE session task per group — one
//     simulated device-link round trip and one forward pass instead of
//     per-request ones. Model-mutating submissions (calibration, snapshot)
//     act as per-device barriers that flush the pending group first, so
//     batched results and delivery order are bit-identical to the
//     unbatched path.
//   * Priorities: session pumps triggered by inference or snapshot work are
//     scheduled at TaskPriority::kHigh, calibration pumps at kLow — under
//     overload the pool serves inference first and calibration backlogs
//     instead (two-level queue in runtime/thread_pool). With
//     calibration_aging_us set, a calibration pump that has waited past
//     the threshold is promoted ahead of queued inference pumps, so
//     calibration makes progress even under a sustained flood. Priority
//     reorders work only ACROSS sessions, never within one, so
//     determinism holds.
//   * Backpressure (opt-in): with queue bounds set, TrySubmit* fast-fails
//     with kResourceExhausted once an admission cap is hit. Bounds compose
//     down an AdmissionLimiter tree (serving/overload.h): per-session caps
//     (the legacy shared bound plus per-class forms), a per-shard cap, and
//     — behind a router — a fleet-wide cap; shed/accepted counts, a
//     per-reason shed breakdown, and queue-depth samples land in
//     ServingMetrics. Orthogonally, a submission may carry a latency
//     budget (InferenceSubmitOptions); once admitted, its deadline is
//     re-checked at batch flush and at exec start, and expired requests
//     resolve with kDeadlineExceeded instead of burning a forward pass.
//
// Results come back through std::future; the ServingMetrics instance
// aggregates latency histograms and counters across all sessions, and
// calibrated models can be published into the SnapshotRegistry (owned, or
// shared with sibling shards) as immutable copy-on-write versions.
//
// Session migration: DetachSession publishes a barrier snapshot (flushing
// any pending batched group first), waits for the session to quiesce,
// serializes its continuation state (Rng position, resampled QCore, batch
// counter), and removes it; AttachSession reconstructs the session from the
// registry version plus that continuation — bit-identical to never having
// moved. The sharded router drives these two under its routing lock to
// rebalance devices across shards live.
#ifndef QCORE_SERVING_SERVER_H_
#define QCORE_SERVING_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/continual.h"
#include "runtime/thread_pool.h"
#include "serving/backend.h"
#include "serving/batcher.h"
#include "serving/metrics.h"
#include "serving/overload.h"
#include "serving/session.h"
#include "serving/snapshot.h"

namespace qcore {

struct FleetServerOptions {
  // Pool workers. 0 = run every task inline on the submitting thread (the
  // reference mode the determinism tests compare against).
  int num_threads = 4;
  // Per-session continual-calibration configuration (Algorithms 3+4).
  ContinualOptions continual;
  // Fleet seed; each session's Rng seed is DeviceSeed(seed, device_id) —
  // independent of which shard hosts the session.
  uint64_t seed = 0x5EED;
  // Publish a session snapshot every k calibration batches (0 = never;
  // PublishSnapshot remains available on demand).
  int snapshot_every = 0;
  // Fleet-simulation knob: every inference/calibration task first waits this
  // long, emulating the device link (upload of the batch / request RTT).
  // Workers overlap these waits with other sessions' compute, exactly as a
  // real serving runtime overlaps network I/O — which is also what lets the
  // thread-scaling bench demonstrate overlap gains on any host. 0 = off.
  // A batched inference group pays the link ONCE — that amortization is the
  // batching win the throughput bench measures.
  double simulated_device_rtt_ms = 0.0;
  // Coalesce inference submissions through an InferenceBatcher. Off by
  // default: request-at-a-time serving, the reference the batching tests
  // compare against.
  bool enable_batching = false;
  InferenceBatcherOptions batching;
  // Legacy shared overload bound: maximum outstanding tasks per session of
  // EITHER class (queued, pending in the batcher, or running). 0 =
  // unbounded. Kept as the "both classes together" bound for compatibility;
  // the per-class bounds below compose with it (admission requires every
  // configured bound to hold).
  int max_queue_per_session = 0;
  // Per-class bounds (ROADMAP backpressure follow-up): cap outstanding
  // inference and calibration independently, so a calibration backlog can
  // never consume the admission budget of latency-sensitive inference (and
  // vice versa). 0 = that class unbounded by its own cap.
  int max_inference_queue_per_session = 0;
  int max_calibration_queue_per_session = 0;
  // Shard-level admission cap: outstanding tasks of BOTH classes summed
  // over every session this server hosts. 0 = unbounded. Composes with the
  // per-session bounds through the AdmissionLimiter tree (serving/
  // overload.h): admission must hold at session, shard, AND fleet level.
  int max_queue_per_shard = 0;
  // Priority aging for the two-level pool: a calibration (kLow) pump that
  // has waited this many microseconds runs ahead of queued inference
  // pumps, guaranteeing calibration progress under a sustained inference
  // flood. 0 = strict priority (calibration can starve).
  uint64_t calibration_aging_us = 0;
  // Snapshot-distribution warm starts: when set, RegisterDevice seeds the
  // new session's model from the registry instead of the factory base
  // model — the device's own latest snapshot when one exists (restart
  // recovery over a durable registry), else the cohort-nearest device's
  // latest (published by a sibling or merged in via
  // SnapshotRegistry::ImportDelta), else — including when the nearest
  // snapshot is from an incompatible architecture — the base model as
  // before. Only
  // the model codes warm-start; the session's Rng/QCore state is fresh —
  // continuation state travels via DetachSession/AttachSession, not
  // snapshots.
  bool warm_start_from_registry = false;
};

// Everything needed to re-create a session on another FleetServer,
// bit-identically: the registry version of the barrier snapshot that holds
// its model codes, plus the serialized continuation state (see
// CalibrationSession::SerializeContinuation). Producing one requires the
// source and target to share a SnapshotRegistry (the sharded router's
// federated registry).
struct SessionHandoff {
  std::string device_id;
  uint64_t barrier_version = 0;
  std::vector<uint8_t> continuation;
  // Trace span covering the whole migration (detach event on the source,
  // attach event on the target), so a rebalance window reconstructs as one
  // timeline per moved device.
  uint64_t trace_span = 0;
};

class FleetServer : public FleetBackend {
 public:
  // `base_model` is the server-prepared deployed model (quantize + initial
  // calibration done, shadows dropped) and `base_bf` its trained
  // bit-flipping net; every registered device starts from clones of these.
  // Both are held by reference and re-cloned on every RegisterDevice, so
  // they must outlive the server. `shared_registry` (optional) makes this
  // server publish into an external registry instead of its own — the
  // sharded router passes its federated registry so versions are globally
  // monotonic across shards. `rollup_metrics` (optional) is a second
  // ServingMetrics every event is recorded into besides this server's own
  // — the router's write-through fleet rollup, which therefore needs no
  // locked rebuild and survives shard retirement by construction. Both
  // must outlive the server. `shared_whiteboard` (optional) follows the
  // same pattern for introspection rows: the router passes its fleet-wide
  // board (and this server's `shard_index` on it) so every shard writes
  // into one place; standalone servers own their board as shard 0.
  // `shared_limiter` (optional) plugs this server into an external
  // admission tree — the sharded router's, whose fleet-level caps then
  // bound all shards together. When null the server owns a private limiter
  // with an unbounded fleet root (single-shard deployments keep their
  // historical per-session semantics exactly).
  FleetServer(const QuantizedModel& base_model, const BitFlipNet& base_bf,
              FleetServerOptions options,
              SnapshotRegistry* shared_registry = nullptr,
              ServingMetrics* rollup_metrics = nullptr,
              Whiteboard* shared_whiteboard = nullptr, int shard_index = 0,
              AdmissionLimiter* shared_limiter = nullptr);

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  // Drains all in-flight work, then stops the pool.
  ~FleetServer() override;

  void RegisterDevice(const std::string& device_id, Dataset qcore) override;

  bool HasDevice(const std::string& device_id) const override;
  int num_sessions() const override;

  // Re-expose the base's budget-less convenience overload next to the
  // override (an override otherwise hides every base overload of the name).
  using FleetBackend::TrySubmitInference;
  Result<std::future<InferenceResult>> TrySubmitInference(
      const std::string& device_id, Tensor x,
      const InferenceSubmitOptions& opts) override;

  Result<std::future<BatchStats>> TrySubmitCalibration(
      const std::string& device_id, Dataset batch,
      Dataset test_slice) override;

  std::future<uint64_t> PublishSnapshot(const std::string& device_id) override;

  // Blocks until every queued task (including pending batched inference and
  // tasks queued while draining) has finished.
  void Drain() override;

  void WithSessionQuiesced(
      const std::string& device_id,
      const std::function<void(CalibrationSession&)>& fn) override;

  // Session migration (the sharded router's rebalancing primitives; see the
  // file comment). The caller must guarantee no concurrent submissions for
  // the device — the router holds its routing lock in exclusive mode.
  // DetachSession publishes the barrier snapshot, quiesces, serializes, and
  // removes the session; AttachSession re-creates it from the handoff
  // (whose barrier_version must resolve in this server's snapshots()).
  SessionHandoff DetachSession(const std::string& device_id);
  void AttachSession(const SessionHandoff& handoff);

  ServingMetrics& metrics() override { return metrics_; }
  const ServingMetrics& metrics() const override { return metrics_; }
  SnapshotRegistry& snapshots() override { return *registry_; }
  Whiteboard& whiteboard() override { return *whiteboard_; }
  const Whiteboard& whiteboard() const override { return *whiteboard_; }

 private:
  struct SessionState {
    template <typename... Args>
    explicit SessionState(Args&&... args)
        : session(std::forward<Args>(args)...) {}
    CalibrationSession session;
    Mutex mu;
    CondVar idle_cv;  // signaled when pumping stops
    std::deque<std::function<void()>> queue QCORE_GUARDED_BY(mu);
    // A pool worker currently owns this session.
    bool pumping QCORE_GUARDED_BY(mu) = false;
    // This session's leaf in the admission tree. Outstanding-task gauges
    // (queued here, pending in the batcher, or running) live on the node;
    // admission reserves leaf-to-root, so the legacy per-session bounds
    // and the shard/fleet caps all act through this one pointer. The node
    // outlives the session (limiter nodes are never removed).
    AdmissionNode* admission = nullptr;
    // Whiteboard row handle + interned trace name, captured once at
    // registration so hot-path writes are a pointer chase, not a map walk.
    Whiteboard::Device* wb = nullptr;
    uint32_t trace_name = 0;
  };

  // Enqueues a closure on the session's FIFO and schedules a pump if none
  // is active. `priority` is the pool-level class of the pump this task
  // triggers (inference/snapshot = kHigh, calibration = kLow).
  void EnqueueOnSession(SessionState* state, std::function<void()> task,
                        TaskPriority priority);
  // Runs tasks for `state` until its queue is empty.
  void PumpSession(SessionState* state);

  // InferenceBatcher sink: enqueues one session task that runs the whole
  // group as a single forward pass and scatters results to the promises.
  void FlushInferenceGroup(const std::string& device_id,
                           std::vector<PendingInference> group);

  // Admission control: reserves a slot on every level of the admission
  // tree (session -> shard -> fleet), or sheds — recording per-class and
  // per-reason metrics, the whiteboard last-error, and a kShed trace event
  // — and returns the concrete kResourceExhausted status.
  Status AdmitTask(SessionState* state, const std::string& device_id,
                   bool is_inference, uint64_t span);
  // Releases `count` slots of the given class (task completion).
  void ReleaseTask(SessionState* state, bool is_inference, int count);

  // Deadline shedding: resolves an admitted-but-expired inference request
  // with a kDeadlineExceeded result (empty predictions), accounts the shed
  // (metrics, whiteboard, kDeadlineShed trace), and releases its admission
  // slot. Called wherever expiry is detected — the flush sink or the exec
  // prologue — so an expired request never reaches a forward pass.
  void ShedDeadline(SessionState* state, uint64_t span,
                    const std::shared_ptr<std::promise<InferenceResult>>&
                        promise,
                    double elapsed_seconds);

  // Flushes the device's pending batched group ahead of model-mutating work
  // (calibration, snapshot, quiesce) and accounts the flush when one was
  // actually forced (metrics counter, shard row, trace event). No-op
  // without a batcher.
  void BarrierFlush(const std::string& device_id, SessionState* state,
                    uint64_t span);

  SessionState* FindSession(const std::string& device_id);

  // Flushes the device's pending batched group (if any), then blocks until
  // the session's FIFO is empty and no pump owns it; returns holding
  // `state->mu` so the caller has exclusive access (callers release it with
  // an explicit state->mu.Unlock() after their critical section). Must not
  // run on a pool worker (it would wait for itself).
  void QuiesceSession(const std::string& device_id, SessionState* state)
      QCORE_ACQUIRE(state->mu);

  // In-flight accounting: a task counts from EnqueueOnSession until its
  // closure has run. Drain() waits on this, not on the pool, because a task
  // can sit in a session FIFO during the window between enqueue and the
  // pump being handed to the pool.
  void TaskFinished();

  // Applies a recording closure to this server's metrics and, when the
  // router provided one, to the shared fleet rollup. Double recording per
  // event is the price of a rollup that is always consistent to read
  // concurrently (no rebuild, no reset).
  template <typename Fn>
  void RecordMetrics(const Fn& fn) {
    fn(metrics_);
    if (rollup_metrics_ != nullptr) fn(*rollup_metrics_);
  }

  const QuantizedModel& base_model_;
  const BitFlipNet& base_bf_;
  FleetServerOptions options_;
  ServingMetrics metrics_;
  ServingMetrics* rollup_metrics_;  // null unless owned by a router
  SnapshotRegistry owned_registry_;  // used unless a shared one was passed
  SnapshotRegistry* registry_;
  Whiteboard owned_whiteboard_;  // used unless a shared one was passed
  Whiteboard* whiteboard_;
  Whiteboard::Shard* wb_shard_;  // this server's row on whiteboard_
  const int shard_index_;
  // Admission tree (see ctor). Declared before pool_ so nodes outlive any
  // straggling pump's release. Session nodes hang off shard_node_.
  std::unique_ptr<AdmissionLimiter> owned_limiter_;
  AdmissionLimiter* limiter_;
  AdmissionNode* shard_node_;

  // Guards the map, not the sessions (each SessionState carries its own mu).
  mutable Mutex sessions_mu_;
  std::map<std::string, std::unique_ptr<SessionState>> sessions_
      QCORE_GUARDED_BY(sessions_mu_);

  Mutex drain_mu_;
  CondVar drain_cv_;
  int in_flight_ QCORE_GUARDED_BY(drain_mu_) = 0;

  // Destruction order (reverse of declaration) is load-bearing:
  //   1. batcher_ — joins the flusher and hands leftover groups to the
  //      pool, which must still be alive;
  //   2. pool_ — joins the workers, so every pump wrapper has finished
  //      before the sessions and drain primitives above are freed.
  ThreadPool pool_;
  std::unique_ptr<InferenceBatcher> batcher_;  // null unless enable_batching
};

}  // namespace qcore

#endif  // QCORE_SERVING_SERVER_H_
