// FleetServer: multiplexes many per-device CalibrationSessions over one
// shared ThreadPool, interleaving quantized-inference requests with
// background continual-calibration work (the serving-runtime analogue of the
// paper's single-device loop, scaled out).
//
// Scheduling model: each session is an actor. Work for a device goes into
// that device's FIFO; a session is "pumped" by at most one pool worker at a
// time, so session state needs no locks and per-session execution order
// equals submission order. Consequences:
//   * sessions never contend — fleet throughput scales with worker count;
//   * a session's results are bit-identical regardless of num_threads
//     (0 = inline, N = pool), because its Rng consumption depends only on
//     its own task order.
//
// On top of the actor layer sit three serving-plane mechanisms:
//   * Batching (opt-in): an InferenceBatcher coalesces inference
//     submissions into per-device grouped forward passes (size- or
//     deadline-triggered), executed as ONE session task per group — one
//     simulated device-link round trip and one forward pass instead of
//     per-request ones. Model-mutating submissions (calibration, snapshot)
//     act as per-device barriers that flush the pending group first, so
//     batched results and delivery order are bit-identical to the
//     unbatched path.
//   * Priorities: session pumps triggered by inference or snapshot work are
//     scheduled at TaskPriority::kHigh, calibration pumps at kLow — under
//     overload the pool serves inference first and calibration backlogs
//     instead (two-level queue in runtime/thread_pool). Priority reorders
//     work only ACROSS sessions, never within one, so determinism holds.
//   * Backpressure (opt-in): with max_queue_per_session > 0, TrySubmit*
//     fast-fails with Status kResourceExhausted once a device's
//     outstanding work hits the bound; shed/accepted counts and queue-depth
//     samples land in ServingMetrics.
//
// Results come back through std::future; the ServingMetrics instance
// aggregates latency histograms and counters across all sessions, and
// calibrated models can be published into the SnapshotRegistry as immutable
// copy-on-write versions.
#ifndef QCORE_SERVING_SERVER_H_
#define QCORE_SERVING_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/continual.h"
#include "runtime/thread_pool.h"
#include "serving/batcher.h"
#include "serving/metrics.h"
#include "serving/session.h"
#include "serving/snapshot.h"

namespace qcore {

struct FleetServerOptions {
  // Pool workers. 0 = run every task inline on the submitting thread (the
  // reference mode the determinism tests compare against).
  int num_threads = 4;
  // Per-session continual-calibration configuration (Algorithms 3+4).
  ContinualOptions continual;
  // Fleet seed; each session's Rng seed is DeviceSeed(seed, device_id).
  uint64_t seed = 0x5EED;
  // Publish a session snapshot every k calibration batches (0 = never;
  // PublishSnapshot remains available on demand).
  int snapshot_every = 0;
  // Fleet-simulation knob: every inference/calibration task first waits this
  // long, emulating the device link (upload of the batch / request RTT).
  // Workers overlap these waits with other sessions' compute, exactly as a
  // real serving runtime overlaps network I/O — which is also what lets the
  // thread-scaling bench demonstrate overlap gains on any host. 0 = off.
  // A batched inference group pays the link ONCE — that amortization is the
  // batching win the throughput bench measures.
  double simulated_device_rtt_ms = 0.0;
  // Coalesce inference submissions through an InferenceBatcher. Off by
  // default: request-at-a-time serving, the reference the batching tests
  // compare against.
  bool enable_batching = false;
  InferenceBatcherOptions batching;
  // Overload bound: maximum outstanding tasks per session (queued, pending
  // in the batcher, or running). 0 = unbounded. When the bound is hit,
  // TrySubmitInference/TrySubmitCalibration shed the request with
  // kResourceExhausted instead of queueing it.
  int max_queue_per_session = 0;
};

class FleetServer {
 public:
  // `base_model` is the server-prepared deployed model (quantize + initial
  // calibration done, shadows dropped) and `base_bf` its trained
  // bit-flipping net; every registered device starts from clones of these.
  // Both are held by reference and re-cloned on every RegisterDevice, so
  // they must outlive the server.
  FleetServer(const QuantizedModel& base_model, const BitFlipNet& base_bf,
              FleetServerOptions options);

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  // Drains all in-flight work, then stops the pool.
  ~FleetServer();

  // Creates the device's session (clone of the base model + net, QCore
  // copy, deterministic per-device seed). Must not already exist.
  void RegisterDevice(const std::string& device_id, Dataset qcore);

  bool HasDevice(const std::string& device_id) const;
  int num_sessions() const;

  // Admission-controlled async quantized inference on the device's current
  // model. Sheds with kResourceExhausted when the session's queue bound is
  // hit (never blocks, never deadlocks — the overload fast-fail).
  Result<std::future<InferenceResult>> TrySubmitInference(
      const std::string& device_id, Tensor x);

  // Admission-controlled async continual-calibration step on one stream
  // batch; the test slice is evaluated after calibration (accuracy feeds
  // the metrics). Sheds like TrySubmitInference under overload.
  Result<std::future<BatchStats>> TrySubmitCalibration(
      const std::string& device_id, Dataset batch, Dataset test_slice);

  // Unconditional submission forms, for servers without a queue bound.
  // With max_queue_per_session set, a shed submission is a programming
  // error here (checked) — overload-aware callers use TrySubmit*.
  std::future<InferenceResult> SubmitInference(const std::string& device_id,
                                               Tensor x);
  std::future<BatchStats> SubmitCalibration(const std::string& device_id,
                                            Dataset batch,
                                            Dataset test_slice);

  // Async snapshot publish of the device's current model; resolves to the
  // assigned version. Runs in the session's task order (a pending batched
  // inference group is flushed first), so it captures the model exactly
  // after the work submitted before it. Control-plane: never shed.
  std::future<uint64_t> PublishSnapshot(const std::string& device_id);

  // Blocks until every queued task (including pending batched inference and
  // tasks queued while draining) has finished.
  void Drain();

  // Read-side access for tests/benches. Only safe when the device has no
  // in-flight work (e.g. after Drain()).
  CalibrationSession* session(const std::string& device_id);

  ServingMetrics& metrics() { return metrics_; }
  const ServingMetrics& metrics() const { return metrics_; }
  SnapshotRegistry& snapshots() { return snapshots_; }

 private:
  struct SessionState {
    template <typename... Args>
    explicit SessionState(Args&&... args)
        : session(std::forward<Args>(args)...) {}
    CalibrationSession session;
    std::mutex mu;                                // guards queue + pumping
    std::deque<std::function<void()>> queue;
    bool pumping = false;  // a pool worker currently owns this session
    // Outstanding tasks: queued here, pending in the batcher, or running.
    // The admission-control gauge for max_queue_per_session.
    std::atomic<int> depth{0};
  };

  // Enqueues a closure on the session's FIFO and schedules a pump if none
  // is active. `priority` is the pool-level class of the pump this task
  // triggers (inference/snapshot = kHigh, calibration = kLow).
  void EnqueueOnSession(SessionState* state, std::function<void()> task,
                        TaskPriority priority);
  // Runs tasks for `state` until its queue is empty.
  void PumpSession(SessionState* state);

  // InferenceBatcher sink: enqueues one session task that runs the whole
  // group as a single forward pass and scatters results to the promises.
  void FlushInferenceGroup(const std::string& device_id,
                           std::vector<PendingInference> group);

  // Admission control: reserves a slot in the session's depth gauge, or
  // sheds (recording metrics) and returns false.
  bool AdmitTask(SessionState* state, bool is_inference);

  SessionState* FindSession(const std::string& device_id);

  // In-flight accounting: a task counts from EnqueueOnSession until its
  // closure has run. Drain() waits on this, not on the pool, because a task
  // can sit in a session FIFO during the window between enqueue and the
  // pump being handed to the pool.
  void TaskFinished();

  const QuantizedModel& base_model_;
  const BitFlipNet& base_bf_;
  FleetServerOptions options_;
  ServingMetrics metrics_;
  SnapshotRegistry snapshots_;

  mutable std::mutex sessions_mu_;  // guards the map, not the sessions
  std::map<std::string, std::unique_ptr<SessionState>> sessions_;

  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  int in_flight_ = 0;

  // Destruction order (reverse of declaration) is load-bearing:
  //   1. batcher_ — joins the flusher and hands leftover groups to the
  //      pool, which must still be alive;
  //   2. pool_ — joins the workers, so every pump wrapper has finished
  //      before the sessions and drain primitives above are freed.
  ThreadPool pool_;
  std::unique_ptr<InferenceBatcher> batcher_;  // null unless enable_batching
};

}  // namespace qcore

#endif  // QCORE_SERVING_SERVER_H_
