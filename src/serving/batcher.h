// InferenceBatcher: coalesces concurrent inference submissions across the
// fleet into grouped forward passes. Requests accumulate in per-device FIFO
// groups; a group is flushed to the sink when it reaches `max_batch`
// requests (size trigger), when its oldest request has waited `max_delay_us`
// (deadline trigger, enforced by a dedicated flusher thread), or when the
// owner forces a flush (FlushDevice — the ordering barrier the FleetServer
// inserts ahead of model-mutating work; FlushAll — drain/shutdown).
//
// Grouping is per device because each device serves its own calibrated
// model clone: rows from different models cannot share one forward pass.
// The cross-device win is upstream of the math — one pending buffer and one
// flusher for the whole fleet, and each flush hands the pool a single task
// (one device-link round trip, one forward) instead of per-request tasks.
//
// Ordering guarantee: per device, flushes are serialized (a flush that
// would overlap an in-progress flush of the same device waits for it), and
// every flush hands the sink the full pending group in submission order.
// With the barrier calls the FleetServer makes, this yields per-device
// result delivery in exact submission order — the property the batching
// regression tests pin down.
//
// The batcher never runs model code itself: the sink owns execution (the
// FleetServer enqueues the group on the device's session FIFO). Sink calls
// are made outside the batcher lock.
#ifndef QCORE_SERVING_BATCHER_H_
#define QCORE_SERVING_BATCHER_H_

#include <chrono>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/stopwatch.h"
#include "tensor/tensor.h"

namespace qcore {

// Result of one inference request, batched or not.
struct InferenceResult {
  std::vector<int> predictions;
  double latency_seconds = 0.0;
  // The request's trace span (obs/trace.h) — callers correlate this result
  // with its submit→batch→flush→complete timeline in the TraceRing.
  uint64_t trace_span = 0;
  // OK for a delivered prediction; kDeadlineExceeded when the request's
  // latency budget expired before execution (predictions then empty). The
  // future-based API has no error channel of its own, so deadline sheds —
  // which strike after admission already succeeded — report here.
  Status status;
};

struct InferenceBatcherOptions {
  // Size trigger: flush a device's group when it holds this many requests.
  // Must be >= 1; 1 degenerates to per-request flushing.
  int max_batch = 8;
  // Deadline trigger: the oldest pending request of a group waits at most
  // this long before the flusher thread flushes the group. <= 0 disables
  // the deadline (groups then flush only on size or explicit barriers).
  double max_delay_us = 500.0;
};

// One pending inference request: the input, the promise its future resolves
// through, and the latency clock started at submission (so recorded
// latencies include batching delay and queue wait).
struct PendingInference {
  Tensor input;
  std::shared_ptr<std::promise<InferenceResult>> promise;
  Stopwatch timer;
  // Trace span allocated at submission; rides along so the flush sink can
  // link the request into its group's exec events.
  uint64_t span = 0;
  // Absolute deadline from the submission's latency budget; max() = none.
  // The batcher itself never inspects it — the flush sink (FleetServer)
  // re-checks it at flush and at exec start, shedding expired members.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

class InferenceBatcher {
 public:
  // `sink` receives (device_id, group) for every flush and must eventually
  // resolve every promise in the group. Invoked without the batcher lock
  // held, on whichever thread triggered the flush (submitter, flusher, or
  // the thread calling FlushDevice/FlushAll).
  using FlushSink =
      std::function<void(const std::string&, std::vector<PendingInference>)>;

  InferenceBatcher(InferenceBatcherOptions options, FlushSink sink);

  InferenceBatcher(const InferenceBatcher&) = delete;
  InferenceBatcher& operator=(const InferenceBatcher&) = delete;

  // Flushes all pending requests, then joins the flusher thread.
  ~InferenceBatcher();

  // Appends a request to the device's group; flushes the group inline if
  // it reaches max_batch.
  void Add(const std::string& device_id, PendingInference request);

  // Synchronous barrier: when this returns, every request previously added
  // for `device_id` has been handed to the sink (including a flush of the
  // device already in progress on another thread). Returns true iff THIS
  // call extracted a non-empty pending group — i.e. the barrier forced a
  // flush that neither trigger had fired yet (the barrier-flush count the
  // serving metrics track).
  bool FlushDevice(const std::string& device_id);

  // Barrier over every device. Used by FleetServer::Drain and shutdown.
  void FlushAll();

 private:
  using Clock = std::chrono::steady_clock;

  struct DeviceQueue {
    std::vector<PendingInference> requests;
    Clock::time_point oldest_arrival{};
    bool in_flush = false;  // a thread is running the sink for this device
  };

  // Waits out any in-progress flush of the device, then (if anything is
  // pending) extracts the group and runs the sink. Caller holds mu_;
  // FlushLocked drops it around the sink call and re-acquires before
  // returning. Returns true iff a non-empty group was extracted.
  bool FlushLocked(const std::string& device_id, DeviceQueue* dq)
      QCORE_REQUIRES(mu_);

  void FlusherLoop();

  const InferenceBatcherOptions options_;
  const FlushSink sink_;

  mutable Mutex mu_;
  CondVar flusher_cv_;     // wakes the deadline thread
  CondVar flush_done_cv_;  // in_flush transitions
  // DeviceQueue contents are guarded by mu_ too: references into the map
  // stay valid across FlushLocked's unlocked sink window (std::map node
  // stability), but are only dereferenced with mu_ held.
  std::map<std::string, DeviceQueue> queues_ QCORE_GUARDED_BY(mu_);
  bool shutdown_ QCORE_GUARDED_BY(mu_) = false;

  // Only started when the deadline is enabled. Waived from the raw-thread
  // rule: see the constructor for why the flusher is not pool work.
  std::thread flusher_;  // lint:allow(raw-thread)
};

}  // namespace qcore

#endif  // QCORE_SERVING_BATCHER_H_
