#include "serving/metrics.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

namespace qcore {

LatencyHistogram::LatencyHistogram() {
  std::memset(buckets_, 0, sizeof(buckets_));
}

namespace {

// 1e-5s * 2^((b+1)/2): spans 10us .. ~80s, last bucket +inf. Precomputed —
// Record runs under the histogram mutex on every serving task.
const std::array<double, LatencyHistogram::kNumBuckets>& BucketBounds() {
  static const auto bounds = []() {
    std::array<double, LatencyHistogram::kNumBuckets> b{};
    for (int i = 0; i < LatencyHistogram::kNumBuckets - 1; ++i) {
      b[static_cast<size_t>(i)] = 1e-5 * std::pow(2.0, 0.5 * (i + 1));
    }
    b[LatencyHistogram::kNumBuckets - 1] =
        std::numeric_limits<double>::infinity();
    return b;
  }();
  return bounds;
}

}  // namespace

double LatencyHistogram::UpperBound(int b) {
  return BucketBounds()[static_cast<size_t>(
      std::clamp(b, 0, kNumBuckets - 1))];
}

int LatencyHistogram::BucketFor(double seconds) const {
  const auto& bounds = BucketBounds();
  const auto it =
      std::upper_bound(bounds.begin(), bounds.end() - 1, seconds);
  return static_cast<int>(it - bounds.begin());
}

void LatencyHistogram::Record(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  MutexLock lock(mu_);
  ++buckets_[BucketFor(seconds)];
  ++count_;
  sum_ += seconds;
}

uint64_t LatencyHistogram::count() const {
  MutexLock lock(mu_);
  return count_;
}

double LatencyHistogram::sum_seconds() const {
  MutexLock lock(mu_);
  return sum_;
}

double LatencyHistogram::mean_seconds() const {
  MutexLock lock(mu_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

namespace {

// Quantile from a bucket snapshot (linear interpolation inside the bucket).
double QuantileFromBuckets(
    const uint64_t (&buckets)[LatencyHistogram::kNumBuckets], uint64_t count,
    double q) {
  q = std::clamp(q, 0.0, 1.0);
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  uint64_t running = 0;
  for (int b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
    const uint64_t next = running + buckets[b];
    if (static_cast<double>(next) >= target && buckets[b] > 0) {
      const double lo = (b == 0) ? 0.0 : LatencyHistogram::UpperBound(b - 1);
      double hi = LatencyHistogram::UpperBound(b);
      if (std::isinf(hi)) hi = lo * 2.0;
      const double frac = (target - static_cast<double>(running)) /
                          static_cast<double>(buckets[b]);
      return lo + frac * (hi - lo);
    }
    running = next;
  }
  return LatencyHistogram::UpperBound(LatencyHistogram::kNumBuckets - 2);
}

}  // namespace

double LatencyHistogram::QuantileSeconds(double q) const {
  MutexLock lock(mu_);
  return QuantileFromBuckets(buckets_, count_, q);
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  if (&other == this) return;  // self-merge would double every bucket
  uint64_t buckets[kNumBuckets];
  uint64_t count;
  double sum;
  {
    MutexLock lock(other.mu_);
    std::memcpy(buckets, other.buckets_, sizeof(buckets));
    count = other.count_;
    sum = other.sum_;
  }
  MutexLock lock(mu_);
  for (int b = 0; b < kNumBuckets; ++b) buckets_[b] += buckets[b];
  count_ += count;
  sum_ += sum;
}

void LatencyHistogram::Reset() {
  MutexLock lock(mu_);
  std::memset(buckets_, 0, sizeof(buckets_));
  count_ = 0;
  sum_ = 0.0;
}

std::string LatencyHistogram::Summary() const {
  // One lock acquisition: the printed line must be internally consistent
  // even while pool workers keep recording.
  uint64_t buckets[kNumBuckets];
  uint64_t count;
  double sum;
  {
    MutexLock lock(mu_);
    std::memcpy(buckets, buckets_, sizeof(buckets));
    count = count_;
    sum = sum_;
  }
  const double mean = count == 0 ? 0.0 : sum / static_cast<double>(count);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms",
                static_cast<unsigned long long>(count), mean * 1e3,
                QuantileFromBuckets(buckets, count, 0.5) * 1e3,
                QuantileFromBuckets(buckets, count, 0.95) * 1e3,
                QuantileFromBuckets(buckets, count, 0.99) * 1e3);
  return buf;
}

void CountHistogram::Record(int64_t value) {
  if (value < 0) value = 0;
  const int bucket =
      value >= kMaxTracked ? kMaxTracked : static_cast<int>(value);
  MutexLock lock(mu_);
  ++buckets_[bucket];
  ++count_;
  sum_ += value;
  if (value > max_) max_ = value;
}

uint64_t CountHistogram::count() const {
  MutexLock lock(mu_);
  return count_;
}

double CountHistogram::mean() const {
  MutexLock lock(mu_);
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) /
                           static_cast<double>(count_);
}

int64_t CountHistogram::max() const {
  MutexLock lock(mu_);
  return max_;
}

uint64_t CountHistogram::CountAt(int64_t value) const {
  if (value < 0) return 0;
  const int bucket =
      value >= kMaxTracked ? kMaxTracked : static_cast<int>(value);
  MutexLock lock(mu_);
  return buckets_[bucket];
}

uint64_t CountHistogram::CountAtLeast(int64_t value) const {
  if (value < 0) value = 0;
  const int from =
      value >= kMaxTracked ? kMaxTracked : static_cast<int>(value);
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (int b = from; b <= kMaxTracked; ++b) total += buckets_[b];
  return total;
}

void CountHistogram::MergeFrom(const CountHistogram& other) {
  if (&other == this) return;  // self-merge would double every bucket
  uint64_t buckets[kMaxTracked + 1];
  uint64_t count;
  int64_t sum, max;
  {
    MutexLock lock(other.mu_);
    std::memcpy(buckets, other.buckets_, sizeof(buckets));
    count = other.count_;
    sum = other.sum_;
    max = other.max_;
  }
  MutexLock lock(mu_);
  for (int b = 0; b <= kMaxTracked; ++b) buckets_[b] += buckets[b];
  count_ += count;
  sum_ += sum;
  if (max > max_) max_ = max;
}

void CountHistogram::Reset() {
  MutexLock lock(mu_);
  std::memset(buckets_, 0, sizeof(buckets_));
  count_ = 0;
  sum_ = 0;
  max_ = 0;
}

std::string CountHistogram::Summary() const {
  uint64_t count;
  int64_t sum, max;
  {
    MutexLock lock(mu_);
    count = count_;
    sum = sum_;
    max = max_;
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "count=%llu mean=%.2f max=%lld",
                static_cast<unsigned long long>(count),
                count == 0 ? 0.0
                           : static_cast<double>(sum) /
                                 static_cast<double>(count),
                static_cast<long long>(max));
  return buf;
}

void ServingMetrics::MergeFrom(const ServingMetrics& other) {
  if (&other == this) return;  // self-merge would double every counter
  inference_latency_.MergeFrom(other.inference_latency_);
  calibration_latency_.MergeFrom(other.calibration_latency_);
  batch_occupancy_.MergeFrom(other.batch_occupancy_);
  queue_depth_.MergeFrom(other.queue_depth_);
  const auto add = [](std::atomic<uint64_t>& dst,
                      const std::atomic<uint64_t>& src) {
    dst.fetch_add(src.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  };
  add(inference_requests_, other.inference_requests_);
  add(inference_examples_, other.inference_examples_);
  add(calibration_batches_, other.calibration_batches_);
  add(calibration_examples_, other.calibration_examples_);
  add(accuracy_micro_sum_, other.accuracy_micro_sum_);
  add(accuracy_samples_, other.accuracy_samples_);
  add(snapshots_, other.snapshots_);
  add(accepted_inference_, other.accepted_inference_);
  add(accepted_calibration_, other.accepted_calibration_);
  add(shed_inference_, other.shed_inference_);
  add(shed_calibration_, other.shed_calibration_);
  add(shed_queue_full_, other.shed_queue_full_);
  add(shed_deadline_, other.shed_deadline_);
  add(shed_limiter_, other.shed_limiter_);
  add(barrier_flushes_, other.barrier_flushes_);
  add(panel_wide_dispatches_, other.panel_wide_dispatches_);
  add(panel_narrow_dispatches_, other.panel_narrow_dispatches_);
  add(panel_tasks_, other.panel_tasks_);
}

void ServingMetrics::Reset() {
  inference_latency_.Reset();
  calibration_latency_.Reset();
  batch_occupancy_.Reset();
  queue_depth_.Reset();
  inference_requests_.store(0, std::memory_order_relaxed);
  inference_examples_.store(0, std::memory_order_relaxed);
  calibration_batches_.store(0, std::memory_order_relaxed);
  calibration_examples_.store(0, std::memory_order_relaxed);
  accuracy_micro_sum_.store(0, std::memory_order_relaxed);
  accuracy_samples_.store(0, std::memory_order_relaxed);
  snapshots_.store(0, std::memory_order_relaxed);
  accepted_inference_.store(0, std::memory_order_relaxed);
  accepted_calibration_.store(0, std::memory_order_relaxed);
  shed_inference_.store(0, std::memory_order_relaxed);
  shed_calibration_.store(0, std::memory_order_relaxed);
  shed_queue_full_.store(0, std::memory_order_relaxed);
  shed_deadline_.store(0, std::memory_order_relaxed);
  shed_limiter_.store(0, std::memory_order_relaxed);
  barrier_flushes_.store(0, std::memory_order_relaxed);
  panel_wide_dispatches_.store(0, std::memory_order_relaxed);
  panel_narrow_dispatches_.store(0, std::memory_order_relaxed);
  panel_tasks_.store(0, std::memory_order_relaxed);
}

float ServingMetrics::mean_accuracy() const {
  const uint64_t n = accuracy_samples_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0f;
  return static_cast<float>(
      static_cast<double>(accuracy_micro_sum_.load()) / 1e6 /
      static_cast<double>(n));
}

std::string ServingMetrics::Report() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "inference:   requests=%llu examples=%llu %s\n",
                static_cast<unsigned long long>(inference_requests()),
                static_cast<unsigned long long>(inference_examples()),
                inference_latency_.Summary().c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "calibration: batches=%llu examples=%llu %s\n",
                static_cast<unsigned long long>(calibration_batches()),
                static_cast<unsigned long long>(calibration_examples()),
                calibration_latency_.Summary().c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "quality:     mean_batch_accuracy=%.4f snapshots=%llu\n",
                mean_accuracy(),
                static_cast<unsigned long long>(snapshots()));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "batching:    occupancy[%s] barrier_flushes=%llu\n",
                batch_occupancy_.Summary().c_str(),
                static_cast<unsigned long long>(barrier_flushes()));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "overload:    queue_depth[%s] shed_inference=%llu "
      "shed_calibration=%llu\n",
      queue_depth_.Summary().c_str(),
      static_cast<unsigned long long>(shed_inference()),
      static_cast<unsigned long long>(shed_calibration()));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "shed-by-reason: queue_full=%llu deadline=%llu limiter=%llu\n",
      static_cast<unsigned long long>(shed_queue_full()),
      static_cast<unsigned long long>(shed_deadline()),
      static_cast<unsigned long long>(shed_limiter()));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "kernels:     panel_wide=%llu panel_narrow=%llu panel_tasks=%llu\n",
      static_cast<unsigned long long>(panel_wide_dispatches()),
      static_cast<unsigned long long>(panel_narrow_dispatches()),
      static_cast<unsigned long long>(panel_tasks()));
  out += buf;
  return out;
}

}  // namespace qcore
