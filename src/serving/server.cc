#include "serving/server.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/serialize.h"
#include "common/stopwatch.h"

namespace qcore {

namespace {

void SimulateDeviceLink(double rtt_ms) {
  if (rtt_ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
      rtt_ms));
}

}  // namespace

FleetServer::FleetServer(const QuantizedModel& base_model,
                         const BitFlipNet& base_bf,
                         FleetServerOptions options,
                         SnapshotRegistry* shared_registry,
                         ServingMetrics* rollup_metrics)
    : base_model_(base_model),
      base_bf_(base_bf),
      options_(std::move(options)),
      rollup_metrics_(rollup_metrics),
      registry_(shared_registry != nullptr ? shared_registry
                                           : &owned_registry_),
      pool_(options_.num_threads) {
  if (options_.enable_batching) {
    batcher_ = std::make_unique<InferenceBatcher>(
        options_.batching,
        [this](const std::string& device_id,
               std::vector<PendingInference> group) {
          FlushInferenceGroup(device_id, std::move(group));
        });
  }
}

FleetServer::~FleetServer() { Drain(); }

void FleetServer::RegisterDevice(const std::string& device_id,
                                 Dataset qcore) {
  auto state = std::make_unique<SessionState>(
      device_id, base_model_, base_bf_, std::move(qcore), options_.continual,
      DeviceSeed(options_.seed, device_id));
  if (options_.warm_start_from_registry) {
    // Seed the session from calibrated state instead of the factory model:
    // its own latest version (restart recovery) or the cohort-nearest
    // device's (cross-process warm start via an imported delta). No
    // registry content — or a snapshot from an incompatible architecture
    // (a shared/imported registry can hold foreign fleets' models) — means
    // a plain cold start: RestoreInto fails atomically, leaving the
    // freshly cloned base model untouched.
    if (auto snap = registry_->NearestFor(device_id)) {
      (void)SnapshotRegistry::RestoreInto(*snap, state->session.model());
    }
  }
  std::lock_guard<std::mutex> lock(sessions_mu_);
  const bool inserted =
      sessions_.emplace(device_id, std::move(state)).second;
  QCORE_CHECK_MSG(inserted, ("device registered twice: " + device_id).c_str());
}

bool FleetServer::HasDevice(const std::string& device_id) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.count(device_id) > 0;
}

int FleetServer::num_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return static_cast<int>(sessions_.size());
}

FleetServer::SessionState* FleetServer::FindSession(
    const std::string& device_id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(device_id);
  QCORE_CHECK_MSG(it != sessions_.end(),
                  ("unknown device: " + device_id).c_str());
  return it->second.get();
}

std::unique_lock<std::mutex> FleetServer::QuiesceSession(
    const std::string& device_id, SessionState* state) {
  // Pending batched requests live outside the session FIFO; hand them to
  // the sink first so the idle wait below covers them.
  if (batcher_) batcher_->FlushDevice(device_id);
  std::unique_lock<std::mutex> lock(state->mu);
  state->idle_cv.wait(lock, [state]() {
    return state->queue.empty() && !state->pumping;
  });
  return lock;
}

void FleetServer::WithSessionQuiesced(
    const std::string& device_id,
    const std::function<void(CalibrationSession&)>& fn) {
  SessionState* state = FindSession(device_id);
  // Holding the session lock across `fn` gives exclusive access: a pump
  // cannot pop (or start) a task, and concurrent submissions for the device
  // block in EnqueueOnSession until `fn` returns.
  std::unique_lock<std::mutex> lock = QuiesceSession(device_id, state);
  fn(state->session);
}

bool FleetServer::AdmitTask(SessionState* state, bool is_inference) {
  std::atomic<int>& class_depth =
      is_inference ? state->depth_inference : state->depth_calibration;
  const int class_bound = is_inference
                              ? options_.max_inference_queue_per_session
                              : options_.max_calibration_queue_per_session;
  // The shared gauge is reserved first and strictly (single fetch_add), so
  // the recorded queue-depth samples can never exceed a configured shared
  // bound; the class gauge is reserved second and undone on either shed.
  const int depth = state->depth.fetch_add(1, std::memory_order_relaxed) + 1;
  const int class_depth_now =
      class_depth.fetch_add(1, std::memory_order_relaxed) + 1;
  const bool shed = (options_.max_queue_per_session > 0 &&
                     depth > options_.max_queue_per_session) ||
                    (class_bound > 0 && class_depth_now > class_bound);
  if (shed) {
    class_depth.fetch_sub(1, std::memory_order_relaxed);
    state->depth.fetch_sub(1, std::memory_order_relaxed);
    RecordMetrics([is_inference](ServingMetrics& m) {
      if (is_inference) {
        m.AddShedInference();
      } else {
        m.AddShedCalibration();
      }
    });
    return false;
  }
  RecordMetrics([is_inference, depth](ServingMetrics& m) {
    if (is_inference) {
      m.AddAcceptedInference();
    } else {
      m.AddAcceptedCalibration();
    }
    m.queue_depth().Record(depth);
  });
  return true;
}

void FleetServer::ReleaseTask(SessionState* state, bool is_inference,
                              int count) {
  std::atomic<int>& class_depth =
      is_inference ? state->depth_inference : state->depth_calibration;
  class_depth.fetch_sub(count, std::memory_order_relaxed);
  state->depth.fetch_sub(count, std::memory_order_relaxed);
}

Result<std::future<InferenceResult>> FleetServer::TrySubmitInference(
    const std::string& device_id, Tensor x) {
  SessionState* state = FindSession(device_id);
  if (!AdmitTask(state, /*is_inference=*/true)) {
    return Status::ResourceExhausted("inference queue full for device " +
                                     device_id);
  }
  auto promise = std::make_shared<std::promise<InferenceResult>>();
  std::future<InferenceResult> result = promise->get_future();
  // Latency clocks start at submission so the histograms include batching
  // delay and queue wait — the signal that actually shows overload.
  Stopwatch timer;
  if (batcher_) {
    PendingInference pending;
    pending.input = std::move(x);
    pending.promise = std::move(promise);
    pending.timer = timer;
    batcher_->Add(device_id, std::move(pending));
    return result;
  }
  EnqueueOnSession(
      state,
      [this, state, promise, timer, x = std::move(x)]() {
        SimulateDeviceLink(options_.simulated_device_rtt_ms);
        InferenceResult r;
        r.predictions = state->session.Predict(x);
        r.latency_seconds = timer.ElapsedSeconds();
        RecordMetrics([&r, &x](ServingMetrics& m) {
          m.inference_latency().Record(r.latency_seconds);
          m.AddInference(static_cast<uint64_t>(x.dim(0)));
          m.batch_occupancy().Record(1);
        });
        promise->set_value(std::move(r));
        ReleaseTask(state, /*is_inference=*/true, 1);
      },
      TaskPriority::kHigh);
  return result;
}

void FleetServer::FlushInferenceGroup(const std::string& device_id,
                                      std::vector<PendingInference> group) {
  QCORE_CHECK(!group.empty());
  SessionState* state = FindSession(device_id);
  EnqueueOnSession(
      state,
      [this, state, group = std::move(group)]() {
        // One device-link round trip and one forward pass for the whole
        // group — the amortization that makes batching pay.
        SimulateDeviceLink(options_.simulated_device_rtt_ms);
        std::vector<const Tensor*> inputs;
        inputs.reserve(group.size());
        for (const PendingInference& p : group) inputs.push_back(&p.input);
        std::vector<std::vector<int>> labels =
            state->session.PredictBatch(inputs);
        RecordMetrics([&group](ServingMetrics& m) {
          m.batch_occupancy().Record(static_cast<int64_t>(group.size()));
        });
        for (size_t i = 0; i < group.size(); ++i) {
          InferenceResult r;
          r.predictions = std::move(labels[i]);
          r.latency_seconds = group[i].timer.ElapsedSeconds();
          RecordMetrics([&r, &group, i](ServingMetrics& m) {
            m.inference_latency().Record(r.latency_seconds);
            m.AddInference(static_cast<uint64_t>(group[i].input.dim(0)));
          });
          group[i].promise->set_value(std::move(r));
        }
        ReleaseTask(state, /*is_inference=*/true,
                    static_cast<int>(group.size()));
      },
      TaskPriority::kHigh);
}

Result<std::future<BatchStats>> FleetServer::TrySubmitCalibration(
    const std::string& device_id, Dataset batch, Dataset test_slice) {
  SessionState* state = FindSession(device_id);
  if (!AdmitTask(state, /*is_inference=*/false)) {
    return Status::ResourceExhausted("calibration queue full for device " +
                                     device_id);
  }
  // Ordering barrier: calibration mutates the model, so every inference
  // submitted before it must run first — flush the device's pending group
  // ahead of enqueueing. This is what keeps batched results bit-identical
  // to the unbatched path for any interleaving.
  if (batcher_) batcher_->FlushDevice(device_id);
  auto promise = std::make_shared<std::promise<BatchStats>>();
  std::future<BatchStats> result = promise->get_future();
  Stopwatch timer;  // includes queue wait, like the inference clock
  EnqueueOnSession(
      state,
      [this, device_id, state, promise, timer, batch = std::move(batch),
       test_slice = std::move(test_slice)]() {
        SimulateDeviceLink(options_.simulated_device_rtt_ms);
        BatchStats stats = state->session.Calibrate(batch, test_slice);
        const double latency = timer.ElapsedSeconds();
        RecordMetrics([&stats, &batch, latency](ServingMetrics& m) {
          m.calibration_latency().Record(latency);
          m.AddCalibration(static_cast<uint64_t>(batch.size()));
          m.AddAccuracySample(stats.accuracy);
        });
        if (options_.snapshot_every > 0 &&
            state->session.batches_processed() %
                    static_cast<uint64_t>(options_.snapshot_every) ==
                0) {
          registry_->Publish(*state->session.model(), device_id,
                             state->session.batches_processed());
          RecordMetrics([](ServingMetrics& m) { m.AddSnapshot(); });
        }
        promise->set_value(stats);
        ReleaseTask(state, /*is_inference=*/false, 1);
      },
      TaskPriority::kLow);
  return result;
}

std::future<uint64_t> FleetServer::PublishSnapshot(
    const std::string& device_id) {
  auto promise = std::make_shared<std::promise<uint64_t>>();
  std::future<uint64_t> result = promise->get_future();
  SessionState* state = FindSession(device_id);
  // Same barrier as calibration: the snapshot must capture the model in
  // the session's submission order.
  if (batcher_) batcher_->FlushDevice(device_id);
  EnqueueOnSession(
      state,
      [this, device_id, state, promise]() {
        const uint64_t version =
            registry_->Publish(*state->session.model(), device_id,
                               state->session.batches_processed());
        RecordMetrics([](ServingMetrics& m) { m.AddSnapshot(); });
        promise->set_value(version);
      },
      TaskPriority::kHigh);
  return result;
}

SessionHandoff FleetServer::DetachSession(const std::string& device_id) {
  SessionHandoff handoff;
  handoff.device_id = device_id;
  // Barrier snapshot: flushes the device's pending batched group (the PR 2
  // follow-up — a group left pending would otherwise resolve against a
  // session that moved shards) and, by session FIFO order, captures the
  // model only after every previously submitted task has run.
  handoff.barrier_version = PublishSnapshot(device_id).get();
  SessionState* state = FindSession(device_id);
  {
    // The publish future resolves inside the task; wait for the pump to
    // fully release the session before serializing and freeing it.
    std::unique_lock<std::mutex> lock = QuiesceSession(device_id, state);
    BinaryWriter w;
    state->session.SerializeContinuation(&w);
    handoff.continuation = w.TakeBuffer();
  }
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.erase(device_id);
  return handoff;
}

void FleetServer::AttachSession(const SessionHandoff& handoff) {
  std::shared_ptr<const ModelSnapshot> snap =
      registry_->Get(handoff.barrier_version);
  QCORE_CHECK_MSG(snap != nullptr,
                  "AttachSession: barrier snapshot not in this server's "
                  "registry (shards must share one)");
  BinaryReader r(handoff.continuation);
  auto state = std::make_unique<SessionState>(
      handoff.device_id, base_model_, base_bf_, options_.continual, *snap,
      &r);
  std::lock_guard<std::mutex> lock(sessions_mu_);
  const bool inserted =
      sessions_.emplace(handoff.device_id, std::move(state)).second;
  QCORE_CHECK_MSG(inserted,
                  ("AttachSession: device already present: " +
                   handoff.device_id)
                      .c_str());
}

void FleetServer::EnqueueOnSession(SessionState* state,
                                   std::function<void()> task,
                                   TaskPriority priority) {
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++in_flight_;
  }
  bool start_pump = false;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->queue.push_back(std::move(task));
    if (!state->pumping) {
      state->pumping = true;
      start_pump = true;
    }
  }
  if (start_pump) {
    // Priority classifies the pump, not individual tasks: once a worker
    // owns the session it drains the FIFO regardless of what joins it
    // (priority must never reorder work WITHIN a session — that would
    // break determinism). Best effort across sessions is exactly what
    // overload control needs.
    pool_.Schedule([this, state]() { PumpSession(state); }, priority);
  }
}

void FleetServer::PumpSession(SessionState* state) {
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      if (state->queue.empty()) {
        state->pumping = false;
        // Wake quiesce waiters (WithSessionQuiesced, DetachSession) only
        // once the session is fully released; after the unlock below the
        // pump never touches `state` again.
        state->idle_cv.notify_all();
        return;
      }
      task = std::move(state->queue.front());
      state->queue.pop_front();
    }
    task();
    TaskFinished();
  }
}

void FleetServer::TaskFinished() {
  std::lock_guard<std::mutex> lock(drain_mu_);
  if (--in_flight_ == 0) drain_cv_.notify_all();
}

void FleetServer::Drain() {
  // Hand every pending batched request to the pool first; when FlushAll
  // returns, each previously submitted request is represented in
  // in_flight_ (the batcher only decrements its pending count after the
  // sink has enqueued, so there is no window where both counts are zero
  // with work in limbo).
  if (batcher_) batcher_->FlushAll();
  // Wait on the server's own in-flight count, not the pool: a task counts
  // from submission, so Drain cannot slip through the window where a task
  // is queued on a session but its pump has not reached the pool yet.
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this]() { return in_flight_ == 0; });
}

}  // namespace qcore
