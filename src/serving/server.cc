#include "serving/server.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"

namespace qcore {

namespace {

void SimulateDeviceLink(double rtt_ms) {
  if (rtt_ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
      rtt_ms));
}

}  // namespace

FleetServer::FleetServer(const QuantizedModel& base_model,
                         const BitFlipNet& base_bf,
                         FleetServerOptions options)
    : base_model_(base_model),
      base_bf_(base_bf),
      options_(std::move(options)),
      pool_(options_.num_threads) {}

FleetServer::~FleetServer() { Drain(); }

void FleetServer::RegisterDevice(const std::string& device_id,
                                 Dataset qcore) {
  auto state = std::make_unique<SessionState>(
      device_id, base_model_, base_bf_, std::move(qcore), options_.continual,
      DeviceSeed(options_.seed, device_id));
  std::lock_guard<std::mutex> lock(sessions_mu_);
  const bool inserted =
      sessions_.emplace(device_id, std::move(state)).second;
  QCORE_CHECK_MSG(inserted, ("device registered twice: " + device_id).c_str());
}

bool FleetServer::HasDevice(const std::string& device_id) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.count(device_id) > 0;
}

int FleetServer::num_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return static_cast<int>(sessions_.size());
}

FleetServer::SessionState* FleetServer::FindSession(
    const std::string& device_id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(device_id);
  QCORE_CHECK_MSG(it != sessions_.end(),
                  ("unknown device: " + device_id).c_str());
  return it->second.get();
}

CalibrationSession* FleetServer::session(const std::string& device_id) {
  return &FindSession(device_id)->session;
}

std::future<InferenceResult> FleetServer::SubmitInference(
    const std::string& device_id, Tensor x) {
  auto promise = std::make_shared<std::promise<InferenceResult>>();
  std::future<InferenceResult> result = promise->get_future();
  SessionState* state = FindSession(device_id);
  // Latency clocks start at submission so the histograms include queue
  // wait — the signal that actually shows overload.
  Stopwatch timer;
  EnqueueOnSession(state, [this, state, promise, timer,
                           x = std::move(x)]() {
    SimulateDeviceLink(options_.simulated_device_rtt_ms);
    InferenceResult r;
    r.predictions = state->session.Predict(x);
    r.latency_seconds = timer.ElapsedSeconds();
    metrics_.inference_latency().Record(r.latency_seconds);
    metrics_.AddInference(static_cast<uint64_t>(x.dim(0)));
    promise->set_value(std::move(r));
  });
  return result;
}

std::future<BatchStats> FleetServer::SubmitCalibration(
    const std::string& device_id, Dataset batch, Dataset test_slice) {
  auto promise = std::make_shared<std::promise<BatchStats>>();
  std::future<BatchStats> result = promise->get_future();
  SessionState* state = FindSession(device_id);
  Stopwatch timer;  // includes queue wait, like the inference clock
  EnqueueOnSession(state, [this, device_id, state, promise, timer,
                           batch = std::move(batch),
                           test_slice = std::move(test_slice)]() {
    SimulateDeviceLink(options_.simulated_device_rtt_ms);
    BatchStats stats = state->session.Calibrate(batch, test_slice);
    metrics_.calibration_latency().Record(timer.ElapsedSeconds());
    metrics_.AddCalibration(static_cast<uint64_t>(batch.size()));
    metrics_.AddAccuracySample(stats.accuracy);
    if (options_.snapshot_every > 0 &&
        state->session.batches_processed() %
                static_cast<uint64_t>(options_.snapshot_every) ==
            0) {
      snapshots_.Publish(*state->session.model(), device_id,
                         state->session.batches_processed());
      metrics_.AddSnapshot();
    }
    promise->set_value(stats);
  });
  return result;
}

std::future<uint64_t> FleetServer::PublishSnapshot(
    const std::string& device_id) {
  auto promise = std::make_shared<std::promise<uint64_t>>();
  std::future<uint64_t> result = promise->get_future();
  SessionState* state = FindSession(device_id);
  EnqueueOnSession(state, [this, device_id, state, promise]() {
    const uint64_t version =
        snapshots_.Publish(*state->session.model(), device_id,
                           state->session.batches_processed());
    metrics_.AddSnapshot();
    promise->set_value(version);
  });
  return result;
}

void FleetServer::EnqueueOnSession(SessionState* state,
                                   std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++in_flight_;
  }
  bool start_pump = false;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->queue.push_back(std::move(task));
    if (!state->pumping) {
      state->pumping = true;
      start_pump = true;
    }
  }
  if (start_pump) {
    pool_.Schedule([this, state]() { PumpSession(state); });
  }
}

void FleetServer::PumpSession(SessionState* state) {
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      if (state->queue.empty()) {
        state->pumping = false;
        return;
      }
      task = std::move(state->queue.front());
      state->queue.pop_front();
    }
    task();
    TaskFinished();
  }
}

void FleetServer::TaskFinished() {
  std::lock_guard<std::mutex> lock(drain_mu_);
  if (--in_flight_ == 0) drain_cv_.notify_all();
}

void FleetServer::Drain() {
  // Wait on the server's own in-flight count, not the pool: a task counts
  // from submission, so Drain cannot slip through the window where a task
  // is queued on a session but its pump has not reached the pool yet.
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this]() { return in_flight_ == 0; });
}

}  // namespace qcore
