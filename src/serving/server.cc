#include "serving/server.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/serialize.h"
#include "common/stopwatch.h"
#include "obs/trace.h"
#include "tensor/kernels.h"
#include "testing/fault_injector.h"

namespace qcore {

namespace {

// Kernel panel-parallelism attribution. The dispatch counters are
// thread-local and the whole forward pass runs on this exec thread, so the
// before/after delta is exactly this request's GEMMs even with concurrent
// sessions on other pool workers (a process-global counter would smear
// them together).
struct PanelDelta {
  uint64_t wide = 0;
  uint64_t narrow = 0;
  uint64_t tasks = 0;
};

PanelDelta PanelDeltaSince(const kernels::GemmDispatchCounters& before) {
  const kernels::GemmDispatchCounters now =
      kernels::ThreadGemmDispatchCounters();
  return {now.wide - before.wide, now.narrow - before.narrow,
          now.panel_tasks - before.panel_tasks};
}

void SimulateDeviceLink(double rtt_ms) {
  // An injected RTT spike stretches one round trip even when simulation is
  // off (rtt_ms == 0) — a slow device is purely latency, so every result
  // stays bit-identical; only the timeline moves.
  uint64_t spike_us = 0;
  if (MaybeFault(FaultPoint::kDeviceRttSpike, &spike_us)) {
    std::this_thread::sleep_for(std::chrono::microseconds(spike_us));
  }
  if (rtt_ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
      rtt_ms));
}

}  // namespace

FleetServer::FleetServer(const QuantizedModel& base_model,
                         const BitFlipNet& base_bf,
                         FleetServerOptions options,
                         SnapshotRegistry* shared_registry,
                         ServingMetrics* rollup_metrics,
                         Whiteboard* shared_whiteboard, int shard_index,
                         AdmissionLimiter* shared_limiter)
    : base_model_(base_model),
      base_bf_(base_bf),
      options_(std::move(options)),
      rollup_metrics_(rollup_metrics),
      registry_(shared_registry != nullptr ? shared_registry
                                           : &owned_registry_),
      whiteboard_(shared_whiteboard != nullptr ? shared_whiteboard
                                               : &owned_whiteboard_),
      wb_shard_(whiteboard_->RegisterShard(shard_index)),
      shard_index_(shard_index),
      // Standalone servers own a limiter with an unbounded fleet root, so
      // only the shard and session caps bite; behind a router the shared
      // tree adds the fleet-wide cap on top.
      owned_limiter_(shared_limiter == nullptr
                         ? std::make_unique<AdmissionLimiter>(AdmissionCaps{})
                         : nullptr),
      limiter_(shared_limiter != nullptr ? shared_limiter
                                         : owned_limiter_.get()),
      shard_node_(limiter_->AddShard(
          AdmissionCaps{options_.max_queue_per_shard, 0, 0})),
      pool_(ThreadPoolOptions{options_.num_threads,
                              options_.calibration_aging_us}) {
  // The WAL row reflects whatever store backs the registry (all zeros over
  // a memory store). With a shared whiteboard every shard installs an
  // equivalent provider over the same shared registry — last one wins,
  // harmlessly. The captured registry outlives the board by the owners'
  // declaration orders (server and router both).
  whiteboard_->SetWalStatsProvider([registry = registry_]() {
    const WalStats stats = registry->wal_stats();
    WalRow row;
    row.appends = stats.appends;
    row.appended_bytes = stats.appended_bytes;
    row.fsyncs = stats.fsyncs;
    row.compactions = stats.compactions;
    row.torn_tails = stats.torn_tails_recovered;
    return row;
  });
  if (options_.enable_batching) {
    batcher_ = std::make_unique<InferenceBatcher>(
        options_.batching,
        [this](const std::string& device_id,
               std::vector<PendingInference> group) {
          FlushInferenceGroup(device_id, std::move(group));
        });
  }
}

FleetServer::~FleetServer() {
  Drain();
  // On a shared (router) whiteboard the row outlives this server; flag it
  // so dumps distinguish a retired shard from a quiet one. Counters stay —
  // history survives retirement like it survives migration.
  wb_shard_->set_retired();
}

void FleetServer::RegisterDevice(const std::string& device_id,
                                 Dataset qcore) {
  auto state = std::make_unique<SessionState>(
      device_id, base_model_, base_bf_, std::move(qcore), options_.continual,
      DeviceSeed(options_.seed, device_id));
  WarmStartOrigin origin = WarmStartOrigin::kCold;
  if (options_.warm_start_from_registry) {
    // Seed the session from calibrated state instead of the factory model:
    // its own latest version (restart recovery) or the cohort-nearest
    // device's (cross-process warm start via an imported delta). No
    // registry content — or a snapshot from an incompatible architecture
    // (a shared/imported registry can hold foreign fleets' models) — means
    // a plain cold start: RestoreInto fails atomically, leaving the
    // freshly cloned base model untouched.
    if (auto snap = registry_->NearestFor(device_id)) {
      if (SnapshotRegistry::RestoreInto(*snap, state->session.model())
              .ok()) {
        origin = snap->device_id == device_id
                     ? WarmStartOrigin::kOwnSnapshot
                     : WarmStartOrigin::kCohortSnapshot;
      }
    }
  }
  state->wb = whiteboard_->UpsertDevice(device_id, shard_index_, origin);
  state->wb->set_warm_start(origin);  // re-registration re-derives origin
  state->trace_name = TraceRing::Global().Intern(device_id);
  state->admission = limiter_->AddSession(
      shard_node_,
      AdmissionCaps{options_.max_queue_per_session,
                    options_.max_inference_queue_per_session,
                    options_.max_calibration_queue_per_session});
  MutexLock lock(sessions_mu_);
  const bool inserted =
      sessions_.emplace(device_id, std::move(state)).second;
  QCORE_CHECK_MSG(inserted, ("device registered twice: " + device_id).c_str());
  wb_shard_->set_sessions(sessions_.size());
}

bool FleetServer::HasDevice(const std::string& device_id) const {
  MutexLock lock(sessions_mu_);
  return sessions_.count(device_id) > 0;
}

int FleetServer::num_sessions() const {
  MutexLock lock(sessions_mu_);
  return static_cast<int>(sessions_.size());
}

FleetServer::SessionState* FleetServer::FindSession(
    const std::string& device_id) {
  MutexLock lock(sessions_mu_);
  auto it = sessions_.find(device_id);
  QCORE_CHECK_MSG(it != sessions_.end(),
                  ("unknown device: " + device_id).c_str());
  return it->second.get();
}

void FleetServer::BarrierFlush(const std::string& device_id,
                               SessionState* state, uint64_t span) {
  if (!batcher_) return;
  uint64_t delay_us = 0;
  if (MaybeFault(FaultPoint::kBarrierDelay, &delay_us)) {
    // Stretch the window between admission and the forced flush. Ordering
    // is untouched — the flush still runs before the mutating task is
    // enqueued — so this perturbs timing, never results.
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
  if (batcher_->FlushDevice(device_id)) {
    // A group actually left early because of this barrier — the signal
    // that mutation cadence is cutting batches short.
    RecordMetrics([](ServingMetrics& m) { m.AddBarrierFlush(); });
    wb_shard_->add_barrier_flush();
    TraceRing::Global().Record(TraceKind::kBarrierFlush, span,
                               state->trace_name);
  }
}

void FleetServer::QuiesceSession(const std::string& device_id,
                                 SessionState* state) {
  // Pending batched requests live outside the session FIFO; hand them to
  // the sink first so the idle wait below covers them. Quiesce is a
  // barrier like any other model-mutating entry point; its span is the
  // caller's current one (0 when quiescing outside any request).
  BarrierFlush(device_id, state, TraceRing::CurrentSpan());
  state->mu.Lock();
  state->idle_cv.Wait(state->mu, [state]() {
    state->mu.AssertHeld();
    return state->queue.empty() && !state->pumping;
  });
}

void FleetServer::WithSessionQuiesced(
    const std::string& device_id,
    const std::function<void(CalibrationSession&)>& fn) {
  SessionState* state = FindSession(device_id);
  // Holding the session lock across `fn` gives exclusive access: a pump
  // cannot pop (or start) a task, and concurrent submissions for the device
  // block in EnqueueOnSession until `fn` returns.
  QuiesceSession(device_id, state);
  fn(state->session);
  state->mu.Unlock();
}

Status FleetServer::AdmitTask(SessionState* state,
                              const std::string& device_id, bool is_inference,
                              uint64_t span) {
  const AdmissionLevel refused =
      limiter_->TryAcquire(state->admission, is_inference);
  if (refused != AdmissionLevel::kNone) {
    const bool session_level = refused == AdmissionLevel::kSession;
    RecordMetrics([is_inference, session_level](ServingMetrics& m) {
      if (is_inference) {
        m.AddShedInference();
      } else {
        m.AddShedCalibration();
      }
      // Reason split: a session refusal is the historical queue-full shed;
      // shard/fleet refusals are limiter sheds.
      if (session_level) {
        m.AddShedQueueFull();
      } else {
        m.AddShedLimiter();
      }
    });
    // The concrete status lands on both whiteboard rows (the last-error
    // plumbing the counters used to swallow) before the caller sees it.
    // The session-level message keeps its historical wording.
    Status status =
        session_level
            ? Status::ResourceExhausted(
                  std::string(is_inference ? "inference" : "calibration") +
                  " queue full for device " + device_id)
            : Status::ResourceExhausted(
                  std::string("admission refused at ") +
                  AdmissionLevelName(refused) + " level for device " +
                  device_id);
    state->wb->RecordError(status);
    if (is_inference) {
      state->wb->add_shed_inference();
      wb_shard_->add_shed_inference();
    } else {
      state->wb->add_shed_calibration();
      wb_shard_->add_shed_calibration();
    }
    if (session_level) {
      state->wb->add_shed_queue_full();
      wb_shard_->add_shed_queue_full();
    } else {
      state->wb->add_shed_limiter();
      wb_shard_->add_shed_limiter();
    }
    wb_shard_->RecordError(status);
    TraceRing::Global().Record(TraceKind::kShed, span, state->trace_name);
    return status;
  }
  const int depth = state->admission->total_depth();
  RecordMetrics([is_inference, depth](ServingMetrics& m) {
    if (is_inference) {
      m.AddAcceptedInference();
    } else {
      m.AddAcceptedCalibration();
    }
    m.queue_depth().Record(depth);
  });
  if (is_inference) {
    state->wb->add_accepted_inference();
    wb_shard_->add_accepted_inference();
  } else {
    state->wb->add_accepted_calibration();
    wb_shard_->add_accepted_calibration();
  }
  state->wb->set_queue_depths(
      static_cast<uint64_t>(state->admission->inference_depth()),
      static_cast<uint64_t>(state->admission->calibration_depth()));
  return Status::OK();
}

void FleetServer::ReleaseTask(SessionState* state, bool is_inference,
                              int count) {
  for (int i = 0; i < count; ++i) {
    limiter_->Release(state->admission, is_inference);
  }
  state->wb->set_queue_depths(
      static_cast<uint64_t>(state->admission->inference_depth()),
      static_cast<uint64_t>(state->admission->calibration_depth()));
}

void FleetServer::ShedDeadline(
    SessionState* state, uint64_t span,
    const std::shared_ptr<std::promise<InferenceResult>>& promise,
    double elapsed_seconds) {
  InferenceResult r;
  r.latency_seconds = elapsed_seconds;
  r.trace_span = span;
  r.status = Status::DeadlineExceeded(
      "latency budget expired before execution");
  RecordMetrics([](ServingMetrics& m) { m.AddShedDeadline(); });
  state->wb->add_shed_deadline();
  wb_shard_->add_shed_deadline();
  state->wb->RecordError(r.status);
  wb_shard_->RecordError(r.status);
  TraceRing::Global().Record(TraceKind::kDeadlineShed, span,
                             state->trace_name);
  promise->set_value(std::move(r));
  ReleaseTask(state, /*is_inference=*/true, 1);
}

Result<std::future<InferenceResult>> FleetServer::TrySubmitInference(
    const std::string& device_id, Tensor x,
    const InferenceSubmitOptions& opts) {
  SessionState* state = FindSession(device_id);
  const uint64_t span = TraceRing::NextSpan();
  TraceRing::Global().Record(TraceKind::kSubmitInference, span,
                             state->trace_name);
  QCORE_RETURN_NOT_OK(AdmitTask(state, device_id, /*is_inference=*/true,
                                span));
  // The deadline is fixed at submission; everything downstream (batcher
  // flush, exec start) compares against it through OverloadClock.
  const auto deadline = OverloadClock::DeadlineFor(opts.latency_budget_us);
  auto promise = std::make_shared<std::promise<InferenceResult>>();
  std::future<InferenceResult> result = promise->get_future();
  // Latency clocks start at submission so the histograms include batching
  // delay and queue wait — the signal that actually shows overload.
  Stopwatch timer;
  if (batcher_) {
    TraceRing::Global().Record(TraceKind::kBatchEnqueue, span,
                               state->trace_name);
    PendingInference pending;
    pending.input = std::move(x);
    pending.promise = std::move(promise);
    pending.timer = timer;
    pending.span = span;
    pending.deadline = deadline;
    batcher_->Add(device_id, std::move(pending));
    return result;
  }
  EnqueueOnSession(
      state,
      [this, state, promise, timer, span, deadline, x = std::move(x)]() {
        // Exec-start deadline check: an expired request is shed before the
        // device link or forward pass is touched.
        if (OverloadClock::Expired(deadline)) {
          ShedDeadline(state, span, promise, timer.ElapsedSeconds());
          return;
        }
        ScopedTraceSpan scope(span);
        TraceRing::Global().Record(TraceKind::kExecStart, span,
                                   state->trace_name, 1);
        SimulateDeviceLink(options_.simulated_device_rtt_ms);
        const kernels::GemmDispatchCounters kd_before =
            kernels::ThreadGemmDispatchCounters();
        InferenceResult r;
        r.predictions = state->session.Predict(x);
        const PanelDelta panels = PanelDeltaSince(kd_before);
        r.latency_seconds = timer.ElapsedSeconds();
        r.trace_span = span;
        RecordMetrics([&r, &x, &panels](ServingMetrics& m) {
          m.inference_latency().Record(r.latency_seconds);
          m.AddInference(static_cast<uint64_t>(x.dim(0)));
          m.batch_occupancy().Record(1);
          m.AddPanelDispatch(panels.wide, panels.narrow, panels.tasks);
        });
        state->wb->set_last_batch_occupancy(1);
        wb_shard_->add_inference_request();
        wb_shard_->add_panel_dispatches(panels.wide, panels.tasks);
        TraceRing::Global().Record(TraceKind::kExecEnd, span,
                                   state->trace_name);
        TraceRing::Global().Record(TraceKind::kComplete, span,
                                   state->trace_name);
        promise->set_value(std::move(r));
        ReleaseTask(state, /*is_inference=*/true, 1);
      },
      TaskPriority::kHigh);
  return result;
}

void FleetServer::FlushInferenceGroup(const std::string& device_id,
                                      std::vector<PendingInference> group) {
  QCORE_CHECK(!group.empty());
  SessionState* state = FindSession(device_id);
  // Flush-time deadline check: members whose budget expired while parked in
  // the batcher are shed here and never join the exec group. Shedding is
  // safe for bit-identity because inference never consumes the session's
  // Rng — survivors see the exact model state they would have anyway.
  std::vector<PendingInference> live;
  live.reserve(group.size());
  for (PendingInference& p : group) {
    if (OverloadClock::Expired(p.deadline)) {
      ShedDeadline(state, p.span, p.promise, p.timer.ElapsedSeconds());
    } else {
      live.push_back(std::move(p));
    }
  }
  if (live.empty()) return;
  // The group gets its own span for the shared forward pass; each member's
  // batchFlush event carries it (arg1), linking request spans to the group
  // exec they rode in.
  const uint64_t group_span = TraceRing::NextSpan();
  for (const PendingInference& p : live) {
    TraceRing::Global().Record(TraceKind::kBatchFlush, p.span,
                               state->trace_name, group_span);
  }
  EnqueueOnSession(
      state,
      [this, state, group_span, group = std::move(live)]() mutable {
        // Exec-start re-check: budgets that expired during the queue wait
        // between flush and execution are shed before the forward pass.
        std::vector<PendingInference> run;
        run.reserve(group.size());
        for (PendingInference& p : group) {
          if (OverloadClock::Expired(p.deadline)) {
            ShedDeadline(state, p.span, p.promise, p.timer.ElapsedSeconds());
          } else {
            run.push_back(std::move(p));
          }
        }
        if (run.empty()) return;
        ScopedTraceSpan scope(group_span);
        TraceRing::Global().Record(TraceKind::kExecStart, group_span,
                                   state->trace_name, run.size());
        // One device-link round trip and one forward pass for the whole
        // group — the amortization that makes batching pay.
        SimulateDeviceLink(options_.simulated_device_rtt_ms);
        std::vector<const Tensor*> inputs;
        inputs.reserve(run.size());
        for (const PendingInference& p : run) inputs.push_back(&p.input);
        const kernels::GemmDispatchCounters kd_before =
            kernels::ThreadGemmDispatchCounters();
        std::vector<std::vector<int>> labels =
            state->session.PredictBatch(inputs);
        // Attributed to the group, not split per member: the batched
        // forward is one set of GEMMs, and whether they went wide is a
        // property of the coalesced shape.
        const PanelDelta panels = PanelDeltaSince(kd_before);
        RecordMetrics([&run, &panels](ServingMetrics& m) {
          m.batch_occupancy().Record(static_cast<int64_t>(run.size()));
          m.AddPanelDispatch(panels.wide, panels.narrow, panels.tasks);
        });
        state->wb->set_last_batch_occupancy(run.size());
        wb_shard_->add_panel_dispatches(panels.wide, panels.tasks);
        for (size_t i = 0; i < run.size(); ++i) {
          InferenceResult r;
          r.predictions = std::move(labels[i]);
          r.latency_seconds = run[i].timer.ElapsedSeconds();
          r.trace_span = run[i].span;
          RecordMetrics([&r, &run, i](ServingMetrics& m) {
            m.inference_latency().Record(r.latency_seconds);
            m.AddInference(static_cast<uint64_t>(run[i].input.dim(0)));
          });
          wb_shard_->add_inference_request();
          TraceRing::Global().Record(TraceKind::kComplete, run[i].span,
                                     state->trace_name, group_span);
          run[i].promise->set_value(std::move(r));
        }
        TraceRing::Global().Record(TraceKind::kExecEnd, group_span,
                                   state->trace_name);
        ReleaseTask(state, /*is_inference=*/true,
                    static_cast<int>(run.size()));
      },
      TaskPriority::kHigh);
}

Result<std::future<BatchStats>> FleetServer::TrySubmitCalibration(
    const std::string& device_id, Dataset batch, Dataset test_slice) {
  SessionState* state = FindSession(device_id);
  const uint64_t span = TraceRing::NextSpan();
  TraceRing::Global().Record(TraceKind::kSubmitCalibration, span,
                             state->trace_name);
  QCORE_RETURN_NOT_OK(AdmitTask(state, device_id, /*is_inference=*/false,
                                span));
  // Ordering barrier: calibration mutates the model, so every inference
  // submitted before it must run first — flush the device's pending group
  // ahead of enqueueing. This is what keeps batched results bit-identical
  // to the unbatched path for any interleaving.
  BarrierFlush(device_id, state, span);
  auto promise = std::make_shared<std::promise<BatchStats>>();
  std::future<BatchStats> result = promise->get_future();
  Stopwatch timer;  // includes queue wait, like the inference clock
  EnqueueOnSession(
      state,
      [this, device_id, state, promise, timer, span,
       batch = std::move(batch), test_slice = std::move(test_slice)]() {
        ScopedTraceSpan scope(span);
        TraceRing::Global().Record(TraceKind::kExecStart, span,
                                   state->trace_name);
        SimulateDeviceLink(options_.simulated_device_rtt_ms);
        BatchStats stats = state->session.Calibrate(batch, test_slice);
        const double latency = timer.ElapsedSeconds();
        RecordMetrics([&stats, &batch, latency](ServingMetrics& m) {
          m.calibration_latency().Record(latency);
          m.AddCalibration(static_cast<uint64_t>(batch.size()));
          m.AddAccuracySample(stats.accuracy);
        });
        state->wb->add_batches_processed(1);
        wb_shard_->add_calibration_batch();
        if (options_.snapshot_every > 0 &&
            state->session.batches_processed() %
                    static_cast<uint64_t>(options_.snapshot_every) ==
                0) {
          TraceRing::Global().Record(TraceKind::kSnapshotPublish, span,
                                     state->trace_name);
          const uint64_t version =
              registry_->Publish(*state->session.model(), device_id,
                                 state->session.batches_processed());
          RecordMetrics([](ServingMetrics& m) { m.AddSnapshot(); });
          state->wb->set_snapshot_version(version);
          wb_shard_->add_snapshot_published();
        }
        TraceRing::Global().Record(TraceKind::kExecEnd, span,
                                   state->trace_name);
        TraceRing::Global().Record(TraceKind::kComplete, span,
                                   state->trace_name);
        promise->set_value(stats);
        ReleaseTask(state, /*is_inference=*/false, 1);
      },
      TaskPriority::kLow);
  return result;
}

std::future<uint64_t> FleetServer::PublishSnapshot(
    const std::string& device_id) {
  auto promise = std::make_shared<std::promise<uint64_t>>();
  std::future<uint64_t> result = promise->get_future();
  SessionState* state = FindSession(device_id);
  const uint64_t span = TraceRing::NextSpan();
  // Same barrier as calibration: the snapshot must capture the model in
  // the session's submission order.
  BarrierFlush(device_id, state, span);
  EnqueueOnSession(
      state,
      [this, device_id, state, promise, span]() {
        // The scope hands the span to the WAL append inside Publish, so the
        // snapshotPublish → walAppend chain reconstructs from the ring.
        ScopedTraceSpan scope(span);
        TraceRing::Global().Record(TraceKind::kSnapshotPublish, span,
                                   state->trace_name);
        const uint64_t version =
            registry_->Publish(*state->session.model(), device_id,
                               state->session.batches_processed());
        RecordMetrics([](ServingMetrics& m) { m.AddSnapshot(); });
        state->wb->set_snapshot_version(version);
        wb_shard_->add_snapshot_published();
        TraceRing::Global().Record(TraceKind::kComplete, span,
                                   state->trace_name, version);
        promise->set_value(version);
      },
      TaskPriority::kHigh);
  return result;
}

SessionHandoff FleetServer::DetachSession(const std::string& device_id) {
  SessionHandoff handoff;
  handoff.device_id = device_id;
  handoff.trace_span = TraceRing::NextSpan();
  {
    SessionState* pre = FindSession(device_id);
    TraceRing::Global().Record(TraceKind::kDetach, handoff.trace_span,
                               pre->trace_name, shard_index_);
    pre->wb->set_migrating(true);
  }
  // Barrier snapshot: flushes the device's pending batched group (the PR 2
  // follow-up — a group left pending would otherwise resolve against a
  // session that moved shards) and, by session FIFO order, captures the
  // model only after every previously submitted task has run.
  handoff.barrier_version = PublishSnapshot(device_id).get();
  SessionState* state = FindSession(device_id);
  // The publish future resolves inside the task; wait for the pump to
  // fully release the session before serializing and freeing it.
  QuiesceSession(device_id, state);
  BinaryWriter w;
  state->session.SerializeContinuation(&w);
  handoff.continuation = w.TakeBuffer();
  state->mu.Unlock();
  MutexLock lock(sessions_mu_);
  sessions_.erase(device_id);
  wb_shard_->set_sessions(sessions_.size());
  return handoff;
}

void FleetServer::AttachSession(const SessionHandoff& handoff) {
  std::shared_ptr<const ModelSnapshot> snap =
      registry_->Get(handoff.barrier_version);
  QCORE_CHECK_MSG(snap != nullptr,
                  "AttachSession: barrier snapshot not in this server's "
                  "registry (shards must share one)");
  BinaryReader r(handoff.continuation);
  auto state = std::make_unique<SessionState>(
      handoff.device_id, base_model_, base_bf_, options_.continual, *snap,
      &r);
  // The row already exists on a shared (router) whiteboard — UpsertDevice
  // rehomes it to this shard and clears the migrating flag, keeping the
  // device's counters and warm-start origin across the move.
  state->wb = whiteboard_->UpsertDevice(handoff.device_id, shard_index_,
                                        WarmStartOrigin::kCold);
  state->wb->set_snapshot_version(handoff.barrier_version);
  state->trace_name = TraceRing::Global().Intern(handoff.device_id);
  // A migrated session gets a fresh admission node under THIS shard; the
  // node it held on the source shard stays allocated at zero (nodes are
  // never removed — see overload.h).
  state->admission = limiter_->AddSession(
      shard_node_,
      AdmissionCaps{options_.max_queue_per_session,
                    options_.max_inference_queue_per_session,
                    options_.max_calibration_queue_per_session});
  TraceRing::Global().Record(TraceKind::kAttach, handoff.trace_span,
                             state->trace_name, shard_index_);
  MutexLock lock(sessions_mu_);
  const bool inserted =
      sessions_.emplace(handoff.device_id, std::move(state)).second;
  QCORE_CHECK_MSG(inserted,
                  ("AttachSession: device already present: " +
                   handoff.device_id)
                      .c_str());
  wb_shard_->set_sessions(sessions_.size());
}

void FleetServer::EnqueueOnSession(SessionState* state,
                                   std::function<void()> task,
                                   TaskPriority priority) {
  {
    MutexLock lock(drain_mu_);
    ++in_flight_;
  }
  bool start_pump = false;
  {
    MutexLock lock(state->mu);
    state->queue.push_back(std::move(task));
    if (!state->pumping) {
      state->pumping = true;
      start_pump = true;
    }
  }
  if (start_pump) {
    // Priority classifies the pump, not individual tasks: once a worker
    // owns the session it drains the FIFO regardless of what joins it
    // (priority must never reorder work WITHIN a session — that would
    // break determinism). Best effort across sessions is exactly what
    // overload control needs.
    pool_.Schedule([this, state]() { PumpSession(state); }, priority);
  }
}

void FleetServer::PumpSession(SessionState* state) {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(state->mu);
      if (state->queue.empty()) {
        state->pumping = false;
        // Wake quiesce waiters (WithSessionQuiesced, DetachSession) only
        // once the session is fully released; after the unlock below the
        // pump never touches `state` again.
        state->idle_cv.NotifyAll();
        return;
      }
      task = std::move(state->queue.front());
      state->queue.pop_front();
    }
    task();
    TaskFinished();
  }
}

void FleetServer::TaskFinished() {
  MutexLock lock(drain_mu_);
  if (--in_flight_ == 0) drain_cv_.NotifyAll();
}

void FleetServer::Drain() {
  // Hand every pending batched request to the pool first; when FlushAll
  // returns, each previously submitted request is represented in
  // in_flight_ (the batcher only decrements its pending count after the
  // sink has enqueued, so there is no window where both counts are zero
  // with work in limbo).
  if (batcher_) batcher_->FlushAll();
  // Wait on the server's own in-flight count, not the pool: a task counts
  // from submission, so Drain cannot slip through the window where a task
  // is queued on a session but its pump has not reached the pool yet.
  MutexLock lock(drain_mu_);
  drain_cv_.Wait(drain_mu_, [this]() {
    drain_mu_.AssertHeld();
    return in_flight_ == 0;
  });
}

}  // namespace qcore
