#include "serving/snapshot_store.h"

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/serialize.h"
#include "obs/trace.h"
#include "testing/fault_injector.h"

namespace qcore {

namespace {

// Log file header: magic + format version, mirroring BinaryWriter::ToFile's
// framing but with its own magic so a snapshot WAL is never mistaken for a
// model file (or vice versa).
constexpr uint32_t kWalMagic = 0x4C415751;  // "QWAL"
constexpr uint32_t kWalVersion = 1;
constexpr size_t kWalHeaderBytes = 2 * sizeof(uint32_t);

Status WriteWalHeader(std::FILE* f) {
  if (std::fwrite(&kWalMagic, sizeof(kWalMagic), 1, f) != 1 ||
      std::fwrite(&kWalVersion, sizeof(kWalVersion), 1, f) != 1) {
    return Status::IoError("snapshot log: header write failed");
  }
  return Status::OK();
}

Status FlushFile(std::FILE* f, bool sync) {
  if (std::fflush(f) != 0) {
    return Status::IoError("snapshot log: flush failed");
  }
  if (sync && fsync(fileno(f)) != 0) {
    return Status::IoError("snapshot log: fsync failed");
  }
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> EncodeSnapshotRecord(const ModelSnapshot& snap) {
  BinaryWriter w;
  w.WriteU64(snap.version);
  w.WriteString(snap.device_id);
  w.WriteU64(snap.batches_seen);
  w.WriteBytes(snap.bytes);
  return w.TakeBuffer();
}

Result<ModelSnapshot> DecodeSnapshotRecord(
    const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  ModelSnapshot snap;
  auto version = r.ReadU64();
  if (!version.ok()) return version.status();
  snap.version = version.value();
  auto device = r.ReadString();
  if (!device.ok()) return device.status();
  snap.device_id = std::move(device).value();
  auto batches = r.ReadU64();
  if (!batches.ok()) return batches.status();
  snap.batches_seen = batches.value();
  auto bytes = r.ReadBytes();
  if (!bytes.ok()) return bytes.status();
  snap.bytes = std::move(bytes).value();
  if (!r.AtEnd()) {
    return Status::Corruption("snapshot record: trailing bytes");
  }
  if (snap.version == 0) {
    return Status::Corruption("snapshot record: version 0");
  }
  return snap;
}

// ------------------------------------------------------- MemorySnapshotStore

Status MemorySnapshotStore::Put(std::shared_ptr<const ModelSnapshot> snap) {
  QCORE_CHECK_MSG(by_version_.count(snap->version) == 0,
                  "SnapshotStore::Put: duplicate version");
  auto& latest = by_device_[snap->device_id];
  // Keyed by version, not call order: an imported delta can land an older
  // version after a newer one is already the device's latest.
  if (latest == nullptr || snap->version >= latest->version) {
    latest = snap;
  }
  by_version_[snap->version] = std::move(snap);
  return Status::OK();
}

std::shared_ptr<const ModelSnapshot> MemorySnapshotStore::Latest() const {
  if (by_version_.empty()) return nullptr;
  return by_version_.rbegin()->second;
}

std::shared_ptr<const ModelSnapshot> MemorySnapshotStore::LatestFor(
    const std::string& device_id) const {
  auto it = by_device_.find(device_id);
  return it == by_device_.end() ? nullptr : it->second;
}

std::shared_ptr<const ModelSnapshot> MemorySnapshotStore::Get(
    uint64_t version) const {
  auto it = by_version_.find(version);
  return it == by_version_.end() ? nullptr : it->second;
}

bool MemorySnapshotStore::Has(uint64_t version) const {
  return by_version_.count(version) > 0;
}

size_t MemorySnapshotStore::size() const { return by_version_.size(); }

uint64_t MemorySnapshotStore::MaxVersion() const {
  return by_version_.empty() ? 0 : by_version_.rbegin()->first;
}

void MemorySnapshotStore::ForEach(
    const std::function<void(const std::shared_ptr<const ModelSnapshot>&)>&
        fn) const {
  for (const auto& [version, snap] : by_version_) fn(snap);
}

void MemorySnapshotStore::ForEachDeviceLatest(
    const std::function<void(const std::shared_ptr<const ModelSnapshot>&)>&
        fn) const {
  for (const auto& [device, snap] : by_device_) fn(snap);
}

Result<size_t> MemorySnapshotStore::TrimBelow(uint64_t min_version) {
  size_t dropped = 0;
  for (auto it = by_version_.begin();
       it != by_version_.end() && it->first < min_version;) {
    auto dev = by_device_.find(it->second->device_id);
    const bool is_device_latest =
        dev != by_device_.end() && dev->second->version == it->first;
    if (is_device_latest) {
      ++it;
    } else {
      it = by_version_.erase(it);
      ++dropped;
    }
  }
  return dropped;
}

// ------------------------------------------------------ DurableSnapshotStore

Result<std::unique_ptr<DurableSnapshotStore>> DurableSnapshotStore::Open(
    DurableSnapshotStoreOptions options) {
  QCORE_CHECK_MSG(!options.path.empty(), "DurableSnapshotStore: empty path");
  auto store = std::unique_ptr<DurableSnapshotStore>(
      new DurableSnapshotStore(std::move(options)));
  const std::string& path = store->options_.path;

  // Replay the existing log, if any. Read the whole file: snapshot logs are
  // a handful of model blobs, not gigabytes, and a single buffer keeps the
  // torn-tail scan trivial.
  std::vector<uint8_t> content;
  bool exists = false;
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    exists = true;
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    content.resize(static_cast<size_t>(size));
    if (!content.empty() &&
        std::fread(content.data(), 1, content.size(), f) != content.size()) {
      std::fclose(f);
      return Status::IoError("snapshot log: read failed: " + path);
    }
    std::fclose(f);
  }

  size_t good = 0;  // file offset after the last valid record
  if (exists && !content.empty()) {
    if (content.size() < kWalHeaderBytes) {
      return Status::Corruption("snapshot log: short header: " + path);
    }
    uint32_t magic = 0, version = 0;
    std::memcpy(&magic, content.data(), sizeof(magic));
    std::memcpy(&version, content.data() + sizeof(magic), sizeof(version));
    if (magic != kWalMagic) {
      return Status::Corruption("snapshot log: bad magic: " + path);
    }
    if (version != kWalVersion) {
      return Status::Corruption("snapshot log: unsupported version: " + path);
    }
    size_t pos = kWalHeaderBytes;
    good = pos;
    while (pos < content.size()) {
      auto frame = ReadFramedRecord(content, &pos);
      if (!frame.ok()) {
        // An incomplete or checksum-failing frame is the torn tail of a
        // writer that died mid-append; everything before it replayed
        // cleanly, so cut the log there and carry on — and count the
        // recovery, so chaos runs can assert it happened instead of
        // trusting the silence.
        store->truncated_tail_bytes_ = content.size() - pos;
        ++store->wal_.torn_tails_recovered;
        break;
      }
      auto snap = DecodeSnapshotRecord(frame.value());
      if (!snap.ok()) {
        // The frame checksum held but the body does not parse — that is a
        // writer bug or foreign data, not a crash artifact.
        return snap.status();
      }
      if (store->Has(snap.value().version)) {
        return Status::Corruption("snapshot log: duplicate version in " +
                                  path);
      }
      auto frozen = std::make_shared<const ModelSnapshot>(
          std::move(snap).value());
      (void)store->MemorySnapshotStore::Put(std::move(frozen));
      good = pos;
    }
    if (store->truncated_tail_bytes_ > 0 &&
        truncate(path.c_str(), static_cast<off_t>(good)) != 0) {
      return Status::IoError("snapshot log: truncate failed: " + path);
    }
  }

  if (!exists || content.empty()) {
    // Fresh log: write the header eagerly so an empty-but-opened store
    // leaves a well-formed file behind.
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      return Status::IoError("snapshot log: cannot create: " + path);
    }
    const Status header = WriteWalHeader(f);
    const bool closed = std::fclose(f) == 0;  // always close, even on error
    if (!header.ok() || !closed) {
      return Status::IoError("snapshot log: header write failed: " + path);
    }
  }

  store->file_ = std::fopen(path.c_str(), "ab");
  if (store->file_ == nullptr) {
    return Status::IoError("snapshot log: cannot open for append: " + path);
  }
  return store;
}

DurableSnapshotStore::~DurableSnapshotStore() {
  if (file_ != nullptr) std::fclose(file_);
}

Status DurableSnapshotStore::AppendRecord(const ModelSnapshot& snap) {
  if (file_ == nullptr) {
    // A failed compaction rename/reopen can orphan the append handle; fail
    // cleanly instead of fwrite-ing into a null FILE.
    return Status::IoError("snapshot log: no append handle: " +
                           options_.path);
  }
  std::vector<uint8_t> frame;
  AppendFramedRecord(EncodeSnapshotRecord(snap), &frame);
  uint64_t delay_us = 0;
  if (MaybeFault(FaultPoint::kWalAppendDelay, &delay_us)) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
  if (MaybeFault(FaultPoint::kWalFsyncFail)) {
    // Modeled as failing BEFORE any byte lands, so the outcome is
    // deterministic: nothing durable, nothing visible (log-then-apply).
    return Status::IoError("snapshot log: fsync failed (injected): " +
                           options_.path);
  }
  if (MaybeFault(FaultPoint::kWalAppendBitRot)) {
    // Silent media rot: flip one payload bit (past the size+crc frame
    // header, so the CRC catches it at replay). The append still
    // "succeeds" — this process keeps serving from memory; the damage
    // surfaces only at the next Open.
    frame.back() ^= 0x01;
  }
  const bool torn = MaybeFault(FaultPoint::kWalTornAppend);
  const size_t write_len = torn ? frame.size() / 2 : frame.size();
  if (std::fwrite(frame.data(), 1, write_len, file_) != write_len) {
    return Status::IoError("snapshot log: append failed: " + options_.path);
  }
  if (torn) {
    // Half the frame is on disk and the writer "died": fail the Put so the
    // in-memory maps never claim what the log does not hold. The next Open
    // truncates this tail and counts the recovery.
    (void)FlushFile(file_, /*sync=*/false);
    return Status::IoError("snapshot log: torn append (injected): " +
                           options_.path);
  }
  QCORE_RETURN_NOT_OK(FlushFile(file_, options_.fsync_on_publish));
  ++wal_.appends;
  wal_.appended_bytes += frame.size();
  if (options_.fsync_on_publish) ++wal_.fsyncs;
  // The publish that drove this append set the thread's trace span
  // (ScopedTraceSpan in the session task), linking the snapshotPublish
  // event to its durable landing without plumbing the span down here.
  TraceRing::Global().Record(TraceKind::kWalAppend, TraceRing::CurrentSpan(),
                             TraceRing::Global().Intern(snap.device_id),
                             frame.size());
  return Status::OK();
}

Status DurableSnapshotStore::Put(std::shared_ptr<const ModelSnapshot> snap) {
  // Log before apply: if the append fails the maps are untouched, so the
  // in-memory view never claims durability the file does not have.
  QCORE_RETURN_NOT_OK(AppendRecord(*snap));
  return MemorySnapshotStore::Put(std::move(snap));
}

Result<size_t> DurableSnapshotStore::TrimBelow(uint64_t min_version) {
  auto dropped = MemorySnapshotStore::TrimBelow(min_version);
  if (!dropped.ok() || dropped.value() == 0) return dropped;
  QCORE_RETURN_NOT_OK(RewriteSegment());
  return dropped;
}

Status DurableSnapshotStore::RewriteSegment() {
  // Compaction: write the surviving snapshots into a fresh segment, fsync
  // it, and atomically rename it over the log — a crash at any point leaves
  // either the old complete log or the new complete one.
  const std::string tmp = options_.path + ".compact";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("snapshot log: cannot create segment: " + tmp);
  }
  Status status = WriteWalHeader(f);
  if (status.ok()) {
    for (const auto& [version, snap] : by_version_) {
      if (MaybeFault(FaultPoint::kWalCompactionCrash)) {
        // Writer death mid-segment: the partial .compact tmp stays on disk
        // (unlike the normal error path below, which cleans it up) — the
        // old log is untouched and still the append target, so recovery is
        // "reopen the same path"; the next compaction's fopen("wb")
        // truncates the leftover tmp.
        std::fclose(f);
        return Status::IoError(
            "snapshot log: compaction crashed (injected): " + tmp);
      }
      std::vector<uint8_t> frame;
      AppendFramedRecord(EncodeSnapshotRecord(*snap), &frame);
      if (std::fwrite(frame.data(), 1, frame.size(), f) != frame.size()) {
        status = Status::IoError("snapshot log: segment write failed: " + tmp);
        break;
      }
    }
  }
  if (status.ok()) status = FlushFile(f, /*sync=*/true);
  if (std::fclose(f) != 0 && status.ok()) {
    status = Status::IoError("snapshot log: segment close failed: " + tmp);
  }
  if (!status.ok()) {
    std::remove(tmp.c_str());
    return status;
  }
  std::fclose(file_);
  file_ = nullptr;
  if (std::rename(tmp.c_str(), options_.path.c_str()) != 0) {
    std::remove(tmp.c_str());
    // Best effort: get an append handle back on the (still complete) old
    // log so later Puts degrade to IoError-or-success, not a null handle.
    file_ = std::fopen(options_.path.c_str(), "ab");
    return Status::IoError("snapshot log: segment rename failed: " +
                           options_.path);
  }
  file_ = std::fopen(options_.path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IoError("snapshot log: reopen after compaction failed: " +
                           options_.path);
  }
  ++wal_.compactions;
  ++wal_.fsyncs;  // the segment's FlushFile(sync=true) above
  return Status::OK();
}

}  // namespace qcore
