// Serving-side observability: thread-safe counters and latency histograms
// aggregated across all sessions of a FleetServer. Modeled on the usual
// production pattern (Prometheus-style fixed-bucket histograms) but
// dependency-free. All methods are safe to call concurrently from pool
// workers.
#ifndef QCORE_SERVING_METRICS_H_
#define QCORE_SERVING_METRICS_H_

#include <atomic>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace qcore {

// Fixed-bucket latency histogram (seconds). Buckets are exponential with
// sqrt(2) spacing from 10us; 48 buckets cover up to ~80s before overflow.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(double seconds);

  uint64_t count() const;
  double sum_seconds() const;
  double mean_seconds() const;
  // Linear-interpolated quantile from bucket boundaries, q in [0, 1].
  double QuantileSeconds(double q) const;

  // "count=12 mean=3.4ms p50=2.1ms p95=9.0ms p99=12.3ms"
  std::string Summary() const;

  static constexpr int kNumBuckets = 48;

  // Upper bound of bucket b (seconds); last bucket is +inf.
  static double UpperBound(int b);

 private:
  int BucketFor(double seconds) const;

  mutable std::mutex mu_;
  uint64_t buckets_[kNumBuckets];
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

// Aggregate counters for one FleetServer. Plain atomics; accuracy is kept
// as a (sum, count) pair so the mean is exact regardless of interleaving.
class ServingMetrics {
 public:
  LatencyHistogram& inference_latency() { return inference_latency_; }
  LatencyHistogram& calibration_latency() { return calibration_latency_; }
  const LatencyHistogram& inference_latency() const {
    return inference_latency_;
  }
  const LatencyHistogram& calibration_latency() const {
    return calibration_latency_;
  }

  void AddInference(uint64_t examples) {
    inference_requests_.fetch_add(1, std::memory_order_relaxed);
    inference_examples_.fetch_add(examples, std::memory_order_relaxed);
  }
  void AddCalibration(uint64_t examples) {
    calibration_batches_.fetch_add(1, std::memory_order_relaxed);
    calibration_examples_.fetch_add(examples, std::memory_order_relaxed);
  }
  void AddAccuracySample(float accuracy) {
    // Fixed-point micro-units so a plain atomic works without a CAS loop;
    // rounded, not truncated, so the stored sum is exact to the half-unit.
    accuracy_micro_sum_.fetch_add(
        static_cast<uint64_t>(std::llround(accuracy * 1e6f)),
        std::memory_order_relaxed);
    accuracy_samples_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddSnapshot() { snapshots_.fetch_add(1, std::memory_order_relaxed); }

  uint64_t inference_requests() const { return inference_requests_.load(); }
  uint64_t inference_examples() const { return inference_examples_.load(); }
  uint64_t calibration_batches() const { return calibration_batches_.load(); }
  uint64_t calibration_examples() const {
    return calibration_examples_.load();
  }
  uint64_t snapshots() const { return snapshots_.load(); }

  // Mean of all recorded per-batch accuracies; 0 if none.
  float mean_accuracy() const;

  // Multi-line human-readable report.
  std::string Report() const;

 private:
  LatencyHistogram inference_latency_;
  LatencyHistogram calibration_latency_;
  std::atomic<uint64_t> inference_requests_{0};
  std::atomic<uint64_t> inference_examples_{0};
  std::atomic<uint64_t> calibration_batches_{0};
  std::atomic<uint64_t> calibration_examples_{0};
  std::atomic<uint64_t> accuracy_micro_sum_{0};
  std::atomic<uint64_t> accuracy_samples_{0};
  std::atomic<uint64_t> snapshots_{0};
};

}  // namespace qcore

#endif  // QCORE_SERVING_METRICS_H_
