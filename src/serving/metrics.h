// Serving-side observability: thread-safe counters and latency histograms
// aggregated across all sessions of a FleetServer. Modeled on the usual
// production pattern (Prometheus-style fixed-bucket histograms) but
// dependency-free. All methods are safe to call concurrently from pool
// workers.
#ifndef QCORE_SERVING_METRICS_H_
#define QCORE_SERVING_METRICS_H_

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace qcore {

// Fixed-bucket latency histogram (seconds). Buckets are exponential with
// sqrt(2) spacing from 10us; 48 buckets cover up to ~80s before overflow.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(double seconds);

  uint64_t count() const;
  double sum_seconds() const;
  double mean_seconds() const;
  // Linear-interpolated quantile from bucket boundaries, q in [0, 1].
  double QuantileSeconds(double q) const;

  // "count=12 mean=3.4ms p50=2.1ms p95=9.0ms p99=12.3ms"
  std::string Summary() const;

  // Bucket-wise accumulation of another histogram (same fixed bounds), used
  // by the sharded server's fleet rollup. Snapshot-consistent: `other` is
  // copied under its own lock, then added under this one.
  void MergeFrom(const LatencyHistogram& other);
  // Zeroes the histogram (rollup rebuild).
  void Reset();

  static constexpr int kNumBuckets = 48;

  // Upper bound of bucket b (seconds); last bucket is +inf.
  static double UpperBound(int b);

 private:
  int BucketFor(double seconds) const;

  mutable Mutex mu_;
  uint64_t buckets_[kNumBuckets] QCORE_GUARDED_BY(mu_);
  uint64_t count_ QCORE_GUARDED_BY(mu_) = 0;
  double sum_ QCORE_GUARDED_BY(mu_) = 0.0;
};

// Small-integer histogram with exact unit buckets for 0..kMaxTracked-1 and
// one overflow bucket. Used for batch occupancy (requests per flushed
// batch) and per-session queue depth — distributions whose interesting
// range is a few dozen at most, where exact counts beat bucket
// interpolation. Thread-safe like LatencyHistogram.
class CountHistogram {
 public:
  static constexpr int kMaxTracked = 64;

  void Record(int64_t value);

  uint64_t count() const;
  double mean() const;
  int64_t max() const;
  // Observations with exactly this value (values >= kMaxTracked pool in
  // the overflow bucket, addressed as CountAt(kMaxTracked)).
  uint64_t CountAt(int64_t value) const;
  // Observations with value >= `value`.
  uint64_t CountAtLeast(int64_t value) const;

  // "count=12 mean=3.4 max=8".
  std::string Summary() const;

  // Same merge/reset contract as LatencyHistogram.
  void MergeFrom(const CountHistogram& other);
  void Reset();

 private:
  mutable Mutex mu_;
  uint64_t buckets_[kMaxTracked + 1] QCORE_GUARDED_BY(mu_) = {};
  uint64_t count_ QCORE_GUARDED_BY(mu_) = 0;
  int64_t sum_ QCORE_GUARDED_BY(mu_) = 0;
  int64_t max_ QCORE_GUARDED_BY(mu_) = 0;
};

// Aggregate counters for one FleetServer. Plain atomics; accuracy is kept
// as a (sum, count) pair so the mean is exact regardless of interleaving.
class ServingMetrics {
 public:
  LatencyHistogram& inference_latency() { return inference_latency_; }
  LatencyHistogram& calibration_latency() { return calibration_latency_; }
  const LatencyHistogram& inference_latency() const {
    return inference_latency_;
  }
  const LatencyHistogram& calibration_latency() const {
    return calibration_latency_;
  }
  // Requests coalesced per batched forward pass (1 = degenerate batch).
  CountHistogram& batch_occupancy() { return batch_occupancy_; }
  const CountHistogram& batch_occupancy() const { return batch_occupancy_; }
  // Per-session queue depth sampled after each accepted enqueue.
  CountHistogram& queue_depth() { return queue_depth_; }
  const CountHistogram& queue_depth() const { return queue_depth_; }

  void AddInference(uint64_t examples) {
    inference_requests_.fetch_add(1, std::memory_order_relaxed);
    inference_examples_.fetch_add(examples, std::memory_order_relaxed);
  }
  void AddCalibration(uint64_t examples) {
    calibration_batches_.fetch_add(1, std::memory_order_relaxed);
    calibration_examples_.fetch_add(examples, std::memory_order_relaxed);
  }
  void AddAccuracySample(float accuracy) {
    // Fixed-point micro-units so a plain atomic works without a CAS loop;
    // rounded, not truncated, so the stored sum is exact to the half-unit.
    accuracy_micro_sum_.fetch_add(
        static_cast<uint64_t>(std::llround(accuracy * 1e6f)),
        std::memory_order_relaxed);
    accuracy_samples_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddSnapshot() { snapshots_.fetch_add(1, std::memory_order_relaxed); }

  // Load-shedding accounting: a submission is either accepted (and later
  // shows up in inference_requests()/calibration_batches() when it runs)
  // or shed with a Status fast-fail. accepted + shed == submitted is the
  // invariant the backpressure tests reconcile.
  void AddAcceptedInference() {
    accepted_inference_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddAcceptedCalibration() {
    accepted_calibration_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddShedInference() {
    shed_inference_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddShedCalibration() {
    shed_calibration_.fetch_add(1, std::memory_order_relaxed);
  }
  // Shed-reason breakdown. The per-class counters above split admission
  // sheds by class; these split every shed by WHY. Invariants the overload
  // tests reconcile exactly:
  //   shed_inference + shed_calibration == shed_queue_full + shed_limiter
  //   accepted_inference == inference_requests + shed_deadline
  // (deadline sheds happen AFTER admission, so they are disjoint from the
  // admission sheds and never appear in the per-class counters).
  void AddShedQueueFull() {
    shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddShedDeadline() {
    shed_deadline_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddShedLimiter() {
    shed_limiter_.fetch_add(1, std::memory_order_relaxed);
  }
  // A model-mutating submission (calibration, snapshot, quiesce) forced a
  // pending batched inference group out before it hit its size or deadline
  // trigger. High rates mean the workload's mutation cadence is defeating
  // batching — occupancy will sit near 1 no matter what max_batch is.
  void AddBarrierFlush() {
    barrier_flushes_.fetch_add(1, std::memory_order_relaxed);
  }
  // Kernel-layer panel parallelism attributed to this server's forwards.
  // The exec path samples the thread-local kernels::GemmDispatchCounters
  // before and after each forward pass and records the delta here: wide =
  // GEMMs that fanned out across panel workers, narrow = GEMMs that stayed
  // single-threaded (below the crossover), tasks = output chunks the wide
  // ones submitted. How the serving layer sees batched forwards go wide.
  void AddPanelDispatch(uint64_t wide, uint64_t narrow, uint64_t tasks) {
    panel_wide_dispatches_.fetch_add(wide, std::memory_order_relaxed);
    panel_narrow_dispatches_.fetch_add(narrow, std::memory_order_relaxed);
    panel_tasks_.fetch_add(tasks, std::memory_order_relaxed);
  }

  uint64_t inference_requests() const { return inference_requests_.load(); }
  uint64_t inference_examples() const { return inference_examples_.load(); }
  uint64_t calibration_batches() const { return calibration_batches_.load(); }
  uint64_t calibration_examples() const {
    return calibration_examples_.load();
  }
  uint64_t snapshots() const { return snapshots_.load(); }
  uint64_t accepted_inference() const { return accepted_inference_.load(); }
  uint64_t accepted_calibration() const {
    return accepted_calibration_.load();
  }
  uint64_t shed_inference() const { return shed_inference_.load(); }
  uint64_t shed_calibration() const { return shed_calibration_.load(); }
  uint64_t shed_queue_full() const { return shed_queue_full_.load(); }
  uint64_t shed_deadline() const { return shed_deadline_.load(); }
  uint64_t shed_limiter() const { return shed_limiter_.load(); }
  uint64_t barrier_flushes() const { return barrier_flushes_.load(); }
  uint64_t panel_wide_dispatches() const {
    return panel_wide_dispatches_.load();
  }
  uint64_t panel_narrow_dispatches() const {
    return panel_narrow_dispatches_.load();
  }
  uint64_t panel_tasks() const { return panel_tasks_.load(); }

  // Mean of all recorded per-batch accuracies; 0 if none.
  float mean_accuracy() const;

  // Accumulates another instance's counters and histograms into this one.
  // The source keeps recording concurrently; each counter is read once, so
  // the merged totals are a consistent-enough snapshot for reporting. This
  // is how ShardedFleetServer builds its fleet rollup from per-shard
  // metrics.
  void MergeFrom(const ServingMetrics& other);
  // Zeroes every counter and histogram (rollup rebuild between merges).
  void Reset();

  // Multi-line human-readable report.
  std::string Report() const;

 private:
  LatencyHistogram inference_latency_;
  LatencyHistogram calibration_latency_;
  CountHistogram batch_occupancy_;
  CountHistogram queue_depth_;
  std::atomic<uint64_t> inference_requests_{0};
  std::atomic<uint64_t> inference_examples_{0};
  std::atomic<uint64_t> calibration_batches_{0};
  std::atomic<uint64_t> calibration_examples_{0};
  std::atomic<uint64_t> accuracy_micro_sum_{0};
  std::atomic<uint64_t> accuracy_samples_{0};
  std::atomic<uint64_t> snapshots_{0};
  std::atomic<uint64_t> accepted_inference_{0};
  std::atomic<uint64_t> accepted_calibration_{0};
  std::atomic<uint64_t> shed_inference_{0};
  std::atomic<uint64_t> shed_calibration_{0};
  std::atomic<uint64_t> shed_queue_full_{0};
  std::atomic<uint64_t> shed_deadline_{0};
  std::atomic<uint64_t> shed_limiter_{0};
  std::atomic<uint64_t> barrier_flushes_{0};
  std::atomic<uint64_t> panel_wide_dispatches_{0};
  std::atomic<uint64_t> panel_narrow_dispatches_{0};
  std::atomic<uint64_t> panel_tasks_{0};
};

}  // namespace qcore

#endif  // QCORE_SERVING_METRICS_H_
