// Blocked/vectorized kernel substrate.
//
// Every GEMM-shaped workload in the tree (MatMul and both transposed
// variants, Dense forward/backward, im2col-lowered conv forward/backward)
// funnels into one cache-blocked, register-tiled packed kernel: Gemm().
//
// Tiling scheme (Goto-style, sized to this repo's L1/L2 targets):
//   - B is packed into kNR-wide column panels, A into kMR-tall row panels;
//     panels are zero-padded to full width so the microkernel is branch-free.
//   - Loop nest: jc (kNC columns, keeps the packed B block under L2) ->
//     pc (kKC of the reduction dim; one A panel + one B panel fit L1) ->
//     ic (kMC rows of packed A, L2-resident) -> NR/MR register tiles.
//   - The kMR x kNR microkernel keeps the full accumulator tile in vector
//     registers and is written with GCC vector extensions so one source
//     compiles to SSE2 / AVX2+FMA / AVX-512 clones (runtime-dispatched;
//     disabled under ThreadSanitizer where ifunc resolution is unsupported).
//
// Accumulation policy (the one policy for the whole kernel layer):
//   - GEMM accumulates in float, strictly ascending-k order per output
//     element. The microkernel loads C, FMAs the k-panel in order, and
//     stores back, so the per-element operation sequence is identical for
//     every tile shape, edge tile, and matrix width. This is what makes the
//     serving-layer bit-identity properties (batched == unbatched,
//     thread-count-independent) hold on a given host.
//   - Multithreading never touches that sequence. The parallel GEMM splits
//     C into kMR/kNR-aligned row/column chunks — output-disjoint, with the
//     same tile decomposition the sequential kernel would produce — and
//     keeps the pc (reduction) loop sequential inside each chunk, so every
//     element still sees the identical ascending-k FMA chain no matter
//     which worker ran its chunk. Bit-identical for any thread count, by
//     construction (see "Deterministic multithreaded dispatch" below).
//   - No data-dependent control flow: kernel latency is a function of shape
//     only, never of the values flowing through (the seed kernels' sparsity
//     branches made timing input-dependent and are gone).
//   - Standalone reductions that are not GEMMs (Dot/Norm, bias-gradient row
//     sums, softmax denominators) accumulate in double, as before; they are
//     vector-length sums where float accumulation genuinely loses digits.
//   - Across hosts, clones may differ in mul+add vs fused-FMA rounding, so
//     numeric tests compare blocked vs the retained naive references with a
//     tolerance; within one host results are bit-stable run to run.
//
// The seed's naive kernels stay in tree under qcore::naive as the oracle
// for property tests and as the baseline side of the perf CI gate.
#ifndef QCORE_TENSOR_KERNELS_H_
#define QCORE_TENSOR_KERNELS_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace qcore {
namespace kernels {

// Register tile (microkernel) shape and cache block sizes. kMR*kNR floats of
// accumulator fit the 16 ymm registers of AVX2 with room for two B vectors
// and an A broadcast; (kMR + kNR) * kKC * 4 bytes of packed panels fit a
// 48 KiB L1; kNC * kKC * 4 bytes of packed B stays under a 2 MiB L2.
inline constexpr int kMR = 6;
inline constexpr int kNR = 16;
inline constexpr int64_t kMC = 96;
inline constexpr int64_t kKC = 240;
inline constexpr int64_t kNC = 1024;

// C[m,n] += op(A) * op(B), all row-major.
//   trans_a == false: A is stored [m,k] with leading dimension lda.
//   trans_a == true:  A is stored [k,m] (the product uses A^T).
//   trans_b == false: B is stored [k,n].
//   trans_b == true:  B is stored [n,k] (the product uses B^T).
// C must be initialized by the caller (zeros, a bias broadcast, or a running
// gradient accumulator) — the kernel always reads C first, which is also
// what pins the accumulation order independent of blocking.
void Gemm(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
          bool trans_a, const float* b, int64_t ldb, bool trans_b, float* c,
          int64_t ldc);

// ------------------------- Deterministic multithreaded dispatch ------------
//
// Gemm() and the im2col/col2im lowerings fan out across runtime::ParallelFor
// when (a) the kernel thread budget is > 1 and (b) the call is big enough to
// clear the crossover threshold — small kernels stay single-threaded because
// the fan-out costs more than it saves (tuned by the MatMulWide section of
// bench_micro_substrate). The work split is over output-disjoint chunks whose
// boundaries are kMR/kNR-aligned, so the parallel kernel runs the exact
// per-element FMA sequence of the sequential one: results are bit-identical
// for every thread count, and the only thing the knobs below change is
// wall-clock time.

// Kernel thread budget. Defaults to the QCORE_GEMM_THREADS environment
// variable if set, else DefaultParallelWorkers() (hardware concurrency,
// clamped). set_gemm_threads requires n >= 1; 1 disables the parallel path
// entirely. Process-wide; reads/writes are racy-safe (a relaxed atomic) but
// tests and drills set it once up front.
int gemm_threads();
void set_gemm_threads(int n);

// Crossover threshold: a GEMM goes wide only when m*n*k >= this. The
// default (4Mi multiply-adds, ~a 161^3 cube) keeps per-sample HAR-model
// layers single-threaded while batched forwards fan out. Exposed for bench
// tuning and the --wide-batch drill; same contract as set_gemm_threads.
inline constexpr int64_t kDefaultGemmParallelMinWork = int64_t{1} << 22;
int64_t gemm_parallel_min_work();
void set_gemm_parallel_min_work(int64_t mnk);

// Per-thread dispatch counters, cumulative since thread start. wide counts
// Gemm() calls that cleared the crossover and fanned out, narrow the calls
// that ran sequentially, panel_tasks the total output chunks submitted by
// wide calls. Thread-local so a serving exec thread can sample before/after
// one forward pass and attribute the delta to exactly that request, even
// with concurrent sessions on other pool threads (ServingMetrics and the
// whiteboard are wired this way).
struct GemmDispatchCounters {
  uint64_t wide = 0;
  uint64_t narrow = 0;
  uint64_t panel_tasks = 0;
};
GemmDispatchCounters ThreadGemmDispatchCounters();

// Lowers one [c, l] input plane to a column matrix col[c*kernel, lo] with
// col[(ch*kernel + kx) * lo + o] = x[ch, o*stride + kx - pad] (0 outside).
void Im2Col1d(const float* x, int64_t c, int64_t l, int kernel, int stride,
              int pad, int64_t lo, float* col);

// Scatter-add inverse of Im2Col1d: x[c, l] += unfolded col. Iteration is
// (ch, kx, o) ascending, so overlapping taps accumulate in a fixed order.
void Col2Im1d(const float* col, int64_t c, int64_t l, int kernel, int stride,
              int pad, int64_t lo, float* x);

// 2-D variants over [c, h, w] planes with square kernels:
// col[((ch*kernel + ky)*kernel + kx) * (ho*wo) + oy*wo + ox].
void Im2Col2d(const float* x, int64_t c, int64_t h, int64_t w, int kernel,
              int stride, int pad, int64_t ho, int64_t wo, float* col);
void Col2Im2d(const float* col, int64_t c, int64_t h, int64_t w, int kernel,
              int stride, int pad, int64_t ho, int64_t wo, float* x);

}  // namespace kernels

// The seed's scalar kernels, retained verbatim-in-spirit (minus the
// data-dependent zero-skip branches) as the correctness oracle for
// tests/kernels_test.cc and the naive side of bench_micro_substrate.
namespace naive {

Tensor MatMul(const Tensor& a, const Tensor& b);
Tensor MatMulTransposedA(const Tensor& a, const Tensor& b);
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);

// x [n, c, l], w [f, c, kernel], bias [f] -> [n, f, lo].
Tensor Conv1dForward(const Tensor& x, const Tensor& w, const Tensor& bias,
                     int stride, int pad);
// Returns grad_in and accumulates into *dw [f, c, kernel] / *db [f].
Tensor Conv1dBackward(const Tensor& x, const Tensor& w, const Tensor& grad_out,
                      int stride, int pad, Tensor* dw, Tensor* db);

// x [n, c, h, w], w [f, c, kernel, kernel], bias [f] -> [n, f, ho, wo].
Tensor Conv2dForward(const Tensor& x, const Tensor& w, const Tensor& bias,
                     int stride, int pad);
Tensor Conv2dBackward(const Tensor& x, const Tensor& w, const Tensor& grad_out,
                      int stride, int pad, Tensor* dw, Tensor* db);

}  // namespace naive
}  // namespace qcore

#endif  // QCORE_TENSOR_KERNELS_H_
