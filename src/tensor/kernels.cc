#include "tensor/kernels.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/aligned.h"
#include "runtime/parallel_for.h"

// Function multi-versioning: the packed-GEMM driver is cloned for AVX-512,
// AVX2+FMA, and baseline x86-64, with glibc ifunc picking the widest clone
// the host supports. The clones differ only in vector width and mul+add vs
// fused-FMA rounding — the accumulation ORDER is identical, so results are
// bit-stable on a given host. ThreadSanitizer intercepts ifunc resolution
// badly (resolver runs before the runtime is up), so sanitized builds use
// the portable path; non-GCC-compatible or non-x86 builds likewise.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__)
#define QCORE_GEMM_CLONES \
  __attribute__((target_clones("arch=x86-64-v4", "arch=x86-64-v3", "default")))
#else
#define QCORE_GEMM_CLONES
#endif

namespace qcore {
namespace kernels {
namespace {

// The wide-vector helpers below pass v8f by value between TU-internal
// inline functions only, so the SSE2-vs-AVX calling-convention difference
// GCC warns about (-Wpsabi) can never surface across an ABI boundary.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

// A generic 8-lane float vector; on the AVX2/AVX-512 clones this maps to one
// ymm / half a zmm, on baseline x86-64 GCC splits it into two xmm ops.
// aligned(4): packed panels are 64-byte aligned but C tile rows are not.
typedef float v8f __attribute__((vector_size(32), aligned(4)));

inline v8f LoadV8(const float* p) { return *reinterpret_cast<const v8f*>(p); }
inline void StoreV8(float* p, v8f v) { *reinterpret_cast<v8f*>(p) = v; }

// Packs a kc x nr column panel of B into pb (layout pb[p*kNR + j]),
// zero-padding columns [nr, kNR). trans_b means B is stored [n, k].
inline void PackPanelB(int64_t kc, int64_t nr, const float* b, int64_t ldb,
                       bool trans_b, float* pb) {
  if (!trans_b) {
    for (int64_t p = 0; p < kc; ++p) {
      const float* src = b + p * ldb;
      float* dst = pb + p * kNR;
      int64_t j = 0;
      for (; j < nr; ++j) dst[j] = src[j];
      for (; j < kNR; ++j) dst[j] = 0.0f;
    }
  } else {
    for (int64_t p = 0; p < kc; ++p) {
      float* dst = pb + p * kNR;
      int64_t j = 0;
      for (; j < nr; ++j) dst[j] = b[j * ldb + p];
      for (; j < kNR; ++j) dst[j] = 0.0f;
    }
  }
}

// Packs a mr x kc row panel of A into pa (layout pa[p*kMR + i]),
// zero-padding rows [mr, kMR). trans_a means A is stored [k, m].
inline void PackPanelA(int64_t kc, int64_t mr, const float* a, int64_t lda,
                       bool trans_a, float* pa) {
  if (!trans_a) {
    for (int64_t p = 0; p < kc; ++p) {
      float* dst = pa + p * kMR;
      int64_t i = 0;
      for (; i < mr; ++i) dst[i] = a[i * lda + p];
      for (; i < kMR; ++i) dst[i] = 0.0f;
    }
  } else {
    for (int64_t p = 0; p < kc; ++p) {
      const float* src = a + p * lda;
      float* dst = pa + p * kMR;
      int64_t i = 0;
      for (; i < mr; ++i) dst[i] = src[i];
      for (; i < kMR; ++i) dst[i] = 0.0f;
    }
  }
}

// kMR x kNR register-tile microkernel over one packed k-panel. Loads C,
// accumulates k ascending, stores back: the per-element operation sequence
// is (((c + a_0*b_0) + a_1*b_1) + ...) regardless of how the surrounding
// loops were blocked. The accumulator tile (6 rows x 2 v8f) plus two B
// vectors and a broadcast stays within the 16 ymm registers of AVX2.
inline void MicroKernel(int64_t kc, const float* __restrict__ pa,
                        const float* __restrict__ pb, float* __restrict__ c,
                        int64_t ldc) {
  v8f acc[kMR][2];
  for (int i = 0; i < kMR; ++i) {
    acc[i][0] = LoadV8(c + i * ldc);
    acc[i][1] = LoadV8(c + i * ldc + 8);
  }
  for (int64_t p = 0; p < kc; ++p) {
    const float* a = pa + p * kMR;
    const v8f b0 = LoadV8(pb + p * kNR);
    const v8f b1 = LoadV8(pb + p * kNR + 8);
    for (int i = 0; i < kMR; ++i) {
      acc[i][0] += a[i] * b0;
      acc[i][1] += a[i] * b1;
    }
  }
  for (int i = 0; i < kMR; ++i) {
    StoreV8(c + i * ldc, acc[i][0]);
    StoreV8(c + i * ldc + 8, acc[i][1]);
  }
}

// Edge tiles run the same microkernel against a stack buffer so the
// accumulation sequence (and therefore rounding) matches interior tiles;
// only the valid mr x nr region is copied in and out. The zero-padded pa
// rows contribute exact +0.0f terms to the padded lanes, which are then
// discarded.
inline void MicroKernelEdge(int64_t kc, const float* __restrict__ pa,
                            const float* __restrict__ pb, float* c,
                            int64_t ldc, int64_t mr, int64_t nr) {
  float buf[kMR * kNR];
  for (int64_t i = 0; i < kMR; ++i) {
    for (int64_t j = 0; j < kNR; ++j) {
      buf[i * kNR + j] = (i < mr && j < nr) ? c[i * ldc + j] : 0.0f;
    }
  }
  MicroKernel(kc, pa, pb, buf, kNR);
  for (int64_t i = 0; i < mr; ++i) {
    for (int64_t j = 0; j < nr; ++j) c[i * ldc + j] = buf[i * kNR + j];
  }
}

QCORE_GEMM_CLONES
void GemmImpl(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
              bool trans_a, const float* b, int64_t ldb, bool trans_b,
              float* c, int64_t ldc) {
  // Pack buffers are reused across calls; each worker thread owns its own,
  // so concurrent sessions never share scratch.
  thread_local AlignedFloatVec packed_a;
  thread_local AlignedFloatVec packed_b;
  const int64_t kc_max = std::min(kKC, k);
  const int64_t nc_max =
      std::min(kNC, (n + kNR - 1) / kNR * static_cast<int64_t>(kNR));
  const int64_t mc_max =
      std::min(kMC, (m + kMR - 1) / kMR * static_cast<int64_t>(kMR));
  if (static_cast<int64_t>(packed_b.size()) < nc_max * kc_max) {
    packed_b.resize(static_cast<size_t>(nc_max * kc_max));
  }
  if (static_cast<int64_t>(packed_a.size()) < mc_max * kc_max) {
    packed_a.resize(static_cast<size_t>(mc_max * kc_max));
  }
  float* pb = packed_b.data();
  float* pa = packed_a.data();

  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nc = std::min(kNC, n - jc);
    for (int64_t pc = 0; pc < k; pc += kKC) {
      const int64_t kc = std::min(kKC, k - pc);
      for (int64_t jr = 0; jr < nc; jr += kNR) {
        const float* bsrc = trans_b ? b + (jc + jr) * ldb + pc
                                    : b + pc * ldb + jc + jr;
        PackPanelB(kc, std::min<int64_t>(kNR, nc - jr), bsrc, ldb, trans_b,
                   pb + jr * kc);
      }
      for (int64_t ic = 0; ic < m; ic += kMC) {
        const int64_t mc = std::min(kMC, m - ic);
        for (int64_t ir = 0; ir < mc; ir += kMR) {
          const float* asrc = trans_a ? a + pc * lda + ic + ir
                                      : a + (ic + ir) * lda + pc;
          PackPanelA(kc, std::min<int64_t>(kMR, mc - ir), asrc, lda, trans_a,
                     pa + ir * kc);
        }
        for (int64_t jr = 0; jr < nc; jr += kNR) {
          const int64_t nr = std::min<int64_t>(kNR, nc - jr);
          for (int64_t ir = 0; ir < mc; ir += kMR) {
            const int64_t mr = std::min<int64_t>(kMR, mc - ir);
            float* ctile = c + (ic + ir) * ldc + jc + jr;
            if (mr == kMR && nr == kNR) {
              MicroKernel(kc, pa + ir * kc, pb + jr * kc, ctile, ldc);
            } else {
              MicroKernelEdge(kc, pa + ir * kc, pb + jr * kc, ctile, ldc, mr,
                              nr);
            }
          }
        }
      }
    }
  }
}

// ----------------------- deterministic parallel dispatch -------------------

// Parallel work split: C is cut into row chunks of 8 microkernel tiles and
// column chunks of 16 packed panels. Both strides are exact multiples of the
// register tile (48 = 8*kMR, 256 = 16*kNR), so a chunked run produces the
// SAME tile decomposition as a sequential one — interior tiles stay
// interior, the ragged edge tiles land in the last chunks unchanged — and
// within each chunk the pc (reduction) loop is the ordinary sequential one.
// Per C element the FMA chain is therefore identical no matter how chunks
// map to workers: chunks are output-disjoint, so scheduling order is
// unobservable. (Chunk height 48 also halves the kMC=96 L2 block: packing
// cost per chunk stays amortized across at least 8 full tile rows.)
constexpr int64_t kRowChunk = 48;
constexpr int64_t kColChunk = 256;
static_assert(kRowChunk % kMR == 0 && kColChunk % kNR == 0,
              "chunk boundaries must align with register tiles or the "
              "parallel tile decomposition diverges from the sequential one");

// Copy-volume threshold for fanning the im2col/col2im channel loops out:
// these are memory-bound shuffles, so they need more elements than a GEMM
// needs FLOPs before threads pay for themselves.
constexpr int64_t kLoweringParallelMinWork = int64_t{1} << 20;

std::atomic<int> g_gemm_threads{0};  // 0 = not resolved yet
std::atomic<int64_t> g_gemm_parallel_min_work{kDefaultGemmParallelMinWork};

thread_local GemmDispatchCounters tls_gemm_dispatch;

// Runs body(ch) for every channel, fanning out across the kernel thread
// budget when the total copy volume clears the lowering threshold. Channels
// own disjoint planes of the output and keep their internal (kx, o) /
// (ky, kx, oy, ox) iteration order, so this preserves bit-identity for the
// same reason the GEMM chunk split does.
template <typename Body>
void ParallelChannels(int64_t c, int64_t work_per_channel, const Body& body) {
  const int threads = gemm_threads();
  if (threads > 1 && c > 1 && !InParallelRegion() &&
      c * work_per_channel >= kLoweringParallelMinWork) {
    ParallelFor(c, threads, body);
  } else {
    for (int64_t ch = 0; ch < c; ++ch) body(ch);
  }
}

}  // namespace

int gemm_threads() {
  const int t = g_gemm_threads.load(std::memory_order_relaxed);
  if (t > 0) return t;
  // First use: resolve from the environment, else the hardware. The CAS
  // makes concurrent first calls agree on one value.
  int resolved = DefaultParallelWorkers();
  if (const char* env = std::getenv("QCORE_GEMM_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) resolved = v;
  }
  resolved = std::min(resolved, 64);
  int expected = 0;
  g_gemm_threads.compare_exchange_strong(expected, resolved,
                                         std::memory_order_relaxed);
  return g_gemm_threads.load(std::memory_order_relaxed);
}

void set_gemm_threads(int n) {
  QCORE_CHECK(n >= 1);
  g_gemm_threads.store(std::min(n, 64), std::memory_order_relaxed);
}

int64_t gemm_parallel_min_work() {
  return g_gemm_parallel_min_work.load(std::memory_order_relaxed);
}

void set_gemm_parallel_min_work(int64_t mnk) {
  QCORE_CHECK(mnk >= 0);
  g_gemm_parallel_min_work.store(mnk, std::memory_order_relaxed);
}

GemmDispatchCounters ThreadGemmDispatchCounters() { return tls_gemm_dispatch; }

void Gemm(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
          bool trans_a, const float* b, int64_t ldb, bool trans_b, float* c,
          int64_t ldc) {
  QCORE_CHECK(m > 0 && n > 0 && k > 0);
  const int threads = gemm_threads();
  if (threads > 1 && !InParallelRegion() &&
      m * n * k >= gemm_parallel_min_work()) {
    const int64_t col_chunks = (n + kColChunk - 1) / kColChunk;
    const int64_t grid = ((m + kRowChunk - 1) / kRowChunk) * col_chunks;
    if (grid > 1) {
      tls_gemm_dispatch.wide++;
      tls_gemm_dispatch.panel_tasks += static_cast<uint64_t>(grid);
      ParallelFor(grid, threads, [&](int64_t t) {
        const int64_t r0 = (t / col_chunks) * kRowChunk;
        const int64_t c0 = (t % col_chunks) * kColChunk;
        // Sub-matrix views for chunk (r0, c0): A offset by r0 rows, B by c0
        // columns, honoring the storage transposes. Each worker's GemmImpl
        // packs into its own thread_local scratch.
        const float* ta = trans_a ? a + r0 : a + r0 * lda;
        const float* tb = trans_b ? b + c0 * ldb : b + c0;
        GemmImpl(std::min(kRowChunk, m - r0), std::min(kColChunk, n - c0), k,
                 ta, lda, trans_a, tb, ldb, trans_b, c + r0 * ldc + c0, ldc);
      });
      return;
    }
  }
  tls_gemm_dispatch.narrow++;
  GemmImpl(m, n, k, a, lda, trans_a, b, ldb, trans_b, c, ldc);
}

void Im2Col1d(const float* x, int64_t c, int64_t l, int kernel, int stride,
              int pad, int64_t lo, float* col) {
  ParallelChannels(c, static_cast<int64_t>(kernel) * lo, [&](int64_t ch) {
    const float* xrow = x + ch * l;
    for (int kx = 0; kx < kernel; ++kx) {
      float* crow = col + (ch * kernel + kx) * lo;
      for (int64_t o = 0; o < lo; ++o) {
        const int64_t t = o * stride + kx - pad;
        crow[o] = (t >= 0 && t < l) ? xrow[t] : 0.0f;
      }
    }
  });
}

void Col2Im1d(const float* col, int64_t c, int64_t l, int kernel, int stride,
              int pad, int64_t lo, float* x) {
  // Channel ch scatter-adds only into x[ch, :], so channels are disjoint and
  // the per-tap (kx, o) accumulation order is untouched by the fan-out.
  ParallelChannels(c, static_cast<int64_t>(kernel) * lo, [&](int64_t ch) {
    float* xrow = x + ch * l;
    for (int kx = 0; kx < kernel; ++kx) {
      const float* crow = col + (ch * kernel + kx) * lo;
      for (int64_t o = 0; o < lo; ++o) {
        const int64_t t = o * stride + kx - pad;
        if (t >= 0 && t < l) xrow[t] += crow[o];
      }
    }
  });
}

void Im2Col2d(const float* x, int64_t c, int64_t h, int64_t w, int kernel,
              int stride, int pad, int64_t ho, int64_t wo, float* col) {
  const int64_t per_channel =
      static_cast<int64_t>(kernel) * kernel * ho * wo;
  ParallelChannels(c, per_channel, [&](int64_t ch) {
    const float* xplane = x + ch * h * w;
    for (int ky = 0; ky < kernel; ++ky) {
      for (int kx = 0; kx < kernel; ++kx) {
        float* cplane = col + ((ch * kernel + ky) * kernel + kx) * ho * wo;
        for (int64_t oy = 0; oy < ho; ++oy) {
          const int64_t sy = oy * stride + ky - pad;
          float* crow = cplane + oy * wo;
          if (sy < 0 || sy >= h) {
            for (int64_t ox = 0; ox < wo; ++ox) crow[ox] = 0.0f;
            continue;
          }
          const float* xrow = xplane + sy * w;
          for (int64_t ox = 0; ox < wo; ++ox) {
            const int64_t sx = ox * stride + kx - pad;
            crow[ox] = (sx >= 0 && sx < w) ? xrow[sx] : 0.0f;
          }
        }
      }
    }
  });
}

void Col2Im2d(const float* col, int64_t c, int64_t h, int64_t w, int kernel,
              int stride, int pad, int64_t ho, int64_t wo, float* x) {
  const int64_t per_channel =
      static_cast<int64_t>(kernel) * kernel * ho * wo;
  // As in Col2Im1d: per-channel scatter targets are disjoint x planes.
  ParallelChannels(c, per_channel, [&](int64_t ch) {
    float* xplane = x + ch * h * w;
    for (int ky = 0; ky < kernel; ++ky) {
      for (int kx = 0; kx < kernel; ++kx) {
        const float* cplane =
            col + ((ch * kernel + ky) * kernel + kx) * ho * wo;
        for (int64_t oy = 0; oy < ho; ++oy) {
          const int64_t sy = oy * stride + ky - pad;
          if (sy < 0 || sy >= h) continue;
          const float* crow = cplane + oy * wo;
          float* xrow = xplane + sy * w;
          for (int64_t ox = 0; ox < wo; ++ox) {
            const int64_t sx = ox * stride + kx - pad;
            if (sx >= 0 && sx < w) xrow[sx] += crow[ox];
          }
        }
      }
    }
  });
}

}  // namespace kernels

// ---------------------------------------------------------------------------
// Naive references (seed kernels, zero-skip branches removed). These are the
// oracle side of kernels_test and the baseline side of the perf CI gate —
// keep them boring.
// ---------------------------------------------------------------------------
namespace naive {

Tensor MatMul(const Tensor& a, const Tensor& b) {
  QCORE_CHECK_EQ(a.ndim(), 2);
  QCORE_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  QCORE_CHECK_EQ(k, b.dim(0));
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // i-k-j loop order: unit-stride inner loop over both B and C, float
  // accumulation in ascending-k order (the kernel-layer policy).
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  QCORE_CHECK_EQ(a.ndim(), 2);
  QCORE_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  QCORE_CHECK_EQ(k, b.dim(1));
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float s = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) s += arow[kk] * brow[kk];
      pc[i * n + j] = s;
    }
  }
  return c;
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b) {
  QCORE_CHECK_EQ(a.ndim(), 2);
  QCORE_CHECK_EQ(b.ndim(), 2);
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  QCORE_CHECK_EQ(k, b.dim(0));
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor Conv1dForward(const Tensor& x, const Tensor& w, const Tensor& bias,
                     int stride, int pad) {
  QCORE_CHECK_EQ(x.ndim(), 3);
  QCORE_CHECK_EQ(w.ndim(), 3);
  const int64_t n = x.dim(0), c = x.dim(1), l = x.dim(2);
  const int64_t f = w.dim(0), kernel = w.dim(2);
  QCORE_CHECK_EQ(w.dim(1), c);
  const int64_t lo = (l + 2 * pad - kernel) / stride + 1;
  QCORE_CHECK_GT(lo, 0);
  Tensor out({n, f, lo});
  const float* px = x.data();
  const float* pw = w.data();
  const float* pb = bias.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t fo = 0; fo < f; ++fo) {
      float* orow = po + (i * f + fo) * lo;
      for (int64_t o = 0; o < lo; ++o) orow[o] = pb[fo];
      for (int64_t ch = 0; ch < c; ++ch) {
        const float* xrow = px + (i * c + ch) * l;
        const float* wrow = pw + (fo * c + ch) * kernel;
        for (int64_t kx = 0; kx < kernel; ++kx) {
          const float wv = wrow[kx];
          for (int64_t o = 0; o < lo; ++o) {
            const int64_t t = o * stride + kx - pad;
            if (t >= 0 && t < l) orow[o] += wv * xrow[t];
          }
        }
      }
    }
  }
  return out;
}

Tensor Conv1dBackward(const Tensor& x, const Tensor& w, const Tensor& grad_out,
                      int stride, int pad, Tensor* dw, Tensor* db) {
  const int64_t n = x.dim(0), c = x.dim(1), l = x.dim(2);
  const int64_t f = w.dim(0), kernel = w.dim(2);
  const int64_t lo = grad_out.dim(2);
  QCORE_CHECK_EQ(grad_out.dim(0), n);
  QCORE_CHECK_EQ(grad_out.dim(1), f);
  Tensor grad_in(x.shape());
  const float* px = x.data();
  const float* pw = w.data();
  const float* pg = grad_out.data();
  float* pgi = grad_in.data();
  float* pdw = dw->data();
  float* pdb = db->data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t fo = 0; fo < f; ++fo) {
      const float* grow = pg + (i * f + fo) * lo;
      double bsum = 0.0;
      for (int64_t o = 0; o < lo; ++o) bsum += grow[o];
      pdb[fo] += static_cast<float>(bsum);
      for (int64_t ch = 0; ch < c; ++ch) {
        const float* xrow = px + (i * c + ch) * l;
        const float* wrow = pw + (fo * c + ch) * kernel;
        float* girow = pgi + (i * c + ch) * l;
        float* dwrow = pdw + (fo * c + ch) * kernel;
        for (int64_t kx = 0; kx < kernel; ++kx) {
          float wsum = 0.0f;
          const float wv = wrow[kx];
          for (int64_t o = 0; o < lo; ++o) {
            const int64_t t = o * stride + kx - pad;
            if (t < 0 || t >= l) continue;
            wsum += grow[o] * xrow[t];
            girow[t] += wv * grow[o];
          }
          dwrow[kx] += wsum;
        }
      }
    }
  }
  return grad_in;
}

Tensor Conv2dForward(const Tensor& x, const Tensor& w, const Tensor& bias,
                     int stride, int pad) {
  QCORE_CHECK_EQ(x.ndim(), 4);
  QCORE_CHECK_EQ(w.ndim(), 4);
  const int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), wd = x.dim(3);
  const int64_t f = w.dim(0), kernel = w.dim(2);
  QCORE_CHECK_EQ(w.dim(1), c);
  const int64_t ho = (h + 2 * pad - kernel) / stride + 1;
  const int64_t wo = (wd + 2 * pad - kernel) / stride + 1;
  QCORE_CHECK(ho > 0 && wo > 0);
  Tensor out({n, f, ho, wo});
  const float* px = x.data();
  const float* pw = w.data();
  const float* pb = bias.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t fo = 0; fo < f; ++fo) {
      float* oplane = po + (i * f + fo) * ho * wo;
      for (int64_t o = 0; o < ho * wo; ++o) oplane[o] = pb[fo];
      for (int64_t ch = 0; ch < c; ++ch) {
        const float* xplane = px + (i * c + ch) * h * wd;
        const float* wplane = pw + (fo * c + ch) * kernel * kernel;
        for (int64_t ky = 0; ky < kernel; ++ky) {
          for (int64_t kx = 0; kx < kernel; ++kx) {
            const float wv = wplane[ky * kernel + kx];
            for (int64_t oy = 0; oy < ho; ++oy) {
              const int64_t sy = oy * stride + ky - pad;
              if (sy < 0 || sy >= h) continue;
              float* orow = oplane + oy * wo;
              const float* xrow = xplane + sy * wd;
              for (int64_t ox = 0; ox < wo; ++ox) {
                const int64_t sx = ox * stride + kx - pad;
                if (sx >= 0 && sx < wd) orow[ox] += wv * xrow[sx];
              }
            }
          }
        }
      }
    }
  }
  return out;
}

Tensor Conv2dBackward(const Tensor& x, const Tensor& w, const Tensor& grad_out,
                      int stride, int pad, Tensor* dw, Tensor* db) {
  const int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), wd = x.dim(3);
  const int64_t f = w.dim(0), kernel = w.dim(2);
  const int64_t ho = grad_out.dim(2), wo = grad_out.dim(3);
  QCORE_CHECK_EQ(grad_out.dim(0), n);
  QCORE_CHECK_EQ(grad_out.dim(1), f);
  Tensor grad_in(x.shape());
  const float* px = x.data();
  const float* pw = w.data();
  const float* pg = grad_out.data();
  float* pgi = grad_in.data();
  float* pdw = dw->data();
  float* pdb = db->data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t fo = 0; fo < f; ++fo) {
      const float* gplane = pg + (i * f + fo) * ho * wo;
      double bsum = 0.0;
      for (int64_t o = 0; o < ho * wo; ++o) bsum += gplane[o];
      pdb[fo] += static_cast<float>(bsum);
      for (int64_t ch = 0; ch < c; ++ch) {
        const float* xplane = px + (i * c + ch) * h * wd;
        const float* wplane = pw + (fo * c + ch) * kernel * kernel;
        float* giplane = pgi + (i * c + ch) * h * wd;
        float* dwplane = pdw + (fo * c + ch) * kernel * kernel;
        for (int64_t ky = 0; ky < kernel; ++ky) {
          for (int64_t kx = 0; kx < kernel; ++kx) {
            const float wv = wplane[ky * kernel + kx];
            float wsum = 0.0f;
            for (int64_t oy = 0; oy < ho; ++oy) {
              const int64_t sy = oy * stride + ky - pad;
              if (sy < 0 || sy >= h) continue;
              const float* grow = gplane + oy * wo;
              const float* xrow = xplane + sy * wd;
              float* girow = giplane + sy * wd;
              for (int64_t ox = 0; ox < wo; ++ox) {
                const int64_t sx = ox * stride + kx - pad;
                if (sx < 0 || sx >= wd) continue;
                wsum += grow[ox] * xrow[sx];
                girow[sx] += wv * grow[ox];
              }
            }
            dwplane[ky * kernel + kx] += wsum;
          }
        }
      }
    }
  }
  return grad_in;
}

}  // namespace naive
}  // namespace qcore
