#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace qcore {

namespace {

int64_t ShapeSize(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    QCORE_CHECK_GT(d, 0);
    n *= d;
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<size_t>(ShapeSize(shape_)), 0.0f);
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(std::vector<int64_t> shape,
                          std::vector<float> values) {
  Tensor t;
  t.shape_ = std::move(shape);
  QCORE_CHECK_EQ(ShapeSize(t.shape_), static_cast<int64_t>(values.size()));
  // Copy into the aligned buffer rather than adopting the caller's storage.
  t.data_.assign(values.begin(), values.end());
  return t;
}

Tensor Tensor::Randn(std::vector<int64_t> shape, Rng* rng, float stddev) {
  QCORE_CHECK(rng != nullptr);
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng->NextGaussian(0.0, stddev));
  }
  return t;
}

Tensor Tensor::Uniform(std::vector<int64_t> shape, Rng* rng, float lo,
                       float hi) {
  QCORE_CHECK(rng != nullptr);
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng->NextDouble(lo, hi));
  }
  return t;
}

int64_t Tensor::FlatIndex2(int64_t i, int64_t j) const {
  QCORE_CHECK_EQ(ndim(), 2);
  QCORE_CHECK(i >= 0 && i < shape_[0]);
  QCORE_CHECK(j >= 0 && j < shape_[1]);
  return i * shape_[1] + j;
}

int64_t Tensor::FlatIndex3(int64_t i, int64_t j, int64_t k) const {
  QCORE_CHECK_EQ(ndim(), 3);
  QCORE_CHECK(i >= 0 && i < shape_[0]);
  QCORE_CHECK(j >= 0 && j < shape_[1]);
  QCORE_CHECK(k >= 0 && k < shape_[2]);
  return (i * shape_[1] + j) * shape_[2] + k;
}

int64_t Tensor::FlatIndex4(int64_t i, int64_t j, int64_t k, int64_t l) const {
  QCORE_CHECK_EQ(ndim(), 4);
  QCORE_CHECK(i >= 0 && i < shape_[0]);
  QCORE_CHECK(j >= 0 && j < shape_[1]);
  QCORE_CHECK(k >= 0 && k < shape_[2]);
  QCORE_CHECK(l >= 0 && l < shape_[3]);
  return ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l;
}

float& Tensor::at(int64_t i, int64_t j) { return data_[FlatIndex2(i, j)]; }
float Tensor::at(int64_t i, int64_t j) const { return data_[FlatIndex2(i, j)]; }
float& Tensor::at(int64_t i, int64_t j, int64_t k) {
  return data_[FlatIndex3(i, j, k)];
}
float Tensor::at(int64_t i, int64_t j, int64_t k) const {
  return data_[FlatIndex3(i, j, k)];
}
float& Tensor::at(int64_t i, int64_t j, int64_t k, int64_t l) {
  return data_[FlatIndex4(i, j, k, l)];
}
float Tensor::at(int64_t i, int64_t j, int64_t k, int64_t l) const {
  return data_[FlatIndex4(i, j, k, l)];
}

Tensor Tensor::Reshape(std::vector<int64_t> new_shape) const {
  QCORE_CHECK_EQ(ShapeSize(new_shape), size());
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

Tensor Tensor::SliceRows(int64_t row_begin, int64_t row_end) const {
  QCORE_CHECK_GE(ndim(), 1);
  QCORE_CHECK(row_begin >= 0 && row_begin <= row_end && row_end <= shape_[0]);
  std::vector<int64_t> out_shape = shape_;
  out_shape[0] = row_end - row_begin;
  const int64_t row_size = shape_[0] == 0 ? 0 : size() / shape_[0];
  Tensor out(out_shape);
  std::copy(data_.begin() + row_begin * row_size,
            data_.begin() + row_end * row_size, out.data_.begin());
  return out;
}

Tensor Tensor::GatherRows(const std::vector<int>& indices) const {
  QCORE_CHECK_GE(ndim(), 1);
  const int64_t row_size = size() / shape_[0];
  std::vector<int64_t> out_shape = shape_;
  out_shape[0] = static_cast<int64_t>(indices.size());
  Tensor out(out_shape);
  for (size_t r = 0; r < indices.size(); ++r) {
    const int64_t src = indices[r];
    QCORE_CHECK(src >= 0 && src < shape_[0]);
    std::copy(data_.begin() + src * row_size,
              data_.begin() + (src + 1) * row_size,
              out.data_.begin() + static_cast<int64_t>(r) * row_size);
  }
  return out;
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

float Tensor::Sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return static_cast<float>(s);
}

float Tensor::Mean() const {
  QCORE_CHECK_GT(size(), 0);
  return Sum() / static_cast<float>(size());
}

float Tensor::Min() const {
  QCORE_CHECK_GT(size(), 0);
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::Max() const {
  QCORE_CHECK_GT(size(), 0);
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::AbsMax() const {
  QCORE_CHECK_GT(size(), 0);
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

int64_t Tensor::ArgMax() const {
  QCORE_CHECK_GT(size(), 0);
  return std::distance(data_.begin(),
                       std::max_element(data_.begin(), data_.end()));
}

std::string Tensor::ToString(int max_elements) const {
  std::string out = "[";
  for (int i = 0; i < ndim(); ++i) {
    out += std::to_string(shape_[i]);
    if (i + 1 < ndim()) out += ", ";
  }
  out += "]{";
  const int64_t n = std::min<int64_t>(size(), max_elements);
  char buf[32];
  for (int64_t i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof(buf), "%.4g", data_[i]);
    out += buf;
    if (i + 1 < n) out += ", ";
  }
  if (n < size()) out += ", ...";
  out += "}";
  return out;
}

}  // namespace qcore
