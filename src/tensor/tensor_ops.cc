#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.h"

namespace qcore {

// All three MatMul variants lower onto the one blocked/packed kernel
// (tensor/kernels.h): float accumulation, ascending-k order, no
// data-dependent branching. The freshly constructed output tensor is the
// zero-initialized C that kernels::Gemm accumulates into.

Tensor MatMul(const Tensor& a, const Tensor& b) {
  QCORE_CHECK_EQ(a.ndim(), 2);
  QCORE_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  QCORE_CHECK_EQ(k, b.dim(0));
  Tensor c({m, n});
  kernels::Gemm(m, n, k, a.data(), k, /*trans_a=*/false, b.data(), n,
                /*trans_b=*/false, c.data(), n);
  return c;
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  QCORE_CHECK_EQ(a.ndim(), 2);
  QCORE_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  QCORE_CHECK_EQ(k, b.dim(1));
  Tensor c({m, n});
  kernels::Gemm(m, n, k, a.data(), k, /*trans_a=*/false, b.data(), k,
                /*trans_b=*/true, c.data(), n);
  return c;
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b) {
  QCORE_CHECK_EQ(a.ndim(), 2);
  QCORE_CHECK_EQ(b.ndim(), 2);
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  QCORE_CHECK_EQ(k, b.dim(0));
  Tensor c({m, n});
  kernels::Gemm(m, n, k, a.data(), m, /*trans_a=*/true, b.data(), n,
                /*trans_b=*/false, c.data(), n);
  return c;
}

namespace {

template <typename F>
Tensor ZipSameShape(const Tensor& a, const Tensor& b, F f) {
  QCORE_CHECK(a.SameShape(b));
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i], pb[i]);
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return ZipSameShape(a, b, [](float x, float y) { return x + y; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return ZipSameShape(a, b, [](float x, float y) { return x - y; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return ZipSameShape(a, b, [](float x, float y) { return x * y; });
}

void AddInPlace(Tensor* a, const Tensor& b) {
  QCORE_CHECK(a != nullptr && a->SameShape(b));
  float* pa = a->data();
  const float* pb = b.data();
  const int64_t n = a->size();
  for (int64_t i = 0; i < n; ++i) pa[i] += pb[i];
}

void AxpyInPlace(Tensor* a, float s, const Tensor& b) {
  QCORE_CHECK(a != nullptr && a->SameShape(b));
  float* pa = a->data();
  const float* pb = b.data();
  const int64_t n = a->size();
  for (int64_t i = 0; i < n; ++i) pa[i] += s * pb[i];
}

void ScaleInPlace(Tensor* a, float s) {
  QCORE_CHECK(a != nullptr);
  float* pa = a->data();
  const int64_t n = a->size();
  for (int64_t i = 0; i < n; ++i) pa[i] *= s;
}

Tensor MulScalar(const Tensor& a, float s) {
  Tensor out = a;
  ScaleInPlace(&out, s);
  return out;
}

Tensor AddScalar(const Tensor& a, float s) {
  Tensor out = a;
  float* p = out.data();
  const int64_t n = out.size();
  for (int64_t i = 0; i < n; ++i) p[i] += s;
  return out;
}

Tensor SoftmaxRows(const Tensor& logits) {
  QCORE_CHECK_EQ(logits.ndim(), 2);
  const int64_t n = logits.dim(0), k = logits.dim(1);
  Tensor out({n, k});
  const float* pin = logits.data();
  float* pout = out.data();
  for (int64_t i = 0; i < n; ++i) {
    const float* row = pin + i * k;
    float* orow = pout + i * k;
    float mx = row[0];
    for (int64_t j = 1; j < k; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < k; ++j) {
      orow[j] = std::exp(row[j] - mx);
      denom += orow[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int64_t j = 0; j < k; ++j) orow[j] *= inv;
  }
  return out;
}

std::vector<int> ArgMaxRows(const Tensor& t) {
  QCORE_CHECK_EQ(t.ndim(), 2);
  const int64_t n = t.dim(0), k = t.dim(1);
  std::vector<int> out(static_cast<size_t>(n));
  const float* p = t.data();
  for (int64_t i = 0; i < n; ++i) {
    const float* row = p + i * k;
    out[static_cast<size_t>(i)] = static_cast<int>(
        std::distance(row, std::max_element(row, row + k)));
  }
  return out;
}

double Dot(const Tensor& a, const Tensor& b) {
  QCORE_CHECK_EQ(a.size(), b.size());
  const float* pa = a.data();
  const float* pb = b.data();
  double s = 0.0;
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) s += static_cast<double>(pa[i]) * pb[i];
  return s;
}

double Norm(const Tensor& t) { return std::sqrt(Dot(t, t)); }

Tensor Transpose2d(const Tensor& t) {
  QCORE_CHECK_EQ(t.ndim(), 2);
  const int64_t m = t.dim(0), n = t.dim(1);
  Tensor out({n, m});
  const float* pin = t.data();
  float* pout = out.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) pout[j * m + i] = pin[i * n + j];
  }
  return out;
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  QCORE_CHECK_EQ(a.ndim(), b.ndim());
  for (int i = 1; i < a.ndim(); ++i) QCORE_CHECK_EQ(a.dim(i), b.dim(i));
  std::vector<int64_t> shape = a.shape();
  shape[0] = a.dim(0) + b.dim(0);
  Tensor out(shape);
  std::copy(a.data(), a.data() + a.size(), out.data());
  std::copy(b.data(), b.data() + b.size(), out.data() + a.size());
  return out;
}

Tensor ConcatRows(const std::vector<const Tensor*>& parts) {
  QCORE_CHECK(!parts.empty());
  const Tensor& first = *parts[0];
  int64_t rows = 0;
  for (const Tensor* t : parts) {
    QCORE_CHECK(t != nullptr);
    QCORE_CHECK_EQ(t->ndim(), first.ndim());
    for (int i = 1; i < first.ndim(); ++i) {
      QCORE_CHECK_EQ(t->dim(i), first.dim(i));
    }
    rows += t->dim(0);
  }
  std::vector<int64_t> shape = first.shape();
  shape[0] = rows;
  Tensor out(shape);
  float* dst = out.data();
  for (const Tensor* t : parts) {
    dst = std::copy(t->data(), t->data() + t->size(), dst);
  }
  return out;
}

}  // namespace qcore
