// Dense row-major float tensor. This is the numeric foundation for the NN
// substrate: a contiguous buffer with checked accessors — hot loops
// (matmul/conv) operate on raw pointers inside the ops/layers instead.
// Storage is 64-byte aligned (common/aligned.h) so the blocked kernels in
// tensor/kernels.cc can pack panels and issue wide vector loads without
// cache-line splits.
#ifndef QCORE_TENSOR_TENSOR_H_
#define QCORE_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/check.h"
#include "common/rng.h"

namespace qcore {

class Tensor {
 public:
  // Empty (rank-0, size-0) tensor.
  Tensor() = default;

  // Zero-initialized tensor of the given shape. All dims must be positive.
  explicit Tensor(std::vector<int64_t> shape);

  static Tensor Zeros(std::vector<int64_t> shape) {
    return Tensor(std::move(shape));
  }
  static Tensor Full(std::vector<int64_t> shape, float value);
  static Tensor FromVector(std::vector<int64_t> shape,
                           std::vector<float> values);
  // I.i.d. Gaussian entries with the given stddev.
  static Tensor Randn(std::vector<int64_t> shape, Rng* rng,
                      float stddev = 1.0f);
  // I.i.d. uniform entries in [lo, hi).
  static Tensor Uniform(std::vector<int64_t> shape, Rng* rng, float lo,
                        float hi);

  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  int ndim() const { return static_cast<int>(shape_.size()); }
  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(int i) const {
    QCORE_CHECK_GE(i, 0);
    QCORE_CHECK_LT(i, ndim());
    return shape_[i];
  }
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  AlignedFloatVec& vec() { return data_; }
  const AlignedFloatVec& vec() const { return data_; }

  // Flat element access (bounds-checked).
  float& operator[](int64_t i) {
    QCORE_CHECK_GE(i, 0);
    QCORE_CHECK_LT(i, size());
    return data_[static_cast<size_t>(i)];
  }
  float operator[](int64_t i) const {
    QCORE_CHECK_GE(i, 0);
    QCORE_CHECK_LT(i, size());
    return data_[static_cast<size_t>(i)];
  }

  // Multi-dimensional checked access for ranks 2–4.
  float& at(int64_t i, int64_t j);
  float at(int64_t i, int64_t j) const;
  float& at(int64_t i, int64_t j, int64_t k);
  float at(int64_t i, int64_t j, int64_t k) const;
  float& at(int64_t i, int64_t j, int64_t k, int64_t l);
  float at(int64_t i, int64_t j, int64_t k, int64_t l) const;

  // Returns a tensor with the same data and a new shape (sizes must match).
  Tensor Reshape(std::vector<int64_t> new_shape) const;

  // Rows [row_begin, row_end) along axis 0, copied.
  Tensor SliceRows(int64_t row_begin, int64_t row_end) const;

  // Copies the rows at `indices` (axis 0) into a new tensor.
  Tensor GatherRows(const std::vector<int>& indices) const;

  void Fill(float value);
  void SetZero() { Fill(0.0f); }

  // Reductions.
  float Sum() const;
  float Mean() const;
  float Min() const;
  float Max() const;
  float AbsMax() const;

  // Flat index of the maximum element (first on ties). Size must be > 0.
  int64_t ArgMax() const;

  // "[2, 3]{0.1, 0.2, ...}" — truncated for large tensors.
  std::string ToString(int max_elements = 16) const;

 private:
  int64_t FlatIndex2(int64_t i, int64_t j) const;
  int64_t FlatIndex3(int64_t i, int64_t j, int64_t k) const;
  int64_t FlatIndex4(int64_t i, int64_t j, int64_t k, int64_t l) const;

  std::vector<int64_t> shape_;
  AlignedFloatVec data_;
};

}  // namespace qcore

#endif  // QCORE_TENSOR_TENSOR_H_
