// Free-function tensor operations. Layers implement their own fused loops;
// these ops cover the generic building blocks (GEMM, elementwise arithmetic,
// row-wise softmax/argmax) and are individually unit-tested.
#ifndef QCORE_TENSOR_TENSOR_OPS_H_
#define QCORE_TENSOR_TENSOR_OPS_H_

#include <vector>

#include "tensor/tensor.h"

namespace qcore {

// C = A[M,K] * B[K,N]. All three GEMM variants run on the blocked/packed
// kernel substrate (tensor/kernels.h): float accumulation in ascending-k
// order, deterministic for a given host independent of tile shape.
Tensor MatMul(const Tensor& a, const Tensor& b);

// C = A[M,K] * B[N,K]^T — the common backward-pass shape.
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);

// C = A[K,M]^T * B[K,N].
Tensor MatMulTransposedA(const Tensor& a, const Tensor& b);

// Elementwise; shapes must match.
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);

// a += b (shapes must match).
void AddInPlace(Tensor* a, const Tensor& b);
// a += s * b.
void AxpyInPlace(Tensor* a, float s, const Tensor& b);
// a *= s.
void ScaleInPlace(Tensor* a, float s);

Tensor MulScalar(const Tensor& a, float s);
Tensor AddScalar(const Tensor& a, float s);

// Row-wise numerically-stable softmax over a [N, K] tensor.
Tensor SoftmaxRows(const Tensor& logits);

// Per-row argmax of a [N, K] tensor.
std::vector<int> ArgMaxRows(const Tensor& t);

// Dot product of flattened tensors (sizes must match).
double Dot(const Tensor& a, const Tensor& b);

// L2 norm of the flattened tensor.
double Norm(const Tensor& t);

// Transpose of a [M, N] tensor.
Tensor Transpose2d(const Tensor& t);

// Concatenates along axis 0; trailing dims must match.
Tensor ConcatRows(const Tensor& a, const Tensor& b);

// Concatenates any number of tensors along axis 0 in one allocation;
// `parts` must be non-empty, all elements non-null with matching trailing
// dims. This is the gather half of the serving-side inference batcher
// (scatter is SliceRows on the result).
Tensor ConcatRows(const std::vector<const Tensor*>& parts);

}  // namespace qcore

#endif  // QCORE_TENSOR_TENSOR_OPS_H_
