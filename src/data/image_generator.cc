#include "data/image_generator.h"

#include <cmath>

namespace qcore {

namespace {

struct ClassProto {
  float orientation;   // grating angle
  float frequency;     // cycles across the image
  float color[3];      // per-channel weighting
  float blob_x;        // blob center in [0,1]
  float blob_y;
  float blob_amp;
};

std::vector<ClassProto> MakeProtos(const ImageSpec& spec) {
  Rng rng(spec.base_seed);
  std::vector<ClassProto> protos(static_cast<size_t>(spec.num_classes));
  for (int cls = 0; cls < spec.num_classes; ++cls) {
    ClassProto& p = protos[static_cast<size_t>(cls)];
    // Orientations cover the half-circle with neighbor overlap.
    p.orientation = static_cast<float>(M_PI) * static_cast<float>(cls) /
                        static_cast<float>(spec.num_classes) +
                    0.1f * static_cast<float>(rng.NextGaussian());
    p.frequency = 2.0f + 4.0f * static_cast<float>(rng.NextDouble());
    for (float& c : p.color) {
      c = 0.4f + 0.6f * static_cast<float>(rng.NextDouble());
    }
    p.blob_x = 0.2f + 0.6f * static_cast<float>(rng.NextDouble());
    p.blob_y = 0.2f + 0.6f * static_cast<float>(rng.NextDouble());
    p.blob_amp = 0.5f + 0.5f * static_cast<float>(rng.NextDouble());
  }
  return protos;
}

struct DomainParams {
  float brightness = 0.0f;
  float contrast = 1.0f;
  int blur_passes = 0;   // box-blur applications
  float noise = 0.05f;
  float clutter = 0.0f;  // amplitude of background texture
};

DomainParams MakeDomainParams(const ImageSpec& spec, int domain) {
  Rng rng(spec.base_seed ^ (0xABCDEF12345ULL * (domain + 1)));
  DomainParams d;
  const float s = spec.domain_shift;
  d.brightness = s * static_cast<float>(rng.NextGaussian(0.0, 0.25));
  d.contrast = 1.0f + s * static_cast<float>(rng.NextGaussian(0.0, 0.2));
  if (d.contrast < 0.4f) d.contrast = 0.4f;
  d.blur_passes = domain % 3 == 2 ? 1 : 0;  // some domains are soft-focus
  d.noise = 0.05f + s * 0.08f * static_cast<float>(rng.NextDouble());
  d.clutter = s * 0.3f * static_cast<float>(rng.NextDouble());
  return d;
}

void BoxBlur(float* img, int h, int w) {
  std::vector<float> tmp(static_cast<size_t>(h) * w);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      float sum = 0.0f;
      int count = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int yy = y + dy, xx = x + dx;
          if (yy < 0 || yy >= h || xx < 0 || xx >= w) continue;
          sum += img[yy * w + xx];
          ++count;
        }
      }
      tmp[static_cast<size_t>(y) * w + x] = sum / static_cast<float>(count);
    }
  }
  std::copy(tmp.begin(), tmp.end(), img);
}

void SynthesizeImage(const ImageSpec& spec,
                     const std::vector<ClassProto>& protos,
                     const DomainParams& dom, int cls, Rng* rng, float* out) {
  const int h = spec.height, w = spec.width, c = spec.channels;
  const ClassProto& p = protos[static_cast<size_t>(cls)];
  const int neighbor = (cls + 1) % spec.num_classes;
  const ClassProto& q = protos[static_cast<size_t>(neighbor)];
  float mix =
      0.4f * static_cast<float>(std::max(0.0, rng->NextGaussian(0.10, 0.15)));
  if (mix > 0.4f) mix = 0.4f;
  const float phase = static_cast<float>(rng->NextDouble(0.0, 2.0 * M_PI));
  const float jitter = 1.0f + 0.1f * static_cast<float>(rng->NextGaussian());
  // Background clutter: a low-frequency random grating per example.
  const float bg_theta = static_cast<float>(rng->NextDouble(0.0, M_PI));
  const float bg_phase = static_cast<float>(rng->NextDouble(0.0, 2.0 * M_PI));

  auto grating = [&](const ClassProto& proto, float x, float y) {
    const float u = x * std::cos(proto.orientation) +
                    y * std::sin(proto.orientation);
    return std::sin(2.0f * static_cast<float>(M_PI) * proto.frequency * u *
                        jitter +
                    phase);
  };
  auto blob = [&](const ClassProto& proto, float x, float y) {
    const float dx = x - proto.blob_x, dy = y - proto.blob_y;
    return proto.blob_amp * std::exp(-(dx * dx + dy * dy) / 0.02f);
  };

  for (int ch = 0; ch < c; ++ch) {
    float* plane = out + ch * h * w;
    for (int yy = 0; yy < h; ++yy) {
      for (int xx = 0; xx < w; ++xx) {
        const float x = static_cast<float>(xx) / static_cast<float>(w);
        const float y = static_cast<float>(yy) / static_cast<float>(h);
        float v = (1.0f - mix) * (p.color[ch % 3] * grating(p, x, y) +
                                  blob(p, x, y)) +
                  mix * (q.color[ch % 3] * grating(q, x, y) + blob(q, x, y));
        const float ubg = x * std::cos(bg_theta) + y * std::sin(bg_theta);
        v += dom.clutter *
             std::sin(2.0f * static_cast<float>(M_PI) * 1.5f * ubg + bg_phase);
        v = dom.contrast * v + dom.brightness +
            dom.noise * static_cast<float>(rng->NextGaussian());
        plane[yy * w + xx] = v;
      }
    }
    for (int pass = 0; pass < dom.blur_passes; ++pass) BoxBlur(plane, h, w);
  }
}

Dataset MakeSplit(const ImageSpec& spec, const std::vector<ClassProto>& protos,
                  const DomainParams& dom, int per_class, Rng* rng) {
  const int n = per_class * spec.num_classes;
  Tensor x({n, spec.channels, spec.height, spec.width});
  std::vector<int> labels(static_cast<size_t>(n));
  const int64_t example_size =
      static_cast<int64_t>(spec.channels) * spec.height * spec.width;
  int row = 0;
  for (int cls = 0; cls < spec.num_classes; ++cls) {
    for (int e = 0; e < per_class; ++e, ++row) {
      SynthesizeImage(spec, protos, dom, cls, rng,
                      x.data() + row * example_size);
      labels[static_cast<size_t>(row)] = cls;
    }
  }
  Dataset d(std::move(x), std::move(labels), spec.num_classes);
  return d.Shuffled(rng);
}

}  // namespace

ImageSpec ImageSpec::Caltech10() {
  ImageSpec spec;
  spec.name = "Caltech10";
  spec.num_classes = 10;
  spec.channels = 3;
  spec.height = 16;
  spec.width = 16;
  spec.train_per_class = 20;
  spec.test_per_class = 8;
  spec.val_per_class = 2;
  spec.domains = {"Amazon", "Caltech", "DSLR", "Webcam"};
  spec.base_seed = 0xCA17ULL;
  return spec;
}

int ImageSpec::DomainIndex(const std::string& domain) const {
  for (int i = 0; i < num_domains(); ++i) {
    if (domains[static_cast<size_t>(i)] == domain) return i;
  }
  QCORE_CHECK_MSG(false, "unknown image domain");
  return -1;
}

ImageDomain MakeImageDomain(const ImageSpec& spec, int domain) {
  QCORE_CHECK_GE(domain, 0);
  QCORE_CHECK_LT(domain, spec.num_domains());
  const std::vector<ClassProto> protos = MakeProtos(spec);
  const DomainParams dom = MakeDomainParams(spec, domain);
  Rng train_rng(spec.base_seed ^ (2000003ULL * (domain + 1)) ^ 0x31ULL);
  Rng val_rng(spec.base_seed ^ (2000003ULL * (domain + 1)) ^ 0x32ULL);
  Rng test_rng(spec.base_seed ^ (2000003ULL * (domain + 1)) ^ 0x33ULL);
  ImageDomain out;
  out.train = MakeSplit(spec, protos, dom, spec.train_per_class, &train_rng);
  out.val = MakeSplit(spec, protos, dom, spec.val_per_class, &val_rng);
  out.test = MakeSplit(spec, protos, dom, spec.test_per_class, &test_rng);
  return out;
}

}  // namespace qcore
