#include "data/har_generator.h"

#include <cmath>
#include <vector>

namespace qcore {

namespace {

// Per-class, per-channel prototype parameters. Shared across subjects.
struct ClassPrototypes {
  // Indexed [class][channel].
  std::vector<std::vector<float>> freq;
  std::vector<std::vector<float>> amp;
  std::vector<std::vector<float>> phase;
  std::vector<std::vector<float>> dc;
  std::vector<std::vector<float>> harmonic;  // relative 2nd-harmonic amount
};

ClassPrototypes MakePrototypes(const HarSpec& spec) {
  Rng rng(spec.base_seed);
  ClassPrototypes proto;
  const int k = spec.num_classes;
  const int c = spec.channels;
  proto.freq.assign(k, std::vector<float>(c));
  proto.amp.assign(k, std::vector<float>(c));
  proto.phase.assign(k, std::vector<float>(c));
  proto.dc.assign(k, std::vector<float>(c));
  proto.harmonic.assign(k, std::vector<float>(c));
  for (int cls = 0; cls < k; ++cls) {
    // Classes occupy a frequency ladder with overlap between neighbors:
    // base cycles-per-window in [2, 10], neighbors ~0.9 apart.
    const float base_freq =
        2.0f + 8.0f * static_cast<float>(cls) / static_cast<float>(k);
    for (int ch = 0; ch < c; ++ch) {
      proto.freq[cls][ch] =
          base_freq * (0.8f + 0.4f * static_cast<float>(rng.NextDouble()));
      proto.amp[cls][ch] =
          0.5f + 0.8f * static_cast<float>(rng.NextDouble());
      proto.phase[cls][ch] =
          static_cast<float>(rng.NextDouble(0.0, 2.0 * M_PI));
      proto.dc[cls][ch] =
          static_cast<float>(rng.NextGaussian(0.0, 0.35));
      proto.harmonic[cls][ch] =
          0.15f + 0.35f * static_cast<float>(rng.NextDouble());
    }
  }
  return proto;
}

// Per-subject domain parameters.
struct SubjectDomain {
  std::vector<float> gain;  // [channels]
  std::vector<float> bias;  // [channels]
  float freq_scale = 1.0f;
  float noise = 0.1f;
  float mix_bias = 0.0f;  // shifts the per-example difficulty distribution
};

SubjectDomain MakeSubjectDomain(const HarSpec& spec, int subject) {
  // Subject 0 is the "reference" recording setup; others drift away from it
  // proportionally to spec.domain_shift.
  Rng rng(spec.base_seed ^ (0x9E3779B97F4A7C15ULL * (subject + 1)));
  SubjectDomain dom;
  dom.gain.resize(static_cast<size_t>(spec.channels));
  dom.bias.resize(static_cast<size_t>(spec.channels));
  const float s = spec.domain_shift;
  for (int ch = 0; ch < spec.channels; ++ch) {
    dom.gain[static_cast<size_t>(ch)] =
        1.0f + s * static_cast<float>(rng.NextGaussian(0.0, 0.25));
    dom.bias[static_cast<size_t>(ch)] =
        s * static_cast<float>(rng.NextGaussian(0.0, 0.3));
  }
  dom.freq_scale = 1.0f + s * static_cast<float>(rng.NextGaussian(0.0, 0.08));
  dom.noise = 0.25f + s * 0.15f * static_cast<float>(rng.NextDouble());
  dom.mix_bias = s * 0.08f * static_cast<float>(rng.NextDouble());
  return dom;
}

// Writes one example of class `cls` into `out` (flat [channels * length]).
void SynthesizeExample(const HarSpec& spec, const ClassPrototypes& proto,
                       const SubjectDomain& dom, int cls, Rng* rng,
                       float* out) {
  const int c = spec.channels;
  const int l = spec.length;
  // Boundary-case knob: mix in the neighboring class's prototype.
  const int neighbor = (cls + 1) % spec.num_classes;
  float mix = dom.mix_bias +
              0.5f * static_cast<float>(std::max(0.0, rng->NextGaussian(0.22, 0.18)));
  if (mix > 0.5f) mix = 0.5f;
  if (mix < 0.0f) mix = 0.0f;
  const float ex_phase = static_cast<float>(rng->NextDouble(0.0, 2.0 * M_PI));
  const float ex_freq_jit =
      1.0f + 0.03f * static_cast<float>(rng->NextGaussian());
  const float ex_amp_jit =
      1.0f + 0.15f * static_cast<float>(rng->NextGaussian());

  for (int ch = 0; ch < c; ++ch) {
    auto wave = [&](int cc, float t) {
      const float w = 2.0f * static_cast<float>(M_PI) * proto.freq[cc][ch] *
                      dom.freq_scale * ex_freq_jit / static_cast<float>(l);
      const float ph = proto.phase[cc][ch] + ex_phase;
      return proto.amp[cc][ch] *
                 (std::sin(w * t + ph) +
                  proto.harmonic[cc][ch] * std::sin(2.0f * w * t + 1.7f * ph)) +
             proto.dc[cc][ch];
    };
    for (int t = 0; t < l; ++t) {
      const float tt = static_cast<float>(t);
      float v = (1.0f - mix) * wave(cls, tt) + mix * wave(neighbor, tt);
      v = dom.gain[static_cast<size_t>(ch)] * ex_amp_jit * v +
          dom.bias[static_cast<size_t>(ch)] +
          dom.noise * static_cast<float>(rng->NextGaussian());
      out[ch * l + t] = v;
    }
  }
}

Dataset MakeSplit(const HarSpec& spec, const ClassPrototypes& proto,
                  const SubjectDomain& dom, int per_class, Rng* rng) {
  const int n = per_class * spec.num_classes;
  Tensor x({n, spec.channels, spec.length});
  std::vector<int> labels(static_cast<size_t>(n));
  const int64_t example_size =
      static_cast<int64_t>(spec.channels) * spec.length;
  int row = 0;
  for (int cls = 0; cls < spec.num_classes; ++cls) {
    for (int e = 0; e < per_class; ++e, ++row) {
      SynthesizeExample(spec, proto, dom, cls, rng,
                        x.data() + row * example_size);
      labels[static_cast<size_t>(row)] = cls;
    }
  }
  Dataset d(std::move(x), std::move(labels), spec.num_classes);
  return d.Shuffled(rng);
}

}  // namespace

HarSpec HarSpec::Dsa() {
  HarSpec spec;
  spec.name = "DSA";
  spec.num_classes = 19;
  spec.channels = 9;
  spec.length = 64;
  spec.train_per_class = 20;
  spec.test_per_class = 8;
  spec.val_per_class = 2;
  spec.num_subjects = 8;
  spec.base_seed = 0xD5AULL;
  return spec;
}

HarSpec HarSpec::Usc() {
  HarSpec spec;
  spec.name = "USC";
  spec.num_classes = 12;
  spec.channels = 6;
  spec.length = 96;
  spec.train_per_class = 24;
  spec.test_per_class = 10;
  spec.val_per_class = 2;
  spec.num_subjects = 14;
  spec.base_seed = 0x05CULL;
  return spec;
}

HarDomain MakeHarDomain(const HarSpec& spec, int subject) {
  QCORE_CHECK_GE(subject, 0);
  QCORE_CHECK_LT(subject, spec.num_subjects);
  QCORE_CHECK_GT(spec.num_classes, 1);
  QCORE_CHECK_GT(spec.channels, 0);
  QCORE_CHECK_GT(spec.length, 0);
  const ClassPrototypes proto = MakePrototypes(spec);
  const SubjectDomain dom = MakeSubjectDomain(spec, subject);
  // Distinct substreams per split so adding examples to one split does not
  // perturb the others.
  Rng train_rng(spec.base_seed ^ (1000003ULL * (subject + 1)) ^ 0x7121ULL);
  Rng val_rng(spec.base_seed ^ (1000003ULL * (subject + 1)) ^ 0x7122ULL);
  Rng test_rng(spec.base_seed ^ (1000003ULL * (subject + 1)) ^ 0x7123ULL);
  HarDomain out;
  out.train = MakeSplit(spec, proto, dom, spec.train_per_class, &train_rng);
  out.val = MakeSplit(spec, proto, dom, spec.val_per_class, &val_rng);
  out.test = MakeSplit(spec, proto, dom, spec.test_per_class, &test_rng);
  return out;
}

}  // namespace qcore
