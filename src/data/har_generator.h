// Synthetic human-activity-recognition (HAR) time-series generator.
//
// The paper evaluates on DSA (19 activities, 8 subjects) and USC-HAD
// (12 activities, 14 subjects) body-sensor recordings. Neither dataset is
// available offline, so this module produces the closest synthetic
// equivalent that exercises the same code paths:
//
//  * Class structure: each activity class has a prototype multi-channel
//    quasi-periodic signal (per-channel frequency, amplitude, phase, DC
//    intensity, harmonic content). Adjacent classes share nearby frequency
//    bands so the problem has genuine boundary cases.
//  * Example difficulty: each example mixes a random amount of its
//    neighboring class's prototype (and noise), so the quantization-miss
//    distribution over examples is non-degenerate — the property QCore's
//    subset construction depends on.
//  * Domain shift across subjects: each subject applies its own channel
//    gains, sensor biases, frequency scaling and noise floor. Training on
//    subject A and streaming subject B reproduces the paper's
//    "Subj. 1 -> Subj. 2" concept-drift protocol.
#ifndef QCORE_DATA_HAR_GENERATOR_H_
#define QCORE_DATA_HAR_GENERATOR_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace qcore {

struct HarSpec {
  std::string name;
  int num_classes = 10;
  int channels = 6;
  int length = 64;
  int train_per_class = 20;
  int test_per_class = 8;
  int val_per_class = 2;
  int num_subjects = 8;
  // Strength of the per-subject domain shift (0 = identical domains).
  float domain_shift = 1.3f;
  uint64_t base_seed = 0x5EED;

  // DSA-like: 19 activities, 8 subjects; channels/length scaled from the
  // paper's 45x125 to a CPU-trainable 9x64.
  static HarSpec Dsa();
  // USC-HAD-like: 12 activities, 14 subjects; scaled from 6x500 to 6x96.
  static HarSpec Usc();
};

struct HarDomain {
  Dataset train;
  Dataset val;
  Dataset test;
};

// Generates the three splits for one subject. Class prototypes depend only
// on spec.base_seed (all subjects share the classification task); subject
// domain parameters and example noise depend on the subject index, so
// regenerating a domain is deterministic.
HarDomain MakeHarDomain(const HarSpec& spec, int subject);

}  // namespace qcore

#endif  // QCORE_DATA_HAR_GENERATOR_H_
