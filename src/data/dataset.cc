#include "data/dataset.h"

#include <algorithm>

#include "common/serialize.h"
#include "tensor/tensor_ops.h"

namespace qcore {

Dataset::Dataset(Tensor x, std::vector<int> labels, int num_classes)
    : x_(std::move(x)), labels_(std::move(labels)), num_classes_(num_classes) {
  QCORE_CHECK_GT(num_classes_, 0);
  QCORE_CHECK_EQ(x_.dim(0), static_cast<int64_t>(labels_.size()));
  for (int y : labels_) QCORE_CHECK(y >= 0 && y < num_classes_);
}

Dataset Dataset::Subset(const std::vector<int>& indices) const {
  std::vector<int> sub_labels(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    QCORE_CHECK(indices[i] >= 0 && indices[i] < size());
    sub_labels[i] = labels_[static_cast<size_t>(indices[i])];
  }
  return Dataset(x_.GatherRows(indices), std::move(sub_labels), num_classes_);
}

Dataset Dataset::Concat(const Dataset& a, const Dataset& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  QCORE_CHECK_EQ(a.num_classes_, b.num_classes_);
  std::vector<int> labels = a.labels_;
  labels.insert(labels.end(), b.labels_.begin(), b.labels_.end());
  return Dataset(ConcatRows(a.x_, b.x_), std::move(labels),
                 a.num_classes_);
}

Tensor Dataset::Example(int i) const {
  QCORE_CHECK(i >= 0 && i < size());
  return x_.SliceRows(i, i + 1);
}

std::vector<int> Dataset::ClassCounts() const {
  std::vector<int> counts(static_cast<size_t>(num_classes_), 0);
  for (int y : labels_) ++counts[static_cast<size_t>(y)];
  return counts;
}

Dataset Dataset::ReplicateTo(int target_size, Rng* rng) const {
  QCORE_CHECK(rng != nullptr);
  QCORE_CHECK_GT(size(), 0);
  QCORE_CHECK_GE(target_size, size());
  std::vector<int> order(static_cast<size_t>(size()));
  for (int i = 0; i < size(); ++i) order[static_cast<size_t>(i)] = i;
  rng->Shuffle(&order);
  std::vector<int> indices;
  indices.reserve(static_cast<size_t>(target_size));
  for (int i = 0; i < target_size; ++i) {
    indices.push_back(order[static_cast<size_t>(i % size())]);
  }
  return Subset(indices);
}

Dataset Dataset::Shuffled(Rng* rng) const {
  QCORE_CHECK(rng != nullptr);
  std::vector<int> order(static_cast<size_t>(size()));
  for (int i = 0; i < size(); ++i) order[static_cast<size_t>(i)] = i;
  rng->Shuffle(&order);
  return Subset(order);
}

void Dataset::SerializeTo(BinaryWriter* w) const {
  w->WriteI32(num_classes_);
  w->WriteI32(size());
  w->WriteInt64s(x_.shape());
  if (empty()) return;  // shape alone reconstructs a zero-row dataset
  w->WriteFloats(x_.data(), x_.vec().size());
  std::vector<int32_t> labels(labels_.begin(), labels_.end());
  w->WriteInts(labels);
}

Result<Dataset> Dataset::DeserializeFrom(BinaryReader* r) {
  auto classes = r->ReadI32();
  if (!classes.ok()) return classes.status();
  auto count = r->ReadI32();
  if (!count.ok()) return count.status();
  auto shape = r->ReadInt64s();
  if (!shape.ok()) return shape.status();
  if (count.value() == 0) {
    // Two empty flavors round-trip: the default dataset (no tensor, class
    // count 0) and a zero-row dataset that still carries its shape and
    // class count (e.g. an exhausted stream slice).
    if (shape.value().empty() || classes.value() <= 0) return Dataset();
    if (shape.value()[0] != 0) {
      return Status::Corruption("dataset record is internally inconsistent");
    }
    return Dataset(Tensor::FromVector(std::move(shape).value(), {}), {},
                   classes.value());
  }
  auto values = r->ReadFloats();
  if (!values.ok()) return values.status();
  auto labels = r->ReadInts();
  if (!labels.ok()) return labels.status();
  int64_t elements = 1;
  for (int64_t d : shape.value()) elements *= d;
  if (shape.value().empty() ||
      shape.value()[0] != static_cast<int64_t>(count.value()) ||
      labels.value().size() != static_cast<size_t>(count.value()) ||
      values.value().size() != static_cast<size_t>(elements)) {
    return Status::Corruption("dataset record is internally inconsistent");
  }
  Tensor x = Tensor::FromVector(std::move(shape).value(),
                                std::move(values).value());
  std::vector<int> y(labels.value().begin(), labels.value().end());
  return Dataset(std::move(x), std::move(y), classes.value());
}

Dataset AugmentDomain(const Dataset& d, float strength, Rng* rng) {
  QCORE_CHECK(rng != nullptr);
  QCORE_CHECK_GE(strength, 0.0f);
  QCORE_CHECK(!d.empty());
  const Tensor& x = d.x();
  QCORE_CHECK_GE(x.ndim(), 2);
  const int64_t n = x.dim(0);
  const int64_t channels = x.ndim() >= 3 ? x.dim(1) : x.dim(1);
  int64_t spatial = 1;
  for (int dim = 2; dim < x.ndim(); ++dim) spatial *= x.dim(dim);

  std::vector<float> gain(static_cast<size_t>(channels));
  std::vector<float> bias(static_cast<size_t>(channels));
  for (int64_t c = 0; c < channels; ++c) {
    gain[static_cast<size_t>(c)] =
        1.0f + 0.2f * strength * static_cast<float>(rng->NextGaussian());
    bias[static_cast<size_t>(c)] =
        0.3f * strength * static_cast<float>(rng->NextGaussian());
  }
  const float noise = 0.05f * strength;

  Tensor out = x;
  float* p = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < channels; ++c) {
      float* row = p + (i * channels + c) * spatial;
      for (int64_t t = 0; t < spatial; ++t) {
        row[t] = gain[static_cast<size_t>(c)] * row[t] +
                 bias[static_cast<size_t>(c)] +
                 noise * static_cast<float>(rng->NextGaussian());
      }
    }
  }
  return Dataset(std::move(out), d.labels(), d.num_classes());
}

std::vector<Dataset> SplitIntoStreamBatches(const Dataset& d, int num_parts,
                                            Rng* rng) {
  QCORE_CHECK_GT(num_parts, 0);
  QCORE_CHECK_GE(d.size(), num_parts);
  Dataset shuffled = d.Shuffled(rng);
  std::vector<Dataset> parts;
  parts.reserve(static_cast<size_t>(num_parts));
  const int base = d.size() / num_parts;
  const int extra = d.size() % num_parts;
  int offset = 0;
  for (int p = 0; p < num_parts; ++p) {
    const int count = base + (p < extra ? 1 : 0);
    std::vector<int> idx(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) idx[static_cast<size_t>(i)] = offset + i;
    parts.push_back(shuffled.Subset(idx));
    offset += count;
  }
  return parts;
}

}  // namespace qcore
