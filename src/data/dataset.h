// Tensor-backed labeled dataset. The first axis of x() indexes examples;
// trailing axes are whatever the model family expects ([C, L] for time
// series, [C, H, W] for images).
#ifndef QCORE_DATA_DATASET_H_
#define QCORE_DATA_DATASET_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace qcore {

class BinaryReader;
class BinaryWriter;

class Dataset {
 public:
  Dataset() = default;
  Dataset(Tensor x, std::vector<int> labels, int num_classes);

  int size() const { return static_cast<int>(labels_.size()); }
  bool empty() const { return labels_.empty(); }
  const Tensor& x() const { return x_; }
  const std::vector<int>& labels() const { return labels_; }
  int num_classes() const { return num_classes_; }

  // Copies the selected examples into a new dataset.
  Dataset Subset(const std::vector<int>& indices) const;

  // Concatenation along the example axis; class counts must agree.
  static Dataset Concat(const Dataset& a, const Dataset& b);

  // The i-th example with a leading batch axis of 1.
  Tensor Example(int i) const;

  // Number of examples per class, length num_classes().
  std::vector<int> ClassCounts() const;

  // Replicates examples (cyclically, after a shuffle) until the dataset has
  // `target_size` examples. Used by the QCore update (Algorithm 4, line 4)
  // to scale D_c up to the stream batch size. target_size >= size().
  Dataset ReplicateTo(int target_size, Rng* rng) const;

  // Uniformly shuffled copy.
  Dataset Shuffled(Rng* rng) const;

  // Binary round trip (common/serialize): example tensor, labels, and class
  // count. Used by the edge-deployment example to ship QCores to devices and
  // by the serving layer to carry a session's resampled QCore across shards.
  void SerializeTo(BinaryWriter* w) const;
  static Result<Dataset> DeserializeFrom(BinaryReader* r);

 private:
  Tensor x_;
  std::vector<int> labels_;
  int num_classes_ = 0;
};

// Random split of `d` into `num_parts` near-equal contiguous chunks after a
// shuffle (the "10 stream batches" protocol of the paper, Sec. 4.1.1).
std::vector<Dataset> SplitIntoStreamBatches(const Dataset& d, int num_parts,
                                            Rng* rng);

// Applies a random domain-style perturbation to every example: per-channel
// gain ~ N(1, 0.2*strength), per-channel bias ~ N(0, 0.3*strength), and
// additive noise ~ N(0, 0.05*strength). The channel axis is axis 1. Used to
// synthesize "repair a shifted model" calibration episodes when training the
// bit-flipping network (see core/bitflip.h) and for robustness tests.
Dataset AugmentDomain(const Dataset& d, float strength, Rng* rng);

}  // namespace qcore

#endif  // QCORE_DATA_DATASET_H_
