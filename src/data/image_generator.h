// Synthetic image classification generator with named visual domains.
//
// Substitutes the Office-Caltech10 benchmark (10 classes; domains Amazon,
// Caltech, DSLR, Webcam). Classes are distinguished by oriented gratings,
// class-specific color balance and a class-positioned blob; domains differ
// by the same kind of photometric transform that separates the real
// Office-Caltech domains (brightness, contrast, blur, sensor noise and
// background clutter).
#ifndef QCORE_DATA_IMAGE_GENERATOR_H_
#define QCORE_DATA_IMAGE_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace qcore {

struct ImageSpec {
  std::string name;
  int num_classes = 10;
  int channels = 3;
  int height = 16;
  int width = 16;
  int train_per_class = 20;
  int test_per_class = 8;
  int val_per_class = 2;
  std::vector<std::string> domains;
  float domain_shift = 1.0f;
  uint64_t base_seed = 0xCA17ULL;

  // Caltech10-like: 10 classes, 3x16x16, 4 domains.
  static ImageSpec Caltech10();

  int num_domains() const { return static_cast<int>(domains.size()); }
  // Index of a named domain; aborts if unknown.
  int DomainIndex(const std::string& domain) const;
};

struct ImageDomain {
  Dataset train;
  Dataset val;
  Dataset test;
};

// Generates the splits for one domain (by index into spec.domains).
ImageDomain MakeImageDomain(const ImageSpec& spec, int domain);

}  // namespace qcore

#endif  // QCORE_DATA_IMAGE_GENERATOR_H_
