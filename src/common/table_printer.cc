#include "common/table_printer.h"

#include <cstdio>

#include "common/check.h"

namespace qcore {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  QCORE_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  QCORE_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) line += "  ";
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render_row(header_);
  size_t rule_len = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule_len += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule_len, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace qcore
