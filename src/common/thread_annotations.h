// Clang Thread Safety Analysis attribute macros (no-ops under GCC/MSVC).
//
// These let lock-holding classes state their concurrency contracts in the
// type system: which mutex guards which field (QCORE_GUARDED_BY), which
// methods must be called with a lock held (QCORE_REQUIRES), which acquire
// or release one (QCORE_ACQUIRE / QCORE_RELEASE). A clang build with
// -Wthread-safety then rejects any access that violates a contract —
// including on paths no test schedule ever takes, which is exactly where
// TSan is blind. See README "Static analysis & concurrency contracts".
//
// Only src/common/mutex.h should apply the capability attributes
// (QCORE_CAPABILITY / QCORE_SCOPED_CAPABILITY); everything else annotates
// fields and methods against those wrapper types. The std primitives are
// unannotated, so code that bypasses the wrappers silently opts out of the
// analysis — tools/lint_qcore.py forbids naked std::mutex outside
// src/common/ for that reason.
#ifndef QCORE_COMMON_THREAD_ANNOTATIONS_H_
#define QCORE_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define QCORE_THREAD_ANNOTATION_IMPL(x) __attribute__((x))
#else
#define QCORE_THREAD_ANNOTATION_IMPL(x)  // no-op: GCC ignores the analysis
#endif

// --- type attributes -------------------------------------------------------

// A type that is a lockable capability ("mutex" names the capability kind
// in diagnostics).
#define QCORE_CAPABILITY(x) QCORE_THREAD_ANNOTATION_IMPL(capability(x))

// An RAII type whose constructor acquires a capability and whose destructor
// releases it (MutexLock, SharedLock).
#define QCORE_SCOPED_CAPABILITY QCORE_THREAD_ANNOTATION_IMPL(scoped_lockable)

// --- data-member attributes ------------------------------------------------

// Field may only be read/written while holding `x`.
#define QCORE_GUARDED_BY(x) QCORE_THREAD_ANNOTATION_IMPL(guarded_by(x))

// Pointer/smart-pointer field whose *pointee* is guarded by `x` (the
// pointer itself may be read freely, e.g. set once in a constructor).
#define QCORE_PT_GUARDED_BY(x) QCORE_THREAD_ANNOTATION_IMPL(pt_guarded_by(x))

// Lock-ordering declarations: this mutex must be acquired before/after `x`.
#define QCORE_ACQUIRED_BEFORE(...) \
  QCORE_THREAD_ANNOTATION_IMPL(acquired_before(__VA_ARGS__))
#define QCORE_ACQUIRED_AFTER(...) \
  QCORE_THREAD_ANNOTATION_IMPL(acquired_after(__VA_ARGS__))

// --- function attributes ---------------------------------------------------

// Caller must hold the capability exclusively / shared on entry and exit.
#define QCORE_REQUIRES(...) \
  QCORE_THREAD_ANNOTATION_IMPL(requires_capability(__VA_ARGS__))
#define QCORE_REQUIRES_SHARED(...) \
  QCORE_THREAD_ANNOTATION_IMPL(requires_shared_capability(__VA_ARGS__))

// Function acquires the capability (held on return, not on entry).
#define QCORE_ACQUIRE(...) \
  QCORE_THREAD_ANNOTATION_IMPL(acquire_capability(__VA_ARGS__))
#define QCORE_ACQUIRE_SHARED(...) \
  QCORE_THREAD_ANNOTATION_IMPL(acquire_shared_capability(__VA_ARGS__))

// Function releases the capability (held on entry, not on return).
#define QCORE_RELEASE(...) \
  QCORE_THREAD_ANNOTATION_IMPL(release_capability(__VA_ARGS__))
#define QCORE_RELEASE_SHARED(...) \
  QCORE_THREAD_ANNOTATION_IMPL(release_shared_capability(__VA_ARGS__))

// Function acquires the capability iff it returns `b`.
#define QCORE_TRY_ACQUIRE(...) \
  QCORE_THREAD_ANNOTATION_IMPL(try_acquire_capability(__VA_ARGS__))

// Caller must NOT hold the capability (deadlock-prevention contract for
// functions that acquire it themselves).
#define QCORE_EXCLUDES(...) \
  QCORE_THREAD_ANNOTATION_IMPL(locks_excluded(__VA_ARGS__))

// Runtime assertion that the capability is held — teaches the analysis a
// fact it cannot derive, e.g. inside a lambda invoked under the lock by a
// CondVar predicate wait.
#define QCORE_ASSERT_CAPABILITY(x) \
  QCORE_THREAD_ANNOTATION_IMPL(assert_capability(x))
#define QCORE_ASSERT_SHARED_CAPABILITY(x) \
  QCORE_THREAD_ANNOTATION_IMPL(assert_shared_capability(x))

// Function returns a reference to the capability guarding its result.
#define QCORE_RETURN_CAPABILITY(x) \
  QCORE_THREAD_ANNOTATION_IMPL(lock_returned(x))

// Escape hatch: disable analysis inside one function (use sparingly; every
// use is a hole in the contract and should say why in a comment).
#define QCORE_NO_THREAD_SAFETY_ANALYSIS \
  QCORE_THREAD_ANNOTATION_IMPL(no_thread_safety_analysis)

#endif  // QCORE_COMMON_THREAD_ANNOTATIONS_H_
