#include "common/serialize.h"

#include <cstdio>
#include <cstring>

namespace qcore {

namespace {
constexpr uint32_t kMagic = 0x51434F52;  // "QCOR"
constexpr uint32_t kVersion = 1;
}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  // Table-driven byte-at-a-time CRC; the table is built once on first use
  // (thread-safe static initialization).
  static const uint32_t* table = []() {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void AppendFramedRecord(const std::vector<uint8_t>& payload,
                        std::vector<uint8_t>* out) {
  const auto size = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32(payload.data(), payload.size());
  const auto* sp = reinterpret_cast<const uint8_t*>(&size);
  const auto* cp = reinterpret_cast<const uint8_t*>(&crc);
  out->insert(out->end(), sp, sp + sizeof(size));
  out->insert(out->end(), cp, cp + sizeof(crc));
  out->insert(out->end(), payload.begin(), payload.end());
}

Result<std::vector<uint8_t>> ReadFramedRecord(const std::vector<uint8_t>& buf,
                                              size_t* pos) {
  const size_t remaining = buf.size() - *pos;
  if (remaining < 2 * sizeof(uint32_t)) {
    return Status::Corruption("truncated frame header");
  }
  uint32_t size = 0, crc = 0;
  std::memcpy(&size, buf.data() + *pos, sizeof(size));
  std::memcpy(&crc, buf.data() + *pos + sizeof(size), sizeof(crc));
  if (size > remaining - 2 * sizeof(uint32_t)) {
    return Status::Corruption("truncated frame payload");
  }
  const uint8_t* payload = buf.data() + *pos + 2 * sizeof(uint32_t);
  if (Crc32(payload, size) != crc) {
    return Status::Corruption("frame checksum mismatch");
  }
  std::vector<uint8_t> out(payload, payload + size);
  *pos += 2 * sizeof(uint32_t) + size;
  return out;
}

void BinaryWriter::Raw(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  buffer_.insert(buffer_.end(), p, p + n);
}

void BinaryWriter::WriteU32(uint32_t v) { Raw(&v, sizeof(v)); }
void BinaryWriter::WriteI32(int32_t v) { Raw(&v, sizeof(v)); }
void BinaryWriter::WriteU64(uint64_t v) { Raw(&v, sizeof(v)); }
void BinaryWriter::WriteI64(int64_t v) { Raw(&v, sizeof(v)); }
void BinaryWriter::WriteF32(float v) { Raw(&v, sizeof(v)); }
void BinaryWriter::WriteF64(double v) { Raw(&v, sizeof(v)); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  Raw(s.data(), s.size());
}

void BinaryWriter::WriteFloats(const std::vector<float>& v) {
  WriteFloats(v.data(), v.size());
}

void BinaryWriter::WriteFloats(const float* data, size_t n) {
  WriteU64(n);
  Raw(data, n * sizeof(float));
}

void BinaryWriter::WriteInts(const std::vector<int32_t>& v) {
  WriteU64(v.size());
  Raw(v.data(), v.size() * sizeof(int32_t));
}

void BinaryWriter::WriteInt64s(const std::vector<int64_t>& v) {
  WriteU64(v.size());
  Raw(v.data(), v.size() * sizeof(int64_t));
}

void BinaryWriter::WriteBytes(const std::vector<uint8_t>& v) {
  WriteU64(v.size());
  Raw(v.data(), v.size());
}

Status BinaryWriter::ToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  bool ok = std::fwrite(&kMagic, sizeof(kMagic), 1, f) == 1 &&
            std::fwrite(&kVersion, sizeof(kVersion), 1, f) == 1;
  if (ok && !buffer_.empty()) {
    ok = std::fwrite(buffer_.data(), 1, buffer_.size(), f) == buffer_.size();
  }
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<BinaryReader> BinaryReader::FromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open for reading: " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < static_cast<long>(2 * sizeof(uint32_t))) {
    std::fclose(f);
    return Status::Corruption("file too small: " + path);
  }
  uint32_t magic = 0, version = 0;
  if (std::fread(&magic, sizeof(magic), 1, f) != 1 ||
      std::fread(&version, sizeof(version), 1, f) != 1) {
    std::fclose(f);
    return Status::IoError("header read failed: " + path);
  }
  if (magic != kMagic) {
    std::fclose(f);
    return Status::Corruption("bad magic in " + path);
  }
  if (version != kVersion) {
    std::fclose(f);
    return Status::Corruption("unsupported format version in " + path);
  }
  std::vector<uint8_t> buffer(static_cast<size_t>(size) - 2 * sizeof(uint32_t));
  if (!buffer.empty() &&
      std::fread(buffer.data(), 1, buffer.size(), f) != buffer.size()) {
    std::fclose(f);
    return Status::IoError("body read failed: " + path);
  }
  std::fclose(f);
  return BinaryReader(std::move(buffer));
}

Status BinaryReader::Raw(void* out, size_t n) {
  // Overflow-safe: pos_ + n can wrap for hostile n, so compare against the
  // remaining byte count instead.
  if (n > buffer_.size() - pos_) {
    return Status::Corruption("truncated read");
  }
  std::memcpy(out, buffer_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Result<uint32_t> BinaryReader::ReadU32() {
  uint32_t v;
  QCORE_RETURN_NOT_OK(Raw(&v, sizeof(v)));
  return v;
}
Result<int32_t> BinaryReader::ReadI32() {
  int32_t v;
  QCORE_RETURN_NOT_OK(Raw(&v, sizeof(v)));
  return v;
}
Result<uint64_t> BinaryReader::ReadU64() {
  uint64_t v;
  QCORE_RETURN_NOT_OK(Raw(&v, sizeof(v)));
  return v;
}
Result<int64_t> BinaryReader::ReadI64() {
  int64_t v;
  QCORE_RETURN_NOT_OK(Raw(&v, sizeof(v)));
  return v;
}
Result<float> BinaryReader::ReadF32() {
  float v;
  QCORE_RETURN_NOT_OK(Raw(&v, sizeof(v)));
  return v;
}
Result<double> BinaryReader::ReadF64() {
  double v;
  QCORE_RETURN_NOT_OK(Raw(&v, sizeof(v)));
  return v;
}

Result<std::string> BinaryReader::ReadString() {
  auto n = ReadU64();
  if (!n.ok()) return n.status();
  if (n.value() > buffer_.size() - pos_) {
    return Status::Corruption("truncated string");
  }
  std::string s(reinterpret_cast<const char*>(buffer_.data() + pos_),
                n.value());
  pos_ += n.value();
  return s;
}

Result<std::vector<float>> BinaryReader::ReadFloats() {
  auto n = ReadU64();
  if (!n.ok()) return n.status();
  // Validate the length prefix against the remaining bytes BEFORE
  // allocating: a bit-rotted prefix must yield Corruption, not bad_alloc.
  if (n.value() > (buffer_.size() - pos_) / sizeof(float)) {
    return Status::Corruption("length prefix exceeds buffer");
  }
  std::vector<float> v(n.value());
  if (!v.empty()) {
    QCORE_RETURN_NOT_OK(Raw(v.data(), v.size() * sizeof(float)));
  }
  return v;
}

Result<std::vector<int32_t>> BinaryReader::ReadInts() {
  auto n = ReadU64();
  if (!n.ok()) return n.status();
  // Validate the length prefix against the remaining bytes BEFORE
  // allocating: a bit-rotted prefix must yield Corruption, not bad_alloc.
  if (n.value() > (buffer_.size() - pos_) / sizeof(int32_t)) {
    return Status::Corruption("length prefix exceeds buffer");
  }
  std::vector<int32_t> v(n.value());
  if (!v.empty()) {
    QCORE_RETURN_NOT_OK(Raw(v.data(), v.size() * sizeof(int32_t)));
  }
  return v;
}

Result<std::vector<uint8_t>> BinaryReader::ReadBytes() {
  auto n = ReadU64();
  if (!n.ok()) return n.status();
  // Validate the length prefix against the remaining bytes BEFORE
  // allocating: a bit-rotted prefix must yield Corruption, not bad_alloc.
  if (n.value() > buffer_.size() - pos_) {
    return Status::Corruption("length prefix exceeds buffer");
  }
  std::vector<uint8_t> v(n.value());
  if (!v.empty()) {
    QCORE_RETURN_NOT_OK(Raw(v.data(), v.size()));
  }
  return v;
}

Result<std::vector<int64_t>> BinaryReader::ReadInt64s() {
  auto n = ReadU64();
  if (!n.ok()) return n.status();
  // Validate the length prefix against the remaining bytes BEFORE
  // allocating: a bit-rotted prefix must yield Corruption, not bad_alloc.
  if (n.value() > (buffer_.size() - pos_) / sizeof(int64_t)) {
    return Status::Corruption("length prefix exceeds buffer");
  }
  std::vector<int64_t> v(n.value());
  if (!v.empty()) {
    QCORE_RETURN_NOT_OK(Raw(v.data(), v.size() * sizeof(int64_t)));
  }
  return v;
}

}  // namespace qcore
