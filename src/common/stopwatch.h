// Wall-clock timing for the runtime benches (Table 9, Table 7 "Time" row).
#ifndef QCORE_COMMON_STOPWATCH_H_
#define QCORE_COMMON_STOPWATCH_H_

#include <chrono>

namespace qcore {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qcore

#endif  // QCORE_COMMON_STOPWATCH_H_
