// Status / Result<T>: error propagation for fallible operations without
// exceptions (Arrow/RocksDB idiom). Library code returns Status or Result<T>;
// programming errors use QCORE_CHECK from check.h.
#ifndef QCORE_COMMON_STATUS_H_
#define QCORE_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace qcore {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kOutOfRange,
  kCorruption,
  kUnimplemented,
  // A bounded resource (e.g. a serving queue) is full; retry later. The
  // load-shedding fast-fail code — callers distinguish it from hard errors.
  kResourceExhausted,
  // The request's latency budget expired before the work ran (deadline
  // shedding at batch-flush/exec time, serving/overload.h). Unlike
  // kResourceExhausted the request WAS admitted — retrying is pointless
  // unless the caller extends the budget.
  kDeadlineExceeded,
};

// Human-readable name of a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// [[nodiscard]] at class level: a dropped Status is a swallowed error —
// every call site must check it, pass it on, or say why not (assign to an
// explicitly unused local). Same for Result<T> below.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Value-or-error. Accessing value() on an error Result aborts.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {                 // NOLINT
    QCORE_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    QCORE_CHECK_MSG(ok(), "Result::value() on error");
    return *value_;
  }
  T& value() & {
    QCORE_CHECK_MSG(ok(), "Result::value() on error");
    return *value_;
  }
  T&& value() && {
    QCORE_CHECK_MSG(ok(), "Result::value() on error");
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;  // engaged iff status_.ok()
};

#define QCORE_RETURN_NOT_OK(expr)             \
  do {                                        \
    ::qcore::Status _st = (expr);             \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace qcore

#endif  // QCORE_COMMON_STATUS_H_
