// 64-byte-aligned allocation for tensor storage and kernel pack buffers.
// The blocked GEMM microkernels (tensor/kernels.cc) issue wide vector loads
// against packed panels; starting every float buffer on a cache-line
// boundary keeps those loads split-free and makes the panels exactly
// cache-line-tiled. std::vector with this allocator is otherwise a drop-in
// replacement for std::vector<float>.
#ifndef QCORE_COMMON_ALIGNED_H_
#define QCORE_COMMON_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace qcore {

inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T, std::size_t Alignment = kCacheLineBytes>
struct AlignedAllocator {
  using value_type = T;

  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

// The storage type used by Tensor and by kernel scratch buffers.
using AlignedFloatVec = std::vector<float, AlignedAllocator<float>>;

}  // namespace qcore

#endif  // QCORE_COMMON_ALIGNED_H_
