// Aligned plain-text table printing. Every bench binary reproduces a paper
// table/figure as rows on stdout; this keeps their formatting consistent.
#ifndef QCORE_COMMON_TABLE_PRINTER_H_
#define QCORE_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace qcore {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Adds one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 3);

  // Renders the table with column alignment and a header rule.
  std::string ToString() const;

  // Prints ToString() to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qcore

#endif  // QCORE_COMMON_TABLE_PRINTER_H_
