// Invariant-checking macros (RocksDB/Arrow idiom): programming errors abort
// with a diagnostic; recoverable errors use qcore::Status instead.
#ifndef QCORE_COMMON_CHECK_H_
#define QCORE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace qcore::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "QCORE_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace qcore::internal

// Aborts with a diagnostic if `expr` is false. Always on (also in release
// builds): the cost is negligible next to tensor math, and silent corruption
// in a calibration pipeline is far worse than an abort.
#define QCORE_CHECK(expr)                                             \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::qcore::internal::CheckFailed(__FILE__, __LINE__, #expr, "");  \
    }                                                                 \
  } while (0)

#define QCORE_CHECK_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::qcore::internal::CheckFailed(__FILE__, __LINE__, #expr, msg);  \
    }                                                                  \
  } while (0)

#define QCORE_CHECK_EQ(a, b) QCORE_CHECK((a) == (b))
#define QCORE_CHECK_NE(a, b) QCORE_CHECK((a) != (b))
#define QCORE_CHECK_LT(a, b) QCORE_CHECK((a) < (b))
#define QCORE_CHECK_LE(a, b) QCORE_CHECK((a) <= (b))
#define QCORE_CHECK_GT(a, b) QCORE_CHECK((a) > (b))
#define QCORE_CHECK_GE(a, b) QCORE_CHECK((a) >= (b))

#endif  // QCORE_COMMON_CHECK_H_
