#include "common/status.h"

namespace qcore {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace qcore
