#include "common/rng.h"

#include <cmath>

namespace qcore {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: expands one 64-bit seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  return SplitMix64Mix(*state += 0x9e3779b97f4a7c15ULL);
}

}  // namespace

uint64_t SplitMix64Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // All-zero state is invalid for xoshiro; splitmix64 of any seed avoids it,
  // but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  QCORE_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

int Rng::NextInt(int lo, int hi) {
  QCORE_CHECK_LE(lo, hi);
  return lo + static_cast<int>(NextUint64(
                  static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  QCORE_CHECK_GE(n, 0);
  QCORE_CHECK_GE(k, 0);
  QCORE_CHECK_LE(k, n);
  std::vector<int> all(n);
  for (int i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher–Yates: only the first k slots need to be settled.
  for (int i = 0; i < k; ++i) {
    int j = i + static_cast<int>(NextUint64(static_cast<uint64_t>(n - i)));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

int Rng::SampleWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    QCORE_CHECK_GE(w, 0.0);
    total += w;
  }
  QCORE_CHECK_GT(total, 0.0);
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return static_cast<int>(i);
  }
  // Floating-point slack: fall back to the last positive weight.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return static_cast<int>(i);
  }
  return 0;
}

Rng Rng::Split() { return Rng(NextUint64()); }

Rng::State Rng::SaveState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_cached_gaussian = has_cached_gaussian_;
  state.cached_gaussian = cached_gaussian_;
  return state;
}

void Rng::RestoreState(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  QCORE_CHECK_MSG((s_[0] | s_[1] | s_[2] | s_[3]) != 0,
                  "all-zero xoshiro state is invalid");
  has_cached_gaussian_ = state.has_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

}  // namespace qcore
