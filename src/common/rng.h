// Deterministic pseudo-random number generator (xoshiro256**) used across the
// library so experiments are reproducible from a single seed. Not
// cryptographic. Each component takes an Rng& so seeding is explicit at the
// call site (Google style: no hidden global state).
#ifndef QCORE_COMMON_RNG_H_
#define QCORE_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace qcore {

// splitmix64 finalizer step: one full-avalanche mix of a 64-bit value.
// Rng's constructor uses the sequential form to expand a seed into state;
// callers that need to hash-combine values into a seed (e.g. per-device
// seeds in serving) use this directly.
uint64_t SplitMix64Mix(uint64_t z);

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform in [0, 2^64).
  uint64_t NextUint64();

  // Uniform in [0, n). n must be > 0.
  uint64_t NextUint64(uint64_t n);

  // Uniform integer in [lo, hi] inclusive.
  int NextInt(int lo, int hi);

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi).
  double NextDouble(double lo, double hi);

  // Standard normal via Box–Muller (cached second value).
  double NextGaussian();

  // Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  // Bernoulli with probability p of true.
  bool NextBool(double p);

  // Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextUint64(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  // k distinct indices sampled uniformly without replacement from [0, n).
  // k must be <= n.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  // Index sampled from unnormalized non-negative weights. At least one weight
  // must be positive.
  int SampleWeighted(const std::vector<double>& weights);

  // Derives an independent generator (for parallel-safe substreams).
  Rng Split();

  // The complete generator state: xoshiro words plus the Box–Muller cache.
  // Saving and later restoring it resumes the exact output stream — the
  // primitive that lets a serving session migrate between shards without
  // perturbing its randomness (serving/server.h session handoff).
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_gaussian = false;
    double cached_gaussian = 0.0;
  };
  State SaveState() const;
  void RestoreState(const State& state);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace qcore

#endif  // QCORE_COMMON_RNG_H_
