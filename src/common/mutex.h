// Annotated synchronization wrappers over the std primitives.
//
// Every lock-holding class in src/ uses these instead of std::mutex and
// friends (enforced by tools/lint_qcore.py), because the std types carry no
// Clang Thread Safety attributes: code locking them is invisible to
// -Wthread-safety, so every GUARDED_BY contract it touches would be a
// false positive. The wrappers add zero overhead — each method is an
// inline forward to the std call — and under GCC every annotation macro
// expands to nothing.
//
// Conventions (see README "Static analysis & concurrency contracts"):
//   * Prefer the scoped types (MutexLock / SharedLock / WriterLock) over
//     manual Lock()/Unlock(); manual pairs are for functions whose
//     annotation is QCORE_ACQUIRE/QCORE_RELEASE by design.
//   * A lambda that runs under a lock the analysis can't see through
//     (CondVar predicates, callbacks invoked by a lock-holding caller)
//     states the fact explicitly: `mu_.AssertHeld();` as its first line.
//   * CondVar waits REQUIRE the mutex: the wait releases and reacquires it
//     internally, which the analysis treats as "held throughout" — exactly
//     the contract the caller observes.
#ifndef QCORE_COMMON_MUTEX_H_
#define QCORE_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace qcore {

// Exclusive lock. Wraps std::mutex.
class QCORE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() QCORE_ACQUIRE() { mu_.lock(); }
  bool TryLock() QCORE_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void Unlock() QCORE_RELEASE() { mu_.unlock(); }

  // Declares (to the analysis only — no runtime check) that this mutex is
  // held. For lambdas and callbacks that run under a lock acquired by
  // their caller.
  void AssertHeld() const QCORE_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// Reader/writer lock. Wraps std::shared_mutex.
class QCORE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() QCORE_ACQUIRE() { mu_.lock(); }
  void Unlock() QCORE_RELEASE() { mu_.unlock(); }
  void LockShared() QCORE_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() QCORE_RELEASE_SHARED() { mu_.unlock_shared(); }

  void AssertHeld() const QCORE_ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() const QCORE_ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

// Scoped exclusive lock over Mutex. Supports temporary release (Unlock /
// Lock) for park-and-retry and call-sink-unlocked patterns; the destructor
// releases only if currently held.
class QCORE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) QCORE_ACQUIRE(mu) : mu_(&mu), owned_(true) {
    mu_->Lock();
  }
  ~MutexLock() QCORE_RELEASE() {
    if (owned_) mu_->Unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() QCORE_RELEASE() {
    mu_->Unlock();
    owned_ = false;
  }
  void Lock() QCORE_ACQUIRE() {
    mu_->Lock();
    owned_ = true;
  }

 private:
  Mutex* mu_;
  bool owned_;
};

// Scoped shared (reader) lock over SharedMutex, with temporary release.
class QCORE_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu) QCORE_ACQUIRE_SHARED(mu)
      : mu_(&mu), owned_(true) {
    mu_->LockShared();
  }
  ~SharedLock() QCORE_RELEASE() {
    if (owned_) mu_->UnlockShared();
  }
  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

  void Unlock() QCORE_RELEASE() {
    mu_->UnlockShared();
    owned_ = false;
  }
  void Lock() QCORE_ACQUIRE_SHARED() {
    mu_->LockShared();
    owned_ = true;
  }

 private:
  SharedMutex* mu_;
  bool owned_;
};

// Scoped exclusive (writer) lock over SharedMutex.
class QCORE_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) QCORE_ACQUIRE(mu)
      : mu_(&mu), owned_(true) {
    mu_->Lock();
  }
  ~WriterLock() QCORE_RELEASE() {
    if (owned_) mu_->Unlock();
  }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

  void Unlock() QCORE_RELEASE() {
    mu_->Unlock();
    owned_ = false;
  }
  void Lock() QCORE_ACQUIRE() {
    mu_->Lock();
    owned_ = true;
  }

 private:
  SharedMutex* mu_;
  bool owned_;
};

// Condition variable bound to Mutex at each wait. Waits REQUIRE the mutex:
// the internal release/reacquire across the block is invisible to the
// analysis, matching the contract the caller observes (held before, held
// after, predicate evaluated under the lock).
//
// Predicate lambdas are analyzed as their own functions, so one that reads
// GUARDED_BY fields must open with `mu.AssertHeld();` — the wait really
// does hold the mutex at every predicate evaluation; the assertion just
// states a fact the analysis cannot derive across std internals.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) QCORE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) QCORE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk, std::move(pred));
    lk.release();
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(Mutex& mu,
                           const std::chrono::time_point<Clock, Duration>& tp)
      QCORE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    const std::cv_status s = cv_.wait_until(lk, tp);
    lk.release();
    return s;
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& d)
      QCORE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    const std::cv_status s = cv_.wait_for(lk, d);
    lk.release();
    return s;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace qcore

#endif  // QCORE_COMMON_MUTEX_H_
