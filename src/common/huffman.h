// Canonical Huffman coder over small integer alphabets. Used by the Deep
// Compression (DeepC) baseline, which compresses quantized weight codes with
// Huffman coding, and by the memory-footprint accounting in the benches.
#ifndef QCORE_COMMON_HUFFMAN_H_
#define QCORE_COMMON_HUFFMAN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace qcore {

// Encoded bitstream plus the code table needed to decode it.
struct HuffmanEncoded {
  // Symbol -> code length in bits (canonical Huffman is reconstructible from
  // lengths alone, but we keep the explicit codes for clarity/testing).
  std::map<int32_t, uint32_t> code_lengths;
  std::map<int32_t, uint64_t> codes;
  std::vector<uint8_t> bits;   // packed MSB-first
  uint64_t bit_count = 0;      // number of valid bits in `bits`
  uint64_t symbol_count = 0;   // number of encoded symbols

  // Payload size in bits (excluding the table).
  uint64_t PayloadBits() const { return bit_count; }
  // Total size in bits including a simple table encoding
  // (per distinct symbol: 32-bit symbol + 8-bit length).
  uint64_t TotalBits() const {
    return bit_count + 40ULL * code_lengths.size();
  }
};

class HuffmanCoder {
 public:
  // Builds codes from symbol frequencies in `symbols` and encodes them.
  // Handles the degenerate single-symbol alphabet (1-bit codes).
  // Fails on an empty input.
  static Result<HuffmanEncoded> Encode(const std::vector<int32_t>& symbols);

  // Inverse of Encode. Fails on a corrupt stream.
  static Result<std::vector<int32_t>> Decode(const HuffmanEncoded& encoded);

  // Shannon lower bound in bits for the given symbol stream (for tests and
  // compression-ratio reporting).
  static double EntropyBits(const std::vector<int32_t>& symbols);
};

}  // namespace qcore

#endif  // QCORE_COMMON_HUFFMAN_H_
