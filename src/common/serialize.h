// Little binary serialization layer: length-prefixed, typed records with a
// magic header. Used to persist trained models, quantized code tables, and
// QCore subsets so that "server-side preparation" and "edge deployment" can
// run as separate processes (see examples/edge_deployment_sim.cc).
#ifndef QCORE_COMMON_SERIALIZE_H_
#define QCORE_COMMON_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace qcore {

// Append-only binary buffer writer.
class BinaryWriter {
 public:
  void WriteU32(uint32_t v);
  void WriteI32(int32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteString(const std::string& s);
  void WriteFloats(const std::vector<float>& v);
  // Pointer form for callers whose storage is not a plain std::vector<float>
  // (e.g. Tensor's cache-line-aligned buffer).
  void WriteFloats(const float* data, size_t n);
  void WriteInts(const std::vector<int32_t>& v);
  void WriteInt64s(const std::vector<int64_t>& v);

  const std::vector<uint8_t>& buffer() const { return buffer_; }

  // Moves the buffer out, leaving the writer empty. For callers that keep
  // the serialized bytes (e.g. the serving snapshot registry) and must not
  // pay a full copy on the hot path.
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }

  // Writes the buffer to a file, prefixed with magic + format version.
  Status ToFile(const std::string& path) const;

 private:
  void Raw(const void* data, size_t n);
  std::vector<uint8_t> buffer_;
};

// Sequential reader over a binary buffer; every accessor fails cleanly on
// truncation instead of reading past the end.
class BinaryReader {
 public:
  explicit BinaryReader(std::vector<uint8_t> buffer)
      : buffer_(std::move(buffer)) {}

  // Reads a file written by BinaryWriter::ToFile and validates magic/version.
  static Result<BinaryReader> FromFile(const std::string& path);

  Result<uint32_t> ReadU32();
  Result<int32_t> ReadI32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<float> ReadF32();
  Result<double> ReadF64();
  Result<std::string> ReadString();
  Result<std::vector<float>> ReadFloats();
  Result<std::vector<int32_t>> ReadInts();
  Result<std::vector<int64_t>> ReadInt64s();

  bool AtEnd() const { return pos_ == buffer_.size(); }

 private:
  Status Raw(void* out, size_t n);
  std::vector<uint8_t> buffer_;
  size_t pos_ = 0;
};

}  // namespace qcore

#endif  // QCORE_COMMON_SERIALIZE_H_
