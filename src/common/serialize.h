// Little binary serialization layer: length-prefixed, typed records with a
// magic header. Used to persist trained models, quantized code tables, and
// QCore subsets so that "server-side preparation" and "edge deployment" can
// run as separate processes (see examples/edge_deployment_sim.cc).
#ifndef QCORE_COMMON_SERIALIZE_H_
#define QCORE_COMMON_SERIALIZE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace qcore {

// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `n` bytes.
// `seed` chains partial checksums: Crc32(b, n2, Crc32(a, n1)) equals the
// checksum of a||b. Used to frame write-ahead-log records so a torn or
// bit-rotted record is detected on replay.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

// Framed records: [u32 payload_size][u32 crc32(payload)][payload bytes].
// The frame is the unit of the snapshot WAL (serving/snapshot_store) and of
// registry deltas shipped across process boundaries — length-prefixed so a
// reader can skip records it does not understand, checksummed so torn tails
// and corruption are detected instead of silently mis-parsed.
void AppendFramedRecord(const std::vector<uint8_t>& payload,
                        std::vector<uint8_t>* out);

// Reads the frame starting at `*pos` in `buf` and advances `*pos` past it.
// Returns Corruption — with `*pos` untouched — when the bytes at `*pos` do
// not hold a complete frame (torn tail) or the payload fails its checksum,
// so a log replayer can truncate at the exact failure offset.
Result<std::vector<uint8_t>> ReadFramedRecord(const std::vector<uint8_t>& buf,
                                              size_t* pos);

// Append-only binary buffer writer.
class BinaryWriter {
 public:
  void WriteU32(uint32_t v);
  void WriteI32(int32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteString(const std::string& s);
  void WriteFloats(const std::vector<float>& v);
  // Pointer form for callers whose storage is not a plain std::vector<float>
  // (e.g. Tensor's cache-line-aligned buffer).
  void WriteFloats(const float* data, size_t n);
  void WriteInts(const std::vector<int32_t>& v);
  void WriteInt64s(const std::vector<int64_t>& v);
  // Length-prefixed opaque byte blob (e.g. a serialized model snapshot
  // nested inside a WAL record or registry delta).
  void WriteBytes(const std::vector<uint8_t>& v);

  const std::vector<uint8_t>& buffer() const { return buffer_; }

  // Moves the buffer out, leaving the writer empty. For callers that keep
  // the serialized bytes (e.g. the serving snapshot registry) and must not
  // pay a full copy on the hot path.
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }

  // Writes the buffer to a file, prefixed with magic + format version.
  Status ToFile(const std::string& path) const;

 private:
  void Raw(const void* data, size_t n);
  std::vector<uint8_t> buffer_;
};

// Sequential reader over a binary buffer; every accessor fails cleanly on
// truncation instead of reading past the end.
class BinaryReader {
 public:
  explicit BinaryReader(std::vector<uint8_t> buffer)
      : buffer_(std::move(buffer)) {}

  // Reads a file written by BinaryWriter::ToFile and validates magic/version.
  static Result<BinaryReader> FromFile(const std::string& path);

  Result<uint32_t> ReadU32();
  Result<int32_t> ReadI32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<float> ReadF32();
  Result<double> ReadF64();
  Result<std::string> ReadString();
  Result<std::vector<float>> ReadFloats();
  Result<std::vector<int32_t>> ReadInts();
  Result<std::vector<int64_t>> ReadInt64s();
  Result<std::vector<uint8_t>> ReadBytes();

  bool AtEnd() const { return pos_ == buffer_.size(); }

 private:
  Status Raw(void* out, size_t n);
  std::vector<uint8_t> buffer_;
  size_t pos_ = 0;
};

}  // namespace qcore

#endif  // QCORE_COMMON_SERIALIZE_H_
