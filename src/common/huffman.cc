#include "common/huffman.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace qcore {

namespace {

struct Node {
  uint64_t freq;
  int32_t symbol;   // valid only for leaves
  int left = -1;    // index into node pool
  int right = -1;
  bool leaf = false;
};

// Walks the tree assigning depths; iterative to avoid deep recursion on
// pathological (highly skewed) frequency distributions.
void AssignDepths(const std::vector<Node>& pool, int root,
                  std::map<int32_t, uint32_t>* lengths) {
  std::vector<std::pair<int, uint32_t>> stack = {{root, 0}};
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& n = pool[idx];
    if (n.leaf) {
      (*lengths)[n.symbol] = std::max<uint32_t>(depth, 1);
      continue;
    }
    stack.push_back({n.left, depth + 1});
    stack.push_back({n.right, depth + 1});
  }
}

// Canonical code assignment: sort by (length, symbol) and count upward.
std::map<int32_t, uint64_t> CanonicalCodes(
    const std::map<int32_t, uint32_t>& lengths) {
  std::vector<std::pair<int32_t, uint32_t>> order(lengths.begin(),
                                                  lengths.end());
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  std::map<int32_t, uint64_t> codes;
  uint64_t code = 0;
  uint32_t prev_len = 0;
  for (const auto& [symbol, len] : order) {
    code <<= (len - prev_len);
    codes[symbol] = code;
    ++code;
    prev_len = len;
  }
  return codes;
}

void AppendBits(std::vector<uint8_t>* out, uint64_t* bit_count, uint64_t code,
                uint32_t len) {
  for (uint32_t i = len; i-- > 0;) {
    const uint64_t bit = (code >> i) & 1;
    const uint64_t pos = *bit_count;
    if (pos % 8 == 0) out->push_back(0);
    if (bit) out->back() |= static_cast<uint8_t>(1u << (7 - pos % 8));
    ++*bit_count;
  }
}

}  // namespace

Result<HuffmanEncoded> HuffmanCoder::Encode(
    const std::vector<int32_t>& symbols) {
  if (symbols.empty()) {
    return Status::InvalidArgument("Huffman: empty symbol stream");
  }
  std::map<int32_t, uint64_t> freq;
  for (int32_t s : symbols) ++freq[s];

  HuffmanEncoded enc;
  enc.symbol_count = symbols.size();

  if (freq.size() == 1) {
    // Degenerate alphabet: one symbol, emit a 1-bit code per occurrence.
    const int32_t only = freq.begin()->first;
    enc.code_lengths[only] = 1;
    enc.codes[only] = 0;
    for (size_t i = 0; i < symbols.size(); ++i) {
      AppendBits(&enc.bits, &enc.bit_count, 0, 1);
    }
    return enc;
  }

  // Build the Huffman tree with a min-heap over (freq, tie-break id).
  std::vector<Node> pool;
  pool.reserve(2 * freq.size());
  using HeapItem = std::pair<uint64_t, int>;  // (freq, pool index)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (const auto& [symbol, f] : freq) {
    pool.push_back({f, symbol, -1, -1, true});
    heap.push({f, static_cast<int>(pool.size()) - 1});
  }
  while (heap.size() > 1) {
    auto [fa, a] = heap.top();
    heap.pop();
    auto [fb, b] = heap.top();
    heap.pop();
    pool.push_back({fa + fb, 0, a, b, false});
    heap.push({fa + fb, static_cast<int>(pool.size()) - 1});
  }
  const int root = heap.top().second;

  AssignDepths(pool, root, &enc.code_lengths);
  enc.codes = CanonicalCodes(enc.code_lengths);

  for (int32_t s : symbols) {
    AppendBits(&enc.bits, &enc.bit_count, enc.codes.at(s),
               enc.code_lengths.at(s));
  }
  return enc;
}

Result<std::vector<int32_t>> HuffmanCoder::Decode(
    const HuffmanEncoded& encoded) {
  // Build (code, length) -> symbol lookup. Alphabets here are tiny (at most
  // 2^bits quantization levels), so a map walk per bit is fine.
  std::map<std::pair<uint64_t, uint32_t>, int32_t> decode_map;
  for (const auto& [symbol, len] : encoded.code_lengths) {
    decode_map[{encoded.codes.at(symbol), len}] = symbol;
  }

  std::vector<int32_t> out;
  out.reserve(encoded.symbol_count);
  uint64_t code = 0;
  uint32_t len = 0;
  for (uint64_t pos = 0; pos < encoded.bit_count; ++pos) {
    const uint8_t byte = encoded.bits[pos / 8];
    const uint64_t bit = (byte >> (7 - pos % 8)) & 1;
    code = (code << 1) | bit;
    ++len;
    auto it = decode_map.find({code, len});
    if (it != decode_map.end()) {
      out.push_back(it->second);
      code = 0;
      len = 0;
      if (out.size() == encoded.symbol_count) break;
    }
    if (len > 63) {
      return Status::Corruption("Huffman: no code matched within 63 bits");
    }
  }
  if (out.size() != encoded.symbol_count) {
    return Status::Corruption("Huffman: stream ended mid-symbol");
  }
  return out;
}

double HuffmanCoder::EntropyBits(const std::vector<int32_t>& symbols) {
  if (symbols.empty()) return 0.0;
  std::map<int32_t, uint64_t> freq;
  for (int32_t s : symbols) ++freq[s];
  const double n = static_cast<double>(symbols.size());
  double bits = 0.0;
  for (const auto& [symbol, f] : freq) {
    (void)symbol;
    const double p = static_cast<double>(f) / n;
    bits += -static_cast<double>(f) * std::log2(p);
  }
  return bits;
}

}  // namespace qcore
