#include "bench/harness.h"

#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.h"
#include "core/quant_miss.h"
#include "quant/ste_calibrator.h"
#include "runtime/parallel_for.h"
#include "tensor/kernels.h"

namespace qcore::bench {

bool FastMode() {
  const char* v = std::getenv("QCORE_FAST");
  return v != nullptr && v[0] == '1';
}

void ReportRunEnvironment() {
  std::printf("[bench-env] gemm_threads=%d parallel_workers=%d fast=%d\n",
              kernels::gemm_threads(), DefaultParallelWorkers(),
              FastMode() ? 1 : 0);
}

std::vector<int> BenchBits() {
  if (FastMode()) return {4};
  return {2, 4, 8};
}

BenchConfig BenchConfig::TimeSeries() {
  BenchConfig c;
  c.fp_train = {.epochs = 15,
                .batch_size = 32,
                .sgd = {.lr = 0.02f, .momentum = 0.9f, .weight_decay = 0.0f},
                .on_epoch = nullptr};
  c.build.size = 30;
  c.build.train = c.fp_train;
  c.bf_train.ste.epochs = 30;
  c.bf_train.ste.batch_size = 16;
  c.bf_train.ste.sgd.lr = 0.01f;
  c.bf_train.augment_episodes = 3;
  c.baseline_initial.epochs = 15;
  c.baseline_initial.batch_size = 32;
  c.baseline_initial.sgd.lr = 0.01f;
  // Scaled from the paper's 200-epoch BP protocol to keep bench wall time
  // tractable; baselines are converged at this budget (Fig. 9(a)).
  c.learner.epochs = 30;
  c.learner.sgd.lr = 0.02f;
  c.learner.buffer_capacity = 30;
  return c;
}

BenchConfig BenchConfig::Image() {
  BenchConfig c = BenchConfig::TimeSeries();
  c.fp_train.epochs = 12;
  c.build.train = c.fp_train;
  c.bf_train.ste.epochs = 20;
  c.learner.epochs = 15;  // image convs are ~10x costlier per example
  // Image domains have 200 train / 80 test examples; 10 stream batches
  // would leave 8-example test slices. 5 batches keep slices meaningful.
  c.stream_batches = 5;
  return c;
}

DomainData LoadHar(const HarSpec& spec, int subject) {
  HarDomain dom = MakeHarDomain(spec, subject);
  return {std::move(dom.train), std::move(dom.test)};
}

DomainData LoadImage(const ImageSpec& spec, int domain) {
  ImageDomain dom = MakeImageDomain(spec, domain);
  return {std::move(dom.train), std::move(dom.test)};
}

ExperimentLab::ExperimentLab(std::string model_name, DomainData source,
                             BenchConfig config)
    : model_name_(std::move(model_name)),
      source_(std::move(source)),
      config_(config),
      time_series_(source_.train.x().ndim() == 3) {
  Rng rng(config_.seed);
  fp_model_ = MakeUntrained(&rng);
  QCoreBuildOptions build_opts = config_.build;
  build_ = BuildQCore(fp_model_.get(), source_.train, build_opts, &rng);
}

std::unique_ptr<Sequential> ExperimentLab::MakeUntrained(Rng* rng) const {
  const int classes = source_.train.num_classes();
  if (time_series_) {
    return MakeTimeSeriesModel(model_name_,
                               static_cast<int>(source_.train.x().dim(1)),
                               classes, rng);
  }
  return MakeImageModel(model_name_,
                        static_cast<int>(source_.train.x().dim(1)),
                        static_cast<int>(source_.train.x().dim(2)),
                        static_cast<int>(source_.train.x().dim(3)), classes,
                        rng);
}

std::unique_ptr<QuantizedModel> ExperimentLab::CalibratedBaselineModel(
    int bits) {
  auto it = calibrated_.find(bits);
  if (it == calibrated_.end()) {
    Rng rng(config_.seed ^ (0x51u + bits));
    auto qm = std::make_unique<QuantizedModel>(*fp_model_, bits);
    SteCalibrate(qm.get(), source_.train.x(), source_.train.labels(),
                 config_.baseline_initial, &rng);
    it = calibrated_.emplace(bits, std::move(qm)).first;
  }
  return it->second->Clone();
}

ContinualResult ExperimentLab::StreamQCore(std::unique_ptr<QuantizedModel> qm,
                                           BitFlipNet* bf, Dataset qcore,
                                           const DomainData& target,
                                           const ContinualOptions& opts,
                                           Rng* rng) const {
  std::vector<Dataset> batches =
      SplitIntoStreamBatches(target.train, config_.stream_batches, rng);
  std::vector<Dataset> slices =
      SplitIntoStreamBatches(target.test, config_.stream_batches, rng);
  ContinualDriver driver(qm.get(), bf, std::move(qcore), opts, rng);
  ContinualResult result;
  result.per_batch = driver.RunStream(batches, slices);
  result.avg_accuracy = AverageAccuracy(result.per_batch);
  double total = 0.0;
  for (const auto& s : result.per_batch) total += s.calibration_seconds;
  result.per_calib_seconds = total / result.per_batch.size();
  return result;
}

ContinualResult ExperimentLab::RunQCore(const DomainData& target, int bits) {
  return RunQCoreAblation(target, bits, /*use_bitflip=*/true,
                          /*use_update=*/true);
}

ContinualResult ExperimentLab::RunQCoreAblation(const DomainData& target,
                                                int bits, bool use_bitflip,
                                                bool use_update) {
  Rng rng(config_.seed ^ (0xABCDu * (bits + 1)));
  auto qm = std::make_unique<QuantizedModel>(*fp_model_, bits);
  BitFlipNet bf = TrainBitFlipNet(qm.get(), build_.qcore, config_.bf_train,
                                  &rng);
  qm->DropShadows();
  ContinualOptions opts = config_.continual;
  opts.use_bitflip = use_bitflip;
  opts.use_qcore_update = use_update;
  return StreamQCore(std::move(qm), use_bitflip ? &bf : nullptr,
                     build_.qcore, target, opts, &rng);
}

ContinualResult ExperimentLab::RunWithSubset(const Dataset& subset,
                                             const DomainData& target,
                                             int bits) {
  Rng rng(config_.seed ^ (0x5E7u * (bits + 1)));
  auto qm = std::make_unique<QuantizedModel>(*fp_model_, bits);
  BitFlipNet bf = TrainBitFlipNet(qm.get(), subset, config_.bf_train, &rng);
  qm->DropShadows();
  return StreamQCore(std::move(qm), &bf, subset, target, config_.continual,
                     &rng);
}

ContinualResult ExperimentLab::RunQCoreWithSize(const DomainData& target,
                                                int bits, int qcore_size) {
  Rng rng(config_.seed ^ (0x512Eu * (bits + 1)) ^ qcore_size);
  std::vector<int> indices =
      SampleByMissDistribution(build_.combined_misses, qcore_size, &rng);
  return RunWithSubset(source_.train.Subset(indices), target, bits);
}

ContinualResult ExperimentLab::RunBaseline(const std::string& method,
                                           const DomainData& target,
                                           int bits) {
  return RunBaseline(method, target, bits, config_.learner);
}

ContinualResult ExperimentLab::RunBaseline(const std::string& method,
                                           const DomainData& target, int bits,
                                           const LearnerOptions& options) {
  Rng rng(config_.seed ^ (0xBA5Eu * (bits + 1)));
  std::unique_ptr<QuantizedModel> qm = CalibratedBaselineModel(bits);
  std::unique_ptr<ContinualLearner> learner =
      MakeLearner(method, qm.get(), options, &rng);

  std::vector<Dataset> batches =
      SplitIntoStreamBatches(target.train, config_.stream_batches, &rng);
  std::vector<Dataset> slices =
      SplitIntoStreamBatches(target.test, config_.stream_batches, &rng);

  ContinualResult result;
  double total_acc = 0.0, total_time = 0.0;
  for (int b = 0; b < config_.stream_batches; ++b) {
    Stopwatch watch;
    learner->ObserveBatch(batches[static_cast<size_t>(b)]);
    const double seconds = watch.ElapsedSeconds();
    BatchStats stats;
    stats.calibration_seconds = seconds;
    stats.accuracy = learner->Evaluate(slices[static_cast<size_t>(b)]);
    result.per_batch.push_back(stats);
    total_acc += stats.accuracy;
    total_time += seconds;
  }
  result.avg_accuracy =
      static_cast<float>(total_acc / config_.stream_batches);
  result.per_calib_seconds = total_time / config_.stream_batches;
  return result;
}

}  // namespace qcore::bench
