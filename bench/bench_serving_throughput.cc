// Fleet serving throughput: one server-prepared model, a fleet of simulated
// devices each streaming target-domain batches with interleaved inference
// traffic, served through the FleetBackend interface. Reports the
// thread-scaling curve of a single FleetServer (aggregate
// calibration+inference throughput), a batched-vs-unbatched comparison at
// fixed thread count, and a shard-scaling section (ShardedFleetServer at
// 1/2/4 shards — independent per-shard pools and batchers behind the
// consistent-hash router). Every configuration is verified bit-identical to
// the single-threaded pipeline (ContinualDriver driven directly with the
// same per-device seed) — thread counts, batching, and shard counts must
// change wall-clock only, never a result or the per-device delivery order.
//
// Each request carries a simulated device-link RTT (the
// FleetServerOptions::simulated_device_rtt_ms fleet knob): serving a fleet
// is compute + per-device network wait, and the pool's win is overlapping
// the two across sessions. A batched inference group pays the link ONCE for
// the whole group; a second shard brings a second pool whose workers
// overlap independently — which is why both curves are meaningful on any
// host, including single-core CI runners.
//
// QCORE_FAST=1 shrinks the fleet; QCORE_BENCH_THREADS caps the curve;
// QCORE_BENCH_RTT_MS overrides the simulated link RTT (default 25);
// QCORE_BENCH_JSON=<path> writes the macro serving numbers (tasks/s, p99,
// traced-vs-untraced throughput) as JSON for bench/check_perf_regression.py.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/bitflip.h"
#include "core/continual.h"
#include "core/qcore_builder.h"
#include "data/har_generator.h"
#include "models/model_zoo.h"
#include "obs/trace.h"
#include "serving/backend.h"
#include "serving/router.h"
#include "serving/server.h"
#include "serving/snapshot.h"
#include "serving/snapshot_store.h"
#include "tensor/kernels.h"

using namespace qcore;
using namespace qcore::bench;

namespace {

constexpr uint64_t kFleetSeed = 20240422;
constexpr int kBurst = 4;  // inference requests per device per stream batch

struct FleetSetup {
  HarSpec spec;
  Dataset qcore;
  std::unique_ptr<QuantizedModel> base;
  std::unique_ptr<BitFlipNet> bf;
  // Per device: stream batches and matching test slices.
  std::vector<std::string> device_ids;
  std::vector<std::vector<Dataset>> batches;
  std::vector<std::vector<Dataset>> slices;
  // Distinct inference inputs; request k uses probes[k % size], so any
  // scatter mixup or delivery reordering shows up as a prediction diff.
  std::vector<Tensor> probes;
};

FleetSetup PrepareFleet(int num_devices, int batches_per_device) {
  FleetSetup setup;
  setup.spec = HarSpec::Usc();
  setup.spec.num_classes = 6;
  setup.spec.channels = 3;
  setup.spec.length = 32;
  setup.spec.train_per_class = 10;
  setup.spec.test_per_class = 4;

  HarDomain source = MakeHarDomain(setup.spec, 0);
  Rng rng(kFleetSeed);
  auto model =
      MakeOmniScaleCnn(setup.spec.channels, setup.spec.num_classes, &rng);
  QCoreBuildOptions build;
  build.size = 15;
  build.train.epochs = 8;
  build.train.sgd.lr = 0.03f;
  auto built = BuildQCore(model.get(), source.train, build, &rng);
  setup.qcore = built.qcore;

  setup.base = std::make_unique<QuantizedModel>(*model, 4);
  BitFlipTrainOptions bft;
  bft.ste.epochs = 8;
  bft.ste.batch_size = 16;
  bft.augment_episodes = 1;
  setup.bf = std::make_unique<BitFlipNet>(
      TrainBitFlipNet(setup.base.get(), setup.qcore, bft, &rng));
  setup.base->DropShadows();

  // Each device streams its own subject's shifted domain.
  for (int d = 0; d < num_devices; ++d) {
    const int subject = 1 + d % (setup.spec.num_subjects - 1);
    HarDomain target = MakeHarDomain(setup.spec, subject);
    Rng split_rng(kFleetSeed ^ static_cast<uint64_t>(d + 1));
    setup.device_ids.push_back("device-" + std::to_string(d));
    setup.batches.push_back(
        SplitIntoStreamBatches(target.train, batches_per_device, &split_rng));
    setup.slices.push_back(
        SplitIntoStreamBatches(target.test, batches_per_device, &split_rng));
    if (d == 0) {
      for (int p = 0; p < 2 * kBurst; ++p) {
        setup.probes.push_back(target.test.x().GatherRows(
            {p % static_cast<int>(target.test.size())}));
      }
    }
  }
  return setup;
}

ContinualOptions BenchContinualOptions() {
  ContinualOptions opts;
  opts.iterations = 1;
  return opts;
}

double BenchRttMs() {
  if (const char* env = std::getenv("QCORE_BENCH_RTT_MS")) {
    return std::atof(env);
  }
  return 25.0;
}

struct RunResult {
  double wall_seconds = 0.0;
  uint64_t calibrations = 0;
  uint64_t inferences = 0;
  double mean_batch_occupancy = 0.0;
  double p99_inference_seconds = 0.0;
  std::vector<std::vector<std::vector<int32_t>>> final_codes;  // per device
  // Per device, every inference result in submission order — the delivery-
  // order regression signal for the batched path.
  std::vector<std::vector<std::vector<int>>> predictions;
};

FleetServerOptions MakeOptions(int threads, int max_batch) {
  FleetServerOptions opts;
  opts.num_threads = threads;
  opts.continual = BenchContinualOptions();
  opts.seed = kFleetSeed;
  opts.simulated_device_rtt_ms = BenchRttMs();
  if (max_batch > 0) {
    opts.enable_batching = true;
    opts.batching.max_batch = max_batch;
    opts.batching.max_delay_us = 500.0;
  }
  return opts;
}

// Drives the standard workload through any backend: per device and stream
// batch, a burst of inference traffic, a calibration batch, one trailing
// inference — the arrival pattern that gives a batcher something to
// coalesce without starving calibration.
RunResult RunFleet(const FleetSetup& setup, FleetBackend* server) {
  for (const auto& id : setup.device_ids) {
    server->RegisterDevice(id, setup.qcore);
  }

  RunResult result;
  std::vector<std::vector<std::future<InferenceResult>>> futures(
      setup.device_ids.size());
  Stopwatch timer;
  for (size_t d = 0; d < setup.device_ids.size(); ++d) {
    const std::string& id = setup.device_ids[d];
    for (size_t b = 0; b < setup.batches[d].size(); ++b) {
      for (int p = 0; p < kBurst; ++p) {
        futures[d].push_back(server->SubmitInference(
            id, setup.probes[(b + p) % setup.probes.size()]));
      }
      server->SubmitCalibration(id, setup.batches[d][b],
                                setup.slices[d][b]);
      futures[d].push_back(server->SubmitInference(
          id, setup.probes[b % setup.probes.size()]));
    }
  }
  server->Drain();
  result.wall_seconds = timer.ElapsedSeconds();
  result.calibrations = server->metrics().calibration_batches();
  result.inferences = server->metrics().inference_requests();
  result.mean_batch_occupancy = server->metrics().batch_occupancy().mean();
  result.p99_inference_seconds =
      server->metrics().inference_latency().QuantileSeconds(0.99);
  for (size_t d = 0; d < setup.device_ids.size(); ++d) {
    server->WithSessionQuiesced(
        setup.device_ids[d], [&](CalibrationSession& session) {
          result.final_codes.push_back(session.model()->AllCodes());
        });
    result.predictions.emplace_back();
    for (auto& fu : futures[d]) {
      result.predictions.back().push_back(fu.get().predictions);
    }
  }
  return result;
}

RunResult RunSingle(const FleetSetup& setup, int threads, int max_batch) {
  FleetServer server(*setup.base, *setup.bf, MakeOptions(threads, max_batch));
  return RunFleet(setup, &server);
}

RunResult RunSharded(const FleetSetup& setup, int shards,
                     int threads_per_shard, int max_batch) {
  ShardedFleetServerOptions opts;
  opts.num_shards = shards;
  opts.shard = MakeOptions(threads_per_shard, max_batch);
  ShardedFleetServer server(*setup.base, *setup.bf, opts);
  return RunFleet(setup, &server);
}

// The single-threaded pipeline reference: ContinualDriver driven directly,
// seeded exactly like the device's serving session.
std::vector<std::vector<std::vector<int32_t>>> RunPipelineReference(
    const FleetSetup& setup) {
  std::vector<std::vector<std::vector<int32_t>>> codes;
  for (size_t d = 0; d < setup.device_ids.size(); ++d) {
    auto model = setup.base->Clone();
    BitFlipNet bf = setup.bf->Clone();
    Rng rng(DeviceSeed(kFleetSeed, setup.device_ids[d]));
    ContinualDriver driver(model.get(), &bf, setup.qcore,
                           BenchContinualOptions(), &rng);
    driver.RunStream(setup.batches[d], setup.slices[d]);
    codes.push_back(model->AllCodes());
  }
  return codes;
}

double TasksPerSec(const RunResult& r) {
  return static_cast<double>(r.calibrations + r.inferences) /
         r.wall_seconds;
}

}  // namespace

int main() {
  const int num_devices = FastMode() ? 4 : 8;
  const int batches_per_device = FastMode() ? 2 : 3;
  int max_threads = 4;
  if (const char* env = std::getenv("QCORE_BENCH_THREADS")) {
    max_threads = std::max(1, std::atoi(env));
  }

  std::printf("== Fleet serving throughput: %d devices x %d stream batches "
              "(4-bit, USC-like HAR, simulated link RTT %.0fms, burst %d) "
              "==\n\n",
              num_devices, batches_per_device, BenchRttMs(), kBurst);
  ReportRunEnvironment();
  FleetSetup setup = PrepareFleet(num_devices, batches_per_device);

  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  TablePrinter table({"Threads", "Wall (s)", "Calib/s", "Infer/s",
                      "Tasks/s", "Speedup"});
  std::vector<double> throughputs;
  double base_tasks_per_sec = 0.0;
  RunResult first_run;
  bool identical_across_threads = true;

  for (int threads : thread_counts) {
    RunResult r = RunSingle(setup, threads, /*max_batch=*/0);
    const double tasks_per_sec = TasksPerSec(r);
    throughputs.push_back(tasks_per_sec);
    if (base_tasks_per_sec == 0.0) base_tasks_per_sec = tasks_per_sec;
    if (first_run.final_codes.empty()) {
      first_run = std::move(r);
    } else if (r.final_codes != first_run.final_codes ||
               r.predictions != first_run.predictions) {
      identical_across_threads = false;
    }
    table.AddRow({std::to_string(threads),
                  TablePrinter::Num(r.wall_seconds, 3),
                  TablePrinter::Num(static_cast<double>(r.calibrations) /
                                        r.wall_seconds, 1),
                  TablePrinter::Num(static_cast<double>(r.inferences) /
                                        r.wall_seconds, 1),
                  TablePrinter::Num(tasks_per_sec, 1),
                  TablePrinter::Num(tasks_per_sec / base_tasks_per_sec, 2)});
  }
  table.Print();

  bool monotonic = true;
  for (size_t i = 1; i < throughputs.size() && thread_counts[i] <= 4; ++i) {
    if (throughputs[i] <= throughputs[i - 1]) monotonic = false;
  }
  std::printf("\nthroughput monotonically increasing 1->4 threads: %s\n",
              monotonic ? "yes" : "NO");

  std::printf("per-session results identical across thread counts: %s\n",
              identical_across_threads ? "yes" : "NO");

  const auto reference = RunPipelineReference(setup);
  std::printf("bit-identical to single-threaded pipeline:           %s\n",
              first_run.final_codes == reference ? "yes" : "NO");

  // ---- batched vs unbatched at fixed thread count -----------------------
  const int cmp_threads = std::min(4, max_threads);
  std::printf("\n== Inference batching at %d threads ==\n\n", cmp_threads);
  TablePrinter btable({"MaxBatch", "Wall (s)", "Tasks/s", "Occupancy",
                       "Speedup"});
  RunResult unbatched = RunSingle(setup, cmp_threads, /*max_batch=*/0);
  const double unbatched_tps = TasksPerSec(unbatched);
  btable.AddRow({"off", TablePrinter::Num(unbatched.wall_seconds, 3),
                 TablePrinter::Num(unbatched_tps, 1),
                 TablePrinter::Num(unbatched.mean_batch_occupancy, 2),
                 TablePrinter::Num(1.0, 2)});
  bool batched_identical = true;
  bool batched_ordered = true;
  double batched4_tps = 0.0;
  for (int max_batch : {2, 4, 8}) {
    RunResult r = RunSingle(setup, cmp_threads, max_batch);
    const double tps = TasksPerSec(r);
    if (max_batch == 4) batched4_tps = tps;
    // Bit-identity: the batched path must change neither the calibrated
    // codes nor any prediction. Prediction-sequence equality doubles as
    // the per-device delivery-order regression check — a reorder would
    // surface as a mismatched sequence of per-request results.
    if (r.final_codes != unbatched.final_codes ||
        r.final_codes != reference) {
      batched_identical = false;
    }
    if (r.predictions != unbatched.predictions) batched_ordered = false;
    btable.AddRow({std::to_string(max_batch),
                   TablePrinter::Num(r.wall_seconds, 3),
                   TablePrinter::Num(tps, 1),
                   TablePrinter::Num(r.mean_batch_occupancy, 2),
                   TablePrinter::Num(tps / unbatched_tps, 2)});
  }
  btable.Print();

  const bool batched_faster = batched4_tps > unbatched_tps;
  std::printf("\nbatched codes bit-identical to unbatched + pipeline: %s\n",
              batched_identical ? "yes" : "NO");
  std::printf("batched per-device delivery order preserved:         %s\n",
              batched_ordered ? "yes" : "NO");
  std::printf("batching (max_batch=4) faster than unbatched:        %s\n",
              batched_faster ? "yes" : "NO");

  // ---- shard scaling: independent per-shard pools -----------------------
  // Fixed threads per shard, growing shard count: total workers grow with
  // the fleet of pools, and every pool overlaps its own devices' link RTT
  // independently (no shared mutex or queue between shards). 1 shard vs
  // the plain FleetServer also measures the router's dispatch overhead
  // (should be noise).
  const int shard_threads = std::max(1, std::min(2, max_threads));
  std::printf("\n== Shard scaling at %d threads per shard ==\n\n",
              shard_threads);
  TablePrinter stable({"Shards", "Wall (s)", "Tasks/s", "Speedup"});
  RunResult shard_base = RunSingle(setup, shard_threads, /*max_batch=*/0);
  const double shard_base_tps = TasksPerSec(shard_base);
  stable.AddRow({"unsharded", TablePrinter::Num(shard_base.wall_seconds, 3),
                 TablePrinter::Num(shard_base_tps, 1),
                 TablePrinter::Num(1.0, 2)});
  bool sharded_identical = true;
  bool sharded_ordered = true;
  double sharded_tps_max = 0.0;
  for (int shards : {1, 2, 4}) {
    RunResult r = RunSharded(setup, shards, shard_threads, /*max_batch=*/0);
    const double tps = TasksPerSec(r);
    sharded_tps_max = std::max(sharded_tps_max, tps);
    // Exit-code-enforced bit-identity, exactly like the sections above:
    // shard count must never change codes or per-device delivery order.
    if (r.final_codes != shard_base.final_codes ||
        r.final_codes != reference) {
      sharded_identical = false;
    }
    if (r.predictions != shard_base.predictions) sharded_ordered = false;
    stable.AddRow({std::to_string(shards),
                   TablePrinter::Num(r.wall_seconds, 3),
                   TablePrinter::Num(tps, 1),
                   TablePrinter::Num(tps / shard_base_tps, 2)});
  }
  stable.Print();

  const bool sharding_scales = sharded_tps_max > shard_base_tps;
  std::printf("\nsharded codes bit-identical to unsharded + pipeline: %s\n",
              sharded_identical ? "yes" : "NO");
  std::printf("sharded per-device delivery order preserved:         %s\n",
              sharded_ordered ? "yes" : "NO");
  std::printf("best sharded throughput beats unsharded:             %s\n",
              sharding_scales ? "yes" : "NO");

  // ---- durable snapshot publish overhead --------------------------------
  // Same Publish stream into three registry configurations: in-memory, a
  // CRC-framed WAL without fsync (survives process death), and the WAL
  // with fsync-on-publish (survives power loss). The delta between rows is
  // the price of each durability level; the recovered-bit-identical line
  // is exit-code-enforced like every other correctness property here.
  const int num_publishes = FastMode() ? 32 : 128;
  const double blob_kib = [&]() {
    SnapshotRegistry probe;
    probe.Publish(*setup.base, "probe", 0);
    return static_cast<double>(probe.Latest()->bytes.size()) / 1024.0;
  }();
  std::printf("\n== Durable snapshot publish: %d publishes of a %.1f KiB "
              "model blob ==\n\n",
              num_publishes, blob_kib);
  auto publish_stream = [&](SnapshotRegistry* registry) {
    Stopwatch timer;
    for (int i = 0; i < num_publishes; ++i) {
      registry->Publish(*setup.base,
                        "bench-dev-" + std::to_string(i % num_devices),
                        static_cast<uint64_t>(i));
    }
    return timer.ElapsedSeconds();
  };
  const std::string wal_path = "/tmp/qcore_bench_snapshots.wal";
  TablePrinter dtable({"Store", "Wall (s)", "Publish/s", "vs memory"});
  SnapshotRegistry memory_registry;
  const double memory_seconds = publish_stream(&memory_registry);
  dtable.AddRow({"memory", TablePrinter::Num(memory_seconds, 3),
                 TablePrinter::Num(num_publishes / memory_seconds, 1),
                 TablePrinter::Num(1.0, 2)});
  bool durable_recovers = true;
  for (bool fsync : {false, true}) {
    std::remove(wal_path.c_str());
    double seconds = 0.0;
    {
      DurableSnapshotStoreOptions dopts;
      dopts.path = wal_path;
      dopts.fsync_on_publish = fsync;
      auto store = DurableSnapshotStore::Open(std::move(dopts));
      if (!store.ok()) {
        std::printf("WAL open failed: %s\n",
                    store.status().ToString().c_str());
        return 2;
      }
      SnapshotRegistry durable(std::move(store).value());
      seconds = publish_stream(&durable);
    }
    // Recovery check: reopen the log and compare against the in-memory run.
    {
      DurableSnapshotStoreOptions dopts;
      dopts.path = wal_path;
      auto store = DurableSnapshotStore::Open(std::move(dopts));
      if (!store.ok()) {
        durable_recovers = false;
      } else {
        SnapshotRegistry recovered(std::move(store).value());
        if (recovered.size() != static_cast<size_t>(num_publishes) ||
            recovered.Latest()->bytes != memory_registry.Latest()->bytes) {
          durable_recovers = false;
        }
      }
    }
    dtable.AddRow({fsync ? "wal+fsync" : "wal",
                   TablePrinter::Num(seconds, 3),
                   TablePrinter::Num(num_publishes / seconds, 1),
                   TablePrinter::Num(memory_seconds / seconds, 2)});
  }
  std::remove(wal_path.c_str());
  dtable.Print();
  std::printf("\nWAL reopen recovers publishes bit-identically:       %s\n",
              durable_recovers ? "yes" : "NO");

  // ---- tracing overhead: the macro perf gate ----------------------------
  // TraceRing is always-on in production, so the macro numbers that gate
  // the serving path are measured WITH tracing enabled; the untraced run
  // exists to prove the instrumentation is overhead-neutral (per-thread
  // rings, relaxed-atomic enabled check — the gate keeps it honest).
  // Tracing must also never perturb results: both runs are bit-identity
  // checked like every other configuration axis in this bench.
  const int gate_threads = std::min(4, max_threads);
  std::printf("\n== Tracing overhead at %d threads, max_batch=4 ==\n\n",
              gate_threads);
  TraceRing::Global().SetEnabled(false);
  RunResult untraced = RunSingle(setup, gate_threads, /*max_batch=*/4);
  TraceRing::Global().SetEnabled(true);
  TraceRing::Global().Clear();
  RunResult traced = RunSingle(setup, gate_threads, /*max_batch=*/4);
  const double untraced_tps = TasksPerSec(untraced);
  const double traced_tps = TasksPerSec(traced);
  TablePrinter ttable({"Tracing", "Wall (s)", "Tasks/s", "p99 (ms)",
                       "vs off"});
  ttable.AddRow({"off", TablePrinter::Num(untraced.wall_seconds, 3),
                 TablePrinter::Num(untraced_tps, 1),
                 TablePrinter::Num(untraced.p99_inference_seconds * 1e3, 1),
                 TablePrinter::Num(1.0, 2)});
  ttable.AddRow({"on", TablePrinter::Num(traced.wall_seconds, 3),
                 TablePrinter::Num(traced_tps, 1),
                 TablePrinter::Num(traced.p99_inference_seconds * 1e3, 1),
                 TablePrinter::Num(traced_tps / untraced_tps, 2)});
  ttable.Print();

  const bool tracing_identical =
      traced.final_codes == untraced.final_codes &&
      traced.final_codes == reference &&
      traced.predictions == untraced.predictions;
  const bool tracing_cheap = traced_tps >= 0.85 * untraced_tps;
  std::printf("\ntraced codes bit-identical to untraced + pipeline:   %s\n",
              tracing_identical ? "yes" : "NO");
  std::printf("tracing overhead within gate (>=0.85x untraced):     %s\n",
              tracing_cheap ? "yes" : "NO");

  // Macro numbers for the perf CI gate (bench/check_perf_regression.py
  // compares them against the committed bench/baseline_serving.json). The
  // gated run is the traced one — tracing is the production configuration.
  if (const char* json_path = std::getenv("QCORE_BENCH_JSON")) {
    std::ofstream out(json_path);
    out << "{\n  \"serving\": {\n"
        << "    \"tasks_per_sec\": " << traced_tps << ",\n"
        << "    \"p99_inference_ms\": "
        << traced.p99_inference_seconds * 1e3 << ",\n"
        << "    \"traced_tasks_per_sec\": " << traced_tps << ",\n"
        << "    \"untraced_tasks_per_sec\": " << untraced_tps << ",\n"
        << "    \"devices\": " << num_devices << ",\n"
        << "    \"batches_per_device\": " << batches_per_device << ",\n"
        << "    \"threads\": " << gate_threads << ",\n"
        << "    \"max_batch\": 4,\n"
        << "    \"gemm_threads\": " << kernels::gemm_threads() << ",\n"
        << "    \"rtt_ms\": " << BenchRttMs() << "\n"
        << "  }\n}\n";
    if (!out.good()) {
      std::printf("failed to write QCORE_BENCH_JSON to %s\n", json_path);
      return 2;
    }
    std::printf("\nwrote macro serving numbers to %s\n", json_path);
  }

  // Exit codes separate correctness from timing: 2 = determinism or
  // ordering violated (always a bug), 1 = a timing property failed (the
  // scaling curves not improving, batching not faster, or tracing costing
  // more than the gate allows) — expected e.g. with QCORE_BENCH_RTT_MS=0
  // on a single-core host, and tolerated by CI on noisy shared runners
  // (the hard tracing-overhead gate lives in check_perf_regression.py,
  // fed by QCORE_BENCH_JSON).
  if (!identical_across_threads || first_run.final_codes != reference ||
      !batched_identical || !batched_ordered || !sharded_identical ||
      !sharded_ordered || !durable_recovers || !tracing_identical) {
    return 2;
  }
  return (monotonic && batched_faster && sharding_scales && tracing_cheap)
             ? 0
             : 1;
}
