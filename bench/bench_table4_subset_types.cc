// Table 4: average accuracy of quantized models by subset type on DSA
// (Subj. 1 -> Subj. 2 and Subj. 1 -> Subj. 3), subset size 30. Subset types:
// Core j (miss distribution of the j-bit proxy only), Core 32 (full-
// precision misses), Random, and the combined-distribution QCore.
#include <cstdio>

#include "bench/harness.h"
#include "common/table_printer.h"
#include "core/quant_miss.h"

using namespace qcore;
using namespace qcore::bench;

int main() {
  std::printf("== Table 4: accuracy by subset type (DSA, InceptionTime, "
              "subset size 30) ==\n");
  ReportRunEnvironment();
  HarSpec spec = HarSpec::Dsa();
  BenchConfig config = BenchConfig::TimeSeries();
  ExperimentLab lab("InceptionTime", LoadHar(spec, 0), config);
  Rng rng(77);

  // This table's point is the average across bit-widths, so all three are
  // kept even in fast mode (fast mode trims the target list instead).
  const std::vector<int> bits = {2, 4, 8};
  const std::vector<int> targets = FastMode() ? std::vector<int>{1}
                                              : std::vector<int>{1, 2};

  // Build each subset once from the recorded miss distributions.
  struct SubsetCase {
    std::string name;
    Dataset subset;
  };
  std::vector<SubsetCase> cases;
  for (int level : {2, 4, 8, 32}) {
    std::vector<int> idx = SampleByMissDistribution(
        lab.build().per_level_misses.at(level), config.build.size, &rng);
    cases.push_back({"Core " + std::to_string(level),
                     lab.source().train.Subset(idx)});
  }
  cases.push_back({"Random",
                   lab.source().train.Subset(rng.SampleWithoutReplacement(
                       lab.source().train.size(), config.build.size))});
  cases.push_back({"QCore", lab.build().qcore});

  for (int target_subject : targets) {
    std::printf("\n-- Subj. 1 -> Subj. %d --\n", target_subject + 1);
    DomainData target = LoadHar(spec, target_subject);
    std::vector<std::string> header = {"Subset"};
    for (int b : bits) header.push_back(std::to_string(b) + "-bit");
    header.push_back("Avg.");
    TablePrinter table(header);
    for (const auto& c : cases) {
      std::vector<std::string> row = {c.name};
      double sum = 0.0;
      for (int b : bits) {
        ContinualResult res = lab.RunWithSubset(c.subset, target, b);
        row.push_back(TablePrinter::Num(res.avg_accuracy));
        sum += res.avg_accuracy;
      }
      row.push_back(TablePrinter::Num(sum / bits.size()));
      table.AddRow(row);
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape: Core j is strong at j bits but weak elsewhere;\n"
      "Random and Core 32 trail; the combined QCore has the best average\n"
      "across bit-widths (paper Sec. 4.2.1).\n");
  return 0;
}
