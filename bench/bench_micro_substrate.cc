// Micro-benchmarks (google-benchmark) of the substrate primitives that
// dominate the paper experiments: GEMM, conv forward/backward, quantization,
// Huffman coding, bit-flip feature extraction, and the quantized forward
// pass of each model family.
//
// Every blocked kernel has a *Naive counterpart benchmarking the retained
// seed implementation (qcore::naive), so the substrate speedup is measured
// in-tree. bench/check_perf_regression.py consumes the JSON output
// (--benchmark_format=json) and gates CI on both the blocked-vs-naive
// speedup floors and regression against bench/baseline_micro.json.
#include <benchmark/benchmark.h>

#include "common/aligned.h"
#include "common/huffman.h"
#include "core/bitflip.h"
#include "models/model_zoo.h"
#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "quant/quantized_model.h"
#include "quant/quantizer.h"
#include "tensor/kernels.h"
#include "tensor/tensor_ops.h"

namespace qcore {
namespace {

// Every kernel entry reports the GEMM thread budget it ran under so
// baseline_micro.json rows are unambiguous across hosts: classic entries
// are pinned to 1 (main() below), the *Wide sections set their own. The
// checker refuses to compare entries whose thread counts differ.
void ReportThreads(benchmark::State& state, int threads) {
  state.counters["threads"] = static_cast<double>(threads);
}

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  ReportThreads(state, 1);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulNaive(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  ReportThreads(state, 1);
}
BENCHMARK(BM_MatMulNaive)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// The backward-pass GEMM shapes (one transposed operand) share the packed
// microkernel; track one size each to catch lowering regressions.
void BM_MatMulTransposedB(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulTransposedB(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  ReportThreads(state, 1);
}
BENCHMARK(BM_MatMulTransposedB)->Arg(128);

void BM_MatMulTransposedA(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulTransposedA(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  ReportThreads(state, 1);
}
BENCHMARK(BM_MatMulTransposedA)->Arg(128);

void BM_Conv1dForward(benchmark::State& state) {
  Rng rng(2);
  Conv1d conv(8, 16, 5, 1, 2, &rng);
  Tensor x = Tensor::Randn({16, 8, 64}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x, false));
  }
  ReportThreads(state, 1);
}
BENCHMARK(BM_Conv1dForward);

void BM_Conv1dForwardNaive(benchmark::State& state) {
  Rng rng(2);
  Conv1d conv(8, 16, 5, 1, 2, &rng);
  const Tensor& w = conv.Params()[0]->value;
  const Tensor& b = conv.Params()[1]->value;
  Tensor x = Tensor::Randn({16, 8, 64}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive::Conv1dForward(x, w, b, 1, 2));
  }
  ReportThreads(state, 1);
}
BENCHMARK(BM_Conv1dForwardNaive);

void BM_Conv1dBackward(benchmark::State& state) {
  Rng rng(3);
  Conv1d conv(8, 16, 5, 1, 2, &rng);
  Tensor x = Tensor::Randn({16, 8, 64}, &rng);
  Tensor y = conv.Forward(x, true);
  Tensor g = Tensor::Randn(y.shape(), &rng);
  for (auto _ : state) {
    conv.ZeroGrad();
    benchmark::DoNotOptimize(conv.Backward(g));
  }
  ReportThreads(state, 1);
}
BENCHMARK(BM_Conv1dBackward);

void BM_Conv1dBackwardNaive(benchmark::State& state) {
  Rng rng(3);
  Conv1d conv(8, 16, 5, 1, 2, &rng);
  const Tensor& w = conv.Params()[0]->value;
  Tensor x = Tensor::Randn({16, 8, 64}, &rng);
  Tensor y = conv.Forward(x, true);
  Tensor g = Tensor::Randn(y.shape(), &rng);
  Tensor dw = Tensor::Zeros(w.shape());
  Tensor db = Tensor::Zeros({16});
  for (auto _ : state) {
    dw.SetZero();
    db.SetZero();
    benchmark::DoNotOptimize(naive::Conv1dBackward(x, w, g, 1, 2, &dw, &db));
  }
  ReportThreads(state, 1);
}
BENCHMARK(BM_Conv1dBackwardNaive);

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(21);
  Conv2d conv(8, 16, 3, 1, 1, &rng);
  Tensor x = Tensor::Randn({8, 8, 16, 16}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x, false));
  }
  ReportThreads(state, 1);
}
BENCHMARK(BM_Conv2dForward);

void BM_Conv2dForwardNaive(benchmark::State& state) {
  Rng rng(21);
  Conv2d conv(8, 16, 3, 1, 1, &rng);
  const Tensor& w = conv.Params()[0]->value;
  const Tensor& b = conv.Params()[1]->value;
  Tensor x = Tensor::Randn({8, 8, 16, 16}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive::Conv2dForward(x, w, b, 1, 1));
  }
  ReportThreads(state, 1);
}
BENCHMARK(BM_Conv2dForwardNaive);

void BM_Conv2dBackward(benchmark::State& state) {
  Rng rng(22);
  Conv2d conv(8, 16, 3, 1, 1, &rng);
  Tensor x = Tensor::Randn({8, 8, 16, 16}, &rng);
  Tensor y = conv.Forward(x, true);
  Tensor g = Tensor::Randn(y.shape(), &rng);
  for (auto _ : state) {
    conv.ZeroGrad();
    benchmark::DoNotOptimize(conv.Backward(g));
  }
  ReportThreads(state, 1);
}
BENCHMARK(BM_Conv2dBackward);

void BM_Conv2dBackwardNaive(benchmark::State& state) {
  Rng rng(22);
  Conv2d conv(8, 16, 3, 1, 1, &rng);
  const Tensor& w = conv.Params()[0]->value;
  Tensor x = Tensor::Randn({8, 8, 16, 16}, &rng);
  Tensor y = conv.Forward(x, true);
  Tensor g = Tensor::Randn(y.shape(), &rng);
  Tensor dw = Tensor::Zeros(w.shape());
  Tensor db = Tensor::Zeros({16});
  for (auto _ : state) {
    dw.SetZero();
    db.SetZero();
    benchmark::DoNotOptimize(naive::Conv2dBackward(x, w, g, 1, 1, &dw, &db));
  }
  ReportThreads(state, 1);
}
BENCHMARK(BM_Conv2dBackwardNaive);

// The im2col pack on its own — the lowering overhead the GEMM win has to
// amortize.
void BM_Im2ColPack(benchmark::State& state) {
  Rng rng(23);
  const int64_t c = 8, h = 16, w = 16;
  const int kernel = 3, stride = 1, pad = 1;
  const int64_t ho = (h + 2 * pad - kernel) / stride + 1;
  const int64_t wo = (w + 2 * pad - kernel) / stride + 1;
  Tensor x = Tensor::Randn({c, h, w}, &rng);
  AlignedFloatVec col(static_cast<size_t>(c * kernel * kernel * ho * wo));
  for (auto _ : state) {
    kernels::Im2Col2d(x.data(), c, h, w, kernel, stride, pad, ho, wo,
                      col.data());
    benchmark::DoNotOptimize(col.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(col.size()));
  ReportThreads(state, 1);
}
BENCHMARK(BM_Im2ColPack);

// ------------------- multithreaded GEMM / conv (panel-parallel) -----------
//
// The MT section behind the perf CI speedup floor: BM_MatMulWide/<n>/<t>
// runs the same GEMM at an explicit thread budget with the crossover
// disabled, so the /512/4-vs-/512/1 ratio is a pure scaling measurement
// (check_perf_regression.py enforces >= 2x on hosts with >= 4 cores and
// skips below — oversubscribed threads can't demonstrate scaling).
void BM_MatMulWide(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  kernels::set_gemm_threads(threads);
  kernels::set_gemm_parallel_min_work(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  kernels::set_gemm_parallel_min_work(kernels::kDefaultGemmParallelMinWork);
  kernels::set_gemm_threads(1);
  state.SetItemsProcessed(state.iterations() * n * n * n);
  ReportThreads(state, threads);
}
BENCHMARK(BM_MatMulWide)
    ->Args({128, 1})
    ->Args({128, 2})
    ->Args({128, 4})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4})
    ->UseRealTime();

// Crossover-policy section: thread budget 4 but the DEFAULT min-work
// threshold, so the dispatcher decides per shape. The `wide` counter shows
// the decision (1 = fanned out, 0 = stayed narrow): with the 4Mi default
// the boundary falls between 160^3 and 192^3. Retune
// kDefaultGemmParallelMinWork when the narrow side of the boundary gets
// slower than the wide side on the sizes below.
void BM_MatMulCrossover(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  kernels::set_gemm_threads(4);
  const kernels::GemmDispatchCounters before =
      kernels::ThreadGemmDispatchCounters();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  const kernels::GemmDispatchCounters after =
      kernels::ThreadGemmDispatchCounters();
  kernels::set_gemm_threads(1);
  state.SetItemsProcessed(state.iterations() * n * n * n);
  ReportThreads(state, 4);
  state.counters["wide"] = after.wide > before.wide ? 1.0 : 0.0;
}
BENCHMARK(BM_MatMulCrossover)
    ->Arg(96)
    ->Arg(128)
    ->Arg(160)
    ->Arg(192)
    ->Arg(256)
    ->UseRealTime();

// A conv whose im2col-lowered GEMM (m=64, n=1024, k=288 per sample) clears
// the default crossover: the whole lowered path — im2col fan-out plus
// panel-parallel GEMM — under an explicit thread budget.
void BM_Conv2dForwardWide(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  Rng rng(24);
  Conv2d conv(32, 64, 3, 1, 1, &rng);
  Tensor x = Tensor::Randn({4, 32, 32, 32}, &rng);
  kernels::set_gemm_threads(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x, false));
  }
  kernels::set_gemm_threads(1);
  ReportThreads(state, threads);
}
BENCHMARK(BM_Conv2dForwardWide)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_Quantize(benchmark::State& state) {
  Rng rng(4);
  Tensor t = Tensor::Randn({static_cast<int64_t>(state.range(0))}, &rng);
  QuantParams qp = ChooseSymmetricParams(t, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(QuantizeToCodes(t, qp));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Quantize)->Arg(1024)->Arg(65536);

void BM_HuffmanEncode(benchmark::State& state) {
  Rng rng(5);
  std::vector<int32_t> codes(8192);
  for (auto& c : codes) {
    c = static_cast<int32_t>(rng.NextUint64(16)) - 8;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(HuffmanCoder::Encode(codes));
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_HuffmanEncode);

void BM_BitFlipFeatures(benchmark::State& state) {
  Rng rng(6);
  auto model = MakeInceptionTime(9, 19, &rng);
  QuantizedModel qm(*model, 4);
  SetBatchNormFrozen(qm.model(), true);
  Tensor x = Tensor::Randn({32, 9, 64}, &rng);
  (void)qm.model()->Forward(x, true);
  for (auto _ : state) {
    for (int t = 0; t < qm.num_quantized(); ++t) {
      benchmark::DoNotOptimize(
          ComputeBitFlipFeatures(qm.quantized(t), nullptr));
    }
  }
}
BENCHMARK(BM_BitFlipFeatures);

void BM_QuantizedForwardInceptionTime(benchmark::State& state) {
  Rng rng(7);
  auto model = MakeInceptionTime(9, 19, &rng);
  QuantizedModel qm(*model, 4);
  Tensor x = Tensor::Randn({32, 9, 64}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qm.Forward(x));
  }
}
BENCHMARK(BM_QuantizedForwardInceptionTime);

void BM_QuantizedForwardResNetTiny(benchmark::State& state) {
  Rng rng(8);
  auto model = MakeResNetTiny(3, 10, &rng);
  QuantizedModel qm(*model, 4);
  Tensor x = Tensor::Randn({16, 3, 16, 16}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qm.Forward(x));
  }
}
BENCHMARK(BM_QuantizedForwardResNetTiny);

}  // namespace
}  // namespace qcore

// Custom main instead of BENCHMARK_MAIN(): pin the kernel thread budget to
// 1 before any benchmark runs, so the classic (single-thread) entries mean
// the same thing on every host regardless of core count or a stray
// QCORE_GEMM_THREADS in the environment. The *Wide/*Crossover sections set
// their own budget explicitly and restore 1 on exit.
int main(int argc, char** argv) {
  qcore::kernels::set_gemm_threads(1);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
