// Figure 8: quantization-miss distributions per bit-width (Core 2 / 4 / 8 /
// 32) for DSA Subj. 1 and USC Subj. 6, InceptionTime backbone.
#include <cstdio>

#include "bench/harness.h"
#include "common/table_printer.h"
#include "core/quant_miss.h"

using namespace qcore;
using namespace qcore::bench;

namespace {

void Report(const char* title, const HarSpec& spec, int subject) {
  std::printf("\n-- %s --\n", title);
  ExperimentLab lab("InceptionTime", LoadHar(spec, subject),
                    BenchConfig::TimeSeries());
  // Common histogram support across levels.
  size_t max_k = 0;
  for (int bits : {2, 4, 8, 32}) {
    auto hist = QuantMissTracker::Distribution(
        lab.build().per_level_misses.at(bits));
    max_k = std::max(max_k, hist.size());
  }
  TablePrinter table({"misses k", "Core 2", "Core 4", "Core 8", "Core 32"});
  std::map<int, std::vector<int64_t>> hists;
  for (int bits : {2, 4, 8, 32}) {
    hists[bits] = QuantMissTracker::Distribution(
        lab.build().per_level_misses.at(bits));
    hists[bits].resize(max_k, 0);
  }
  for (size_t k = 1; k < max_k; ++k) {
    table.AddRow({std::to_string(k), std::to_string(hists[2][k]),
                  std::to_string(hists[4][k]), std::to_string(hists[8][k]),
                  std::to_string(hists[32][k])});
  }
  table.Print();
  int64_t t2 = 0, t32 = 0;
  for (size_t k = 1; k < max_k; ++k) {
    t2 += hists[2][k];
    t32 += hists[32][k];
  }
  std::printf("total missed examples: Core 2 = %lld, Core 32 = %lld\n",
              static_cast<long long>(t2), static_cast<long long>(t32));
}

}  // namespace

int main() {
  std::printf("== Figure 8: miss distributions by bit-width ==\n");
  ReportRunEnvironment();
  Report("DSA Subj. 1", HarSpec::Dsa(), 0);
  Report("USC Subj. 6", HarSpec::Usc(), 5);
  std::printf(
      "\nExpected shape: miss counts grow as the bit-width shrinks (Core 2 >>\n"
      "Core 32); the full-precision distribution under-represents the\n"
      "examples that are hard *because of* quantization (paper Sec. 4.2.1).\n");
  return 0;
}
