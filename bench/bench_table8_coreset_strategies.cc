// Table 8: average accuracy of coreset-construction strategies vs QCore,
// subset size 30, InceptionTime backbone, without continual calibration
// (the subset is used for the initial calibration of the quantized model,
// which is then evaluated on the shifted domain — isolating subset quality).
#include <cstdio>

#include "bench/harness.h"
#include "baselines/coresets.h"
#include "common/table_printer.h"
#include "nn/training.h"
#include "quant/ste_calibrator.h"

using namespace qcore;
using namespace qcore::bench;

namespace {

void RunDataset(const char* name, const HarSpec& spec) {
  std::printf("\n-- %s --\n", name);
  BenchConfig config = BenchConfig::TimeSeries();
  ExperimentLab lab("InceptionTime", LoadHar(spec, 0), config);
  DomainData target = LoadHar(spec, 1);
  Rng rng(config.seed ^ 0x7AB1E8u);
  const int size = config.build.size;
  const Dataset& train = lab.source().train;

  struct StrategyCase {
    std::string name;
    std::vector<int> indices;
  };
  std::vector<StrategyCase> cases;
  cases.push_back(
      {"Maximum Entropy", SelectMaxEntropy(lab.fp_model(), train, size)});
  cases.push_back({"Least Confidence",
                   SelectLeastConfidence(lab.fp_model(), train, size)});
  cases.push_back({"Normal Distrib.",
                   SelectNormalFit(lab.build().combined_misses, size, &rng)});
  cases.push_back({"k-means", SelectKMeans(train, size, &rng)});
  cases.push_back({"GradMatch", SelectGradMatch(lab.fp_model(), train, size)});
  cases.push_back({"CRAIG", SelectCraig(lab.fp_model(), train, size)});
  cases.push_back({"QCore", lab.build().indices});

  const std::vector<int> bits = BenchBits();
  std::vector<std::string> header = {"Strategy"};
  for (int b : bits) header.push_back(std::to_string(b) + "-bit");
  TablePrinter table(header);
  for (const auto& c : cases) {
    Dataset subset = train.Subset(c.indices);
    std::vector<std::string> row = {c.name};
    for (int b : bits) {
      // Initial calibration on the subset only; no continual updates.
      Rng run_rng(config.seed ^ (0xC0DEu * (b + 1)));
      QuantizedModel qm(*lab.fp_model(), b);
      SteOptions sopt = config.bf_train.ste;
      SteCalibrate(&qm, subset.x(), subset.labels(), sopt, &run_rng);
      row.push_back(TablePrinter::Num(
          EvaluateAccuracy(qm.model(), target.test.x(),
                           target.test.labels())));
    }
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace

int main() {
  std::printf("== Table 8: coreset construction strategies "
              "(subset size 30, no continual calibration) ==\n");
  ReportRunEnvironment();
  RunDataset("DSA", HarSpec::Dsa());
  if (!FastMode()) {
    RunDataset("USC", HarSpec::Usc());
  }
  std::printf(
      "\nExpected shape: margins between strategies are small (all subsets\n"
      "are 30 examples), with QCore best or tied-best in each column (paper\n"
      "Sec. 4.2.4).\n");
  return 0;
}
