// Figure 9(b): memory-consumption analysis — average accuracy as a function
// of the QCore/buffer size, DSA Subj. 1 -> Subj. 2, 4-bit.
#include <cstdio>

#include "bench/harness.h"
#include "common/table_printer.h"

using namespace qcore;
using namespace qcore::bench;

int main() {
  std::printf("== Figure 9(b): accuracy vs buffer/subset size "
              "(DSA Subj. 1 -> Subj. 2, 4-bit) ==\n\n");
  ReportRunEnvironment();
  HarSpec spec = HarSpec::Dsa();
  BenchConfig config = BenchConfig::TimeSeries();
  ExperimentLab lab("InceptionTime", LoadHar(spec, 0), config);
  DomainData target = LoadHar(spec, 1);

  const std::vector<int> sizes =
      FastMode() ? std::vector<int>{20, 60, 100}
                 : std::vector<int>{20, 40, 60, 80, 100};
  const std::vector<std::string> methods = {"ER", "DER++", "Camel"};

  std::vector<std::string> header = {"Size"};
  for (const auto& m : methods) header.push_back(m);
  header.push_back("QCore");
  TablePrinter table(header);

  for (int size : sizes) {
    std::vector<std::string> row = {std::to_string(size)};
    for (const auto& method : methods) {
      LearnerOptions lopt = config.learner;
      lopt.buffer_capacity = size;
      lopt.replay_sample = size;  // let learners actually use the memory
      row.push_back(TablePrinter::Num(
          lab.RunBaseline(method, target, 4, lopt).avg_accuracy));
    }
    row.push_back(TablePrinter::Num(
        lab.RunQCoreWithSize(target, 4, size).avg_accuracy));
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nExpected shape: every method improves with memory; QCore dominates\n"
      "at small sizes because its subset targets calibration-relevant\n"
      "examples (paper Sec. 4.2.6).\n");
  return 0;
}
