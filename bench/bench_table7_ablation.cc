// Table 7: ablation of the two QCore components at 4 bits — NoUpda (no
// QCore update, Algorithm 4 off), NoBF (no bit-flip calibration, Algorithm 3
// off), and the full method — with per-batch accuracy and total calibration
// time.
#include <cstdio>

#include "bench/harness.h"
#include "common/table_printer.h"

using namespace qcore;
using namespace qcore::bench;

namespace {

void RunScenario(const char* dataset, const HarSpec& spec, int source,
                 int target) {
  std::printf("\n-- %s: Subj. %d -> Subj. %d (InceptionTime, 4-bit) --\n",
              dataset, source + 1, target + 1);
  BenchConfig config = BenchConfig::TimeSeries();
  ExperimentLab lab("InceptionTime", LoadHar(spec, source), config);
  DomainData target_data = LoadHar(spec, target);

  ContinualResult no_upda = lab.RunQCoreAblation(target_data, 4,
                                                 /*use_bitflip=*/true,
                                                 /*use_update=*/false);
  ContinualResult no_bf = lab.RunQCoreAblation(target_data, 4,
                                               /*use_bitflip=*/false,
                                               /*use_update=*/true);
  ContinualResult full = lab.RunQCore(target_data, 4);

  TablePrinter table({"Batch", "NoUpda", "NoBF", "QCore"});
  double su = 0, sb = 0, sq = 0;
  for (size_t b = 0; b < full.per_batch.size(); ++b) {
    table.AddRow({std::to_string(b + 1),
                  TablePrinter::Num(no_upda.per_batch[b].accuracy),
                  TablePrinter::Num(no_bf.per_batch[b].accuracy),
                  TablePrinter::Num(full.per_batch[b].accuracy)});
    su += no_upda.per_batch[b].accuracy;
    sb += no_bf.per_batch[b].accuracy;
    sq += full.per_batch[b].accuracy;
  }
  const double n = static_cast<double>(full.per_batch.size());
  table.AddRow({"Avg.", TablePrinter::Num(su / n), TablePrinter::Num(sb / n),
                TablePrinter::Num(sq / n)});
  table.AddRow({"Time (s)",
                TablePrinter::Num(no_upda.per_calib_seconds * n, 3),
                TablePrinter::Num(no_bf.per_calib_seconds * n, 3),
                TablePrinter::Num(full.per_calib_seconds * n, 3)});
  table.Print();
}

}  // namespace

int main() {
  std::printf("== Table 7: ablation study (4-bit, subset size 30) ==\n");
  ReportRunEnvironment();
  RunScenario("DSA", HarSpec::Dsa(), 0, 1);
  if (!FastMode()) {
    RunScenario("USC", HarSpec::Usc(), 5, 6);
  }
  std::printf(
      "\nExpected shape: the full method beats both ablations on average;\n"
      "NoBF (frozen model) is flat, NoUpda adapts but retains less, and the\n"
      "runtime differences between variants are small (paper Sec. 4.2.3).\n");
  return 0;
}
