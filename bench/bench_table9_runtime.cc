// Table 9: average end-to-end running time per calibration (seconds), 4-bit,
// QCore/buffer size 30, across DSA, USC, and Caltech10. Baselines use a
// BP budget scaled from the paper's 200 epochs; QCore runs its inference-
// only bit-flip calibration.
#include <cstdio>

#include "bench/harness.h"
#include "common/table_printer.h"

using namespace qcore;
using namespace qcore::bench;

namespace {

std::vector<double> RunRow(ExperimentLab* lab, const DomainData& target) {
  std::vector<double> times;
  for (const auto& method : BaselineNames()) {
    times.push_back(lab->RunBaseline(method, target, 4).per_calib_seconds);
  }
  times.push_back(lab->RunQCore(target, 4).per_calib_seconds);
  return times;
}

}  // namespace

int main() {
  std::printf("== Table 9: average running time per calibration "
              "(seconds, 4-bit) ==\n\n");
  ReportRunEnvironment();
  std::vector<std::string> header = {"Data"};
  for (const auto& m : BaselineNames()) header.push_back(m);
  header.push_back("QCore");
  TablePrinter table(header);

  // The accuracy tables use a reduced BP budget for wall time; the runtime
  // comparison restores the paper-faithful protocol (scaled from 200 BP
  // epochs per calibration).
  const int runtime_epochs = 100;
  {
    BenchConfig config = BenchConfig::TimeSeries();
    config.learner.epochs = runtime_epochs;
    ExperimentLab lab("InceptionTime", LoadHar(HarSpec::Dsa(), 0), config);
    DomainData target = LoadHar(HarSpec::Dsa(), 1);
    std::vector<std::string> row = {"DSA"};
    for (double t : RunRow(&lab, target)) {
      row.push_back(TablePrinter::Num(t, 3));
    }
    table.AddRow(row);
  }
  if (!FastMode()) {
    {
      BenchConfig config = BenchConfig::TimeSeries();
      config.learner.epochs = runtime_epochs;
      ExperimentLab lab("InceptionTime", LoadHar(HarSpec::Usc(), 5), config);
      DomainData target = LoadHar(HarSpec::Usc(), 6);
      std::vector<std::string> row = {"USC"};
      for (double t : RunRow(&lab, target)) {
        row.push_back(TablePrinter::Num(t, 3));
      }
      table.AddRow(row);
    }
    {
      ImageSpec spec = ImageSpec::Caltech10();
      BenchConfig config = BenchConfig::Image();
      config.learner.epochs = runtime_epochs / 4;  // image convs are costly
      ExperimentLab lab("ResNet18", LoadImage(spec, spec.DomainIndex("DSLR")),
                        config);
      DomainData target = LoadImage(spec, spec.DomainIndex("Amazon"));
      std::vector<std::string> row = {"Calt10"};
      for (double t : RunRow(&lab, target)) {
        row.push_back(TablePrinter::Num(t, 3));
      }
      table.AddRow(row);
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: QCore's inference-only calibration is several times\n"
      "faster than every BP-based baseline on each dataset (paper Sec.\n"
      "4.2.5); absolute numbers differ from the paper's GPU testbed.\n");
  return 0;
}
