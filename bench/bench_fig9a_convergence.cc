// Figure 9(a): convergence analysis — accuracy on the shifted domain as a
// function of calibration epochs/iterations on the first stream batch, DSA
// Subj. 1 -> Subj. 2, 4-bit. QCore's bit-flip calibration stabilizes within
// a few iterations; BP baselines need many more epochs.
#include <cstdio>

#include "bench/harness.h"
#include "common/table_printer.h"
#include "core/qcore_update.h"
#include "nn/training.h"

using namespace qcore;
using namespace qcore::bench;

int main() {
  std::printf("== Figure 9(a): convergence on the first stream batch "
              "(DSA Subj. 1 -> Subj. 2, 4-bit) ==\n\n");
  ReportRunEnvironment();
  HarSpec spec = HarSpec::Dsa();
  BenchConfig config = BenchConfig::TimeSeries();
  ExperimentLab lab("InceptionTime", LoadHar(spec, 0), config);
  DomainData target = LoadHar(spec, 1);

  const std::vector<int> checkpoints = {1, 2, 3, 5, 8, 12, 20, 30, 50};
  Rng rng(config.seed ^ 0xF19Au);
  Dataset batch = SplitIntoStreamBatches(target.train, 10, &rng)[0];

  TablePrinter table({"epochs/iters", "QCore", "ER", "DER++"});
  // QCore: run increasing iteration budgets from the same deployed state.
  std::map<int, float> qcore_acc;
  {
    for (int e : checkpoints) {
      Rng qrng(config.seed ^ 0xBF00u);
      auto qm = std::make_unique<QuantizedModel>(*lab.fp_model(), 4);
      BitFlipNet bf =
          TrainBitFlipNet(qm.get(), lab.build().qcore, config.bf_train,
                          &qrng);
      qm->DropShadows();
      Dataset pool = MakeUpdatePool(lab.build().qcore, batch, &qrng);
      BitFlipCalibrateOptions copt = config.continual.bf;
      copt.iterations = e;
      BitFlipCalibrate(qm.get(), &bf, pool.x(), pool.labels(), copt, &qrng);
      qcore_acc[e] = EvaluateAccuracy(qm->model(), target.test.x(),
                                      target.test.labels());
    }
  }
  // Baselines: one ObserveBatch with the epoch budget set per checkpoint.
  std::map<std::string, std::map<int, float>> base_acc;
  for (const std::string method : {"ER", "DER++"}) {
    for (int e : checkpoints) {
      LearnerOptions lopt = config.learner;
      lopt.epochs = e;
      Rng brng(config.seed ^ 0xBA5Eu);
      auto qm = lab.CalibratedBaselineModel(4);
      auto learner = MakeLearner(method, qm.get(), lopt, &brng);
      learner->ObserveBatch(batch);
      base_acc[method][e] = EvaluateAccuracy(
          qm->model(), target.test.x(), target.test.labels());
    }
  }
  for (int e : checkpoints) {
    table.AddRow({std::to_string(e), TablePrinter::Num(qcore_acc[e]),
                  TablePrinter::Num(base_acc["ER"][e]),
                  TablePrinter::Num(base_acc["DER++"][e])});
  }
  table.Print();
  std::printf(
      "\nExpected shape: QCore is already stable within <10 iterations; the\n"
      "BP baselines climb slowly with their epoch budget (paper Fig. 9(a)).\n");
  return 0;
}
