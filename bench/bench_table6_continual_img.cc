// Table 6: average accuracy of quantized models in the continual-learning
// setting on the Caltech10-like image data, ResNet18- and VGG16-style
// backbones, QCore/buffer size 30.
#include <cstdio>
#include <cstdlib>

#include "bench/harness.h"
#include "common/table_printer.h"

using namespace qcore;
using namespace qcore::bench;

namespace {

void RunScenario(const ImageSpec& spec, const std::string& model,
                 const std::string& source, const std::string& target) {
  std::printf("\n-- Caltech10, %s, %s -> %s --\n", model.c_str(),
              source.c_str(), target.c_str());
  BenchConfig config = BenchConfig::Image();
  ExperimentLab lab(model, LoadImage(spec, spec.DomainIndex(source)), config);
  DomainData target_data = LoadImage(spec, spec.DomainIndex(target));

  // 2-D convolutions are ~10x costlier per example than the 1-D models, so
  // the image table defaults to {4, 8}; set QCORE_IMG_FULL=1 for 2 bits too.
  std::vector<int> bits = FastMode() ? std::vector<int>{4}
                                     : std::vector<int>{4, 8};
  const char* full = std::getenv("QCORE_IMG_FULL");
  if (full != nullptr && full[0] == '1') bits = {2, 4, 8};
  std::vector<std::string> header = {"Method"};
  for (int b : bits) header.push_back(std::to_string(b) + "-bit");
  TablePrinter table(header);

  for (const auto& method : BaselineNames()) {
    std::vector<std::string> row = {method};
    for (int b : bits) {
      row.push_back(TablePrinter::Num(
          lab.RunBaseline(method, target_data, b).avg_accuracy));
    }
    table.AddRow(row);
  }
  {
    std::vector<std::string> row = {"QCore"};
    for (int b : bits) {
      row.push_back(
          TablePrinter::Num(lab.RunQCore(target_data, b).avg_accuracy));
    }
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace

int main() {
  std::printf("== Table 6: continual-learning accuracy, images "
              "(QCore/buffer size 30) ==\n");
  ReportRunEnvironment();
  ImageSpec spec = ImageSpec::Caltech10();
  RunScenario(spec, "ResNet18", "DSLR", "Amazon");
  if (!FastMode()) {
    RunScenario(spec, "VGG16", "Webcam", "Caltech");
  }
  std::printf(
      "\nExpected shape: same ordering as the time-series tables — QCore\n"
      "leads every column; VGG (no BatchNorm, dense head) is the weaker\n"
      "backbone overall, as in the paper's Table 6.\n");
  return 0;
}
