// Shared experiment harness for the paper-reproduction benches. One
// ExperimentLab per (dataset, architecture, source domain): it trains the
// full-precision model once while building the QCore (Algorithm 1), shares
// the initially calibrated quantized models across methods and bit-widths,
// and runs each method's continual-calibration stream.
//
// Environment: set QCORE_FAST=1 to shrink every bench's grid for quick
// iteration (fewer bit-widths / scenarios); default settings reproduce the
// tables as reported in EXPERIMENTS.md.
#ifndef QCORE_BENCH_HARNESS_H_
#define QCORE_BENCH_HARNESS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/continual_learner.h"
#include "core/pipeline.h"
#include "data/har_generator.h"
#include "data/image_generator.h"
#include "models/model_zoo.h"

namespace qcore::bench {

// True when QCORE_FAST=1 is set.
bool FastMode();

// Prints one "[bench-env] ..." line with the settings that change what a
// bench's numbers mean across hosts — currently the GEMM thread budget
// (kernels::gemm_threads()), the host's default parallel worker count, and
// fast mode. Every paper-table/figure bench calls this right after its
// header so recorded runs are unambiguous: a table timed at gemm_threads=4
// is not comparable to one timed at 1.
void ReportRunEnvironment();

struct DomainData {
  Dataset train;
  Dataset test;
};

struct ContinualResult {
  float avg_accuracy = 0.0f;
  double per_calib_seconds = 0.0;
  std::vector<BatchStats> per_batch;
};

// Bit-widths exercised by the tables ({4} in fast mode).
std::vector<int> BenchBits();

// Default knobs, centralized so every bench reports a consistent setting.
struct BenchConfig {
  TrainOptions fp_train;            // full-precision source training
  QCoreBuildOptions build;          // Algorithm 1
  BitFlipTrainOptions bf_train;     // Algorithm 2 (+ initial calibration)
  ContinualOptions continual;       // Algorithms 3+4
  SteOptions baseline_initial;      // baselines' pre-deployment calibration
  LearnerOptions learner;           // baselines' on-edge BP calibration
  int stream_batches = 10;
  uint64_t seed = 20240422;

  static BenchConfig TimeSeries();
  static BenchConfig Image();
};

class ExperimentLab {
 public:
  // `model_factory_name` is resolved against the time-series or image model
  // registry depending on the input rank of `source.train`.
  ExperimentLab(std::string model_name, DomainData source, BenchConfig config);

  const BenchConfig& config() const { return config_; }
  const QCoreBuildResult& build() const { return build_; }
  Sequential* fp_model() { return fp_model_.get(); }
  const DomainData& source() const { return source_; }

  // Fresh quantized model from the trained FP model, STE-calibrated on the
  // full source training set (the baselines' pre-deployment state). Cached
  // per bit-width; callers receive an independent clone.
  std::unique_ptr<QuantizedModel> CalibratedBaselineModel(int bits);

  // QCore's end-to-end continual run (Fig. 1(b) pipeline) on `target`.
  ContinualResult RunQCore(const DomainData& target, int bits);

  // Ablation variants (Table 7): toggles for the QCore update and the
  // bit-flip calibration.
  ContinualResult RunQCoreAblation(const DomainData& target, int bits,
                                   bool use_bitflip, bool use_update);

  // QCore machinery driven by an externally constructed subset (Tables 4/8).
  ContinualResult RunWithSubset(const Dataset& subset,
                                const DomainData& target, int bits);

  // One of the BP baselines (by registry name) on `target`.
  ContinualResult RunBaseline(const std::string& method,
                              const DomainData& target, int bits);

  // Baseline run with an options override (Fig. 9 sweeps).
  ContinualResult RunBaseline(const std::string& method,
                              const DomainData& target, int bits,
                              const LearnerOptions& options);

  // QCore run with a subset-size override (Fig. 9(b)).
  ContinualResult RunQCoreWithSize(const DomainData& target, int bits,
                                   int qcore_size);

 private:
  std::unique_ptr<Sequential> MakeUntrained(Rng* rng) const;
  ContinualResult StreamQCore(std::unique_ptr<QuantizedModel> qm,
                              BitFlipNet* bf, Dataset qcore,
                              const DomainData& target,
                              const ContinualOptions& opts, Rng* rng) const;

  std::string model_name_;
  DomainData source_;
  BenchConfig config_;
  bool time_series_ = true;
  std::unique_ptr<Sequential> fp_model_;
  QCoreBuildResult build_;
  std::map<int, std::unique_ptr<QuantizedModel>> calibrated_;
};

// Convenience loaders.
DomainData LoadHar(const HarSpec& spec, int subject);
DomainData LoadImage(const ImageSpec& spec, int domain);

}  // namespace qcore::bench

#endif  // QCORE_BENCH_HARNESS_H_
