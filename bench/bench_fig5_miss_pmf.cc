// Figure 5: distributions of quantization misses for 4-bit and 8-bit
// quantized proxy models, plus the counts a 10%-sized QCore would sample per
// miss level (the paper's "48 of 480" annotation).
#include <cstdio>

#include "bench/harness.h"
#include "common/table_printer.h"
#include "core/quant_miss.h"

using namespace qcore;
using namespace qcore::bench;

int main() {
  std::printf("== Figure 5: quantization-miss PMFs (DSA Subj. 1, "
              "InceptionTime) ==\n");
  ReportRunEnvironment();
  HarSpec spec = HarSpec::Dsa();
  BenchConfig config = BenchConfig::TimeSeries();
  ExperimentLab lab("InceptionTime", LoadHar(spec, 0), config);

  const double lambda = 0.1;  // 10% subset, as in the figure
  for (int bits : {4, 8}) {
    const std::vector<int>& misses = lab.build().per_level_misses.at(bits);
    std::vector<int64_t> hist = QuantMissTracker::Distribution(misses);
    std::printf("\n%d-bit quantized model (subset fraction %.0f%%):\n", bits,
                lambda * 100);
    TablePrinter table({"misses k", "examples N_k", "QCore samples"});
    for (size_t k = 0; k < hist.size(); ++k) {
      if (hist[k] == 0) continue;
      table.AddRow({std::to_string(k), std::to_string(hist[k]),
                    std::to_string(static_cast<int64_t>(
                        lambda * static_cast<double>(hist[k]) + 0.5))});
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape: low-bit models produce more misses overall and a\n"
      "longer tail, so the two PMFs differ — the reason a quantization-aware\n"
      "subset is needed (paper Sec. 3.2.3).\n");
  return 0;
}
