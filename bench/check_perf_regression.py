#!/usr/bin/env python3
"""Perf CI gate: blocked kernel substrate + macro serving path.

Micro: consumes two ``bench_micro_substrate --benchmark_format=json``
outputs — the committed baseline (bench/baseline_micro.json) and the
current run — and fails (exit 1) when either:

  1. a tracked blocked kernel regressed more than REGRESSION_TOLERANCE
     against the committed baseline (cpu_time, median-of-repetitions when
     aggregates are present), or
  2. a blocked-vs-naive speedup floor no longer holds (these ratios are
     measured within the current run only, so they are robust to host
     differences between whoever committed the baseline and the CI runner),
     or
  3. the multithreaded GEMM scaling floor no longer holds: BM_MatMulWide/512
     at 4 threads must be >= MT_SPEEDUP_FLOOR x faster (real_time) than the
     same shape at 1 thread. Within the current run only, and only enforced
     when the run's own context reports >= MT_MIN_CPUS cores — on smaller
     hosts the threads oversubscribe and the ratio measures the scheduler,
     not the kernel, so the check prints a skip note instead.

Entries carry a ``threads`` counter (the GEMM thread budget they ran
under); the baseline comparison refuses to compare a pair whose thread
counts differ, so a baseline recorded at one budget can never silently
gate a run at another.

Macro (optional, ``--serving-baseline``/``--serving-current``): consumes
two ``bench_serving_throughput`` QCORE_BENCH_JSON outputs — the committed
baseline (bench/baseline_serving.json) and the current run — and gates:

  3. serving tasks/s >= SERVING_TPS_FLOOR x baseline and p99 inference
     latency <= SERVING_P99_CEILING x baseline (absolute, so downgraded
     with the micro comparisons in non-strict mode), and
  4. traced tasks/s >= TRACING_OVERHEAD_FLOOR x untraced tasks/s — the
     tracing-overhead before/after check. Within-run ratio, always hard:
     observability must stay cheap enough to leave on in production.

The absolute comparisons (1, 3) are only meaningful when the runner
hardware matches the host that committed the baseline; on
heterogeneous/shared runners set QCORE_PERF_BASELINE_STRICT=0 to downgrade
them to warnings while keeping the within-run ratios (2, 4) hard.

Regenerate the baselines on the CI host after an intentional change:

  ./build/bench_micro_substrate \
      --benchmark_filter='MatMul|Conv|Im2Col' \
      --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
      --benchmark_format=json > bench/baseline_micro.json
  QCORE_FAST=1 QCORE_BENCH_JSON=bench/baseline_serving.json \
      ./build/bench_serving_throughput
"""

import argparse
import json
import os
import sys

# Blocked kernels gated against the committed baseline.
TRACKED = [
    "BM_MatMul/32",
    "BM_MatMul/64",
    "BM_MatMul/128",
    "BM_MatMul/256",
    "BM_MatMulTransposedB/128",
    "BM_MatMulTransposedA/128",
    "BM_Conv1dForward",
    "BM_Conv1dBackward",
    "BM_Conv2dForward",
    "BM_Conv2dBackward",
    "BM_Im2ColPack",
    # Multithreaded sections at budget 1: the panel-parallel dispatch path's
    # fixed overhead is gated even on single-core runners (the scaling
    # itself is gated by MT_SPEEDUP_FLOOR below).
    "BM_MatMulWide/512/1/real_time",
    "BM_Conv2dForwardWide/1/real_time",
]

# (blocked, naive) pairs and the minimum speedup each must sustain.
SPEEDUP_FLOORS = [
    ("BM_MatMul/128", "BM_MatMulNaive/128", 3.0),
    ("BM_Conv1dForward", "BM_Conv1dForwardNaive", 2.0),
    ("BM_Conv1dBackward", "BM_Conv1dBackwardNaive", 2.0),
    ("BM_Conv2dForward", "BM_Conv2dForwardNaive", 2.0),
    ("BM_Conv2dBackward", "BM_Conv2dBackwardNaive", 2.0),
]

REGRESSION_TOLERANCE = 0.15  # fail if >15% slower than baseline

# Multithreaded GEMM scaling gate: (wide, single-thread, floor), compared on
# real_time within the current run, enforced only on hosts with enough
# cores to run the wide entry's threads in parallel.
MT_SPEEDUP_FLOORS = [
    ("BM_MatMulWide/512/4/real_time", "BM_MatMulWide/512/1/real_time", 2.0),
]
MT_MIN_CPUS = 4

# Macro serving gates (see module docstring). Throughput and latency get
# wider tolerances than the micro kernels: the macro numbers fold in
# thread scheduling and simulated-RTT overlap, which are noisier than a
# single kernel's cpu_time.
SERVING_TPS_FLOOR = 0.75       # tasks/s must stay >= 75% of baseline
SERVING_P99_CEILING = 1.25     # p99 latency must stay <= 125% of baseline
TRACING_OVERHEAD_FLOOR = 0.85  # traced tasks/s >= 85% of untraced, hard


def load_run(path):
    """Parses a google-benchmark JSON file.

    Returns (entries, num_cpus): entries maps name -> dict with cpu_time
    and real_time in ns plus the threads counter (None when the entry
    predates thread reporting); prefers *_median aggregates when present.
    num_cpus is the run's own context.num_cpus (0 when absent).
    """
    with open(path) as f:
        data = json.load(f)
    entries = {}
    for b in data.get("benchmarks", []):
        name = b["name"]
        if name.endswith(("_mean", "_stddev", "_cv", "_min", "_max")):
            continue
        if name.endswith("_median"):
            name = name[: -len("_median")]
        # A repetition entry and a median aggregate never share a name after
        # stripping: aggregates_only runs emit aggregates only.
        entries[name] = {
            "cpu_time": float(b["cpu_time"]),
            "real_time": float(b["real_time"]),
            "threads": int(b["threads"]) if "threads" in b else None,
        }
    return entries, int(data.get("context", {}).get("num_cpus", 0))


def load_serving(path):
    """Returns the "serving" object from a QCORE_BENCH_JSON file."""
    with open(path) as f:
        data = json.load(f)
    serving = data.get("serving")
    if not isinstance(serving, dict):
        raise ValueError(f"{path}: no \"serving\" object")
    return serving


def check_serving(baseline_path, current_path, strict, failures, warnings):
    baseline = load_serving(baseline_path)
    current = load_serving(current_path)

    print()
    print(f"{'serving (macro)':<24} {'baseline':>12} {'current':>12} "
          f"{'gate':>16}")

    def gate(name, base, cur, ok, gate_desc, hard):
        flag = "" if ok else "  << GATE FAILED"
        print(f"{name:<24} {base:>12.2f} {cur:>12.2f} {gate_desc:>16}{flag}")
        if not ok:
            msg = f"serving {name}: {cur:.2f} vs baseline {base:.2f}, {gate_desc}"
            (failures if hard else warnings).append(msg)

    base_tps = float(baseline["tasks_per_sec"])
    cur_tps = float(current["tasks_per_sec"])
    gate("tasks_per_sec", base_tps, cur_tps,
         cur_tps >= SERVING_TPS_FLOOR * base_tps,
         f">= {SERVING_TPS_FLOOR:.2f}x base", strict)

    base_p99 = float(baseline["p99_inference_ms"])
    cur_p99 = float(current["p99_inference_ms"])
    gate("p99_inference_ms", base_p99, cur_p99,
         cur_p99 <= SERVING_P99_CEILING * base_p99,
         f"<= {SERVING_P99_CEILING:.2f}x base", strict)

    # Within the current run only — hard regardless of strictness, exactly
    # like the blocked-vs-naive speedup floors.
    untraced = float(current["untraced_tasks_per_sec"])
    traced = float(current["traced_tasks_per_sec"])
    ratio = traced / untraced if untraced > 0 else 0.0
    flag = "" if ratio >= TRACING_OVERHEAD_FLOOR else "  << GATE FAILED"
    print(f"{'traced/untraced tasks/s':<24} {'-':>12} {ratio:>12.2f} "
          f"{'>= %.2f (hard)' % TRACING_OVERHEAD_FLOOR:>16}{flag}")
    if ratio < TRACING_OVERHEAD_FLOOR:
        failures.append(
            f"serving tracing overhead: traced/untraced = {ratio:.2f}, "
            f"floor {TRACING_OVERHEAD_FLOOR:.2f}")


def main():
    parser = argparse.ArgumentParser(
        description="Perf CI gate: micro kernels + macro serving path")
    parser.add_argument("micro_baseline")
    parser.add_argument("micro_current")
    parser.add_argument("--serving-baseline",
                        help="committed bench/baseline_serving.json")
    parser.add_argument("--serving-current",
                        help="QCORE_BENCH_JSON output of the current run")
    args = parser.parse_args()
    if bool(args.serving_baseline) != bool(args.serving_current):
        parser.error("--serving-baseline and --serving-current go together")
    baseline, _ = load_run(args.micro_baseline)
    current, cur_cpus = load_run(args.micro_current)
    strict = os.environ.get("QCORE_PERF_BASELINE_STRICT", "1") != "0"
    failures = []
    warnings = []

    print(f"{'benchmark':<34} {'baseline':>12} {'current':>12} {'delta':>8}")
    for name in TRACKED:
        if name not in current:
            failures.append(f"{name}: missing from current run")
            continue
        if name not in baseline:
            failures.append(f"{name}: missing from committed baseline "
                            "(regenerate bench/baseline_micro.json)")
            continue
        base_e, cur_e = baseline[name], current[name]
        if (base_e["threads"] is not None and cur_e["threads"] is not None
                and base_e["threads"] != cur_e["threads"]):
            failures.append(
                f"{name}: thread count mismatch (baseline ran at "
                f"{base_e['threads']}, current at {cur_e['threads']}) — "
                "the times are not comparable")
            continue
        base, cur = base_e["cpu_time"], cur_e["cpu_time"]
        delta = cur / base - 1.0
        flag = ""
        if delta > REGRESSION_TOLERANCE:
            flag = "  << REGRESSION"
            msg = (f"{name}: {delta:+.1%} vs baseline "
                   f"({base:.0f} ns -> {cur:.0f} ns)")
            (failures if strict else warnings).append(msg)
        print(f"{name:<34} {base:>10.0f}ns {cur:>10.0f}ns {delta:>+7.1%}"
              f"{flag}")

    print()
    print(f"{'speedup (blocked vs naive)':<40} {'floor':>6} {'actual':>8}")
    for blocked, naive, floor in SPEEDUP_FLOORS:
        if blocked not in current or naive not in current:
            failures.append(f"speedup {blocked}/{naive}: benchmark missing")
            continue
        actual = current[naive]["cpu_time"] / current[blocked]["cpu_time"]
        flag = ""
        if actual < floor:
            flag = "  << BELOW FLOOR"
            failures.append(
                f"{blocked}: {actual:.2f}x vs {naive}, floor {floor:.1f}x")
        print(f"{blocked + ' vs naive':<40} {floor:>5.1f}x {actual:>7.2f}x"
              f"{flag}")

    # Multithreaded scaling floor: real_time within the current run. Gated
    # on the run's own context so a baseline committed from a big host never
    # forces the check onto a small one.
    print()
    print(f"{'speedup (multithreaded GEMM)':<40} {'floor':>6} {'actual':>8}")
    for wide, single, floor in MT_SPEEDUP_FLOORS:
        if cur_cpus < MT_MIN_CPUS:
            print(f"{wide + ' vs 1-thread':<40} {floor:>5.1f}x "
                  f"skipped ({cur_cpus} cores < {MT_MIN_CPUS})")
            continue
        if wide not in current or single not in current:
            failures.append(f"mt speedup {wide}/{single}: benchmark missing")
            continue
        actual = current[single]["real_time"] / current[wide]["real_time"]
        flag = ""
        if actual < floor:
            flag = "  << BELOW FLOOR"
            failures.append(
                f"{wide}: {actual:.2f}x vs {single}, floor {floor:.1f}x")
        print(f"{wide + ' vs 1-thread':<40} {floor:>5.1f}x {actual:>7.2f}x"
              f"{flag}")

    if args.serving_baseline:
        try:
            check_serving(args.serving_baseline, args.serving_current,
                          strict, failures, warnings)
        except (OSError, ValueError, KeyError) as e:
            failures.append(f"serving gate: {e}")

    if warnings:
        print("\nbaseline regressions (non-strict mode, not gating):")
        for w in warnings:
            print(f"  - {w}")
    if failures:
        print("\nPERF GATE FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nperf gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
