#!/usr/bin/env python3
"""Perf CI gate for the blocked kernel substrate.

Consumes two ``bench_micro_substrate --benchmark_format=json`` outputs — the
committed baseline (bench/baseline_micro.json) and the current run — and
fails (exit 1) when either:

  1. a tracked blocked kernel regressed more than REGRESSION_TOLERANCE
     against the committed baseline (cpu_time, median-of-repetitions when
     aggregates are present), or
  2. a blocked-vs-naive speedup floor no longer holds (these ratios are
     measured within the current run only, so they are robust to host
     differences between whoever committed the baseline and the CI runner).

The absolute comparison (1) is only meaningful when the runner hardware
matches the host that committed the baseline; on heterogeneous/shared
runners set QCORE_PERF_BASELINE_STRICT=0 to downgrade absolute regressions
to warnings while keeping the within-run speedup floors (2) hard.

Regenerate the baseline on the CI host after an intentional kernel change:

  ./build/bench_micro_substrate \
      --benchmark_filter='MatMul|Conv|Im2Col' \
      --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
      --benchmark_format=json > bench/baseline_micro.json
"""

import json
import os
import sys

# Blocked kernels gated against the committed baseline.
TRACKED = [
    "BM_MatMul/32",
    "BM_MatMul/64",
    "BM_MatMul/128",
    "BM_MatMul/256",
    "BM_MatMulTransposedB/128",
    "BM_MatMulTransposedA/128",
    "BM_Conv1dForward",
    "BM_Conv1dBackward",
    "BM_Conv2dForward",
    "BM_Conv2dBackward",
    "BM_Im2ColPack",
]

# (blocked, naive) pairs and the minimum speedup each must sustain.
SPEEDUP_FLOORS = [
    ("BM_MatMul/128", "BM_MatMulNaive/128", 3.0),
    ("BM_Conv1dForward", "BM_Conv1dForwardNaive", 2.0),
    ("BM_Conv1dBackward", "BM_Conv1dBackwardNaive", 2.0),
    ("BM_Conv2dForward", "BM_Conv2dForwardNaive", 2.0),
    ("BM_Conv2dBackward", "BM_Conv2dBackwardNaive", 2.0),
]

REGRESSION_TOLERANCE = 0.15  # fail if >15% slower than baseline


def load_times(path):
    """name -> cpu_time in ns; prefers *_median aggregates when present."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for b in data.get("benchmarks", []):
        name = b["name"]
        if name.endswith(("_mean", "_stddev", "_cv", "_min", "_max")):
            continue
        if name.endswith("_median"):
            name = name[: -len("_median")]
        # A repetition entry and a median aggregate never share a name after
        # stripping: aggregates_only runs emit aggregates only.
        times[name] = float(b["cpu_time"])
    return times


def main():
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} baseline.json current.json")
        return 2
    baseline = load_times(sys.argv[1])
    current = load_times(sys.argv[2])
    strict = os.environ.get("QCORE_PERF_BASELINE_STRICT", "1") != "0"
    failures = []
    warnings = []

    print(f"{'benchmark':<28} {'baseline':>12} {'current':>12} {'delta':>8}")
    for name in TRACKED:
        if name not in current:
            failures.append(f"{name}: missing from current run")
            continue
        if name not in baseline:
            failures.append(f"{name}: missing from committed baseline "
                            "(regenerate bench/baseline_micro.json)")
            continue
        base, cur = baseline[name], current[name]
        delta = cur / base - 1.0
        flag = ""
        if delta > REGRESSION_TOLERANCE:
            flag = "  << REGRESSION"
            msg = (f"{name}: {delta:+.1%} vs baseline "
                   f"({base:.0f} ns -> {cur:.0f} ns)")
            (failures if strict else warnings).append(msg)
        print(f"{name:<28} {base:>10.0f}ns {cur:>10.0f}ns {delta:>+7.1%}"
              f"{flag}")

    print()
    print(f"{'speedup (blocked vs naive)':<40} {'floor':>6} {'actual':>8}")
    for blocked, naive, floor in SPEEDUP_FLOORS:
        if blocked not in current or naive not in current:
            failures.append(f"speedup {blocked}/{naive}: benchmark missing")
            continue
        actual = current[naive] / current[blocked]
        flag = ""
        if actual < floor:
            flag = "  << BELOW FLOOR"
            failures.append(
                f"{blocked}: {actual:.2f}x vs {naive}, floor {floor:.1f}x")
        print(f"{blocked + ' vs naive':<40} {floor:>5.1f}x {actual:>7.2f}x"
              f"{flag}")

    if warnings:
        print("\nbaseline regressions (non-strict mode, not gating):")
        for w in warnings:
            print(f"  - {w}")
    if failures:
        print("\nPERF GATE FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nperf gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
