// Table 5: average accuracy of quantized models in the continual-learning
// setting on the time-series datasets (DSA and USC), QCore/buffer size 30,
// against the seven BP-based baselines, at 2/4/8 bits.
//
// Grid (wall-time scaled from the paper's 56/182 domain combinations): one
// source->target pair per (dataset, architecture), i.e. the structure of the
// paper's excerpt. QCORE_FAST=1 shrinks to one dataset and 4-bit only.
#include <cstdio>

#include "bench/harness.h"
#include "common/table_printer.h"

using namespace qcore;
using namespace qcore::bench;

namespace {

void RunScenario(const char* dataset, const HarSpec& spec,
                 const std::string& model, int source, int target) {
  std::printf("\n-- %s, %s, Subj. %d -> Subj. %d --\n", dataset,
              model.c_str(), source + 1, target + 1);
  BenchConfig config = BenchConfig::TimeSeries();
  ExperimentLab lab(model, LoadHar(spec, source), config);
  DomainData target_data = LoadHar(spec, target);

  const std::vector<int> bits = BenchBits();
  std::vector<std::string> header = {"Method"};
  for (int b : bits) header.push_back(std::to_string(b) + "-bit");
  TablePrinter table(header);

  for (const auto& method : BaselineNames()) {
    std::vector<std::string> row = {method};
    for (int b : bits) {
      row.push_back(TablePrinter::Num(
          lab.RunBaseline(method, target_data, b).avg_accuracy));
    }
    table.AddRow(row);
  }
  {
    std::vector<std::string> row = {"QCore"};
    for (int b : bits) {
      row.push_back(
          TablePrinter::Num(lab.RunQCore(target_data, b).avg_accuracy));
    }
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace

int main() {
  std::printf("== Table 5: continual-learning accuracy, time series "
              "(QCore/buffer size 30) ==\n");
  ReportRunEnvironment();
  HarSpec dsa = HarSpec::Dsa();
  HarSpec usc = HarSpec::Usc();

  RunScenario("DSA", dsa, "InceptionTime", 0, 1);   // Subj. 1 -> Subj. 2
  if (!FastMode()) {
    RunScenario("DSA", dsa, "OmniScaleCNN", 3, 4);  // Subj. 4 -> Subj. 5
    RunScenario("USC", usc, "InceptionTime", 5, 6);  // Subj. 6 -> Subj. 7
    RunScenario("USC", usc, "OmniScaleCNN", 9, 10);  // Subj. 10 -> Subj. 11
  }
  std::printf(
      "\nExpected shape: accuracy rises with bit-width for every method;\n"
      "QCore leads or ties the best baseline in most cells (paper Sec.\n"
      "4.2.2), with occasional cells where a BP baseline edges ahead.\n");
  return 0;
}
