// Tests for the QCore core: Algorithm 1 (builder), Algorithm 2/3 (bit-flip
// network), Algorithm 4 (QCore update), and the continual driver. Uses small
// synthetic problems to keep runtimes in seconds.
#include <gtest/gtest.h>

#include "core/bitflip.h"
#include "core/continual.h"
#include "core/pipeline.h"
#include "core/qcore_builder.h"
#include "core/qcore_update.h"
#include "data/har_generator.h"
#include "models/model_zoo.h"
#include "nn/batchnorm.h"
#include "nn/loss.h"
#include "nn/training.h"
#include "quant/ste_calibrator.h"

namespace qcore {
namespace {

HarSpec SmallSpec() {
  HarSpec spec = HarSpec::Usc();
  spec.num_classes = 6;
  spec.channels = 4;
  spec.length = 32;
  spec.train_per_class = 10;
  spec.test_per_class = 5;
  return spec;
}

struct Fixture {
  HarSpec spec;
  HarDomain source;
  HarDomain target;
  std::unique_ptr<Sequential> model;
  Rng rng{4242};

  Fixture() : spec(SmallSpec()) {
    source = MakeHarDomain(spec, 0);
    target = MakeHarDomain(spec, 1);
    model = MakeOmniScaleCnn(spec.channels, spec.num_classes, &rng);
  }
};

QCoreBuildOptions SmallBuildOptions() {
  QCoreBuildOptions opts;
  opts.size = 18;
  opts.train.epochs = 16;
  opts.train.batch_size = 32;
  opts.train.sgd.lr = 0.03f;
  return opts;
}

TEST(QCoreBuilderTest, BuildsSubsetOfRequestedSize) {
  Fixture f;
  QCoreBuildResult res =
      BuildQCore(f.model.get(), f.source.train, SmallBuildOptions(), &f.rng);
  EXPECT_EQ(static_cast<int>(res.indices.size()), 18);
  EXPECT_EQ(res.qcore.size(), 18);
  EXPECT_EQ(res.combined_misses.size(),
            static_cast<size_t>(f.source.train.size()));
  // Per-level misses recorded for every proxy level plus full precision.
  EXPECT_EQ(res.per_level_misses.size(), 4u);  // {2, 4, 8, 32}
  EXPECT_TRUE(res.per_level_misses.count(32));
  // The FP model must have learned the source domain while building (the
  // synthetic task deliberately has boundary cases, so well below 1.0).
  EXPECT_GT(EvaluateAccuracy(f.model.get(), f.source.test.x(),
                             f.source.test.labels()),
            0.6f);
}

TEST(QCoreBuilderTest, LowerBitProxiesMissMore) {
  Fixture f;
  QCoreBuildResult res =
      BuildQCore(f.model.get(), f.source.train, SmallBuildOptions(), &f.rng);
  auto total = [&](int bits) {
    int64_t sum = 0;
    for (int m : res.per_level_misses.at(bits)) sum += m;
    return sum;
  };
  // 2-bit proxies are more unstable than 8-bit ones and the full-precision
  // model (paper Fig. 8). 4-bit vs 32-bit can tie on a fixture this small,
  // so only the extreme comparison is asserted.
  EXPECT_GE(total(2), total(8));
  EXPECT_GE(total(2), total(32));
}

TEST(QCoreBuilderTest, StrategiesProduceValidSubsets) {
  Fixture f;
  for (SubsetStrategy strategy :
       {SubsetStrategy::kCombined, SubsetStrategy::kSingleLevel,
        SubsetStrategy::kFullPrecision, SubsetStrategy::kRandom}) {
    auto model = MakeOmniScaleCnn(f.spec.channels, f.spec.num_classes, &f.rng);
    QCoreBuildOptions opts = SmallBuildOptions();
    opts.strategy = strategy;
    opts.single_level_index = 1;  // 4-bit
    QCoreBuildResult res =
        BuildQCore(model.get(), f.source.train, opts, &f.rng);
    EXPECT_EQ(res.qcore.size(), opts.size);
  }
}

TEST(QCoreBuilderTest, InfoLossSmallForStratifiedSampling) {
  Fixture f;
  QCoreBuildResult res =
      BuildQCore(f.model.get(), f.source.train, SmallBuildOptions(), &f.rng);
  EXPECT_LE(res.info_loss, 1.0);
}

struct CalibratedFixture : Fixture {
  QCoreBuildResult build;
  std::unique_ptr<QuantizedModel> qm;
  std::unique_ptr<BitFlipNet> bf;

  explicit CalibratedFixture(int bits = 4) {
    build = BuildQCore(model.get(), source.train, SmallBuildOptions(), &rng);
    qm = std::make_unique<QuantizedModel>(*model, bits);
    BitFlipTrainOptions bfopt;
    bfopt.ste.epochs = 15;
    bfopt.ste.batch_size = 16;
    bfopt.augment_episodes = 2;
    bf = std::make_unique<BitFlipNet>(
        TrainBitFlipNet(qm.get(), build.qcore, bfopt, &rng));
    qm->DropShadows();
  }
};

TEST(BitFlipTest, FeatureMatrixShape) {
  CalibratedFixture f;
  SetBatchNormFrozen(f.qm->model(), true);
  (void)f.qm->model()->Forward(f.build.qcore.x(), /*training=*/true);
  for (int t = 0; t < f.qm->num_quantized(); ++t) {
    Tensor features = ComputeBitFlipFeatures(f.qm->quantized(t), nullptr);
    EXPECT_EQ(features.dim(0),
              static_cast<int64_t>(f.qm->quantized(t).codes.size()));
    EXPECT_EQ(features.dim(1), kBitFlipFeatureDim);
  }
}

TEST(BitFlipTest, NetLearnsSyntheticRule) {
  // Rule: label = sign of the first feature, mapped to {0, 1, 2}.
  Rng rng(7);
  const int n = 3000;
  Tensor features({n, kBitFlipFeatureDim});
  std::vector<int> labels(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < kBitFlipFeatureDim; ++j) {
      features.at(i, j) = static_cast<float>(rng.NextGaussian());
    }
    const float v = features.at(i, 0);
    labels[static_cast<size_t>(i)] = v < -0.4f ? 0 : (v > 0.4f ? 2 : 1);
  }
  BitFlipNet bf(8, &rng);
  TrainOptions topt;
  topt.epochs = 20;
  topt.batch_size = 64;
  topt.sgd.lr = 0.05f;
  bf.Train(features, labels, topt, &rng);
  std::vector<int> deltas;
  std::vector<float> conf;
  bf.Predict(features, &deltas, &conf);
  int correct = 0;
  for (int i = 0; i < n; ++i) {
    if (deltas[static_cast<size_t>(i)] + 1 == labels[static_cast<size_t>(i)]) {
      ++correct;
    }
  }
  EXPECT_GT(static_cast<float>(correct) / n, 0.8f);
}

TEST(BitFlipTest, QuantizedNetStillPredicts) {
  Rng rng(8);
  BitFlipNet bf(4, &rng);
  Tensor features = Tensor::Randn({100, kBitFlipFeatureDim}, &rng);
  std::vector<int> labels(100, 1);
  TrainOptions topt;
  topt.epochs = 3;
  bf.Train(features, labels, topt, &rng);
  EXPECT_FALSE(bf.is_quantized());
  bf.Quantize();
  EXPECT_TRUE(bf.is_quantized());
  std::vector<int> deltas;
  std::vector<float> conf;
  bf.Predict(features, &deltas, &conf);
  EXPECT_EQ(deltas.size(), 100u);
  for (float c : conf) {
    EXPECT_GE(c, 0.0f);
    EXPECT_LE(c, 1.0f);
  }
  for (int d : deltas) {
    EXPECT_GE(d, -1);
    EXPECT_LE(d, 1);
  }
}

TEST(BitFlipTest, NetIsTiny) {
  Rng rng(9);
  BitFlipNet bf(4, &rng);
  EXPECT_LT(bf.ParamCount(), 200);
}

TEST(BitFlipTest, CalibrateNeverIncreasesPoolLoss) {
  CalibratedFixture f;
  Dataset pool = MakeUpdatePool(f.build.qcore,
                                SplitIntoStreamBatches(f.target.train, 10,
                                                       &f.rng)[0],
                                &f.rng);
  SoftmaxCrossEntropy ce;
  Tensor logits0 = f.qm->model()->Forward(pool.x(), false);
  const float loss_before = ce.Forward(logits0, pool.labels());
  BitFlipCalibrateOptions copt;
  copt.iterations = 3;
  copt.trial_rows = 0;  // full-pool validation => monotone by construction
  BitFlipCalibrate(f.qm.get(), f.bf.get(), pool.x(), pool.labels(), copt,
                   &f.rng);
  Tensor logits1 = f.qm->model()->Forward(pool.x(), false);
  const float loss_after = ce.Forward(logits1, pool.labels());
  EXPECT_LE(loss_after, loss_before + 1e-5f);
}

TEST(BitFlipTest, CalibrationAdaptsToShiftedDomain) {
  CalibratedFixture f;
  Dataset pool = MakeUpdatePool(f.build.qcore, f.target.train.Subset([&] {
    std::vector<int> idx;
    for (int i = 0; i < 30; ++i) idx.push_back(i);
    return idx;
  }()),
                                &f.rng);
  const float before = EvaluateAccuracy(f.qm->model(), f.target.test.x(),
                                        f.target.test.labels());
  BitFlipCalibrateOptions copt;
  copt.iterations = 6;
  BitFlipCalibrate(f.qm.get(), f.bf.get(), pool.x(), pool.labels(), copt,
                   &f.rng);
  const float after = EvaluateAccuracy(f.qm->model(), f.target.test.x(),
                                       f.target.test.labels());
  EXPECT_GT(after, before);
}

TEST(QCoreUpdateTest, PoolScalesQCoreUpToBatch) {
  Rng rng(10);
  Tensor x = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Dataset qcore(std::move(x), {0, 1}, 2);
  Tensor bx({10, 2});
  Dataset batch(std::move(bx), std::vector<int>(10, 0), 2);
  Dataset pool = MakeUpdatePool(qcore, batch, &rng);
  EXPECT_EQ(pool.size(), 20);  // 10 replicated + 10 stream
}

TEST(QCoreUpdateTest, PoolSubsamplesLargeQCoreToBatch) {
  Rng rng(12);
  Tensor x({40, 2});
  Dataset qcore(std::move(x), std::vector<int>(40, 0), 2);
  Tensor bx({10, 2});
  Dataset batch(std::move(bx), std::vector<int>(10, 1), 2);
  Dataset pool = MakeUpdatePool(qcore, batch, &rng);
  EXPECT_EQ(pool.size(), 20);  // balanced: 10 sampled + 10 stream
}

TEST(QCoreUpdateTest, ResampleLargerThanPoolDuplicates) {
  Rng rng(13);
  Tensor x({10, 2});
  Dataset pool(std::move(x), std::vector<int>(10, 0), 2);
  std::vector<int> misses(10, 1);
  Dataset big = ResampleQCore(pool, misses, 25, &rng);
  EXPECT_EQ(big.size(), 25);
}

TEST(QCoreUpdateTest, ResampleKeepsSize) {
  Rng rng(11);
  Tensor x({40, 3});
  Dataset pool(std::move(x), std::vector<int>(40, 0), 2);
  std::vector<int> misses(40, 0);
  for (int i = 0; i < 10; ++i) misses[static_cast<size_t>(i)] = 2;
  Dataset next = ResampleQCore(pool, misses, 8, &rng);
  EXPECT_EQ(next.size(), 8);
}

TEST(QCoreUpdateTest, StandaloneUpdateRuns) {
  CalibratedFixture f;
  Dataset batch = SplitIntoStreamBatches(f.target.train, 10, &f.rng)[0];
  QCoreUpdateOptions opts;
  Dataset updated = UpdateQCore(f.qm.get(), f.build.qcore, batch, opts,
                                &f.rng);
  EXPECT_EQ(updated.size(), f.build.qcore.size());
}

TEST(ContinualDriverTest, NoBfKeepsModelFrozen) {
  CalibratedFixture f;
  ContinualOptions opts;
  opts.use_bitflip = false;
  const std::vector<int32_t> codes_before = f.qm->quantized(0).codes;
  ContinualDriver driver(f.qm.get(), nullptr, f.build.qcore, opts, &f.rng);
  Dataset batch = SplitIntoStreamBatches(f.target.train, 10, &f.rng)[0];
  Dataset slice = SplitIntoStreamBatches(f.target.test, 10, &f.rng)[0];
  driver.ProcessBatch(batch, slice);
  EXPECT_EQ(f.qm->quantized(0).codes, codes_before);
}

TEST(ContinualDriverTest, NoUpdateKeepsQCoreContents) {
  CalibratedFixture f;
  ContinualOptions opts;
  opts.use_qcore_update = false;
  ContinualDriver driver(f.qm.get(), f.bf.get(), f.build.qcore, opts,
                         &f.rng);
  Dataset batch = SplitIntoStreamBatches(f.target.train, 10, &f.rng)[0];
  driver.ProcessBatch(batch, Dataset());
  EXPECT_EQ(driver.qcore().size(), f.build.qcore.size());
  for (int64_t i = 0; i < f.build.qcore.x().size(); ++i) {
    EXPECT_FLOAT_EQ(driver.qcore().x()[i], f.build.qcore.x()[i]);
  }
}

TEST(ContinualDriverTest, UpdateAbsorbsStreamExamples) {
  CalibratedFixture f;
  ContinualOptions opts;
  ContinualDriver driver(f.qm.get(), f.bf.get(), f.build.qcore, opts,
                         &f.rng);
  Dataset batch = SplitIntoStreamBatches(f.target.train, 10, &f.rng)[0];
  driver.ProcessBatch(batch, Dataset());
  EXPECT_EQ(driver.qcore().size(), f.build.qcore.size());
  // At least one stream example should have entered the QCore: check that
  // some row of the new QCore does not appear in the original.
  bool any_new = false;
  const int64_t row = f.build.qcore.x().size() / f.build.qcore.size();
  for (int i = 0; i < driver.qcore().size() && !any_new; ++i) {
    bool found = false;
    for (int j = 0; j < f.build.qcore.size() && !found; ++j) {
      bool equal = true;
      for (int64_t e = 0; e < row && equal; ++e) {
        equal = driver.qcore().x()[i * row + e] ==
                f.build.qcore.x()[j * row + e];
      }
      found = equal;
    }
    any_new = !found;
  }
  EXPECT_TRUE(any_new);
}

TEST(ContinualDriverTest, RunStreamReportsPerBatchStats) {
  CalibratedFixture f;
  ContinualOptions opts;
  ContinualDriver driver(f.qm.get(), f.bf.get(), f.build.qcore, opts,
                         &f.rng);
  auto batches = SplitIntoStreamBatches(f.target.train, 5, &f.rng);
  auto slices = SplitIntoStreamBatches(f.target.test, 5, &f.rng);
  auto stats = driver.RunStream(batches, slices);
  ASSERT_EQ(stats.size(), 5u);
  for (const auto& s : stats) {
    EXPECT_GE(s.accuracy, 0.0f);
    EXPECT_LE(s.accuracy, 1.0f);
    EXPECT_GT(s.calibration_seconds, 0.0);
  }
  EXPECT_GE(AverageAccuracy(stats), 0.0f);
}

TEST(PipelineTest, EndToEndImprovesOverFrozenModel) {
  // Full pipeline vs the NoBF/NoUpda-style frozen deployment.
  HarSpec spec = SmallSpec();
  HarDomain source = MakeHarDomain(spec, 0);
  HarDomain target = MakeHarDomain(spec, 2);

  PipelineOptions opts;
  opts.bits = 4;
  opts.build = SmallBuildOptions();
  opts.bf_train.ste.epochs = 15;
  opts.bf_train.ste.batch_size = 16;
  opts.bf_train.augment_episodes = 2;
  opts.stream_batches = 5;

  Rng rng(777);
  auto model = MakeOmniScaleCnn(spec.channels, spec.num_classes, &rng);
  PipelineResult with_qcore =
      RunQCorePipeline(model.get(), source.train, source.test, target.train,
                       target.test, opts, &rng);

  Rng rng2(777);
  auto model2 = MakeOmniScaleCnn(spec.channels, spec.num_classes, &rng2);
  PipelineOptions frozen = opts;
  frozen.continual.use_bitflip = false;
  frozen.continual.use_qcore_update = false;
  PipelineResult without =
      RunQCorePipeline(model2.get(), source.train, source.test, target.train,
                       target.test, frozen, &rng2);

  EXPECT_GT(with_qcore.average_accuracy, without.average_accuracy);
  EXPECT_GT(with_qcore.post_calibration_source_accuracy, 0.7f);
}

}  // namespace
}  // namespace qcore
