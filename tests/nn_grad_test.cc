// Numerical gradient checks for every layer's Backward implementation.
// Loss is L(x) = <Forward(x), W> for a fixed random W, so dL/dOutput = W;
// analytic input/parameter gradients are compared against central finite
// differences.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/batchnorm.h"
#include "nn/composite.h"
#include "nn/conv.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "tensor/tensor_ops.h"

namespace qcore {
namespace {

constexpr float kEps = 1e-2f;
constexpr float kTol = 2e-2f;  // relative-ish tolerance for float math

double LayerLoss(Layer* layer, const Tensor& x, const Tensor& w_out) {
  Tensor y = layer->Forward(x, /*training=*/true);
  return Dot(y, w_out);
}

// Checks dL/dx and dL/dparam against finite differences for the given layer
// and input.
void CheckGradients(Layer* layer, const Tensor& x, Rng* rng) {
  Tensor y = layer->Forward(x, /*training=*/true);
  Tensor w_out = Tensor::Randn(y.shape(), rng);
  layer->ZeroGrad();
  // Analytic pass.
  (void)layer->Forward(x, /*training=*/true);
  Tensor grad_in = layer->Backward(w_out);

  // Input gradient.
  Tensor xp = x;
  for (int64_t i = 0; i < x.size(); i += std::max<int64_t>(1, x.size() / 17)) {
    const float orig = xp[i];
    xp[i] = orig + kEps;
    const double lp = LayerLoss(layer, xp, w_out);
    xp[i] = orig - kEps;
    const double lm = LayerLoss(layer, xp, w_out);
    xp[i] = orig;
    const double numeric = (lp - lm) / (2.0 * kEps);
    EXPECT_NEAR(grad_in[i], numeric,
                kTol * (1.0 + std::fabs(numeric)))
        << "input grad mismatch at flat index " << i;
  }

  // Parameter gradients (restore the forward cache for the analytic grads
  // already accumulated above).
  for (Parameter* p : layer->Params()) {
    Tensor& v = p->value;
    for (int64_t i = 0; i < v.size();
         i += std::max<int64_t>(1, v.size() / 13)) {
      const float orig = v[i];
      v[i] = orig + kEps;
      const double lp = LayerLoss(layer, x, w_out);
      v[i] = orig - kEps;
      const double lm = LayerLoss(layer, x, w_out);
      v[i] = orig;
      const double numeric = (lp - lm) / (2.0 * kEps);
      EXPECT_NEAR(p->grad[i], numeric,
                  kTol * (1.0 + std::fabs(numeric)))
          << "param " << p->name << " grad mismatch at " << i;
    }
  }
}

TEST(GradCheckTest, Dense) {
  Rng rng(1);
  Dense layer(5, 4, &rng);
  Tensor x = Tensor::Randn({3, 5}, &rng);
  CheckGradients(&layer, x, &rng);
}

TEST(GradCheckTest, Relu) {
  Rng rng(2);
  Relu layer;
  // Keep inputs away from the kink at 0.
  Tensor x = Tensor::Randn({4, 6}, &rng);
  for (int64_t i = 0; i < x.size(); ++i) {
    if (std::fabs(x[i]) < 0.05f) x[i] = 0.2f;
  }
  CheckGradients(&layer, x, &rng);
}

TEST(GradCheckTest, Conv1dWithPaddingAndStride) {
  Rng rng(3);
  Conv1d layer(2, 3, 3, /*stride=*/2, /*pad=*/1, &rng);
  Tensor x = Tensor::Randn({2, 2, 9}, &rng);
  CheckGradients(&layer, x, &rng);
}

TEST(GradCheckTest, Conv1dSamePad) {
  Rng rng(4);
  Conv1d layer(3, 2, 5, 1, Conv1d::SamePad(5), &rng);
  Tensor x = Tensor::Randn({2, 3, 8}, &rng);
  CheckGradients(&layer, x, &rng);
}

TEST(GradCheckTest, Conv2d) {
  Rng rng(5);
  Conv2d layer(2, 3, 3, /*stride=*/1, /*pad=*/1, &rng);
  Tensor x = Tensor::Randn({2, 2, 5, 5}, &rng);
  CheckGradients(&layer, x, &rng);
}

TEST(GradCheckTest, Conv2dStride2NoPad) {
  Rng rng(6);
  Conv2d layer(1, 2, 3, 2, 0, &rng);
  Tensor x = Tensor::Randn({2, 1, 7, 7}, &rng);
  CheckGradients(&layer, x, &rng);
}

TEST(GradCheckTest, MaxPool1d) {
  Rng rng(7);
  MaxPool1d layer(2, 2);
  Tensor x = Tensor::Randn({2, 3, 8}, &rng);
  CheckGradients(&layer, x, &rng);
}

TEST(GradCheckTest, MaxPool2d) {
  Rng rng(8);
  MaxPool2d layer(2, 2);
  Tensor x = Tensor::Randn({2, 2, 6, 6}, &rng);
  CheckGradients(&layer, x, &rng);
}

TEST(GradCheckTest, GlobalAvgPools) {
  Rng rng(9);
  GlobalAvgPool1d gap1;
  Tensor x1 = Tensor::Randn({2, 3, 7}, &rng);
  CheckGradients(&gap1, x1, &rng);
  GlobalAvgPool2d gap2;
  Tensor x2 = Tensor::Randn({2, 3, 4, 4}, &rng);
  CheckGradients(&gap2, x2, &rng);
}

TEST(GradCheckTest, Flatten) {
  Rng rng(10);
  Flatten layer;
  Tensor x = Tensor::Randn({3, 2, 4}, &rng);
  CheckGradients(&layer, x, &rng);
}

TEST(GradCheckTest, BatchNormTraining) {
  Rng rng(11);
  BatchNorm layer(3);
  Tensor x = Tensor::Randn({4, 3, 5}, &rng);
  // BatchNorm's training forward depends on batch statistics, which the
  // finite-difference perturbation changes too — the check still holds
  // because the loss is evaluated through the same training forward.
  CheckGradients(&layer, x, &rng);
}

TEST(GradCheckTest, BatchNormFrozen) {
  Rng rng(12);
  BatchNorm layer(3);
  // Populate running stats with one training pass first.
  Tensor warm = Tensor::Randn({8, 3, 5}, &rng);
  (void)layer.Forward(warm, /*training=*/true);
  layer.set_frozen(true);
  Tensor x = Tensor::Randn({4, 3, 5}, &rng);
  CheckGradients(&layer, x, &rng);
}

TEST(GradCheckTest, BatchNormDenseRank2) {
  Rng rng(13);
  BatchNorm layer(6);
  Tensor x = Tensor::Randn({5, 6}, &rng);
  CheckGradients(&layer, x, &rng);
}

TEST(GradCheckTest, SequentialStack) {
  Rng rng(14);
  Sequential seq;
  seq.Add(std::make_unique<Conv1d>(2, 4, 3, 1, 1, &rng));
  seq.Add(std::make_unique<Relu>());
  seq.Add(std::make_unique<GlobalAvgPool1d>());
  seq.Add(std::make_unique<Dense>(4, 3, &rng));
  Tensor x = Tensor::Randn({3, 2, 8}, &rng);
  CheckGradients(&seq, x, &rng);
}

TEST(GradCheckTest, ResidualIdentity) {
  Rng rng(15);
  auto body = std::make_unique<Sequential>();
  body->Add(std::make_unique<Conv1d>(3, 3, 3, 1, 1, &rng));
  Residual layer(std::move(body), nullptr);
  Tensor x = Tensor::Randn({2, 3, 6}, &rng);
  CheckGradients(&layer, x, &rng);
}

TEST(GradCheckTest, ResidualProjection) {
  Rng rng(16);
  auto body = std::make_unique<Sequential>();
  body->Add(std::make_unique<Conv1d>(2, 4, 3, 1, 1, &rng));
  auto shortcut = std::make_unique<Conv1d>(2, 4, 1, 1, 0, &rng);
  Residual layer(std::move(body), std::move(shortcut));
  Tensor x = Tensor::Randn({2, 2, 6}, &rng);
  CheckGradients(&layer, x, &rng);
}

TEST(GradCheckTest, ParallelConcat) {
  Rng rng(17);
  std::vector<std::unique_ptr<Layer>> branches;
  branches.push_back(std::make_unique<Conv1d>(2, 3, 3, 1, 1, &rng));
  branches.push_back(std::make_unique<Conv1d>(2, 2, 5, 1, 2, &rng));
  ParallelConcat layer(std::move(branches));
  Tensor x = Tensor::Randn({2, 2, 7}, &rng);
  CheckGradients(&layer, x, &rng);
}

TEST(GradCheckTest, SoftmaxCrossEntropy) {
  Rng rng(18);
  Tensor logits = Tensor::Randn({4, 5}, &rng);
  std::vector<int> labels = {0, 2, 4, 1};
  SoftmaxCrossEntropy ce;
  ce.Forward(logits, labels);
  Tensor grad = ce.Backward();
  for (int64_t i = 0; i < logits.size(); ++i) {
    const float orig = logits[i];
    SoftmaxCrossEntropy probe;
    logits[i] = orig + kEps;
    const double lp = probe.Forward(logits, labels);
    logits[i] = orig - kEps;
    const double lm = probe.Forward(logits, labels);
    logits[i] = orig;
    const double numeric = (lp - lm) / (2.0 * kEps);
    EXPECT_NEAR(grad[i], numeric, kTol * (1.0 + std::fabs(numeric)));
  }
}

TEST(GradCheckTest, MseLoss) {
  Rng rng(19);
  Tensor pred = Tensor::Randn({3, 4}, &rng);
  Tensor target = Tensor::Randn({3, 4}, &rng);
  Tensor grad;
  MseLoss(pred, target, &grad);
  for (int64_t i = 0; i < pred.size(); ++i) {
    const float orig = pred[i];
    pred[i] = orig + kEps;
    const double lp = MseLoss(pred, target, nullptr);
    pred[i] = orig - kEps;
    const double lm = MseLoss(pred, target, nullptr);
    pred[i] = orig;
    const double numeric = (lp - lm) / (2.0 * kEps);
    EXPECT_NEAR(grad[i], numeric, kTol * (1.0 + std::fabs(numeric)));
  }
}

}  // namespace
}  // namespace qcore
