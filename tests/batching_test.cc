// Tests for cross-device inference batching: the batched path must be
// bit-identical to the unbatched request-at-a-time path — same per-request
// predictions (in the same per-device delivery order) and same final model
// codes — across batch sizes, thread counts, and backends (the workload
// harness runs against the FleetBackend interface, so the single-pool
// FleetServer and the sharded router with its per-shard batchers are both
// pinned). Also covers the flush triggers: size (max_batch), deadline
// (max_delay_us), explicit barriers (calibration/snapshot/drain), and the
// degenerate single-request batch.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/qcore_builder.h"
#include "data/har_generator.h"
#include "models/model_zoo.h"
#include "serving/backend.h"
#include "serving/router.h"
#include "serving/server.h"
#include "tensor/tensor_ops.h"

namespace qcore {
namespace {

// One server-side preparation shared across tests (the expensive part).
struct FleetFixture {
  HarSpec spec;
  HarDomain source;
  HarDomain target;
  Dataset qcore;
  std::unique_ptr<QuantizedModel> base;  // deployed edge form
  std::unique_ptr<BitFlipNet> bf;
  std::vector<Dataset> batches;
  std::vector<Dataset> slices;
  // Distinct single-row inference inputs: request i carrying input
  // i % size must get back the prediction for that exact row, which is
  // what catches scatter mixups and delivery reordering.
  std::vector<Tensor> probes;
};

FleetFixture* GetFixture() {
  static FleetFixture* fixture = []() {
    auto* f = new FleetFixture();
    f->spec = HarSpec::Usc();
    f->spec.num_classes = 5;
    f->spec.channels = 3;
    f->spec.length = 24;
    f->spec.train_per_class = 8;
    f->spec.test_per_class = 4;
    f->source = MakeHarDomain(f->spec, 0);
    f->target = MakeHarDomain(f->spec, 1);

    Rng rng(20250601);
    auto model = MakeOmniScaleCnn(f->spec.channels, f->spec.num_classes,
                                  &rng);
    QCoreBuildOptions build;
    build.size = 15;
    build.train.epochs = 8;
    build.train.sgd.lr = 0.03f;
    auto built = BuildQCore(model.get(), f->source.train, build, &rng);
    f->qcore = built.qcore;

    f->base = std::make_unique<QuantizedModel>(*model, 4);
    BitFlipTrainOptions bft;
    bft.ste.epochs = 8;
    bft.ste.batch_size = 16;
    bft.augment_episodes = 1;
    f->bf = std::make_unique<BitFlipNet>(
        TrainBitFlipNet(f->base.get(), f->qcore, bft, &rng));
    f->base->DropShadows();

    Rng split_rng(404);
    f->batches = SplitIntoStreamBatches(f->target.train, 3, &split_rng);
    f->slices = SplitIntoStreamBatches(f->target.test, 3, &split_rng);
    for (int i = 0; i < 6; ++i) {
      f->probes.push_back(f->target.test.x().GatherRows(
          {i % static_cast<int>(f->target.test.size())}));
    }
    return f;
  }();
  return fixture;
}

ContinualOptions TestContinualOptions() {
  ContinualOptions opts;
  opts.iterations = 2;
  return opts;
}

// -------------------------------------------- model-level batched forward

TEST(PredictBatchedTest, BitIdenticalToPerInputForward) {
  FleetFixture* f = GetFixture();
  auto model = f->base->Clone();
  // Inputs of different row counts, including a full batch and single rows.
  std::vector<Tensor> inputs;
  inputs.push_back(f->target.test.x());
  inputs.push_back(f->probes[0]);
  inputs.push_back(f->target.test.x().SliceRows(2, 7));
  inputs.push_back(f->probes[3]);

  std::vector<const Tensor*> ptrs;
  for (const Tensor& t : inputs) ptrs.push_back(&t);
  const std::vector<std::vector<int>> batched = model->PredictBatched(ptrs);

  ASSERT_EQ(batched.size(), inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    const std::vector<int> alone =
        ArgMaxRows(model->Forward(inputs[i], /*training=*/false));
    EXPECT_EQ(batched[i], alone) << "input " << i;
  }
}

// ------------------------------------------------- server-level workloads

struct WorkloadResult {
  // Per device, predictions of every inference request in submission order.
  std::vector<std::vector<std::vector<int>>> predictions;
  std::vector<std::vector<std::vector<int32_t>>> codes;
};

FleetServerOptions BatchedOptions(int threads, int max_batch,
                                  double max_delay_us) {
  FleetServerOptions opts;
  opts.num_threads = threads;
  opts.continual = TestContinualOptions();
  opts.seed = 0x5EED;
  opts.enable_batching = max_batch > 0;
  opts.batching.max_batch = max_batch > 0 ? max_batch : 1;
  opts.batching.max_delay_us = max_delay_us;
  return opts;
}

// `num_shards` == 0 selects the single-pool FleetServer; > 0 the sharded
// router (each shard with its own batcher).
std::unique_ptr<FleetBackend> MakeBackend(FleetFixture* f,
                                          const FleetServerOptions& opts,
                                          int num_shards) {
  if (num_shards <= 0) {
    return std::make_unique<FleetServer>(*f->base, *f->bf, opts);
  }
  ShardedFleetServerOptions sopts;
  sopts.num_shards = num_shards;
  sopts.shard = opts;
  return std::make_unique<ShardedFleetServer>(*f->base, *f->bf, sopts);
}

// Interleaved workload: per stream batch and device, a burst of distinct
// inference probes, one calibration step, one more probe. Exercises
// size-trigger flushes (bursts), barrier flushes (calibration), and the
// drain flush (trailing probes).
WorkloadResult RunWorkload(const FleetServerOptions& opts,
                           int num_shards = 0) {
  FleetFixture* f = GetFixture();
  const std::vector<std::string> devices = {"dev-a", "dev-b"};
  auto server = MakeBackend(f, opts, num_shards);
  for (const auto& d : devices) server->RegisterDevice(d, f->qcore);

  std::vector<std::vector<std::future<InferenceResult>>> futures(
      devices.size());
  for (size_t b = 0; b < f->batches.size(); ++b) {
    for (size_t d = 0; d < devices.size(); ++d) {
      for (size_t p = 0; p < 3; ++p) {
        futures[d].push_back(server->SubmitInference(
            devices[d], f->probes[(b + d + p) % f->probes.size()]));
      }
      server->SubmitCalibration(devices[d], f->batches[b], f->slices[b]);
      futures[d].push_back(server->SubmitInference(
          devices[d], f->probes[(b + d) % f->probes.size()]));
    }
  }
  server->Drain();

  WorkloadResult result;
  for (size_t d = 0; d < devices.size(); ++d) {
    result.predictions.emplace_back();
    for (auto& fu : futures[d]) {
      result.predictions.back().push_back(fu.get().predictions);
    }
    server->WithSessionQuiesced(devices[d], [&](CalibrationSession& s) {
      result.codes.push_back(s.model()->AllCodes());
    });
  }
  return result;
}

TEST(InferenceBatchingTest, BitIdenticalAcrossBatchSizesAndThreadCounts) {
  // Reference: unbatched, inline execution (the single-threaded pipeline
  // equivalence is already covered by serving_test).
  const WorkloadResult reference = RunWorkload(BatchedOptions(0, 0, 0.0));
  ASSERT_FALSE(reference.predictions[0].empty());

  for (int max_batch : {2, 4, 8}) {
    for (int threads : {1, 8}) {
      const WorkloadResult batched =
          RunWorkload(BatchedOptions(threads, max_batch, 0.0));
      EXPECT_EQ(batched.predictions, reference.predictions)
          << "max_batch=" << max_batch << " threads=" << threads;
      EXPECT_EQ(batched.codes, reference.codes)
          << "max_batch=" << max_batch << " threads=" << threads;
    }
  }
}

TEST(InferenceBatchingTest, ShardedBatchersStayBitIdentical) {
  // Per-shard batchers must not change anything either: the same workload
  // through the sharded router (batched, multi-threaded shards) equals the
  // unbatched inline reference.
  const WorkloadResult reference = RunWorkload(BatchedOptions(0, 0, 0.0));
  for (int num_shards : {2, 3}) {
    const WorkloadResult sharded =
        RunWorkload(BatchedOptions(2, 4, 0.0), num_shards);
    EXPECT_EQ(sharded.predictions, reference.predictions)
        << "num_shards=" << num_shards;
    EXPECT_EQ(sharded.codes, reference.codes)
        << "num_shards=" << num_shards;
  }
}

TEST(InferenceBatchingTest, DeadlineFlushTimingDoesNotChangeResults) {
  // A live deadline makes flush points timing-dependent; results must not
  // be. 200us deadline with a multi-threaded pool races the flusher
  // against barriers on purpose.
  const WorkloadResult reference = RunWorkload(BatchedOptions(0, 0, 0.0));
  const WorkloadResult batched = RunWorkload(BatchedOptions(2, 4, 200.0));
  EXPECT_EQ(batched.predictions, reference.predictions);
  EXPECT_EQ(batched.codes, reference.codes);
}

TEST(InferenceBatchingTest, DegenerateSingleRequestBatches) {
  // max_batch=1: every request flushes by itself through the batched
  // machinery; must equal the unbatched path and record occupancy-1
  // batches only.
  FleetFixture* f = GetFixture();
  FleetServer server(*f->base, *f->bf, BatchedOptions(2, 1, 0.0));
  server.RegisterDevice("dev", f->qcore);
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(server.SubmitInference("dev", f->probes[i]));
  }
  server.Drain();
  auto single_model = f->base->Clone();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(futures[i].get().predictions,
              ArgMaxRows(single_model->Forward(f->probes[i], false)));
  }
  EXPECT_EQ(server.metrics().batch_occupancy().CountAt(1), 5u);
  EXPECT_EQ(server.metrics().batch_occupancy().CountAtLeast(2), 0u);
}

TEST(InferenceBatchingTest, SizeTriggerFlushesWithoutDrain) {
  FleetFixture* f = GetFixture();
  // No deadline, no barrier: only the size trigger can flush.
  FleetServer server(*f->base, *f->bf, BatchedOptions(2, 3, 0.0));
  server.RegisterDevice("dev", f->qcore);
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(server.SubmitInference("dev", f->probes[i]));
  }
  for (auto& fu : futures) {
    ASSERT_EQ(fu.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
  }
  EXPECT_EQ(server.metrics().batch_occupancy().CountAt(3), 1u);

  // Two stragglers stay pending (below max_batch, nothing to flush them)…
  auto s1 = server.SubmitInference("dev", f->probes[3]);
  auto s2 = server.SubmitInference("dev", f->probes[4]);
  EXPECT_EQ(s1.wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout);
  // …until Drain acts as the barrier.
  server.Drain();
  EXPECT_EQ(s1.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(s2.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(server.metrics().batch_occupancy().CountAt(2), 1u);
}

TEST(InferenceBatchingTest, DeadlineFlushResolvesASubMaxBatch) {
  FleetFixture* f = GetFixture();
  // Huge max_batch, 2ms deadline: only the flusher thread can resolve it.
  FleetServer server(*f->base, *f->bf, BatchedOptions(2, 64, 2000.0));
  server.RegisterDevice("dev", f->qcore);
  auto fu = server.SubmitInference("dev", f->probes[0]);
  ASSERT_EQ(fu.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  auto model = f->base->Clone();
  EXPECT_EQ(fu.get().predictions,
            ArgMaxRows(model->Forward(f->probes[0], false)));
  EXPECT_EQ(server.metrics().batch_occupancy().CountAt(1), 1u);
}

TEST(InferenceBatchingTest, CalibrationBarrierPreservesModelVisibility) {
  FleetFixture* f = GetFixture();
  // No deadline: the inference submitted before calibration must be
  // flushed BY the calibration barrier and see the pre-calibration model.
  FleetServer server(*f->base, *f->bf, BatchedOptions(1, 64, 0.0));
  server.RegisterDevice("dev", f->qcore);
  auto before = server.SubmitInference("dev", f->probes[0]);
  auto calib = server.SubmitCalibration("dev", f->batches[0], f->slices[0]);
  auto after = server.SubmitInference("dev", f->probes[0]);
  server.Drain();

  auto pre_model = f->base->Clone();
  EXPECT_EQ(before.get().predictions,
            ArgMaxRows(pre_model->Forward(f->probes[0], false)));
  calib.get();
  // The post-calibration prediction must come from the calibrated model.
  std::vector<int> calibrated_prediction;
  server.WithSessionQuiesced("dev", [&](CalibrationSession& s) {
    calibrated_prediction = ArgMaxRows(s.model()->Forward(f->probes[0], false));
  });
  EXPECT_EQ(after.get().predictions, calibrated_prediction);
}

}  // namespace
}  // namespace qcore
