// Tests for models/: every architecture builds, forwards with the right
// shapes, backprops, clones faithfully, and can be trained a little.
#include <gtest/gtest.h>

#include "models/model_zoo.h"
#include "nn/loss.h"
#include "nn/training.h"

namespace qcore {
namespace {

struct ModelCase {
  std::string name;
  bool time_series;
};

class ModelZooTest : public ::testing::TestWithParam<ModelCase> {};

Tensor InputFor(const ModelCase& c, Rng* rng, int n = 4) {
  if (c.time_series) return Tensor::Randn({n, 5, 32}, rng);
  return Tensor::Randn({n, 3, 16, 16}, rng);
}

std::unique_ptr<Sequential> Build(const ModelCase& c, Rng* rng) {
  if (c.time_series) return MakeTimeSeriesModel(c.name, 5, 7, rng);
  return MakeImageModel(c.name, 3, 16, 16, 7, rng);
}

TEST_P(ModelZooTest, ForwardShape) {
  Rng rng(1);
  auto model = Build(GetParam(), &rng);
  Tensor y = model->Forward(InputFor(GetParam(), &rng), false);
  EXPECT_EQ(y.ndim(), 2);
  EXPECT_EQ(y.dim(0), 4);
  EXPECT_EQ(y.dim(1), 7);
}

TEST_P(ModelZooTest, BackwardRunsAndProducesGradients) {
  Rng rng(2);
  auto model = Build(GetParam(), &rng);
  Tensor x = InputFor(GetParam(), &rng);
  SoftmaxCrossEntropy ce;
  Tensor logits = model->Forward(x, true);
  ce.Forward(logits, {0, 1, 2, 3});
  model->Backward(ce.Backward());
  double grad_norm = 0.0;
  for (Parameter* p : model->Params()) {
    for (int64_t i = 0; i < p->grad.size(); ++i) {
      grad_norm += static_cast<double>(p->grad[i]) * p->grad[i];
    }
  }
  EXPECT_GT(grad_norm, 0.0);
}

TEST_P(ModelZooTest, HasReasonableParameterCount) {
  Rng rng(3);
  auto model = Build(GetParam(), &rng);
  const int64_t params = CountParams(model.get());
  EXPECT_GT(params, 300);
  EXPECT_LT(params, 60000);  // CPU-trainable by design
}

TEST_P(ModelZooTest, CloneReproducesOutputs) {
  Rng rng(4);
  auto model = Build(GetParam(), &rng);
  Tensor x = InputFor(GetParam(), &rng);
  (void)model->Forward(x, true);  // move BN stats if any
  auto copy = model->Clone();
  Tensor y1 = model->Forward(x, false);
  Tensor y2 = copy->Forward(x, false);
  for (int64_t i = 0; i < y1.size(); ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Models, ModelZooTest,
    ::testing::Values(ModelCase{"InceptionTime", true},
                      ModelCase{"OmniScaleCNN", true},
                      ModelCase{"ResNet18", false},
                      ModelCase{"VGG16", false}),
    [](const ::testing::TestParamInfo<ModelCase>& info) {
      std::string name = info.param.name;
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

TEST(ModelZooTest2, TimeSeriesModelsLearnEasyProblem) {
  Rng rng(5);
  // Class 0: low values; class 1: high values — trivially separable.
  const int n = 60;
  Tensor x({n, 2, 16});
  std::vector<int> y(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int cls = i % 2;
    for (int64_t e = 0; e < 2 * 16; ++e) {
      x[i * 32 + e] = static_cast<float>(
          rng.NextGaussian(cls ? 1.5 : -1.5, 0.4));
    }
    y[static_cast<size_t>(i)] = cls;
  }
  for (const char* name : {"InceptionTime", "OmniScaleCNN"}) {
    auto model = MakeTimeSeriesModel(name, 2, 2, &rng);
    TrainOptions topt;
    topt.epochs = 10;
    topt.batch_size = 16;
    topt.sgd.lr = 0.02f;
    TrainClassifier(model.get(), x, y, topt, &rng);
    EXPECT_GT(EvaluateAccuracy(model.get(), x, y), 0.9f) << name;
  }
}

}  // namespace
}  // namespace qcore
