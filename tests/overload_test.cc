// Overload-control plane tests (serving/overload.h): deadline shedding
// keeps delivered results bit-identical while expired work never reaches a
// forward pass; priority aging guarantees calibration progress under an
// inference flood; the hierarchical admission tree refuses at the right
// level with exact per-reason accounting; migration is non-blocking for
// unrelated devices; and the chaos points (poolSaturation,
// deadlineClockSkew, limiterRefuse) fault the plane without breaking any
// of those invariants. Runs under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/qcore_builder.h"
#include "data/har_generator.h"
#include "models/model_zoo.h"
#include "obs/whiteboard.h"
#include "runtime/thread_pool.h"
#include "serving/backend.h"
#include "serving/overload.h"
#include "serving/router.h"
#include "serving/server.h"
#include "testing/fault_injector.h"

namespace qcore {
namespace {

// ----------------------------------------------------------- clock + policy

TEST(OverloadClockTest, ZeroBudgetNeverExpires) {
  EXPECT_EQ(OverloadClock::DeadlineFor(0.0), OverloadClock::NoDeadline());
  EXPECT_EQ(OverloadClock::DeadlineFor(-5.0), OverloadClock::NoDeadline());
  EXPECT_FALSE(OverloadClock::Expired(OverloadClock::NoDeadline()));
}

TEST(OverloadClockTest, PositiveBudgetExpires) {
  const auto deadline = OverloadClock::DeadlineFor(100.0);  // 100us
  EXPECT_NE(deadline, OverloadClock::NoDeadline());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(OverloadClock::Expired(deadline));
}

TEST(RetryPolicyTest, BackoffIsDeterministicAndJitterBounded) {
  RetryPolicy policy;
  policy.base_backoff_us = 1000;
  policy.multiplier = 2.0;
  policy.jitter = 0.25;
  Rng rng_a(7), rng_b(7);
  for (int attempt = 1; attempt <= 5; ++attempt) {
    const uint64_t a = ComputeBackoffUs(policy, attempt, &rng_a);
    const uint64_t b = ComputeBackoffUs(policy, attempt, &rng_b);
    EXPECT_EQ(a, b);  // same seed, same schedule
    const double nominal = 1000.0 * std::pow(2.0, attempt - 1);
    EXPECT_GE(static_cast<double>(a), nominal * 0.75 - 1.0);
    EXPECT_LE(static_cast<double>(a), nominal * 1.25 + 1.0);
  }
  // Different seeds de-synchronize retries (the thundering-herd fix).
  Rng rng_c(8);
  bool any_different = false;
  Rng rng_d(7);
  for (int attempt = 1; attempt <= 5; ++attempt) {
    if (ComputeBackoffUs(policy, attempt, &rng_c) !=
        ComputeBackoffUs(policy, attempt, &rng_d)) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(RetryPolicyTest, RetriesResourceExhaustedButNotDeadlineExceeded) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_backoff_us = 1;  // keep the test fast
  int shed_calls = 0;
  Status out = RetryWithBackoff(policy, [&]() {
    ++shed_calls;
    return shed_calls < 3 ? Status::ResourceExhausted("shed")
                          : Status::OK();
  });
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(shed_calls, 3);

  int deadline_calls = 0;
  out = RetryWithBackoff(policy, [&]() {
    ++deadline_calls;
    return Status::DeadlineExceeded("budget gone");
  });
  EXPECT_EQ(out.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline_calls, 1);  // never retried

  int always_shed = 0;
  out = RetryWithBackoff(policy, [&]() {
    ++always_shed;
    return Status::ResourceExhausted("still full");
  });
  EXPECT_EQ(out.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(always_shed, policy.max_attempts);
}

// -------------------------------------------------------- admission tree

TEST(AdmissionLimiterTest, RefusesAtTheTightestLevelAndRollsBack) {
  AdmissionLimiter limiter(AdmissionCaps{/*total=*/3, 0, 0});
  AdmissionNode* shard = limiter.AddShard(AdmissionCaps{/*total=*/2, 0, 0});
  AdmissionNode* s1 = limiter.AddSession(shard, AdmissionCaps{0, 0, 0});
  AdmissionNode* s2 = limiter.AddSession(shard, AdmissionCaps{0, 0, 0});

  EXPECT_EQ(limiter.TryAcquire(s1, true), AdmissionLevel::kNone);
  EXPECT_EQ(limiter.TryAcquire(s2, true), AdmissionLevel::kNone);
  // Third acquisition: the session is unbounded, the SHARD cap (2) refuses
  // — and the session slot taken optimistically must be rolled back.
  EXPECT_EQ(limiter.TryAcquire(s1, true), AdmissionLevel::kShard);
  EXPECT_EQ(s1->total_depth(), 1);
  EXPECT_EQ(shard->total_depth(), 2);
  EXPECT_EQ(limiter.fleet()->total_depth(), 2);
  EXPECT_EQ(limiter.refusals(AdmissionLevel::kShard), 1u);
  EXPECT_EQ(limiter.refusals(AdmissionLevel::kFleet), 0u);

  // A second shard is refused by the FLEET cap (3) once it holds one.
  AdmissionNode* shard2 = limiter.AddShard(AdmissionCaps{0, 0, 0});
  AdmissionNode* s3 = limiter.AddSession(shard2, AdmissionCaps{0, 0, 0});
  EXPECT_EQ(limiter.TryAcquire(s3, true), AdmissionLevel::kNone);
  EXPECT_EQ(limiter.TryAcquire(s3, true), AdmissionLevel::kFleet);
  EXPECT_EQ(shard2->total_depth(), 1);  // rolled back to the held one
  EXPECT_EQ(limiter.refusals(AdmissionLevel::kFleet), 1u);

  // Releases unwind every level.
  limiter.Release(s1, true);
  limiter.Release(s2, true);
  limiter.Release(s3, true);
  EXPECT_EQ(limiter.fleet()->total_depth(), 0);
  EXPECT_EQ(shard->total_depth(), 0);
  EXPECT_EQ(s1->total_depth(), 0);
}

TEST(AdmissionLimiterTest, PerClassCapsAreIndependent) {
  AdmissionLimiter limiter(AdmissionCaps{0, 0, 0});
  AdmissionNode* shard = limiter.AddShard(AdmissionCaps{0, 0, 0});
  AdmissionNode* s =
      limiter.AddSession(shard, AdmissionCaps{0, /*inference=*/1,
                                              /*calibration=*/2});
  EXPECT_EQ(limiter.TryAcquire(s, true), AdmissionLevel::kNone);
  EXPECT_EQ(limiter.TryAcquire(s, true), AdmissionLevel::kSession);
  EXPECT_EQ(limiter.TryAcquire(s, false), AdmissionLevel::kNone);
  EXPECT_EQ(limiter.TryAcquire(s, false), AdmissionLevel::kNone);
  EXPECT_EQ(limiter.TryAcquire(s, false), AdmissionLevel::kSession);
  EXPECT_EQ(s->inference_depth(), 1);
  EXPECT_EQ(s->calibration_depth(), 2);
  EXPECT_EQ(s->refusals(), 2u);
}

// ------------------------------------------------------------ pool aging

TEST(ThreadPoolAgingTest, AgedLowTaskOvertakesQueuedHighWork) {
  ThreadPoolOptions opts;
  opts.num_threads = 1;
  opts.aging_us = 1000;  // 1ms
  ThreadPool pool(opts);
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  pool.Schedule([&]() {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&]() { return gate_open; });
  });

  std::mutex order_mu;
  std::vector<int> order;
  pool.Schedule(
      [&]() {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(100);  // the starving low task
      },
      TaskPriority::kLow);
  // Let the low task age past the promotion threshold while high work
  // keeps arriving — without aging it would run dead last.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  for (int i = 0; i < 4; ++i) {
    pool.Schedule(
        [&, i]() {
          std::lock_guard<std::mutex> lock(order_mu);
          order.push_back(i);
        },
        TaskPriority::kHigh);
  }
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  pool.WaitIdle();

  // The aged low task was promoted over the queued high work.
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], 100);
  EXPECT_GE(pool.aged_promotions(), 1u);
}

TEST(ThreadPoolAgingTest, ZeroAgingKeepsStrictPriority) {
  ThreadPoolOptions opts;
  opts.num_threads = 1;
  opts.aging_us = 0;  // aging disabled: the historical strict order
  ThreadPool pool(opts);
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  pool.Schedule([&]() {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&]() { return gate_open; });
  });
  std::mutex order_mu;
  std::vector<int> order;
  pool.Schedule(
      [&]() {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(100);
      },
      TaskPriority::kLow);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  pool.Schedule([&]() {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back(0);
  });
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  pool.WaitIdle();
  const std::vector<int> expected = {0, 100};
  EXPECT_EQ(order, expected);
  EXPECT_EQ(pool.aged_promotions(), 0u);
}

// --------------------------------------------------------- fleet fixture

struct FleetFixture {
  HarSpec spec;
  HarDomain target;
  Dataset qcore;
  std::unique_ptr<QuantizedModel> base;
  std::unique_ptr<BitFlipNet> bf;
  std::vector<Dataset> batches;
  std::vector<Dataset> slices;
};

FleetFixture* GetFixture() {
  static FleetFixture* fixture = []() {
    auto* f = new FleetFixture();
    f->spec = HarSpec::Usc();
    f->spec.num_classes = 5;
    f->spec.channels = 3;
    f->spec.length = 24;
    f->spec.train_per_class = 8;
    f->spec.test_per_class = 4;
    HarDomain source = MakeHarDomain(f->spec, 0);
    f->target = MakeHarDomain(f->spec, 1);

    Rng rng(20250602);
    auto model = MakeOmniScaleCnn(f->spec.channels, f->spec.num_classes,
                                  &rng);
    QCoreBuildOptions build;
    build.size = 15;
    build.train.epochs = 6;
    build.train.sgd.lr = 0.03f;
    auto built = BuildQCore(model.get(), source.train, build, &rng);
    f->qcore = built.qcore;

    f->base = std::make_unique<QuantizedModel>(*model, 4);
    BitFlipTrainOptions bft;
    bft.ste.epochs = 6;
    bft.ste.batch_size = 16;
    bft.augment_episodes = 1;
    f->bf = std::make_unique<BitFlipNet>(
        TrainBitFlipNet(f->base.get(), f->qcore, bft, &rng));
    f->base->DropShadows();

    Rng split_rng(11);
    f->batches = SplitIntoStreamBatches(f->target.train, 3, &split_rng);
    f->slices = SplitIntoStreamBatches(f->target.test, 3, &split_rng);
    return f;
  }();
  return fixture;
}

ContinualOptions FastContinualOptions() {
  ContinualOptions opts;
  opts.iterations = 1;
  return opts;
}

const DeviceRow* FindDevice(const WhiteboardImage& image,
                            const std::string& id) {
  for (const auto& row : image.devices) {
    if (row.device_id == id) return &row;
  }
  return nullptr;
}

// ------------------------------------------------------ deadline shedding

// A budgeted request stuck behind a slow task resolves (never hangs) with
// kDeadlineExceeded and empty predictions; the accounting stays exact:
// accepted == executed + deadline-shed, and the whiteboard rows carry the
// per-reason breakdown.
TEST(DeadlineShedTest, ExpiredRequestResolvesWithoutExecuting) {
  FleetFixture* f = GetFixture();
  FleetServerOptions opts;
  opts.num_threads = 1;
  opts.continual = FastContinualOptions();
  opts.simulated_device_rtt_ms = 30.0;  // the blocker holds the worker
  FleetServer server(*f->base, *f->bf, opts);
  server.RegisterDevice("dev", f->qcore);

  auto blocker = server.TrySubmitInference("dev", f->target.test.x());
  ASSERT_TRUE(blocker.ok());
  InferenceSubmitOptions doomed_opts;
  doomed_opts.latency_budget_us = 1.0;  // expires while queued
  auto doomed =
      server.TrySubmitInference("dev", f->target.test.x(), doomed_opts);
  ASSERT_TRUE(doomed.ok());  // ADMITTED — the deadline strikes later

  const InferenceResult shed = std::move(doomed).value().get();
  EXPECT_EQ(shed.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(shed.predictions.empty());
  const InferenceResult delivered = std::move(blocker).value().get();
  EXPECT_TRUE(delivered.status.ok());
  EXPECT_EQ(static_cast<int>(delivered.predictions.size()),
            f->target.test.size());
  server.Drain();

  const ServingMetrics& m = server.metrics();
  EXPECT_EQ(m.accepted_inference(), 2u);
  EXPECT_EQ(m.shed_deadline(), 1u);
  EXPECT_EQ(m.inference_requests(), 1u);  // the doomed one never executed
  EXPECT_EQ(m.accepted_inference(), m.inference_requests() + m.shed_deadline());
  EXPECT_EQ(m.shed_inference(), 0u);  // deadline sheds are post-admission

  const WhiteboardImage image = server.whiteboard().Read();
  const DeviceRow* row = FindDevice(image, "dev");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->shed_deadline, 1u);
  EXPECT_EQ(image.shards[0].shed_deadline, 1u);
}

// Under a batched flood where some requests carry impossible budgets, the
// doomed ones shed, every survivor's predictions are bit-identical to an
// unloaded reference run, and ZERO expired requests reach a forward pass
// (inference_requests counts exactly the survivors).
TEST(DeadlineShedTest, BatchedShedKeepsSurvivorsBitIdentical) {
  FleetFixture* f = GetFixture();
  // Reference: same model, no budgets, no load.
  std::vector<std::vector<int>> reference;
  {
    FleetServerOptions opts;
    opts.num_threads = 2;
    opts.continual = FastContinualOptions();
    FleetServer server(*f->base, *f->bf, opts);
    server.RegisterDevice("dev", f->qcore);
    for (int i = 0; i < 8; ++i) {
      reference.push_back(
          server.SubmitInference("dev", f->target.test.x()).get().predictions);
    }
  }

  FleetServerOptions opts;
  opts.num_threads = 1;
  opts.continual = FastContinualOptions();
  opts.enable_batching = true;
  opts.batching.max_batch = 4;
  opts.batching.max_delay_us = 200.0;
  opts.simulated_device_rtt_ms = 10.0;  // builds queue wait for the doomed
  FleetServer server(*f->base, *f->bf, opts);
  server.RegisterDevice("dev", f->qcore);

  std::vector<std::future<InferenceResult>> survivors;
  std::vector<std::future<InferenceResult>> doomed;
  InferenceSubmitOptions tiny;
  tiny.latency_budget_us = 0.001;  // expired by the first flush check
  for (int i = 0; i < 8; ++i) {
    auto s = server.TrySubmitInference("dev", f->target.test.x());
    ASSERT_TRUE(s.ok());
    survivors.push_back(std::move(s).value());
    auto d = server.TrySubmitInference("dev", f->target.test.x(), tiny);
    ASSERT_TRUE(d.ok());
    doomed.push_back(std::move(d).value());
  }
  for (size_t i = 0; i < survivors.size(); ++i) {
    const InferenceResult r = survivors[i].get();
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.predictions, reference[i])
        << "survivor " << i << " diverged from the unloaded reference";
  }
  for (auto& fu : doomed) {
    const InferenceResult r = fu.get();
    EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_TRUE(r.predictions.empty());
  }
  server.Drain();

  const ServingMetrics& m = server.metrics();
  EXPECT_EQ(m.accepted_inference(), 16u);
  EXPECT_EQ(m.shed_deadline(), 8u);
  // The acceptance criterion: no expired request ever reached a forward
  // pass — the executed count is exactly the survivor count.
  EXPECT_EQ(m.inference_requests(), 8u);
}

// --------------------------------------------- hierarchical fleet bounds

TEST(HierarchicalAdmissionTest, FleetCapShedsAcrossShards) {
  FleetFixture* f = GetFixture();
  ShardedFleetServerOptions sopts;
  sopts.num_shards = 2;
  sopts.shard.num_threads = 1;
  sopts.shard.continual = FastContinualOptions();
  sopts.shard.simulated_device_rtt_ms = 50.0;
  sopts.max_queue_per_fleet = 2;  // the only bound: fleet-wide
  ShardedFleetServer server(*f->base, *f->bf, sopts);
  for (int d = 0; d < 4; ++d) {
    server.RegisterDevice("dev-" + std::to_string(d), f->qcore);
  }

  // Two admissions fill the fleet root no matter which shard they land on.
  std::vector<std::future<InferenceResult>> held;
  int sheds = 0;
  for (int d = 0; d < 4; ++d) {
    auto r = server.TrySubmitInference("dev-" + std::to_string(d),
                                       f->target.test.x());
    if (r.ok()) {
      held.push_back(std::move(r).value());
    } else {
      ++sheds;
      EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
      EXPECT_NE(r.status().message().find("fleet level"), std::string::npos)
          << r.status().message();
    }
  }
  EXPECT_EQ(held.size(), 2u);
  EXPECT_EQ(sheds, 2);
  for (auto& fu : held) fu.get();
  server.Drain();

  const ServingMetrics& m = server.metrics();
  EXPECT_EQ(m.shed_inference(), 2u);
  EXPECT_EQ(m.shed_limiter(), 2u);  // fleet refusals are limiter sheds
  EXPECT_EQ(m.shed_queue_full(), 0u);
  // The reason split partitions the admission sheds exactly.
  EXPECT_EQ(m.shed_inference() + m.shed_calibration(),
            m.shed_queue_full() + m.shed_limiter());
}

TEST(HierarchicalAdmissionTest, ShardCapComposesWithSessionCap) {
  FleetFixture* f = GetFixture();
  FleetServerOptions opts;
  opts.num_threads = 1;
  opts.continual = FastContinualOptions();
  opts.max_queue_per_session = 3;  // loose
  opts.max_queue_per_shard = 2;    // tight: refuses first
  opts.simulated_device_rtt_ms = 50.0;
  FleetServer server(*f->base, *f->bf, opts);
  server.RegisterDevice("a", f->qcore);
  server.RegisterDevice("b", f->qcore);

  auto r1 = server.TrySubmitInference("a", f->target.test.x());
  auto r2 = server.TrySubmitInference("b", f->target.test.x());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  // Session "a" holds 1 < 3, but the SHARD holds 2 — refused at shard.
  auto r3 = server.TrySubmitInference("a", f->target.test.x());
  ASSERT_FALSE(r3.ok());
  EXPECT_NE(r3.status().message().find("shard level"), std::string::npos);
  std::move(r1).value().get();
  std::move(r2).value().get();
  server.Drain();
  EXPECT_EQ(server.metrics().shed_limiter(), 1u);
  // Released capacity is reusable at every level.
  auto r4 = server.TrySubmitInference("a", f->target.test.x());
  ASSERT_TRUE(r4.ok());
  std::move(r4).value().get();
  server.Drain();
}

// ------------------------------------------- calibration progress (aging)

// With one worker, aging enabled, and a sustained inference flood on a hot
// device, a calibration step must complete long before the flood drains —
// the progress guarantee the promotion clock buys.
TEST(AgingProgressTest, CalibrationCompletesMidFlood) {
  FleetFixture* f = GetFixture();
  FleetServerOptions opts;
  opts.num_threads = 1;
  opts.continual = FastContinualOptions();
  opts.simulated_device_rtt_ms = 5.0;
  opts.calibration_aging_us = 2000;  // promote after 2ms of waiting
  FleetServer server(*f->base, *f->bf, opts);
  // Many hot devices: each device's work drains in its own session pump,
  // so the pool dispatches between pumps — the seams where an aged
  // calibration pump can overtake the queued high pumps. (One device would
  // be a single uninterruptible pump; aging is a cross-session guarantee.)
  constexpr int kHotDevices = 8;
  constexpr int kPerDevice = 5;
  constexpr int kFlood = kHotDevices * kPerDevice;  // ~200ms queued work
  for (int d = 0; d < kHotDevices; ++d) {
    server.RegisterDevice("hot-" + std::to_string(d), f->qcore);
  }
  server.RegisterDevice("cal", f->qcore);

  std::vector<std::future<InferenceResult>> flood;
  flood.reserve(kFlood);
  for (int i = 0; i < kFlood; ++i) {
    flood.push_back(server.SubmitInference(
        "hot-" + std::to_string(i % kHotDevices), f->target.test.x()));
  }
  auto calibration =
      server.SubmitCalibration("cal", f->batches[0], f->slices[0]);
  const BatchStats stats = calibration.get();
  EXPECT_GE(stats.accuracy, 0.0f);
  // Progress: the calibration finished while most of the flood was still
  // queued (without aging it runs strictly last).
  const uint64_t done_at_calibration = server.metrics().inference_requests();
  EXPECT_LT(done_at_calibration, static_cast<uint64_t>(kFlood));
  server.Drain();
  for (auto& fu : flood) fu.get();
  EXPECT_EQ(server.metrics().inference_requests(),
            static_cast<uint64_t>(kFlood));
}

// ------------------------------------------------ non-blocking migration

// While one device's deep backlog is being drained for migration,
// submissions for OTHER devices keep completing — and a submission for the
// migrating device parks, re-routes, and succeeds on the new shard.
TEST(MigrationTest, UnrelatedDevicesFlowDuringMigration) {
  FleetFixture* f = GetFixture();
  ShardedFleetServerOptions sopts;
  sopts.num_shards = 2;
  sopts.shard.num_threads = 1;
  sopts.shard.continual = FastContinualOptions();
  sopts.shard.simulated_device_rtt_ms = 20.0;
  ShardedFleetServer server(*f->base, *f->bf, sopts);
  server.RegisterDevice("mover", f->qcore);
  server.RegisterDevice("bystander", f->qcore);
  // Place them on DIFFERENT shards so the bystander's worker is free.
  const int mover_shard = server.ShardOf("mover");
  if (server.ShardOf("bystander") == mover_shard) {
    server.MoveDevice("bystander", 1 - mover_shard);
  }

  // Deep backlog on the mover: ~10 x 20ms the migration drain must wait out.
  std::vector<std::future<InferenceResult>> backlog;
  for (int i = 0; i < 10; ++i) {
    backlog.push_back(server.SubmitInference("mover", f->target.test.x()));
  }

  std::atomic<bool> migration_done{false};
  std::thread migrator([&]() {
    server.MoveDevice("mover", 1 - mover_shard);
    migration_done.store(true);
  });
  // Give the migrator time to pin the device and enter the drain phase.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // The liveness assertion: bystander submissions complete WHILE the
  // migration is still draining (under the old exclusive-lock protocol
  // they would block until the whole backlog finished).
  int completed_mid_migration = 0;
  for (int i = 0; i < 5; ++i) {
    auto r = server.TrySubmitInference("bystander", f->target.test.x());
    ASSERT_TRUE(r.ok());
    std::move(r).value().get();
    if (!migration_done.load()) ++completed_mid_migration;
  }
  EXPECT_GE(completed_mid_migration, 1);

  migrator.join();
  EXPECT_EQ(server.ShardOf("mover"), 1 - mover_shard);
  for (auto& fu : backlog) {
    EXPECT_TRUE(fu.get().status.ok());  // the drained backlog all delivered
  }

  // A post-migration submission routes to the new shard and still delivers
  // (determinism across the move is pinned exhaustively in sharding_test).
  auto after = server.TrySubmitInference("mover", f->target.test.x());
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(std::move(after).value().get().status.ok());
  server.Drain();
}

// A submission racing the migration of ITS OWN device parks on the pin and
// completes after the move — never lost, never crashed, routed to wherever
// the device landed.
TEST(MigrationTest, SubmissionToMigratingDeviceParksAndCompletes) {
  FleetFixture* f = GetFixture();
  ShardedFleetServerOptions sopts;
  sopts.num_shards = 2;
  sopts.shard.num_threads = 1;
  sopts.shard.continual = FastContinualOptions();
  sopts.shard.simulated_device_rtt_ms = 10.0;
  ShardedFleetServer server(*f->base, *f->bf, sopts);
  server.RegisterDevice("mover", f->qcore);
  const int source = server.ShardOf("mover");

  // Backlog so the drain takes long enough for the racing submission to
  // observe the pin.
  std::vector<std::future<InferenceResult>> backlog;
  for (int i = 0; i < 8; ++i) {
    backlog.push_back(server.SubmitInference("mover", f->target.test.x()));
  }
  std::thread migrator([&]() { server.MoveDevice("mover", 1 - source); });
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  // Likely lands mid-drain: must park on the migration pin, then re-route.
  auto racing = server.TrySubmitInference("mover", f->target.test.x());
  migrator.join();
  ASSERT_TRUE(racing.ok());
  EXPECT_TRUE(std::move(racing).value().get().status.ok());
  for (auto& fu : backlog) EXPECT_TRUE(fu.get().status.ok());
  EXPECT_EQ(server.ShardOf("mover"), 1 - source);
  server.Drain();
}

// --------------------------------------------------------- chaos coverage

// Saturate every pool worker (seeded stall after each task pop): all
// futures still resolve, accounting still reconciles exactly, and the
// injector confirms the fault actually fired.
TEST(OverloadChaosTest, PoolSaturationKeepsAccountingExact) {
  FleetFixture* f = GetFixture();
  FaultInjector injector(/*seed=*/41);
  FaultScript stall;
  stall.sticky = true;
  stall.arg = 2000;  // 2ms stall on every pump the pool dispatches
  injector.Arm(FaultPoint::kPoolSaturation, stall);
  injector.Install();

  FleetServerOptions opts;
  opts.num_threads = 2;
  opts.continual = FastContinualOptions();
  opts.max_queue_per_session = 4;
  FleetServer server(*f->base, *f->bf, opts);
  // Several devices: each session pump is its own pool task, so the stall
  // hook is hit once per pump, not once for the whole flood.
  constexpr int kDevices = 4;
  for (int d = 0; d < kDevices; ++d) {
    server.RegisterDevice("dev-" + std::to_string(d), f->qcore);
  }

  uint64_t accepted = 0, shed = 0;
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 32; ++i) {
    auto r = server.TrySubmitInference("dev-" + std::to_string(i % kDevices),
                                       f->target.test.x());
    if (r.ok()) {
      ++accepted;
      futures.push_back(std::move(r).value());
    } else {
      ++shed;
      EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
    }
  }
  for (auto& fu : futures) EXPECT_TRUE(fu.get().status.ok());
  server.Drain();
  FaultInjector::Uninstall();

  EXPECT_GT(injector.fired(FaultPoint::kPoolSaturation), 0u);
  const ServingMetrics& m = server.metrics();
  EXPECT_EQ(m.accepted_inference(), accepted);
  EXPECT_EQ(m.shed_inference(), shed);
  EXPECT_EQ(m.accepted_inference() + m.shed_inference(), 32u);
  EXPECT_EQ(m.inference_requests(), accepted);
}

// Skew the deadline clock forward (hit 1 = the submission's DeadlineFor is
// honest; every later expiry check leaps 10s ahead): the budgeted request
// sheds early, while budget-less requests — whose expiry check
// short-circuits without reading the clock — stay bit-identical to an
// unfaulted run. A latency-only fault, exactly as catalogued.
TEST(OverloadChaosTest, ClockSkewShedsBudgetedWorkOnly) {
  FleetFixture* f = GetFixture();
  std::vector<int> reference;
  {
    FleetServerOptions opts;
    opts.num_threads = 1;
    opts.continual = FastContinualOptions();
    FleetServer server(*f->base, *f->bf, opts);
    server.RegisterDevice("dev", f->qcore);
    reference = server.SubmitInference("dev", f->target.test.x())
                    .get().predictions;
  }

  FaultInjector injector(/*seed=*/43);
  FaultScript skew;
  skew.fire_on_hit = 2;  // spare the submission's DeadlineFor read
  skew.sticky = true;
  skew.arg = 10'000'000;  // 10s leap: any sane budget is instantly expired
  injector.Arm(FaultPoint::kDeadlineClockSkew, skew);
  injector.Install();

  FleetServerOptions opts;
  opts.num_threads = 1;
  opts.continual = FastContinualOptions();
  FleetServer server(*f->base, *f->bf, opts);
  server.RegisterDevice("dev", f->qcore);
  InferenceSubmitOptions budgeted;
  budgeted.latency_budget_us = 1'000'000.0;  // a generous 1s budget
  auto doomed =
      server.TrySubmitInference("dev", f->target.test.x(), budgeted);
  ASSERT_TRUE(doomed.ok());
  const InferenceResult shed = std::move(doomed).value().get();
  EXPECT_EQ(shed.status.code(), StatusCode::kDeadlineExceeded);

  // Budget-less traffic never consults the skewed clock and delivers the
  // exact unfaulted bits.
  const InferenceResult ok =
      server.SubmitInference("dev", f->target.test.x()).get();
  EXPECT_TRUE(ok.status.ok());
  EXPECT_EQ(ok.predictions, reference);
  server.Drain();
  FaultInjector::Uninstall();
  EXPECT_GT(injector.fired(FaultPoint::kDeadlineClockSkew), 0u);
  EXPECT_EQ(server.metrics().shed_deadline(), 1u);
}

// A spurious fleet-level refusal (capacity exists, the limiter lies) must
// look to callers exactly like a real shed: kResourceExhausted, counted as
// a limiter shed, and the very next submission admitted.
TEST(OverloadChaosTest, SpuriousLimiterRefusalShedsCleanly) {
  FleetFixture* f = GetFixture();
  FaultInjector injector(/*seed=*/47);
  FaultScript refuse;
  refuse.fire_on_hit = 1;  // one-shot: refuse the first fleet check only
  injector.Arm(FaultPoint::kLimiterRefuse, refuse);
  injector.Install();

  FleetServerOptions opts;
  opts.num_threads = 1;
  opts.continual = FastContinualOptions();
  FleetServer server(*f->base, *f->bf, opts);  // NO bounds set
  server.RegisterDevice("dev", f->qcore);

  auto refused = server.TrySubmitInference("dev", f->target.test.x());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(refused.status().message().find("fleet level"),
            std::string::npos);
  auto admitted = server.TrySubmitInference("dev", f->target.test.x());
  ASSERT_TRUE(admitted.ok());
  EXPECT_TRUE(std::move(admitted).value().get().status.ok());
  server.Drain();
  FaultInjector::Uninstall();

  EXPECT_EQ(injector.fired(FaultPoint::kLimiterRefuse), 1u);
  const ServingMetrics& m = server.metrics();
  EXPECT_EQ(m.shed_inference(), 1u);
  EXPECT_EQ(m.shed_limiter(), 1u);
  EXPECT_EQ(m.shed_queue_full(), 0u);
  EXPECT_EQ(m.accepted_inference(), 1u);
}

}  // namespace
}  // namespace qcore
