// Snapshot durability suite: the SnapshotStore storage plane under the
// registry facade. Store-level tests pin the WAL mechanics — publish N
// versions, drop all process state, reopen the log, and every device's
// latest restores bit-identically; a torn tail (writer killed mid-append)
// truncates cleanly; TrimBelow-driven compaction preserves device-latest
// across a reopen. Fleet-level tests pin the serving-plane contract: a
// FleetServer / ShardedFleetServer{1,2,4} killed mid-stream and
// reconstructed over the same WAL restores every device's latest snapshot
// (bytes bit-identical, versions monotonic across the restart) and
// warm-starts re-registered sessions from it; ExportDelta/ImportDelta ship
// a registry across a process boundary for cohort-nearest warm starts.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/serialize.h"
#include "core/qcore_builder.h"
#include "data/har_generator.h"
#include "models/model_zoo.h"
#include "serving/backend.h"
#include "serving/router.h"
#include "serving/server.h"
#include "serving/snapshot.h"
#include "serving/snapshot_store.h"
#include "testing/fault_injector.h"

namespace qcore {
namespace {

// ----------------------------------------------------- store-level (cheap)

std::string TempLog(const std::string& name) {
  const std::string path = "/tmp/qcore_" + name + ".wal";
  std::remove(path.c_str());
  return path;
}

// A synthetic snapshot whose bytes depend on (version, device), so any
// cross-wiring or corruption shows up as a byte mismatch.
std::shared_ptr<const ModelSnapshot> MakeSnap(uint64_t version,
                                              const std::string& device,
                                              size_t n_bytes = 64) {
  auto snap = std::make_shared<ModelSnapshot>();
  snap->version = version;
  snap->device_id = device;
  snap->batches_seen = version * 10;
  snap->bytes.resize(n_bytes);
  for (size_t i = 0; i < n_bytes; ++i) {
    snap->bytes[i] = static_cast<uint8_t>((version * 131 + device.size() * 17 +
                                           i * 7) &
                                          0xFF);
  }
  return snap;
}

std::unique_ptr<DurableSnapshotStore> OpenOrDie(const std::string& path,
                                                bool fsync = false) {
  DurableSnapshotStoreOptions options;
  options.path = path;
  options.fsync_on_publish = fsync;
  auto store = DurableSnapshotStore::Open(std::move(options));
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

TEST(SnapshotRecordTest, EncodeDecodeRoundTrip) {
  auto snap = MakeSnap(42, "dev-x", 100);
  auto decoded = DecodeSnapshotRecord(EncodeSnapshotRecord(*snap));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().version, snap->version);
  EXPECT_EQ(decoded.value().device_id, snap->device_id);
  EXPECT_EQ(decoded.value().batches_seen, snap->batches_seen);
  EXPECT_EQ(decoded.value().bytes, snap->bytes);

  // A truncated payload must decode to Corruption, not garbage.
  auto payload = EncodeSnapshotRecord(*snap);
  payload.resize(payload.size() / 2);
  EXPECT_FALSE(DecodeSnapshotRecord(payload).ok());
}

TEST(DurableSnapshotStoreTest, PersistsAcrossReopenBitIdentically) {
  const std::string path = TempLog("reopen");
  std::vector<std::shared_ptr<const ModelSnapshot>> published;
  {
    auto store = OpenOrDie(path);
    EXPECT_EQ(store->size(), 0u);
    EXPECT_EQ(store->MaxVersion(), 0u);
    uint64_t version = 1;
    for (const char* device : {"a", "b", "c"}) {
      for (int k = 0; k < 3; ++k) {
        auto snap = MakeSnap(version++, device, 64 + k);
        published.push_back(snap);
        ASSERT_TRUE(store->Put(snap).ok());
      }
    }
    // Store object destroyed here: all process state gone, only the log
    // remains.
  }
  auto store = OpenOrDie(path);
  EXPECT_EQ(store->truncated_tail_bytes(), 0u);
  EXPECT_EQ(store->size(), published.size());
  EXPECT_EQ(store->MaxVersion(), 9u);
  for (const auto& snap : published) {
    auto got = store->Get(snap->version);
    ASSERT_NE(got, nullptr) << "v" << snap->version;
    EXPECT_EQ(got->device_id, snap->device_id);
    EXPECT_EQ(got->batches_seen, snap->batches_seen);
    EXPECT_EQ(got->bytes, snap->bytes);
  }
  for (const char* device : {"a", "b", "c"}) {
    auto latest = store->LatestFor(device);
    ASSERT_NE(latest, nullptr);
    // Versions 3/6/9 are the devices' last publishes.
    EXPECT_EQ(latest->version % 3, 0u);
    EXPECT_EQ(latest->bytes, published[latest->version - 1]->bytes);
  }
  std::remove(path.c_str());
}

TEST(DurableSnapshotStoreTest, TornTailIsTruncatedAndAppendableAfter) {
  const std::string path = TempLog("torn");
  long full_size = 0;
  {
    auto store = OpenOrDie(path);
    for (uint64_t v = 1; v <= 4; ++v) {
      ASSERT_TRUE(store->Put(MakeSnap(v, "dev")).ok());
    }
  }
  {
    // Kill the last record mid-write: chop a few bytes off the tail, the
    // exact artifact of a writer that died inside fwrite.
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    full_size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), full_size - 5), 0);
  }
  {
    auto store = OpenOrDie(path);
    // Versions 1-3 replay; the torn v4 is cut off the file.
    EXPECT_GT(store->truncated_tail_bytes(), 0u);
    EXPECT_EQ(store->size(), 3u);
    EXPECT_EQ(store->MaxVersion(), 3u);
    EXPECT_EQ(store->LatestFor("dev")->bytes, MakeSnap(3, "dev")->bytes);
    // The log stays appendable after truncation: re-publish v4 and a v5.
    ASSERT_TRUE(store->Put(MakeSnap(4, "dev")).ok());
    ASSERT_TRUE(store->Put(MakeSnap(5, "dev")).ok());
  }
  auto store = OpenOrDie(path);
  EXPECT_EQ(store->truncated_tail_bytes(), 0u);
  EXPECT_EQ(store->size(), 5u);
  EXPECT_EQ(store->LatestFor("dev")->bytes, MakeSnap(5, "dev")->bytes);
  std::remove(path.c_str());
}

TEST(DurableSnapshotStoreTest, CorruptByteMidFileDropsTheSuffix) {
  const std::string path = TempLog("bitrot");
  long second_record_offset = 0;
  {
    auto store = OpenOrDie(path);
    ASSERT_TRUE(store->Put(MakeSnap(1, "dev")).ok());
    std::FILE* f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    second_record_offset = std::ftell(f);
    std::fclose(f);
    ASSERT_TRUE(store->Put(MakeSnap(2, "dev")).ok());
    ASSERT_TRUE(store->Put(MakeSnap(3, "dev")).ok());
  }
  {
    // Flip one byte inside record 2's payload: the scan stops at the CRC
    // failure and keeps the clean prefix (log semantics — everything after
    // an unreadable record is unreachable anyway).
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, second_record_offset + 12, SEEK_SET);
    const uint8_t junk = 0x5A;
    ASSERT_EQ(std::fwrite(&junk, 1, 1, f), 1u);
    std::fclose(f);
  }
  auto store = OpenOrDie(path);
  EXPECT_GT(store->truncated_tail_bytes(), 0u);
  EXPECT_EQ(store->size(), 1u);
  EXPECT_EQ(store->LatestFor("dev")->bytes, MakeSnap(1, "dev")->bytes);
  std::remove(path.c_str());
}

TEST(DurableSnapshotStoreTest, CompactionPreservesLatestAcrossReopen) {
  const std::string path = TempLog("compact");
  long before_compaction = 0;
  {
    auto store = OpenOrDie(path);
    for (uint64_t v = 1; v <= 6; ++v) {
      ASSERT_TRUE(
          store->Put(MakeSnap(v, v % 2 == 0 ? "even" : "odd", 256)).ok());
    }
    std::FILE* f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    before_compaction = std::ftell(f);
    std::fclose(f);

    // Trim everything except device-latest (v5 for "odd", v6 for "even");
    // the durable store rewrites the segment.
    auto dropped = store->TrimBelow(100);
    ASSERT_TRUE(dropped.ok());
    EXPECT_EQ(dropped.value(), 4u);
    EXPECT_EQ(store->size(), 2u);
  }
  // The rewritten segment is smaller and replays to exactly the survivors,
  // with MaxVersion intact so the registry resumes numbering correctly.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  EXPECT_LT(std::ftell(f), before_compaction);
  std::fclose(f);
  auto store = OpenOrDie(path);
  EXPECT_EQ(store->size(), 2u);
  EXPECT_EQ(store->MaxVersion(), 6u);
  EXPECT_EQ(store->Get(5)->bytes, MakeSnap(5, "odd", 256)->bytes);
  EXPECT_EQ(store->Get(6)->bytes, MakeSnap(6, "even", 256)->bytes);
  EXPECT_EQ(store->Get(3), nullptr);
  // And the compacted log is still appendable.
  ASSERT_TRUE(store->Put(MakeSnap(7, "odd")).ok());
  EXPECT_EQ(store->MaxVersion(), 7u);
  std::remove(path.c_str());
}

// Injected fsync failure (chaos plane): the Put fails atomically — no
// bytes reach the log, the in-memory maps are untouched — and the same
// Put retried lands cleanly, so the reopened log replays every version
// bit-identically.
TEST(DurableSnapshotStoreTest, InjectedFsyncFailureIsAtomicAndRetryable) {
  const std::string path = TempLog("fsyncfail");
  const auto file_size = [&]() {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    return size;
  };
  {
    auto store = OpenOrDie(path, /*fsync=*/true);
    ASSERT_TRUE(store->Put(MakeSnap(1, "dev")).ok());
    ASSERT_TRUE(store->Put(MakeSnap(2, "dev")).ok());
    const long before = file_size();

    FaultInjector injector(29);
    injector.Arm(FaultPoint::kWalFsyncFail, {});
    injector.Install();
    const Status failed = store->Put(MakeSnap(3, "dev"));
    FaultInjector::Uninstall();
    EXPECT_EQ(injector.fired(FaultPoint::kWalFsyncFail), 1u);
    EXPECT_EQ(failed.code(), StatusCode::kIoError);
    // Atomic: nothing durable, nothing visible (log-then-apply).
    EXPECT_EQ(file_size(), before);
    EXPECT_EQ(store->size(), 2u);
    EXPECT_EQ(store->Get(3), nullptr);
    EXPECT_EQ(store->wal_stats().appends, 2u);

    // The fault was one-shot; the retried publish lands.
    ASSERT_TRUE(store->Put(MakeSnap(3, "dev")).ok());
    EXPECT_EQ(store->size(), 3u);
  }
  auto store = OpenOrDie(path);
  EXPECT_EQ(store->truncated_tail_bytes(), 0u);
  EXPECT_EQ(store->size(), 3u);
  for (uint64_t v = 1; v <= 3; ++v) {
    EXPECT_EQ(store->Get(v)->bytes, MakeSnap(v, "dev")->bytes);
  }
  std::remove(path.c_str());
}

// Injected mid-compaction crash (chaos plane): the atomic-rename protocol
// means a writer dying inside the segment rewrite leaves the OLD log
// complete and the partial .compact tmp as a crash artifact — never a
// mix. The store stays appendable, a reopen replays everything the old
// log holds (the in-memory trim is lost, which is the safe direction),
// and the next compaction truncates the leftover tmp and completes.
TEST(DurableSnapshotStoreTest, CompactionCrashLeavesOldLogComplete) {
  const std::string path = TempLog("compactcrash");
  const std::string tmp = path + ".compact";
  {
    auto store = OpenOrDie(path);
    for (uint64_t v = 1; v <= 6; ++v) {
      ASSERT_TRUE(
          store->Put(MakeSnap(v, v % 2 == 0 ? "even" : "odd", 256)).ok());
    }
    FaultInjector injector(31);
    injector.Arm(FaultPoint::kWalCompactionCrash, {});
    injector.Install();
    auto dropped = store->TrimBelow(100);
    FaultInjector::Uninstall();
    EXPECT_EQ(injector.fired(FaultPoint::kWalCompactionCrash), 1u);
    EXPECT_FALSE(dropped.ok());
    EXPECT_EQ(dropped.status().code(), StatusCode::kIoError);
    // Memory trimmed, old log untouched — and the crash artifact stays.
    EXPECT_EQ(store->size(), 2u);
    std::FILE* leftover = std::fopen(tmp.c_str(), "rb");
    EXPECT_NE(leftover, nullptr) << "partial .compact tmp should survive";
    if (leftover != nullptr) std::fclose(leftover);
    // The append handle survived the crashed rewrite.
    ASSERT_TRUE(store->Put(MakeSnap(7, "odd")).ok());
  }
  {
    // Reopen: the old log is complete — all six originals plus v7 replay.
    // Recovering MORE than the crashed process remembered is the safe
    // direction; a later trim re-drops the stale versions.
    auto store = OpenOrDie(path);
    EXPECT_EQ(store->truncated_tail_bytes(), 0u);
    EXPECT_EQ(store->size(), 7u);
    EXPECT_EQ(store->MaxVersion(), 7u);
    auto dropped = store->TrimBelow(100);
    ASSERT_TRUE(dropped.ok());
    EXPECT_EQ(dropped.value(), 5u);  // keeps v6 ("even") and v7 ("odd")
  }
  // The completed compaction renamed over the log and consumed the tmp.
  EXPECT_EQ(std::fopen(tmp.c_str(), "rb"), nullptr);
  auto store = OpenOrDie(path);
  EXPECT_EQ(store->size(), 2u);
  EXPECT_EQ(store->MaxVersion(), 7u);
  EXPECT_EQ(store->Get(6)->bytes, MakeSnap(6, "even", 256)->bytes);
  EXPECT_EQ(store->Get(7)->bytes, MakeSnap(7, "odd")->bytes);
  std::remove(path.c_str());
}

TEST(DurableSnapshotStoreTest, BadHeaderIsCorruptionNotTruncation) {
  const std::string path = TempLog("badmagic");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    const uint64_t junk = 0xDEADBEEFDEADBEEFull;
    std::fwrite(&junk, sizeof(junk), 1, f);
    std::fclose(f);
  }
  DurableSnapshotStoreOptions options;
  options.path = path;
  auto store = DurableSnapshotStore::Open(std::move(options));
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

// ------------------------------------------------- registry facade (cheap)

// A registry constructed over a pre-populated store resumes versioning
// after the recovered maximum — the monotonicity half of crash recovery.
TEST(SnapshotRegistryTest, ResumesVersioningAfterRecoveredStore) {
  auto store = std::make_unique<MemorySnapshotStore>();
  ASSERT_TRUE(store->Put(MakeSnap(7, "dev")).ok());
  SnapshotRegistry registry(std::move(store));
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Latest()->version, 7u);
  // Import assigns nothing below the recovered watermark either.
  SnapshotRegistry other;
  auto imported = registry.ImportDelta(other.ExportDelta(0));
  ASSERT_TRUE(imported.ok());
  EXPECT_EQ(imported.value(), 0u);  // empty delta
}

TEST(SnapshotRegistryTest, ExportImportDeltaRoundTrip) {
  auto store = std::make_unique<MemorySnapshotStore>();
  for (uint64_t v = 1; v <= 3; ++v) {
    ASSERT_TRUE(store->Put(MakeSnap(v, v == 3 ? "b" : "a")).ok());
  }
  SnapshotRegistry source(std::move(store));

  // Ship everything after version 1 into a fresh registry.
  SnapshotRegistry target;
  auto imported = target.ImportDelta(source.ExportDelta(1));
  ASSERT_TRUE(imported.ok());
  EXPECT_EQ(imported.value(), 2u);
  EXPECT_EQ(target.size(), 2u);
  EXPECT_EQ(target.Get(2)->bytes, MakeSnap(2, "a")->bytes);
  EXPECT_EQ(target.Get(3)->bytes, MakeSnap(3, "b")->bytes);
  EXPECT_EQ(target.LatestFor("a")->version, 2u);
  EXPECT_EQ(target.LatestFor("b")->version, 3u);

  // Idempotent: re-importing the same delta changes nothing.
  auto again = target.ImportDelta(source.ExportDelta(1));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), 0u);
  EXPECT_EQ(target.size(), 2u);

  // A corrupted delta is rejected whole.
  auto delta = source.ExportDelta(0);
  delta[delta.size() / 2] ^= 0x10;
  auto corrupt = target.ImportDelta(delta);
  EXPECT_FALSE(corrupt.ok());
  EXPECT_EQ(target.size(), 2u);
}

TEST(SnapshotRegistryTest, NearestForPrefersOwnThenCohortNeighbor) {
  auto store = std::make_unique<MemorySnapshotStore>();
  ASSERT_TRUE(store->Put(MakeSnap(1, "peer-a")).ok());
  ASSERT_TRUE(store->Put(MakeSnap(2, "peer-b")).ok());
  ASSERT_TRUE(store->Put(MakeSnap(3, "peer-a")).ok());
  SnapshotRegistry registry(std::move(store));

  // Own latest wins when present.
  EXPECT_EQ(registry.NearestFor("peer-a")->version, 3u);
  // A stranger gets a deterministic cohort neighbor's latest.
  auto nearest = registry.NearestFor("stranger");
  ASSERT_NE(nearest, nullptr);
  EXPECT_EQ(nearest, registry.NearestFor("stranger"));  // stable
  EXPECT_TRUE(nearest->device_id == "peer-a" ||
              nearest->device_id == "peer-b");
  EXPECT_EQ(nearest->version, registry.LatestFor(nearest->device_id)->version);
  // Empty registry: no warm-start source.
  SnapshotRegistry empty;
  EXPECT_EQ(empty.NearestFor("stranger"), nullptr);
}

// ------------------------------------------------ fleet-level (ML fixture)

struct FleetFixture {
  HarSpec spec;
  HarDomain source;
  HarDomain target;
  Dataset qcore;
  std::unique_ptr<QuantizedModel> base;  // deployed edge form
  std::unique_ptr<BitFlipNet> bf;
  std::vector<Dataset> batches;
  std::vector<Dataset> slices;
};

FleetFixture* GetFixture() {
  static FleetFixture* fixture = []() {
    auto* f = new FleetFixture();
    f->spec = HarSpec::Usc();
    f->spec.num_classes = 5;
    f->spec.channels = 3;
    f->spec.length = 24;
    f->spec.train_per_class = 8;
    f->spec.test_per_class = 4;
    f->source = MakeHarDomain(f->spec, 0);
    f->target = MakeHarDomain(f->spec, 1);

    Rng rng(20260715);
    auto model = MakeOmniScaleCnn(f->spec.channels, f->spec.num_classes,
                                  &rng);
    QCoreBuildOptions build;
    build.size = 15;
    build.train.epochs = 8;
    build.train.sgd.lr = 0.03f;
    auto built = BuildQCore(model.get(), f->source.train, build, &rng);
    f->qcore = built.qcore;

    f->base = std::make_unique<QuantizedModel>(*model, 4);
    BitFlipTrainOptions bft;
    bft.ste.epochs = 8;
    bft.ste.batch_size = 16;
    bft.augment_episodes = 1;
    f->bf = std::make_unique<BitFlipNet>(
        TrainBitFlipNet(f->base.get(), f->qcore, bft, &rng));
    f->base->DropShadows();

    Rng split_rng(4242);
    f->batches = SplitIntoStreamBatches(f->target.train, 3, &split_rng);
    f->slices = SplitIntoStreamBatches(f->target.test, 3, &split_rng);
    return f;
  }();
  return fixture;
}

FleetServerOptions RecoveryServerOptions() {
  FleetServerOptions opts;
  opts.num_threads = 2;
  opts.continual.iterations = 1;
  opts.seed = 0x5EED;
  return opts;
}

// By pointer: the registry owns a mutex, so it is neither copyable nor
// movable.
std::unique_ptr<SnapshotRegistry> OpenRegistry(const std::string& path) {
  DurableSnapshotStoreOptions options;
  options.path = path;
  auto store = DurableSnapshotStore::Open(std::move(options));
  QCORE_CHECK_MSG(store.ok(), "cannot open snapshot log");
  return std::make_unique<SnapshotRegistry>(std::move(store).value());
}

// One backend per config: num_shards == 0 means a plain FleetServer.
std::unique_ptr<FleetBackend> MakeRecoveryBackend(FleetFixture* f,
                                                  int num_shards,
                                                  FleetServerOptions opts,
                                                  SnapshotRegistry* registry) {
  if (num_shards == 0) {
    return std::make_unique<FleetServer>(*f->base, *f->bf, std::move(opts),
                                         registry);
  }
  ShardedFleetServerOptions sopts;
  sopts.num_shards = num_shards;
  sopts.shard = std::move(opts);
  return std::make_unique<ShardedFleetServer>(*f->base, *f->bf,
                                              std::move(sopts), registry);
}

// The acceptance scenario: serve a fleet over a durable registry, kill the
// server (destroy every in-memory structure), reconstruct over the same
// WAL, and the recovered registry must hold every device's latest snapshot
// bit-identically, resume versions monotonically, and warm-start
// re-registered sessions from the recovered codes.
TEST(CrashRecoveryTest, ServerKilledMidStreamRecoversFromWal) {
  FleetFixture* f = GetFixture();
  const std::vector<std::string> devices = {"r0", "r1", "r2", "r3"};
  for (int num_shards : {0, 1, 2, 4}) {
    SCOPED_TRACE(num_shards == 0
                     ? std::string("FleetServer")
                     : "ShardedFleetServer{" + std::to_string(num_shards) +
                           "}");
    const std::string path =
        TempLog("recovery_" + std::to_string(num_shards));

    std::vector<std::vector<uint8_t>> expected_bytes;
    std::vector<uint64_t> expected_versions;
    uint64_t max_version = 0;
    {
      auto registry = OpenRegistry(path);
      auto server = MakeRecoveryBackend(
          f, num_shards, RecoveryServerOptions(), registry.get());
      for (const auto& d : devices) server->RegisterDevice(d, f->qcore);
      // Stream two of three batches with interleaved publishes, so the log
      // holds stale versions AND a meaningful latest per device.
      for (size_t b = 0; b < 2; ++b) {
        for (const auto& d : devices) {
          server->SubmitCalibration(d, f->batches[b], f->slices[b]);
          server->PublishSnapshot(d);
        }
      }
      server->Drain();
      for (const auto& d : devices) {
        auto latest = registry->LatestFor(d);
        ASSERT_NE(latest, nullptr);
        expected_bytes.push_back(latest->bytes);
        expected_versions.push_back(latest->version);
      }
      max_version = registry->Latest()->version;
      // Server + registry die here — the "kill". Only the WAL survives.
    }

    auto recovered = OpenRegistry(path);
    // Every version replayed, device-latest bytes bit-identical.
    EXPECT_EQ(recovered->size(), devices.size() * 2);
    for (size_t d = 0; d < devices.size(); ++d) {
      auto latest = recovered->LatestFor(devices[d]);
      ASSERT_NE(latest, nullptr) << devices[d];
      EXPECT_EQ(latest->version, expected_versions[d]);
      EXPECT_EQ(latest->bytes, expected_bytes[d]);
    }

    // Reconstruct the server over the recovered registry with warm starts:
    // each re-registered session resumes the recovered codes, and resumed
    // publishing continues the version sequence monotonically.
    FleetServerOptions opts = RecoveryServerOptions();
    opts.warm_start_from_registry = true;
    auto server = MakeRecoveryBackend(f, num_shards, opts, recovered.get());
    for (const auto& d : devices) server->RegisterDevice(d, f->qcore);
    for (size_t d = 0; d < devices.size(); ++d) {
      auto expected = f->base->Clone();
      ASSERT_TRUE(SnapshotRegistry::RestoreInto(
                      *recovered->LatestFor(devices[d]), expected.get())
                      .ok());
      server->WithSessionQuiesced(devices[d], [&](CalibrationSession& s) {
        EXPECT_EQ(s.model()->AllCodes(), expected->AllCodes());
      });
    }
    std::vector<std::future<uint64_t>> publishes;
    for (const auto& d : devices) {
      server->SubmitCalibration(d, f->batches[2], f->slices[2]);
      publishes.push_back(server->PublishSnapshot(d));
    }
    for (auto& fu : publishes) {
      EXPECT_GT(fu.get(), max_version);  // monotonic across the restart
    }
    server->Drain();
    std::remove(path.c_str());
  }
}

// Warm starting a device the registry has never seen seeds it from the
// cohort-nearest peer's snapshot instead of the factory base model — the
// snapshot-distribution payoff (ROADMAP).
TEST(CrashRecoveryTest, NewDeviceWarmStartsFromCohortNearestSnapshot) {
  FleetFixture* f = GetFixture();
  FleetServerOptions opts = RecoveryServerOptions();
  SnapshotRegistry registry;
  {
    FleetServer server(*f->base, *f->bf, opts, &registry);
    server.RegisterDevice("veteran", f->qcore);
    server.SubmitCalibration("veteran", f->batches[0], f->slices[0]);
    server.PublishSnapshot("veteran");
    server.Drain();
  }
  // Ship the registry "across a process boundary" and serve a new fleet
  // from the import.
  SnapshotRegistry imported;
  ASSERT_TRUE(imported.ImportDelta(registry.ExportDelta(0)).ok());
  opts.warm_start_from_registry = true;
  FleetServer server(*f->base, *f->bf, opts, &imported);
  server.RegisterDevice("rookie", f->qcore);

  auto veteran_model = f->base->Clone();
  ASSERT_TRUE(SnapshotRegistry::RestoreInto(*imported.LatestFor("veteran"),
                                            veteran_model.get())
                  .ok());
  server.WithSessionQuiesced("rookie", [&](CalibrationSession& s) {
    EXPECT_EQ(s.model()->AllCodes(), veteran_model->AllCodes());
    EXPECT_NE(s.model()->AllCodes(), f->base->AllCodes());
  });

  // Without the option, registration stays a cold start.
  FleetServerOptions cold = RecoveryServerOptions();
  FleetServer cold_server(*f->base, *f->bf, cold, &imported);
  cold_server.RegisterDevice("rookie", f->qcore);
  cold_server.WithSessionQuiesced("rookie", [&](CalibrationSession& s) {
    EXPECT_EQ(s.model()->AllCodes(), f->base->AllCodes());
  });

  // An incompatible nearest snapshot (e.g. a foreign fleet's model merged
  // into a shared registry) falls back to a cold start instead of
  // crashing: RestoreInto fails atomically, leaving the base clone.
  auto foreign_store = std::make_unique<MemorySnapshotStore>();
  ASSERT_TRUE(foreign_store->Put(MakeSnap(1, "alien", 32)).ok());
  SnapshotRegistry foreign(std::move(foreign_store));
  FleetServer fallback_server(*f->base, *f->bf, opts, &foreign);
  fallback_server.RegisterDevice("rookie", f->qcore);
  fallback_server.WithSessionQuiesced("rookie", [&](CalibrationSession& s) {
    EXPECT_EQ(s.model()->AllCodes(), f->base->AllCodes());
  });
}

// fsync_on_publish must change durability cost only, never contents: the
// logs written with and without it are byte-identical.
TEST(CrashRecoveryTest, FsyncOptionDoesNotChangeLogContents) {
  FleetFixture* f = GetFixture();
  auto run = [&](bool fsync, const std::string& path) {
    DurableSnapshotStoreOptions options;
    options.path = path;
    options.fsync_on_publish = fsync;
    auto store = DurableSnapshotStore::Open(std::move(options));
    ASSERT_TRUE(store.ok());
    SnapshotRegistry registry(std::move(store).value());
    FleetServer server(*f->base, *f->bf, RecoveryServerOptions(), &registry);
    server.RegisterDevice("dev", f->qcore);
    server.SubmitCalibration("dev", f->batches[0], f->slices[0]);
    server.PublishSnapshot("dev");
    server.Drain();
  };
  const std::string nosync_path = TempLog("nosync");
  const std::string sync_path = TempLog("sync");
  run(false, nosync_path);
  run(true, sync_path);
  auto slurp = [](const std::string& path) {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    EXPECT_NE(file, nullptr);
    std::fseek(file, 0, SEEK_END);
    std::vector<uint8_t> bytes(static_cast<size_t>(std::ftell(file)));
    std::fseek(file, 0, SEEK_SET);
    EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), file), bytes.size());
    std::fclose(file);
    return bytes;
  };
  EXPECT_EQ(slurp(nosync_path), slurp(sync_path));
  std::remove(nosync_path.c_str());
  std::remove(sync_path.c_str());
}

}  // namespace
}  // namespace qcore
