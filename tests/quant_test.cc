// Unit tests for quant/: quantizer properties, QuantizedModel invariants,
// STE calibration, and the edge/server stepping modes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "baselines/ste_stepper.h"
#include "nn/composite.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/training.h"
#include "quant/quantized_model.h"
#include "quant/quantizer.h"
#include "quant/ste_calibrator.h"

namespace qcore {
namespace {

TEST(QuantizerTest, SymmetricRange) {
  Tensor t = Tensor::FromVector({4}, {-2.0f, 0.5f, 1.0f, 2.0f});
  QuantParams qp = ChooseSymmetricParams(t, 4);
  EXPECT_EQ(qp.qmax, 7);
  EXPECT_EQ(qp.qmin, -7);
  EXPECT_FLOAT_EQ(qp.scale, 2.0f / 7.0f);
  EXPECT_EQ(qp.num_levels(), 15);
}

TEST(QuantizerTest, ZeroTensorHasUnitScale) {
  Tensor t = Tensor::Zeros({5});
  QuantParams qp = ChooseSymmetricParams(t, 8);
  EXPECT_FLOAT_EQ(qp.scale, 1.0f);
}

TEST(QuantizerTest, ZeroIsExactlyRepresentable) {
  Tensor t = Tensor::FromVector({3}, {-1.0f, 0.0f, 1.0f});
  for (int bits : {2, 4, 8}) {
    QuantParams qp = ChooseSymmetricParams(t, bits);
    EXPECT_EQ(QuantizeValue(0.0f, qp), 0);
    EXPECT_FLOAT_EQ(DequantizeValue(0, qp), 0.0f);
  }
}

TEST(QuantizerTest, ClampsOutOfRange) {
  Tensor t = Tensor::FromVector({2}, {-1.0f, 1.0f});
  QuantParams qp = ChooseSymmetricParams(t, 2);  // qmax = 1
  EXPECT_EQ(QuantizeValue(100.0f, qp), 1);
  EXPECT_EQ(QuantizeValue(-100.0f, qp), -1);
}

// Property sweep over bit widths: round-trip error bounded by scale/2 for
// in-range values; codes within [qmin, qmax]; fake-quantize idempotent.
class QuantizerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantizerPropertyTest, RoundTripBoundsAndIdempotence) {
  const int bits = GetParam();
  Rng rng(40 + bits);
  Tensor t = Tensor::Randn({500}, &rng, 1.5f);
  QuantParams qp = ChooseSymmetricParams(t, bits);
  std::vector<int32_t> codes = QuantizeToCodes(t, qp);
  for (int32_t c : codes) {
    EXPECT_GE(c, qp.qmin);
    EXPECT_LE(c, qp.qmax);
  }
  Tensor back = DequantizeCodes(codes, qp, t.shape());
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(std::fabs(back[i] - t[i]), qp.scale / 2.0f + 1e-6f);
  }
  Tensor fq = FakeQuantize(t, qp);
  Tensor fq2 = FakeQuantize(fq, qp);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(fq[i], fq2[i]);
  // MSE shrinks as bits grow (checked across instantiations by monotone
  // bound): for b bits, MSE <= (scale/2)^2.
  EXPECT_LE(QuantizationMse(t, qp), (qp.scale / 2.0) * (qp.scale / 2.0) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Bits, QuantizerPropertyTest,
                         ::testing::Values(2, 3, 4, 6, 8, 12));

TEST(QuantizerTest, MoreBitsLessError) {
  Rng rng(55);
  Tensor t = Tensor::Randn({2000}, &rng);
  double prev = 1e9;
  for (int bits : {2, 4, 8}) {
    const double mse = QuantizationMse(t, ChooseSymmetricParams(t, bits));
    EXPECT_LT(mse, prev);
    prev = mse;
  }
}

std::unique_ptr<Sequential> TinyModel(Rng* rng) {
  auto m = std::make_unique<Sequential>();
  m->Add(std::make_unique<Dense>(4, 8, rng));
  m->Add(std::make_unique<Relu>());
  m->Add(std::make_unique<Dense>(8, 3, rng));
  return m;
}

TEST(QuantizedModelTest, QuantizesOnlyWeights) {
  Rng rng(60);
  auto fp = TinyModel(&rng);
  QuantizedModel qm(*fp, 4);
  EXPECT_EQ(qm.num_quantized(), 2);  // two Dense weights, not biases
  for (int i = 0; i < qm.num_quantized(); ++i) {
    EXPECT_GE(qm.quantized(i).param->value.ndim(), 2);
  }
}

TEST(QuantizedModelTest, ParamsEqualDequantizedCodes) {
  Rng rng(61);
  auto fp = TinyModel(&rng);
  QuantizedModel qm(*fp, 4);
  for (int i = 0; i < qm.num_quantized(); ++i) {
    const auto& qt = qm.quantized(i);
    for (size_t e = 0; e < qt.codes.size(); ++e) {
      EXPECT_FLOAT_EQ(qt.param->value[static_cast<int64_t>(e)],
                      DequantizeValue(qt.codes[e], qt.qp));
    }
  }
}

TEST(QuantizedModelTest, ApplyCodeDeltaClampsAtBounds) {
  Rng rng(62);
  auto fp = TinyModel(&rng);
  QuantizedModel qm(*fp, 2);  // codes in [-1, 1]
  auto& qt = qm.quantized(0);
  qt.codes[0] = 1;
  qm.SyncParamFromCodes(0);
  qm.ApplyCodeDelta(0, 0, 1);  // must clamp
  EXPECT_EQ(qm.quantized(0).codes[0], 1);
  qm.ApplyCodeDelta(0, 0, -1);
  EXPECT_EQ(qm.quantized(0).codes[0], 0);
  EXPECT_FLOAT_EQ(qm.quantized(0).param->value[0], 0.0f);
}

TEST(QuantizedModelTest, DropShadowsBlocksSte) {
  Rng rng(63);
  auto fp = TinyModel(&rng);
  QuantizedModel qm(*fp, 4);
  EXPECT_TRUE(qm.has_shadows());
  qm.DropShadows();
  EXPECT_FALSE(qm.has_shadows());
}

TEST(QuantizedModelTest, SizeBitsAccounting) {
  Rng rng(64);
  auto fp = TinyModel(&rng);
  QuantizedModel qm(*fp, 4);
  const int64_t quantized = qm.TotalCodeCount();
  EXPECT_EQ(quantized, 4 * 8 + 8 * 3);
  const int64_t total = CountParams(qm.model());
  EXPECT_EQ(qm.SizeBits(),
            static_cast<uint64_t>(quantized) * 4 +
                static_cast<uint64_t>(total - quantized) * 32);
  // 4-bit model is much smaller than the FP32 model.
  EXPECT_LT(qm.SizeBits(), static_cast<uint64_t>(total) * 32 / 2);
}

TEST(QuantizedModelTest, CloneIsIndependent) {
  Rng rng(65);
  auto fp = TinyModel(&rng);
  QuantizedModel qm(*fp, 4);
  auto copy = qm.Clone();
  Tensor x = Tensor::Randn({3, 4}, &rng);
  Tensor y1 = qm.Forward(x);
  Tensor y2 = copy->Forward(x);
  for (int64_t i = 0; i < y1.size(); ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);
  copy->ApplyCodeDelta(0, 0, copy->quantized(0).codes[0] < 0 ? 1 : -1);
  Tensor y3 = qm.Forward(x);
  for (int64_t i = 0; i < y1.size(); ++i) EXPECT_FLOAT_EQ(y1[i], y3[i]);
}

TEST(QuantizedModelTest, SaveLoadRoundTrip) {
  Rng rng(66);
  auto fp = TinyModel(&rng);
  QuantizedModel qm(*fp, 4);
  const std::string path = "/tmp/qcore_qm_test.bin";
  ASSERT_TRUE(qm.Save(path).ok());

  Rng rng2(1234);
  auto fp2 = TinyModel(&rng2);
  QuantizedModel other(*fp2, 4);
  ASSERT_TRUE(other.Load(path).ok());
  Tensor x = Tensor::Randn({5, 4}, &rng);
  Tensor y1 = qm.Forward(x);
  Tensor y2 = other.Forward(x);
  for (int64_t i = 0; i < y1.size(); ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);
  std::remove(path.c_str());
}

TEST(QuantizedModelTest, LoadRejectsWrongBits) {
  Rng rng(67);
  auto fp = TinyModel(&rng);
  QuantizedModel qm(*fp, 4);
  const std::string path = "/tmp/qcore_qm_bits_test.bin";
  ASSERT_TRUE(qm.Save(path).ok());
  QuantizedModel other(*fp, 8);
  EXPECT_FALSE(other.Load(path).ok());
  std::remove(path.c_str());
}

// A tiny separable problem for calibration tests.
struct Problem {
  Tensor x;
  std::vector<int> y;
};

Problem MakeProblem(Rng* rng, int n = 120) {
  Problem p;
  p.x = Tensor({n, 4});
  p.y.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int cls = i % 3;
    for (int64_t j = 0; j < 4; ++j) {
      p.x.at(i, j) = static_cast<float>(
          rng->NextGaussian(j == cls ? 2.0 : -0.5, 0.6));
    }
    p.y[static_cast<size_t>(i)] = cls;
  }
  return p;
}

TEST(SteCalibratorTest, ReducesLossAndRecoversAccuracy) {
  Rng rng(70);
  auto fp = TinyModel(&rng);
  Problem p = MakeProblem(&rng);
  TrainOptions topt;
  topt.epochs = 15;
  topt.sgd.lr = 0.05f;
  TrainClassifier(fp.get(), p.x, p.y, topt, &rng);
  const float fp_acc = EvaluateAccuracy(fp.get(), p.x, p.y);
  ASSERT_GT(fp_acc, 0.9f);

  QuantizedModel qm(*fp, 2);  // 2-bit destroys accuracy pre-calibration
  SteOptions sopt;
  sopt.epochs = 25;
  sopt.sgd.lr = 0.02f;
  const float post_loss = SteCalibrate(&qm, p.x, p.y, sopt, &rng);
  EXPECT_LT(post_loss, 1.0f);
  EXPECT_GT(QuantizedAccuracy(&qm, p.x, p.y), 0.7f);
}

TEST(SteCalibratorTest, ObserverSeesCodeDeltas) {
  Rng rng(71);
  auto fp = TinyModel(&rng);
  Problem p = MakeProblem(&rng);
  QuantizedModel qm(*fp, 4);
  int steps = 0;
  int64_t nonzero_deltas = 0;
  SteOptions sopt;
  sopt.epochs = 5;
  sopt.sgd.lr = 0.1f;
  SteCalibrate(&qm, p.x, p.y, sopt, &rng, [&](const SteStepInfo& info) {
    ++steps;
    ASSERT_EQ(info.prev_codes->size(),
              static_cast<size_t>(info.model->num_quantized()));
    for (int t = 0; t < info.model->num_quantized(); ++t) {
      const auto& qt = info.model->quantized(t);
      const auto& prev = (*info.prev_codes)[static_cast<size_t>(t)];
      ASSERT_EQ(prev.size(), qt.codes.size());
      for (size_t e = 0; e < prev.size(); ++e) {
        if (prev[e] != qt.codes[e]) ++nonzero_deltas;
      }
    }
  });
  EXPECT_GT(steps, 0);
  EXPECT_GT(nonzero_deltas, 0);
}

TEST(SteStepperTest, EdgeModeFreezesAuxiliaryParams) {
  Rng rng(72);
  auto fp = TinyModel(&rng);
  Problem p = MakeProblem(&rng);
  QuantizedModel qm(*fp, 4);
  SteStepper stepper(&qm, {.lr = 0.05f, .momentum = 0.9f, .weight_decay = 0},
                     SteMode::kEdgeRequantize);
  // Snapshot biases (non-quantized).
  std::vector<Tensor> biases;
  for (Parameter* param : qm.model()->Params()) {
    if (param->value.ndim() < 2) biases.push_back(param->value);
  }
  SoftmaxCrossEntropy ce;
  for (int step = 0; step < 10; ++step) {
    Tensor logits = stepper.ForwardTrain(p.x);
    ce.Forward(logits, p.y);
    stepper.Backward(ce.Backward());
    stepper.Step();
  }
  size_t b = 0;
  for (Parameter* param : qm.model()->Params()) {
    if (param->value.ndim() >= 2) continue;
    for (int64_t i = 0; i < param->value.size(); ++i) {
      EXPECT_FLOAT_EQ(param->value[i], biases[b][i]);
    }
    ++b;
  }
}

TEST(SteStepperTest, EdgeModeRoundsAwayTinyUpdates) {
  Rng rng(73);
  auto fp = TinyModel(&rng);
  QuantizedModel qm(*fp, 4);
  const std::vector<int32_t> before = qm.quantized(0).codes;
  SteStepper stepper(&qm, {.lr = 1e-6f, .momentum = 0.0f, .weight_decay = 0},
                     SteMode::kEdgeRequantize);
  Problem p = MakeProblem(&rng, 30);
  SoftmaxCrossEntropy ce;
  Tensor logits = stepper.ForwardTrain(p.x);
  ce.Forward(logits, p.y);
  stepper.Backward(ce.Backward());
  stepper.Step();
  // With a vanishing learning rate and no momentum accumulation across
  // steps, every update rounds back to the same code.
  EXPECT_EQ(qm.quantized(0).codes, before);
}

TEST(SteStepperTest, ServerModeAccumulatesTinyUpdates) {
  Rng rng(74);
  auto fp = TinyModel(&rng);
  QuantizedModel qm(*fp, 4);
  SteStepper stepper(&qm, {.lr = 0.02f, .momentum = 0.0f, .weight_decay = 0},
                     SteMode::kServerShadow);
  Problem p = MakeProblem(&rng, 60);
  SoftmaxCrossEntropy ce;
  const std::vector<int32_t> before = qm.quantized(0).codes;
  for (int step = 0; step < 50; ++step) {
    Tensor logits = stepper.ForwardTrain(p.x);
    ce.Forward(logits, p.y);
    stepper.Backward(ce.Backward());
    stepper.Step();
  }
  EXPECT_NE(qm.quantized(0).codes, before);
}

TEST(SteStepperTest, GradFlattenRoundTrip) {
  Rng rng(75);
  auto fp = TinyModel(&rng);
  QuantizedModel qm(*fp, 4);
  SteStepper stepper(&qm, {.lr = 0.01f, .momentum = 0.0f, .weight_decay = 0});
  Problem p = MakeProblem(&rng, 30);
  SoftmaxCrossEntropy ce;
  Tensor logits = stepper.ForwardTrain(p.x);
  ce.Forward(logits, p.y);
  stepper.Backward(ce.Backward());
  std::vector<Tensor> grads = stepper.SnapshotGrads();
  std::vector<float> flat = FlattenGrads(grads);
  std::vector<Tensor> rebuilt = grads;
  for (Tensor& g : rebuilt) g.SetZero();
  UnflattenGrads(flat, &rebuilt);
  for (size_t i = 0; i < grads.size(); ++i) {
    for (int64_t e = 0; e < grads[i].size(); ++e) {
      EXPECT_FLOAT_EQ(grads[i][e], rebuilt[i][e]);
    }
  }
}

}  // namespace
}  // namespace qcore
