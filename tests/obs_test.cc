// Tests for the observability layer (src/obs/): whiteboard rows staying
// write-through-consistent with ServingMetrics under concurrent load,
// surviving migration / rebalance / shard retirement, last-error and
// barrier-flush plumbing, the serialize/table renderings, and TraceRing
// request-lifecycle reconstruction (batched and unbatched chains, snapshot
// publish -> WAL append, ring wraparound, chrome://tracing export).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "core/qcore_builder.h"
#include "data/har_generator.h"
#include "models/model_zoo.h"
#include "obs/trace.h"
#include "obs/whiteboard.h"
#include "serving/backend.h"
#include "serving/router.h"
#include "serving/server.h"
#include "serving/snapshot.h"
#include "serving/snapshot_store.h"
#include "testing/fault_injector.h"

namespace qcore {
namespace {

// Same one-time expensive preparation as serving_test.cc: train the FP
// model + QCore, quantize, train the bit-flipping net, drop shadows.
struct FleetFixture {
  HarSpec spec;
  HarDomain source;
  HarDomain target;
  Dataset qcore;
  std::unique_ptr<QuantizedModel> base;
  std::unique_ptr<BitFlipNet> bf;
  std::vector<Dataset> batches;
  std::vector<Dataset> slices;
};

FleetFixture* GetFixture() {
  static FleetFixture* fixture = []() {
    auto* f = new FleetFixture();
    f->spec = HarSpec::Usc();
    f->spec.num_classes = 5;
    f->spec.channels = 3;
    f->spec.length = 24;
    f->spec.train_per_class = 8;
    f->spec.test_per_class = 4;
    f->source = MakeHarDomain(f->spec, 0);
    f->target = MakeHarDomain(f->spec, 1);

    Rng rng(20240901);
    auto model = MakeOmniScaleCnn(f->spec.channels, f->spec.num_classes,
                                  &rng);
    QCoreBuildOptions build;
    build.size = 15;
    build.train.epochs = 8;
    build.train.sgd.lr = 0.03f;
    auto built = BuildQCore(model.get(), f->source.train, build, &rng);
    f->qcore = built.qcore;

    f->base = std::make_unique<QuantizedModel>(*model, 4);
    BitFlipTrainOptions bft;
    bft.ste.epochs = 8;
    bft.ste.batch_size = 16;
    bft.augment_episodes = 1;
    f->bf = std::make_unique<BitFlipNet>(
        TrainBitFlipNet(f->base.get(), f->qcore, bft, &rng));
    f->base->DropShadows();

    Rng split_rng(777);
    f->batches = SplitIntoStreamBatches(f->target.train, 3, &split_rng);
    f->slices = SplitIntoStreamBatches(f->target.test, 3, &split_rng);
    return f;
  }();
  return fixture;
}

ContinualOptions TestContinualOptions() {
  ContinualOptions opts;
  opts.iterations = 2;
  return opts;
}

FleetServerOptions ServerOptions(int threads) {
  FleetServerOptions opts;
  opts.num_threads = threads;
  opts.continual = TestContinualOptions();
  opts.seed = 0x5EED;
  return opts;
}

const DeviceRow* FindDevice(const WhiteboardImage& image,
                            const std::string& device_id) {
  for (const auto& row : image.devices) {
    if (row.device_id == device_id) return &row;
  }
  return nullptr;
}

const ShardRow* FindShard(const WhiteboardImage& image, int shard) {
  for (const auto& row : image.shards) {
    if (row.shard == shard) return &row;
  }
  return nullptr;
}

// Index of the first event of `kind`, or -1.
int IndexOf(const std::vector<TraceEvent>& events, TraceKind kind) {
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == kind) return static_cast<int>(i);
  }
  return -1;
}

// ------------------------------------------------------ whiteboard dumps

// The acceptance scenario: a 4-shard fleet under concurrent client load;
// after Drain the whiteboard image must reconcile exactly with the metrics
// rollup, the router's placement, and the snapshot registry.
TEST(WhiteboardTest, FourShardDumpConsistentWithMetricsUnderLoad) {
  FleetFixture* f = GetFixture();
  ShardedFleetServerOptions sopts;
  sopts.num_shards = 4;
  sopts.shard = ServerOptions(2);
  ShardedFleetServer server(*f->base, *f->bf, sopts);

  const int kDevices = 8;
  std::vector<std::string> devices;
  for (int d = 0; d < kDevices; ++d) {
    devices.push_back("dev-" + std::to_string(d));
    server.RegisterDevice(devices.back(), f->qcore);
  }

  // Concurrent clients: each thread drives its own slice of the fleet.
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c]() {
      for (int d = c; d < kDevices; d += 2) {
        server.SubmitInference(devices[d], f->target.test.x());
        server.SubmitCalibration(devices[d], f->batches[0], f->slices[0]);
        server.SubmitInference(devices[d], f->target.test.x());
      }
    });
  }
  for (auto& t : clients) t.join();
  server.Drain();
  std::vector<uint64_t> versions;
  for (const auto& d : devices) {
    versions.push_back(server.PublishSnapshot(d).get());
  }

  const WhiteboardImage image = server.whiteboard().Read();
  ASSERT_EQ(image.shards.size(), 4u);
  ASSERT_EQ(image.devices.size(), static_cast<size_t>(kDevices));

  // Shard rows match the router's placement view.
  uint64_t sessions_total = 0;
  for (const auto& row : image.shards) {
    EXPECT_FALSE(row.retired);
    EXPECT_EQ(row.sessions,
              static_cast<uint64_t>(server.SessionCountOnShard(row.shard)));
    sessions_total += row.sessions;
  }
  EXPECT_EQ(sessions_total, static_cast<uint64_t>(kDevices));

  // Device rows sum to the fleet rollup, per counter class.
  uint64_t acc_inf = 0, acc_cal = 0, batches = 0, q_inf = 0, q_cal = 0;
  for (const auto& row : image.devices) {
    acc_inf += row.accepted_inference;
    acc_cal += row.accepted_calibration;
    batches += row.batches_processed;
    q_inf += row.queue_inference;
    q_cal += row.queue_calibration;
    EXPECT_TRUE(row.last_error.ok());
    EXPECT_EQ(row.activity, SessionActivity::kIdle);  // drained
  }
  const ServingMetrics& m = server.metrics();
  EXPECT_EQ(acc_inf, m.accepted_inference());
  EXPECT_EQ(acc_cal, m.accepted_calibration());
  EXPECT_EQ(batches, m.calibration_batches());
  EXPECT_EQ(q_inf, 0u);  // nothing outstanding after Drain
  EXPECT_EQ(q_cal, 0u);

  // Shard rows sum to the same rollup.
  uint64_t shard_inf = 0, shard_cal = 0, shard_snaps = 0;
  for (const auto& row : image.shards) {
    shard_inf += row.inference_requests;
    shard_cal += row.calibration_batches;
    shard_snaps += row.snapshots_published;
  }
  EXPECT_EQ(shard_inf, m.inference_requests());
  EXPECT_EQ(shard_cal, m.calibration_batches());
  EXPECT_EQ(shard_snaps, static_cast<uint64_t>(kDevices));

  // Each device row carries the registry's latest version for it.
  for (int d = 0; d < kDevices; ++d) {
    const DeviceRow* row = FindDevice(image, devices[d]);
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->shard, server.ShardOf(devices[d]));
    EXPECT_EQ(row->snapshot_version,
              server.snapshots().LatestFor(devices[d])->version);
    EXPECT_EQ(row->snapshot_version, versions[d]);
  }

  // Human rendering mentions every shard and device; truncation works.
  const std::string table = image.ToTable();
  for (const auto& d : devices) {
    EXPECT_NE(table.find(d), std::string::npos) << table;
  }
  const std::string truncated = image.ToTable(/*max_devices=*/2);
  EXPECT_NE(truncated.find("more devices"), std::string::npos);
}

TEST(WhiteboardTest, RowsSurviveMoveRebalanceAndRetirement) {
  FleetFixture* f = GetFixture();
  ShardedFleetServerOptions sopts;
  sopts.num_shards = 2;
  sopts.shard = ServerOptions(2);
  ShardedFleetServer server(*f->base, *f->bf, sopts);
  for (int d = 0; d < 4; ++d) {
    server.RegisterDevice("mig-" + std::to_string(d), f->qcore);
  }
  server.SubmitCalibration("mig-0", f->batches[0], f->slices[0]).get();
  server.Drain();

  const DeviceRow before = *FindDevice(server.whiteboard().Read(), "mig-0");
  EXPECT_EQ(before.accepted_calibration, 1u);
  EXPECT_EQ(before.batches_processed, 1u);

  // MoveDevice: the row follows the session to the target shard with its
  // history intact.
  const int target = 1 - server.ShardOf("mig-0");
  server.MoveDevice("mig-0", target);
  {
    const WhiteboardImage image = server.whiteboard().Read();
    const DeviceRow* row = FindDevice(image, "mig-0");
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->shard, target);
    EXPECT_EQ(row->activity, SessionActivity::kIdle);  // move completed
    EXPECT_EQ(row->accepted_calibration, before.accepted_calibration);
    EXPECT_EQ(row->batches_processed, before.batches_processed);
    // The migration barrier published a snapshot; the row tracks it.
    EXPECT_EQ(row->snapshot_version,
              server.snapshots().LatestFor("mig-0")->version);
  }

  // Shrink to one shard: every device rehomes to shard 0, shard 1's row is
  // flagged retired (not erased), and no device history is lost.
  server.Rebalance(1);
  {
    const WhiteboardImage image = server.whiteboard().Read();
    ASSERT_EQ(image.shards.size(), 2u);
    EXPECT_FALSE(FindShard(image, 0)->retired);
    EXPECT_TRUE(FindShard(image, 1)->retired);
    EXPECT_EQ(FindShard(image, 0)->sessions, 4u);
    EXPECT_EQ(image.devices.size(), 4u);
    for (const auto& row : image.devices) {
      EXPECT_EQ(row.shard, 0);
    }
    const DeviceRow* row = FindDevice(image, "mig-0");
    EXPECT_EQ(row->accepted_calibration, before.accepted_calibration);
  }

  // Grow again: shard index 1 is reused and its row un-retires.
  server.Rebalance(2);
  {
    const WhiteboardImage image = server.whiteboard().Read();
    EXPECT_FALSE(FindShard(image, 1)->retired);
  }
  // The fleet still serves after the churn (rows didn't dangle).
  server.SubmitCalibration("mig-0", f->batches[1], f->slices[1]).get();
  server.Drain();
  EXPECT_EQ(FindDevice(server.whiteboard().Read(), "mig-0")
                ->accepted_calibration,
            before.accepted_calibration + 1);
}

TEST(WhiteboardTest, ShedRecordsLastErrorAndCountsMatchMetrics) {
  FleetFixture* f = GetFixture();
  FleetServerOptions opts = ServerOptions(2);
  opts.max_inference_queue_per_session = 1;
  opts.simulated_device_rtt_ms = 30.0;  // keep the one slot occupied
  FleetServer server(*f->base, *f->bf, opts);
  server.RegisterDevice("bounded", f->qcore);

  std::vector<std::future<InferenceResult>> accepted;
  uint64_t shed = 0;
  for (int i = 0; i < 6; ++i) {
    auto r = server.TrySubmitInference("bounded", f->target.test.x());
    if (r.ok()) {
      accepted.push_back(std::move(r).value());
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  ASSERT_GT(shed, 0u);  // the bound actually bit
  server.Drain();

  const WhiteboardImage image = server.whiteboard().Read();
  const DeviceRow* row = FindDevice(image, "bounded");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->shed_inference, shed);
  EXPECT_EQ(row->shed_inference, server.metrics().shed_inference());
  EXPECT_EQ(row->accepted_inference, accepted.size());
  // The concrete status landed on both the device and its shard row.
  EXPECT_EQ(row->last_error.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(row->last_error.message().find("bounded"), std::string::npos);
  EXPECT_GT(row->last_error_ns, 0u);
  const ShardRow* shard = FindShard(image, 0);
  EXPECT_EQ(shard->shed_inference, shed);
  EXPECT_EQ(shard->last_error.code(), StatusCode::kResourceExhausted);
  // And it renders in the dump.
  EXPECT_NE(image.ToTable().find("ResourceExhausted"), std::string::npos);
}

TEST(WhiteboardTest, BarrierFlushCountedOnShardRowAndMetrics) {
  FleetFixture* f = GetFixture();
  FleetServerOptions opts = ServerOptions(2);
  opts.enable_batching = true;
  opts.batching.max_batch = 8;
  opts.batching.max_delay_us = 1e6;  // only a barrier can flush the group
  FleetServer server(*f->base, *f->bf, opts);
  server.RegisterDevice("dev", f->qcore);

  auto i1 = server.SubmitInference("dev", f->target.test.x());
  auto i2 = server.SubmitInference("dev", f->target.test.x());
  // Model-mutating submission: must force the parked group out first.
  server.SubmitCalibration("dev", f->batches[0], f->slices[0]).get();
  i1.get();
  i2.get();
  server.Drain();

  EXPECT_GE(server.metrics().barrier_flushes(), 1u);
  const WhiteboardImage image = server.whiteboard().Read();
  EXPECT_EQ(FindShard(image, 0)->barrier_flushes,
            server.metrics().barrier_flushes());
  const DeviceRow* row = FindDevice(image, "dev");
  EXPECT_EQ(row->last_batch_occupancy, 2u);  // the barrier-flushed group
}

TEST(WhiteboardTest, WarmStartOriginReported) {
  FleetFixture* f = GetFixture();
  SnapshotRegistry shared;
  {
    FleetServer seeder(*f->base, *f->bf, ServerOptions(1), &shared);
    seeder.RegisterDevice("veteran", f->qcore);
    seeder.SubmitCalibration("veteran", f->batches[0], f->slices[0]).get();
    seeder.PublishSnapshot("veteran").get();
    seeder.Drain();
  }

  FleetServerOptions opts = ServerOptions(1);
  opts.warm_start_from_registry = true;
  FleetServer server(*f->base, *f->bf, opts, &shared);
  server.RegisterDevice("veteran", f->qcore);   // own snapshot exists
  server.RegisterDevice("newcomer", f->qcore);  // cohort snapshot only
  const WhiteboardImage image = server.whiteboard().Read();
  EXPECT_EQ(FindDevice(image, "veteran")->warm_start,
            WarmStartOrigin::kOwnSnapshot);
  EXPECT_EQ(FindDevice(image, "newcomer")->warm_start,
            WarmStartOrigin::kCohortSnapshot);

  FleetServer cold(*f->base, *f->bf, ServerOptions(1));
  cold.RegisterDevice("fresh", f->qcore);
  EXPECT_EQ(FindDevice(cold.whiteboard().Read(), "fresh")->warm_start,
            WarmStartOrigin::kCold);
}

TEST(WhiteboardTest, WalRowPopulatedOverDurableStore) {
  FleetFixture* f = GetFixture();
  const std::string path = "/tmp/qcore_obs_test_snapshots.wal";
  std::remove(path.c_str());
  {
    DurableSnapshotStoreOptions dopts;
    dopts.path = path;
    dopts.fsync_on_publish = true;
    auto store = DurableSnapshotStore::Open(std::move(dopts));
    ASSERT_TRUE(store.ok());
    SnapshotRegistry durable(std::move(store).value());

    FleetServer server(*f->base, *f->bf, ServerOptions(1), &durable);
    server.RegisterDevice("dev", f->qcore);
    server.PublishSnapshot("dev").get();
    server.PublishSnapshot("dev").get();
    server.Drain();

    const WhiteboardImage image = server.whiteboard().Read();
    EXPECT_EQ(image.wal.appends, 2u);
    EXPECT_GT(image.wal.appended_bytes, 0u);
    EXPECT_EQ(image.wal.fsyncs, 2u);
    // The one-line WAL summary renders in the dump.
    EXPECT_NE(image.ToTable().find("wal:"), std::string::npos);
  }
  std::remove(path.c_str());
}

// A torn WAL tail recovered at reopen surfaces on the whiteboard's WAL
// row (satellite of the chaos plane: recovery is observable, not silent).
TEST(WhiteboardTest, WalRowCountsTornTailRecovery) {
  FleetFixture* f = GetFixture();
  const std::string path = "/tmp/qcore_obs_torn_snapshots.wal";
  std::remove(path.c_str());
  {
    DurableSnapshotStoreOptions dopts;
    dopts.path = path;
    auto store = DurableSnapshotStore::Open(std::move(dopts));
    ASSERT_TRUE(store.ok());
    SnapshotRegistry durable(std::move(store).value());
    FleetServer server(*f->base, *f->bf, ServerOptions(1), &durable);
    server.RegisterDevice("dev", f->qcore);
    server.PublishSnapshot("dev").get();
    server.PublishSnapshot("dev").get();
    server.Drain();
  }
  {
    // Kill the last record mid-write: chop bytes off the tail.
    std::FILE* file = std::fopen(path.c_str(), "rb");
    ASSERT_NE(file, nullptr);
    std::fseek(file, 0, SEEK_END);
    const long size = std::ftell(file);
    std::fclose(file);
    ASSERT_EQ(truncate(path.c_str(), size - 5), 0);
  }
  {
    DurableSnapshotStoreOptions dopts;
    dopts.path = path;
    auto store = DurableSnapshotStore::Open(std::move(dopts));
    ASSERT_TRUE(store.ok());
    SnapshotRegistry recovered(std::move(store).value());
    FleetServer server(*f->base, *f->bf, ServerOptions(1), &recovered);
    const WhiteboardImage image = server.whiteboard().Read();
    EXPECT_EQ(image.wal.torn_tails, 1u);
    EXPECT_NE(image.ToTable().find("torn_tails=1"), std::string::npos);
    // And it survives the binary round trip (format v2).
    auto round = WhiteboardImage::Deserialize(image.Serialize());
    ASSERT_TRUE(round.ok());
    EXPECT_EQ(round.value().wal.torn_tails, 1u);
  }
  std::remove(path.c_str());
}

// An injected fault is observable on BOTH planes: a kFaultInjected trace
// event riding the migration span, and last-error rows on the whiteboard
// for the device and the shard that "crashed".
TEST(WhiteboardTest, FaultFiringRecordsTraceEventAndLastErrorRows) {
  FleetFixture* f = GetFixture();
  ShardedFleetServerOptions sopts;
  sopts.num_shards = 2;
  sopts.shard = ServerOptions(1);
  ShardedFleetServer server(*f->base, *f->bf, sopts);
  server.RegisterDevice("mover", f->qcore);

  TraceRing::Global().Clear();
  FaultInjector injector(0x0B5);
  FaultScript script;
  script.arg = 99;
  injector.Arm(FaultPoint::kShardCrashDuringMigration, script);
  injector.Install();
  const int source = server.ShardOf("mover");
  const int target = 1 - source;
  server.MoveDevice("mover", target);
  FaultInjector::Uninstall();
  ASSERT_EQ(injector.fired(FaultPoint::kShardCrashDuringMigration), 1u);

  // Trace plane: the firing rides the migration span — the post-mortem
  // timeline shows a detach with no matching attach, explained by the
  // faultInjected event in between.
  uint64_t span = 0;
  for (const auto& e : TraceRing::Global().Collect()) {
    if (e.kind == TraceKind::kDetach) span = e.span;
  }
  ASSERT_NE(span, 0u);
  const std::vector<TraceEvent> timeline =
      TraceRing::Global().CollectSpan(span);
  const int detach = IndexOf(timeline, TraceKind::kDetach);
  const int fault = IndexOf(timeline, TraceKind::kFaultInjected);
  ASSERT_GE(detach, 0);
  ASSERT_GE(fault, 0);
  EXPECT_LT(detach, fault);
  EXPECT_EQ(IndexOf(timeline, TraceKind::kAttach), -1);
  const TraceEvent& fired = timeline[static_cast<size_t>(fault)];
  EXPECT_EQ(TraceRing::Global().NameOf(fired.arg0),
            "fault:shardCrashDuringMigration");
  EXPECT_EQ(fired.arg1, 99u);

  // Whiteboard plane: device and target-shard rows carry the injected
  // error, and it renders in the dump.
  const WhiteboardImage image = server.whiteboard().Read();
  const DeviceRow* device = FindDevice(image, "mover");
  ASSERT_NE(device, nullptr);
  EXPECT_EQ(device->last_error.code(), StatusCode::kIoError);
  EXPECT_NE(device->last_error.message().find("injected"),
            std::string::npos);
  const ShardRow* shard = FindShard(image, target);
  ASSERT_NE(shard, nullptr);
  EXPECT_EQ(shard->last_error.code(), StatusCode::kIoError);
  // The table renders error codes only (messages stay on the row), so
  // the dump flags the fault as an IoError cell.
  EXPECT_NE(image.ToTable().find("IoError"), std::string::npos);
}

TEST(WhiteboardTest, ImageSerializeRoundTrips) {
  FleetFixture* f = GetFixture();
  FleetServerOptions opts = ServerOptions(2);
  opts.max_inference_queue_per_session = 1;
  opts.simulated_device_rtt_ms = 20.0;
  FleetServer server(*f->base, *f->bf, opts);
  server.RegisterDevice("a", f->qcore);
  server.RegisterDevice("b", f->qcore);
  // Mixed history including a shed, so the optional error fields serialize.
  // The later submissions shed on the per-class cap by design; the futures
  // (when admitted) are resolved by Drain below.
  for (int i = 0; i < 4; ++i) {
    auto submitted = server.TrySubmitInference("a", f->target.test.x());
    (void)submitted;
  }
  // And a deadline shed, so every v3 per-reason counter is non-trivially
  // populated: a sub-microsecond budget is already expired by the exec
  // check (its deadline rounds to "now"), deterministically.
  InferenceSubmitOptions budget;
  budget.latency_budget_us = 0.001;
  auto doomed = server.TrySubmitInference("b", f->target.test.x(), budget);
  server.SubmitCalibration("b", f->batches[0], f->slices[0]);
  server.Drain();
  if (doomed.ok()) std::move(doomed).value().get();
  server.PublishSnapshot("a").get();

  const WhiteboardImage image = server.whiteboard().Read();
  // The v3 fields being round-tripped actually carry history here.
  EXPECT_GT(image.shards[0].shed_queue_full, 0u);
  EXPECT_GT(image.shards[0].shed_deadline, 0u);
  const std::vector<uint8_t> bytes = image.Serialize();
  auto round = WhiteboardImage::Deserialize(bytes);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  const WhiteboardImage& got = round.value();

  ASSERT_EQ(got.shards.size(), image.shards.size());
  for (size_t i = 0; i < image.shards.size(); ++i) {
    const ShardRow& a = image.shards[i];
    const ShardRow& b = got.shards[i];
    EXPECT_EQ(a.shard, b.shard);
    EXPECT_EQ(a.retired, b.retired);
    EXPECT_EQ(a.sessions, b.sessions);
    EXPECT_EQ(a.inference_requests, b.inference_requests);
    EXPECT_EQ(a.calibration_batches, b.calibration_batches);
    EXPECT_EQ(a.snapshots_published, b.snapshots_published);
    EXPECT_EQ(a.accepted_inference, b.accepted_inference);
    EXPECT_EQ(a.shed_inference, b.shed_inference);
    EXPECT_EQ(a.shed_queue_full, b.shed_queue_full);
    EXPECT_EQ(a.shed_deadline, b.shed_deadline);
    EXPECT_EQ(a.shed_limiter, b.shed_limiter);
    EXPECT_EQ(a.barrier_flushes, b.barrier_flushes);
    EXPECT_EQ(a.last_error.code(), b.last_error.code());
    EXPECT_EQ(a.last_error.message(), b.last_error.message());
    EXPECT_EQ(a.last_error_ns, b.last_error_ns);
  }
  ASSERT_EQ(got.devices.size(), image.devices.size());
  for (size_t i = 0; i < image.devices.size(); ++i) {
    const DeviceRow& a = image.devices[i];
    const DeviceRow& b = got.devices[i];
    EXPECT_EQ(a.device_id, b.device_id);
    EXPECT_EQ(a.shard, b.shard);
    EXPECT_EQ(a.activity, b.activity);
    EXPECT_EQ(a.warm_start, b.warm_start);
    EXPECT_EQ(a.accepted_inference, b.accepted_inference);
    EXPECT_EQ(a.accepted_calibration, b.accepted_calibration);
    EXPECT_EQ(a.shed_inference, b.shed_inference);
    EXPECT_EQ(a.shed_queue_full, b.shed_queue_full);
    EXPECT_EQ(a.shed_deadline, b.shed_deadline);
    EXPECT_EQ(a.shed_limiter, b.shed_limiter);
    EXPECT_EQ(a.last_batch_occupancy, b.last_batch_occupancy);
    EXPECT_EQ(a.batches_processed, b.batches_processed);
    EXPECT_EQ(a.snapshot_version, b.snapshot_version);
    EXPECT_EQ(a.last_error.code(), b.last_error.code());
    EXPECT_EQ(a.last_error.message(), b.last_error.message());
    EXPECT_EQ(a.last_error_ns, b.last_error_ns);
  }
  EXPECT_EQ(got.wal.appends, image.wal.appends);
  EXPECT_EQ(got.wal.appended_bytes, image.wal.appended_bytes);

  // Corruption is a Status, not a crash.
  std::vector<uint8_t> truncated(bytes.begin(),
                                 bytes.begin() + bytes.size() / 2);
  EXPECT_FALSE(WhiteboardImage::Deserialize(truncated).ok());
}

// ------------------------------------------------------------- trace ring

TEST(TraceTest, UnbatchedInferenceLifecycleReconstructs) {
  FleetFixture* f = GetFixture();
  TraceRing::Global().Clear();
  FleetServer server(*f->base, *f->bf, ServerOptions(2));
  server.RegisterDevice("dev", f->qcore);
  const InferenceResult result =
      server.SubmitInference("dev", f->target.test.x()).get();
  server.Drain();
  ASSERT_NE(result.trace_span, 0u);

  const std::vector<TraceEvent> timeline =
      TraceRing::Global().CollectSpan(result.trace_span);
  ASSERT_EQ(timeline.size(), 4u);
  EXPECT_EQ(timeline[0].kind, TraceKind::kSubmitInference);
  EXPECT_EQ(timeline[1].kind, TraceKind::kExecStart);
  EXPECT_EQ(timeline[2].kind, TraceKind::kExecEnd);
  EXPECT_EQ(timeline[3].kind, TraceKind::kComplete);
  for (size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_GE(timeline[i].ts_ns, timeline[i - 1].ts_ns);
  }
  // Every event names the device via the interned id.
  for (const auto& e : timeline) {
    EXPECT_EQ(TraceRing::Global().NameOf(e.arg0), "dev");
  }
}

TEST(TraceTest, BatchedLifecycleReconstructsFullSpanChain) {
  FleetFixture* f = GetFixture();
  TraceRing::Global().Clear();
  FleetServerOptions opts = ServerOptions(2);
  opts.enable_batching = true;
  opts.batching.max_batch = 2;  // size-triggered flush, deterministic
  opts.batching.max_delay_us = 1e6;
  FleetServer server(*f->base, *f->bf, opts);
  server.RegisterDevice("dev", f->qcore);

  auto f1 = server.SubmitInference("dev", f->target.test.x());
  auto f2 = server.SubmitInference("dev", f->target.test.x());
  const InferenceResult r1 = f1.get();
  const InferenceResult r2 = f2.get();
  server.Drain();
  ASSERT_NE(r1.trace_span, 0u);
  ASSERT_NE(r2.trace_span, 0u);
  EXPECT_NE(r1.trace_span, r2.trace_span);

  // Each request's own span: submit -> enqueue -> flush -> complete.
  const std::vector<TraceEvent> timeline =
      TraceRing::Global().CollectSpan(r1.trace_span);
  ASSERT_EQ(timeline.size(), 4u);
  EXPECT_EQ(timeline[0].kind, TraceKind::kSubmitInference);
  EXPECT_EQ(timeline[1].kind, TraceKind::kBatchEnqueue);
  EXPECT_EQ(timeline[2].kind, TraceKind::kBatchFlush);
  EXPECT_EQ(timeline[3].kind, TraceKind::kComplete);

  // The flush and complete events both point at the group's span, which
  // carries the shared forward pass (exec start/end, occupancy = 2).
  const uint64_t group_span = timeline[2].arg1;
  ASSERT_NE(group_span, 0u);
  EXPECT_EQ(timeline[3].arg1, group_span);
  const std::vector<TraceEvent> group =
      TraceRing::Global().CollectSpan(group_span);
  const int start = IndexOf(group, TraceKind::kExecStart);
  const int end = IndexOf(group, TraceKind::kExecEnd);
  ASSERT_GE(start, 0);
  ASSERT_GE(end, 0);
  EXPECT_LT(start, end);
  EXPECT_EQ(group[static_cast<size_t>(start)].arg1, 2u);  // group size

  // The second request's chain lands on the SAME group.
  const std::vector<TraceEvent> timeline2 =
      TraceRing::Global().CollectSpan(r2.trace_span);
  ASSERT_EQ(timeline2.size(), 4u);
  EXPECT_EQ(timeline2[2].arg1, group_span);
}

TEST(TraceTest, SnapshotPublishChainsThroughWalAppend) {
  FleetFixture* f = GetFixture();
  const std::string path = "/tmp/qcore_obs_trace_snapshots.wal";
  std::remove(path.c_str());
  {
    DurableSnapshotStoreOptions dopts;
    dopts.path = path;
    auto store = DurableSnapshotStore::Open(std::move(dopts));
    ASSERT_TRUE(store.ok());
    SnapshotRegistry durable(std::move(store).value());

    TraceRing::Global().Clear();
    FleetServer server(*f->base, *f->bf, ServerOptions(2), &durable);
    server.RegisterDevice("dev", f->qcore);
    server.PublishSnapshot("dev").get();
    server.Drain();

    // Find the publish span among collected events (PublishSnapshot does
    // not return its span; the publish event identifies it).
    uint64_t span = 0;
    for (const auto& e : TraceRing::Global().Collect()) {
      if (e.kind == TraceKind::kSnapshotPublish &&
          TraceRing::Global().NameOf(e.arg0) == "dev") {
        span = e.span;
      }
    }
    ASSERT_NE(span, 0u);
    const std::vector<TraceEvent> timeline =
        TraceRing::Global().CollectSpan(span);
    // publish -> WAL append (inherited via the thread-local span) ->
    // complete, in timestamp order.
    const int publish = IndexOf(timeline, TraceKind::kSnapshotPublish);
    const int wal = IndexOf(timeline, TraceKind::kWalAppend);
    const int complete = IndexOf(timeline, TraceKind::kComplete);
    ASSERT_GE(publish, 0);
    ASSERT_GE(wal, 0);
    ASSERT_GE(complete, 0);
    EXPECT_LT(publish, wal);
    EXPECT_LT(wal, complete);
    EXPECT_GT(timeline[static_cast<size_t>(wal)].arg1, 0u);  // bytes
  }
  std::remove(path.c_str());
}

TEST(TraceTest, MigrationSpanLinksDetachAndAttach) {
  FleetFixture* f = GetFixture();
  ShardedFleetServerOptions sopts;
  sopts.num_shards = 2;
  sopts.shard = ServerOptions(1);
  ShardedFleetServer server(*f->base, *f->bf, sopts);
  server.RegisterDevice("mover", f->qcore);

  TraceRing::Global().Clear();
  const int source = server.ShardOf("mover");
  server.MoveDevice("mover", 1 - source);

  uint64_t span = 0;
  for (const auto& e : TraceRing::Global().Collect()) {
    if (e.kind == TraceKind::kDetach) span = e.span;
  }
  ASSERT_NE(span, 0u);
  const std::vector<TraceEvent> timeline =
      TraceRing::Global().CollectSpan(span);
  const int detach = IndexOf(timeline, TraceKind::kDetach);
  const int attach = IndexOf(timeline, TraceKind::kAttach);
  ASSERT_GE(detach, 0);
  ASSERT_GE(attach, 0);
  EXPECT_LT(detach, attach);
  EXPECT_EQ(timeline[static_cast<size_t>(detach)].arg1,
            static_cast<uint64_t>(source));
  EXPECT_EQ(timeline[static_cast<size_t>(attach)].arg1,
            static_cast<uint64_t>(1 - source));
}

TEST(TraceTest, WraparoundDropsOldestEventsOnly) {
  TraceRing& ring = TraceRing::Global();
  ring.Clear();
  ring.SetCapacityPerThread(4);
  const uint64_t span = TraceRing::NextSpan();
  // A fresh thread gets a fresh ring at the shrunken capacity (capacity
  // applies to rings created after the call).
  std::thread recorder([&]() {
    for (uint64_t i = 0; i < 10; ++i) {
      ring.Record(TraceKind::kComplete, span, 0, i);
    }
  });
  recorder.join();
  ring.SetCapacityPerThread(8192);  // restore for later tests

  const std::vector<TraceEvent> events = ring.CollectSpan(span);
  ASSERT_EQ(events.size(), 4u);
  // Oldest dropped, newest kept, order preserved.
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].arg1, 6 + i);
  }
  EXPECT_GE(ring.dropped_events(), 6u);
}

// A thread that dies mid-span — the chaos shard-crash shape: events
// recorded, then the recorder gone without closing its span — must leave
// the ring collectable and the export well-formed. Dead threads' rings
// stay registered, so the orphaned events remain part of the post-mortem.
TEST(TraceTest, RingStaysConsistentWhenFaultedThreadDiesMidSpan) {
  TraceRing& ring = TraceRing::Global();
  ring.Clear();
  const uint64_t span = TraceRing::NextSpan();
  std::thread victim([&]() {
    ScopedTraceSpan scope(span);
    ring.Record(TraceKind::kExecStart, span, 0, 1);
    // The "crash": the thread exits without ever recording kExecEnd.
  });
  victim.join();

  const std::vector<TraceEvent> events = ring.CollectSpan(span);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TraceKind::kExecStart);
  // The export stays valid JSON with the unmatched "B" phase present —
  // chrome://tracing renders it as an unterminated slice, which is the
  // truthful picture of a span whose thread died.
  const std::string json = ring.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_EQ(json.back(), '}');
  // Live threads keep recording unharmed alongside the dead ring.
  ring.Record(TraceKind::kComplete, span);
  EXPECT_EQ(ring.CollectSpan(span).size(), 2u);
}

TEST(TraceTest, ChromeJsonExportContainsLifecycleEvents) {
  FleetFixture* f = GetFixture();
  TraceRing::Global().Clear();
  FleetServerOptions opts = ServerOptions(2);
  opts.enable_batching = true;
  opts.batching.max_batch = 2;
  FleetServer server(*f->base, *f->bf, opts);
  server.RegisterDevice("dev", f->qcore);
  auto f1 = server.SubmitInference("dev", f->target.test.x());
  auto f2 = server.SubmitInference("dev", f->target.test.x());
  f1.get();
  f2.get();
  server.Drain();

  const std::string json = TraceRing::Global().ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"submitInference\""), std::string::npos);
  EXPECT_NE(json.find("\"batchFlush\""), std::string::npos);
  // The forward pass exports as a paired duration event.
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"dev\""), std::string::npos);
}

TEST(TraceTest, DisabledRecordsNothing) {
  TraceRing& ring = TraceRing::Global();
  ring.Clear();
  ring.SetEnabled(false);
  const uint64_t span = TraceRing::NextSpan();
  ring.Record(TraceKind::kComplete, span);
  ring.SetEnabled(true);
  EXPECT_TRUE(ring.CollectSpan(span).empty());
  ring.Record(TraceKind::kComplete, span);
  EXPECT_EQ(ring.CollectSpan(span).size(), 1u);
}

}  // namespace
}  // namespace qcore
