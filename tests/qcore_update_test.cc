// Focused tests for core/qcore_update (Algorithm 4 building blocks) and a
// common/huffman round trip: pool-size invariants, miss-stratified
// resampling, fixed-seed determinism, and lossless code compression.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/huffman.h"
#include "core/qcore_update.h"
#include "data/har_generator.h"

namespace qcore {
namespace {

HarSpec TinySpec() {
  HarSpec spec = HarSpec::Usc();
  spec.num_classes = 4;
  spec.channels = 3;
  spec.length = 16;
  spec.train_per_class = 10;
  spec.test_per_class = 2;
  return spec;
}

TEST(QCoreUpdateTest, UpdatePoolBalancesQCoreAndBatch) {
  HarDomain d = MakeHarDomain(TinySpec(), 0);
  Rng rng(11);
  // Small QCore, larger batch: the QCore is replicated up to |batch|.
  Dataset qcore = d.train.Subset({0, 1, 2, 3, 4});
  Dataset batch = d.train.Subset({10, 11, 12, 13, 14, 15, 16, 17});
  Dataset pool = MakeUpdatePool(qcore, batch, &rng);
  EXPECT_EQ(pool.size(), 2 * batch.size());

  // Large QCore, small batch: the QCore is subsampled down to |batch|.
  std::vector<int> big(20);
  for (int i = 0; i < 20; ++i) big[static_cast<size_t>(i)] = i;
  Dataset big_qcore = d.train.Subset(big);
  Dataset small_batch = d.train.Subset({30, 31, 32});
  Dataset pool2 = MakeUpdatePool(big_qcore, small_batch, &rng);
  EXPECT_EQ(pool2.size(), 2 * small_batch.size());

  // Empty batch: the pool is the QCore unchanged.
  Dataset pool3 = MakeUpdatePool(qcore, Dataset(), &rng);
  EXPECT_EQ(pool3.size(), qcore.size());
}

TEST(QCoreUpdateTest, ResampleStratifiesByMissCounts) {
  HarDomain d = MakeHarDomain(TinySpec(), 0);
  std::vector<int> indices(40);
  for (int i = 0; i < 40; ++i) indices[static_cast<size_t>(i)] = i;
  Dataset pool = d.train.Subset(indices);

  // Two miss buckets of equal population: examples 0..19 never missed,
  // 20..39 missed 3 times. A miss-stratified resample of half the pool must
  // draw round(0.5 * 20) = 10 from each bucket — proportional allocation,
  // not uniform over the pool.
  std::vector<int> misses(40, 0);
  for (int i = 20; i < 40; ++i) misses[static_cast<size_t>(i)] = 3;
  Rng rng(17);
  Dataset resampled = ResampleQCore(pool, misses, 20, &rng);
  ASSERT_EQ(resampled.size(), 20);

  // Bucket membership is recoverable from the example tensors: compare
  // against the pool rows (labels alone are ambiguous).
  int from_clean = 0;
  for (int i = 0; i < resampled.size(); ++i) {
    for (int j = 0; j < pool.size(); ++j) {
      bool equal = true;
      for (int64_t k = 0; k < pool.Example(0).size() && equal; ++k) {
        equal = resampled.Example(i)[k] == pool.Example(j)[k];
      }
      if (equal) {
        if (j < 20) ++from_clean;
        break;
      }
    }
  }
  EXPECT_EQ(from_clean, 10);
}

TEST(QCoreUpdateTest, ResampleTopsUpWhenPoolIsSmall) {
  HarDomain d = MakeHarDomain(TinySpec(), 0);
  Dataset pool = d.train.Subset({0, 1, 2, 3});
  std::vector<int> misses = {0, 1, 2, 3};
  Rng rng(23);
  Dataset resampled = ResampleQCore(pool, misses, 9, &rng);
  EXPECT_EQ(resampled.size(), 9);  // whole pool kept + uniform duplicates
}

TEST(QCoreUpdateTest, FixedSeedIsDeterministic) {
  HarDomain d = MakeHarDomain(TinySpec(), 0);
  std::vector<int> indices(30);
  for (int i = 0; i < 30; ++i) indices[static_cast<size_t>(i)] = i;
  Dataset pool = d.train.Subset(indices);
  std::vector<int> misses(30);
  for (int i = 0; i < 30; ++i) misses[static_cast<size_t>(i)] = i % 4;

  auto run = [&]() {
    Rng rng(4242);
    Dataset r = ResampleQCore(pool, misses, 12, &rng);
    return r.labels();
  };
  EXPECT_EQ(run(), run());

  auto pool_run = [&](uint64_t seed) {
    Rng rng(seed);
    Dataset qcore = d.train.Subset({0, 1, 2});
    Dataset batch = d.train.Subset({5, 6, 7, 8, 9});
    return MakeUpdatePool(qcore, batch, &rng).labels();
  };
  EXPECT_EQ(pool_run(9), pool_run(9));
}

TEST(HuffmanTest, EncodeDecodeRoundTrip) {
  // A quantized-code-like stream: skewed distribution over a small alphabet,
  // including negative symbols.
  Rng rng(99);
  std::vector<int32_t> symbols;
  for (int i = 0; i < 5000; ++i) {
    const double u = rng.NextDouble();
    if (u < 0.6) {
      symbols.push_back(0);
    } else if (u < 0.85) {
      symbols.push_back(rng.NextBool(0.5) ? 1 : -1);
    } else {
      symbols.push_back(rng.NextInt(-7, 7));
    }
  }
  auto encoded = HuffmanCoder::Encode(symbols);
  ASSERT_TRUE(encoded.ok());
  auto decoded = HuffmanCoder::Decode(encoded.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), symbols);

  // Compression beats the 4-bit fixed-width baseline on this skew and never
  // beats entropy.
  const double entropy = HuffmanCoder::EntropyBits(symbols);
  EXPECT_GE(static_cast<double>(encoded.value().PayloadBits()) + 1e-9,
            entropy);
  EXPECT_LT(encoded.value().PayloadBits(), 4ULL * symbols.size());
}

TEST(HuffmanTest, SingleSymbolAlphabetRoundTrip) {
  std::vector<int32_t> symbols(257, 5);
  auto encoded = HuffmanCoder::Encode(symbols);
  ASSERT_TRUE(encoded.ok());
  auto decoded = HuffmanCoder::Decode(encoded.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), symbols);
}

}  // namespace
}  // namespace qcore
