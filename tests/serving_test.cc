// Tests for the fleet serving runtime: thread-pool semantics, per-session
// determinism (bit-identical to the single-threaded ContinualDriver),
// session isolation, concurrent correctness under a multi-threaded pool,
// snapshot copy-on-write, and metrics accounting. The server-level tests
// run against the FleetBackend interface and are replayed on BOTH
// implementations — the single-pool FleetServer and the consistent-hash
// ShardedFleetServer — so the API contract, not one concrete class, is
// what gets pinned. (Shard-count bit-identity and rebalancing live in
// tests/sharding_test.cc.)
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <chrono>
#include <future>
#include <memory>
#include <vector>

#include "common/serialize.h"

#include "core/pipeline.h"
#include "core/qcore_builder.h"
#include "data/har_generator.h"
#include "models/model_zoo.h"
#include "runtime/thread_pool.h"
#include "serving/backend.h"
#include "serving/router.h"
#include "serving/server.h"
#include "serving/session.h"
#include "serving/snapshot.h"

namespace qcore {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsAllScheduledTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter]() { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmitReturnsFutureValue) {
  ThreadPool pool(2);
  std::future<int> f = pool.Submit([]() { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  int value = 0;
  pool.Schedule([&value]() { value = 1; });
  EXPECT_EQ(value, 1);  // already ran, no WaitIdle needed
  pool.WaitIdle();
}

TEST(ThreadPoolTest, TasksCanScheduleMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Schedule([&]() {
    counter.fetch_add(1);
    pool.Schedule([&]() { counter.fetch_add(1); });
  });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsTasksScheduledByTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.Schedule([&]() {
        counter.fetch_add(1);
        pool.Schedule([&]() { counter.fetch_add(1); });
      });
    }
    // No WaitIdle: the destructor itself must drain, including the tasks
    // the queued tasks schedule while shutdown is already in progress.
  }
  EXPECT_EQ(counter.load(), 16);
}

// ------------------------------------------------------------ fleet fixture

// One server-side preparation (train FP model + QCore, quantize, train the
// bit-flipping net, drop shadows), shared across tests — the expensive part
// of every serving scenario.
struct FleetFixture {
  HarSpec spec;
  HarDomain source;
  HarDomain target;
  Dataset qcore;
  std::unique_ptr<QuantizedModel> base;  // deployed edge form
  std::unique_ptr<BitFlipNet> bf;
  std::vector<Dataset> batches;
  std::vector<Dataset> slices;
};

FleetFixture* GetFixture() {
  static FleetFixture* fixture = []() {
    auto* f = new FleetFixture();
    f->spec = HarSpec::Usc();
    f->spec.num_classes = 5;
    f->spec.channels = 3;
    f->spec.length = 24;
    f->spec.train_per_class = 8;
    f->spec.test_per_class = 4;
    f->source = MakeHarDomain(f->spec, 0);
    f->target = MakeHarDomain(f->spec, 1);

    Rng rng(20240901);
    auto model = MakeOmniScaleCnn(f->spec.channels, f->spec.num_classes,
                                  &rng);
    QCoreBuildOptions build;
    build.size = 15;
    build.train.epochs = 8;
    build.train.sgd.lr = 0.03f;
    auto built = BuildQCore(model.get(), f->source.train, build, &rng);
    f->qcore = built.qcore;

    f->base = std::make_unique<QuantizedModel>(*model, 4);
    BitFlipTrainOptions bft;
    bft.ste.epochs = 8;
    bft.ste.batch_size = 16;
    bft.augment_episodes = 1;
    f->bf = std::make_unique<BitFlipNet>(
        TrainBitFlipNet(f->base.get(), f->qcore, bft, &rng));
    f->base->DropShadows();

    Rng split_rng(777);
    f->batches = SplitIntoStreamBatches(f->target.train, 3, &split_rng);
    f->slices = SplitIntoStreamBatches(f->target.test, 3, &split_rng);
    return f;
  }();
  return fixture;
}

ContinualOptions TestContinualOptions() {
  ContinualOptions opts;
  opts.iterations = 2;
  return opts;
}

// Both implementations of the serving API; suite-level loops replay each
// backend-generic test against every kind.
enum class BackendKind { kSingle, kSharded };

const BackendKind kAllBackends[] = {BackendKind::kSingle,
                                    BackendKind::kSharded};

const char* KindName(BackendKind kind) {
  return kind == BackendKind::kSingle ? "FleetServer" : "ShardedFleetServer";
}

std::unique_ptr<FleetBackend> MakeBackend(BackendKind kind, FleetFixture* f,
                                          const FleetServerOptions& opts,
                                          int num_shards = 2) {
  if (kind == BackendKind::kSingle) {
    return std::make_unique<FleetServer>(*f->base, *f->bf, opts);
  }
  ShardedFleetServerOptions sopts;
  sopts.num_shards = num_shards;
  sopts.shard = opts;
  return std::make_unique<ShardedFleetServer>(*f->base, *f->bf, sopts);
}

std::vector<std::vector<int32_t>> CodesOf(FleetBackend* backend,
                                          const std::string& device_id) {
  std::vector<std::vector<int32_t>> codes;
  backend->WithSessionQuiesced(device_id, [&](CalibrationSession& session) {
    codes = session.model()->AllCodes();
  });
  return codes;
}

// ----------------------------------------------------- session determinism

TEST(CalibrationSessionTest, MatchesSingleThreadedContinualDriver) {
  FleetFixture* f = GetFixture();
  const uint64_t seed = DeviceSeed(0x5EED, "device-0");

  // Reference: the single-threaded pipeline loop, driven directly.
  auto ref_model = f->base->Clone();
  BitFlipNet ref_bf = f->bf->Clone();
  Rng ref_rng(seed);
  ContinualDriver driver(ref_model.get(), &ref_bf, f->qcore,
                         TestContinualOptions(), &ref_rng);
  std::vector<BatchStats> ref_stats =
      driver.RunStream(f->batches, f->slices);

  // Session: the serving wrapper over the same loop.
  CalibrationSession session("device-0", *f->base, *f->bf, f->qcore,
                             TestContinualOptions(), seed);
  std::vector<BatchStats> session_stats;
  for (size_t i = 0; i < f->batches.size(); ++i) {
    session_stats.push_back(session.Calibrate(f->batches[i], f->slices[i]));
  }

  ASSERT_EQ(session_stats.size(), ref_stats.size());
  for (size_t i = 0; i < ref_stats.size(); ++i) {
    EXPECT_FLOAT_EQ(session_stats[i].accuracy, ref_stats[i].accuracy);
    EXPECT_EQ(session_stats[i].qcore_changed, ref_stats[i].qcore_changed);
  }
  EXPECT_EQ(session.model()->AllCodes(), ref_model->AllCodes());
}

TEST(CalibrationSessionTest, PredictDoesNotPerturbCalibration) {
  FleetFixture* f = GetFixture();
  const uint64_t seed = DeviceSeed(1, "d");

  CalibrationSession plain("d", *f->base, *f->bf, f->qcore,
                           TestContinualOptions(), seed);
  plain.Calibrate(f->batches[0], f->slices[0]);

  CalibrationSession interleaved("d", *f->base, *f->bf, f->qcore,
                                 TestContinualOptions(), seed);
  interleaved.Predict(f->target.test.x());  // extra inference between steps
  interleaved.Calibrate(f->batches[0], f->slices[0]);
  interleaved.Predict(f->target.test.x());

  EXPECT_EQ(plain.model()->AllCodes(), interleaved.model()->AllCodes());
}

// A session serialized mid-stream and restored from its snapshot +
// continuation blob must continue bit-identically — the primitive behind
// shard rebalancing (end-to-end coverage in sharding_test.cc).
TEST(CalibrationSessionTest, ContinuationRoundTripResumesBitIdentically) {
  FleetFixture* f = GetFixture();
  const uint64_t seed = DeviceSeed(0xABCD, "migrant");

  CalibrationSession original("migrant", *f->base, *f->bf, f->qcore,
                              TestContinualOptions(), seed);
  original.Calibrate(f->batches[0], f->slices[0]);

  // Capture: model snapshot (registry blob) + continuation state.
  SnapshotRegistry registry;
  const uint64_t version =
      registry.Publish(*original.model(), "migrant",
                       original.batches_processed());
  BinaryWriter w;
  original.SerializeContinuation(&w);
  std::vector<uint8_t> continuation = w.TakeBuffer();

  BinaryReader r(std::move(continuation));
  CalibrationSession restored("migrant", *f->base, *f->bf,
                              TestContinualOptions(), *registry.Get(version),
                              &r);
  EXPECT_EQ(restored.batches_processed(), original.batches_processed());
  EXPECT_EQ(restored.model()->AllCodes(), original.model()->AllCodes());

  // Both must now evolve identically: same stats, same codes, same
  // predictions — the restored Rng stream position is what makes this hold.
  for (size_t b = 1; b < f->batches.size(); ++b) {
    const BatchStats s0 = original.Calibrate(f->batches[b], f->slices[b]);
    const BatchStats s1 = restored.Calibrate(f->batches[b], f->slices[b]);
    EXPECT_FLOAT_EQ(s0.accuracy, s1.accuracy);
    EXPECT_EQ(s0.qcore_changed, s1.qcore_changed);
  }
  EXPECT_EQ(restored.model()->AllCodes(), original.model()->AllCodes());
  EXPECT_EQ(restored.Predict(f->target.test.x()),
            original.Predict(f->target.test.x()));
}

// ------------------------------------------------------------ FleetBackend

FleetServerOptions ServerOptions(int threads) {
  FleetServerOptions opts;
  opts.num_threads = threads;
  opts.continual = TestContinualOptions();
  opts.seed = 0x5EED;
  return opts;
}

TEST(FleetBackendTest, ThreadCountDoesNotChangeSessionResults) {
  FleetFixture* f = GetFixture();
  const std::vector<std::string> devices = {"dev-a", "dev-b", "dev-c"};

  for (BackendKind kind : kAllBackends) {
    SCOPED_TRACE(KindName(kind));
    auto run = [&](int threads) {
      auto stats = std::vector<std::vector<BatchStats>>(devices.size());
      std::vector<std::vector<std::vector<int32_t>>> codes;
      auto server = MakeBackend(kind, f, ServerOptions(threads));
      for (const auto& d : devices) server->RegisterDevice(d, f->qcore);
      std::vector<std::future<BatchStats>> futures;
      for (size_t b = 0; b < f->batches.size(); ++b) {
        for (const auto& d : devices) {
          futures.push_back(
              server->SubmitCalibration(d, f->batches[b], f->slices[b]));
        }
      }
      size_t fi = 0;
      for (size_t b = 0; b < f->batches.size(); ++b) {
        for (size_t d = 0; d < devices.size(); ++d) {
          stats[d].push_back(futures[fi++].get());
        }
      }
      server->Drain();
      for (const auto& d : devices) {
        codes.push_back(CodesOf(server.get(), d));
      }
      return std::make_pair(stats, codes);
    };

    auto [stats0, codes0] = run(0);  // inline reference execution
    auto [stats4, codes4] = run(4);  // multi-threaded pool(s)

    for (size_t d = 0; d < devices.size(); ++d) {
      ASSERT_EQ(stats0[d].size(), stats4[d].size());
      for (size_t b = 0; b < stats0[d].size(); ++b) {
        EXPECT_FLOAT_EQ(stats0[d][b].accuracy, stats4[d][b].accuracy);
        EXPECT_EQ(stats0[d][b].qcore_changed, stats4[d][b].qcore_changed);
      }
      EXPECT_EQ(codes0[d], codes4[d]);
    }
  }
}

TEST(FleetBackendTest, SessionsAreIsolated) {
  FleetFixture* f = GetFixture();
  for (BackendKind kind : kAllBackends) {
    SCOPED_TRACE(KindName(kind));
    auto server = MakeBackend(kind, f, ServerOptions(2));
    server->RegisterDevice("calibrating", f->qcore);
    server->RegisterDevice("idle", f->qcore);

    server->SubmitCalibration("calibrating", f->batches[0], f->slices[0])
        .get();
    server->Drain();

    // The idle device still serves the untouched base model.
    EXPECT_EQ(CodesOf(server.get(), "idle"), f->base->AllCodes());
    // And the calibrating device diverged from it (codes actually moved).
    EXPECT_NE(CodesOf(server.get(), "calibrating"), f->base->AllCodes());
  }
}

TEST(FleetBackendTest, WithSessionQuiescedWaitsOutQueuedWork) {
  FleetFixture* f = GetFixture();
  for (BackendKind kind : kAllBackends) {
    SCOPED_TRACE(KindName(kind));
    FleetServerOptions opts = ServerOptions(2);
    opts.simulated_device_rtt_ms = 10.0;  // keep work in flight
    auto server = MakeBackend(kind, f, opts);
    server->RegisterDevice("dev", f->qcore);

    // No Drain: the accessor itself must wait for the queued calibration
    // and inference to finish before granting access.
    auto calib = server->SubmitCalibration("dev", f->batches[0], f->slices[0]);
    auto inf = server->SubmitInference("dev", f->target.test.x());
    uint64_t seen_batches = 0;
    std::vector<std::vector<int32_t>> codes;
    server->WithSessionQuiesced("dev", [&](CalibrationSession& session) {
      seen_batches = session.batches_processed();
      codes = session.model()->AllCodes();
    });
    EXPECT_EQ(seen_batches, 1u);
    // Both futures must already be resolved — quiescing ran the queue dry.
    EXPECT_EQ(calib.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(inf.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_NE(codes, f->base->AllCodes());
    server->Drain();
  }
}

TEST(FleetBackendTest, WithSessionQuiescedExcludesConcurrentSubmissions) {
  // Regression for the QuiesceSession redesign: the old API returned a
  // std::unique_lock from a helper (invisible to thread-safety analysis);
  // the new contract is an annotated acquire with an explicit release in
  // every caller. This pins both halves at runtime: work submitted WHILE
  // the quiesced callback runs must not complete until it returns
  // (exclusion), and must then complete promptly (the release actually
  // happens — a leaked lock deadlocks this test instead of passing).
  FleetFixture* f = GetFixture();
  for (BackendKind kind : kAllBackends) {
    SCOPED_TRACE(KindName(kind));
    auto server = MakeBackend(kind, f, ServerOptions(2));
    server->RegisterDevice("dev", f->qcore);

    std::atomic<bool> submitter_started{false};
    std::atomic<bool> inference_done{false};
    std::thread submitter;
    server->WithSessionQuiesced("dev", [&](CalibrationSession& session) {
      (void)session;
      submitter = std::thread([&]() {
        submitter_started = true;
        // Blocks on the session lock held by the quiesce until released.
        auto fut = server->SubmitInference("dev", f->target.test.x());
        fut.get();
        inference_done = true;
      });
      while (!submitter_started.load()) std::this_thread::yield();
      // Give the submitter real time to race; it must stay excluded.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      EXPECT_FALSE(inference_done.load());
    });
    submitter.join();  // hangs here if the quiesce leaked the session lock
    EXPECT_TRUE(inference_done.load());
    server->Drain();
  }
}

TEST(FleetBackendTest, ConcurrentInferenceAndCalibration) {
  FleetFixture* f = GetFixture();
  for (BackendKind kind : kAllBackends) {
    SCOPED_TRACE(KindName(kind));
    auto server = MakeBackend(kind, f, ServerOptions(4));
    const int kDevices = 6;
    for (int d = 0; d < kDevices; ++d) {
      server->RegisterDevice("dev-" + std::to_string(d), f->qcore);
    }

    std::vector<std::future<InferenceResult>> inferences;
    std::vector<std::future<BatchStats>> calibrations;
    for (int d = 0; d < kDevices; ++d) {
      const std::string id = "dev-" + std::to_string(d);
      inferences.push_back(server->SubmitInference(id, f->target.test.x()));
      calibrations.push_back(
          server->SubmitCalibration(id, f->batches[0], f->slices[0]));
      inferences.push_back(server->SubmitInference(id, f->target.test.x()));
    }
    for (auto& fu : inferences) {
      InferenceResult r = fu.get();
      EXPECT_EQ(static_cast<int>(r.predictions.size()),
                f->target.test.size());
    }
    for (auto& fu : calibrations) {
      BatchStats s = fu.get();
      EXPECT_GE(s.accuracy, 0.0f);
      EXPECT_LE(s.accuracy, 1.0f);
    }
    server->Drain();

    const ServingMetrics& m = server->metrics();
    EXPECT_EQ(m.inference_requests(), static_cast<uint64_t>(2 * kDevices));
    EXPECT_EQ(m.calibration_batches(), static_cast<uint64_t>(kDevices));
    EXPECT_EQ(m.inference_latency().count(),
              static_cast<uint64_t>(2 * kDevices));
    EXPECT_GT(m.mean_accuracy(), 0.0f);
  }
}

TEST(FleetBackendTest, SnapshotsAreCopyOnWriteAndRestorable) {
  FleetFixture* f = GetFixture();
  for (BackendKind kind : kAllBackends) {
    SCOPED_TRACE(KindName(kind));
    auto server = MakeBackend(kind, f, ServerOptions(2));
    server->RegisterDevice("dev", f->qcore);

    const uint64_t v1 = server->PublishSnapshot("dev").get();
    server->SubmitCalibration("dev", f->batches[0], f->slices[0]).get();
    const uint64_t v2 = server->PublishSnapshot("dev").get();
    server->Drain();

    EXPECT_LT(v1, v2);
    auto snap1 = server->snapshots().Get(v1);
    auto snap2 = server->snapshots().Get(v2);
    ASSERT_NE(snap1, nullptr);
    ASSERT_NE(snap2, nullptr);
    EXPECT_EQ(server->snapshots().LatestFor("dev")->version, v2);
    EXPECT_NE(snap1->bytes, snap2->bytes);  // calibration changed the model

    // Restoring v1 into a fresh clone reproduces the pre-calibration codes.
    auto restored = f->base->Clone();
    ASSERT_TRUE(SnapshotRegistry::RestoreInto(*snap1, restored.get()).ok());
    EXPECT_EQ(restored->AllCodes(), f->base->AllCodes());

    // Restoring v2 reproduces the session's current codes.
    auto restored2 = f->base->Clone();
    ASSERT_TRUE(SnapshotRegistry::RestoreInto(*snap2, restored2.get()).ok());
    EXPECT_EQ(restored2->AllCodes(), CodesOf(server.get(), "dev"));
  }
}

TEST(FleetServerTest, FailedRestoreLeavesModelUntouched) {
  FleetFixture* f = GetFixture();
  SnapshotRegistry registry;
  registry.Publish(*f->base, "dev", 0);
  ModelSnapshot truncated = *registry.Latest();
  truncated.bytes.resize(truncated.bytes.size() / 2);

  auto target = f->base->Clone();
  const auto before = target->AllCodes();
  EXPECT_FALSE(
      SnapshotRegistry::RestoreInto(truncated, target.get()).ok());
  // Atomicity: the failed restore must not leave a half-written model.
  EXPECT_EQ(target->AllCodes(), before);
}

TEST(FleetBackendTest, PeriodicSnapshotsAndTrim) {
  FleetFixture* f = GetFixture();
  for (BackendKind kind : kAllBackends) {
    SCOPED_TRACE(KindName(kind));
    FleetServerOptions opts = ServerOptions(2);
    opts.snapshot_every = 1;  // snapshot after every calibration batch
    auto server = MakeBackend(kind, f, opts);
    server->RegisterDevice("dev", f->qcore);
    for (size_t b = 0; b < f->batches.size(); ++b) {
      server->SubmitCalibration("dev", f->batches[b], f->slices[b]);
    }
    server->Drain();
    EXPECT_EQ(server->snapshots().size(), f->batches.size());
    const uint64_t latest = server->snapshots().Latest()->version;
    // Trimming keeps the device's latest version even when below the floor.
    server->snapshots().TrimBelow(latest + 1);
    EXPECT_EQ(server->snapshots().size(), 1u);
    EXPECT_EQ(server->snapshots().Latest()->version, latest);
  }
}

// ---------------------------------------- randomized interleaving property

// Property-style determinism harness: a seeded Rng generates a random
// interleaving of calibration and inference submissions over several
// devices; replaying the SAME interleaving at 1, 2, and 8 pool threads
// (batching enabled) — and on the sharded backend — must yield identical
// per-device calibration stats, identical per-request predictions,
// identical final codes, and identical snapshot versions/bytes. Catches
// any scheduling path where concurrency leaks into results.
struct InterleavingOutcome {
  std::vector<std::vector<std::pair<float, int>>> calib_stats;  // per device
  std::vector<std::vector<std::vector<int>>> predictions;       // per device
  std::vector<std::vector<std::vector<int32_t>>> codes;         // per device
  std::vector<uint64_t> snapshot_versions;                      // per device
  std::vector<std::vector<uint8_t>> snapshot_bytes;             // per device

  bool operator==(const InterleavingOutcome& o) const {
    return calib_stats == o.calib_stats && predictions == o.predictions &&
           codes == o.codes && snapshot_versions == o.snapshot_versions &&
           snapshot_bytes == o.snapshot_bytes;
  }
};

InterleavingOutcome ReplayInterleaving(FleetFixture* f, uint64_t op_seed,
                                       BackendKind kind, int threads) {
  const std::vector<std::string> devices = {"p0", "p1", "p2"};
  FleetServerOptions opts;
  opts.num_threads = threads;
  opts.continual = TestContinualOptions();
  opts.seed = 0x5EED;
  opts.enable_batching = true;  // the batcher must not break determinism
  opts.batching.max_batch = 3;
  opts.batching.max_delay_us = 50.0;
  auto server = MakeBackend(kind, f, opts);
  for (const auto& d : devices) server->RegisterDevice(d, f->qcore);

  // The op stream depends only on op_seed, never on execution timing, so
  // every replay submits the exact same sequence.
  Rng op_rng(op_seed);
  std::vector<std::vector<std::future<BatchStats>>> cal(devices.size());
  std::vector<std::vector<std::future<InferenceResult>>> inf(devices.size());
  std::vector<size_t> next_batch(devices.size(), 0);
  for (int step = 0; step < 40; ++step) {
    const size_t d =
        static_cast<size_t>(op_rng.NextInt(0, static_cast<int>(
                                                  devices.size()) -
                                                  1));
    if (op_rng.NextBool(0.4)) {
      const size_t b = next_batch[d]++ % f->batches.size();
      cal[d].push_back(
          server->SubmitCalibration(devices[d], f->batches[b], f->slices[b]));
    } else {
      const int row = op_rng.NextInt(0, f->target.test.size() - 1);
      inf[d].push_back(
          server->SubmitInference(devices[d],
                                  f->target.test.x().GatherRows({row})));
    }
  }
  server->Drain();
  // Snapshot publication order is forced (sequential .get()) so version
  // numbers are comparable across replays.
  InterleavingOutcome out;
  for (const auto& d : devices) {
    out.snapshot_versions.push_back(server->PublishSnapshot(d).get());
    out.snapshot_bytes.push_back(
        server->snapshots().LatestFor(d)->bytes);
  }
  for (size_t d = 0; d < devices.size(); ++d) {
    out.calib_stats.emplace_back();
    for (auto& fu : cal[d]) {
      const BatchStats s = fu.get();
      out.calib_stats.back().emplace_back(s.accuracy, s.qcore_changed);
    }
    out.predictions.emplace_back();
    for (auto& fu : inf[d]) {
      out.predictions.back().push_back(fu.get().predictions);
    }
    out.codes.push_back(CodesOf(server.get(), devices[d]));
  }
  return out;
}

TEST(FleetServerPropertyTest, SeededInterleavingsDeterministicAcrossThreads) {
  FleetFixture* f = GetFixture();
  for (uint64_t op_seed : {1001u, 1002u, 1003u}) {
    const InterleavingOutcome ref =
        ReplayInterleaving(f, op_seed, BackendKind::kSingle, 1);
    EXPECT_FALSE(ref.codes.empty());
    for (int threads : {2, 8}) {
      const InterleavingOutcome got =
          ReplayInterleaving(f, op_seed, BackendKind::kSingle, threads);
      EXPECT_TRUE(got == ref)
          << "op_seed=" << op_seed << " threads=" << threads;
    }
    // The sharded backend must replay the same interleaving to the same
    // outcome — including snapshot versions, which the shards assign from
    // one federated registry.
    const InterleavingOutcome sharded =
        ReplayInterleaving(f, op_seed, BackendKind::kSharded, 2);
    EXPECT_TRUE(sharded == ref) << "op_seed=" << op_seed << " sharded";
  }
}

// ---------------------------------------------------------------- metrics

TEST(MetricsTest, HistogramQuantilesAreOrdered) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i * 1e-4);  // 0.1ms .. 100ms
  EXPECT_EQ(h.count(), 1000u);
  const double p50 = h.QuantileSeconds(0.5);
  const double p95 = h.QuantileSeconds(0.95);
  const double p99 = h.QuantileSeconds(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_NEAR(h.mean_seconds(), 0.050, 0.005);
}

TEST(MetricsTest, CountHistogramExactBucketsAndOverflow) {
  CountHistogram h;
  h.Record(1);
  h.Record(1);
  h.Record(3);
  h.Record(500);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.CountAt(1), 2u);
  EXPECT_EQ(h.CountAt(3), 1u);
  EXPECT_EQ(h.CountAt(2), 0u);
  EXPECT_EQ(h.CountAt(CountHistogram::kMaxTracked), 1u);
  EXPECT_EQ(h.CountAtLeast(2), 2u);
  EXPECT_EQ(h.max(), 500);
  EXPECT_NEAR(h.mean(), (1 + 1 + 3 + 500) / 4.0, 1e-9);
  EXPECT_FALSE(h.Summary().empty());
}

TEST(MetricsTest, AccuracyMeanIsExact) {
  ServingMetrics m;
  m.AddAccuracySample(0.25f);
  m.AddAccuracySample(0.75f);
  EXPECT_FLOAT_EQ(m.mean_accuracy(), 0.5f);
  EXPECT_FALSE(m.Report().empty());
}

TEST(MetricsTest, MergeFromAccumulatesCountersAndHistograms) {
  ServingMetrics a;
  a.AddInference(3);
  a.AddAccuracySample(0.5f);
  a.inference_latency().Record(0.001);
  a.batch_occupancy().Record(2);
  a.queue_depth().Record(5);
  ServingMetrics b;
  b.AddInference(1);
  b.AddCalibration(4);
  b.AddAccuracySample(1.0f);
  b.inference_latency().Record(0.002);
  b.queue_depth().Record(3);

  ServingMetrics rollup;
  rollup.MergeFrom(a);
  rollup.MergeFrom(b);
  EXPECT_EQ(rollup.inference_requests(), 2u);
  EXPECT_EQ(rollup.inference_examples(), 4u);
  EXPECT_EQ(rollup.calibration_batches(), 1u);
  EXPECT_EQ(rollup.inference_latency().count(), 2u);
  EXPECT_EQ(rollup.batch_occupancy().CountAt(2), 1u);
  EXPECT_EQ(rollup.queue_depth().max(), 5);
  EXPECT_FLOAT_EQ(rollup.mean_accuracy(), 0.75f);

  // Reset + re-merge (the rollup rebuild pattern) must not double count.
  rollup.Reset();
  EXPECT_EQ(rollup.inference_requests(), 0u);
  EXPECT_EQ(rollup.inference_latency().count(), 0u);
  rollup.MergeFrom(a);
  EXPECT_EQ(rollup.inference_requests(), 1u);
  EXPECT_EQ(rollup.queue_depth().max(), 5);
}

}  // namespace
}  // namespace qcore
