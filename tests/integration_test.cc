// Cross-module integration tests: determinism of the whole pipeline from a
// seed, serialization across the server/edge boundary, coexistence of QCore
// and baselines on one scenario, and failure injection on the persistence
// paths.
#include <gtest/gtest.h>

#include <cstdio>

#include "baselines/continual_learner.h"
#include "core/pipeline.h"
#include "data/har_generator.h"
#include "models/model_zoo.h"
#include "nn/training.h"
#include "quant/ste_calibrator.h"

namespace qcore {
namespace {

HarSpec TinySpec() {
  HarSpec spec = HarSpec::Usc();
  spec.num_classes = 5;
  spec.channels = 3;
  spec.length = 24;
  spec.train_per_class = 8;
  spec.test_per_class = 4;
  return spec;
}

PipelineOptions TinyPipelineOptions() {
  PipelineOptions opts;
  opts.bits = 4;
  opts.build.size = 15;
  opts.build.train.epochs = 8;
  opts.build.train.sgd.lr = 0.03f;
  opts.bf_train.ste.epochs = 10;
  opts.bf_train.ste.batch_size = 16;
  opts.bf_train.augment_episodes = 1;
  opts.stream_batches = 4;
  return opts;
}

TEST(IntegrationTest, PipelineIsDeterministicFromSeed) {
  HarSpec spec = TinySpec();
  HarDomain source = MakeHarDomain(spec, 0);
  HarDomain target = MakeHarDomain(spec, 1);
  PipelineOptions opts = TinyPipelineOptions();

  auto run = [&]() {
    Rng rng(31337);
    auto model = MakeOmniScaleCnn(spec.channels, spec.num_classes, &rng);
    return RunQCorePipeline(model.get(), source.train, source.test,
                            target.train, target.test, opts, &rng);
  };
  PipelineResult a = run();
  PipelineResult b = run();
  EXPECT_EQ(a.qcore_indices, b.qcore_indices);
  ASSERT_EQ(a.per_batch.size(), b.per_batch.size());
  for (size_t i = 0; i < a.per_batch.size(); ++i) {
    EXPECT_FLOAT_EQ(a.per_batch[i].accuracy, b.per_batch[i].accuracy);
  }
  EXPECT_FLOAT_EQ(a.average_accuracy, b.average_accuracy);
}

TEST(IntegrationTest, DifferentSeedsGiveDifferentSubsets) {
  HarSpec spec = TinySpec();
  HarDomain source = MakeHarDomain(spec, 0);
  QCoreBuildOptions build;
  build.size = 15;
  build.train.epochs = 6;

  Rng rng_a(1);
  auto model_a = MakeOmniScaleCnn(spec.channels, spec.num_classes, &rng_a);
  auto res_a = BuildQCore(model_a.get(), source.train, build, &rng_a);
  Rng rng_b(2);
  auto model_b = MakeOmniScaleCnn(spec.channels, spec.num_classes, &rng_b);
  auto res_b = BuildQCore(model_b.get(), source.train, build, &rng_b);
  EXPECT_NE(res_a.indices, res_b.indices);
}

TEST(IntegrationTest, QuantizedModelSurvivesServerEdgeRoundTrip) {
  // Train + calibrate server-side, persist, reload into a fresh process-like
  // context, and verify the edge model classifies identically.
  HarSpec spec = TinySpec();
  HarDomain source = MakeHarDomain(spec, 0);
  Rng rng(55);
  auto model = MakeOmniScaleCnn(spec.channels, spec.num_classes, &rng);
  TrainOptions topt;
  topt.epochs = 8;
  topt.sgd.lr = 0.03f;
  TrainClassifier(model.get(), source.train.x(), source.train.labels(), topt,
                  &rng);
  QuantizedModel qm(*model, 4);
  SteOptions sopt;
  sopt.epochs = 8;
  SteCalibrate(&qm, source.train.x(), source.train.labels(), sopt, &rng);

  const std::string path = "/tmp/qcore_integration_roundtrip.bin";
  ASSERT_TRUE(qm.Save(path).ok());

  Rng rng2(999);  // different init — must be fully overwritten by Load
  auto arch = MakeOmniScaleCnn(spec.channels, spec.num_classes, &rng2);
  QuantizedModel edge(*arch, 4);
  ASSERT_TRUE(edge.Load(path).ok());
  edge.DropShadows();

  std::vector<int> server_preds = Predict(qm.model(), source.test.x());
  std::vector<int> edge_preds = Predict(edge.model(), source.test.x());
  EXPECT_EQ(server_preds, edge_preds);
  std::remove(path.c_str());
}

TEST(IntegrationTest, SaveToUnwritablePathFailsCleanly) {
  HarSpec spec = TinySpec();
  Rng rng(56);
  auto model = MakeOmniScaleCnn(spec.channels, spec.num_classes, &rng);
  QuantizedModel qm(*model, 4);
  Status s = qm.Save("/nonexistent_dir/model.bin");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(IntegrationTest, LoadTruncatedFileFailsCleanly) {
  HarSpec spec = TinySpec();
  Rng rng(57);
  auto model = MakeOmniScaleCnn(spec.channels, spec.num_classes, &rng);
  QuantizedModel qm(*model, 4);
  const std::string path = "/tmp/qcore_truncated.bin";
  ASSERT_TRUE(qm.Save(path).ok());
  // Truncate the file to half its size.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  Status s = qm.Load(path);
  EXPECT_FALSE(s.ok());
  std::remove(path.c_str());
}

TEST(IntegrationTest, QCoreAndBaselineShareTrainedModelConsistently) {
  // Both method families must start from the same trained FP model and the
  // same initial accuracy; the continual phase is where they diverge.
  HarSpec spec = TinySpec();
  HarDomain source = MakeHarDomain(spec, 0);
  HarDomain target = MakeHarDomain(spec, 1);
  Rng rng(58);
  auto model = MakeOmniScaleCnn(spec.channels, spec.num_classes, &rng);
  QCoreBuildOptions build;
  build.size = 15;
  build.train.epochs = 10;
  build.train.sgd.lr = 0.03f;
  auto res = BuildQCore(model.get(), source.train, build, &rng);

  QuantizedModel qcore_qm(*model, 4);
  QuantizedModel baseline_qm(*model, 4);
  const float a = QuantizedAccuracy(&qcore_qm, target.test.x(),
                                    target.test.labels());
  const float b = QuantizedAccuracy(&baseline_qm, target.test.x(),
                                    target.test.labels());
  EXPECT_FLOAT_EQ(a, b);
}

TEST(IntegrationTest, StreamBatchesCoverTargetWithoutOverlap) {
  // The streaming protocol must partition the target exactly; a duplicated
  // or dropped example would silently bias every table.
  HarSpec spec = TinySpec();
  HarDomain target = MakeHarDomain(spec, 1);
  Rng rng(59);
  auto batches = SplitIntoStreamBatches(target.train, 4, &rng);
  std::multiset<float> seen;
  for (const auto& b : batches) {
    for (int i = 0; i < b.size(); ++i) seen.insert(b.x().at(i, 0, 0));
  }
  std::multiset<float> expected;
  for (int i = 0; i < target.train.size(); ++i) {
    expected.insert(target.train.x().at(i, 0, 0));
  }
  EXPECT_EQ(seen, expected);
}

TEST(IntegrationTest, BitWidthSweepOrdersQuantizationError) {
  // End-to-end sanity across bit-widths: pre-calibration accuracy of the
  // quantized model on the source should be weakly increasing in bits.
  HarSpec spec = TinySpec();
  HarDomain source = MakeHarDomain(spec, 0);
  Rng rng(60);
  auto model = MakeOmniScaleCnn(spec.channels, spec.num_classes, &rng);
  TrainOptions topt;
  topt.epochs = 10;
  topt.sgd.lr = 0.03f;
  TrainClassifier(model.get(), source.train.x(), source.train.labels(), topt,
                  &rng);
  const float fp_acc =
      EvaluateAccuracy(model.get(), source.test.x(), source.test.labels());
  QuantizedModel q8(*model, 8);
  QuantizedModel q2(*model, 2);
  const float acc8 =
      QuantizedAccuracy(&q8, source.test.x(), source.test.labels());
  const float acc2 =
      QuantizedAccuracy(&q2, source.test.x(), source.test.labels());
  EXPECT_GE(acc8 + 0.05f, acc2);   // 8-bit at least matches 2-bit
  EXPECT_GE(fp_acc + 0.05f, acc8);  // FP at least matches 8-bit
  EXPECT_NEAR(acc8, fp_acc, 0.15f);  // 8 bits is nearly lossless
}

}  // namespace
}  // namespace qcore
