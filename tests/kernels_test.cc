// Property tests for the blocked kernel substrate (tensor/kernels.h):
// blocked GEMM and im2col-lowered conv against the retained naive
// references across awkward shapes, plus determinism and alignment
// guarantees the serving layer depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <future>
#include <vector>

#include "common/aligned.h"
#include "nn/conv.h"
#include "runtime/thread_pool.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace qcore {
namespace {

// Blocked and naive paths share the ascending-k float accumulation order,
// but may differ in fused-FMA vs separate mul+add rounding, so comparisons
// are tolerance-based (scaled to the reduction length).
void ExpectTensorsNear(const Tensor& got, const Tensor& want, double tol) {
  ASSERT_TRUE(got.SameShape(want));
  for (int64_t i = 0; i < got.size(); ++i) {
    const double scale = std::max(1.0, static_cast<double>(std::fabs(want[i])));
    ASSERT_NEAR(got[i], want[i], tol * scale) << "flat index " << i;
  }
}

struct GemmShape {
  int64_t m, n, k;
};

// Tile-non-divisible m/n/k, degenerate m=1/n=1/k=1, exact-tile shapes, and
// shapes straddling the kMC/kKC/kNC cache-block boundaries.
const GemmShape kShapes[] = {
    {1, 1, 1},       {1, 7, 5},       {5, 1, 3},      {3, 4, 1},
    {6, 16, 240},    {12, 32, 240},   {7, 17, 241},   {5, 15, 239},
    {1, 129, 3},     {97, 1, 63},     {64, 64, 64},   {128, 128, 128},
    {100, 130, 70},  {2, 300, 5},     {191, 33, 241}, {6, 1040, 7},
    {97, 129, 250},
};

class BlockedGemmTest : public ::testing::TestWithParam<GemmShape> {};

TEST_P(BlockedGemmTest, MatchesNaiveAllVariants) {
  const GemmShape s = GetParam();
  Rng rng(s.m * 1000003 + s.n * 1009 + s.k);
  const double tol = 1e-5 * std::sqrt(static_cast<double>(s.k));

  Tensor a = Tensor::Randn({s.m, s.k}, &rng);
  Tensor b = Tensor::Randn({s.k, s.n}, &rng);
  ExpectTensorsNear(MatMul(a, b), naive::MatMul(a, b), tol);

  Tensor bt = Tensor::Randn({s.n, s.k}, &rng);
  ExpectTensorsNear(MatMulTransposedB(a, bt), naive::MatMulTransposedB(a, bt),
                    tol);

  Tensor at = Tensor::Randn({s.k, s.m}, &rng);
  ExpectTensorsNear(MatMulTransposedA(at, b), naive::MatMulTransposedA(at, b),
                    tol);
}

TEST_P(BlockedGemmTest, DeterministicRunToRun) {
  const GemmShape s = GetParam();
  Rng rng(7 + s.m + s.n + s.k);
  Tensor a = Tensor::Randn({s.m, s.k}, &rng);
  Tensor b = Tensor::Randn({s.k, s.n}, &rng);
  Tensor c1 = MatMul(a, b);
  Tensor c2 = MatMul(a, b);
  for (int64_t i = 0; i < c1.size(); ++i) {
    ASSERT_EQ(c1[i], c2[i]) << "nondeterministic at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BlockedGemmTest,
                         ::testing::ValuesIn(kShapes));

// The three lowered variants must agree bit-for-bit with each other when fed
// the same mathematical operands: they pack into identical panels and run
// the identical microkernel schedule.
TEST(BlockedGemmTest, TransposedVariantsBitIdenticalToPlain) {
  Rng rng(99);
  Tensor a = Tensor::Randn({37, 53}, &rng);
  Tensor b = Tensor::Randn({53, 29}, &rng);
  Tensor plain = MatMul(a, b);
  Tensor via_tb = MatMulTransposedB(a, Transpose2d(b));
  Tensor via_ta = MatMulTransposedA(Transpose2d(a), b);
  for (int64_t i = 0; i < plain.size(); ++i) {
    ASSERT_EQ(plain[i], via_tb[i]);
    ASSERT_EQ(plain[i], via_ta[i]);
  }
}

// Accumulation order is independent of where the output element sits in the
// tile grid: computing a wide product and slicing must equal computing the
// slice alone. This is also the row-independence property the serving
// batcher's bit-identity depends on.
TEST(BlockedGemmTest, RowsIndependentOfBatchWidth) {
  Rng rng(41);
  Tensor a_all = Tensor::Randn({23, 31}, &rng);
  Tensor b = Tensor::Randn({31, 45}, &rng);
  Tensor full = MatMul(a_all, b);
  for (int64_t r : {int64_t{0}, int64_t{7}, int64_t{22}}) {
    Tensor row = a_all.SliceRows(r, r + 1);
    Tensor single = MatMul(row, b);
    for (int64_t j = 0; j < single.size(); ++j) {
      ASSERT_EQ(single[j], full[r * 45 + j]) << "row " << r << " col " << j;
    }
  }
}

struct ConvCase {
  int64_t n, c, l;
  int kernel, stride, pad;
};

const ConvCase kConv1dCases[] = {
    {2, 3, 16, 3, 1, 1},  // vanilla
    {1, 1, 8, 3, 1, 1},   // single sample, single channel
    {3, 4, 19, 5, 2, 2},  // stride > 1, odd length
    {2, 2, 9, 3, 3, 0},   // stride == kernel, no pad
    {2, 3, 7, 3, 1, 4},   // pad > kernel
    {1, 5, 6, 6, 1, 5},   // kernel == length, pad >= kernel - 1
    {4, 1, 33, 1, 1, 0},  // 1x1 kernel
    {2, 8, 64, 5, 1, 2},  // the model-zoo hot shape
};

class Conv1dLoweringTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(Conv1dLoweringTest, ForwardBackwardMatchNaive) {
  const ConvCase cc = GetParam();
  Rng rng(cc.n * 31 + cc.c * 7 + cc.kernel);
  Conv1d conv(cc.c, 4, cc.kernel, cc.stride, cc.pad, &rng);
  Tensor x = Tensor::Randn({cc.n, cc.c, cc.l}, &rng);

  const Tensor& w = conv.Params()[0]->value;
  const Tensor& bias = conv.Params()[1]->value;
  Tensor want_y = naive::Conv1dForward(x, w, bias, cc.stride, cc.pad);
  Tensor got_y = conv.Forward(x, /*training=*/true);
  const double tol = 1e-5 * std::sqrt(static_cast<double>(cc.c * cc.kernel));
  ExpectTensorsNear(got_y, want_y, tol);

  Tensor g = Tensor::Randn(want_y.shape(), &rng);
  Tensor want_dw = Tensor::Zeros(w.shape());
  Tensor want_db = Tensor::Zeros(bias.shape());
  Tensor want_gin =
      naive::Conv1dBackward(x, w, g, cc.stride, cc.pad, &want_dw, &want_db);
  Tensor got_gin = conv.Backward(g);
  const double btol =
      1e-5 * std::sqrt(static_cast<double>(cc.n * got_y.dim(2)));
  ExpectTensorsNear(got_gin, want_gin, tol);
  ExpectTensorsNear(conv.Params()[0]->grad, want_dw, btol);
  ExpectTensorsNear(conv.Params()[1]->grad, want_db, btol);
}

INSTANTIATE_TEST_SUITE_P(Cases, Conv1dLoweringTest,
                         ::testing::ValuesIn(kConv1dCases));

struct Conv2dCase {
  int64_t n, c, h, w;
  int kernel, stride, pad;
};

const Conv2dCase kConv2dCases[] = {
    {2, 3, 8, 8, 3, 1, 1},   // vanilla
    {1, 1, 5, 7, 3, 1, 1},   // single sample/channel, non-square input
    {2, 2, 9, 9, 3, 2, 1},   // stride 2
    {1, 3, 6, 6, 3, 1, 3},   // pad == kernel
    {2, 4, 4, 4, 4, 1, 3},   // kernel == input size
    {3, 1, 16, 16, 1, 1, 0},  // 1x1 kernel
    {1, 3, 16, 16, 3, 1, 1},  // the model-zoo hot shape
};

class Conv2dLoweringTest : public ::testing::TestWithParam<Conv2dCase> {};

TEST_P(Conv2dLoweringTest, ForwardBackwardMatchNaive) {
  const Conv2dCase cc = GetParam();
  Rng rng(cc.n * 17 + cc.c * 5 + cc.kernel);
  Conv2d conv(cc.c, 5, cc.kernel, cc.stride, cc.pad, &rng);
  Tensor x = Tensor::Randn({cc.n, cc.c, cc.h, cc.w}, &rng);

  const Tensor& w = conv.Params()[0]->value;
  const Tensor& bias = conv.Params()[1]->value;
  Tensor want_y = naive::Conv2dForward(x, w, bias, cc.stride, cc.pad);
  Tensor got_y = conv.Forward(x, /*training=*/true);
  const double tol =
      1e-5 * std::sqrt(static_cast<double>(cc.c) * cc.kernel * cc.kernel);
  ExpectTensorsNear(got_y, want_y, tol);

  Tensor g = Tensor::Randn(want_y.shape(), &rng);
  Tensor want_dw = Tensor::Zeros(w.shape());
  Tensor want_db = Tensor::Zeros(bias.shape());
  Tensor want_gin =
      naive::Conv2dBackward(x, w, g, cc.stride, cc.pad, &want_dw, &want_db);
  Tensor got_gin = conv.Backward(g);
  const double btol = 1e-5 * std::sqrt(static_cast<double>(
                                 cc.n * got_y.dim(2) * got_y.dim(3)));
  ExpectTensorsNear(got_gin, want_gin, tol);
  ExpectTensorsNear(conv.Params()[0]->grad, want_dw, btol);
  ExpectTensorsNear(conv.Params()[1]->grad, want_db, btol);
}

INSTANTIATE_TEST_SUITE_P(Cases, Conv2dLoweringTest,
                         ::testing::ValuesIn(kConv2dCases));

// im2col/col2im round-trip: col2im(im2col(x)) multiplies each input element
// by the number of windows covering it; with kernel == stride == 1 and no
// padding that count is exactly one.
TEST(Im2ColTest, IdentityWhenKernelOneStrideOne) {
  Rng rng(5);
  Tensor x = Tensor::Randn({3, 11}, &rng);
  AlignedFloatVec col(static_cast<size_t>(3 * 11));
  kernels::Im2Col1d(x.data(), 3, 11, 1, 1, 0, 11, col.data());
  for (int64_t i = 0; i < x.size(); ++i) ASSERT_EQ(col[i], x[i]);
  Tensor back = Tensor::Zeros({3, 11});
  kernels::Col2Im1d(col.data(), 3, 11, 1, 1, 0, 11, back.data());
  for (int64_t i = 0; i < x.size(); ++i) ASSERT_EQ(back[i], x[i]);
}

TEST(Im2ColTest, PaddingProducesZeroColumns) {
  Rng rng(6);
  const int64_t c = 2, l = 4;
  const int kernel = 3, stride = 1, pad = 3;  // pad >= kernel
  const int64_t lo = (l + 2 * pad - kernel) / stride + 1;
  Tensor x = Tensor::Full({c, l}, 1.0f);
  AlignedFloatVec col(static_cast<size_t>(c * kernel * lo), -1.0f);
  kernels::Im2Col1d(x.data(), c, l, kernel, stride, pad, lo, col.data());
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int kx = 0; kx < kernel; ++kx) {
      for (int64_t o = 0; o < lo; ++o) {
        const int64_t t = o * stride + kx - pad;
        const float v = col[(ch * kernel + kx) * lo + o];
        if (t < 0 || t >= l) {
          ASSERT_EQ(v, 0.0f) << "padding tap not zeroed";
        } else {
          ASSERT_EQ(v, 1.0f);
        }
      }
    }
  }
}

// ----------------- deterministic multithreaded dispatch ---------------
//
// The panel-parallel GEMM path must be BIT-identical to the single-thread
// path at every thread count: chunk boundaries are microtile-aligned, so
// the tile decomposition — and with it every element's ascending-k FMA
// chain — is the same no matter which worker runs which chunk. These tests
// pin that down with exact equality (no tolerance) across thread counts,
// tile-non-divisible shapes, the crossover boundary, and nesting.

// Restores the GEMM dispatch knobs on scope exit so a failing ASSERT in
// one test cannot leak a widened budget into the rest of the suite.
class GemmKnobGuard {
 public:
  GemmKnobGuard()
      : threads_(kernels::gemm_threads()),
        min_work_(kernels::gemm_parallel_min_work()) {}
  ~GemmKnobGuard() {
    kernels::set_gemm_threads(threads_);
    kernels::set_gemm_parallel_min_work(min_work_);
  }

 private:
  int threads_;
  int64_t min_work_;
};

void ExpectTensorsBitIdentical(const Tensor& got, const Tensor& want) {
  ASSERT_TRUE(got.SameShape(want));
  for (int64_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "diverged at flat index " << i;
  }
}

// Shapes chosen for awkward grids: single-column-chunk, multi-column-chunk,
// ragged chunk edges (not multiples of 48/256), and k values that straddle
// the kKC cache block.
const GemmShape kParallelShapes[] = {
    {97, 129, 250},   // 3x1 grid, ragged row tail
    {100, 300, 33},   // 3x2 grid, ragged column tail
    {48, 256, 241},   // exactly one chunk per axis boundary
    {49, 257, 240},   // one past each chunk boundary
    {191, 1040, 7},   // wide n, several column chunks
};

TEST(ParallelGemmTest, BitIdenticalAcrossThreadCounts) {
  GemmKnobGuard guard;
  for (const GemmShape& s : kParallelShapes) {
    Rng rng(s.m * 131 + s.n * 17 + s.k);
    Tensor a = Tensor::Randn({s.m, s.k}, &rng);
    Tensor b = Tensor::Randn({s.k, s.n}, &rng);
    Tensor bt = Transpose2d(b);
    Tensor at = Transpose2d(a);

    kernels::set_gemm_threads(1);
    Tensor ref = MatMul(a, b);
    Tensor ref_tb = MatMulTransposedB(a, bt);
    Tensor ref_ta = MatMulTransposedA(at, b);

    kernels::set_gemm_parallel_min_work(0);  // force the wide path
    for (int t : {2, 4, 8}) {
      kernels::set_gemm_threads(t);
      ExpectTensorsBitIdentical(MatMul(a, b), ref);
      ExpectTensorsBitIdentical(MatMulTransposedB(a, bt), ref_tb);
      ExpectTensorsBitIdentical(MatMulTransposedA(at, b), ref_ta);
    }
  }
}

// At the DEFAULT min-work threshold the dispatcher flips from narrow to
// wide between 160^3 and 192^3. Both sides of the boundary must agree with
// the single-thread result bit-for-bit — the crossover may change speed,
// never bits.
TEST(ParallelGemmTest, CrossoverBoundaryBitIdentical) {
  GemmKnobGuard guard;
  for (int64_t n : {int64_t{160}, int64_t{161}, int64_t{192}}) {
    Rng rng(900 + n);
    Tensor a = Tensor::Randn({n, n}, &rng);
    Tensor b = Tensor::Randn({n, n}, &rng);
    kernels::set_gemm_threads(1);
    Tensor ref = MatMul(a, b);
    for (int t : {2, 4, 8}) {
      kernels::set_gemm_threads(t);
      ExpectTensorsBitIdentical(MatMul(a, b), ref);
    }
  }
}

// The dispatch counters are the observable for the crossover policy: a
// 160^3 product stays narrow under the default threshold, 192^3 goes wide
// and reports its panel-task grid.
TEST(ParallelGemmTest, DispatchCountersTrackCrossover) {
  GemmKnobGuard guard;
  Rng rng(77);
  kernels::set_gemm_threads(4);

  Tensor a160 = Tensor::Randn({160, 160}, &rng);
  Tensor b160 = Tensor::Randn({160, 160}, &rng);
  kernels::GemmDispatchCounters before = kernels::ThreadGemmDispatchCounters();
  MatMul(a160, b160);
  kernels::GemmDispatchCounters after = kernels::ThreadGemmDispatchCounters();
  EXPECT_EQ(after.wide, before.wide);
  EXPECT_EQ(after.narrow, before.narrow + 1);

  Tensor a192 = Tensor::Randn({192, 192}, &rng);
  Tensor b192 = Tensor::Randn({192, 192}, &rng);
  before = kernels::ThreadGemmDispatchCounters();
  MatMul(a192, b192);
  after = kernels::ThreadGemmDispatchCounters();
  EXPECT_EQ(after.wide, before.wide + 1);
  // 192 rows -> 4 row chunks of 48; 192 cols -> 1 column chunk of 256.
  EXPECT_EQ(after.panel_tasks, before.panel_tasks + 4);
}

// Conv forward/backward bit-identity: the im2col fan-out and the lowered
// GEMM must both be invisible to the results at any thread count.
TEST(ParallelGemmTest, ConvForwardBackwardBitIdenticalAcrossThreads) {
  GemmKnobGuard guard;
  Rng rng(4242);
  Conv2d conv(3, 5, 3, 1, 1, &rng);
  Tensor x = Tensor::Randn({2, 3, 16, 16}, &rng);
  Tensor g;

  kernels::set_gemm_threads(1);
  Tensor ref_y = conv.Forward(x, /*training=*/true);
  g = Tensor::Randn(ref_y.shape(), &rng);
  Tensor ref_gin = conv.Backward(g);
  Tensor ref_dw = conv.Params()[0]->grad;
  Tensor ref_db = conv.Params()[1]->grad;

  kernels::set_gemm_parallel_min_work(0);
  for (int t : {2, 4, 8}) {
    kernels::set_gemm_threads(t);
    Tensor y = conv.Forward(x, /*training=*/true);
    ExpectTensorsBitIdentical(y, ref_y);
    conv.Params()[0]->grad.Fill(0.0f);
    conv.Params()[1]->grad.Fill(0.0f);
    Tensor gin = conv.Backward(g);
    ExpectTensorsBitIdentical(gin, ref_gin);
    ExpectTensorsBitIdentical(conv.Params()[0]->grad, ref_dw);
    ExpectTensorsBitIdentical(conv.Params()[1]->grad, ref_db);
  }
}

// Nested-parallelism contract: pool workers each running a "parallel" GEMM
// must neither deadlock nor change bits — inside a ParallelFor region the
// dispatcher runs sequentially, and concurrent ParallelFor callers fall
// back sequentially when the worker set is busy. Every pool task's result
// must equal the single-thread reference.
TEST(ParallelGemmTest, NestedUnderThreadPoolBitIdentical) {
  GemmKnobGuard guard;
  Rng rng(31337);
  Tensor a = Tensor::Randn({97, 129}, &rng);
  Tensor b = Tensor::Randn({129, 300}, &rng);

  kernels::set_gemm_threads(1);
  Tensor ref = MatMul(a, b);

  kernels::set_gemm_parallel_min_work(0);
  kernels::set_gemm_threads(4);
  ThreadPool pool(4);
  std::vector<std::future<Tensor>> results;
  for (int i = 0; i < 16; ++i) {
    results.push_back(pool.Submit([&a, &b]() { return MatMul(a, b); }));
  }
  for (auto& f : results) {
    Tensor got = f.get();
    ExpectTensorsBitIdentical(got, ref);
  }
}

// The aligned allocator must put every tensor buffer (and reallocations) on
// a 64-byte boundary — the packed panels and wide vector loads assume it.
TEST(AlignmentTest, TensorBuffersCacheLineAligned) {
  for (int64_t n : {1, 3, 17, 63, 64, 65, 1000}) {
    Tensor t({n});
    EXPECT_EQ(reinterpret_cast<uintptr_t>(t.data()) % kCacheLineBytes, 0u)
        << "size " << n;
  }
  AlignedFloatVec v;
  for (int i = 0; i < 12; ++i) {
    v.resize(v.size() + 37);  // force growth/reallocation
    EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % kCacheLineBytes, 0u);
  }
  Rng rng(3);
  Tensor copy = Tensor::Randn({129}, &rng);
  Tensor moved = std::move(copy);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(moved.data()) % kCacheLineBytes, 0u);
}

}  // namespace
}  // namespace qcore
