// Unit tests for common/: Rng, Status/Result, Huffman, serialization,
// TablePrinter.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>

#include "common/huffman.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/status.h"
#include "common/table_printer.h"

namespace qcore {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedUintStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    int v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsApproximate) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, SampleWithoutReplacementUniqueAndComplete) {
  Rng rng(17);
  std::vector<int> s = rng.SampleWithoutReplacement(10, 10);
  std::set<int> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
  EXPECT_EQ(*uniq.begin(), 0);
  EXPECT_EQ(*uniq.rbegin(), 9);
}

TEST(RngTest, SampleWithoutReplacementPartial) {
  Rng rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> s = rng.SampleWithoutReplacement(100, 7);
    std::set<int> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 7u);
    for (int v : s) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 100);
    }
  }
}

TEST(RngTest, SampleWeightedRespectsZeros) {
  Rng rng(23);
  std::vector<double> w = {0.0, 1.0, 0.0, 3.0};
  std::map<int, int> counts;
  for (int i = 0; i < 4000; ++i) ++counts[rng.SampleWeighted(w)];
  EXPECT_EQ(counts.count(0), 0u);
  EXPECT_EQ(counts.count(2), 0u);
  // Index 3 should dominate index 1 roughly 3:1.
  EXPECT_GT(counts[3], 2 * counts[1]);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(31);
  Rng b = a.Split();
  EXPECT_NE(a.NextUint64(), b.NextUint64());
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(HuffmanTest, RoundTripSimple) {
  std::vector<int32_t> symbols = {1, 1, 1, 2, 2, 3, -1, -1, -1, -1};
  auto enc = HuffmanCoder::Encode(symbols);
  ASSERT_TRUE(enc.ok());
  auto dec = HuffmanCoder::Decode(enc.value());
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec.value(), symbols);
}

TEST(HuffmanTest, SingleSymbolAlphabet) {
  std::vector<int32_t> symbols(57, 5);
  auto enc = HuffmanCoder::Encode(symbols);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc.value().PayloadBits(), 57u);
  auto dec = HuffmanCoder::Decode(enc.value());
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec.value(), symbols);
}

TEST(HuffmanTest, EmptyInputRejected) {
  auto enc = HuffmanCoder::Encode({});
  EXPECT_FALSE(enc.ok());
}

TEST(HuffmanTest, SkewedDistributionCompresses) {
  // 900 zeros + a few other symbols: payload must beat fixed-width coding.
  std::vector<int32_t> symbols(900, 0);
  for (int i = 0; i < 30; ++i) symbols.push_back(i % 7 + 1);
  auto enc = HuffmanCoder::Encode(symbols);
  ASSERT_TRUE(enc.ok());
  // Fixed-width needs 3 bits for 8 symbols.
  EXPECT_LT(enc.value().PayloadBits(), symbols.size() * 3);
}

// Property sweep: round trip across random alphabets and stream lengths,
// and payload within [entropy, entropy + 1 bit/symbol].
class HuffmanPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HuffmanPropertyTest, RoundTripAndNearEntropy) {
  Rng rng(1000 + GetParam());
  const int n = 200 + GetParam() * 97;
  const int alphabet = 2 + GetParam() % 15;
  std::vector<int32_t> symbols(n);
  for (auto& s : symbols) {
    // Zipf-ish skew so distributions vary.
    s = static_cast<int32_t>(rng.NextUint64(rng.NextUint64(alphabet) + 1));
  }
  auto enc = HuffmanCoder::Encode(symbols);
  ASSERT_TRUE(enc.ok());
  auto dec = HuffmanCoder::Decode(enc.value());
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec.value(), symbols);
  const double entropy = HuffmanCoder::EntropyBits(symbols);
  EXPECT_GE(enc.value().PayloadBits() + 1e-9, entropy);
  EXPECT_LE(static_cast<double>(enc.value().PayloadBits()),
            entropy + symbols.size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, HuffmanPropertyTest,
                         ::testing::Range(0, 12));

TEST(SerializeTest, RoundTripAllTypes) {
  BinaryWriter w;
  w.WriteU32(7);
  w.WriteI32(-9);
  w.WriteU64(1ull << 40);
  w.WriteI64(-(1ll << 40));
  w.WriteF32(1.5f);
  w.WriteF64(2.25);
  w.WriteString("hello");
  w.WriteFloats({1.0f, 2.0f, 3.0f});
  w.WriteInts({-1, 0, 1});
  w.WriteInt64s({10, 20});

  BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadU32().value(), 7u);
  EXPECT_EQ(r.ReadI32().value(), -9);
  EXPECT_EQ(r.ReadU64().value(), 1ull << 40);
  EXPECT_EQ(r.ReadI64().value(), -(1ll << 40));
  EXPECT_EQ(r.ReadF32().value(), 1.5f);
  EXPECT_EQ(r.ReadF64().value(), 2.25);
  EXPECT_EQ(r.ReadString().value(), "hello");
  EXPECT_EQ(r.ReadFloats().value(), (std::vector<float>{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(r.ReadInts().value(), (std::vector<int32_t>{-1, 0, 1}));
  EXPECT_EQ(r.ReadInt64s().value(), (std::vector<int64_t>{10, 20}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, BytesRoundTripAndTruncation) {
  BinaryWriter w;
  w.WriteBytes({0x00, 0xFF, 0x42});
  w.WriteBytes({});
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadBytes().value(), (std::vector<uint8_t>{0x00, 0xFF, 0x42}));
  EXPECT_TRUE(r.ReadBytes().value().empty());
  EXPECT_TRUE(r.AtEnd());

  BinaryWriter bad;
  bad.WriteU64(1000);  // length prefix promising bytes that are not there
  BinaryReader rb(bad.buffer());
  auto bytes = rb.ReadBytes();
  EXPECT_FALSE(bytes.ok());
  EXPECT_EQ(bytes.status().code(), StatusCode::kCorruption);
}

TEST(Crc32Test, KnownVectorAndChaining) {
  // The canonical IEEE CRC32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  // Chained partial checksums equal the checksum of the concatenation.
  const uint32_t partial = Crc32("12345", 5);
  EXPECT_EQ(Crc32("6789", 4, partial), 0xCBF43926u);
  // Any single-byte change moves the checksum.
  EXPECT_NE(Crc32("123456780", 9), 0xCBF43926u);
}

TEST(FramedRecordTest, RoundTripMultipleRecords) {
  std::vector<uint8_t> buf;
  const std::vector<uint8_t> a = {1, 2, 3};
  const std::vector<uint8_t> b = {};  // empty payloads frame fine
  const std::vector<uint8_t> c(300, 0xAB);
  AppendFramedRecord(a, &buf);
  AppendFramedRecord(b, &buf);
  AppendFramedRecord(c, &buf);

  size_t pos = 0;
  EXPECT_EQ(ReadFramedRecord(buf, &pos).value(), a);
  EXPECT_EQ(ReadFramedRecord(buf, &pos).value(), b);
  EXPECT_EQ(ReadFramedRecord(buf, &pos).value(), c);
  EXPECT_EQ(pos, buf.size());
}

TEST(FramedRecordTest, CorruptByteIsDetected) {
  std::vector<uint8_t> buf;
  AppendFramedRecord({10, 20, 30, 40, 50}, &buf);
  // Flip one payload byte: the CRC must catch it and leave pos untouched.
  std::vector<uint8_t> corrupt = buf;
  corrupt[corrupt.size() - 2] ^= 0x01;
  size_t pos = 0;
  auto r = ReadFramedRecord(corrupt, &pos);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(pos, 0u);
}

TEST(FramedRecordTest, TornTailIsDetected) {
  std::vector<uint8_t> buf;
  AppendFramedRecord({10, 20, 30, 40, 50}, &buf);
  // A record cut mid-payload (and one cut mid-header) must both read as
  // Corruption without advancing — the WAL truncation signal.
  for (size_t cut : {buf.size() - 1, size_t{3}}) {
    std::vector<uint8_t> torn(buf.begin(),
                              buf.begin() + static_cast<long>(cut));
    size_t pos = 0;
    auto r = ReadFramedRecord(torn, &pos);
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
    EXPECT_EQ(pos, 0u);
  }
}

TEST(SerializeTest, TruncationIsError) {
  BinaryWriter w;
  w.WriteU64(1000);  // length prefix promising data that is not there
  BinaryReader r(w.buffer());
  auto floats = r.ReadFloats();
  EXPECT_FALSE(floats.ok());
  EXPECT_EQ(floats.status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, FileRoundTripAndBadMagic) {
  const std::string path = "/tmp/qcore_serialize_test.bin";
  BinaryWriter w;
  w.WriteString("persisted");
  ASSERT_TRUE(w.ToFile(path).ok());
  auto r = BinaryReader::FromFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ReadString().value(), "persisted");

  // Corrupt the magic.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  const uint32_t junk = 0xDEADBEEF;
  std::fwrite(&junk, sizeof(junk), 1, f);
  std::fclose(f);
  auto bad = BinaryReader::FromFile(path);
  EXPECT_FALSE(bad.ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsIoError) {
  auto r = BinaryReader::FromFile("/tmp/definitely_missing_qcore_file.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "2.5"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(0.123456, 3), "0.123");
  EXPECT_EQ(TablePrinter::Num(2.0, 1), "2.0");
}

}  // namespace
}  // namespace qcore
