// Overload-control tests: bounded per-session queues must shed with
// kResourceExhausted instead of queueing unboundedly (and never deadlock),
// per-class bounds must cap inference and calibration independently,
// inference must be prioritized over background calibration at the pool,
// and the shed/accepted counters must reconcile exactly with what callers
// observed — against both FleetBackend implementations. Runs under
// ThreadSanitizer in CI alongside serving_test.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/qcore_builder.h"
#include "data/har_generator.h"
#include "models/model_zoo.h"
#include "runtime/thread_pool.h"
#include "serving/backend.h"
#include "serving/router.h"
#include "serving/server.h"
#include "testing/fault_injector.h"

namespace qcore {
namespace {

// ------------------------------------------------ pool-level priorities

TEST(ThreadPoolPriorityTest, HighDrainsBeforeLowWithSingleWorker) {
  ThreadPool pool(1);
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  // Park the worker so every subsequent Schedule lands in the queues.
  pool.Schedule([&]() {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&]() { return gate_open; });
  });

  std::mutex order_mu;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    pool.Schedule(
        [&order, &order_mu, i]() {
          std::lock_guard<std::mutex> lock(order_mu);
          order.push_back(100 + i);  // low tasks, scheduled FIRST
        },
        TaskPriority::kLow);
  }
  for (int i = 0; i < 4; ++i) {
    pool.Schedule(
        [&order, &order_mu, i]() {
          std::lock_guard<std::mutex> lock(order_mu);
          order.push_back(i);  // high tasks, scheduled SECOND
        },
        TaskPriority::kHigh);
  }
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  pool.WaitIdle();

  // Strict priority: all high tasks ran before any low task, FIFO within
  // each level.
  const std::vector<int> expected = {0, 1, 2, 3, 100, 101, 102, 103};
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolPriorityTest, LowTasksStillDrainOnShutdown) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.Schedule([&ran]() { ran.fetch_add(1); }, TaskPriority::kLow);
    }
  }
  EXPECT_EQ(ran.load(), 16);
}

// ------------------------------------------------------ fleet fixture

struct FleetFixture {
  HarSpec spec;
  HarDomain target;
  Dataset qcore;
  std::unique_ptr<QuantizedModel> base;
  std::unique_ptr<BitFlipNet> bf;
  std::vector<Dataset> batches;
  std::vector<Dataset> slices;
};

FleetFixture* GetFixture() {
  static FleetFixture* fixture = []() {
    auto* f = new FleetFixture();
    f->spec = HarSpec::Usc();
    f->spec.num_classes = 5;
    f->spec.channels = 3;
    f->spec.length = 24;
    f->spec.train_per_class = 8;
    f->spec.test_per_class = 4;
    HarDomain source = MakeHarDomain(f->spec, 0);
    f->target = MakeHarDomain(f->spec, 1);

    Rng rng(20250602);
    auto model = MakeOmniScaleCnn(f->spec.channels, f->spec.num_classes,
                                  &rng);
    QCoreBuildOptions build;
    build.size = 15;
    build.train.epochs = 6;
    build.train.sgd.lr = 0.03f;
    auto built = BuildQCore(model.get(), source.train, build, &rng);
    f->qcore = built.qcore;

    f->base = std::make_unique<QuantizedModel>(*model, 4);
    BitFlipTrainOptions bft;
    bft.ste.epochs = 6;
    bft.ste.batch_size = 16;
    bft.augment_episodes = 1;
    f->bf = std::make_unique<BitFlipNet>(
        TrainBitFlipNet(f->base.get(), f->qcore, bft, &rng));
    f->base->DropShadows();

    Rng split_rng(11);
    f->batches = SplitIntoStreamBatches(f->target.train, 3, &split_rng);
    f->slices = SplitIntoStreamBatches(f->target.test, 3, &split_rng);
    return f;
  }();
  return fixture;
}

ContinualOptions FastContinualOptions() {
  ContinualOptions opts;
  opts.iterations = 1;
  return opts;
}

// `num_shards` == 0 selects the single-pool FleetServer; > 0 the sharded
// router (bounds apply per session regardless of placement).
std::unique_ptr<FleetBackend> MakeBackend(FleetFixture* f,
                                          const FleetServerOptions& opts,
                                          int num_shards) {
  if (num_shards <= 0) {
    return std::make_unique<FleetServer>(*f->base, *f->bf, opts);
  }
  ShardedFleetServerOptions sopts;
  sopts.num_shards = num_shards;
  sopts.shard = opts;
  return std::make_unique<ShardedFleetServer>(*f->base, *f->bf, sopts);
}

// ------------------------------------------------------- load shedding

TEST(BackpressureTest, ShedsWithResourceExhaustedWhenQueueFull) {
  FleetFixture* f = GetFixture();
  for (int num_shards : {0, 2}) {
    SCOPED_TRACE(num_shards == 0 ? "FleetServer" : "ShardedFleetServer");
    FleetServerOptions opts;
    opts.num_threads = 1;
    opts.continual = FastContinualOptions();
    opts.max_queue_per_session = 1;
    // Slow the admitted task down so the second submission deterministically
    // finds the queue full.
    opts.simulated_device_rtt_ms = 50.0;
    auto server = MakeBackend(f, opts, num_shards);
    server->RegisterDevice("dev", f->qcore);

    auto first = server->TrySubmitInference("dev", f->target.test.x());
    ASSERT_TRUE(first.ok());
    auto second = server->TrySubmitInference("dev", f->target.test.x());
    ASSERT_FALSE(second.ok());
    EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
    EXPECT_NE(second.status().message().find("dev"), std::string::npos);
    auto third =
        server->TrySubmitCalibration("dev", f->batches[0], f->slices[0]);
    ASSERT_FALSE(third.ok());
    EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);

    // The shed request's slot was released: after the first completes, the
    // session accepts again.
    std::move(first).value().get();
    server->Drain();
    auto fourth = server->TrySubmitInference("dev", f->target.test.x());
    EXPECT_TRUE(fourth.ok());
    server->Drain();

    EXPECT_EQ(server->metrics().shed_inference(), 1u);
    EXPECT_EQ(server->metrics().shed_calibration(), 1u);
    EXPECT_EQ(server->metrics().accepted_inference(), 2u);
    EXPECT_EQ(server->metrics().queue_depth().max(), 1);
  }
}

// Per-class bounds: a calibration backlog must not consume inference's
// admission budget, and vice versa — each class sheds against its own cap.
TEST(BackpressureTest, PerClassBoundsShedIndependently) {
  FleetFixture* f = GetFixture();
  FleetServerOptions opts;
  opts.num_threads = 1;
  opts.continual = FastContinualOptions();
  opts.max_inference_queue_per_session = 1;
  opts.max_calibration_queue_per_session = 2;
  // No shared bound: only the per-class caps act.
  opts.max_queue_per_session = 0;
  opts.simulated_device_rtt_ms = 50.0;
  FleetServer server(*f->base, *f->bf, opts);
  server.RegisterDevice("dev", f->qcore);

  // Inference cap 1: the second submission sheds...
  auto inf1 = server.TrySubmitInference("dev", f->target.test.x());
  ASSERT_TRUE(inf1.ok());
  auto inf2 = server.TrySubmitInference("dev", f->target.test.x());
  ASSERT_FALSE(inf2.ok());
  EXPECT_EQ(inf2.status().code(), StatusCode::kResourceExhausted);
  // ...but calibration admission is untouched by the inference backlog:
  // cap 2 admits two and sheds the third.
  auto cal1 = server.TrySubmitCalibration("dev", f->batches[0], f->slices[0]);
  auto cal2 = server.TrySubmitCalibration("dev", f->batches[1], f->slices[1]);
  ASSERT_TRUE(cal1.ok());
  ASSERT_TRUE(cal2.ok());
  auto cal3 = server.TrySubmitCalibration("dev", f->batches[2], f->slices[2]);
  ASSERT_FALSE(cal3.ok());
  EXPECT_EQ(cal3.status().code(), StatusCode::kResourceExhausted);

  server.Drain();
  EXPECT_EQ(server.metrics().shed_inference(), 1u);
  EXPECT_EQ(server.metrics().shed_calibration(), 1u);
  EXPECT_EQ(server.metrics().accepted_inference(), 1u);
  EXPECT_EQ(server.metrics().accepted_calibration(), 2u);
  // Completion counters reconcile with admission.
  EXPECT_EQ(server.metrics().inference_requests(), 1u);
  EXPECT_EQ(server.metrics().calibration_batches(), 2u);
}

// The legacy shared bound composes with per-class caps: admission requires
// every configured bound to hold.
TEST(BackpressureTest, SharedBoundComposesWithPerClassBounds) {
  FleetFixture* f = GetFixture();
  FleetServerOptions opts;
  opts.num_threads = 1;
  opts.continual = FastContinualOptions();
  opts.max_queue_per_session = 2;             // total cap
  opts.max_calibration_queue_per_session = 8;  // loose class cap
  opts.simulated_device_rtt_ms = 50.0;
  FleetServer server(*f->base, *f->bf, opts);
  server.RegisterDevice("dev", f->qcore);

  // Two calibrations fill the SHARED bound even though the class cap (8)
  // has room — the third sheds on the total.
  auto cal1 = server.TrySubmitCalibration("dev", f->batches[0], f->slices[0]);
  auto cal2 = server.TrySubmitCalibration("dev", f->batches[1], f->slices[1]);
  ASSERT_TRUE(cal1.ok());
  ASSERT_TRUE(cal2.ok());
  auto cal3 = server.TrySubmitCalibration("dev", f->batches[2], f->slices[2]);
  ASSERT_FALSE(cal3.ok());
  // And inference (no class cap at all) sheds on the shared bound too.
  auto inf = server.TrySubmitInference("dev", f->target.test.x());
  ASSERT_FALSE(inf.ok());
  EXPECT_EQ(inf.status().code(), StatusCode::kResourceExhausted);
  server.Drain();
  EXPECT_LE(server.metrics().queue_depth().max(), 2);
}

// Floods a bounded server from several submitter threads at once; every
// accepted future must resolve (no deadlock), and afterwards
// accepted + shed must equal submissions exactly, with completion counters
// matching acceptance.
TEST(BackpressureTest, FloodReconcilesAcceptedPlusShed) {
  FleetFixture* f = GetFixture();
  for (int num_shards : {0, 2}) {
  SCOPED_TRACE(num_shards == 0 ? "FleetServer" : "ShardedFleetServer");
  FleetServerOptions opts;
  opts.num_threads = 2;
  opts.continual = FastContinualOptions();
  opts.max_queue_per_session = 3;
  opts.simulated_device_rtt_ms = 1.0;  // enough to build a backlog
  opts.enable_batching = true;         // flood through the batcher too
  opts.batching.max_batch = 4;
  opts.batching.max_delay_us = 100.0;
  auto server_ptr = MakeBackend(f, opts, num_shards);
  FleetBackend& server = *server_ptr;
  const int kDevices = 4;
  for (int d = 0; d < kDevices; ++d) {
    server.RegisterDevice("dev-" + std::to_string(d), f->qcore);
  }

  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 40;
  std::atomic<uint64_t> accepted_inf{0}, shed_inf{0};
  std::atomic<uint64_t> accepted_cal{0}, shed_cal{0};
  std::vector<std::thread> submitters;
  std::mutex futures_mu;
  std::vector<std::future<InferenceResult>> inf_futures;
  std::vector<std::future<BatchStats>> cal_futures;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s]() {
      for (int i = 0; i < kPerSubmitter; ++i) {
        const std::string id =
            "dev-" + std::to_string((s + i) % kDevices);
        if (i % 5 == 4) {
          auto r = server.TrySubmitCalibration(
              id, f->batches[i % f->batches.size()],
              f->slices[i % f->slices.size()]);
          if (r.ok()) {
            accepted_cal.fetch_add(1);
            std::lock_guard<std::mutex> lock(futures_mu);
            cal_futures.push_back(std::move(r).value());
          } else {
            ASSERT_EQ(r.status().code(), StatusCode::kResourceExhausted);
            shed_cal.fetch_add(1);
          }
        } else {
          auto r = server.TrySubmitInference(id, f->target.test.x());
          if (r.ok()) {
            accepted_inf.fetch_add(1);
            std::lock_guard<std::mutex> lock(futures_mu);
            inf_futures.push_back(std::move(r).value());
          } else {
            ASSERT_EQ(r.status().code(), StatusCode::kResourceExhausted);
            shed_inf.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : submitters) t.join();

  // No deadlock: every accepted request resolves.
  for (auto& fu : inf_futures) {
    EXPECT_EQ(static_cast<int>(fu.get().predictions.size()),
              f->target.test.size());
  }
  for (auto& fu : cal_futures) {
    const BatchStats stats = fu.get();
    EXPECT_GE(stats.accuracy, 0.0f);
    EXPECT_LE(stats.accuracy, 1.0f);
  }
  server.Drain();

  const ServingMetrics& m = server.metrics();
  const uint64_t inf_submissions =
      static_cast<uint64_t>(kSubmitters) * kPerSubmitter * 4 / 5;
  const uint64_t cal_submissions =
      static_cast<uint64_t>(kSubmitters) * kPerSubmitter / 5;
  EXPECT_EQ(m.accepted_inference(), accepted_inf.load());
  EXPECT_EQ(m.shed_inference(), shed_inf.load());
  EXPECT_EQ(m.accepted_calibration(), accepted_cal.load());
  EXPECT_EQ(m.shed_calibration(), shed_cal.load());
  EXPECT_EQ(m.accepted_inference() + m.shed_inference(), inf_submissions);
  EXPECT_EQ(m.accepted_calibration() + m.shed_calibration(),
            cal_submissions);
  // Completion counters reconcile with admission.
  EXPECT_EQ(m.inference_requests(), m.accepted_inference());
  EXPECT_EQ(m.calibration_batches(), m.accepted_calibration());
  // The bound was actually exercised and never exceeded.
  EXPECT_LE(m.queue_depth().max(), 3);
  EXPECT_FALSE(m.Report().empty());
  }
}

// Under overload, the pool must serve inference before the calibration
// backlog: with one worker and a fleet-wide calibration flood, a single
// inference submission jumps every still-queued calibration pump.
TEST(BackpressureTest, CalibrationYieldsToInferenceUnderOverload) {
  FleetFixture* f = GetFixture();
  FleetServerOptions opts;
  opts.num_threads = 1;
  opts.continual = FastContinualOptions();
  opts.simulated_device_rtt_ms = 30.0;
  FleetServer server(*f->base, *f->bf, opts);
  const int kDevices = 5;
  for (int d = 0; d < kDevices; ++d) {
    server.RegisterDevice("cal-" + std::to_string(d), f->qcore);
  }
  server.RegisterDevice("hot", f->qcore);

  // Flood: 2 calibration batches on each of 5 devices = 10 low tasks.
  std::vector<std::future<BatchStats>> calibs;
  for (int d = 0; d < kDevices; ++d) {
    for (int b = 0; b < 2; ++b) {
      calibs.push_back(server.SubmitCalibration(
          "cal-" + std::to_string(d), f->batches[b], f->slices[b]));
    }
  }
  // Submitted while the worker is still inside the first (30ms+) pump:
  // the high-priority inference pump overtakes every queued low pump.
  auto inference = server.TrySubmitInference("hot", f->target.test.x());
  ASSERT_TRUE(inference.ok());
  std::move(inference).value().get();
  const uint64_t done_at_inference =
      server.metrics().calibration_batches();
  server.Drain();

  EXPECT_LT(done_at_inference, static_cast<uint64_t>(calibs.size()));
  EXPECT_EQ(server.metrics().calibration_batches(),
            static_cast<uint64_t>(calibs.size()));
  for (auto& fu : calibs) fu.get();  // the backlog still completes
}

// Seeded latency chaos (device RTT spikes + batcher flusher stalls) on a
// bounded, batched server under a multi-threaded flood with per-request
// latency budgets: every shed is LOUD (a kResourceExhausted refusal or a
// future resolving to kDeadlineExceeded — never silence, never a hang),
// the ledger reconciles exactly, and every DELIVERED prediction is
// bit-identical to an unloaded, unfaulted reference run. Latency faults
// may change WHETHER a request is delivered, never WHAT it says.
TEST(BackpressureChaosTest, LatencyChaosFloodShedsLoudAndDeliversExactBits) {
  FleetFixture* f = GetFixture();
  std::vector<int> reference;
  {
    FleetServerOptions opts;
    opts.num_threads = 2;
    opts.continual = FastContinualOptions();
    FleetServer server(*f->base, *f->bf, opts);
    server.RegisterDevice("ref", f->qcore);
    reference =
        server.SubmitInference("ref", f->target.test.x()).get().predictions;
  }

  FaultInjector injector(/*seed=*/1234);
  FaultScript spike;
  spike.sticky = true;
  spike.probability = 0.25;
  spike.arg = 3000;  // 3ms RTT spike on a quarter of device round trips
  injector.Arm(FaultPoint::kDeviceRttSpike, spike);
  FaultScript stall;
  stall.sticky = true;
  stall.probability = 0.25;
  stall.arg = 2000;  // 2ms stall in the deadline flusher
  injector.Arm(FaultPoint::kBatcherFlusherStall, stall);
  injector.Install();

  FleetServerOptions opts;
  opts.num_threads = 2;
  opts.continual = FastContinualOptions();
  opts.max_queue_per_session = 3;
  opts.enable_batching = true;
  opts.batching.max_batch = 4;
  opts.batching.max_delay_us = 100.0;
  opts.simulated_device_rtt_ms = 1.0;
  FleetServer server(*f->base, *f->bf, opts);
  constexpr int kDevices = 3;
  for (int d = 0; d < kDevices; ++d) {
    server.RegisterDevice("dev-" + std::to_string(d), f->qcore);
  }

  constexpr int kSubmitters = 3;
  constexpr int kPerSubmitter = 30;
  std::atomic<uint64_t> admission_sheds{0};
  std::mutex futures_mu;
  std::vector<std::future<InferenceResult>> futures;
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s]() {
      for (int i = 0; i < kPerSubmitter; ++i) {
        InferenceSubmitOptions sub;
        // Every third request carries a budget tight enough for the chaos
        // delays to blow through — those shed with kDeadlineExceeded.
        if (i % 3 == 0) sub.latency_budget_us = 2000.0;
        auto r = server.TrySubmitInference(
            "dev-" + std::to_string((s + i) % kDevices), f->target.test.x(),
            sub);
        if (r.ok()) {
          std::lock_guard<std::mutex> lock(futures_mu);
          futures.push_back(std::move(r).value());
        } else {
          ASSERT_EQ(r.status().code(), StatusCode::kResourceExhausted);
          admission_sheds.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : submitters) t.join();

  uint64_t delivered = 0, deadline_shed = 0;
  for (auto& fu : futures) {
    const InferenceResult r = fu.get();  // every admitted future resolves
    if (r.status.ok()) {
      ++delivered;
      EXPECT_EQ(r.predictions, reference);  // exact bits or nothing
    } else {
      ASSERT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
      EXPECT_TRUE(r.predictions.empty());
      ++deadline_shed;
    }
  }
  server.Drain();
  FaultInjector::Uninstall();

  const ServingMetrics& m = server.metrics();
  const uint64_t submissions =
      static_cast<uint64_t>(kSubmitters) * kPerSubmitter;
  EXPECT_EQ(m.accepted_inference() + m.shed_inference(), submissions);
  EXPECT_EQ(m.shed_inference(), admission_sheds.load());
  EXPECT_EQ(m.shed_deadline(), deadline_shed);
  // The acceptance split: executed == delivered, and an admitted request
  // either executed or deadline-shed — nothing leaks.
  EXPECT_EQ(m.inference_requests(), delivered);
  EXPECT_EQ(m.accepted_inference(), delivered + deadline_shed);
  // The per-reason breakdown partitions the admission sheds exactly,
  // chaos or no chaos.
  EXPECT_EQ(m.shed_inference() + m.shed_calibration(),
            m.shed_queue_full() + m.shed_limiter());
  EXPECT_LE(m.queue_depth().max(), 3);
}

}  // namespace
}  // namespace qcore
