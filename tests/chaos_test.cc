// Chaos suite: deterministic fault injection across the fleet
// (src/testing/fault_injector.h). Three layers of coverage:
//
//   * Injector semantics — scripts (Nth hit, seeded probability, one-shot
//     vs sticky), install/uninstall lifecycle, and the kFaultInjected
//     trace event every firing records.
//   * Storage fault families over a DurableSnapshotStore — torn append,
//     silent bit-rot, append delay — and registry-delta transport faults
//     (truncated export, dropped import). Each asserts the documented
//     invariant: either the surviving state is bit-identical to the
//     fault-free run, or the failure is loud (a Status) and recovery
//     (reopen / retry) restores exactly what was durable. Never silent
//     corruption. (Fsync failure and compaction crashes are pinned in
//     tests/snapshot_store_test.cc next to the other durability tests.)
//   * Serving fault families over a live fleet — device RTT spikes,
//     batcher flusher stalls, barrier delays (all latency-only: results
//     must stay bit-identical), and the shard-crash-during-migration
//     family, whose documented degradation is a lost continuation with
//     bit-identical model recovery from the barrier snapshot.
//
// Plus the zero-cost contract: with no injector installed — or one
// installed with nothing armed, then uninstalled — the serving hot path
// produces bit-identical results and zero kFaultInjected events.
#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/qcore_builder.h"
#include "data/har_generator.h"
#include "models/model_zoo.h"
#include "obs/trace.h"
#include "obs/whiteboard.h"
#include "serving/backend.h"
#include "serving/router.h"
#include "serving/server.h"
#include "serving/snapshot.h"
#include "serving/snapshot_store.h"
#include "testing/fault_injector.h"

namespace qcore {
namespace {

// --------------------------------------------------- injector semantics

// A point the cheap tests fire by hand; any catalog entry works because
// ShouldFire never interprets the point, only its script.
constexpr FaultPoint kProbe = FaultPoint::kWalFsyncFail;

TEST(FaultInjectorTest, UninstalledHookIsInert) {
  ASSERT_EQ(FaultInjector::installed(), nullptr);
  uint64_t arg = 42;
  EXPECT_FALSE(MaybeFault(kProbe, &arg));
  EXPECT_EQ(arg, 42u);  // untouched
}

TEST(FaultInjectorTest, InstallUninstallAndDestructorSafety) {
  {
    FaultInjector injector(1);
    EXPECT_EQ(FaultInjector::installed(), nullptr);
    injector.Install();
    EXPECT_EQ(FaultInjector::installed(), &injector);
    FaultInjector::Uninstall();
    EXPECT_EQ(FaultInjector::installed(), nullptr);
    // Hits count even when nothing is armed — how tests prove production
    // code actually reached a point.
    injector.Install();
    EXPECT_FALSE(MaybeFault(kProbe));
    EXPECT_EQ(injector.hits(kProbe), 1u);
    EXPECT_EQ(injector.fired(kProbe), 0u);
    // Destructor auto-uninstalls: no dangling global after this scope.
  }
  EXPECT_EQ(FaultInjector::installed(), nullptr);
  EXPECT_FALSE(MaybeFault(kProbe));
}

TEST(FaultInjectorTest, NthHitOneShotAndStickyScripts) {
  FaultInjector injector(7);
  FaultScript script;
  script.fire_on_hit = 3;  // one-shot on exactly the 3rd hit
  injector.Arm(kProbe, script);
  injector.Install();
  std::vector<bool> fires;
  for (int i = 0; i < 6; ++i) fires.push_back(MaybeFault(kProbe));
  EXPECT_EQ(fires, (std::vector<bool>{false, false, true, false, false,
                                      false}));
  EXPECT_EQ(injector.hits(kProbe), 6u);
  EXPECT_EQ(injector.fired(kProbe), 1u);

  // Re-arming resets the fired counter (it doubles as the one-shot
  // latch) but not the hit count, so with sticky set every hit >=
  // fire_on_hit fires from here on.
  script.sticky = true;
  script.fire_on_hit = 8;
  injector.Arm(kProbe, script);
  fires.clear();
  for (int i = 0; i < 4; ++i) fires.push_back(MaybeFault(kProbe));  // hits 7-10
  EXPECT_EQ(fires, (std::vector<bool>{false, true, true, true}));
  EXPECT_EQ(injector.fired(kProbe), 3u);
  EXPECT_EQ(injector.total_fired(), 3u);

  // Disarm keeps the counters for post-run assertions.
  injector.Disarm(kProbe);
  EXPECT_FALSE(MaybeFault(kProbe));
  EXPECT_EQ(injector.hits(kProbe), 11u);
  EXPECT_EQ(injector.fired(kProbe), 3u);
  FaultInjector::Uninstall();
}

TEST(FaultInjectorTest, SeededProbabilityReplaysExactly) {
  const auto run = [](uint64_t seed) {
    FaultInjector injector(seed);
    FaultScript script;
    script.probability = 0.4;
    script.sticky = true;
    injector.Arm(kProbe, script);
    injector.Install();
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) fires.push_back(MaybeFault(kProbe));
    FaultInjector::Uninstall();
    return fires;
  };
  const std::vector<bool> a = run(0xC4A05);
  EXPECT_EQ(a, run(0xC4A05)) << "same seed must replay the same schedule";
  EXPECT_NE(a, run(0xC4A06)) << "different seed, different schedule";
  size_t fired = 0;
  for (bool f : a) fired += f ? 1 : 0;
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, a.size());
}

TEST(FaultInjectorTest, FiringRecordsTraceEventOnTheCurrentSpan) {
  TraceRing::Global().Clear();
  FaultInjector injector(3);
  FaultScript script;
  script.arg = 777;
  injector.Arm(FaultPoint::kDeviceRttSpike, script);
  injector.Install();
  const uint64_t span = TraceRing::NextSpan();
  uint64_t arg = 0;
  {
    ScopedTraceSpan scope(span);
    EXPECT_TRUE(MaybeFault(FaultPoint::kDeviceRttSpike, &arg));
  }
  FaultInjector::Uninstall();
  EXPECT_EQ(arg, 777u);

  const std::vector<TraceEvent> timeline =
      TraceRing::Global().CollectSpan(span);
  ASSERT_EQ(timeline.size(), 1u);
  EXPECT_EQ(timeline[0].kind, TraceKind::kFaultInjected);
  EXPECT_EQ(TraceRing::Global().NameOf(timeline[0].arg0),
            "fault:deviceRttSpike");
  EXPECT_EQ(timeline[0].arg1, 777u);
}

// ------------------------------------------------- WAL fault families

std::string TempLog(const std::string& name) {
  const std::string path = "/tmp/qcore_chaos_" + name + ".wal";
  std::remove(path.c_str());
  return path;
}

std::shared_ptr<const ModelSnapshot> MakeSnap(uint64_t version,
                                              const std::string& device,
                                              size_t n_bytes = 64) {
  auto snap = std::make_shared<ModelSnapshot>();
  snap->version = version;
  snap->device_id = device;
  snap->batches_seen = version * 10;
  snap->bytes.resize(n_bytes);
  for (size_t i = 0; i < n_bytes; ++i) {
    snap->bytes[i] = static_cast<uint8_t>((version * 131 + device.size() * 17 +
                                           i * 7) &
                                          0xFF);
  }
  return snap;
}

std::unique_ptr<DurableSnapshotStore> OpenOrDie(const std::string& path) {
  DurableSnapshotStoreOptions options;
  options.path = path;
  auto store = DurableSnapshotStore::Open(std::move(options));
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

std::vector<uint8_t> Slurp(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  EXPECT_NE(file, nullptr) << path;
  std::fseek(file, 0, SEEK_END);
  std::vector<uint8_t> bytes(static_cast<size_t>(std::ftell(file)));
  std::fseek(file, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), file), bytes.size());
  std::fclose(file);
  return bytes;
}

// Torn append: the Put fails loudly, the next Open truncates the half-frame
// and counts the recovery (WalStats::torn_tails_recovered — the whiteboard
// WAL row's torn_tails field), and everything before the tear replays
// bit-identically.
TEST(WalFaultTest, TornAppendIsRecoveredAndCounted) {
  const std::string path = TempLog("torn");
  {
    auto store = OpenOrDie(path);
    ASSERT_TRUE(store->Put(MakeSnap(1, "dev")).ok());
    ASSERT_TRUE(store->Put(MakeSnap(2, "dev")).ok());

    FaultInjector injector(11);
    injector.Arm(FaultPoint::kWalTornAppend, {});
    injector.Install();
    const Status torn = store->Put(MakeSnap(3, "dev"));
    FaultInjector::Uninstall();
    EXPECT_EQ(injector.fired(FaultPoint::kWalTornAppend), 1u);
    EXPECT_EQ(torn.code(), StatusCode::kIoError);
    // Log-then-apply: the failed Put never reached the in-memory maps.
    EXPECT_EQ(store->size(), 2u);
    EXPECT_EQ(store->Get(3), nullptr);
  }
  auto store = OpenOrDie(path);
  EXPECT_GT(store->truncated_tail_bytes(), 0u);
  EXPECT_EQ(store->wal_stats().torn_tails_recovered, 1u);
  EXPECT_EQ(store->size(), 2u);
  EXPECT_EQ(store->Get(1)->bytes, MakeSnap(1, "dev")->bytes);
  EXPECT_EQ(store->Get(2)->bytes, MakeSnap(2, "dev")->bytes);
  // The truncated log stays appendable: the re-published v3 lands cleanly.
  ASSERT_TRUE(store->Put(MakeSnap(3, "dev")).ok());
  EXPECT_EQ(store->MaxVersion(), 3u);
  std::remove(path.c_str());
}

// Silent bit-rot: the append "succeeds" (this process keeps serving from
// memory), and the damage surfaces loudly at the NEXT Open — the CRC scan
// cuts the rotted record off, keeping the clean prefix bit-identically.
TEST(WalFaultTest, BitRotSurfacesAtNextOpenNotInProcess) {
  const std::string path = TempLog("bitrot");
  {
    auto store = OpenOrDie(path);
    ASSERT_TRUE(store->Put(MakeSnap(1, "dev")).ok());

    FaultInjector injector(13);
    injector.Arm(FaultPoint::kWalAppendBitRot, {});
    injector.Install();
    const Status rotted = store->Put(MakeSnap(2, "dev"));
    FaultInjector::Uninstall();
    EXPECT_TRUE(rotted.ok()) << "rot is silent in the writing process";
    // The live process still serves the rotted version from memory.
    EXPECT_EQ(store->size(), 2u);
    EXPECT_EQ(store->Get(2)->bytes, MakeSnap(2, "dev")->bytes);
  }
  auto store = OpenOrDie(path);
  EXPECT_EQ(store->wal_stats().torn_tails_recovered, 1u);
  EXPECT_EQ(store->size(), 1u);
  EXPECT_EQ(store->Get(2), nullptr);
  EXPECT_EQ(store->Get(1)->bytes, MakeSnap(1, "dev")->bytes);
  std::remove(path.c_str());
}

// Append delay is latency-only: the log written under injected slow-disk
// sleeps must be byte-identical to one written without them.
TEST(WalFaultTest, AppendDelayChangesNothingButTime) {
  const std::string clean_path = TempLog("delay_clean");
  const std::string slow_path = TempLog("delay_slow");
  const auto fill = [](const std::string& path) {
    auto store = OpenOrDie(path);
    for (uint64_t v = 1; v <= 3; ++v) {
      ASSERT_TRUE(store->Put(MakeSnap(v, "dev")).ok());
    }
  };
  fill(clean_path);
  FaultInjector injector(17);
  FaultScript script;
  script.sticky = true;
  script.arg = 500;  // 500us per append
  injector.Arm(FaultPoint::kWalAppendDelay, script);
  injector.Install();
  fill(slow_path);
  FaultInjector::Uninstall();
  EXPECT_EQ(injector.fired(FaultPoint::kWalAppendDelay), 3u);
  EXPECT_EQ(Slurp(slow_path), Slurp(clean_path));
  std::remove(clean_path.c_str());
  std::remove(slow_path.c_str());
}

// ------------------------------------------- delta transport families

// A delta cut in transit is rejected whole — the target registry imports
// nothing — and a clean re-export delivers everything.
TEST(DeltaFaultTest, TruncatedExportRejectedWholeThenCleanRetry) {
  auto store = std::make_unique<MemorySnapshotStore>();
  for (uint64_t v = 1; v <= 3; ++v) {
    ASSERT_TRUE(store->Put(MakeSnap(v, v == 3 ? "b" : "a")).ok());
  }
  SnapshotRegistry source(std::move(store));
  SnapshotRegistry target;

  FaultInjector injector(19);
  injector.Arm(FaultPoint::kSnapshotExportTruncate, {});
  injector.Install();
  const std::vector<uint8_t> cut = source.ExportDelta(0);
  FaultInjector::Uninstall();
  EXPECT_EQ(injector.fired(FaultPoint::kSnapshotExportTruncate), 1u);

  const auto imported = target.ImportDelta(cut);
  EXPECT_FALSE(imported.ok());
  EXPECT_EQ(target.size(), 0u) << "a cut delta must not half-apply";

  // The fault was one-shot; the retry exports and applies completely.
  const auto retry = target.ImportDelta(source.ExportDelta(0));
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.value(), 3u);
  EXPECT_EQ(target.Get(3)->bytes, MakeSnap(3, "b")->bytes);
}

// A delta dropped in transit fails loudly and touches nothing; resending
// the SAME delta succeeds because imports are idempotent.
TEST(DeltaFaultTest, DroppedImportIsIdempotentOnRetry) {
  auto store = std::make_unique<MemorySnapshotStore>();
  ASSERT_TRUE(store->Put(MakeSnap(1, "a")).ok());
  ASSERT_TRUE(store->Put(MakeSnap(2, "a")).ok());
  SnapshotRegistry source(std::move(store));
  SnapshotRegistry target;
  const std::vector<uint8_t> delta = source.ExportDelta(0);

  FaultInjector injector(23);
  injector.Arm(FaultPoint::kSnapshotImportDrop, {});
  injector.Install();
  const auto dropped = target.ImportDelta(delta);
  FaultInjector::Uninstall();
  EXPECT_FALSE(dropped.ok());
  EXPECT_EQ(dropped.status().code(), StatusCode::kIoError);
  EXPECT_EQ(target.size(), 0u);

  const auto retry = target.ImportDelta(delta);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.value(), 2u);
  EXPECT_EQ(target.LatestFor("a")->version, 2u);
}

// ------------------------------------------------ serving fault families

// Same one-time expensive preparation as the other serving suites.
struct FleetFixture {
  HarSpec spec;
  HarDomain source;
  HarDomain target;
  Dataset qcore;
  std::unique_ptr<QuantizedModel> base;
  std::unique_ptr<BitFlipNet> bf;
  std::vector<Dataset> batches;
  std::vector<Dataset> slices;
};

FleetFixture* GetFixture() {
  static FleetFixture* fixture = []() {
    auto* f = new FleetFixture();
    f->spec = HarSpec::Usc();
    f->spec.num_classes = 5;
    f->spec.channels = 3;
    f->spec.length = 24;
    f->spec.train_per_class = 8;
    f->spec.test_per_class = 4;
    f->source = MakeHarDomain(f->spec, 0);
    f->target = MakeHarDomain(f->spec, 1);

    Rng rng(20260808);
    auto model = MakeOmniScaleCnn(f->spec.channels, f->spec.num_classes,
                                  &rng);
    QCoreBuildOptions build;
    build.size = 15;
    build.train.epochs = 8;
    build.train.sgd.lr = 0.03f;
    auto built = BuildQCore(model.get(), f->source.train, build, &rng);
    f->qcore = built.qcore;

    f->base = std::make_unique<QuantizedModel>(*model, 4);
    BitFlipTrainOptions bft;
    bft.ste.epochs = 8;
    bft.ste.batch_size = 16;
    bft.augment_episodes = 1;
    f->bf = std::make_unique<BitFlipNet>(
        TrainBitFlipNet(f->base.get(), f->qcore, bft, &rng));
    f->base->DropShadows();

    Rng split_rng(606);
    f->batches = SplitIntoStreamBatches(f->target.train, 3, &split_rng);
    f->slices = SplitIntoStreamBatches(f->target.test, 3, &split_rng);
    return f;
  }();
  return fixture;
}

FleetServerOptions ChaosServerOptions() {
  FleetServerOptions opts;
  opts.num_threads = 2;
  opts.continual.iterations = 1;
  opts.seed = 0x5EED;
  opts.enable_batching = true;  // thread the batcher/barrier hooks too
  opts.batching.max_batch = 3;
  opts.batching.max_delay_us = 100.0;
  return opts;
}

const std::vector<std::string>& Devices() {
  static const std::vector<std::string> devices = {"c0", "c1", "c2"};
  return devices;
}

// Everything a workload produces; runs are interchangeable iff == holds.
struct Outcome {
  std::vector<std::vector<std::pair<float, int>>> stats;
  std::vector<std::vector<std::vector<int>>> predictions;
  std::vector<std::vector<std::vector<int32_t>>> codes;
  std::vector<uint64_t> versions;
  std::vector<std::vector<uint8_t>> bytes;

  bool operator==(const Outcome& o) const {
    return stats == o.stats && predictions == o.predictions &&
           codes == o.codes && versions == o.versions && bytes == o.bytes;
  }
};

// Interleaved inference + calibration across every stream batch, then a
// publish per device — the workload every serving fault family replays.
Outcome RunWorkload(FleetBackend* server) {
  FleetFixture* f = GetFixture();
  const auto& devices = Devices();
  for (const auto& d : devices) server->RegisterDevice(d, f->qcore);
  std::vector<std::vector<std::future<BatchStats>>> cal(devices.size());
  std::vector<std::vector<std::future<InferenceResult>>> inf(devices.size());
  for (size_t b = 0; b < f->batches.size(); ++b) {
    for (size_t d = 0; d < devices.size(); ++d) {
      inf[d].push_back(
          server->SubmitInference(devices[d], f->slices[b].x()));
      cal[d].push_back(
          server->SubmitCalibration(devices[d], f->batches[b], f->slices[b]));
    }
  }
  server->Drain();

  Outcome out;
  for (const auto& d : devices) {
    out.versions.push_back(server->PublishSnapshot(d).get());
    out.bytes.push_back(server->snapshots().LatestFor(d)->bytes);
  }
  for (size_t d = 0; d < devices.size(); ++d) {
    out.stats.emplace_back();
    for (auto& fu : cal[d]) {
      const BatchStats s = fu.get();
      out.stats.back().emplace_back(s.accuracy, s.qcore_changed);
    }
    out.predictions.emplace_back();
    for (auto& fu : inf[d]) {
      out.predictions.back().push_back(fu.get().predictions);
    }
    server->WithSessionQuiesced(devices[d], [&](CalibrationSession& s) {
      out.codes.push_back(s.model()->AllCodes());
    });
  }
  return out;
}

Outcome RunFresh() {
  FleetFixture* f = GetFixture();
  FleetServer server(*f->base, *f->bf, ChaosServerOptions());
  return RunWorkload(&server);
}

// The acceptance requirement: the hot path with chaos hooks compiled in is
// bit-identical whether an injector was never installed, is installed with
// nothing armed, or was installed and then removed — and an unarmed
// injector proves the hooks are actually reached (hits > 0) while firing
// nothing (no kFaultInjected events, no result perturbation).
TEST(ChaosServingTest, NoInjectorHotPathBitIdentical) {
  const Outcome reference = RunFresh();  // no injector ever installed
  ASSERT_FALSE(reference.codes.empty());

  TraceRing::Global().Clear();
  FaultInjector unarmed(0xDEAD);
  unarmed.Install();
  const Outcome with_hooks_live = RunFresh();
  FaultInjector::Uninstall();
  EXPECT_TRUE(with_hooks_live == reference);
  EXPECT_EQ(unarmed.total_fired(), 0u);
  // The serving path really crossed the injection points...
  EXPECT_GT(unarmed.hits(FaultPoint::kDeviceRttSpike), 0u);
  EXPECT_GT(unarmed.hits(FaultPoint::kBatcherFlusherStall), 0u);
  // ...without ever recording a firing.
  for (const TraceEvent& e : TraceRing::Global().Collect()) {
    EXPECT_NE(e.kind, TraceKind::kFaultInjected);
  }

  const Outcome after_uninstall = RunFresh();
  EXPECT_TRUE(after_uninstall == reference);
}

// RTT spikes, flusher stalls, and barrier delays are latency-only faults:
// under an aggressive schedule of all three, every result — labels, stats,
// codes, snapshot versions and bytes — must stay bit-identical.
TEST(ChaosServingTest, LatencyFaultFamiliesAreBitIdentical) {
  const Outcome reference = RunFresh();

  FaultInjector injector(0x10C4);
  FaultScript rtt;
  rtt.sticky = true;
  rtt.probability = 0.5;
  rtt.arg = 400;  // 400us spike on half the device round trips
  injector.Arm(FaultPoint::kDeviceRttSpike, rtt);
  FaultScript stall;
  stall.sticky = true;
  stall.probability = 0.3;
  stall.arg = 1500;  // deadline flusher naps
  injector.Arm(FaultPoint::kBatcherFlusherStall, stall);
  FaultScript barrier;
  barrier.sticky = true;
  barrier.arg = 300;  // every barrier hesitates
  injector.Arm(FaultPoint::kBarrierDelay, barrier);
  injector.Install();
  const Outcome faulted = RunFresh();
  FaultInjector::Uninstall();

  EXPECT_TRUE(faulted == reference);
  EXPECT_GT(injector.fired(FaultPoint::kDeviceRttSpike), 0u);
  EXPECT_GT(injector.fired(FaultPoint::kBarrierDelay), 0u);
}

// The shard-crash family's recovery invariant: the continuation is lost
// (documented degradation — Rng/QCore/batch-counter state starts fresh),
// but the barrier snapshot survives in the shared registry and a warm
// re-registration restores the device's model codes bit-identically.
TEST(ChaosServingTest, ShardCrashDuringMoveRecoversFromBarrierSnapshot) {
  FleetFixture* f = GetFixture();
  ShardedFleetServerOptions sopts;
  sopts.num_shards = 2;
  sopts.shard = ChaosServerOptions();
  sopts.shard.warm_start_from_registry = true;  // the recovery path below
  ShardedFleetServer server(*f->base, *f->bf, sopts);
  for (const auto& d : Devices()) server.RegisterDevice(d, f->qcore);
  // Calibrate the victim so the barrier snapshot is a real mid-stream
  // model, not the factory base.
  const std::string victim = "c0";
  server.SubmitCalibration(victim, f->batches[0], f->slices[0]).get();
  server.SubmitCalibration(victim, f->batches[1], f->slices[1]).get();
  server.Drain();

  FaultInjector injector(0x5AAD);
  injector.Arm(FaultPoint::kShardCrashDuringMigration, {});
  injector.Install();
  const int source = server.ShardOf(victim);
  const uint64_t barrier = server.MoveDevice(victim, 1 - source);
  FaultInjector::Uninstall();
  ASSERT_EQ(injector.fired(FaultPoint::kShardCrashDuringMigration), 1u);

  // The device fell out of the fleet — loudly, not silently.
  EXPECT_FALSE(server.HasDevice(victim));
  EXPECT_EQ(server.num_sessions(),
            static_cast<int>(Devices().size()) - 1);
  const WhiteboardImage image = server.whiteboard().Read();
  bool found = false;
  for (const auto& row : image.devices) {
    if (row.device_id != victim) continue;
    found = true;
    EXPECT_EQ(row.last_error.code(), StatusCode::kIoError);
    EXPECT_NE(row.last_error.message().find("injected"), std::string::npos);
  }
  EXPECT_TRUE(found);

  // The barrier snapshot is real and carries the pre-crash model.
  auto snap = server.snapshots().Get(barrier);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->device_id, victim);
  EXPECT_EQ(snap->batches_seen, 2u);

  // Survivors keep serving through the crash.
  server.SubmitCalibration("c1", f->batches[2], f->slices[2]).get();

  // Recovery: warm re-registration restores the barrier codes
  // bit-identically.
  server.RegisterDevice(victim, f->qcore);
  auto expected = f->base->Clone();
  ASSERT_TRUE(SnapshotRegistry::RestoreInto(*snap, expected.get()).ok());
  server.WithSessionQuiesced(victim, [&](CalibrationSession& s) {
    EXPECT_EQ(s.model()->AllCodes(), expected->AllCodes());
    EXPECT_NE(s.model()->AllCodes(), f->base->AllCodes());
  });
  server.Drain();
}

// A shard crash in the middle of a Rebalance must lose exactly the device
// whose migration the fault hit: every other planned move completes, the
// fleet keeps serving, and a later shrink still satisfies the
// empty-retired-shard invariant.
TEST(ChaosServingTest, ShardCrashDuringRebalanceLosesOnlyThatDevice) {
  FleetFixture* f = GetFixture();
  ShardedFleetServerOptions sopts;
  sopts.num_shards = 1;
  sopts.shard = ChaosServerOptions();
  sopts.shard.warm_start_from_registry = true;
  ShardedFleetServer server(*f->base, *f->bf, sopts);
  const std::vector<std::string> fleet = {"c0", "c1", "c2", "c3", "c4"};
  for (const auto& d : fleet) server.RegisterDevice(d, f->qcore);
  for (const auto& d : fleet) {
    server.SubmitCalibration(d, f->batches[0], f->slices[0]);
  }
  server.Drain();

  FaultInjector injector(0xB4D5EED);
  FaultScript once;
  once.fire_on_hit = 1;  // the first migration of the rebalance crashes
  injector.Arm(FaultPoint::kShardCrashDuringMigration, once);
  injector.Install();
  server.Rebalance(3);
  FaultInjector::Uninstall();
  ASSERT_EQ(injector.fired(FaultPoint::kShardCrashDuringMigration), 1u);
  ASSERT_GT(injector.hits(FaultPoint::kShardCrashDuringMigration), 1u)
      << "schedule must have planned several migrations";

  std::vector<std::string> lost;
  for (const auto& d : fleet) {
    if (!server.HasDevice(d)) lost.push_back(d);
  }
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(server.num_sessions(), static_cast<int>(fleet.size()) - 1);

  // Survivors serve; the lost device warm-starts back in from its barrier
  // snapshot (published by the crashed migration before the "crash").
  for (const auto& d : fleet) {
    if (d == lost[0]) continue;
    server.SubmitInference(d, f->slices[0].x());
  }
  server.Drain();
  auto snap = server.snapshots().LatestFor(lost[0]);
  ASSERT_NE(snap, nullptr);
  server.RegisterDevice(lost[0], f->qcore);
  auto expected = f->base->Clone();
  ASSERT_TRUE(SnapshotRegistry::RestoreInto(*snap, expected.get()).ok());
  server.WithSessionQuiesced(lost[0], [&](CalibrationSession& s) {
    EXPECT_EQ(s.model()->AllCodes(), expected->AllCodes());
  });

  // Shrinking back retires shards cleanly: no session leaked mid-crash.
  server.Rebalance(1);
  EXPECT_EQ(server.num_shards(), 1);
  EXPECT_EQ(server.num_sessions(), static_cast<int>(fleet.size()));
  server.Drain();
}

}  // namespace
}  // namespace qcore
